(* repdb — command-line front end.

     repdb run --protocol backedge -b 0.4 --check
     repdb experiment fig2a --steps 5 --txns 200
     repdb protocols
     repdb table1
*)

open Cmdliner
module Params = Repdb_workload.Params
module Fault = Repdb_fault.Fault
module Reconfig = Repdb_reconfig.Reconfig

(* --- shared parameter flags --------------------------------------------- *)

let faults_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Fault.of_string s) in
  Arg.conv (parse, Fault.pp)

let reconfig_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Reconfig.of_string s) in
  Arg.conv (parse, Reconfig.pp)

let params_term =
  let open Term in
  let docs = "WORKLOAD PARAMETERS (Table 1 of the paper)" in
  let int_flag name ~doc default =
    Arg.(value & opt int default & info [ name ] ~docs ~doc)
  in
  let float_flag ?short name ~doc default =
    let names = match short with Some s -> [ s; name ] | None -> [ name ] in
    Arg.(value & opt float default & info names ~docs ~doc)
  in
  let d = Params.default in
  let make sites items r s b ops threads txns read_op read_txn latency timeout seed retry deadline
      stale check faults reconfig batch_size batch_linger zipf occ_epoch heal heartbeat_every
      phi_threshold anti_entropy_every =
    {
      d with
      n_sites = sites;
      n_items = items;
      replication_prob = r;
      site_prob = s;
      backedge_prob = b;
      ops_per_txn = ops;
      threads_per_site = threads;
      txns_per_thread = txns;
      read_op_prob = read_op;
      read_txn_prob = read_txn;
      latency;
      lock_timeout = timeout;
      seed;
      retry = (if retry then Params.default_backoff else Params.No_retry);
      txn_deadline = deadline;
      stale_reads = stale;
      record_history = check;
      faults;
      reconfig;
      batch_size;
      batch_linger_ms = batch_linger;
      zipf_theta = zipf;
      occ_epoch_ms = occ_epoch;
      heal;
      heartbeat_every;
      phi_threshold;
      anti_entropy_every;
    }
  in
  const make
  $ int_flag "sites" ~doc:"Number of sites $(i,m)." d.n_sites
  $ int_flag "items" ~doc:"Number of distinct items $(i,n)." d.n_items
  $ float_flag ~short:"r" "replication" ~doc:"Replication probability $(i,r)." d.replication_prob
  $ float_flag ~short:"s" "site-prob" ~doc:"Site probability $(i,s)." d.site_prob
  $ float_flag ~short:"b" "backedge" ~doc:"Backedge probability $(i,b)." d.backedge_prob
  $ int_flag "ops" ~doc:"Operations per transaction." d.ops_per_txn
  $ int_flag "threads" ~doc:"Threads per site." d.threads_per_site
  $ int_flag "txns" ~doc:"Transactions per thread." d.txns_per_thread
  $ float_flag "read-op" ~doc:"Read operation probability." d.read_op_prob
  $ float_flag "read-txn" ~doc:"Read transaction probability." d.read_txn_prob
  $ float_flag "latency" ~doc:"One-way network latency (ms)." d.latency
  $ float_flag "timeout" ~doc:"Deadlock timeout interval (ms)." d.lock_timeout
  $ int_flag "seed" ~doc:"RNG seed (runs are deterministic in it)." d.seed
  $ Arg.(
      value & flag
      & info [ "retry" ] ~docs
          ~doc:
            "Retry aborted transactions with capped exponential backoff (base 1 ms, x2 per \
             failure, 64 ms cap, deterministic jitter from a per-client seeded stream).")
  $ float_flag "deadline"
      ~doc:
        "Per-transaction deadline (ms); an attempt that exceeds it aborts with \
         $(i,deadline-exceeded). 0 disables deadlines."
      d.txn_deadline
  $ float_flag "stale-reads"
      ~doc:
        "Bounded-staleness read fallback (ms): when an item's primary is unreachable (network \
         partition), serve the read from the local replica if it was written within the bound. \
         0 disables the fallback. PSL only."
      d.stale_reads
  $ Arg.(
      value & flag
      & info [ "check" ] ~docs
          ~doc:
            "Record the access history and verify global serializability and replica convergence.")
  $ Arg.(
      value
      & opt faults_conv Fault.empty
      & info [ "faults" ] ~docs ~docv:"SPEC"
          ~doc:
            "Deterministic fault schedule the run must survive: $(b,;)-separated clauses \
             $(b,crash@T:site=S,down=D) (site $(i,S) crashes at $(i,T) ms, restarts after \
             $(i,D), default 500), $(b,drop@T1-T2:p=P,src=A,dst=B) (drop transmission attempts \
             with probability $(i,P) in the window; src/dst optional), \
             $(b,delay@T1-T2:add=MS,src=A,dst=B) (delivery surcharge), \
             $(b,partition@T1-T2:groups=G1|G2[|..]) (full bidirectional split between the \
             $(b,.)-separated site groups for the window, e.g. \
             $(b,groups=0.1.2|3.4.5)) and $(b,rto=MS) (retransmit timeout, default 5). \
             Example: $(b,\"crash@300:site=1,down=400;partition@500-1500:groups=0.1|2.3\").")
  $ Arg.(
      value
      & opt reconfig_conv Reconfig.empty
      & info [ "reconfig" ] ~docs ~docv:"SPEC"
          ~doc:
            "Online reconfiguration plan executed live at simulated times: $(b,;)-separated \
             clauses $(b,add@T:item=I,site=S) (add a replica of item $(i,I) at site $(i,S), \
             state-transferred from its primary), $(b,drop@T:item=I,site=S) (drop that \
             replica) and $(b,rebalance@T:from=A,to=B) (move every replica site $(i,A) holds \
             to site $(i,B)). Each step is an epoch switch: quiesce, transfer, atomic \
             placement/tree swap, resume. Example: \
             $(b,\"add@300:item=5,site=3;rebalance@600:from=1,to=2\").")
  $ int_flag "batch-size"
      ~doc:
        "Coalesce up to this many lazy propagation updates per destination into one network \
         message (dag-wt, dag-t, backedge normals, lazy-master pushes). 1 disables batching \
         (every update ships immediately in its own message)."
      d.batch_size
  $ float_flag "batch-linger"
      ~doc:
        "How long (simulated ms) a partially filled batch may wait for more updates before \
         flushing. 0 flushes within the opening instant (delivery times unchanged); larger \
         values trade bounded propagation latency for fuller batches. Ignored at \
         $(b,--batch-size) 1."
      d.batch_linger_ms
  $ float_flag "zipf"
      ~doc:
        "Zipf skew theta for item selection within the site's readable/writable pools, in \
         [0, 1). 0 keeps the uniform (or $(b,--hot)-spot) draw; larger values concentrate \
         accesses on the lowest-numbered items of each pool, creating the contention the \
         $(b,occ) sweep measures."
      d.zipf_theta
  $ float_flag "occ-epoch"
      ~doc:
        "Validation epoch (simulated ms) for the $(b,occ-epoch) protocol: every site flushes \
         its buffered transactions to the validator at each epoch boundary. Shorter epochs cut \
         commit latency but amortize less; longer epochs age the read sets and raise \
         validation aborts under contention."
      d.occ_epoch_ms
  $ Arg.(
      value & flag
      & info [ "heal" ] ~docs
          ~doc:
            "Self-healing: heartbeat-driven φ-accrual failure detection, automatic primary \
             failover through the epoch machinery when a majority of observers suspect a site, \
             and background anti-entropy repair (Merkle digest exchange shipping divergent \
             values from primaries). Requires a protocol with a reconfigure hook; healing \
             $(b,psl) additionally needs $(b,--deadline) so failover drains are bounded. \
             Enables $(b,corrupt@) fault clauses and the timeline's $(b,phi.N) columns.")
  $ float_flag "heartbeat-every"
      ~doc:
        "Heartbeat period (simulated ms) of the failure detector's control plane; also the \
         suspicion poll interval. Smaller detects faster but tolerates less jitter at a given \
         $(b,--phi-threshold)."
      d.heartbeat_every
  $ float_flag "phi-threshold"
      ~doc:
        "φ-accrual suspicion threshold: a site is suspected once a strict majority of up \
         observers see φ = log10(e) · silence/mean-interarrival above this. At the default \
         25 ms heartbeat, 8 fires after ≈460 ms of silence; lower detects faster but risks \
         false failovers under latency jitter (costing availability, never consistency)."
      d.phi_threshold
  $ float_flag "anti-entropy-every"
      ~doc:
        "Background anti-entropy period (simulated ms): one (primary, holder) pair per tick is \
         compared by Merkle digest narrowing and repaired, round-robin over the current \
         placement."
      d.anti_entropy_every

(* --- run ------------------------------------------------------------------ *)

let protocol_conv =
  let parse s =
    match Repdb.Registry.find s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown protocol %S (try: %s)" s
               (String.concat ", " Repdb.Registry.names)))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Repdb.Protocol.name p))

let protocol_term =
  Arg.(
    value
    & opt protocol_conv (module Repdb.Backedge_proto : Repdb.Protocol.S)
    & info [ "p"; "protocol" ] ~doc:"Protocol to run (see $(b,repdb protocols)).")

(* Export the collected trace according to the destination name:
   "-" streams JSONL to stdout, "*.jsonl" writes JSONL to the file, anything
   else writes Chrome trace_event JSON (load in chrome://tracing / Perfetto). *)
let export_trace (report : Repdb.Driver.report) dest =
  let n_sites = report.params.n_sites in
  let meta =
    [ ("protocol", `String report.protocol); ("seed", `Int report.params.seed) ]
  in
  if dest = "-" then Repdb_obs.Export.jsonl_to_channel ~meta report.trace stdout
  else
    match open_out dest with
    | exception Sys_error msg ->
        Fmt.epr "error: cannot write trace: %s@." msg;
        exit 1
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            if Filename.check_suffix dest ".jsonl" then
              Repdb_obs.Export.jsonl_to_channel ~meta report.trace oc
            else Repdb_obs.Export.chrome_to_channel ~n_sites ~meta report.trace oc);
        Fmt.epr "trace: wrote %d events to %s%s@."
          (Repdb_obs.Trace.length report.trace)
          dest
          (let d = Repdb_obs.Trace.dropped report.trace in
           if d > 0 then Printf.sprintf " (%d oldest dropped; raise --trace-capacity)" d
           else "")

let trace_flags =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Collect a structured event trace. $(docv) of $(b,-) streams JSONL to stdout (the \
             report moves to stderr); a name ending in $(b,.jsonl) writes JSONL; anything else \
             writes Chrome trace_event JSON for chrome://tracing / Perfetto.")
  in
  let capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:"Trace ring-buffer capacity in events (default 2^20); oldest events drop first.")
  in
  Term.(const (fun f c -> (f, c)) $ trace_file $ capacity)

(* --- telemetry flags ------------------------------------------------------ *)

let obs_flags =
  let docs = "TELEMETRY" in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docs ~docv:"FILE"
          ~doc:
            "Sample cluster gauges (per-site replication lag, commit/abort rates, lock \
             occupancy, in-flight messages) on a fixed simulated-time interval and write the \
             timeline to $(docv) — CSV, or JSON if $(docv) ends in $(b,.json). Render with \
             $(b,repdb report).")
  in
  let every =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeline-every" ] ~docs ~docv:"MS"
          ~doc:"Timeline sampling interval in simulated ms (default 100).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ] ~docs
          ~doc:
            "Enable the wall-clock self-profiler and print per-event-category execution time \
             shares (client, net, lock, server, …) and GC deltas after the report. Never \
             affects simulated results.")
  in
  Term.(const (fun t e p -> (t, e, p)) $ timeline $ every $ profile)

(* Fold the telemetry flags into the params: sampling turns on as soon as a
   destination or an explicit interval asks for it. *)
let apply_obs params (timeline_file, every, profile) =
  let timeline_every =
    match (timeline_file, every) with
    | None, None -> params.Params.timeline_every
    | _, Some ms -> ms
    | Some _, None -> 100.0
  in
  { params with Params.timeline_every; profile }

let write_timeline (tl : Repdb_obs.Timeline.t) dest =
  match open_out dest with
  | exception Sys_error msg ->
      Fmt.epr "error: cannot write timeline: %s@." msg;
      exit 1
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          if Filename.check_suffix dest ".json" then
            output_string oc (Repdb_obs.Timeline.to_json_string tl)
          else Repdb_obs.Timeline.to_csv tl (output_string oc));
      Fmt.epr "timeline: wrote %d samples to %s@." (Repdb_obs.Timeline.length tl) dest

let run_with_trace params protocol (trace_file, trace_capacity) =
  (match trace_capacity with
  | Some n when n < 1 ->
      Fmt.epr "error: --trace-capacity must be positive (got %d)@." n;
      exit 1
  | _ -> ());
  match Repdb.Driver.run ~trace:(trace_file <> None) ?trace_capacity params protocol with
  | report -> report
  | exception Invalid_argument msg ->
      Fmt.epr "error: %s@." msg;
      Fmt.epr "hint: the DAG protocols need an acyclic copy graph — pass '-b 0'.@.";
      exit 1

let run_cmd =
  let run params protocol ((trace_file, _) as tf) ((timeline_file, _, profile) as obs) =
    let params = apply_obs params obs in
    let report = run_with_trace params protocol tf in
    (* With "--trace -" the event stream owns stdout. *)
    let report_ppf = if trace_file = Some "-" then Fmt.stderr else Fmt.stdout in
    Fmt.pf report_ppf "%a@." Repdb.Driver.pp_report report;
    if profile then Fmt.pf report_ppf "%a@." Repdb_obs.Profile.pp_table report.profile;
    Option.iter (export_trace report) trace_file;
    match (timeline_file, report.timeline) with
    | Some dest, Some tl -> write_timeline tl dest
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol on one parameter setting and print the report.")
    Term.(const run $ params_term $ protocol_term $ trace_flags $ obs_flags)

(* --- stats ---------------------------------------------------------------- *)

let stats_cmd =
  let run params protocol ((trace_file, _) as tf) ((timeline_file, _, profile) as obs) =
    let params = apply_obs params obs in
    let report = run_with_trace params protocol tf in
    let ppf = if trace_file = Some "-" then Fmt.stderr else Fmt.stdout in
    Fmt.pf ppf "%s, %d sites@." report.protocol report.params.n_sites;
    Fmt.pf ppf "%a@." Repdb.Driver.pp_site_stats report;
    if profile then Fmt.pf ppf "%a@." Repdb_obs.Profile.pp_table report.profile;
    Option.iter (export_trace report) trace_file;
    match (timeline_file, report.timeline) with
    | Some dest, Some tl -> write_timeline tl dest
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run one protocol and print the per-site counter/histogram table (lock traffic, \
          message counts, response and propagation percentiles per site).")
    Term.(const run $ params_term $ protocol_term $ trace_flags $ obs_flags)

(* --- experiment ------------------------------------------------------------ *)

module Pool = Repdb_par.Pool

let jobs_term =
  Arg.(
    value
    & opt int (Pool.default_domains ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the sweep's independent simulations on $(docv) domains (default: \
           $(b,Domain.recommended_domain_count () - 1), at least 1). Results are bit-identical \
           to $(b,-j 1): every run owns its simulator and RNG, and results are ordered by \
           input index. $(b,-j 1) is the plain sequential path.")

let chunk_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Tasks claimed per atomic increment by each pool domain. Defaults to the adaptive \
           heuristic $(b,max 1 (tasks / (domains * 4))); $(b,1) is finest-grained stealing, \
           values above the task count collapse to a single claim. No effect at $(b,-j 1).")

(* Run [f] with a pool of [jobs] domains (or none for [jobs <= 1]), shutting
   the pool down afterwards. *)
let with_jobs ?chunk jobs f =
  if jobs > 1 then Pool.with_pool ?chunk ~domains:jobs (fun pool -> f (Some pool)) else f None

let experiment_cmd =
  (* Both the help text and the dispatch come from [Experiment.registry], so
     adding a sweep there is all it takes to expose it here. *)
  let exp_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " Repdb.Experiment.ids)))
  in
  let steps =
    Arg.(value & opt int 10 & info [ "steps" ] ~doc:"Sweep resolution for probability axes.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Print CSV only.") in
  let timeline_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline-dir" ] ~docv:"DIR"
          ~doc:
            "Sample a telemetry timeline during every run of the sweep and write one CSV per \
             (point, protocol) into $(docv) (created if missing). Render each with $(b,repdb \
             report).")
  in
  let run params exp_name steps csv jobs chunk timeline_dir ((_, every, _) as obs) =
    (* [--timeline-dir] turns sampling on for every run of the sweep; a bare
       [--timeline FILE] is meaningless here and ignored in favour of it. *)
    let base =
      let p = apply_obs params (None, every, false) in
      let p = if timeline_dir <> None && p.Params.timeline_every = 0.0 then { p with Params.timeline_every = 100.0 } else p in
      match obs with _, _, profile -> { p with Params.profile }
    in
    match Repdb.Experiment.find exp_name with
    | None ->
        Fmt.epr "unknown experiment %S (try: %s)@." exp_name
          (String.concat ", " Repdb.Experiment.ids);
        exit 1
    | Some entry ->
        with_jobs ?chunk jobs (fun pool ->
            let outcome = entry.run ~pool ~base ~steps in
            (match outcome with
            | Repdb.Experiment.Figure fig ->
                if csv then print_string (Repdb.Experiment.to_csv fig)
                else Fmt.pr "%a@." Repdb.Experiment.pp_figure fig
            | Repdb.Experiment.Reports rs -> Fmt.pr "%a@." Repdb.Experiment.pp_reports rs);
            (if base.Params.profile then
               let profiles =
                 match outcome with
                 | Repdb.Experiment.Figure fig ->
                     List.concat_map
                       (fun (pt : Repdb.Experiment.point) ->
                         List.map
                           (fun (proto, (r : Repdb.Driver.report)) ->
                             (Printf.sprintf "%s @ x=%g" proto pt.x, r.profile))
                           pt.reports)
                       fig.points
                 | Repdb.Experiment.Reports rs ->
                     List.map (fun (label, (r : Repdb.Driver.report)) -> (label, r.profile)) rs
               in
               List.iter
                 (fun (label, prof) ->
                   Fmt.pr "--- profile: %s ---@.%a@." label Repdb_obs.Profile.pp_table prof)
                 profiles);
            match timeline_dir with
            | None -> ()
            | Some dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                let files = Repdb.Experiment.timeline_files outcome in
                List.iter
                  (fun (name, tl) ->
                    let dest = Filename.concat dir (name ^ ".csv") in
                    match open_out dest with
                    | exception Sys_error msg ->
                        Fmt.epr "error: cannot write timeline: %s@." msg;
                        exit 1
                    | oc ->
                        Fun.protect
                          ~finally:(fun () -> close_out oc)
                          (fun () -> Repdb_obs.Timeline.to_csv tl (output_string oc)))
                  files;
                Fmt.epr "timeline: wrote %d files to %s@." (List.length files) dir)
  in
  let exp_list =
    `Blocks
      (`P "Available experiments:"
      :: List.map
           (fun (e : Repdb.Experiment.entry) ->
             `P (Printf.sprintf "$(b,%s) — %s" e.exp_id e.doc))
           Repdb.Experiment.registry)
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:
         "Regenerate one of the paper's tables/figures or a sweep. Independent simulations run           on $(b,-j) domains."
       ~man:[ `S Manpage.s_description; exp_list ])
    Term.(
      const run $ params_term $ exp_name $ steps $ csv $ jobs_term $ chunk_term $ timeline_dir
      $ obs_flags)

(* --- report ---------------------------------------------------------------- *)

let report_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TIMELINE"
          ~doc:"Timeline CSV produced by $(b,repdb run --timeline) or $(b,--timeline-dir).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the report to $(docv): a self-contained HTML page with inline SVG charts if \
             $(docv) ends in $(b,.html), markdown otherwise. Default: markdown on stdout.")
  in
  let run src out =
    let content = In_channel.with_open_bin src In_channel.input_all in
    match Repdb_obs.Report.parse content with
    | Error msg ->
        Fmt.epr "error: %s: %s@." src msg;
        exit 1
    | Ok t -> (
        match out with
        | None -> print_string (Repdb_obs.Report.to_markdown t)
        | Some dest ->
            let body =
              if Filename.check_suffix dest ".html" then Repdb_obs.Report.to_html t
              else Repdb_obs.Report.to_markdown t
            in
            (match open_out dest with
            | exception Sys_error msg ->
                Fmt.epr "error: cannot write report: %s@." msg;
                exit 1
            | oc ->
                Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body));
            Fmt.epr "report: wrote %s@." dest)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a timeline CSV as a report: per-site replication-lag sparklines, throughput \
          and activity tables (markdown), or a single-file HTML page with inline SVG charts.")
    Term.(const run $ src $ out)

(* --- protocols / table1 ------------------------------------------------------ *)

(* Rendered from [Registry.entries] — the same single source bench/large.exe
   --protocols uses, so the two listings cannot drift. *)
let protocols_cmd =
  let run () =
    List.iter
      (fun ((p : Repdb.Protocol.t), doc) ->
        let module P = (val p) in
        Fmt.pr "%-10s %-58s %s@." P.name doc
          (if P.updates_replicas then "(physically updates replicas)" else "(replicas virtual)"))
      Repdb.Registry.entries
  in
  Cmd.v (Cmd.info "protocols" ~doc:"List the available protocols.") Term.(const run $ const ())

let table1_cmd =
  let run params =
    Fmt.pr "%-32s %-8s %-24s %s@." "Parameter" "Symbol" "Default Value" "Range";
    List.iter
      (fun (name, symbol, value, range) -> Fmt.pr "%-32s %-8s %-24s %s@." name symbol value range)
      (Params.table1 params)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print Table 1 (parameter settings).")
    Term.(const run $ params_term)

let () =
  let doc = "update propagation protocols for replicated databases (SIGMOD 1999 reproduction)" in
  let info = Cmd.info "repdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; stats_cmd; experiment_cmd; report_cmd; protocols_cmd; table1_cmd ]))

(* φ-accrual failure detection, exponential-model variant.

   The classic accrual detector (Hayashibara et al., SRDS 2004) outputs a
   suspicion level φ = -log10 P(no heartbeat yet | the site is alive) rather
   than a boolean. Under the exponential inter-arrival model with mean μ,
   P(gap > g) = exp(-g/μ), so

     φ(g) = -log10 exp(-g/μ) = g / (μ ln 10) ≈ 0.4343 · g / μ.

   φ grows linearly in the silence gap and inversely in the observed mean
   inter-arrival time: a threshold of 8 at a 25 ms heartbeat period fires
   after ≈ 460 ms of silence on a quiet link, later on a jittery one. The
   estimator is a sliding window of inter-arrival samples, each clamped to
   [0.1, 10] heartbeat periods so that the post-outage delivery burst of
   parked heartbeats (near-zero gaps) and the outage gap itself (one huge
   sample) cannot poison the mean. *)

type t = {
  hb_every : float;
  window : int;
  samples : float array; (* ring buffer of clamped inter-arrival gaps *)
  mutable n : int; (* samples currently held, <= window *)
  mutable idx : int; (* next ring slot *)
  mutable sum : float; (* running sum of held samples *)
  mutable last : float; (* arrival time of the newest heartbeat *)
  mutable arrivals : int;
}

let create ?(window = 20) ~hb_every ~now () =
  if hb_every <= 0.0 || not (Float.is_finite hb_every) then
    invalid_arg "Detector.create: hb_every must be > 0 and finite";
  if window < 1 then invalid_arg "Detector.create: window must be >= 1";
  {
    hb_every;
    window;
    samples = Array.make window 0.0;
    n = 0;
    idx = 0;
    sum = 0.0;
    (* Treat creation as a virtual first arrival so φ is well-defined (and
       grows) before the first real heartbeat lands. *)
    last = now;
    arrivals = 0;
  }

let clamp t gap = Float.min (10.0 *. t.hb_every) (Float.max (0.1 *. t.hb_every) gap)

let record t ~now =
  let gap = clamp t (now -. t.last) in
  if t.n = t.window then t.sum <- t.sum -. t.samples.(t.idx) else t.n <- t.n + 1;
  t.samples.(t.idx) <- gap;
  t.idx <- (t.idx + 1) mod t.window;
  t.sum <- t.sum +. gap;
  t.last <- now;
  t.arrivals <- t.arrivals + 1

let mean t = if t.n = 0 then t.hb_every else t.sum /. float_of_int t.n

(* log10 e: φ = gap / (μ ln 10) = log10(e) · gap / μ *)
let log10_e = 0.43429448190325176

let phi t ~now =
  let gap = now -. t.last in
  if gap <= 0.0 then 0.0 else log10_e *. gap /. mean t

let last_arrival t = t.last
let arrivals t = t.arrivals

(** Merkle-style range narrowing for anti-entropy digest exchange.

    Pure list machinery: the caller supplies the chunk-digest equality and
    leaf item-check callbacks (where the network round trips live), so the
    narrowing is testable without a simulator. See {!narrow}. *)

(** Split a (sorted) list into at most [fanout] contiguous chunks of
    near-equal size, preserving order.
    @raise Invalid_argument when [fanout < 2]. *)
val chunk : fanout:int -> 'a list -> 'a list list

(** [narrow ~fanout ~leaf ~equal_digest ~check_items items] — the
    mismatching items among [items]: recursively splits into [fanout]
    chunks, descends only into chunks where [equal_digest] says the two
    sides differ, and compares chunks of at most [leaf] items with
    [check_items] (which returns the mismatching subset). *)
val narrow :
  fanout:int ->
  leaf:int ->
  equal_digest:('a list -> bool) ->
  check_items:('a list -> 'a list) ->
  'a list ->
  'a list

(** Narrowing depth for [n] items: how many digest rounds a single
    mismatching item costs before the leaf check. *)
val depth : fanout:int -> leaf:int -> int -> int

(* Merkle-style range narrowing over a sorted item list.

   Anti-entropy compares a primary's copies against a replica holder's
   without shipping every checksum: the shared item set is split into
   [fanout] contiguous chunks, one digest is exchanged per chunk, and only
   mismatching chunks are split further. Chunks at or below [leaf] items are
   compared item-by-item. For a single scrambled copy among n shared items
   this exchanges O(fanout · log_fanout n) digests instead of n checksums.

   The module is pure: callers supply the digest and per-item comparison
   callbacks (which is where the network round trips live), so the narrowing
   logic is testable without a simulator. *)

let chunk ~fanout items =
  if fanout < 2 then invalid_arg "Digest_tree.chunk: fanout must be >= 2";
  let n = List.length items in
  if n = 0 then []
  else begin
    let per = (n + fanout - 1) / fanout in
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else match rest with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let rec go rest acc =
      match rest with
      | [] -> List.rev acc
      | _ ->
          let c, rest = take per [] rest in
          go rest (c :: acc)
    in
    go items []
  end

(* [narrow ~fanout ~leaf ~equal_digest ~check_items items] — the mismatching
   items among [items]. [equal_digest chunk] answers "do both sides digest
   this chunk identically?" (one round trip); [check_items chunk] compares a
   leaf chunk item-by-item and returns the mismatches (one round trip
   carrying per-item checksums). *)
let rec narrow ~fanout ~leaf ~equal_digest ~check_items items =
  match items with
  | [] -> []
  | _ when List.length items <= leaf -> check_items items
  | _ ->
      List.concat_map
        (fun c ->
          if equal_digest c then []
          else narrow ~fanout ~leaf ~equal_digest ~check_items c)
        (chunk ~fanout items)

(* Digests exchanged by [narrow] in the worst case for one mismatching item:
   the tree depth times the fanout (used by tests and cost accounting). *)
let rec depth ~fanout ~leaf n = if n <= leaf then 0 else 1 + depth ~fanout ~leaf ((n + fanout - 1) / fanout)

(** φ-accrual failure detector state for one monitored heartbeat stream
    (one ordered site pair), exponential-model variant.

    Suspicion is a level, not a boolean: [phi] returns
    φ ≈ 0.4343 · gap / μ where [gap] is the current silence and μ the mean
    inter-arrival time over a sliding window of samples (each clamped to
    [0.1, 10] heartbeat periods, so outage gaps and post-outage delivery
    bursts cannot poison the estimate). φ = 8 at a 25 ms period fires after
    ≈ 460 ms of silence on a quiet link; a jittery link raises μ and
    postpones suspicion proportionally. The caller turns per-observer φ
    values into a cluster-level verdict (e.g. a majority quorum).

    Purely functional in simulated time: the caller supplies every [now], so
    runs stay deterministic and byte-identical. *)

type t

(** [create ~hb_every ~now ()] — a detector expecting one heartbeat per
    [hb_every] ms, created at time [now] (creation counts as a virtual first
    arrival so φ is well-defined and growing before any real heartbeat).
    [window] is the sliding-window size (default 20 samples). *)
val create : ?window:int -> hb_every:float -> now:float -> unit -> t

(** A heartbeat arrived at [now]: push the (clamped) inter-arrival gap into
    the window. *)
val record : t -> now:float -> unit

(** Suspicion level at [now]; 0 when a heartbeat just arrived, growing
    linearly with silence. *)
val phi : t -> now:float -> float

(** Mean inter-arrival estimate, ms ([hb_every] until the first sample). *)
val mean : t -> float

(** Arrival time of the newest heartbeat (creation time if none yet). *)
val last_arrival : t -> float

(** Real heartbeats recorded. *)
val arrivals : t -> int

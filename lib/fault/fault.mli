(** Deterministic fault schedules and their run-time injector.

    The paper assumes live sites and a network that "delivers messages
    reliably and in FIFO order"; this module is where that assumption is
    deliberately broken. A {!schedule} is a static, seed-independent
    description of the faults a run must survive: site crash/restart windows
    and per-link message-drop / extra-delay windows. An {!injector} turns the
    schedule plus a seeded {!Repdb_sim.Rng} into concrete per-message
    transmission plans, so a run is a pure function of [(params, schedule)] —
    byte-identical across repeats and [-j] levels.

    {b Transport model.} Links are acked: a dropped transmission attempt (a
    drop-window loss, or either endpoint being down) is retried every
    {!field:schedule.rto} ms until it gets through, and per-pair delivery
    order is enforced by the network layer, so each ordered site pair still
    behaves as one reliable FIFO channel — it just stalls while the fault is
    active. This is what lets every propagation protocol converge after
    recovery without protocol-specific resynchronisation: missed propagation
    is simply still in flight.

    {b Crash model.} A crash makes the site unreachable (both directions) for
    [down_for] ms and marks its volatile store memory as lost; at restart the
    cluster wipes the store, rebuilds it with {!Repdb_store.Wal.recover},
    verifies the rebuild, and re-attaches the log. Work already accepted by
    the site before the crash (queued subtransactions, held locks) completes
    rather than being killed — the crash is modelled at the storage and
    transport boundaries, which is where the paper's durability story
    (DataBlitz redo recovery) lives.

    {b Partition model.} A partition splits the listed sites into groups that
    are fully, bidirectionally unreachable from each other for the window;
    sites in no group keep their connectivity to everyone. Because links stay
    acked, messages sent across the cut are not lost — they are parked and
    depart once the partition heals (retransmission-as-resync). What changes
    for protocols is the {!reachable} oracle: senders can ask whether a
    destination is currently separated and degrade gracefully (fail fast,
    serve a bounded-staleness local read) instead of stalling. *)

(** One site failure: down for [[at, at +. down_for)]. *)
type crash = { site : int; at : float; down_for : float }

(** A per-link perturbation window over [[from_t, until_t)]. [src] / [dst] of
    [-1] match any site. Within the window each transmission attempt is lost
    with probability [drop_prob], and successful attempts take [extra_delay]
    additional ms. *)
type window = {
  src : int;
  dst : int;
  from_t : float;
  until_t : float;
  drop_prob : float;
  extra_delay : float;
}

(** A network partition over [[from_t, until_t)]: the groups are mutually
    unreachable; sites listed in no group are unaffected. Groups must be
    disjoint, non-empty and at least two ({!validate}). *)
type partition = { from_t : float; until_t : float; groups : int list list }

(** Silent replica corruption: at [c_at], each {e replica} copy held at
    [c_site] (never a primary copy) has its stored payload scrambled with
    probability [c_prob], bypassing the WAL hook — modelling bit-rot that
    redo recovery cannot see. Nothing in the passive fault machinery notices;
    the self-healing anti-entropy repair ({!Repdb_heal}) is what detects and
    fixes it, so runs with corruption clauses should enable [--heal]. *)
type corruption = { c_site : int; c_at : float; c_prob : float }

type schedule = {
  crashes : crash list;  (** Sorted by [at] after {!validate}. *)
  windows : window list;
  partitions : partition list;
  corruptions : corruption list;  (** Sorted by [c_at] after {!of_string}. *)
  rto : float;  (** Retransmit timeout, ms, for dropped attempts. *)
}

(** No faults; [rto] = 5 ms. *)
val empty : schedule

val is_empty : schedule -> bool

(** Latest instant at which the schedule can still act (last restart, window
    close or partition heal); 0 when empty. Used to extend run horizons —
    messages parked behind a partition only depart after the heal. *)
val last_event : schedule -> float

(** Range/overlap checks: sites within [n_sites], positive durations, probs
    in [0,1], finite windows, per-site crash intervals disjoint, partition
    groups disjoint / non-empty / in range.
    @raise Invalid_argument when violated. *)
val validate : n_sites:int -> schedule -> unit

(** ["0.1.2|3.4.5"] — the spec form of a partition's groups; used by the
    parser, [to_string] and the [Partition_begin]/[Partition_heal] trace
    events. *)
val string_of_groups : int list list -> string

(** {1 Spec syntax}

    A schedule is written as [;]-separated clauses:

    {v
crash@T:site=S[,down=D]       crash site S at T ms, restart after D (default 500)
drop@T1-T2:p=P[,src=A][,dst=B]    drop attempts with prob P in the window
delay@T1-T2:add=MS[,src=A][,dst=B]  add MS ms to deliveries in the window
partition@T1-T2:groups=G1|G2[|..]  separate site groups (sites joined by '.')
corrupt@T:site=S,p=P          scramble each replica at S with prob P at T ms
rto=MS                        retransmit timeout (default 5)
    v}

    e.g. ["crash@2000:site=1,down=500;drop@0-1000:p=0.05,src=0;rto=2"], or
    ["partition@500-1500:groups=0.1.2|3.4.5"] to cut sites 0–2 off from
    3–5 for a second. All clause kinds compose freely. *)

val of_string : string -> (schedule, string) result

(** Canonical spec text; [of_string (to_string s)] round-trips. *)
val to_string : schedule -> string

val pp : Format.formatter -> schedule -> unit

(** [synthetic ~n_sites ~seed ~n_crashes ()] — a crash-only schedule drawn
    from a seeded generator: crash instants uniform in [window] (default
    200–4000 ms), downtimes exponential with [mean_downtime] (default 300 ms,
    clamped to 100–2000), sites chosen so per-site downtimes never overlap.
    [n_corruptions] (default 0) additionally draws that many [corrupt]
    clauses with instants uniform in [window] and probabilities in
    [0.1, 0.5). Deterministic in its arguments; used by the fault-sweep and
    heal-sweep experiments and the chaos fuzzer. *)
val synthetic :
  n_sites:int ->
  seed:int ->
  n_crashes:int ->
  ?n_corruptions:int ->
  ?mean_downtime:float ->
  ?window:float * float ->
  unit ->
  schedule

(** {1 Run-time injection} *)

type injector

(** [injector ~n_sites ~seed schedule] — validates the schedule and owns a
    private RNG stream for drop draws (so fault draws never perturb the
    workload streams). *)
val injector : n_sites:int -> seed:int -> schedule -> injector

val schedule : injector -> schedule

(** Is [site] crashed at simulated time [at]? *)
val down : injector -> site:int -> at:float -> bool

(** [reachable inj ~src ~dst ~at] — false iff some partition active at [at]
    puts [src] and [dst] in different groups. Crash downtime is deliberately
    {e not} reflected here: a crashed site is down, not partitioned, and its
    messages resume within the crash model's own horizon. Senders use this
    oracle to degrade gracefully instead of stalling behind the cut. *)
val reachable : injector -> src:int -> dst:int -> at:float -> bool

(** The transmission plan for one message handed to the link at [now]:
    [dropped] are the failed attempt instants (drop-window losses and
    attempts while an endpoint is down), [depart] is the instant of the
    successful attempt, [extra] the delay-window surcharge at that instant.
    Attempts advance by [rto] (jumping over known downtime), so the plan is
    computed in O(attempts) at send time.
    @raise Failure if no attempt can succeed within 10_000 tries (e.g. a
    [drop_prob = 1] window that never closes). *)
type transmit = { dropped : float list; depart : float; extra : float }

val transmit : injector -> src:int -> dst:int -> now:float -> transmit

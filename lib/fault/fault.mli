(** Deterministic fault schedules and their run-time injector.

    The paper assumes live sites and a network that "delivers messages
    reliably and in FIFO order"; this module is where that assumption is
    deliberately broken. A {!schedule} is a static, seed-independent
    description of the faults a run must survive: site crash/restart windows
    and per-link message-drop / extra-delay windows. An {!injector} turns the
    schedule plus a seeded {!Repdb_sim.Rng} into concrete per-message
    transmission plans, so a run is a pure function of [(params, schedule)] —
    byte-identical across repeats and [-j] levels.

    {b Transport model.} Links are acked: a dropped transmission attempt (a
    drop-window loss, or either endpoint being down) is retried every
    {!field:schedule.rto} ms until it gets through, and per-pair delivery
    order is enforced by the network layer, so each ordered site pair still
    behaves as one reliable FIFO channel — it just stalls while the fault is
    active. This is what lets every propagation protocol converge after
    recovery without protocol-specific resynchronisation: missed propagation
    is simply still in flight.

    {b Crash model.} A crash makes the site unreachable (both directions) for
    [down_for] ms and marks its volatile store memory as lost; at restart the
    cluster wipes the store, rebuilds it with {!Repdb_store.Wal.recover},
    verifies the rebuild, and re-attaches the log. Work already accepted by
    the site before the crash (queued subtransactions, held locks) completes
    rather than being killed — the crash is modelled at the storage and
    transport boundaries, which is where the paper's durability story
    (DataBlitz redo recovery) lives. *)

(** One site failure: down for [[at, at +. down_for)]. *)
type crash = { site : int; at : float; down_for : float }

(** A per-link perturbation window over [[from_t, until_t)]. [src] / [dst] of
    [-1] match any site. Within the window each transmission attempt is lost
    with probability [drop_prob], and successful attempts take [extra_delay]
    additional ms. *)
type window = {
  src : int;
  dst : int;
  from_t : float;
  until_t : float;
  drop_prob : float;
  extra_delay : float;
}

type schedule = {
  crashes : crash list;  (** Sorted by [at] after {!validate}. *)
  windows : window list;
  rto : float;  (** Retransmit timeout, ms, for dropped attempts. *)
}

(** No faults; [rto] = 5 ms. *)
val empty : schedule

val is_empty : schedule -> bool

(** Latest instant at which the schedule can still act (last restart or
    window close); 0 when empty. Used to extend run horizons. *)
val last_event : schedule -> float

(** Range/overlap checks: sites within [n_sites], positive durations, probs
    in [0,1], finite windows, per-site crash intervals disjoint.
    @raise Invalid_argument when violated. *)
val validate : n_sites:int -> schedule -> unit

(** {1 Spec syntax}

    A schedule is written as [;]-separated clauses:

    {v
crash@T:site=S[,down=D]       crash site S at T ms, restart after D (default 500)
drop@T1-T2:p=P[,src=A][,dst=B]    drop attempts with prob P in the window
delay@T1-T2:add=MS[,src=A][,dst=B]  add MS ms to deliveries in the window
rto=MS                        retransmit timeout (default 5)
    v}

    e.g. ["crash@2000:site=1,down=500;drop@0-1000:p=0.05,src=0;rto=2"]. *)

val of_string : string -> (schedule, string) result

(** Canonical spec text; [of_string (to_string s)] round-trips. *)
val to_string : schedule -> string

val pp : Format.formatter -> schedule -> unit

(** [synthetic ~n_sites ~seed ~n_crashes ()] — a crash-only schedule drawn
    from a seeded generator: crash instants uniform in [window] (default
    200–4000 ms), downtimes exponential with [mean_downtime] (default 300 ms,
    clamped to 100–2000), sites chosen so per-site downtimes never overlap.
    Deterministic in its arguments; used by the fault-sweep experiment. *)
val synthetic :
  n_sites:int ->
  seed:int ->
  n_crashes:int ->
  ?mean_downtime:float ->
  ?window:float * float ->
  unit ->
  schedule

(** {1 Run-time injection} *)

type injector

(** [injector ~n_sites ~seed schedule] — validates the schedule and owns a
    private RNG stream for drop draws (so fault draws never perturb the
    workload streams). *)
val injector : n_sites:int -> seed:int -> schedule -> injector

val schedule : injector -> schedule

(** Is [site] crashed at simulated time [at]? *)
val down : injector -> site:int -> at:float -> bool

(** The transmission plan for one message handed to the link at [now]:
    [dropped] are the failed attempt instants (drop-window losses and
    attempts while an endpoint is down), [depart] is the instant of the
    successful attempt, [extra] the delay-window surcharge at that instant.
    Attempts advance by [rto] (jumping over known downtime), so the plan is
    computed in O(attempts) at send time.
    @raise Failure if no attempt can succeed within 10_000 tries (e.g. a
    [drop_prob = 1] window that never closes). *)
type transmit = { dropped : float list; depart : float; extra : float }

val transmit : injector -> src:int -> dst:int -> now:float -> transmit

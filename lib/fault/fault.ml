module Rng = Repdb_sim.Rng

type crash = { site : int; at : float; down_for : float }

type window = {
  src : int;
  dst : int;
  from_t : float;
  until_t : float;
  drop_prob : float;
  extra_delay : float;
}

type partition = { from_t : float; until_t : float; groups : int list list }

type corruption = { c_site : int; c_at : float; c_prob : float }

type schedule = {
  crashes : crash list;
  windows : window list;
  partitions : partition list;
  corruptions : corruption list;
  rto : float;
}

let default_rto = 5.0
let default_down = 500.0
let max_attempts = 10_000

let empty =
  { crashes = []; windows = []; partitions = []; corruptions = []; rto = default_rto }

let is_empty s =
  s.crashes = [] && s.windows = [] && s.partitions = [] && s.corruptions = []

let string_of_groups groups =
  String.concat "|" (List.map (fun g -> String.concat "." (List.map string_of_int g)) groups)

let last_event s =
  let m = List.fold_left (fun acc c -> Float.max acc (c.at +. c.down_for)) 0.0 s.crashes in
  let m =
    List.fold_left
      (fun acc (w : window) -> if Float.is_finite w.until_t then Float.max acc w.until_t else acc)
      m s.windows
  in
  (* Heals count as events: messages parked behind a partition only depart
     after [until_t], so run horizons must extend past it. *)
  let m = List.fold_left (fun acc p -> Float.max acc p.until_t) m s.partitions in
  List.fold_left (fun acc c -> Float.max acc c.c_at) m s.corruptions

let validate ~n_sites s =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let site_ok ~any name v =
    if v >= n_sites || v < if any then -1 else 0 then
      fail "Fault: %s=%d out of range for %d sites" name v n_sites
  in
  if not (s.rto > 0.0 && Float.is_finite s.rto) then fail "Fault: rto=%g must be positive" s.rto;
  List.iter
    (fun c ->
      site_ok ~any:false "site" c.site;
      if c.at < 0.0 || not (Float.is_finite c.at) then fail "Fault: crash at %g ms" c.at;
      if c.down_for <= 0.0 || not (Float.is_finite c.down_for) then
        fail "Fault: crash downtime %g must be positive" c.down_for)
    s.crashes;
  (* Per-site downtimes must not overlap: a site cannot crash while down. *)
  let by_site = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.replace by_site c.site (c :: Option.value ~default:[] (Hashtbl.find_opt by_site c.site)))
    s.crashes;
  Hashtbl.iter
    (fun site cs ->
      let sorted = List.sort (fun a b -> compare a.at b.at) cs in
      let rec check = function
        | a :: (b :: _ as rest) ->
            if a.at +. a.down_for > b.at then
              fail "Fault: overlapping crashes at site %d (%.0f+%.0f overlaps %.0f)" site a.at
                a.down_for b.at;
            check rest
        | _ -> ()
      in
      check sorted)
    by_site;
  List.iter
    (fun w ->
      site_ok ~any:true "src" w.src;
      site_ok ~any:true "dst" w.dst;
      if w.from_t < 0.0 || not (Float.is_finite w.until_t) || w.until_t <= w.from_t then
        fail "Fault: bad window %g-%g" w.from_t w.until_t;
      if w.drop_prob < 0.0 || w.drop_prob > 1.0 then
        fail "Fault: drop probability %g not in [0,1]" w.drop_prob;
      if w.extra_delay < 0.0 || not (Float.is_finite w.extra_delay) then
        fail "Fault: extra delay %g must be >= 0" w.extra_delay)
    s.windows;
  List.iter
    (fun p ->
      if p.from_t < 0.0 || not (Float.is_finite p.until_t) || p.until_t <= p.from_t then
        fail "Fault: bad partition window %g-%g" p.from_t p.until_t;
      if List.length p.groups < 2 then
        fail "Fault: partition %g-%g needs at least two groups" p.from_t p.until_t;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun g ->
          if g = [] then fail "Fault: partition %g-%g has an empty group" p.from_t p.until_t;
          List.iter
            (fun site ->
              site_ok ~any:false "partition site" site;
              if Hashtbl.mem seen site then
                fail "Fault: partition %g-%g lists site %d twice" p.from_t p.until_t site;
              Hashtbl.replace seen site ())
            g)
        p.groups)
    s.partitions;
  List.iter
    (fun c ->
      site_ok ~any:false "corrupt site" c.c_site;
      if c.c_at < 0.0 || not (Float.is_finite c.c_at) then fail "Fault: corrupt at %g ms" c.c_at;
      if c.c_prob <= 0.0 || c.c_prob > 1.0 then
        fail "Fault: corrupt probability %g not in (0,1]" c.c_prob)
    s.corruptions

(* --- spec parsing --------------------------------------------------------- *)

let ( let* ) = Result.bind

let parse_float name v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "faults: %s is not a number: %S" name v)

let parse_int name v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "faults: %s is not an integer: %S" name v)

(* "k1=v1,k2=v2" -> assoc list *)
let parse_opts s =
  let parts = if s = "" then [] else String.split_on_char ',' s in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      match String.index_opt part '=' with
      | Some i ->
          let k = String.sub part 0 i
          and v = String.sub part (i + 1) (String.length part - i - 1) in
          Ok ((k, v) :: acc)
      | None -> Error (Printf.sprintf "faults: expected key=value, got %S" part))
    (Ok []) parts

let opt_field opts key ~default parse =
  match List.assoc_opt key opts with Some v -> parse key v | None -> Ok default

let req_field opts key parse =
  match List.assoc_opt key opts with
  | Some v -> parse key v
  | None -> Error (Printf.sprintf "faults: missing %s=..." key)

(* "T1-T2" *)
let parse_span s =
  match String.index_opt s '-' with
  | Some i ->
      let* a = parse_float "window start" (String.sub s 0 i) in
      let* b = parse_float "window end" (String.sub s (i + 1) (String.length s - i - 1)) in
      Ok (a, b)
  | None -> Error (Printf.sprintf "faults: expected T1-T2, got %S" s)

(* "0.1.2|3.4.5" -> [[0;1;2];[3;4;5]] *)
let parse_groups _name v =
  let group g =
    String.split_on_char '.' g
    |> List.fold_left
         (fun acc site ->
           let* acc = acc in
           let* site = parse_int "partition site" site in
           Ok (site :: acc))
         (Ok [])
    |> Result.map List.rev
  in
  String.split_on_char '|' v
  |> List.fold_left
       (fun acc g ->
         let* acc = acc in
         let* g = group g in
         Ok (g :: acc))
       (Ok [])
  |> Result.map List.rev

let parse_clause acc clause =
  let head, opts_s =
    match String.index_opt clause ':' with
    | Some i -> (String.sub clause 0 i, String.sub clause (i + 1) (String.length clause - i - 1))
    | None -> (clause, "")
  in
  let* opts = parse_opts opts_s in
  match String.index_opt head '@' with
  | Some i -> (
      let kind = String.sub head 0 i
      and arg = String.sub head (i + 1) (String.length head - i - 1) in
      match kind with
      | "crash" ->
          let* at = parse_float "crash time" arg in
          let* site = req_field opts "site" parse_int in
          let* down_for = opt_field opts "down" ~default:default_down parse_float in
          Ok { acc with crashes = { site; at; down_for } :: acc.crashes }
      | "drop" ->
          let* from_t, until_t = parse_span arg in
          let* drop_prob = req_field opts "p" parse_float in
          let* src = opt_field opts "src" ~default:(-1) parse_int in
          let* dst = opt_field opts "dst" ~default:(-1) parse_int in
          Ok
            {
              acc with
              windows = { src; dst; from_t; until_t; drop_prob; extra_delay = 0.0 } :: acc.windows;
            }
      | "delay" ->
          let* from_t, until_t = parse_span arg in
          let* extra_delay = req_field opts "add" parse_float in
          let* src = opt_field opts "src" ~default:(-1) parse_int in
          let* dst = opt_field opts "dst" ~default:(-1) parse_int in
          Ok
            {
              acc with
              windows = { src; dst; from_t; until_t; drop_prob = 0.0; extra_delay } :: acc.windows;
            }
      | "partition" ->
          let* from_t, until_t = parse_span arg in
          let* groups = req_field opts "groups" parse_groups in
          Ok { acc with partitions = { from_t; until_t; groups } :: acc.partitions }
      | "corrupt" ->
          let* c_at = parse_float "corrupt time" arg in
          let* c_site = req_field opts "site" parse_int in
          let* c_prob = req_field opts "p" parse_float in
          Ok { acc with corruptions = { c_site; c_at; c_prob } :: acc.corruptions }
      | other -> Error (Printf.sprintf "faults: unknown clause %S" other))
  | None -> (
      match String.index_opt head '=' with
      | Some i when String.sub head 0 i = "rto" ->
          let* rto = parse_float "rto" (String.sub head (i + 1) (String.length head - i - 1)) in
          Ok { acc with rto }
      | _ -> Error (Printf.sprintf "faults: unknown clause %S" clause))

let of_string spec =
  let clauses =
    String.split_on_char ';' spec |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  let* s = List.fold_left (fun acc c -> Result.bind acc (fun acc -> parse_clause acc c)) (Ok empty) clauses in
  Ok
    {
      s with
      crashes = List.sort (fun a b -> compare (a.at, a.site) (b.at, b.site)) (List.rev s.crashes);
      windows = List.rev s.windows;
      partitions = List.rev s.partitions;
      corruptions =
        List.sort
          (fun a b -> compare (a.c_at, a.c_site) (b.c_at, b.c_site))
          (List.rev s.corruptions);
    }

let to_string s =
  let buf = Buffer.create 64 in
  let clause fmt =
    if Buffer.length buf > 0 then Buffer.add_char buf ';';
    Printf.ksprintf (Buffer.add_string buf) fmt
  in
  List.iter (fun c -> clause "crash@%g:site=%d,down=%g" c.at c.site c.down_for) s.crashes;
  List.iter
    (fun p -> clause "partition@%g-%g:groups=%s" p.from_t p.until_t (string_of_groups p.groups))
    s.partitions;
  List.iter (fun c -> clause "corrupt@%g:site=%d,p=%g" c.c_at c.c_site c.c_prob) s.corruptions;
  List.iter
    (fun w ->
      let pair () =
        (if w.src >= 0 then Printf.sprintf ",src=%d" w.src else "")
        ^ if w.dst >= 0 then Printf.sprintf ",dst=%d" w.dst else ""
      in
      if w.drop_prob > 0.0 then
        clause "drop@%g-%g:p=%g%s" w.from_t w.until_t w.drop_prob (pair ());
      if w.extra_delay > 0.0 then
        clause "delay@%g-%g:add=%g%s" w.from_t w.until_t w.extra_delay (pair ()))
    s.windows;
  if s.rto <> default_rto then clause "rto=%g" s.rto;
  Buffer.contents buf

let pp ppf s =
  if is_empty s then Fmt.string ppf "(none)" else Fmt.string ppf (to_string s)

let synthetic ~n_sites ~seed ~n_crashes ?(n_corruptions = 0) ?(mean_downtime = 300.0)
    ?(window = (200.0, 4000.0)) () =
  let rng = Rng.create ((seed * 73) + 5) in
  let lo, hi = window in
  let site_free = Array.make n_sites 0.0 in
  let crashes = ref [] in
  for _ = 1 to n_crashes do
    let at = Rng.float_range rng lo hi in
    let down_for = Float.min 2000.0 (Float.max 100.0 (Rng.exponential rng mean_downtime)) in
    let start = Rng.int rng n_sites in
    (* First site (in rotation from a random start) that is back up by [at];
       skip the crash when every site is still down. *)
    let rec pick k =
      if k = n_sites then None
      else
        let s = (start + k) mod n_sites in
        if site_free.(s) <= at then Some s else pick (k + 1)
    in
    match pick 0 with
    | Some site ->
        site_free.(site) <- at +. down_for;
        crashes := { site; at; down_for } :: !crashes
    | None -> ()
  done;
  let corruptions = ref [] in
  for _ = 1 to n_corruptions do
    let c_at = Float.round (Rng.float_range rng lo hi) in
    let c_site = Rng.int rng n_sites in
    let c_prob = 0.1 +. (0.4 *. Rng.float rng) in
    corruptions := { c_site; c_at; c_prob } :: !corruptions
  done;
  {
    empty with
    crashes = List.sort (fun a b -> compare (a.at, a.site) (b.at, b.site)) !crashes;
    corruptions =
      List.sort (fun a b -> compare (a.c_at, a.c_site) (b.c_at, b.c_site)) !corruptions;
  }

(* --- injection ------------------------------------------------------------ *)

type injector = {
  sched : schedule;
  rng : Rng.t;
  down_iv : (float * float) list array; (* per site, disjoint, sorted by start *)
  part_iv : (float * float * int array) list;
      (* per partition: (from, until, site -> group id; -1 = in no group) *)
}

let injector ~n_sites ~seed sched =
  validate ~n_sites sched;
  let down_iv = Array.make n_sites [] in
  List.iter
    (fun c -> down_iv.(c.site) <- (c.at, c.at +. c.down_for) :: down_iv.(c.site))
    sched.crashes;
  Array.iteri (fun i ivs -> down_iv.(i) <- List.sort compare ivs) down_iv;
  let part_iv =
    List.map
      (fun p ->
        let gmap = Array.make n_sites (-1) in
        List.iteri (fun gi g -> List.iter (fun site -> gmap.(site) <- gi) g) p.groups;
        (p.from_t, p.until_t, gmap))
      sched.partitions
  in
  { sched; rng = Rng.create ((seed * 2654435761) + 99); down_iv; part_iv }

let schedule inj = inj.sched

let down inj ~site ~at =
  List.exists (fun (s, e) -> at >= s && at < e) inj.down_iv.(site)

(* Earliest instant >= [at] with [site] up. *)
let next_up inj site at =
  match List.find_opt (fun (s, e) -> at >= s && at < e) inj.down_iv.(site) with
  | Some (_, e) -> e
  | None -> at

(* Does some active partition put [src] and [dst] in different groups? Sites
   listed in no group keep full connectivity. This deliberately ignores crash
   downtime: "unreachable" means separated by the topology, so the oracle's
   answer matches the [Partitioned] abort reason. *)
let separated inj ~src ~dst ~at =
  List.exists
    (fun (s, e, gmap) ->
      at >= s && at < e && gmap.(src) >= 0 && gmap.(dst) >= 0 && gmap.(src) <> gmap.(dst))
    inj.part_iv

let reachable inj ~src ~dst ~at = not (separated inj ~src ~dst ~at)

(* Latest heal time over the partitions separating (src, dst) at [at]. *)
let sep_until inj ~src ~dst ~at =
  List.fold_left
    (fun acc (s, e, gmap) ->
      if at >= s && at < e && gmap.(src) >= 0 && gmap.(dst) >= 0 && gmap.(src) <> gmap.(dst)
      then Float.max acc e
      else acc)
    at inj.part_iv

let matches w ~src ~dst ~at =
  (w.src < 0 || w.src = src) && (w.dst < 0 || w.dst = dst) && at >= w.from_t && at < w.until_t

(* Combined loss probability and delay surcharge of the windows active on
   (src, dst) at [at]. *)
let link_state inj ~src ~dst ~at =
  List.fold_left
    (fun (p, extra) w ->
      if matches w ~src ~dst ~at then
        (1.0 -. ((1.0 -. p) *. (1.0 -. w.drop_prob)), extra +. w.extra_delay)
      else (p, extra))
    (0.0, 0.0) inj.sched.windows

type transmit = { dropped : float list; depart : float; extra : float }

let transmit inj ~src ~dst ~now =
  let rto = inj.sched.rto in
  let dropped = ref [] in
  let t = ref now in
  let tries = ref 0 in
  let result = ref None in
  while !result = None do
    incr tries;
    if !tries > max_attempts then
      failwith
        (Printf.sprintf
           "Fault.transmit: message %d->%d sent at %.0f ms never got through after %d attempts \
            (unbounded drop window?)"
           src dst now max_attempts);
    if down inj ~site:src ~at:!t || down inj ~site:dst ~at:!t || separated inj ~src ~dst ~at:!t
    then begin
      (* One timed-out attempt, then probe again once both ends can be up and
         no partition separates them. *)
      dropped := !t :: !dropped;
      let up = Float.max (next_up inj src !t) (next_up inj dst !t) in
      let up = Float.max up (sep_until inj ~src ~dst ~at:!t) in
      t := Float.max up (!t +. rto)
    end
    else begin
      let p, extra = link_state inj ~src ~dst ~at:!t in
      if p > 0.0 && Rng.bool inj.rng p then begin
        dropped := !t :: !dropped;
        t := !t +. rto
      end
      else result := Some extra
    end
  done;
  { dropped = List.rev !dropped; depart = !t; extra = Option.get !result }

(** Per-destination update coalescer for the lazy propagation paths.

    Parks updates in a per-(src, dst) FIFO queue and ships them as one
    network message carrying the whole run. A pair's queue flushes when it
    reaches [size] updates, or when its linger timer expires — armed by the
    first update parked in an empty, un-armed pair, [linger_ms] of simulated
    time later. With [linger_ms = 0] the timer fires within the same
    simulation instant, so only same-instant updates coalesce and delivery
    times are unchanged; larger lingers trade bounded extra propagation
    latency for fuller batches.

    Ordering guarantees relied on by the protocols:
    - per-pair FIFO: updates ship in push order, batches never reorder;
    - [push_now] flushes the pair before shipping its message, so control
      messages (DAG(T) dummies, BackEdge specials) never overtake parked
      updates on the same channel;
    - epoch fencing needs no batcher hook: protocols hold an outstanding
      token per parked update, the reconfiguration coordinator drains
      outstanding work to zero before an epoch switch, and every parked
      update has a flush scheduled — so queues are provably empty at every
      switch and a batch can never mix epochs.

    [size = 1] ships every push immediately as a singleton — exactly the
    pre-batching behavior with no queueing and no timer events. *)

type 'a t

(** [create ~sim ~n_sites ~size ~linger_ms ~ship ()] — [ship] performs the
    actual network send of one coalesced run (called with batches in push
    order, never empty).
    @raise Invalid_argument when [size < 1], [linger_ms] is negative or not
    finite, or [n_sites < 1]. *)
val create :
  sim:Repdb_sim.Sim.t ->
  n_sites:int ->
  size:int ->
  linger_ms:float ->
  ship:(src:int -> dst:int -> 'a list -> unit) ->
  unit ->
  'a t

(** The configured flush threshold. *)
val size : 'a t -> int

(** Park an update for the pair (shipping immediately when [size = 1], when
    the queue fills, or — via the armed timer — after the linger).
    @raise Invalid_argument on out-of-range sites. *)
val push : 'a t -> src:int -> dst:int -> 'a -> unit

(** Flush the pair's parked updates, then ship [x] as its own singleton
    message: channel order is preserved around barrier-like messages. *)
val push_now : 'a t -> src:int -> dst:int -> 'a -> unit

(** Ship the pair's parked updates now (no-op on an empty queue). *)
val flush : 'a t -> src:int -> dst:int -> unit

(** Flush every pair. *)
val flush_all : 'a t -> unit

(** Updates currently parked for the pair. *)
val pending : 'a t -> src:int -> dst:int -> int

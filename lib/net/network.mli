(** Reliable FIFO point-to-point network between sites.

    Models the paper's assumption that "the underlying network delivers
    messages reliably and in FIFO order between any two sites": every message
    sent from [src] to [dst] arrives exactly once, after the configured
    latency, and messages on the same ordered pair never overtake each other
    (latency is per-pair constant, so FIFO follows from the deterministic
    event order of the kernel).

    Delivery is either into the destination's inbox mailbox (default) or into
    a registered handler, which runs as a plain event and must not block —
    handlers are how protocols demultiplex traffic into per-parent queues
    without an extra hop. *)

type 'a t

(** [create ~sim ~n_sites ~latency ()] — [latency src dst] gives the one-way
    delay in ms for that ordered pair; it is sampled once per pair at
    creation. [on_send] is invoked synchronously for every {!send} with the
    message's logical arity (used for cluster-wide message accounting).

    [arity] gives the number of logical updates one physical message carries
    (default: 1). Batched nets pass the batch length so that the sent /
    delivered / in-flight counters and the per-site stats keep counting
    logical updates — comparable across batch sizes — while the simulation
    still schedules one delivery event per physical message.

    Observability: when [trace] is enabled, every send and delivery is
    recorded as a [Msg_send] / [Msg_recv] event tagged with the message kind
    and approximate size from [describe] (defaults to [("msg", 0)]); when
    [stats] is given, per-site ["msg.sent"] / ["msg.recv"] counters are
    registered and bumped.

    Faults: when [injector] is given, each send consults its transmission
    plan — failed attempts (drop windows, endpoints down) are retried every
    RTO, traced as [Msg_drop] and counted in a per-site ["msg.drop"] counter,
    and deliveries are clamped to the pair's latest scheduled delivery so the
    channel stays FIFO across losses. Messages are therefore delayed by
    faults, never lost: the reliable-FIFO contract above still holds. *)
val create :
  sim:Repdb_sim.Sim.t ->
  n_sites:int ->
  latency:(int -> int -> float) ->
  ?arity:('a -> int) ->
  ?on_send:(int -> unit) ->
  ?trace:Repdb_obs.Trace.t ->
  ?describe:('a -> string * int) ->
  ?stats:Repdb_obs.Stats.t ->
  ?injector:Repdb_fault.Fault.injector ->
  unit ->
  'a t

val n_sites : 'a t -> int

(** [send t ~src ~dst msg] — deliver [msg] to [dst] after the pair's latency.
    @raise Invalid_argument on out-of-range sites or [src = dst]. *)
val send : 'a t -> src:int -> dst:int -> 'a -> unit

(** [reachable t ~src ~dst] — the injector's partition oracle at the current
    simulated time: false iff an active partition separates the pair. Always
    true without an injector (and under crashes or drop windows alone — those
    stall the link, they do not cut the topology). Senders consult this to
    fail fast / degrade instead of parking a message behind the cut.
    @raise Invalid_argument on out-of-range sites. *)
val reachable : 'a t -> src:int -> dst:int -> bool

(** The default delivery target for [dst]: messages arrive as [(src, msg)]. *)
val inbox : 'a t -> int -> (int * 'a) Repdb_sim.Mailbox.t

(** [set_handler t dst f] — route [dst]'s traffic to [f ~src msg] instead of
    the inbox. The handler runs at delivery time and must not block. *)
val set_handler : 'a t -> int -> (src:int -> 'a -> unit) -> unit

(** Total logical messages sent so far (physical sends weighted by [arity]). *)
val messages_sent : 'a t -> int

(** Total logical messages whose delivery event has run. *)
val messages_delivered : 'a t -> int

(** Logical messages sent but not yet delivered — counted once per update
    regardless of how many faulty transmission attempts it took. *)
val in_flight : 'a t -> int

(** [in_flight_to t dst] — the subset of {!in_flight} destined for [dst].
    @raise Invalid_argument on an out-of-range site. *)
val in_flight_to : 'a t -> int -> int

(** [in_flight_matching t ~f] — logical in-flight messages on ordered pairs
    selected by [f ~src ~dst]. The healer's failover drain waits for
    [in_flight - in_flight_matching ~f:parked] to reach zero, where [parked]
    selects pairs with a down endpoint or an active partition between them:
    traffic parked behind a crashed site must not stall the epoch switch for
    the whole downtime. *)
val in_flight_matching : 'a t -> f:(src:int -> dst:int -> bool) -> int

(** Undrained messages in [dst]'s inbox mailbox (0 for handler targets,
    which consume at delivery time). *)
val inbox_depth : 'a t -> int -> int

(** Total dropped transmission attempts so far (0 without an injector; a
    single message may account for several). *)
val messages_dropped : 'a t -> int

(** One-way latency for a pair (as sampled at creation). *)
val latency : 'a t -> src:int -> dst:int -> float

(* Per-destination update coalescer for the lazy propagation paths.

   Lazy protocols stream many independent updates along the same copy-graph
   edge; at one network message (and one delivery event) per update, the
   event heap is dominated by propagation traffic. The batcher parks updates
   in a per-(src, dst) queue and ships them as one message carrying the
   whole run, flushing when the queue reaches [size] or when the linger
   timer expires. Per-pair channel order is preserved: a queue is FIFO, a
   flush ships it intact, and [push_now] (for barrier-like control messages
   that must not be reordered with parked updates) flushes the pair before
   sending.

   [size <= 1] short-circuits every push into an immediate singleton ship —
   the exact pre-batching behavior, with no queue traffic and no timer
   events, so default runs stay byte-identical to the unbatched kernel. *)

module Sim = Repdb_sim.Sim

type 'a t = {
  sim : Sim.t;
  size : int;
  linger : float;
  ship : src:int -> dst:int -> 'a list -> unit;
  pending : 'a Queue.t array array;
  armed : bool array array;
      (* A linger timer is outstanding for the pair. One timer at a time:
         re-arming on every push would add an event per update and defeat
         the point; a timer that fires over a queue refilled since its
         arming just flushes it a little early, which keeps the linger an
         upper bound on parking time. *)
  cat : int; (* profiler category for linger flush events *)
}

let create ~sim ~n_sites ~size ~linger_ms ~ship () =
  if n_sites < 1 then invalid_arg "Batcher.create: need at least one site";
  if size < 1 then invalid_arg "Batcher.create: size must be >= 1";
  if linger_ms < 0.0 || not (Float.is_finite linger_ms) then
    invalid_arg "Batcher.create: linger must be >= 0 and finite";
  {
    sim;
    size;
    linger = linger_ms;
    ship;
    pending = Array.init n_sites (fun _ -> Array.init n_sites (fun _ -> Queue.create ()));
    armed = Array.init n_sites (fun _ -> Array.make n_sites false);
    cat = Repdb_obs.Profile.cat (Sim.profile sim) "net";
  }

let size t = t.size

let check t v = if v < 0 || v >= Array.length t.armed then invalid_arg "Batcher: site out of range"

let flush t ~src ~dst =
  check t src;
  check t dst;
  let q = t.pending.(src).(dst) in
  if not (Queue.is_empty q) then begin
    let batch = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    t.ship ~src ~dst batch
  end

let push t ~src ~dst x =
  check t src;
  check t dst;
  if t.size <= 1 then t.ship ~src ~dst [ x ]
  else begin
    let q = t.pending.(src).(dst) in
    Queue.add x q;
    if Queue.length q >= t.size then flush t ~src ~dst
    else if not t.armed.(src).(dst) then begin
      t.armed.(src).(dst) <- true;
      (* linger = 0 still goes through an event: it fires at the current
         instant (after the event cascade that parked the update), so
         same-instant pushes coalesce and delivery times are unchanged. *)
      Sim.after ~cat:t.cat t.sim t.linger (fun () ->
          t.armed.(src).(dst) <- false;
          flush t ~src ~dst)
    end
  end

let push_now t ~src ~dst x =
  check t src;
  check t dst;
  if t.size <= 1 then t.ship ~src ~dst [ x ]
  else begin
    flush t ~src ~dst;
    t.ship ~src ~dst [ x ]
  end

let flush_all t =
  let n = Array.length t.armed in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      flush t ~src ~dst
    done
  done

let pending t ~src ~dst =
  check t src;
  check t dst;
  Queue.length t.pending.(src).(dst)

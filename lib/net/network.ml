module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Trace = Repdb_obs.Trace
module Event = Repdb_obs.Event
module Stats = Repdb_obs.Stats
module Profile = Repdb_obs.Profile
module Fault = Repdb_fault.Fault

type 'a target = Inbox of (int * 'a) Mailbox.t | Handler of (src:int -> 'a -> unit)

type 'a t = {
  sim : Sim.t;
  n : int;
  delays : float array array;
  mutable targets : 'a target array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  cat : int; (* profiler category for delivery events *)
  arity : 'a -> int;
      (* Logical updates carried by one physical message. Always 1 except on
         batched nets, where counters track updates rather than envelopes so
         the message metrics stay comparable across batch sizes. *)
  on_send : int -> unit;
  trace : Trace.t;
  describe : ('a -> string * int) option;
  sent_ctr : Stats.counter option;
  recv_ctr : Stats.counter option;
  drop_ctr : Stats.counter option;
  injector : Fault.injector option;
  inflight_pair : int array;
      (* Per ordered pair (src * n + dst): units accepted minus units
         delivered, so the healer can drain "everything except traffic parked
         behind a crashed or partitioned pair". *)
  fifo_clear : float array array;
      (* Per ordered pair: latest delivery instant scheduled so far. Faulty
         transmissions finish at irregular times, so later sends clamp to this
         to preserve the FIFO-channel guarantee. *)
}

let create ~sim ~n_sites ~latency ?(arity = fun _ -> 1) ?(on_send = fun _ -> ())
    ?(trace = Trace.disabled) ?describe ?stats ?injector () =
  if n_sites < 1 then invalid_arg "Network.create: need at least one site";
  let delays =
    Array.init n_sites (fun src ->
        Array.init n_sites (fun dst ->
            let d = latency src dst in
            if d < 0.0 then invalid_arg "Network.create: negative latency";
            d))
  in
  {
    sim;
    n = n_sites;
    delays;
    targets = Array.init n_sites (fun _ -> Inbox (Mailbox.create ()));
    sent = 0;
    delivered = 0;
    dropped = 0;
    cat = Profile.cat (Sim.profile sim) "net";
    arity;
    on_send;
    trace;
    describe;
    sent_ctr = Option.map (fun s -> Stats.counter s "msg.sent") stats;
    recv_ctr = Option.map (fun s -> Stats.counter s "msg.recv") stats;
    drop_ctr =
      (match injector with
      | Some _ -> Option.map (fun s -> Stats.counter s "msg.drop") stats
      | None -> None);
    injector;
    inflight_pair = Array.make (n_sites * n_sites) 0;
    fifo_clear = Array.init n_sites (fun _ -> Array.make n_sites 0.0);
  }

let n_sites t = t.n

let check t v = if v < 0 || v >= t.n then invalid_arg "Network: site out of range"

let describe_msg t msg = match t.describe with Some d -> d msg | None -> ("msg", 0)

let reachable t ~src ~dst =
  check t src;
  check t dst;
  match t.injector with
  | None -> true
  | Some inj -> Fault.reachable inj ~src ~dst ~at:(Sim.now t.sim)

let send t ~src ~dst msg =
  check t src;
  check t dst;
  if src = dst then invalid_arg "Network.send: src = dst";
  let units = t.arity msg in
  t.sent <- t.sent + units;
  let pair = (src * t.n) + dst in
  t.inflight_pair.(pair) <- t.inflight_pair.(pair) + units;
  t.on_send units;
  (match t.sent_ctr with Some c -> Stats.add c ~site:src units | None -> ());
  let deliver () =
    t.delivered <- t.delivered + units;
    t.inflight_pair.(pair) <- t.inflight_pair.(pair) - units;
    (match t.recv_ctr with Some c -> Stats.add c ~site:dst units | None -> ());
    match t.targets.(dst) with
    | Inbox mb -> Mailbox.send mb (src, msg)
    | Handler f -> f ~src msg
  in
  let tracing = Trace.on t.trace in
  let kind, size = if tracing then describe_msg t msg else ("msg", 0) in
  if tracing then Trace.record t.trace (Event.Msg_send { src; dst; kind; size });
  match t.injector with
  | None ->
      if tracing then
        Sim.after ~cat:t.cat t.sim t.delays.(src).(dst) (fun () ->
            Trace.record t.trace (Event.Msg_recv { src; dst; kind; size });
            deliver ())
      else Sim.after ~cat:t.cat t.sim t.delays.(src).(dst) deliver
  | Some inj ->
      (* The acked link computes the whole retransmission plan up front (the
         schedule is static, so future attempt outcomes are known); the clamp
         against [fifo_clear] keeps the pair a FIFO channel even though
         retransmitted messages finish late. *)
      let tm = Fault.transmit inj ~src ~dst ~now:(Sim.now t.sim) in
      let n_drops = List.length tm.Fault.dropped in
      if n_drops > 0 then begin
        t.dropped <- t.dropped + n_drops;
        match t.drop_ctr with Some c -> Stats.add c ~site:src n_drops | None -> ()
      end;
      if tracing then
        List.iter
          (fun at ->
            Sim.at ~cat:t.cat t.sim at (fun () ->
                Trace.record t.trace (Event.Msg_drop { src; dst; kind; size })))
          tm.Fault.dropped;
      let arrive = tm.Fault.depart +. t.delays.(src).(dst) +. tm.Fault.extra in
      let arrive = Float.max arrive t.fifo_clear.(src).(dst) in
      t.fifo_clear.(src).(dst) <- arrive;
      if tracing then
        Sim.at ~cat:t.cat t.sim arrive (fun () ->
            Trace.record t.trace (Event.Msg_recv { src; dst; kind; size });
            deliver ())
      else Sim.at ~cat:t.cat t.sim arrive deliver

let messages_dropped t = t.dropped

let inbox t dst =
  check t dst;
  match t.targets.(dst) with
  | Inbox mb -> mb
  | Handler _ -> invalid_arg "Network.inbox: site has a custom handler"

let set_handler t dst f =
  check t dst;
  t.targets.(dst) <- Handler f

let messages_sent t = t.sent
let messages_delivered t = t.delivered

(* Messages accepted by [send] whose delivery event has not yet run. Counts
   one per message regardless of retransmissions (drops are re-sent by the
   acked link until the single delivery fires). *)
let in_flight t = t.sent - t.delivered

let in_flight_to t dst =
  check t dst;
  let acc = ref 0 in
  for src = 0 to t.n - 1 do
    acc := !acc + t.inflight_pair.((src * t.n) + dst)
  done;
  !acc

let in_flight_matching t ~f =
  let acc = ref 0 in
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      let v = t.inflight_pair.((src * t.n) + dst) in
      if v <> 0 && f ~src ~dst then acc := !acc + v
    done
  done;
  !acc

let inbox_depth t dst =
  check t dst;
  match t.targets.(dst) with Inbox mb -> Mailbox.length mb | Handler _ -> 0

let latency t ~src ~dst =
  check t src;
  check t dst;
  t.delays.(src).(dst)

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Trace = Repdb_obs.Trace
module Event = Repdb_obs.Event
module Stats = Repdb_obs.Stats

type 'a target = Inbox of (int * 'a) Mailbox.t | Handler of (src:int -> 'a -> unit)

type 'a t = {
  sim : Sim.t;
  n : int;
  delays : float array array;
  mutable targets : 'a target array;
  mutable sent : int;
  on_send : unit -> unit;
  trace : Trace.t;
  describe : ('a -> string * int) option;
  sent_ctr : Stats.counter option;
  recv_ctr : Stats.counter option;
}

let create ~sim ~n_sites ~latency ?(on_send = fun () -> ()) ?(trace = Trace.disabled) ?describe
    ?stats () =
  if n_sites < 1 then invalid_arg "Network.create: need at least one site";
  let delays =
    Array.init n_sites (fun src ->
        Array.init n_sites (fun dst ->
            let d = latency src dst in
            if d < 0.0 then invalid_arg "Network.create: negative latency";
            d))
  in
  {
    sim;
    n = n_sites;
    delays;
    targets = Array.init n_sites (fun _ -> Inbox (Mailbox.create ()));
    sent = 0;
    on_send;
    trace;
    describe;
    sent_ctr = Option.map (fun s -> Stats.counter s "msg.sent") stats;
    recv_ctr = Option.map (fun s -> Stats.counter s "msg.recv") stats;
  }

let n_sites t = t.n

let check t v = if v < 0 || v >= t.n then invalid_arg "Network: site out of range"

let describe_msg t msg = match t.describe with Some d -> d msg | None -> ("msg", 0)

let send t ~src ~dst msg =
  check t src;
  check t dst;
  if src = dst then invalid_arg "Network.send: src = dst";
  t.sent <- t.sent + 1;
  t.on_send ();
  (match t.sent_ctr with Some c -> Stats.incr c ~site:src | None -> ());
  let deliver () =
    (match t.recv_ctr with Some c -> Stats.incr c ~site:dst | None -> ());
    match t.targets.(dst) with
    | Inbox mb -> Mailbox.send mb (src, msg)
    | Handler f -> f ~src msg
  in
  if Trace.on t.trace then begin
    let kind, size = describe_msg t msg in
    Trace.record t.trace (Event.Msg_send { src; dst; kind; size });
    Sim.after t.sim t.delays.(src).(dst) (fun () ->
        Trace.record t.trace (Event.Msg_recv { src; dst; kind; size });
        deliver ())
  end
  else Sim.after t.sim t.delays.(src).(dst) deliver

let inbox t dst =
  check t dst;
  match t.targets.(dst) with
  | Inbox mb -> mb
  | Handler _ -> invalid_arg "Network.inbox: site has a custom handler"

let set_handler t dst f =
  check t dst;
  t.targets.(dst) <- Handler f

let messages_sent t = t.sent

let latency t ~src ~dst =
  check t src;
  check t dst;
  t.delays.(src).(dst)

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Lock_mgr = Repdb_lock.Lock_mgr
module History = Repdb_txn.History
module Store = Repdb_store.Store
module Network = Repdb_net.Network
module Batcher = Repdb_net.Batcher
module Txn = Repdb_txn.Txn

let name = "lazy-master"
let updates_replicas = true

type msg =
  | Read_request of { item : int; owner : int; reply : bool -> unit }
  | Read_reply of { granted : bool; deliver : bool -> unit }
  | Push of { gid : int; writes : int list; origin_commit : float; reply : unit -> unit }
      (** Updates shipped to a replica site; acknowledged once applied. *)
  | Push_ack of { deliver : unit -> unit }
  | Release of { owner : int }

(* Only [Push] messages coalesce (they are the lazy propagation stream); the
   lock-protocol traffic — read requests, replies, acks, releases — ships via
   [push_now], which flushes any parked pushes on the pair first so the
   channel order the lock protocol relies on is preserved. *)
type t = { c : Cluster.t; net : msg list Network.t; bat : msg Batcher.t; mutable remote : int }

let remote_reads t = t.remote

(* Serve a shared-lock request at the primary (the value is then read from
   the local replica at the requester — fresh, because writers hold their
   locks until every replica acknowledged). *)
let serve_read t site ~src ~item ~owner ~reply =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  let respond granted =
    Batcher.push_now t.bat ~src:site ~dst:src (Read_reply { granted; deliver = reply })
  in
  match Lock_mgr.acquire c.locks.(site) ~owner item Lock_mgr.Shared with
  | Lock_mgr.Granted ->
      History.record c.history ~site ~item ~gid:owner ~attempt:owner History.R;
      respond true
  | Lock_mgr.Timed_out | Lock_mgr.Deadlock_victim -> respond false

(* Apply a pushed update set at a replica site (short local X locks, retried
   against concurrent pushes), then acknowledge. *)
let serve_push t site ~src ~gid ~writes ~origin_commit ~reply =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  let items = Routing.local_replicas c.placement site writes in
  Exec.apply_secondary c ~gid ~site items ~finally:(fun () ->
      if items <> [] then Metrics.propagation c.metrics ~delay:(Sim.now c.sim -. origin_commit);
      Batcher.push_now t.bat ~src:site ~dst:src (Push_ack { deliver = reply }))

let server t site =
  let inbox = Network.inbox t.net site in
  let handle src msg =
    match msg with
    | Read_request { item; owner; reply } ->
        Sim.spawn t.c.sim (fun () -> serve_read t site ~src ~item ~owner ~reply)
    | Read_reply { granted; deliver } ->
        Cluster.dec_outstanding t.c;
        deliver granted
    | Push { gid; writes; origin_commit; reply } ->
        Sim.spawn t.c.sim (fun () -> serve_push t site ~src ~gid ~writes ~origin_commit ~reply)
    | Push_ack { deliver } ->
        Cluster.dec_outstanding t.c;
        deliver ()
    | Release { owner } ->
        Sim.spawn t.c.sim (fun () ->
            Cluster.use_cpu t.c site t.c.params.cpu_msg;
            Lock_mgr.release_all t.c.locks.(site) ~owner;
            Cluster.dec_outstanding t.c)
  in
  let rec loop () =
    let src, batch = Mailbox.recv inbox in
    List.iter (handle src) batch;
    loop ()
  in
  loop ()

let create (c : Cluster.t) =
  let net = Cluster.make_batch_net c in
  let t = { c; net; bat = Cluster.make_batcher c net; remote = 0 } in
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    Sim.spawn ~cat c.sim (fun () -> server t site)
  done;
  t

(* [batched] only for pushes: the lazy stream may park in the coalescer;
   synchronous lock traffic always flushes ahead of itself and ships now. *)
let rpc ?(batched = false) t ~site ~dst msg_of_reply =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  Sim.suspend (fun resume ->
      Cluster.inc_outstanding c;
      if batched then Batcher.push t.bat ~src:site ~dst (msg_of_reply resume)
      else Batcher.push_now t.bat ~src:site ~dst (msg_of_reply resume))

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let gid = Cluster.fresh_gid c in
  let attempt = gid in
  let remote_sites = Hashtbl.create 4 in
  let cleanup_remote () =
    Hashtbl.iter
      (fun primary () ->
        Cluster.inc_outstanding c;
        Batcher.push_now t.bat ~src:site ~dst:primary (Release { owner = attempt }))
      remote_sites
  in
  let rec run = function
    | [] -> Ok ()
    | op :: rest -> (
        match op with
        | Txn.Write _ -> (
            match Exec.run_ops c ~gid ~attempt ~site [ op ] with
            | Ok () -> run rest
            | Error reason -> Error reason)
        | Txn.Read item ->
            let primary = c.placement.primary.(item) in
            if primary = site then (
              match Exec.run_ops c ~gid ~attempt ~site [ op ] with
              | Ok () -> run rest
              | Error reason -> Error reason)
            else begin
              t.remote <- t.remote + 1;
              Hashtbl.replace remote_sites primary ();
              if rpc t ~site ~dst:primary (fun reply -> Read_request { item; owner = attempt; reply })
              then begin
                (* Read the local replica under the primary's lock. *)
                Cluster.use_cpu c site c.params.cpu_op;
                ignore (Store.read c.stores.(site) item);
                run rest
              end
              else Error Txn.Remote_denied
            end)
  in
  match run spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      cleanup_remote ();
      Txn.Aborted reason
  | Ok () ->
      let writes = List.sort_uniq compare (Txn.writes spec) in
      Exec.commit_cost c ~site;
      Exec.apply_writes c ~gid ~site writes;
      (* Push the updates and hold every lock until all replicas ack. *)
      let dests = Hashtbl.create 4 in
      List.iter
        (fun item -> Array.iter (fun s -> Hashtbl.replace dests s ()) c.placement.replicas.(item))
        writes;
      let origin_commit = Sim.now c.sim in
      Hashtbl.iter
        (fun dst () ->
          ignore
            (rpc ~batched:true t ~site ~dst (fun resume ->
                 Push { gid; writes; origin_commit; reply = (fun () -> resume true) })))
        dests;
      Exec.release c ~attempt ~site;
      cleanup_remote ();
      Txn.Committed

(* Placement is read afresh on every access; nothing cached to rebuild. *)
let reconfigure = Some ignore

(** Epoch-based optimistic concurrency control (Mao et al. style).

    Transactions execute optimistically against their local site — reads
    capture the observed item version, writes are buffered — and block at
    the epoch boundary: every [Params.occ_epoch_ms] each site flushes its
    buffered transactions as {e one batch} to the validator (site 0), which
    performs backward read-set validation against the versions certified
    since (accept iff every read is still latest) in arrival order. Winners'
    writes are applied at the origin primary by its server and propagated
    lazily to replicas; losers abort with
    {!Repdb_txn.Txn.Validation_failed}.

    The epoch batch amortizes the per-transaction certification round trip
    that makes [central] a bottleneck, at the cost of commit latency (half
    an epoch on average) — and of validation aborts where contention is
    high, since the read set ages for up to a whole epoch before it is
    checked. *)

include Protocol.S

(** Transactions validated (accepted) and rejected so far. *)
val validated : t -> int

val rejected : t -> int

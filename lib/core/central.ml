module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Lock_mgr = Repdb_lock.Lock_mgr
module History = Repdb_txn.History
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Network = Repdb_net.Network
module Txn = Repdb_txn.Txn

let name = "central"
let updates_replicas = true

let central_site = 0

type cert_msg =
  | Certify of { reads : (int * int) list; writes : int list; reply : bool -> unit }
  | Certify_reply of { ok : bool; deliver : bool -> unit }

type update_msg = { gid : int; writes : int list; origin_commit : float }

type t = {
  c : Cluster.t;
  net : cert_msg Network.t;
  update_net : update_msg Network.t;
  committed_version : int array; (* per item, at the central site *)
  mutable n_certified : int;
  mutable n_rejected : int;
}

let certified t = t.n_certified
let rejected t = t.n_rejected

(* The certification check itself: every read must still be current. Charged
   to the central site's CPU by the caller. *)
let decide t ~reads ~writes =
  let ok = List.for_all (fun (item, version) -> t.committed_version.(item) = version) reads in
  if ok then begin
    List.iter (fun item -> t.committed_version.(item) <- t.committed_version.(item) + 1) writes;
    t.n_certified <- t.n_certified + 1
  end
  else t.n_rejected <- t.n_rejected + 1;
  ok

let serve_certify t ~src ~reads ~writes ~reply =
  let c = t.c in
  (* The central site's CPU is the shared bottleneck. *)
  Cluster.use_cpu c central_site (c.params.cpu_msg +. c.params.cpu_op);
  let ok = decide t ~reads ~writes in
  Network.send t.net ~src:central_site ~dst:src (Certify_reply { ok; deliver = reply })

let cert_server t site =
  let c = t.c in
  let inbox = Network.inbox t.net site in
  let rec loop () =
    let src, msg = Mailbox.recv inbox in
    (match msg with
    | Certify { reads; writes; reply } ->
        (* The request's outstanding count carries over to the reply. *)
        Sim.spawn c.sim (fun () -> serve_certify t ~src ~reads ~writes ~reply)
    | Certify_reply { ok; deliver } ->
        Cluster.dec_outstanding c;
        deliver ok);
    loop ()
  in
  loop ()

(* One sequential applier per site: updates of an item all originate at its
   primary, so FIFO delivery + in-order application preserves the
   certification order (concurrent application could invert two updates that
   overlap on some items but not others). *)
let update_applier t site =
  let c = t.c in
  let inbox = Network.inbox t.update_net site in
  let rec loop () =
    let _, { gid; writes; origin_commit } = Mailbox.recv inbox in
    Cluster.use_cpu c site c.params.cpu_msg;
    let items = Routing.local_replicas c.placement site writes in
    Exec.apply_secondary c ~gid ~site items ~finally:(fun () ->
        if items <> [] then
          Metrics.propagation c.metrics ~delay:(Sim.now c.sim -. origin_commit);
        Cluster.dec_outstanding c);
    loop ()
  in
  loop ()

let create (c : Cluster.t) =
  let t =
    {
      c;
      net = Cluster.make_net c;
      update_net = Cluster.make_net c;
      committed_version = Array.make c.params.n_items 0;
      n_certified = 0;
      n_rejected = 0;
    }
  in
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    Sim.spawn ~cat c.sim (fun () -> cert_server t site);
    Sim.spawn ~cat c.sim (fun () -> update_applier t site)
  done;
  t

(* Execute ops locally under strict 2PL, capturing the version of every item
   read (the certification evidence). *)
let run_ops_versioned (c : Cluster.t) ~gid ~attempt ~site ops =
  let reads = ref [] in
  let rec go = function
    | [] -> Ok (List.rev !reads)
    | op :: rest -> (
        let item, mode, kind =
          match op with
          | Txn.Read item -> (item, Lock_mgr.Shared, History.R)
          | Txn.Write item -> (item, Lock_mgr.Exclusive, History.W)
        in
        match Lock_mgr.acquire c.locks.(site) ~owner:attempt item mode with
        | Lock_mgr.Granted ->
            Cluster.use_cpu c site c.params.cpu_op;
            (match op with
            | Txn.Read item ->
                let v = Store.read c.stores.(site) item in
                reads := (item, v.Value.version) :: !reads
            | Txn.Write _ -> ());
            History.record c.history ~site ~item ~gid ~attempt kind;
            go rest
        | (Lock_mgr.Timed_out | Lock_mgr.Deadlock_victim) as o ->
            Error (Exec.abort_reason_of_outcome o))
  in
  go ops

let certify t ~site ~reads ~writes =
  let c = t.c in
  if site = central_site then begin
    Cluster.use_cpu c central_site c.params.cpu_op;
    decide t ~reads ~writes
  end
  else begin
    Cluster.use_cpu c site c.params.cpu_msg;
    Sim.suspend (fun resume ->
        Cluster.inc_outstanding c;
        Network.send t.net ~src:site ~dst:central_site (Certify { reads; writes; reply = resume }))
  end

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let gid = Cluster.fresh_gid c in
  let attempt = Cluster.fresh_attempt c in
  match run_ops_versioned c ~gid ~attempt ~site spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      Txn.Aborted reason
  | Ok reads ->
      let writes = List.sort_uniq compare (Txn.writes spec) in
      if certify t ~site ~reads ~writes then begin
        Exec.commit_cost c ~site;
        Exec.apply_writes c ~gid ~site writes;
        Exec.release c ~attempt ~site;
        (* Lazy direct propagation; per-item streams are FIFO from the
           primary, so replicas apply in certification order. *)
        let dests = Hashtbl.create 4 in
        List.iter
          (fun item -> Array.iter (fun s -> Hashtbl.replace dests s ()) c.placement.replicas.(item))
          writes;
        let now = Sim.now c.sim in
        Hashtbl.iter
          (fun dst () ->
            Cluster.inc_outstanding c;
            Network.send t.update_net ~src:site ~dst { gid; writes; origin_commit = now })
          dests;
        if Hashtbl.length dests > 0 then
          Cluster.use_cpu c site (float_of_int (Hashtbl.length dests) *. c.params.cpu_msg);
        Txn.Committed
      end
      else begin
        Exec.abort_local c ~attempt ~site;
        Txn.Aborted Txn.Remote_denied
      end

(* Placement is read afresh on every access; nothing cached to rebuild. *)
let reconfigure = Some ignore

(** Primary-site locking (PSL) — the baseline of Section 5.1.

    A lazy variant of the primary-copy locking approach: operations on items
    whose primary copy is local are handled locally; a read of a replica must
    obtain a shared lock {e at the item's primary site}, which ships the
    current value back with the lock grant. Updates touch only the local
    primary copy and are never pushed to replicas — a replica is refreshed
    implicitly because every read of it is served by the primary. All locks
    (local and remote) are released when the transaction commits, without
    waiting for any propagation.

    Distributed deadlocks are possible and are resolved by the lock-wait
    timeout at each site. *)

include Protocol.S

(** Remote (replica) reads performed so far — the message-overhead driver
    behind Figure 2's PSL curves. *)
val remote_reads : t -> int

(** DAG(T) timestamps (Definitions 3.1–3.3 of the paper, plus the epoch
    numbers of Section 3.3).

    A {e tuple} is a pair of a site and that site's local counter value. A
    timestamp is a vector of tuples in increasing site order — one tuple for
    the committing site and one for a subset of its copy-graph ancestors —
    together with an epoch number.

    Sites here are identified by their {e rank} in a fixed total order
    consistent with the (acyclic) copy graph; the DAG(T) protocol converts
    site ids to ranks before building timestamps, which keeps the
    increasing-site-order invariant true by construction.

    Comparison is total: epochs compare first; for equal epochs the vectors
    compare lexicographically with the {e prefix-is-smaller} rule and, at the
    first differing position, {e reverse} order on sites and forward order on
    counters. E.g. (Definition 3.3):
    [(s1,1) < (s1,1)(s2,1)], [(s1,1)(s3,1) < (s1,1)(s2,1)],
    [(s1,1)(s2,1) < (s1,1)(s2,2)]. *)

type tuple = { site : int; lts : int }

type t
(** Abstract: internally the vector is kept newest-tuple-first so {!concat}
    and {!bump_own} are O(1) — a transaction crossing a long propagation
    chain extends its timestamp once per hop, and the tail-append
    representation made that quadratic. Use {!tuples} for the forward
    (increasing-site-order) view. *)

(** [initial site] — the timestamp [(site, 0)] with epoch 0; the initial site
    timestamp of the protocol. *)
val initial : int -> t

(** The epoch number. *)
val epoch : t -> int

(** The vector in forward (increasing-site) order. O(n). *)
val tuples : t -> tuple list

(** [of_tuples ~epoch tuples] builds a timestamp from a forward-order vector.
    No validation — pair with {!well_formed} when the input is untrusted. *)
val of_tuples : epoch:int -> tuple list -> t

(** Total order of Definition 3.3 extended with epochs. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [bump_own t site] increments the counter in the tuple for [site] — the
    commit step of a primary subtransaction. The tuple for [site] must be the
    last of the vector (it always is for a site timestamp).
    @raise Invalid_argument otherwise. *)
val bump_own : t -> int -> t

(** [concat t ~site ~lts] — the new site timestamp after a secondary
    subtransaction with timestamp [t] commits at [site]:
    [t · (site, lts)], keeping [t]'s epoch.
    @raise Invalid_argument if appending breaks the increasing-site order. *)
val concat : t -> site:int -> lts:int -> t

(** [with_epoch t e] — [t] with epoch [e]. *)
val with_epoch : t -> int -> t

(** The vector respects strictly-increasing site order. *)
val well_formed : t -> bool

val pp : Format.formatter -> t -> unit

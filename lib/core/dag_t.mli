(** The DAG(T) protocol — "DAG with Timestamps" (Section 3).

    Requires an acyclic copy graph. Updates travel {e directly} along copy-
    graph edges, avoiding DAG(WT)'s multi-hop routing. Every primary
    subtransaction is stamped at commit with its site's timestamp — a vector
    of (site, counter) tuples plus an epoch number — and every site executes
    the secondary subtransactions waiting at the heads of its per-parent
    queues in timestamp order, choosing the minimum only when {e every}
    queue is non-empty.

    Progress machinery (Section 3.3): source sites increment their epoch
    periodically, and a site that has not sent anything to a child for a
    while sends a {e dummy} secondary subtransaction that merely pushes the
    child's site timestamp forward. *)

include Protocol.S

(** The relaxation Section 3.2.3 alludes to ("this assumption can be easily
    relaxed"): several secondary subtransactions execute concurrently at a
    site. Dispatch and commit still follow timestamp order — a worker may
    start locking only when it is the oldest pending secondary on every item
    it writes, and commits are serialised by dispatch ticket — so the site
    timestamp evolves exactly as in the serial applier. *)
val create_pipelined : Cluster.t -> t

(** Topological rank used as the timestamp site order ([rank t.(site)]). *)
val ranks : t -> int array

(** Current site timestamp (for tests/examples). *)
val site_timestamp : t -> int -> Timestamp.t

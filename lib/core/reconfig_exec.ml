module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Condvar = Repdb_sim.Condvar
module Network = Repdb_net.Network
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Placement = Repdb_workload.Placement
module Generator = Repdb_workload.Generator
module Reconfig = Repdb_reconfig.Reconfig
module Stats = Repdb_obs.Stats

type xfer = { item : int; value : Value.t }

let describe_xfer (_ : xfer) = ("state-transfer", 24)

(* New (item, site) replica pairs introduced by [np], ascending — the values
   that must be shipped before routing can switch. *)
let additions (old_pl : Placement.t) (np : Placement.t) =
  let acc = ref [] in
  for item = np.n_items - 1 downto 0 do
    (* Untouched rows are shared by the incremental [Placement.apply_step],
       so physical equality skips the per-site membership checks wholesale. *)
    if np.replicas.(item) != old_pl.replicas.(item) then
      Array.iter
        (fun site ->
          if not (Placement.has_replica old_pl ~site item) then acc := (item, site) :: !acc)
        np.replicas.(item)
  done;
  !acc

(* One reconfiguration step, live:
   quiesce -> state transfer -> quiesce -> atomic switch -> resume. *)
let execute_step (c : Cluster.t) net ~reconfigure ~gen (ts : Reconfig.timed) =
  let t0 = Sim.now c.sim in
  Cluster.trace_reconfig_begin c ~epoch:c.config_epoch;
  (* Stall clients at the barrier and wait until no transaction attempt is
     executing and no propagation is in flight: the old epoch is fully
     applied everywhere it will ever be. [acquire_switch] also serializes
     against a healer failover in progress. *)
  Cluster.acquire_switch c;
  let np = Placement.apply_step c.placement ts.step in
  (* Bulk-copy current primary values to newly added replicas. The transfer
     rides the typed network (latency, CPU, fault injection), and each
     install is counted outstanding until applied, so the second drain
     below waits for the last install — even one delayed by a crashed
     destination, since acked links deliver it after the restart. *)
  List.iter
    (fun (item, dst) ->
      let src = np.primary.(item) in
      Cluster.inc_outstanding c;
      Network.send net ~src ~dst { item; value = Store.read c.stores.(src) item };
      Cluster.use_cpu c src c.params.cpu_msg)
    (additions c.placement np);
  Cluster.await_drained c;
  (* Atomic switch: no process can run between these assignments (the
     simulator only interleaves at blocking points). *)
  c.placement <- np;
  reconfigure ();
  Generator.refresh gen np;
  c.config_epoch <- c.config_epoch + 1;
  c.reconfigs <- c.reconfigs + 1;
  let switch = Sim.now c.sim -. t0 in
  (match c.switch_hist with Some h -> Stats.observe h ~site:0 switch | None -> ());
  Cluster.trace_reconfig_switch c ~epoch:c.config_epoch ~duration:switch;
  Cluster.release_switch c;
  Cluster.trace_reconfig_done c ~epoch:c.config_epoch ~duration:(Sim.now c.sim -. t0)

let receive_server c net site =
  let inbox = Network.inbox net site in
  let rec loop () =
    let src, (x : xfer) = Mailbox.recv inbox in
    Cluster.use_cpu c site c.params.cpu_msg;
    Store.install c.stores.(site) x.item x.value;
    c.state_transfers <- c.state_transfers + 1;
    Cluster.trace_state_transfer c ~item:x.item ~src ~dst:site;
    Cluster.dec_outstanding c;
    loop ()
  in
  loop ()

let schedule (c : Cluster.t) ~reconfigure ~gen =
  let plan = c.params.reconfig in
  if not (Reconfig.is_empty plan) then begin
    let net = Cluster.make_net c ~describe:describe_xfer in
    let cat = Cluster.profile_cat c "reconfig" in
    for site = 0 to c.params.n_sites - 1 do
      Sim.spawn ~cat c.sim (fun () -> receive_server c net site)
    done;
    Sim.spawn ~cat c.sim (fun () ->
        List.iter
          (fun (ts : Reconfig.timed) ->
            let now = Sim.now c.sim in
            if ts.at > now then Sim.delay (ts.at -. now);
            execute_step c net ~reconfigure ~gen ts)
          plan.steps)
  end

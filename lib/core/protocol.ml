module type S = sig
  type t

  val name : string
  val updates_replicas : bool
  val create : Cluster.t -> t
  val submit : t -> Repdb_txn.Txn.spec -> Repdb_txn.Txn.outcome
  val reconfigure : (t -> unit) option
end

type t = (module S)

let name (module P : S) = P.name

(** Experiment harness: one entry per table/figure of the paper's evaluation
    (Section 5), plus the extra sweeps implied by the ranges of Table 1 and
    our own ablations. Each experiment runs the relevant protocols over a
    parameter sweep and returns printable series; the bench executable and
    the CLI front these. *)

module Params = Repdb_workload.Params

(** Every experiment accepts an optional [?pool]; with one, the independent
    [Driver.run]s (one per protocol x swept value) execute on its domains.
    Results are placed by input index and each run owns all of its mutable
    state, so parallel output is bit-identical to the sequential path (there
    is a test). Without [?pool] everything runs in the caller, as before. *)

type point = {
  x : float;  (** The swept parameter value. *)
  reports : (string * Driver.report) list;  (** protocol name -> report. *)
}

type figure = {
  id : string;  (** e.g. "fig2a". *)
  title : string;
  xlabel : string;
  points : point list;
}

(** [run_point params protocols x] runs every protocol at one parameter
    setting (in parallel given [?pool]) and returns the figure point for
    swept value [x]. *)
val run_point : ?pool:Repdb_par.Pool.t -> Params.t -> Protocol.t list -> float -> point

(** {1 The paper's figures} *)

(** Figure 2(a): throughput vs backedge probability, BackEdge vs PSL. *)
val fig2a : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> ?steps:int -> unit -> figure

(** Figure 2(b): throughput vs replication probability. *)
val fig2b : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> ?steps:int -> unit -> figure

(** Figure 3(a): throughput vs read-op probability at [b = 0], [r = 0.5],
    no read-only transactions. *)
val fig3a : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> ?steps:int -> unit -> figure

(** Figure 3(b): same sweep at [b = 1]. *)
val fig3b : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> ?steps:int -> unit -> figure

(** Section 5.3.4: response times and propagation delay at the defaults. *)
val response_times : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> (string * Driver.report) list

(** {1 Table 1 range sweeps (tech-report experiments)} *)

val sweep_sites : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure
val sweep_threads : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure
val sweep_latency : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure
val sweep_read_txn : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> ?steps:int -> unit -> figure

(** {1 Ablations} *)

(** All six protocols at the defaults, over a DAG copy graph ([b = 0]) so the
    DAG protocols are applicable. *)
val ablation_protocols : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> (string * Driver.report) list

(** Eager, centralized certification and lazy-master vs the lazy protocols as
    sites grow — the introduction's "eager does not scale" claim plus
    Section 1.2's "the central site becomes a bottleneck". *)
val ablation_eager_scaling : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Chain-tree BackEdge (the paper's evaluated variant) vs the general
    per-component tree (Section 5.1 expects the latter to win) across the
    backedge-probability sweep. *)
val ablation_tree_routing : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> ?steps:int -> unit -> figure

(** The paper's 50 ms timeout vs local waits-for-graph detection (with the
    timeout kept as a distributed-deadlock backstop), at the defaults. *)
val ablation_deadlock_policy : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> (string * Driver.report) list

(** DAG(T) propagation delay as the dummy-subtransaction idle threshold
    varies — the cost of the Section 3.3 progress machinery ([b = 0]). *)
val ablation_dummy_period : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Hotspot skew: BackEdge vs PSL as the probability of hitting the hot 20%
    of each site's pool grows — contention beyond the paper's uniform
    workload. *)
val ablation_hotspot : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Straggler machine: one machine's CPU slowed by a growing factor. The
    centralized certifier (whose central site lives on the straggler)
    collapses; the decentralized lazy protocols degrade gracefully. *)
val ablation_straggler : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Site ordering (Section 4.2 in protocol form): a hub site that replicates
    reference data to every spoke. If the hub is numbered last, every copy-
    graph edge is a backedge and each of its updates runs the eager path; a
    feedback-arc-set-derived order puts the hub first and makes the whole
    graph forward. Compares BackEdge under the identity order vs the
    [Backedge.greedy_fas]-derived order on that topology. *)
val ablation_site_order : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> (string * Driver.report) list

(** Fault sweep: BackEdge, DAG(WT) and PSL ([b = 0] so the copy graph is a
    DAG) under 0 / 1 / 2 / 4 / 8 injected site crashes drawn by
    [Fault.synthetic] from the run seed. Throughput degrades with downtime
    while the avg_propagation column shows the convergence lag the
    retransmitting links introduce; every run still converges and (with
    [record_history]) stays serializable. *)
val sweep_faults : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Online-reconfiguration sweep: BackEdge, DAG(WT) and PSL ([b = 0]) under
    0 / 1 / 2 / 4 / 8 synthetic add/drop/rebalance steps drawn by
    [Reconfig.synthetic] from the run seed and executed live mid-run. The
    reconfig_stall_ms CSV column is the aggregate mid-run throughput dip;
    every run still converges and (with [record_history]) multi-epoch
    histories stay serializable. *)
val sweep_reconfig : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Partition sweep: BackEdge, DAG(WT) and PSL ([b = 0]) under a clean
    two-way split of the sites (first half vs second half) lasting
    0 / 250 / 500 / 1000 / 2000 ms from t = 100 ms. All runs arm a 250 ms
    transaction deadline, the default backoff retry policy and a 60 s
    bounded-staleness read fallback, so the figure shows graceful
    degradation: deadline/partitioned aborts and unavailability grow with
    the split's duration while PSL serves bounded-stale local reads; every
    run converges after heal. *)
val sweep_partition : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Contention sweep: the optimistic protocols (occ-epoch, ssi) against
    BackEdge, DAG(WT) and PSL ([b = 0]) as the Zipf skew of item selection
    grows (theta = 0 / 0.5 / 0.7 / 0.9 / 0.99). At low skew optimistic
    execution wins on commit rate; under heavy skew it pays with validation
    aborts instead of lock waits — visible in the per-reason abort columns
    ([aborts_validation_failed], [aborts_first_committer_lost],
    [aborts_dangerous_structure] vs [aborts_lock_timeout] /
    [aborts_deadlock]). *)
val sweep_occ : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** Self-healing sweep: MTTR, failovers and repairs vs the φ suspicion
    threshold (2 / 4 / 8 / 16 / 32) under a fixed
    crash-the-primary-plus-corruption schedule with healing on and no
    operator-scheduled recovery. [b = 0] keeps DAG(WT) applicable alongside
    BackEdge and PSL; deadline + retry keep the failover drain bounded. The
    trade-off lands in the [mttr_ms] / [unavail_ms] columns: low thresholds
    detect fast but risk false failovers, high ones sit through the
    outage. *)
val sweep_heal : ?pool:Repdb_par.Pool.t -> ?base:Params.t -> unit -> figure

(** {1 Registry} *)

(** What an experiment produces: a swept figure, or a flat list of labelled
    reports. *)
type outcome = Figure of figure | Reports of (string * Driver.report) list

type entry = {
  exp_id : string;  (** The CLI name, e.g. "fig2a". *)
  doc : string;  (** One-line description for help text. *)
  run : pool:Repdb_par.Pool.t option -> base:Params.t -> steps:int -> outcome;
      (** Runners without a step-count knob ignore [steps]. *)
}

(** Every experiment, in presentation order. The CLI derives both its help
    text and its dispatch from this list so the two cannot drift. *)
val registry : entry list

val ids : string list
val find : string -> entry option

(** [timeline_files outcome] — every run timeline the outcome collected
    (present when the base parameters had [timeline_every > 0]), paired with
    a filesystem-safe basename ([<figure>_x<value>_<protocol>] for figures,
    the report label for flat report lists). The CLI writes each as
    [<basename>.csv] under [--timeline-dir]. *)
val timeline_files : outcome -> (string * Repdb_obs.Timeline.t) list

(** {1 Rendering} *)

val pp_figure : Format.formatter -> figure -> unit
val pp_reports : Format.formatter -> (string * Driver.report) list -> unit

(** CSV text (one line per point and protocol:
    [figure,x,protocol,throughput_per_site,abort_rate,avg_response,p99_response,avg_propagation,messages,reconfigs,state_transfers,reconfig_stall_ms,<aborts_* columns>,stale_reads,max_staleness_ms,unavail_ms]
    where the [aborts_*] block has one count column per
    {!Repdb_txn.Txn.abort_reason} constructor in
    [Txn.all_abort_reasons] order, e.g. [aborts_lock_timeout] ...
    [aborts_dangerous_structure]). *)
val to_csv : figure -> string

(** ASCII plot of per-site throughput against the swept parameter, one glyph
    per protocol — a terminal rendition of the paper's figures. *)
val render_ascii : figure -> string

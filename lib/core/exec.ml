module Txn = Repdb_txn.Txn
module History = Repdb_txn.History
module Lock_mgr = Repdb_lock.Lock_mgr
module Store = Repdb_store.Store

let abort_reason_of_outcome = function
  | Lock_mgr.Timed_out -> Txn.Lock_timeout
  | Lock_mgr.Deadlock_victim -> Txn.Deadlock
  | Lock_mgr.Granted -> invalid_arg "Exec.abort_reason_of_outcome: Granted"

let run_op (c : Cluster.t) ~gid ~attempt ~site op =
  let locks = c.locks.(site) in
  let item, mode, kind =
    match op with
    | Txn.Read item -> (item, Lock_mgr.Shared, History.R)
    | Txn.Write item -> (item, Lock_mgr.Exclusive, History.W)
  in
  match Lock_mgr.acquire locks ~owner:attempt item mode with
  | Lock_mgr.Granted ->
      Cluster.use_cpu c site c.params.cpu_op;
      (match op with
      | Txn.Read item -> ignore (Store.read c.stores.(site) item)
      | Txn.Write _ -> () (* deferred to commit *));
      History.record c.history ~site ~item ~gid ~attempt kind;
      Ok ()
  | (Lock_mgr.Timed_out | Lock_mgr.Deadlock_victim) as o -> Error (abort_reason_of_outcome o)

let run_ops c ~gid ~attempt ~site ops =
  let rec go = function
    | [] -> Ok ()
    | op :: rest -> ( match run_op c ~gid ~attempt ~site op with Ok () -> go rest | e -> e)
  in
  go ops

let acquire_writes c ~gid ~attempt ~site items =
  run_ops c ~gid ~attempt ~site (List.map (fun item -> Txn.Write item) items)

let apply_writes (c : Cluster.t) ~gid ~site items =
  List.iter
    (fun item ->
      Store.apply c.stores.(site) item ~writer:gid ();
      Cluster.note_apply c ~site ~item)
    items

let commit_cost ?owner (c : Cluster.t) ~site =
  match owner with
  | None -> Cluster.use_cpu c site c.params.cpu_commit
  | Some owner ->
      let t0 = Repdb_sim.Sim.now c.sim in
      Cluster.use_cpu c site c.params.cpu_commit;
      Cluster.span_add c ~owner Repdb_obs.Span.Commit (Repdb_sim.Sim.now c.sim -. t0)

let release (c : Cluster.t) ~attempt ~site = Lock_mgr.release_all c.locks.(site) ~owner:attempt

let abort_local (c : Cluster.t) ~attempt ~site =
  History.discard_attempt c.history ~attempt;
  release c ~attempt ~site

let rec apply_secondary c ~gid ~site items ~finally =
  if items = [] then finally ()
  else begin
    let attempt = Cluster.fresh_attempt c in
    match acquire_writes c ~gid ~attempt ~site items with
    | Ok () ->
        commit_cost c ~site;
        apply_writes c ~gid ~site items;
        Cluster.trace_secondary_commit c ~gid ~site;
        release c ~attempt ~site;
        finally ()
    | Error _ ->
        abort_local c ~attempt ~site;
        apply_secondary c ~gid ~site items ~finally
  end

module Sim = Repdb_sim.Sim
module Rng = Repdb_sim.Rng
module Lock_mgr = Repdb_lock.Lock_mgr
module Params = Repdb_workload.Params
module Generator = Repdb_workload.Generator
module Placement = Repdb_workload.Placement
module Txn = Repdb_txn.Txn
module Serializability = Repdb_txn.Serializability

module Stats = Repdb_obs.Stats
module Trace = Repdb_obs.Trace
module Timeline = Repdb_obs.Timeline
module Profile = Repdb_obs.Profile

type report = {
  protocol : string;
  params : Params.t;
  summary : Metrics.summary;
  serializability : Serializability.verdict option;
  divergent : Convergence.divergence list option;
  copy_graph_edges : int;
  n_backedges : int;
  n_replicas : int;
  lock_stats : Lock_mgr.stats;
  sim_events : int;
  sim_time : float;
  trace : Trace.t;
  site_stats : Stats.t;
  crashes : int;
  msg_drops : int;
  partitions : int;
  reconfigs : int;
  state_transfers : int;
  reconfig_stall : float;
  heal : Heal_exec.summary option;
  timeline : Timeline.t option;
  profile : Profile.t;
}

let client (c : Cluster.t) submit gen rng retry_rng ~site =
  let p = c.params in
  let commit_ctr = Stats.counter c.stats "txn.commit"
  and abort_ctr = Stats.counter c.stats "txn.abort"
  and response_hist = Stats.histogram c.stats "response" in
  for _ = 1 to p.txns_per_thread do
    (* A crashed site accepts no new transactions; its clients pause until
       the restart broadcast. *)
    if Cluster.faulty c then Cluster.await_site_up c site;
    (* An in-progress epoch switch stalls the client here (the mid-run
       throughput dip the reconfig experiment measures). *)
    Cluster.reconfig_barrier c ~site;
    let spec = ref (Generator.gen_with gen rng ~site) in
    let spec_epoch = ref c.config_epoch in
    let start = Sim.now c.sim in
    (* [n_failed] counts this transaction's failed attempts; each retry gets
       a fresh deadline (the deadline is per attempt, not per transaction). *)
    let rec attempt n_failed =
      Cluster.reconfig_barrier c ~site;
      (* A retry that crossed an epoch switch redraws its transaction: the
         old spec may read replicas the new placement dropped from this
         site, whose local copies no longer receive updates. *)
      if c.config_epoch <> !spec_epoch then begin
        spec := Generator.gen_with gen rng ~site;
        spec_epoch := c.config_epoch
      end;
      Cluster.txn_started c;
      Cluster.arm_deadline c;
      let outcome = submit !spec in
      Cluster.txn_finished c;
      match outcome with
      | Txn.Committed ->
          let response = Sim.now c.sim -. start in
          Metrics.commit c.metrics ~site ~response;
          Metrics.timeline_commit c.metrics ~at:(Sim.now c.sim);
          Stats.incr commit_ctr ~site;
          Stats.observe response_hist ~site response
      | Txn.Aborted reason -> (
          Metrics.abort c.metrics ~site reason;
          Metrics.timeline_abort c.metrics ~at:(Sim.now c.sim);
          Stats.incr abort_ctr ~site;
          match p.retry with
          | Params.No_retry -> ()
          | Params.Backoff { base; multiplier; cap; max_retries } ->
              if n_failed < max_retries then begin
                let backoff =
                  Float.min cap (base *. (multiplier ** float_of_int n_failed))
                in
                (* Jitter in [0.5, 1.0), drawn from the dedicated per-client
                   stream so retries never perturb the workload draws. *)
                let think = backoff *. (0.5 +. (0.5 *. Rng.float retry_rng)) in
                Sim.delay think;
                Cluster.span_think c ~site think;
                attempt (n_failed + 1)
              end)
    in
    attempt 0
  done;
  Cluster.client_finished c

let run_on (c : Cluster.t) (module P : Protocol.S) =
  let p = c.params in
  (* Refuse unsupported combinations up front, before any simulation runs. *)
  let reconfig_hook : P.t -> unit =
    if Repdb_reconfig.Reconfig.is_empty p.reconfig && not p.heal then fun _ -> ()
    else
      match P.reconfigure with
      | Some f -> f
      | None ->
          invalid_arg
            (Printf.sprintf "Driver: protocol %s does not support %s" P.name
               (if p.heal then "healing (failover needs the reconfigure hook)"
                else "online reconfiguration"))
  in
  let proto = P.create c in
  let gen = Generator.create c.rng p c.placement in
  let cat_client = Cluster.profile_cat c "client" in
  for site = 0 to p.n_sites - 1 do
    for thread = 0 to p.threads_per_site - 1 do
      Cluster.client_started c;
      let rng = Rng.create ((p.seed * 1_000_003) + (site * 131) + thread) in
      (* Separate stream for backoff jitter: enabling retries must not shift
         the workload stream, and vice versa. *)
      let retry_rng = Rng.create ((p.seed * 48271) + (site * 131) + thread) in
      Sim.spawn ~cat:cat_client c.sim (fun () ->
          client c (P.submit proto) gen rng retry_rng ~site)
    done
  done;
  Cluster.schedule_faults c;
  Reconfig_exec.schedule c ~reconfigure:(fun () -> reconfig_hook proto) ~gen;
  let healer =
    if p.heal then Some (Heal_exec.schedule c ~reconfigure:(fun () -> reconfig_hook proto) ~gen)
    else None
  in
  (* The timeline ticker: samples every [timeline_every] ms of simulated
     time and stops rescheduling once the run is quiescent, so it never
     keeps the drain phase alive. *)
  (match c.timeline with
  | None -> ()
  | Some tl ->
      Timeline.set_meta tl [ ("protocol", P.name); ("seed", string_of_int p.seed) ];
      let every = Timeline.interval tl in
      let cat_tick = Cluster.profile_cat c "timeline" in
      let rec tick at =
        Sim.at ~cat:cat_tick c.sim at (fun () ->
            Cluster.sample_timeline c;
            if not c.stopped then tick (at +. every))
      in
      tick 0.0);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  let total_txns = p.n_sites * p.threads_per_site * p.txns_per_thread in
  let horizon =
    120_000.0
    +. (2_000.0 *. float_of_int total_txns /. float_of_int p.n_sites)
    +. Repdb_fault.Fault.last_event p.faults
    +. Repdb_reconfig.Reconfig.last_event p.reconfig
  in
  Sim.run_until c.sim horizon;
  if not (Cluster.quiescent c) then
    failwith
      (Printf.sprintf "Driver.run: %s failed to quiesce (clients=%d outstanding=%d t=%.0fms)"
         P.name c.clients_running c.outstanding (Sim.now c.sim));
  (* Drain any leftover timer wake-ups past the stop flag. *)
  Sim.run c.sim;
  (* With healing on, one last full anti-entropy sweep after quiescence: the
     backstop that makes convergence unconditional even when the relaxed
     stale-epoch fence dropped propagation mid-failover. *)
  (match healer with
  | None -> ()
  | Some h ->
      Heal_exec.final_sweep h;
      Sim.run c.sim);
  let heal_summary = Option.map Heal_exec.summary healer in
  let summary = Metrics.summarize c.metrics ~n_sites:p.n_sites ~messages:c.messages in
  (* Fold the end-of-run breakdown into the timeline metadata so `repdb
     report` can render it from the CSV alone. *)
  (match c.timeline with
  | None -> ()
  | Some tl ->
      let aborts =
        List.map
          (fun (r, n) -> ("aborts." ^ Txn.string_of_abort r, string_of_int n))
          summary.Metrics.aborts_by_reason
      in
      let heal_meta =
        match heal_summary with
        | None -> []
        | Some (h : Heal_exec.summary) ->
            [
              ("detector.suspicions", string_of_int h.suspicions);
              ("detector.false", string_of_int h.false_suspicions);
              ("heal.failovers", string_of_int h.failovers);
              ("heal.promoted", string_of_int h.promoted_items);
              ("heal.rejoins", string_of_int h.rejoins);
              ("heal.mttr_mean_ms", Printf.sprintf "%.3f" h.mttr_mean);
              ("heal.mttr_max_ms", Printf.sprintf "%.3f" h.mttr_max);
              ("repair.sessions", string_of_int h.repair_sessions);
              ("repair.items", string_of_int h.repaired_items);
              ("heal.stale_drops", string_of_int h.stale_drops);
              ("corrupt.events", string_of_int h.corruption_events);
              ("corrupt.items", string_of_int h.corrupt_items);
            ]
      in
      Timeline.set_meta tl (Timeline.meta tl @ aborts @ heal_meta));
  let lock_stats =
    Array.fold_left
      (fun (acc : Lock_mgr.stats) lm ->
        let s = Lock_mgr.stats lm in
        {
          Lock_mgr.acquires = acc.acquires + s.acquires;
          waits = acc.waits + s.waits;
          timeouts = acc.timeouts + s.timeouts;
          deadlock_aborts = acc.deadlock_aborts + s.deadlock_aborts;
        })
      { Lock_mgr.acquires = 0; waits = 0; timeouts = 0; deadlock_aborts = 0 }
      c.locks
  in
  {
    protocol = P.name;
    params = p;
    summary;
    serializability =
      (if Repdb_txn.History.enabled c.history then Some (Serializability.check c.history) else None);
    divergent = (if P.updates_replicas then Some (Convergence.check c) else None);
    copy_graph_edges = Repdb_graph.Digraph.n_edges (Placement.copy_graph c.placement);
    n_backedges = List.length (Placement.backedges c.placement);
    n_replicas = Placement.n_replicas c.placement;
    lock_stats;
    sim_events = Sim.events_executed c.sim;
    sim_time = Sim.now c.sim;
    trace = c.trace;
    site_stats = c.stats;
    crashes = Cluster.crash_count c;
    msg_drops =
      (if Cluster.faulty c then Stats.counter_total (Stats.counter c.stats "msg.drop") else 0);
    partitions = Cluster.partition_count c;
    reconfigs = c.reconfigs;
    state_transfers = c.state_transfers;
    reconfig_stall = c.stall_total;
    heal = heal_summary;
    timeline = c.timeline;
    profile = c.profile;
  }

let run ?placement ?trace ?trace_capacity params protocol =
  let c =
    match placement with
    | Some pl -> Cluster.create_with ?trace ?trace_capacity params pl
    | None -> Cluster.create ?trace ?trace_capacity params
  in
  run_on c protocol

let pp_report ppf r =
  Fmt.pf ppf "@[<v>[%s] %a@ %a@ %a@ copy-graph edges=%d backedges=%d replicas=%d@ locks: %d acquires, %d waits, %d timeouts, %d deadlock aborts@ %a%a%a%a%a@]"
    r.protocol Params.pp r.params Metrics.pp_summary r.summary Metrics.pp_per_site r.summary
    r.copy_graph_edges r.n_backedges
    r.n_replicas r.lock_stats.acquires r.lock_stats.waits r.lock_stats.timeouts
    r.lock_stats.deadlock_aborts
    (fun ppf r ->
      if not (Repdb_fault.Fault.is_empty r.params.faults) then
        Fmt.pf ppf "faults: %d crashes survived, %d dropped transmissions, %d partitions@ "
          r.crashes r.msg_drops r.partitions)
    r
    (fun ppf r ->
      if not (Repdb_reconfig.Reconfig.is_empty r.params.reconfig) then
        Fmt.pf ppf "reconfig: %d epoch switches, %d state transfers, %.1f ms client stall@ "
          r.reconfigs r.state_transfers r.reconfig_stall)
    r
    (fun ppf r ->
      match r.heal with
      | None -> ()
      | Some h -> Fmt.pf ppf "%a@ " Heal_exec.pp_summary h)
    r
    (Fmt.option (fun ppf v -> Fmt.pf ppf "serializability: %a@ " Serializability.pp_verdict v))
    r.serializability
    (Fmt.option (fun ppf d ->
         Fmt.pf ppf "convergence: %s"
           (if d = [] then "ok" else Printf.sprintf "%d divergent copies" (List.length d))))
    r.divergent

let pp_site_stats ppf r = Stats.pp_table ppf r.site_stats

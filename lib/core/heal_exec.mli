(** Self-healing executor: heartbeat-driven φ-accrual failure detection,
    automatic primary failover through the epoch machinery, and Merkle-style
    anti-entropy repair.

    Scheduled by the driver when [--heal] is on. All activity rides a
    dedicated control-plane network (same latency model and fault injector as
    the data nets, but outside the data-plane message/outstanding accounting)
    and is driven entirely by simulated time, so healing runs stay
    deterministic and byte-identical across repeats and [-j].

    Protocol requirements: failover reuses the online-reconfiguration hook,
    so the protocol must provide {!Protocol.S.reconfigure}; healing a
    blocking protocol (PSL's synchronous remote reads) additionally needs
    [--txn-deadline] so the weak drain is bounded. *)

type t

(** End-of-run healing totals, embedded in {!Driver.report}. *)
type summary = {
  suspicions : int;
  false_suspicions : int;
      (** Suspected while actually up — partitions or scheduling jitter; a
          false failover costs availability (one epoch switch), never
          consistency. *)
  failovers : int;  (** Epoch switches executed by the healer. *)
  promoted_items : int;
  rejoins : int;
  repair_sessions : int;
  repaired_items : int;  (** Values installed by [Repair] messages. *)
  incidents_open : int;  (** Sites still suspected when the run ended. *)
  mttr_mean : float;  (** ms from suspicion until rejoin repair shipped. *)
  mttr_max : float;
  failover_mean : float;  (** ms per failover: weak drain + switch. *)
  stale_drops : int;  (** Old-epoch messages dropped by the relaxed fence. *)
  corruption_events : int;
  corrupt_items : int;
}

(** [schedule c ~reconfigure ~gen] — create the control-plane net, the
    per-pair detector matrix and the [detector.*]/[repair.*]/[heal.*]
    counters, install the timeline φ probe, and spawn the heartbeat,
    suspicion-poll and anti-entropy fibers. [reconfigure] is the protocol's
    epoch hook; [gen] is refreshed with the promoted placement on
    failover. *)
val schedule : Cluster.t -> reconfigure:(unit -> unit) -> gen:Repdb_workload.Generator.t -> t

(** Spawn a full repair sweep over every (primary, holder) pair — the
    post-quiescence convergence backstop. The caller must run the simulator
    afterwards to drain it. *)
val final_sweep : t -> unit

val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit

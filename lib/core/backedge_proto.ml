module Sim = Repdb_sim.Sim
module Condvar = Repdb_sim.Condvar
module Mailbox = Repdb_sim.Mailbox
module Lock_mgr = Repdb_lock.Lock_mgr
module History = Repdb_txn.History
module Digraph = Repdb_graph.Digraph
module Tree = Repdb_graph.Tree
module Backedge = Repdb_graph.Backedge
module Network = Repdb_net.Network
module Batcher = Repdb_net.Batcher
module Placement = Repdb_workload.Placement
module Txn = Repdb_txn.Txn

let name = "backedge"
let updates_replicas = true

(* Safety nets on top of victimisation, derived from the params (see the .mli
   for the derivation): how long a primary waits per round for its special
   message before giving up, and how many lock-wait rounds a backedge
   subtransaction retries before notifying its origin. *)
let origin_wait (p : Repdb_workload.Params.t) =
  2.0 *. float_of_int (max 1 (p.n_sites - 1)) *. (p.lock_timeout +. p.latency)

let participant_retry_cap (p : Repdb_workload.Params.t) =
  int_of_float (ceil (origin_wait p /. p.lock_timeout)) + 1

type chain_msg =
  | Normal of { gid : int; writes : int list; origin_commit : float; epoch : int }
  | Special of { gid : int; origin : int; writes : int list; epoch : int }

type direct_msg =
  | Exec_request of { gid : int; origin : int; writes : int list }
  | Decide of { gid : int; commit : bool; origin_commit : float }
  | Exec_failed of { gid : int }

type pending = {
  p_gid : int;
  mutable p_state : [ `Waiting | `Special_arrived | `Failed of Txn.abort_reason ];
  p_cv : Condvar.t;
}

type participant = {
  bp_gid : int;
  bp_origin : int;
  bp_attempt : int;
  bp_items : int list; (* replicas staged at this site *)
  mutable bp_state : [ `Executing | `Staged | `Cancelled ];
}

type t = {
  c : Cluster.t;
  mutable tr : Tree.t;
  retree : unit -> Tree.t; (* rebuild the tree for the current placement *)
  tree_net : chain_msg list Network.t; (* one physical message = one coalesced run *)
  tree_bat : chain_msg Batcher.t;
  direct_net : direct_msg Network.t;
  mutable in_subtree : Routing.subtree_map;
      (* site -> item bitset -> replica within subtree(site) *)
  pending_by_attempt : (int, pending) Hashtbl.t array; (* per site *)
  pending_by_gid : (int, pending) Hashtbl.t;
  participants : (int, participant) Hashtbl.t array; (* per site, by gid *)
  participants_by_attempt : (int, participant) Hashtbl.t array;
  aborted_gids : (int, unit) Hashtbl.t array;
  ow : float; (* origin wait per round, ms; derived from params *)
  retry_cap : int; (* participant lock-wait rounds before Exec_failed *)
}

let tree t = t.tr

let backedges t =
  List.filter
    (fun (u, v) -> Tree.is_ancestor t.tr v u)
    (Digraph.edges (Placement.copy_graph t.c.placement))

(* --- placement / routing helpers ---------------------------------------- *)

(* Replica sites that are strict tree ancestors of [site], sorted by depth:
   the eager targets of a transaction writing [writes]; the head is the
   farthest from [site] (closest to the root). *)
let backedge_targets t site writes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun item ->
      Array.iter
        (fun s -> if s <> site && Tree.is_ancestor t.tr s site then Hashtbl.replace tbl s ())
        t.c.placement.replicas.(item))
    writes;
  let targets = Hashtbl.fold (fun s () acc -> s :: acc) tbl [] in
  List.sort (fun a b -> compare (Tree.depth t.tr a) (Tree.depth t.tr b)) targets

(* Forward a normal (lazy) subtransaction to every relevant tree child.
   Non-blocking. Returns the number of sends. *)
let forward_normal t site (gid, writes, origin_commit) =
  let children = Routing.relevant_children t.in_subtree t.tr site writes in
  List.iter
    (fun child ->
      Cluster.inc_outstanding t.c;
      Batcher.push t.tree_bat ~src:site ~dst:child
        (Normal { gid; writes; origin_commit; epoch = t.c.config_epoch }))
    children;
  List.length children

(* The unique child of [site] on the tree path towards [origin]. *)
let next_hop t site origin =
  match Tree.path_down t.tr site origin with
  | hop :: _ -> hop
  | [] -> invalid_arg "Backedge_proto: no path to origin"

(* --- deadlock victimisation -------------------------------------------- *)

(* A lock wait at [site] timed out while items were needed by a secondary or
   backedge subtransaction. Abort blockers that are parked backedge
   primaries; notify the origins of blockers that are staged backedge
   subtransactions (the paper's rule: the primary in backedge wait is the
   victim, never the secondary that must eventually complete). *)
let victimise t site items =
  let locks = t.c.locks.(site) in
  let blockers =
    List.concat_map (fun item -> List.map fst (Lock_mgr.holders locks item)) items
    |> List.sort_uniq compare
  in
  List.iter
    (fun attempt ->
      match Hashtbl.find_opt t.pending_by_attempt.(site) attempt with
      | Some p when p.p_state = `Waiting ->
          p.p_state <- `Failed Txn.Deadlock;
          Condvar.broadcast p.p_cv
      | _ -> (
          match Hashtbl.find_opt t.participants_by_attempt.(site) attempt with
          | Some bp when bp.bp_state <> `Cancelled ->
              Cluster.inc_outstanding t.c;
              Network.send t.direct_net ~src:site ~dst:bp.bp_origin (Exec_failed { gid = bp.bp_gid })
          | _ -> ()))
    blockers

(* Apply a normal secondary, victimising blockers after every failed round
   (a timed-out wait is the paper's deadlock signal). *)
let apply_secondary t ~gid ~site items ~finally =
  let c = t.c in
  if items = [] then finally ()
  else begin
    let rec round tries =
      let attempt = Cluster.fresh_attempt c in
      match Exec.acquire_writes c ~gid ~attempt ~site items with
      | Ok () ->
          Exec.commit_cost c ~site;
          Exec.apply_writes c ~gid ~site items;
          Cluster.trace_secondary_commit c ~gid ~site;
          Exec.release c ~attempt ~site;
          finally ()
      | Error _ ->
          Exec.abort_local c ~attempt ~site;
          victimise t site items;
          round (tries + 1)
    in
    round 0
  end

(* --- backedge subtransactions ------------------------------------------ *)

(* Execute a backedge subtransaction at a target site: exclusive locks on the
   local replicas, writes staged but not applied, locks kept. Returns the
   participant on success. *)
let run_participant t ~gid ~origin ~site items =
  let c = t.c in
  let rec attempt_loop tries =
    if Hashtbl.mem t.aborted_gids.(site) gid then None
    else if tries > t.retry_cap then begin
      Cluster.inc_outstanding c;
      Network.send t.direct_net ~src:site ~dst:origin (Exec_failed { gid });
      None
    end
    else begin
      let attempt = Cluster.fresh_attempt c in
      let bp =
        { bp_gid = gid; bp_origin = origin; bp_attempt = attempt; bp_items = items; bp_state = `Executing }
      in
      Hashtbl.replace t.participants.(site) gid bp;
      Hashtbl.replace t.participants_by_attempt.(site) attempt bp;
      match Exec.acquire_writes c ~gid ~attempt ~site items with
      | Ok () when bp.bp_state = `Executing ->
          bp.bp_state <- `Staged;
          if Repdb_obs.Trace.on c.trace then
            Repdb_obs.Trace.record c.trace (Repdb_obs.Event.Backedge_stage { gid; site });
          Some bp
      | Ok () ->
          (* Cancelled (Decide abort) while waiting for the last lock. *)
          Exec.abort_local c ~attempt ~site;
          Hashtbl.remove t.participants.(site) gid;
          Hashtbl.remove t.participants_by_attempt.(site) attempt;
          None
      | Error _ ->
          Exec.abort_local c ~attempt ~site;
          Hashtbl.remove t.participants.(site) gid;
          Hashtbl.remove t.participants_by_attempt.(site) attempt;
          if bp.bp_state = `Cancelled then None
          else begin
            victimise t site items;
            attempt_loop (tries + 1)
          end
    end
  in
  attempt_loop 0

(* The special chases the normals committed before it down the same chain
   FIFO — [push_now] flushes any parked normals on the hop first, so the
   special can never overtake them inside the batcher. *)
let forward_special t ~src (gid, origin, writes) =
  Cluster.inc_outstanding t.c;
  Batcher.push_now t.tree_bat ~src ~dst:(next_hop t src origin)
    (Special { gid; origin; writes; epoch = t.c.config_epoch })

(* --- tree applier -------------------------------------------------------- *)

let process_tree_msg t site msg =
  let c = t.c in
  (* Epoch fence: the operator coordinator drains all in-flight propagation
     before it switches routing, so tree messages never cross an epoch
     boundary — except after a healer failover, whose weak drain lets
     messages parked behind the outage surface under the new epoch. Those
     are dropped with accounting (a dropped Special simply lets its origin's
     wait time out; anti-entropy repairs dropped Normals). *)
  let epoch = match msg with Normal { epoch; _ } | Special { epoch; _ } -> epoch in
  if Cluster.stale_epoch c ~site ~epoch then Cluster.dec_outstanding c
  else begin
  Cluster.use_cpu c site c.params.cpu_msg;
  match msg with
  | Normal { gid; writes; origin_commit; epoch = _ } ->
      let items = Routing.local_replicas c.placement site writes in
      let sent = ref 0 in
      apply_secondary t ~gid ~site items ~finally:(fun () ->
          if items <> [] then
            Cluster.record_propagation c ~gid ~site ~delay:(Sim.now c.sim -. origin_commit);
          sent := forward_normal t site (gid, writes, origin_commit);
          Cluster.dec_outstanding c);
      if !sent > 0 then Cluster.use_cpu c site (float_of_int !sent *. c.params.cpu_msg)
  | Special { gid; origin; writes; epoch = _ } ->
      if site = origin then begin
        (* All earlier secondaries have committed here: wake the primary. *)
        (match Hashtbl.find_opt t.pending_by_gid gid with
        | Some p when p.p_state = `Waiting ->
            p.p_state <- `Special_arrived;
            Condvar.broadcast p.p_cv
        | _ -> ());
        Cluster.dec_outstanding c
      end
      else begin
        let items = Routing.local_replicas c.placement site writes in
        let proceed =
          if items = [] || Hashtbl.mem t.aborted_gids.(site) gid then
            not (Hashtbl.mem t.aborted_gids.(site) gid)
          else
            match run_participant t ~gid ~origin ~site items with
            | Some _ -> true
            | None -> false
        in
        if proceed then forward_special t ~src:site (gid, origin, writes);
        Cluster.dec_outstanding c
      end
  end

let tree_applier t site =
  let inbox = Network.inbox t.tree_net site in
  let rec loop () =
    let _, batch = Mailbox.recv inbox in
    List.iter
      (fun msg ->
        (match msg with
        | Normal { gid; _ } ->
            Cluster.trace_secondary_recv t.c ~gid ~site;
            Cluster.trace_queue_depth t.c ~site ~queue:"tree" ~depth:(Mailbox.length inbox)
        | Special _ -> ());
        process_tree_msg t site msg)
      batch;
    loop ()
  in
  loop ()

(* --- direct message handling ------------------------------------------- *)

let handle_direct t site msg =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  match msg with
  | Exec_request { gid; origin; writes } ->
      let items = Routing.local_replicas c.placement site writes in
      (match run_participant t ~gid ~origin ~site items with
      | Some _ -> forward_special t ~src:site (gid, origin, writes)
      | None -> ());
      Cluster.dec_outstanding c
  | Decide { gid; commit; origin_commit } ->
      (match Hashtbl.find_opt t.participants.(site) gid with
      | Some bp -> begin
          match bp.bp_state with
          | `Staged ->
              if Repdb_obs.Trace.on c.trace then
                Repdb_obs.Trace.record c.trace (Repdb_obs.Event.Backedge_decide { gid; site; commit });
              if commit then begin
                Exec.apply_writes c ~gid ~site bp.bp_items;
                Cluster.record_propagation c ~gid ~site ~delay:(Sim.now c.sim -. origin_commit)
              end
              else History.discard_attempt c.history ~attempt:bp.bp_attempt;
              Exec.release c ~attempt:bp.bp_attempt ~site;
              Hashtbl.remove t.participants.(site) gid;
              Hashtbl.remove t.participants_by_attempt.(site) bp.bp_attempt;
              if not commit then Hashtbl.replace t.aborted_gids.(site) gid ()
          | `Executing ->
              (* Still fighting for locks; flag it and unpark the wait. *)
              assert (not commit);
              bp.bp_state <- `Cancelled;
              Hashtbl.replace t.aborted_gids.(site) gid ();
              ignore (Lock_mgr.abort_waiter c.locks.(site) ~owner:bp.bp_attempt)
          | `Cancelled -> ()
        end
      | None -> if not commit then Hashtbl.replace t.aborted_gids.(site) gid ());
      Cluster.dec_outstanding c
  | Exec_failed { gid } ->
      (match Hashtbl.find_opt t.pending_by_gid gid with
      | Some p when p.p_state = `Waiting ->
          p.p_state <- `Failed Txn.Deadlock;
          Condvar.broadcast p.p_cv
      | _ -> ());
      Cluster.dec_outstanding c

let direct_server t site =
  let inbox = Network.inbox t.direct_net site in
  let rec loop () =
    let _, msg = Mailbox.recv inbox in
    (* Each request runs in its own process: Exec_request can block on locks
       and must not hold up Decide / Exec_failed traffic behind it. *)
    Sim.spawn t.c.sim (fun () -> handle_direct t site msg);
    loop ()
  in
  loop ()

(* --- construction -------------------------------------------------------- *)

(* Every copy-graph edge must connect tree-comparable sites: descendants get
   lazy propagation, ancestors eager backedge subtransactions. *)
let validate_tree g tr =
  List.for_all
    (fun (u, v) -> Tree.is_ancestor tr u v || Tree.is_ancestor tr v u)
    (Digraph.edges g)

let make_with_tree (c : Cluster.t) ~retree tr =
  let g = Placement.copy_graph c.placement in
  if not (validate_tree g tr) then
    invalid_arg "Backedge_proto: tree leaves a copy-graph edge between incomparable sites";
  let m = c.params.n_sites in
  let tree_net =
    Cluster.make_batch_net c ~describe_one:(function
      | Normal { writes; _ } -> ("normal", 24 + (8 * List.length writes))
      | Special { writes; _ } -> ("special", 32 + (8 * List.length writes)))
  in
  let t =
    {
      c;
      tr;
      retree;
      tree_net;
      tree_bat = Cluster.make_batcher c tree_net;
      direct_net =
        Cluster.make_net c ~describe:(function
          | Exec_request { writes; _ } -> ("exec-request", 32 + (8 * List.length writes))
          | Decide _ -> ("decide", 24)
          | Exec_failed _ -> ("exec-failed", 16));
      in_subtree = Routing.subtree_replicas c.placement tr;
      pending_by_attempt = Array.init m (fun _ -> Hashtbl.create 8);
      pending_by_gid = Hashtbl.create 32;
      participants = Array.init m (fun _ -> Hashtbl.create 8);
      participants_by_attempt = Array.init m (fun _ -> Hashtbl.create 8);
      aborted_gids = Array.init m (fun _ -> Hashtbl.create 32);
      ow = origin_wait c.params;
      retry_cap = participant_retry_cap c.params;
    }
  in
  (* Under a reconfiguration plan or a healer failover a root site may
     acquire a tree parent at an epoch switch, so every site needs a
     (possibly idle) applier; otherwise, spawn exactly as before — spawn
     counts feed the event tie-break order, and static runs must stay
     byte-identical. *)
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to m - 1 do
    if Cluster.reconfig_planned c || Tree.parent tr site <> -1 then
      Sim.spawn ~cat c.sim (fun () -> tree_applier t site);
    Sim.spawn ~cat c.sim (fun () -> direct_server t site)
  done;
  t

(* Callers that hand-build a tree keep it across epoch switches (it is
   re-validated against the new copy graph at each switch). *)
let create_with_tree (c : Cluster.t) tr = make_with_tree c ~retree:(fun () -> tr) tr

(* The paper's evaluated variant: the chain over the total site order. The
   chain makes every pair of sites tree-comparable, so it survives any
   reconfiguration unchanged. *)
let create (c : Cluster.t) =
  let tr = Tree.chain_of_order (Array.init c.params.n_sites Fun.id) in
  make_with_tree c ~retree:(fun () -> tr) tr

let create_with_order (c : Cluster.t) order =
  let m = c.params.n_sites in
  if Array.length order <> m then invalid_arg "Backedge_proto: order has the wrong length";
  let seen = Array.make m false in
  Array.iter
    (fun s ->
      if s < 0 || s >= m || seen.(s) then invalid_arg "Backedge_proto: order is not a permutation";
      seen.(s) <- true)
    order;
  let tr = Tree.chain_of_order order in
  make_with_tree c ~retree:(fun () -> tr) tr

(* The general variant: delete a minimal DFS backedge set, then chain every
   weakly-connected component of the *full* copy graph in a topological order
   of the residual DAG (so unrelated components never exchange messages). *)
let general_tree (c : Cluster.t) =
  let g = Placement.copy_graph c.placement in
  let gdag = Digraph.remove_edges g (Backedge.minimal_set g) in
  let order =
    match Digraph.topo_sort gdag with
    | Some o -> o
    | None -> assert false (* removing a backedge set always yields a DAG *)
  in
  let pos = Array.make (Digraph.n_vertices g) 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  let parents = Array.make (Digraph.n_vertices g) (-1) in
  List.iter
    (fun component ->
      let sorted = List.sort (fun a b -> compare pos.(a) pos.(b)) component in
      let rec link = function
        | a :: (b :: _ as rest) ->
            parents.(b) <- a;
            link rest
        | [ _ ] | [] -> ()
      in
      link sorted)
    (Digraph.weak_components g);
  Tree.of_parents parents

let create_general (c : Cluster.t) =
  make_with_tree c ~retree:(fun () -> general_tree c) (general_tree c)

(* Epoch switch (cluster drained, placement already swapped): rebuild the
   tree for the new copy graph and re-derive the routing map. Backedge
   targets are computed per transaction from the live placement, so nothing
   else is cached. *)
let reconfigure =
  Some
    (fun t ->
      let tr = t.retree () in
      let g = Placement.copy_graph t.c.placement in
      if not (validate_tree g tr) then
        invalid_arg
          "Backedge_proto: reconfiguration left a copy-graph edge between incomparable sites";
      t.tr <- tr;
      t.in_subtree <- Routing.subtree_replicas t.c.placement tr)

(* --- primary transactions -------------------------------------------------- *)

let abort_primary t ~site ~attempt ~gid ~targets reason =
  let c = t.c in
  Cluster.trace_txn_abort c ~gid ~site reason;
  Exec.abort_local c ~attempt ~site;
  Hashtbl.remove t.pending_by_gid gid;
  Hashtbl.remove t.pending_by_attempt.(site) attempt;
  List.iter
    (fun target ->
      Cluster.inc_outstanding c;
      Network.send t.direct_net ~src:site ~dst:target
        (Decide { gid; commit = false; origin_commit = 0.0 }))
    targets;
  Txn.Aborted reason

let commit_primary t ~site ~attempt ~gid ~writes ~targets =
  let c = t.c in
  Exec.commit_cost ~owner:attempt c ~site;
  (* Atomic commit section: apply, release, decide, lazy-forward. *)
  Exec.apply_writes c ~gid ~site writes;
  Cluster.note_destined c ~items:writes;
  Cluster.trace_txn_commit c ~gid ~site;
  Exec.release c ~attempt ~site;
  Hashtbl.remove t.pending_by_gid gid;
  Hashtbl.remove t.pending_by_attempt.(site) attempt;
  let now = Sim.now c.sim in
  List.iter
    (fun target ->
      Cluster.inc_outstanding c;
      Network.send t.direct_net ~src:site ~dst:target
        (Decide { gid; commit = true; origin_commit = now }))
    targets;
  let sent = if writes = [] then 0 else forward_normal t site (gid, writes, now) in
  let n_msgs = sent + List.length targets in
  if n_msgs > 0 then Cluster.use_cpu c site (float_of_int n_msgs *. c.params.cpu_msg);
  Txn.Committed

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let deadline_at = Cluster.deadline_at c in
  let gid = Cluster.fresh_gid c in
  let attempt = Cluster.fresh_attempt c in
  Cluster.trace_txn_begin c ~gid ~site;
  Cluster.span_link c ~owner:attempt ~gid;
  match Exec.run_ops c ~gid ~attempt ~site spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      Cluster.trace_txn_abort c ~gid ~site reason;
      Txn.Aborted reason
  | Ok () -> (
      let writes = List.sort_uniq compare (Txn.writes spec) in
      match backedge_targets t site writes with
      | [] -> commit_primary t ~site ~attempt ~gid ~writes ~targets:[]
      | _ :: _ as targets
        when List.exists (fun dst -> not (Network.reachable t.direct_net ~src:site ~dst)) targets
        ->
          (* Graceful degradation: a backedge target is on the other side of a
             partition; the eager phase cannot complete until heal, so fail
             fast instead of burning the full origin wait. Nothing has been
             staged remotely, so no Decide is owed. *)
          Exec.abort_local c ~attempt ~site;
          Cluster.trace_txn_abort c ~gid ~site Txn.Partitioned;
          Txn.Aborted Txn.Partitioned
      | farthest :: _ as targets ->
          let p = { p_gid = gid; p_state = `Waiting; p_cv = Condvar.create () } in
          Hashtbl.replace t.pending_by_gid gid p;
          Hashtbl.replace t.pending_by_attempt.(site) attempt p;
          Cluster.inc_outstanding c;
          Network.send t.direct_net ~src:site ~dst:farthest (Exec_request { gid; origin = site; writes });
          Cluster.use_cpu c site c.params.cpu_msg;
          (* The whole origin wait for the special subtransaction is the
             BackEdge propagation phase, however it ends. *)
          let wait_start = Sim.now c.sim in
          let prop_done () =
            Cluster.span_add c ~owner:attempt Repdb_obs.Span.Prop_wait
              (Sim.now c.sim -. wait_start)
          in
          let rec wait () =
            match p.p_state with
            | `Special_arrived ->
                prop_done ();
                commit_primary t ~site ~attempt ~gid ~writes ~targets
            | `Failed reason ->
                prop_done ();
                abort_primary t ~site ~attempt ~gid ~targets reason
            | `Waiting ->
                (* Wait the derived origin wait per round, clamped to the
                   transaction deadline; the tighter bound names the abort. *)
                let remaining = deadline_at -. Sim.now c.sim in
                let timeout, on_expire =
                  if remaining <= t.ow then (remaining, Txn.Deadline_exceeded)
                  else (t.ow, Txn.Propagation_timeout)
                in
                if timeout <= 0.0 then begin
                  p.p_state <- `Failed Txn.Deadline_exceeded;
                  Cluster.trace_txn_deadline c ~gid ~site;
                  prop_done ();
                  abort_primary t ~site ~attempt ~gid ~targets Txn.Deadline_exceeded
                end
                else begin
                  let woken = Condvar.await_timeout c.sim p.p_cv timeout in
                  match p.p_state with
                  | `Waiting when not woken ->
                      p.p_state <- `Failed on_expire;
                      if on_expire = Txn.Deadline_exceeded then
                        Cluster.trace_txn_deadline c ~gid ~site;
                      prop_done ();
                      abort_primary t ~site ~attempt ~gid ~targets on_expire
                  | _ -> wait ()
                end
          in
          wait ())

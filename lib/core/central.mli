(** Centralized certification — the replication-graph approach of Breitbart &
    Korth 1997 / Anderson et al. 1998, which the paper cites as the prior
    serializable lazy scheme and dismisses because "the central site becomes
    a bottleneck if the number of sites becomes large" (Section 1.2).

    A designated central site (site 0) tracks, per item, the number of
    certified committed writes — a compact stand-in for the replication
    graph. A transaction executes locally under strict 2PL, then (still
    holding its locks) submits its read versions and write set for
    certification: it is accepted iff every item it read was current, i.e.
    no transaction certified a conflicting write since. Accepted
    transactions commit and push their updates directly to the replica
    sites; per-item update streams originate at a single primary, so FIFO
    delivery applies them in certification order. Works on arbitrary copy
    graphs (cycles included).

    Every transaction — read-only ones too — pays a round trip to, and CPU
    at, the central site, which is exactly the bottleneck the paper
    predicts; the scaling ablation quantifies it. *)

include Protocol.S

(** Transactions certified (accepted) and rejected so far. *)
val certified : t -> int

val rejected : t -> int

module Params = Repdb_workload.Params
module Pool = Repdb_par.Pool

type point = { x : float; reports : (string * Driver.report) list }
type figure = { id : string; title : string; xlabel : string; points : point list }

let be_psl : Protocol.t list = [ (module Backedge_proto : Protocol.S); (module Psl : Protocol.S) ]

(* Every fan-out below goes through [run_tasks]: an array of independent
   thunks (each one a self-contained [Driver.run] — own [Sim.t], [Rng],
   cluster, trace) evaluated either sequentially or on the pool. [Pool.map]
   lands results by input index, so the two paths produce identical arrays;
   see the determinism test in [test/test_par.ml]. *)
let run_tasks ?pool tasks =
  match pool with
  | None -> Array.map (fun task -> task ()) tasks
  | Some pool -> Pool.map pool tasks ~f:(fun task -> task ())

(* Run [(label, params, protocol)] tasks and pair labels with reports. *)
let run_labelled ?pool jobs =
  let jobs = Array.of_list jobs in
  let reports =
    run_tasks ?pool (Array.map (fun (_, params, p) -> fun () -> Driver.run params p) jobs)
  in
  Array.to_list (Array.map2 (fun (label, _, _) r -> (label, r)) jobs reports)

let run_point ?pool params protocols x =
  let reports =
    run_labelled ?pool (List.map (fun p -> (Protocol.name p, params, p)) protocols)
  in
  { x; reports }

let sweep ?pool ~id ~title ~xlabel ~protocols ~values ~params_of () =
  (* One task per protocol x x-value pair, row-major by point so the grid
     reassembles in figure order whatever the parallel interleaving was. *)
  let protos = Array.of_list protocols in
  let xs = Array.of_list values in
  let np = Array.length protos in
  let tasks =
    Array.init
      (Array.length xs * np)
      (fun i ->
        let x = xs.(i / np) and p = protos.(i mod np) in
        fun () -> Driver.run (params_of x) p)
  in
  let reports = run_tasks ?pool tasks in
  let points =
    List.init (Array.length xs) (fun xi ->
        {
          x = xs.(xi);
          reports =
            List.init np (fun pi -> (Protocol.name protos.(pi), reports.((xi * np) + pi)));
        })
  in
  { id; title; xlabel; points }

let probs steps = List.init (steps + 1) (fun i -> float_of_int i /. float_of_int steps)

let fig2a ?pool ?(base = Params.default) ?(steps = 10) () =
  sweep ?pool ~id:"fig2a" ~title:"Throughput vs backedge probability (Figure 2a)"
    ~xlabel:"backedge probability b" ~protocols:be_psl ~values:(probs steps)
    ~params_of:(fun b -> { base with backedge_prob = b })
    ()

let fig2b ?pool ?(base = Params.default) ?(steps = 10) () =
  sweep ?pool ~id:"fig2b" ~title:"Throughput vs replication probability (Figure 2b)"
    ~xlabel:"replication probability r" ~protocols:be_psl ~values:(probs steps)
    ~params_of:(fun r -> { base with replication_prob = r })
    ()

let extreme base = { base with Params.replication_prob = 0.5; read_txn_prob = 0.0 }

let fig3a ?pool ?(base = Params.default) ?(steps = 10) () =
  let base = { (extreme base) with backedge_prob = 0.0 } in
  sweep ?pool ~id:"fig3a" ~title:"Throughput vs read-op probability, b=0 (Figure 3a)"
    ~xlabel:"read operation probability" ~protocols:be_psl ~values:(probs steps)
    ~params_of:(fun p -> { base with read_op_prob = p })
    ()

let fig3b ?pool ?(base = Params.default) ?(steps = 10) () =
  let base = { (extreme base) with backedge_prob = 1.0 } in
  sweep ?pool ~id:"fig3b" ~title:"Throughput vs read-op probability, b=1 (Figure 3b)"
    ~xlabel:"read operation probability" ~protocols:be_psl ~values:(probs steps)
    ~params_of:(fun p -> { base with read_op_prob = p })
    ()

let response_times ?pool ?(base = Params.default) () =
  run_labelled ?pool (List.map (fun p -> (Protocol.name p, base, p)) be_psl)

let sweep_sites ?pool ?(base = Params.default) () =
  sweep ?pool ~id:"sites" ~title:"Throughput vs number of sites" ~xlabel:"sites m" ~protocols:be_psl
    ~values:[ 3.0; 6.0; 9.0; 12.0; 15.0 ]
    ~params_of:(fun m -> { base with n_sites = int_of_float m })
    ()

let sweep_threads ?pool ?(base = Params.default) () =
  sweep ?pool ~id:"threads" ~title:"Throughput vs threads per site" ~xlabel:"threads/site"
    ~protocols:be_psl
    ~values:[ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    ~params_of:(fun k -> { base with threads_per_site = int_of_float k })
    ()

let sweep_latency ?pool ?(base = Params.default) () =
  sweep ?pool ~id:"latency" ~title:"Throughput vs network latency" ~xlabel:"latency (ms)"
    ~protocols:be_psl
    ~values:[ 0.15; 1.0; 5.0; 20.0; 50.0; 100.0 ]
    ~params_of:(fun l -> { base with latency = l })
    ()

let sweep_read_txn ?pool ?(base = Params.default) ?(steps = 5) () =
  sweep ?pool ~id:"readtxn" ~title:"Throughput vs read-transaction probability"
    ~xlabel:"read transaction probability" ~protocols:be_psl ~values:(probs steps)
    ~params_of:(fun p -> { base with read_txn_prob = p })
    ()

let ablation_protocols ?pool ?(base = Params.default) () =
  let params = { base with Params.backedge_prob = 0.0 } in
  run_labelled ?pool
    (List.map (fun p -> (Protocol.name p, params, p)) (Registry.all @ [ Registry.dag_t_pipelined ]))

let ablation_eager_scaling ?pool ?(base = Params.default) () =
  let protocols : Protocol.t list =
    [
      (module Eager : Protocol.S);
      (module Central : Protocol.S);
      (module Lazy_master : Protocol.S);
      (module Backedge_proto : Protocol.S);
      (module Psl : Protocol.S);
    ]
  in
  sweep ?pool ~id:"eager-scaling" ~title:"Eager / central-cert / lazy-master vs lazy as sites grow"
    ~xlabel:"sites m" ~protocols
    ~values:[ 3.0; 6.0; 9.0; 12.0; 15.0 ]
    ~params_of:(fun m -> { base with n_sites = int_of_float m })
    ()

let ablation_tree_routing ?pool ?(base = Params.default) ?(steps = 5) () =
  let protocols : Protocol.t list = [ (module Backedge_proto : Protocol.S); Registry.backedge_general ] in
  sweep ?pool ~id:"tree-routing" ~title:"BackEdge: chain tree vs general per-component tree"
    ~xlabel:"backedge probability b" ~protocols ~values:(probs steps)
    ~params_of:(fun b -> { base with backedge_prob = b })
    ()

let ablation_deadlock_policy ?pool ?(base = Params.default) () =
  run_labelled ?pool
    (List.concat_map
       (fun (label, policy) ->
         let params = { base with Params.deadlock_policy = policy } in
         List.map (fun p -> (Protocol.name p ^ "/" ^ label, params, p)) be_psl)
       [ ("timeout", `Timeout); ("detect", `Detect) ])

let ablation_dummy_period ?pool ?(base = Params.default) () =
  let base = { base with Params.backedge_prob = 0.0 } in
  sweep ?pool ~id:"dummy-period" ~title:"DAG(T): propagation delay vs dummy idle threshold"
    ~xlabel:"dummy idle threshold (ms)"
    ~protocols:[ (module Dag_t : Protocol.S) ]
    ~values:[ 10.0; 25.0; 50.0; 100.0; 200.0 ]
    ~params_of:(fun d -> { base with dummy_idle = d; epoch_period = 2.0 *. d })
    ()

let ablation_hotspot ?pool ?(base = Params.default) () =
  sweep ?pool ~id:"hotspot" ~title:"Hotspot skew: throughput vs hot-access probability"
    ~xlabel:"hot access probability (hot set = 20% of the pool)" ~protocols:be_psl
    ~values:[ 0.0; 0.3; 0.5; 0.7; 0.9 ]
    ~params_of:(fun h -> { base with hot_access_prob = h })
    ()

let ablation_straggler ?pool ?(base = Params.default) () =
  let protocols : Protocol.t list =
    [ (module Backedge_proto : Protocol.S); (module Psl : Protocol.S); (module Central : Protocol.S) ]
  in
  sweep ?pool ~id:"straggler" ~title:"Straggler machine: throughput vs CPU slowdown of machine 0"
    ~xlabel:"straggler slowdown factor" ~protocols
    ~values:[ 1.0; 2.0; 4.0; 8.0 ]
    ~params_of:(fun f -> { base with straggler_machine = 0; straggler_factor = f })
    ()

let sweep_faults ?pool ?(base = Params.default) () =
  (* b = 0 keeps the copy graph a DAG so DAG(WT) is applicable alongside the
     hybrid and PSL. The x axis is the number of injected crashes; each point
     draws its crash instants/downtimes from [Fault.synthetic] on the run
     seed, so the whole figure is deterministic in [base]. Convergence lag
     under faults shows up in the avg_propagation column. *)
  let base = { base with Params.backedge_prob = 0.0 } in
  let protocols : Protocol.t list =
    [ (module Backedge_proto : Protocol.S); (module Dag_wt : Protocol.S); (module Psl : Protocol.S) ]
  in
  sweep ?pool ~id:"faults" ~title:"Throughput and propagation lag vs injected crash count"
    ~xlabel:"site crashes injected" ~protocols
    ~values:[ 0.0; 1.0; 2.0; 4.0; 8.0 ]
    ~params_of:(fun k ->
      {
        base with
        faults =
          Repdb_fault.Fault.synthetic ~n_sites:base.n_sites ~seed:base.seed
            ~n_crashes:(int_of_float k) ();
      })
    ()

let sweep_reconfig ?pool ?(base = Params.default) () =
  (* b = 0 keeps the copy graph a DAG so DAG(WT) stays applicable alongside
     the hybrid and PSL (and so synthetic add/drop/rebalance steps cannot
     make it cyclic). The x axis is the number of reconfiguration steps
     executed mid-run; each point draws its plan from [Reconfig.synthetic]
     on the run seed, so the whole figure is deterministic in [base]. The
     mid-run throughput dip shows up in the reconfig_stall_ms column (and
     through it in throughput_per_site). *)
  let base = { base with Params.backedge_prob = 0.0 } in
  let protocols : Protocol.t list =
    [ (module Backedge_proto : Protocol.S); (module Dag_wt : Protocol.S); (module Psl : Protocol.S) ]
  in
  sweep ?pool ~id:"reconfig" ~title:"Throughput and switch cost vs online reconfigurations"
    ~xlabel:"reconfiguration steps executed" ~protocols
    ~values:[ 0.0; 1.0; 2.0; 4.0; 8.0 ]
    ~params_of:(fun k ->
      {
        base with
        reconfig =
          Repdb_reconfig.Reconfig.synthetic ~n_sites:base.n_sites ~n_items:base.n_items
            ~seed:base.seed ~n_steps:(int_of_float k) ();
      })
    ()

let sweep_partition ?pool ?(base = Params.default) () =
  (* Availability under a clean two-way network split: deadlines keep parked
     eager work bounded, backoff retry lets clients ride the partition out,
     and PSL's bounded-staleness fallback serves reads locally meanwhile. The
     x axis is the partition duration; 0 means no partition (the baseline).
     b = 0 keeps DAG(WT) applicable alongside the hybrid and PSL. Everything
     is derived from [base], so the whole figure is deterministic. *)
  let base =
    {
      base with
      Params.backedge_prob = 0.0;
      txn_deadline = 250.0;
      retry = Params.default_backoff;
      stale_reads = 60_000.0;
    }
  in
  let m = base.Params.n_sites in
  let near = List.init (m / 2) Fun.id in
  let far = List.init (m - (m / 2)) (fun i -> (m / 2) + i) in
  let protocols : Protocol.t list =
    [ (module Backedge_proto : Protocol.S); (module Dag_wt : Protocol.S); (module Psl : Protocol.S) ]
  in
  sweep ?pool ~id:"partition" ~title:"Availability under a network partition vs its duration"
    ~xlabel:"partition duration (ms)" ~protocols
    ~values:[ 0.0; 250.0; 500.0; 1000.0; 2000.0 ]
    ~params_of:(fun d ->
      if d <= 0.0 then base
      else
        {
          base with
          faults =
            {
              Repdb_fault.Fault.empty with
              partitions = [ { from_t = 100.0; until_t = 100.0 +. d; groups = [ near; far ] } ];
            };
        })
    ()

let sweep_heal ?pool ?(base = Params.default) () =
  (* Self-healing MTTR vs detector threshold. Every point runs the same
     crash-the-primary-plus-corruption schedule with healing on and no
     operator-scheduled recovery: site 1 (a primary for ~1/m of the items)
     crashes mid-run and silent corruption scrambles site 2's replica copies;
     the healer must detect, fail over, and repair on its own. The x axis is
     the φ suspicion threshold: low values detect fast but risk false
     failovers under latency jitter, high values sit through long outages —
     the availability trade-off the mttr_ms/unavail_ms columns quantify.
     b = 0 keeps DAG(WT) applicable; deadline + retry keep the weak drain
     bounded (PSL's synchronous remote reads need the deadline) and let
     clients ride the outage out. *)
  let base =
    {
      base with
      Params.backedge_prob = 0.0;
      heal = true;
      txn_deadline = 400.0;
      retry = Params.default_backoff;
      txns_per_thread = max base.txns_per_thread 200;
      faults =
        {
          Repdb_fault.Fault.empty with
          crashes = [ { site = 1; at = 400.0; down_for = 800.0 } ];
          corruptions = [ { c_site = 2; c_at = 600.0; c_prob = 0.3 } ];
        };
    }
  in
  let protocols : Protocol.t list =
    [ (module Backedge_proto : Protocol.S); (module Dag_wt : Protocol.S); (module Psl : Protocol.S) ]
  in
  sweep ?pool ~id:"heal" ~title:"Self-healing: MTTR and availability vs detector threshold"
    ~xlabel:"phi suspicion threshold" ~protocols
    ~values:[ 2.0; 4.0; 8.0; 16.0; 32.0 ]
    ~params_of:(fun phi -> { base with phi_threshold = phi })
    ()

let sweep_occ ?pool ?(base = Params.default) () =
  (* Optimistic vs locking under contention. The x axis is the Zipf skew of
     item selection: at theta = 0 access is uniform and optimistic execution
     wins on commit rate (no lock waits, the epoch batch amortizes the
     certification round trip); as theta grows the hottest items concentrate
    the read/write sets and the optimistic protocols pay with validation
     aborts instead of lock waits — the crossover the CSV abort-reason
     breakdown (aborts_validation_failed, aborts_first_committer_lost,
     aborts_dangerous_structure vs aborts_lock_timeout/aborts_deadlock)
     makes visible. b = 0 keeps DAG(WT) applicable as a lock-based
     reference. Everything derives from [base]: deterministic. *)
  let base = { base with Params.backedge_prob = 0.0 } in
  let protocols : Protocol.t list =
    [
      (module Occ_epoch : Protocol.S);
      (module Ssi : Protocol.S);
      (module Backedge_proto : Protocol.S);
      (module Dag_wt : Protocol.S);
      (module Psl : Protocol.S);
    ]
  in
  sweep ?pool ~id:"occ" ~title:"Optimistic vs locking: throughput and abort mix vs Zipf skew"
    ~xlabel:"zipf skew theta (item selection)" ~protocols
    ~values:[ 0.0; 0.5; 0.7; 0.9; 0.99 ]
    ~params_of:(fun theta -> { base with zipf_theta = theta })
    ()

let ordered_backedge name order : Protocol.t =
  (module struct
    type t = Backedge_proto.t

    let name = name
    let updates_replicas = true
    let create c = Backedge_proto.create_with_order c order
    let submit = Backedge_proto.submit
    let reconfigure = Backedge_proto.reconfigure
  end : Protocol.S)

let ablation_site_order ?pool ?(base = Params.default) () =
  let m = base.Params.n_sites in
  let hub = m - 1 in
  let n_reference = 30 and n_local = 10 in
  let n_items = n_reference + ((m - 1) * n_local) in
  let primary = Array.make n_items hub in
  let replicas = Array.make n_items [] in
  let spokes = List.init (m - 1) Fun.id in
  for i = 0 to n_reference - 1 do
    replicas.(i) <- spokes
  done;
  for s = 0 to m - 2 do
    for k = 0 to n_local - 1 do
      primary.(n_reference + (s * n_local) + k) <- s
    done
  done;
  let placement = Repdb_workload.Placement.make ~n_sites:m ~n_items ~primary ~replicas in
  let params = { base with Params.n_items } in
  (* FAS-derived order: peel the copy graph with the weighted greedy
     heuristic; here it simply puts the hub before its spokes. *)
  let g = Repdb_workload.Placement.copy_graph placement in
  let fas = Repdb_graph.Backedge.greedy_fas g ~weight:(fun _ _ -> 1.0) in
  let gdag = Repdb_graph.Digraph.remove_edges g fas in
  let order =
    match Repdb_graph.Digraph.topo_sort gdag with Some o -> Array.of_list o | None -> assert false
  in
  (* The two runs share [placement] read-only; each builds its own cluster. *)
  let jobs =
    [
      ("identity-order", ordered_backedge "backedge" (Array.init m Fun.id));
      ("fas-order", ordered_backedge "backedge" order);
    ]
  in
  let jobs_arr = Array.of_list jobs in
  let reports =
    run_tasks ?pool
      (Array.map (fun (_, proto) -> fun () -> Driver.run ~placement params proto) jobs_arr)
  in
  Array.to_list (Array.map2 (fun (label, _) r -> (label, r)) jobs_arr reports)

let pp_point ppf (pt : point) =
  List.iter
    (fun (name, (r : Driver.report)) ->
      Fmt.pf ppf "  x=%-6g %-9s thr/site=%7.2f  abort=%6.2f%%  resp=%7.1fms  prop=%7.1fms  msgs=%d@,"
        pt.x name r.summary.throughput_per_site r.summary.abort_rate r.summary.avg_response
        r.summary.avg_propagation r.summary.messages)
    pt.reports

let pp_figure ppf fig =
  Fmt.pf ppf "@[<v>== %s: %s (x = %s)@,%a@]" fig.id fig.title fig.xlabel
    (fun ppf points -> List.iter (pp_point ppf) points)
    fig.points

let pp_reports ppf reports =
  List.iter
    (fun (name, r) -> Fmt.pf ppf "@[<v 2>-- %s --@,%a@]@." name Driver.pp_report r)
    reports

let render_ascii fig =
  let width = 64 and height = 18 in
  let protocols =
    match fig.points with [] -> [] | pt :: _ -> List.map fst pt.reports
  in
  let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |] in
  let glyph_of i = glyphs.(i mod Array.length glyphs) in
  let xs = List.map (fun pt -> pt.x) fig.points in
  let ys =
    List.concat_map
      (fun pt -> List.map (fun (_, (r : Driver.report)) -> r.summary.throughput_per_site) pt.reports)
      fig.points
  in
  match (xs, ys) with
  | [], _ | _, [] -> "(no data)\n"
  | _ ->
      let x_min = List.fold_left min (List.hd xs) xs
      and x_max = List.fold_left max (List.hd xs) xs in
      let y_max = List.fold_left max 0.0 ys in
      let y_max = if y_max <= 0.0 then 1.0 else y_max *. 1.05 in
      let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
      let grid = Array.init height (fun _ -> Bytes.make width ' ') in
      List.iter
        (fun pt ->
          let col =
            int_of_float ((pt.x -. x_min) /. x_span *. float_of_int (width - 1))
          in
          List.iteri
            (fun i (_, (r : Driver.report)) ->
              let y = r.summary.throughput_per_site in
              let row =
                height - 1 - int_of_float (y /. y_max *. float_of_int (height - 1))
              in
              let row = max 0 (min (height - 1) row) in
              Bytes.set grid.(row) col (glyph_of i))
            pt.reports)
        fig.points;
      let buf = Buffer.create 2048 in
      Array.iteri
        (fun row line ->
          let label =
            if row = 0 then Printf.sprintf "%8.1f |" y_max
            else if row = height - 1 then Printf.sprintf "%8.1f |" 0.0
            else "         |"
          in
          Buffer.add_string buf label;
          Buffer.add_bytes buf line;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "          %-8g%s%8g\n" x_min
           (String.make (width - 16) ' ')
           x_max);
      Buffer.add_string buf (Printf.sprintf "          x = %s; y = throughput/site;" fig.xlabel);
      List.iteri
        (fun i name -> Buffer.add_string buf (Printf.sprintf " %c %s" (glyph_of i) name))
        protocols;
      Buffer.add_char buf '\n';
      Buffer.contents buf

let reason_count (r : Driver.report) reason =
  match List.assoc_opt reason r.summary.aborts_by_reason with Some n -> n | None -> 0

(* One [aborts_*] column per {!Repdb_txn.Txn.abort_reason} constructor, in
   [Txn.all_abort_reasons] order: adding a reason adds a column, nothing is
   lumped into an aggregate. *)
let abort_columns =
  List.map
    (fun r ->
      "aborts_"
      ^ String.map (fun ch -> if ch = '-' then '_' else ch) (Repdb_txn.Txn.string_of_abort r))
    Repdb_txn.Txn.all_abort_reasons

let to_csv fig =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    ("figure,x,protocol,throughput_per_site,abort_rate,avg_response,p99_response,avg_propagation,messages,reconfigs,state_transfers,reconfig_stall_ms,"
    ^ String.concat "," abort_columns
    ^ ",stale_reads,max_staleness_ms,unavail_ms,mttr_ms,failovers,repaired_items\n");
  List.iter
    (fun pt ->
      List.iter
        (fun (name, (r : Driver.report)) ->
          let mttr, failovers, repaired =
            match r.heal with
            | None -> (0.0, 0, 0)
            | Some h -> (h.Heal_exec.mttr_mean, h.failovers, h.repaired_items)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "%s,%g,%s,%.4f,%.4f,%.2f,%.2f,%.2f,%d,%d,%d,%.2f,%s,%d,%.2f,%.2f,%.2f,%d,%d\n"
               fig.id pt.x name r.summary.throughput_per_site r.summary.abort_rate
               r.summary.avg_response r.summary.p99_response r.summary.avg_propagation
               r.summary.messages r.reconfigs r.state_transfers r.reconfig_stall
               (String.concat ","
                  (List.map
                     (fun reason -> string_of_int (reason_count r reason))
                     Repdb_txn.Txn.all_abort_reasons))
               r.summary.stale_reads r.summary.max_staleness r.summary.unavail_ms mttr failovers
               repaired))
        pt.reports)
    fig.points;
  Buffer.contents buf

(* --- registry --------------------------------------------------------------
   The CLI's `experiment` subcommand derives both its help text and its
   dispatch from this list, so the two cannot drift (test_reconfig checks
   they agree with [ids]). Runners that have no [?steps] knob ignore it. *)

type outcome = Figure of figure | Reports of (string * Driver.report) list

type entry = {
  exp_id : string;
  doc : string;
  run : pool:Pool.t option -> base:Params.t -> steps:int -> outcome;
}

let registry =
  let fig f = fun ~pool ~base ~steps:_ -> Figure (f ?pool ?base:(Some base) ()) in
  let fig_steps f =
    fun ~pool ~base ~steps -> Figure (f ?pool ?base:(Some base) ?steps:(Some steps) ())
  in
  let reports f = fun ~pool ~base ~steps:_ -> Reports (f ?pool ?base:(Some base) ()) in
  [
    { exp_id = "fig2a"; doc = "throughput vs backedge probability (Figure 2a)"; run = fig_steps fig2a };
    { exp_id = "fig2b"; doc = "throughput vs replication probability (Figure 2b)"; run = fig_steps fig2b };
    { exp_id = "fig3a"; doc = "throughput vs read-op probability, b=0 (Figure 3a)"; run = fig_steps fig3a };
    { exp_id = "fig3b"; doc = "throughput vs read-op probability, b=1 (Figure 3b)"; run = fig_steps fig3b };
    { exp_id = "resp"; doc = "response times and propagation delay at the defaults"; run = reports response_times };
    { exp_id = "sites"; doc = "throughput vs number of sites"; run = fig sweep_sites };
    { exp_id = "threads"; doc = "throughput vs threads per site"; run = fig sweep_threads };
    { exp_id = "latency"; doc = "throughput vs network latency"; run = fig sweep_latency };
    { exp_id = "readtxn"; doc = "throughput vs read-transaction probability"; run = fig_steps sweep_read_txn };
    { exp_id = "ablation"; doc = "all protocols at the defaults (b=0)"; run = reports ablation_protocols };
    { exp_id = "eager-scaling"; doc = "eager/central/lazy-master vs lazy as sites grow"; run = fig ablation_eager_scaling };
    { exp_id = "tree-routing"; doc = "BackEdge chain tree vs general per-component tree"; run = fig_steps ablation_tree_routing };
    { exp_id = "deadlock-policy"; doc = "timeout vs waits-for-graph deadlock handling"; run = reports ablation_deadlock_policy };
    { exp_id = "dummy-period"; doc = "DAG(T) propagation delay vs dummy idle threshold"; run = fig ablation_dummy_period };
    { exp_id = "hotspot"; doc = "throughput vs hot-access probability"; run = fig ablation_hotspot };
    { exp_id = "straggler"; doc = "throughput vs CPU slowdown of machine 0"; run = fig ablation_straggler };
    { exp_id = "site-order"; doc = "BackEdge identity order vs FAS-derived order"; run = reports ablation_site_order };
    { exp_id = "faults"; doc = "throughput and propagation lag vs injected crashes"; run = fig sweep_faults };
    { exp_id = "reconfig"; doc = "throughput and switch cost vs online reconfigurations"; run = fig sweep_reconfig };
    { exp_id = "partition"; doc = "availability, deadline aborts and stale reads vs partition duration"; run = fig sweep_partition };
    { exp_id = "occ"; doc = "optimistic (occ-epoch, ssi) vs locking vs Zipf contention"; run = fig sweep_occ };
    { exp_id = "heal"; doc = "self-healing MTTR and availability vs detector threshold"; run = fig sweep_heal };
  ]

let ids = List.map (fun e -> e.exp_id) registry
let find id = List.find_opt (fun e -> e.exp_id = id) registry

(* Per-run timelines collected by an outcome (present when the base params
   had [timeline_every > 0]), each under a filesystem-safe basename. *)
let timeline_files outcome =
  let clean s =
    String.map
      (fun ch ->
        match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ch | _ -> '_')
      s
  in
  let of_reports prefix rs =
    List.filter_map
      (fun (label, (r : Driver.report)) ->
        Option.map (fun tl -> (clean (prefix ^ label), tl)) r.timeline)
      rs
  in
  match outcome with
  | Reports rs -> of_reports "" rs
  | Figure f ->
      List.concat_map
        (fun pt -> of_reports (Printf.sprintf "%s_x%g_" f.id pt.x) pt.reports)
        f.points

(** Common interface implemented by every update-propagation protocol. *)

module type S = sig
  type t

  (** Short name used in reports and benches ("dag-wt", "psl", ...). *)
  val name : string

  (** Protocols that never push physical updates to replicas (PSL) opt out of
      the replica-convergence check. *)
  val updates_replicas : bool

  (** [create cluster] wires the protocol's background processes (appliers,
      epoch/dummy timers, message handlers) into the cluster's simulation.
      Must be called before {!Cluster.t.sim} runs. *)
  val create : Cluster.t -> t

  (** [submit t spec] executes one attempt of a transaction from within a
      simulated client process, blocking until it commits or aborts. The
      access history is recorded internally; commit/abort metrics are the
      driver's responsibility (it knows about retries and response times). *)
  val submit : t -> Repdb_txn.Txn.spec -> Repdb_txn.Txn.outcome

  (** Called by the reconfiguration coordinator at each epoch switch, after
      the cluster has drained and [Cluster.t.placement] has been swapped:
      rebuild whatever the protocol derived from the old placement (tree,
      routing maps, backedge sets). [None] marks the protocol as not
      supporting online reconfiguration (DAG(T): its per-copy-graph-parent
      queues and timestamp ranks are tied to one topology for the lifetime of
      the run); the driver refuses to run such a protocol under a non-empty
      plan. Protocols that read the placement afresh on every access (PSL,
      lazy-master, central, eager, naive) use [Some ignore]. *)
  val reconfigure : (t -> unit) option
end

type t = (module S)

(** All protocols, for iteration in benches: DAG(WT), DAG(T), BackEdge, PSL,
    Eager, Naive — see the individual modules. *)
val name : t -> string

(** Common interface implemented by every update-propagation protocol. *)

module type S = sig
  type t

  (** Short name used in reports and benches ("dag-wt", "psl", ...). *)
  val name : string

  (** Protocols that never push physical updates to replicas (PSL) opt out of
      the replica-convergence check. *)
  val updates_replicas : bool

  (** [create cluster] wires the protocol's background processes (appliers,
      epoch/dummy timers, message handlers) into the cluster's simulation.
      Must be called before {!Cluster.t.sim} runs. *)
  val create : Cluster.t -> t

  (** [submit t spec] executes one attempt of a transaction from within a
      simulated client process, blocking until it commits or aborts. The
      access history is recorded internally; commit/abort metrics are the
      driver's responsibility (it knows about retries and response times). *)
  val submit : t -> Repdb_txn.Txn.spec -> Repdb_txn.Txn.outcome
end

type t = (module S)

(** All protocols, for iteration in benches: DAG(WT), DAG(T), BackEdge, PSL,
    Eager, Naive — see the individual modules. *)
val name : t -> string

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Lock_mgr = Repdb_lock.Lock_mgr
module Network = Repdb_net.Network
module Txn = Repdb_txn.Txn

let name = "eager"
let updates_replicas = true

type msg =
  | Wlock_request of { item : int; owner : int; reply : bool -> unit }
  | Wlock_reply of { granted : bool; deliver : bool -> unit }
  | Prepare of { owner : int; reply : unit -> unit }
  | Prepare_ack of { deliver : unit -> unit }
  | Decide of { owner : int; gid : int; commit : bool; origin_commit : float }

type t = {
  c : Cluster.t;
  net : msg Network.t;
  staged : (int, int list ref) Hashtbl.t array; (* per site: owner -> staged items *)
  mutable remote : int;
}

let remote_writes t = t.remote

let serve_wlock t site ~src ~item ~owner ~reply =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  let respond granted =
    Network.send t.net ~src:site ~dst:src (Wlock_reply { granted; deliver = reply })
  in
  match Lock_mgr.acquire c.locks.(site) ~owner item Lock_mgr.Exclusive with
  | Lock_mgr.Granted ->
      Cluster.use_cpu c site c.params.cpu_op;
      Repdb_txn.History.record c.history ~site ~item ~gid:owner ~attempt:owner Repdb_txn.History.W;
      let cell =
        match Hashtbl.find_opt t.staged.(site) owner with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.replace t.staged.(site) owner cell;
            cell
      in
      cell := item :: !cell;
      respond true
  | Lock_mgr.Timed_out | Lock_mgr.Deadlock_victim -> respond false

let decide t site ~owner ~gid ~commit ~origin_commit =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  (match Hashtbl.find_opt t.staged.(site) owner with
  | Some cell ->
      Hashtbl.remove t.staged.(site) owner;
      if commit then begin
        Exec.apply_writes c ~gid ~site (List.sort_uniq compare !cell);
        Metrics.propagation c.metrics ~delay:(Sim.now c.sim -. origin_commit)
      end
      else Repdb_txn.History.discard_attempt c.history ~attempt:owner
  | None -> ());
  Lock_mgr.release_all c.locks.(site) ~owner;
  Cluster.dec_outstanding c

let server t site =
  let inbox = Network.inbox t.net site in
  let rec loop () =
    let src, msg = Mailbox.recv inbox in
    (match msg with
    | Wlock_request { item; owner; reply } ->
        Sim.spawn t.c.sim (fun () -> serve_wlock t site ~src ~item ~owner ~reply)
    | Wlock_reply { granted; deliver } ->
        Cluster.dec_outstanding t.c;
        deliver granted
    | Prepare { owner = _; reply } ->
        (* Locks are already held and writes staged: always vote yes. *)
        Network.send t.net ~src:site ~dst:src (Prepare_ack { deliver = reply })
    | Prepare_ack { deliver } ->
        Cluster.dec_outstanding t.c;
        deliver ()
    | Decide { owner; gid; commit; origin_commit } ->
        Sim.spawn t.c.sim (fun () -> decide t site ~owner ~gid ~commit ~origin_commit));
    loop ()
  in
  loop ()

let create (c : Cluster.t) =
  let net = Cluster.make_net c in
  let t =
    {
      c;
      net;
      staged = Array.init c.params.n_sites (fun _ -> Hashtbl.create 16);
      remote = 0;
    }
  in
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    Sim.spawn ~cat c.sim (fun () -> server t site)
  done;
  t

let rpc t ~site ~dst msg_of_reply =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  Sim.suspend (fun resume ->
      Cluster.inc_outstanding c;
      Network.send t.net ~src:site ~dst (msg_of_reply resume))

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let gid = Cluster.fresh_gid c in
  let attempt = gid in
  let participants = Hashtbl.create 4 in
  let finish_remote commit origin_commit =
    Hashtbl.iter
      (fun dst () ->
        Cluster.inc_outstanding c;
        Network.send t.net ~src:site ~dst (Decide { owner = attempt; gid; commit; origin_commit }))
      participants
  in
  let write_everywhere item =
    let reps = c.placement.replicas.(item) in
    let rec go i =
      if i >= Array.length reps then Ok ()
      else begin
        let dst = reps.(i) in
        t.remote <- t.remote + 1;
        Hashtbl.replace participants dst ();
        if rpc t ~site ~dst (fun reply -> Wlock_request { item; owner = attempt; reply }) then begin
          Cluster.use_cpu c site c.params.cpu_msg;
          go (i + 1)
        end
        else Error Txn.Remote_denied
      end
    in
    go 0
  in
  let rec run = function
    | [] -> Ok ()
    | op :: rest -> (
        match Exec.run_ops c ~gid ~attempt ~site [ op ] with
        | Error reason -> Error reason
        | Ok () -> (
            match op with
            | Txn.Read _ -> run rest
            | Txn.Write item -> ( match write_everywhere item with Ok () -> run rest | e -> e)))
  in
  match run spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      finish_remote false 0.0;
      Txn.Aborted reason
  | Ok () ->
      (* Phase 1: prepare round to every participant. *)
      Hashtbl.iter
        (fun dst () -> ignore (rpc t ~site ~dst (fun resume -> Prepare { owner = attempt; reply = (fun () -> resume true) })))
        participants;
      (* Phase 2: commit locally, then decide. *)
      let writes = List.sort_uniq compare (Txn.writes spec) in
      Exec.commit_cost c ~site;
      Exec.apply_writes c ~gid ~site writes;
      Exec.release c ~attempt ~site;
      finish_remote true (Sim.now c.sim);
      Txn.Committed

(* Placement is read afresh on every access; nothing cached to rebuild. *)
let reconfigure = Some ignore

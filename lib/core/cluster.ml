module Sim = Repdb_sim.Sim
module Rng = Repdb_sim.Rng
module Resource = Repdb_sim.Resource
module Condvar = Repdb_sim.Condvar
module Store = Repdb_store.Store
module Lock_mgr = Repdb_lock.Lock_mgr
module History = Repdb_txn.History
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement

type t = {
  sim : Sim.t;
  params : Params.t;
  placement : Placement.t;
  lat_fn : int -> int -> float;
  stores : Store.t array;
  locks : Lock_mgr.t array;
  cpus : Resource.t array;
  history : History.t;
  metrics : Metrics.t;
  rng : Rng.t;
  mutable next_gid : int;
  mutable next_attempt : int;
  mutable messages : int;
  mutable outstanding : int;
  mutable clients_running : int;
  mutable stopped : bool;
  quiesced : Condvar.t;
}

let create_with ?latency (params : Params.t) placement =
  Params.validate params;
  let lat_fn = match latency with Some f -> f | None -> fun _ _ -> params.latency in
  let sim = Sim.create () in
  let m = params.n_sites in
  let stores = Array.init m (fun site -> Store.create ~site (Placement.placed_at placement site)) in
  let policy : Lock_mgr.policy =
    match params.deadlock_policy with
    | `Timeout -> `Timeout params.lock_timeout
    | `Detect -> `Detect (Some params.lock_timeout)
  in
  let locks = Array.init m (fun _ -> Lock_mgr.create ~sim ~policy ()) in
  let n_machines = min params.n_machines m in
  let cpus = Array.init n_machines (fun _ -> Resource.create ~capacity:1 ()) in
  {
    sim;
    params;
    placement;
    lat_fn;
    stores;
    locks;
    cpus;
    history = History.create ~enabled:params.record_history ~n_sites:m ();
    metrics = Metrics.create ();
    rng = Rng.create (params.seed * 31 + 7);
    next_gid = 0;
    next_attempt = 0;
    messages = 0;
    outstanding = 0;
    clients_running = 0;
    stopped = false;
    quiesced = Condvar.create ();
  }

let create (params : Params.t) =
  let placement_rng = Rng.create params.seed in
  create_with params (Placement.generate placement_rng params)

let fresh_gid t =
  t.next_gid <- t.next_gid + 1;
  t.next_gid

let fresh_attempt t =
  t.next_attempt <- t.next_attempt + 1;
  t.next_attempt

let use_cpu t site d =
  if d > 0.0 then begin
    let machine = site mod Array.length t.cpus in
    let d =
      if machine = t.params.straggler_machine then d *. t.params.straggler_factor else d
    in
    Resource.use t.cpus.(machine) d
  end

let latency_fn t src dst = t.lat_fn src dst

let make_net t =
  Repdb_net.Network.create ~sim:t.sim ~n_sites:t.params.n_sites ~latency:(latency_fn t)
    ~on_send:(fun () -> t.messages <- t.messages + 1)
    ()

let maybe_wake t =
  if t.clients_running = 0 && t.outstanding = 0 then Condvar.broadcast t.quiesced

let inc_outstanding t = t.outstanding <- t.outstanding + 1

let dec_outstanding t =
  t.outstanding <- t.outstanding - 1;
  assert (t.outstanding >= 0);
  maybe_wake t

let client_started t = t.clients_running <- t.clients_running + 1

let client_finished t =
  t.clients_running <- t.clients_running - 1;
  assert (t.clients_running >= 0);
  Metrics.client_done t.metrics ~time:(Sim.now t.sim);
  maybe_wake t

let quiescent t = t.clients_running = 0 && t.outstanding = 0

let await_quiescence t =
  while not (quiescent t) do
    Condvar.await t.quiesced
  done;
  t.stopped <- true

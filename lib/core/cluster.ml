module Sim = Repdb_sim.Sim
module Rng = Repdb_sim.Rng
module Resource = Repdb_sim.Resource
module Condvar = Repdb_sim.Condvar
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Wal = Repdb_store.Wal
module Lock_mgr = Repdb_lock.Lock_mgr
module Fault = Repdb_fault.Fault
module Reconfig = Repdb_reconfig.Reconfig
module History = Repdb_txn.History
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Trace = Repdb_obs.Trace
module Event = Repdb_obs.Event
module Stats = Repdb_obs.Stats
module Span = Repdb_obs.Span
module Timeline = Repdb_obs.Timeline
module Profile = Repdb_obs.Profile

type t = {
  sim : Sim.t;
  params : Params.t;
  mutable placement : Placement.t;
  lat_fn : int -> int -> float;
  stores : Store.t array;
  locks : Lock_mgr.t array;
  cpus : Resource.t array;
  history : History.t;
  metrics : Metrics.t;
  trace : Trace.t;
  stats : Stats.t;
  prop_hist : Stats.histogram;
  rng : Rng.t;
  mutable next_gid : int;
  mutable next_attempt : int;
  mutable messages : int;
  mutable outstanding : int;
  mutable clients_running : int;
  mutable stopped : bool;
  quiesced : Condvar.t;
  injector : Fault.injector option;
  wals : Wal.t array; (* one per site when faults are on; [||] otherwise *)
  site_up : bool array;
  up_cv : Condvar.t array; (* broadcast when the site restarts *)
  mutable crashes : int;
  mutable partitions : int; (* partition windows that have activated *)
  (* Per-transaction deadline handoff: the client arms it immediately before
     [submit] and the protocol reads it at entry — no blocking point in
     between, so the field never mixes transactions. Infinity = no deadline. *)
  mutable deadline_at : float;
  (* [site][item] -> simulated time of the last locally applied write; feeds
     the staleness of partition-time local reads. *)
  apply_mtime : float array array;
  stale_ctr : Stats.counter option; (* registered only when stale reads are on *)
  (* Online reconfiguration (all idle unless [params.reconfig] is non-empty) *)
  mutable config_epoch : int;
  mutable reconfiguring : bool;
  mutable active_txns : int;
  drained : Condvar.t; (* broadcast when active_txns = outstanding = 0 *)
  resume : Condvar.t; (* broadcast when the epoch switch completes *)
  mutable reconfigs : int;
  mutable state_transfers : int;
  mutable stall_total : float;
  switch_hist : Stats.histogram option;
  stall_hist : Stats.histogram option;
  (* Observability: phase spans, self-profiler, and the sampled timeline. *)
  spans : Span.t;
  profile : Profile.t;
  timeline : Timeline.t option;
  commit_ctr : Stats.counter;
  abort_ctr : Stats.counter;
  tl_commits_prev : int array; (* counter snapshot at the previous sample *)
  tl_aborts_prev : int array;
  (* Replication-lag bookkeeping (maintained only when a timeline exists):
     per site, how many propagated updates are destined but not yet applied,
     and the origin-commit time of the newest update applied. *)
  lag_pending : int array;
  lag_applied : float array;
  lag_seen : bool array; (* per-destination scratch, cleared after each use *)
  mutable inflight_fns : (unit -> int) list; (* one per network created *)
  mutable inflight_matching_fns : ((src:int -> dst:int -> bool) -> int) list;
      (* Per network/batcher: in-flight units on pairs selected by the
         predicate; the healer's weak failover drain sums these to exempt
         traffic parked behind a down or partitioned pair. *)
  (* Self-healing (all idle unless [params.heal]) *)
  corrupted : (int * int, unit) Hashtbl.t;
      (* (site, item) replica copies silently scrambled by a corrupt@ fault
         clause and not yet repaired; recovery and anti-entropy clear marks. *)
  mutable corruption_events : int;
  mutable corrupt_items : int; (* copies scrambled, cumulative *)
  mutable phi_fn : (unit -> float array) option; (* healer's detector sample *)
  stale_drop_ctr : Stats.counter option; (* "heal.stale_drop", heal only *)
  corrupt_ctr : Stats.counter option; (* "corrupt.items", heal only *)
}

let create_with ?latency ?(trace = false) ?trace_capacity (params : Params.t) placement =
  Params.validate params;
  let lat_fn = match latency with Some f -> f | None -> fun _ _ -> params.latency in
  let profile = if params.profile then Profile.create () else Profile.disabled in
  let sim = Sim.create ~profile () in
  let m = params.n_sites in
  let tr =
    if trace then Trace.create ?capacity:trace_capacity ~clock:(Sim.clock sim) ()
    else Trace.disabled
  in
  let stats = Stats.create ~n_sites:m () in
  let spans = Span.create ~stats ~trace:tr () in
  let stores =
    Array.init m (fun site ->
        Store.create ~site (Array.to_list (Placement.placed_at placement site)))
  in
  let policy : Lock_mgr.policy =
    match params.deadlock_policy with
    | `Timeout -> `Timeout params.lock_timeout
    | `Detect -> `Detect (Some params.lock_timeout)
  in
  (* Static topologies remap lock-table slots to the site's dense placed-item
     ranks: every lock a protocol takes at a site is for an item placed there,
     so the table holds |placed| entries instead of max-item-id — the
     difference between megabytes and gigabytes at 200 sites x 100k items.
     Under a reconfiguration plan new items can appear at a site mid-run, so
     the identity map (grow-on-demand) is kept. *)
  let locks =
    (* Healing can promote primaries (and so move items' lock sites) at a
       failover epoch switch, so it needs the grow-on-demand identity map
       just like an operator reconfiguration plan. *)
    let static = Reconfig.is_empty params.reconfig && not params.heal in
    Array.init m (fun site ->
        let remap =
          if static then
            Some
              (fun item ->
                let slot = Placement.placed_index placement ~site item in
                if slot < 0 then
                  invalid_arg
                    (Printf.sprintf "Cluster: lock on item %d not placed at site %d" item site)
                else slot)
          else None
        in
        Lock_mgr.create ~sim ~policy ~site ~trace:tr ~stats ?remap
          ~on_wait:(fun ~owner ~dur -> Span.add spans ~owner Span.Lock_wait dur)
          ())
  in
  let n_machines = min params.n_machines m in
  let cpus = Array.init n_machines (fun _ -> Resource.create ~capacity:1 ()) in
  let faulty = not (Fault.is_empty params.faults) in
  let injector =
    if faulty then Some (Fault.injector ~n_sites:m ~seed:((params.seed * 69069) + 13) params.faults)
    else None
  in
  (* Redo logs are only attached under fault injection: they hook every
     committed write, and fault-free runs never crash. *)
  let wals =
    if faulty then
      Array.mapi
        (fun _ store ->
          let wal = Wal.create () in
          Wal.attach wal store;
          wal)
        stores
    else [||]
  in
  {
    sim;
    params;
    placement;
    lat_fn;
    stores;
    locks;
    cpus;
    history = History.create ~enabled:params.record_history ~n_sites:m ();
    metrics = Metrics.create ~n_sites:m ();
    trace = tr;
    stats;
    prop_hist = Stats.histogram stats "prop.delay";
    rng = Rng.create (params.seed * 31 + 7);
    next_gid = 0;
    next_attempt = 0;
    messages = 0;
    outstanding = 0;
    clients_running = 0;
    stopped = false;
    quiesced = Condvar.create ();
    injector;
    wals;
    site_up = Array.make m true;
    up_cv = Array.init m (fun _ -> Condvar.create ());
    crashes = 0;
    partitions = 0;
    deadline_at = infinity;
    (* Only materialized when bounded-staleness reads can consult it: m * n
       floats is 160 MB at 200 sites x 100k items. *)
    apply_mtime =
      (if params.stale_reads > 0.0 then Array.init m (fun _ -> Array.make params.n_items 0.0)
       else [||]);
    stale_ctr =
      (if params.stale_reads > 0.0 then Some (Stats.counter stats "read.stale") else None);
    config_epoch = 0;
    reconfiguring = false;
    active_txns = 0;
    drained = Condvar.create ();
    resume = Condvar.create ();
    reconfigs = 0;
    state_transfers = 0;
    stall_total = 0.0;
    (* Registered only when a plan exists: [Stats.pp_table] prints every
       registered histogram, so static-topology runs must not see these. *)
    switch_hist =
      (if Reconfig.is_empty params.reconfig then None
       else Some (Stats.histogram stats "reconfig.switch"));
    stall_hist =
      (if Reconfig.is_empty params.reconfig then None
       else Some (Stats.histogram stats "reconfig.stall"));
    spans;
    profile;
    timeline =
      (if params.timeline_every > 0.0 then
         Some (Timeline.create ~n_sites:m ~interval:params.timeline_every ~phi:params.heal ())
       else None);
    (* Same names the driver resolves: [Stats.counter] finds-or-registers,
       so these are the very counters the clients bump. *)
    commit_ctr = Stats.counter stats "txn.commit";
    abort_ctr = Stats.counter stats "txn.abort";
    tl_commits_prev = Array.make m 0;
    tl_aborts_prev = Array.make m 0;
    lag_pending = Array.make m 0;
    lag_applied = Array.make m 0.0;
    lag_seen = Array.make m false;
    inflight_fns = [];
    inflight_matching_fns = [];
    corrupted = Hashtbl.create 16;
    corruption_events = 0;
    corrupt_items = 0;
    phi_fn = None;
    (* Registered only under healing: [Stats.pp_table] prints every
       registered counter, so heal-off stats tables are unchanged. *)
    stale_drop_ctr = (if params.heal then Some (Stats.counter stats "heal.stale_drop") else None);
    corrupt_ctr = (if params.heal then Some (Stats.counter stats "corrupt.items") else None);
  }

let create ?trace ?trace_capacity (params : Params.t) =
  let placement_rng = Rng.create params.seed in
  create_with ?trace ?trace_capacity params (Placement.generate placement_rng params)

let fresh_gid t =
  t.next_gid <- t.next_gid + 1;
  t.next_gid

let fresh_attempt t =
  t.next_attempt <- t.next_attempt + 1;
  t.next_attempt

let use_cpu t site d =
  if d > 0.0 then begin
    let machine = site mod Array.length t.cpus in
    let d =
      if machine = t.params.straggler_machine then d *. t.params.straggler_factor else d
    in
    Resource.use t.cpus.(machine) d
  end

let latency_fn t src dst = t.lat_fn src dst

let make_net ?describe t =
  let net =
    Repdb_net.Network.create ~sim:t.sim ~n_sites:t.params.n_sites ~latency:(latency_fn t)
      ~on_send:(fun units -> t.messages <- t.messages + units)
      ~trace:t.trace ?describe ~stats:t.stats ?injector:t.injector ()
  in
  t.inflight_fns <- (fun () -> Repdb_net.Network.in_flight net) :: t.inflight_fns;
  t.inflight_matching_fns <-
    (fun f -> Repdb_net.Network.in_flight_matching net ~f) :: t.inflight_matching_fns;
  net

(* A net whose messages are per-pair coalesced update runs. Counters and
   traces account logical updates (a singleton batch describes exactly like
   the bare message did pre-batching, so batch_size=1 traces are unchanged);
   the [inflight] sample also counts updates still parked in the batcher. *)
let make_batch_net ?describe_one t =
  let describe =
    Option.map
      (fun d -> function
        | [ m ] -> d m
        | ms ->
            let kind = match ms with m :: _ -> fst (d m) | [] -> "batch" in
            ( Printf.sprintf "%s[%d]" kind (List.length ms),
              List.fold_left (fun acc m -> acc + snd (d m)) 8 ms ))
      describe_one
  in
  let net =
    Repdb_net.Network.create ~sim:t.sim ~n_sites:t.params.n_sites ~latency:(latency_fn t)
      ~arity:List.length
      ~on_send:(fun units -> t.messages <- t.messages + units)
      ~trace:t.trace ?describe ~stats:t.stats ?injector:t.injector ()
  in
  t.inflight_fns <- (fun () -> Repdb_net.Network.in_flight net) :: t.inflight_fns;
  t.inflight_matching_fns <-
    (fun f -> Repdb_net.Network.in_flight_matching net ~f) :: t.inflight_matching_fns;
  net

let make_batcher t net =
  let bat =
    Repdb_net.Batcher.create ~sim:t.sim ~n_sites:t.params.n_sites ~size:t.params.batch_size
      ~linger_ms:t.params.batch_linger_ms
      ~ship:(fun ~src ~dst batch -> Repdb_net.Network.send net ~src ~dst batch)
      ()
  in
  t.inflight_fns <-
    (fun () ->
      let n = t.params.n_sites in
      let parked = ref 0 in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          parked := !parked + Repdb_net.Batcher.pending bat ~src ~dst
        done
      done;
      !parked)
    :: t.inflight_fns;
  t.inflight_matching_fns <-
    (fun f ->
      let n = t.params.n_sites in
      let parked = ref 0 in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if f ~src ~dst then parked := !parked + Repdb_net.Batcher.pending bat ~src ~dst
        done
      done;
      !parked)
    :: t.inflight_matching_fns;
  bat

(* --- trace/metrics emission helpers (shared by the protocols) ------------- *)

(* The txn begin/commit/abort helpers double as the span lifecycle hooks:
   the four lazy protocols call each exactly once per client attempt. *)
let trace_txn_begin t ~gid ~site =
  Span.begin_ t.spans ~gid ~site ~now:(Sim.now t.sim);
  if Trace.on t.trace then Trace.record t.trace (Event.Txn_begin { gid; site })

let trace_txn_commit t ~gid ~site =
  Span.finish t.spans ~gid ~now:(Sim.now t.sim);
  if Trace.on t.trace then Trace.record t.trace (Event.Txn_commit { gid; site })

let trace_txn_abort t ~gid ~site reason =
  Span.finish t.spans ~gid ~now:(Sim.now t.sim);
  if Trace.on t.trace then
    Trace.record t.trace (Event.Txn_abort { gid; site; reason = Repdb_txn.Txn.string_of_abort reason })

(* --- span attribution ------------------------------------------------------ *)

let span_link t ~owner ~gid = Span.link t.spans ~owner ~gid
let span_add t ~owner phase dur = Span.add t.spans ~owner phase dur
let span_think t ~site dur = Span.think t.spans ~site dur
let spans t = t.spans

let trace_secondary_recv t ~gid ~site =
  if Trace.on t.trace then Trace.record t.trace (Event.Secondary_recv { gid; site })

let trace_secondary_commit t ~gid ~site =
  if Trace.on t.trace then Trace.record t.trace (Event.Secondary_commit { gid; site })

let trace_queue_depth t ~site ~queue ~depth =
  if Trace.on t.trace then Trace.record t.trace (Event.Queue_depth { site; queue; depth })

let trace_txn_deadline t ~gid ~site =
  if Trace.on t.trace then Trace.record t.trace (Event.Txn_deadline { gid; site })

(* --- per-transaction deadlines -------------------------------------------- *)

let arm_deadline t =
  t.deadline_at <-
    (if t.params.txn_deadline > 0.0 then Sim.now t.sim +. t.params.txn_deadline else infinity)

let deadline_at t = t.deadline_at

(* --- bounded-staleness reads ---------------------------------------------- *)

let note_apply t ~site ~item =
  if Array.length t.apply_mtime > 0 then t.apply_mtime.(site).(item) <- Sim.now t.sim

let staleness t ~site ~item =
  if Array.length t.apply_mtime > 0 then Sim.now t.sim -. t.apply_mtime.(site).(item)
  else Sim.now t.sim

let record_stale_read t ~site ~item ~staleness =
  Metrics.stale_read t.metrics ~staleness;
  (match t.stale_ctr with Some c -> Stats.incr c ~site | None -> ());
  if Trace.on t.trace then Trace.record t.trace (Event.Stale_read { site; item; staleness })

(* --- replication-lag bookkeeping ------------------------------------------ *)

(* Called by the lazy protocols at origin-commit time with the committed
   write set: every site holding a replica of a written item will eventually
   apply this transaction, so it gains one pending update. Counted once per
   (transaction, site) via the scratch array. Maintained only when a
   timeline is being sampled. *)
let note_destined t ~items =
  match t.timeline with
  | None -> ()
  | Some _ ->
      List.iter
        (fun item ->
          Array.iter
            (fun site ->
              if not t.lag_seen.(site) then begin
                t.lag_seen.(site) <- true;
                t.lag_pending.(site) <- t.lag_pending.(site) + 1
              end)
            t.placement.Placement.replicas.(item))
        items;
      Array.iteri (fun s seen -> if seen then t.lag_seen.(s) <- false) t.lag_seen

(* Record a replica update everywhere it is accounted: the aggregate metric,
   the per-site registry, and (when on) the trace. *)
let record_propagation t ~gid ~site ~delay =
  Metrics.propagation t.metrics ~delay;
  Stats.observe t.prop_hist ~site delay;
  if t.timeline <> None then begin
    if t.lag_pending.(site) > 0 then t.lag_pending.(site) <- t.lag_pending.(site) - 1;
    let origin = Sim.now t.sim -. delay in
    if origin > t.lag_applied.(site) then t.lag_applied.(site) <- origin
  end;
  if Trace.on t.trace then Trace.record t.trace (Event.Prop_apply { gid; site; delay })

(* Replication lag of [site] right now: with updates pending, the age of the
   newest applied origin commit (growing in real time while the backlog
   persists, e.g. across a partition); 0 once caught up. *)
let lag_of t site =
  if t.lag_pending.(site) > 0 then Float.max 0.0 (Sim.now t.sim -. t.lag_applied.(site))
  else 0.0

let timeline t = t.timeline

let sample_timeline t =
  match t.timeline with
  | None -> ()
  | Some tl ->
      let m = t.params.n_sites in
      let commits = Array.make m 0 and aborts = Array.make m 0 in
      for s = 0 to m - 1 do
        let c = Stats.counter_value t.commit_ctr ~site:s in
        commits.(s) <- c - t.tl_commits_prev.(s);
        t.tl_commits_prev.(s) <- c;
        let a = Stats.counter_value t.abort_ctr ~site:s in
        aborts.(s) <- a - t.tl_aborts_prev.(s);
        t.tl_aborts_prev.(s) <- a
      done;
      Timeline.push tl
        {
          Timeline.r_time = Sim.now t.sim;
          r_active = t.active_txns;
          r_inflight = List.fold_left (fun acc f -> acc + f ()) 0 t.inflight_fns;
          r_commits = commits;
          r_aborts = aborts;
          r_lag = Array.init m (fun s -> lag_of t s);
          r_pending = Array.copy t.lag_pending;
          r_locks = Array.init m (fun s -> Lock_mgr.locks_held t.locks.(s));
          r_waiters = Array.init m (fun s -> Lock_mgr.lock_waiters t.locks.(s));
          r_phi =
            (if not (Timeline.has_phi tl) then [||]
             else match t.phi_fn with Some f -> f () | None -> Array.make m 0.0);
        }

let set_phi_fn t f = t.phi_fn <- Some f

let maybe_wake t =
  if t.clients_running = 0 && t.outstanding = 0 then Condvar.broadcast t.quiesced

let drained_now t = t.active_txns = 0 && t.outstanding = 0
let maybe_drained t = if t.reconfiguring && drained_now t then Condvar.broadcast t.drained

let inc_outstanding t = t.outstanding <- t.outstanding + 1

let dec_outstanding t =
  t.outstanding <- t.outstanding - 1;
  assert (t.outstanding >= 0);
  maybe_wake t;
  maybe_drained t

let client_started t = t.clients_running <- t.clients_running + 1

let client_finished t =
  t.clients_running <- t.clients_running - 1;
  assert (t.clients_running >= 0);
  Metrics.client_done t.metrics ~time:(Sim.now t.sim);
  maybe_wake t

let quiescent t = t.clients_running = 0 && t.outstanding = 0

let await_quiescence t =
  while not (quiescent t) do
    Condvar.await t.quiesced
  done;
  t.stopped <- true

(* --- fault injection ------------------------------------------------------ *)

let faulty t = Option.is_some t.injector
let site_up t site = t.site_up.(site)

let await_site_up t site =
  while not t.site_up.(site) do
    Condvar.await t.up_cv.(site)
  done

let crash_site t ~site =
  t.site_up.(site) <- false;
  t.crashes <- t.crashes + 1;
  if Trace.on t.trace then Trace.record t.trace (Event.Site_crash { site })

let recover_site t ~site ~downtime =
  let wal = t.wals.(site) in
  let lost = t.stores.(site) in
  let recovered = Wal.recover wal ~site in
  (* The redo log hooks every committed write, so the rebuild must reproduce
     the pre-crash image exactly; a mismatch means durability is broken and
     any run that continued from it would be meaningless. The one exception:
     copies scrambled by a corrupt@ clause, which bypasses the log — there
     the rebuild holds the true value, so recovery doubles as repair and the
     mark is cleared. *)
  let rec_contents = Store.contents recovered and lost_contents = Store.contents lost in
  let recovery_ok =
    List.compare_lengths rec_contents lost_contents = 0
    && List.for_all2
      (fun (ri, rv) (li, lv) ->
        ri = li
        && (Value.equal rv lv
            ||
            if Hashtbl.mem t.corrupted (site, ri) then begin
              Hashtbl.remove t.corrupted (site, ri);
              true
            end
            else false))
         rec_contents lost_contents
  in
  if not recovery_ok then
    failwith (Printf.sprintf "Cluster: recovery of site %d diverged from its redo log" site);
  t.stores.(site) <- recovered;
  Wal.reattach wal recovered;
  t.site_up.(site) <- true;
  if Trace.on t.trace then Trace.record t.trace (Event.Site_recover { site; downtime });
  Condvar.broadcast t.up_cv.(site)

(* --- online reconfiguration ----------------------------------------------- *)

(* A healer failover rewires the tree just like an operator plan does, so
   heal runs provision for mid-run placement changes too. *)
let reconfig_planned t = not (Reconfig.is_empty t.params.reconfig) || t.params.heal

let txn_started t = t.active_txns <- t.active_txns + 1

let txn_finished t =
  t.active_txns <- t.active_txns - 1;
  assert (t.active_txns >= 0);
  maybe_drained t

let await_drained t =
  while not (drained_now t) do
    Condvar.await t.drained
  done

(* Serialize epoch switches: the healer's failovers and the operator's
   reconfiguration plan share the [reconfiguring] flag, so whichever
   coordinator arrives second waits for the resume broadcast. *)
let acquire_switch t =
  while t.reconfiguring do
    Condvar.await t.resume
  done;
  t.reconfiguring <- true

let release_switch t =
  t.reconfiguring <- false;
  Condvar.broadcast t.resume

(* --- self-healing hooks ---------------------------------------------------- *)

let heal_planned t = t.params.heal

(* In-flight messages the failover drain may ignore: traffic on a pair with a
   down endpoint or an active partition between them is parked by the acked
   links for the whole outage, and waiting for it would stall the epoch
   switch for the downtime the failover is meant to mask. *)
let parked_outstanding t =
  let pred ~src ~dst =
    (not t.site_up.(src)) || (not t.site_up.(dst))
    ||
    match t.injector with
    | Some inj -> not (Fault.reachable inj ~src ~dst ~at:(Sim.now t.sim))
    | None -> false
  in
  List.fold_left (fun acc f -> acc + f pred) 0 t.inflight_matching_fns

(* The healer's weak drain: every transaction attempt finished and nothing in
   flight except traffic parked behind the outage itself. *)
let weak_drained t = t.active_txns = 0 && t.outstanding - parked_outstanding t <= 0

(* A propagation message routed under an earlier epoch surfaced after a
   weak-drain failover switch (it was parked behind the outage when routing
   moved on). Under healing it is dropped with accounting — anti-entropy is
   the convergence backstop; without healing the strong drain makes this
   impossible, so it stays a hard error. *)
let stale_epoch t ~site ~epoch =
  if epoch = t.config_epoch then false
  else begin
    (match t.stale_drop_ctr with
    | Some ctr -> Stats.incr ctr ~site
    | None ->
        failwith
          (Printf.sprintf "Cluster: stale epoch %d at site %d without healing" epoch site));
    true
  end

(* Clients call this before generating each transaction; while an epoch
   switch is in progress they stall here, and the stall is charged to the
   originating site so the mid-run throughput dip is measurable. *)
let reconfig_barrier t ~site =
  if t.reconfiguring then begin
    let t0 = Sim.now t.sim in
    while t.reconfiguring do
      Condvar.await t.resume
    done;
    let stall = Sim.now t.sim -. t0 in
    t.stall_total <- t.stall_total +. stall;
    match t.stall_hist with Some h -> Stats.observe h ~site stall | None -> ()
  end

let trace_reconfig_begin t ~epoch =
  if Trace.on t.trace then Trace.record t.trace (Event.Reconfig_begin { epoch })

let trace_reconfig_switch t ~epoch ~duration =
  if Trace.on t.trace then Trace.record t.trace (Event.Reconfig_switch { epoch; duration })

let trace_reconfig_done t ~epoch ~duration =
  if Trace.on t.trace then Trace.record t.trace (Event.Reconfig_done { epoch; duration })

let trace_state_transfer t ~item ~src ~dst =
  if Trace.on t.trace then Trace.record t.trace (Event.State_transfer { item; src; dst })

(* Silently scramble replica copies at [site]: each non-primary copy is
   overwritten with probability [prob] via [Store.restore], which bypasses
   the redo-log hook — the damage is invisible to WAL recovery and only the
   anti-entropy digests can find it. Primary copies are never touched (they
   are the repair source of truth). The RNG is derived from the seed and the
   clause index alone, so corruption is independent of workload progress. *)
let corrupt_site t ~site ~prob ~clause =
  let rng = Rng.create ((t.params.seed * 131071) + (clause * 7919) + 17) in
  let store = t.stores.(site) in
  let n = ref 0 in
  Array.iter
    (fun item ->
      if t.placement.Placement.primary.(item) <> site && Rng.float rng < prob then begin
        let v = Store.read store item in
        Store.restore store item
          (Value.write ~writer:(-2) ~payload:(Printf.sprintf "corrupt.%d" clause) v);
        Hashtbl.replace t.corrupted (site, item) ();
        incr n
      end)
    (Placement.placed_at t.placement site);
  if !n > 0 then begin
    t.corrupt_items <- t.corrupt_items + !n;
    match t.corrupt_ctr with Some ctr -> Stats.add ctr ~site !n | None -> ()
  end;
  t.corruption_events <- t.corruption_events + 1;
  if Trace.on t.trace then Trace.record t.trace (Event.Corrupt { site; items = !n })

let corrupted_copies t = Hashtbl.length t.corrupted
let corruption_count t = t.corruption_events
let corrupt_items_total t = t.corrupt_items
let is_corrupt t ~site ~item = Hashtbl.mem t.corrupted (site, item)
let clear_corrupt t ~site ~item = Hashtbl.remove t.corrupted (site, item)

let schedule_faults t =
  match t.injector with
  | None -> ()
  | Some inj ->
      List.iter
        (fun (c : Fault.crash) ->
          Sim.at t.sim c.at (fun () -> crash_site t ~site:c.site);
          Sim.at t.sim (c.at +. c.down_for) (fun () ->
              recover_site t ~site:c.site ~downtime:c.down_for))
        (Fault.schedule inj).crashes;
      List.iteri
        (fun clause (co : Fault.corruption) ->
          Sim.at t.sim co.c_at (fun () ->
              if t.site_up.(co.c_site) then
                corrupt_site t ~site:co.c_site ~prob:co.c_prob ~clause))
        (Fault.schedule inj).corruptions;
      (* Partitions need no link-level action here — the injector's transmit
         plans already park cross-cut messages — but the begin/heal instants
         are counted and traced. *)
      List.iter
        (fun (p : Fault.partition) ->
          let groups = Fault.string_of_groups p.groups in
          Sim.at t.sim p.from_t (fun () ->
              t.partitions <- t.partitions + 1;
              if Trace.on t.trace then Trace.record t.trace (Event.Partition_begin { groups }));
          Sim.at t.sim p.until_t (fun () ->
              if Trace.on t.trace then Trace.record t.trace (Event.Partition_heal { groups })))
        (Fault.schedule inj).partitions

let crash_count t = t.crashes
let partition_count t = t.partitions
let profile t = t.profile
let profile_cat t name = Profile.cat t.profile name

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Network = Repdb_net.Network
module Txn = Repdb_txn.Txn

let name = "naive"
let updates_replicas = true

type msg = { gid : int; writes : int list; origin_commit : float }

type t = { c : Cluster.t; net : msg Network.t }

let applier t site =
  let c = t.c in
  let inbox = Network.inbox t.net site in
  let rec loop () =
    let _, msg = Mailbox.recv inbox in
    Cluster.use_cpu c site c.params.cpu_msg;
    let items = Routing.local_replicas c.placement site msg.writes in
    Exec.apply_secondary c ~gid:msg.gid ~site items ~finally:(fun () ->
        if items <> [] then
          Metrics.propagation c.metrics ~delay:(Sim.now c.sim -. msg.origin_commit);
        Cluster.dec_outstanding c);
    loop ()
  in
  loop ()

let create (c : Cluster.t) =
  let net = Cluster.make_net c in
  let t = { c; net } in
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    Sim.spawn ~cat c.sim (fun () -> applier t site)
  done;
  t

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let gid = Cluster.fresh_gid c in
  let attempt = Cluster.fresh_attempt c in
  match Exec.run_ops c ~gid ~attempt ~site spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      Txn.Aborted reason
  | Ok () ->
      let writes = List.sort_uniq compare (Txn.writes spec) in
      Exec.commit_cost c ~site;
      Exec.apply_writes c ~gid ~site writes;
      Exec.release c ~attempt ~site;
      (* Indiscriminate: straight to every replica site, no ordering. *)
      let dests = Hashtbl.create 8 in
      List.iter
        (fun item -> Array.iter (fun s -> Hashtbl.replace dests s ()) c.placement.replicas.(item))
        writes;
      let now = Sim.now c.sim in
      Hashtbl.iter
        (fun dst () ->
          Cluster.inc_outstanding c;
          Network.send t.net ~src:site ~dst { gid; writes; origin_commit = now })
        dests;
      if Hashtbl.length dests > 0 then
        Cluster.use_cpu c site (float_of_int (Hashtbl.length dests) *. c.params.cpu_msg);
      Txn.Committed

(* Placement is read afresh on every access; nothing cached to rebuild. *)
let reconfigure = Some ignore

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Tree = Repdb_graph.Tree
module Network = Repdb_net.Network
module Batcher = Repdb_net.Batcher
module Placement = Repdb_workload.Placement
module Txn = Repdb_txn.Txn

let name = "dag-wt"
let updates_replicas = true

type msg = { gid : int; writes : int list; origin_commit : float; epoch : int }

type t = {
  c : Cluster.t;
  mutable tr : Tree.t;
  net : msg list Network.t; (* one physical message = one coalesced run *)
  bat : msg Batcher.t;
  mutable in_subtree : Routing.subtree_map;
      (* site -> item bitset -> some replica lives in subtree(site) *)
}

let tree t = t.tr

(* Children whose subtree holds a replica of some written item. *)
let relevant_children t site writes =
  Routing.relevant_children t.in_subtree t.tr site writes

(* Forward a subtransaction to the relevant children; non-blocking, so it can
   sit inside an atomic commit section. Returns the number of sends. The
   outstanding token is taken per update at push time, so updates parked in
   the batcher hold the quiescence/drain machinery open until they flush. *)
let forward t site (msg : msg) =
  let children = relevant_children t site msg.writes in
  List.iter
    (fun child ->
      Cluster.inc_outstanding t.c;
      Batcher.push t.bat ~src:site ~dst:child msg)
    children;
  List.length children


(* One secondary subtransaction, received from the tree parent. *)
let process_secondary t site (msg : msg) =
  let c = t.c in
  (* Epoch fence: the operator coordinator drains all in-flight propagation
     before it switches routing, so a later epoch cannot surface here — but a
     healer failover drains weakly, and a message parked behind the outage
     can deliver after the switch. Such messages are dropped with accounting;
     anti-entropy repairs whatever they carried. *)
  if Cluster.stale_epoch c ~site ~epoch:msg.epoch then Cluster.dec_outstanding c
  else begin
  Cluster.use_cpu c site c.params.cpu_msg;
  let items = Routing.local_replicas c.placement site msg.writes in
  let sent = ref 0 in
  Exec.apply_secondary c ~gid:msg.gid ~site items ~finally:(fun () ->
      if items <> [] then
        Cluster.record_propagation c ~gid:msg.gid ~site
          ~delay:(Sim.now c.sim -. msg.origin_commit);
      sent := forward t site msg;
      Cluster.dec_outstanding c);
  if !sent > 0 then Cluster.use_cpu c site (float_of_int !sent *. c.params.cpu_msg)
  end

let applier t site =
  let inbox = Network.inbox t.net site in
  let rec loop () =
    let _, batch = Mailbox.recv inbox in
    (* Dequeue order = receive order (the FIFO the protocol's correctness
       rests on), and a batch preserves its pushes' order; the trace records
       it so tests can assert commit order. *)
    List.iter
      (fun (msg : msg) ->
        Cluster.trace_secondary_recv t.c ~gid:msg.gid ~site;
        Cluster.trace_queue_depth t.c ~site ~queue:"fifo" ~depth:(Mailbox.length inbox);
        process_secondary t site msg)
      batch;
    loop ()
  in
  loop ()

let describe_msg (msg : msg) = ("secondary", 24 + (8 * List.length msg.writes))

let check_tree (c : Cluster.t) tr =
  let g = Placement.copy_graph c.placement in
  if not (Repdb_graph.Digraph.is_dag g) then
    invalid_arg "Dag_wt: copy graph has a cycle (use the BackEdge protocol)";
  if not (Tree.satisfies g tr) then invalid_arg "Dag_wt: tree lacks the ancestor property"

let create_with_tree (c : Cluster.t) tr =
  check_tree c tr;
  let net = Cluster.make_batch_net ~describe_one:describe_msg c in
  let bat = Cluster.make_batcher c net in
  let t = { c; tr; net; bat; in_subtree = Routing.subtree_replicas c.placement tr } in
  (* A reconfiguration — operator-planned or a healer failover — can give any
     site a tree parent later, so under either every site gets an applier
     (idle at roots); without one, spawn exactly as before — spawn counts
     feed the event tie-break order, and static runs must stay
     byte-identical. *)
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    if Cluster.reconfig_planned c || Tree.parent tr site <> -1 then
      Sim.spawn ~cat c.sim (fun () -> applier t site)
  done;
  t

let create (c : Cluster.t) =
  let g = Placement.copy_graph c.placement in
  if not (Repdb_graph.Digraph.is_dag g) then
    invalid_arg "Dag_wt: copy graph has a cycle (use the BackEdge protocol)";
  create_with_tree c (Tree.of_dag g)

(* Epoch switch (cluster drained, placement already swapped): rebuild the
   tree and the subtree-replica routing map for the new copy graph. *)
let reconfigure =
  Some
    (fun t ->
      let g = Placement.copy_graph t.c.placement in
      if not (Repdb_graph.Digraph.is_dag g) then
        invalid_arg "Dag_wt: reconfiguration made the copy graph cyclic";
      let tr = Tree.of_dag g in
      t.tr <- tr;
      t.in_subtree <- Routing.subtree_replicas t.c.placement tr)

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let gid = Cluster.fresh_gid c in
  let attempt = Cluster.fresh_attempt c in
  Cluster.trace_txn_begin c ~gid ~site;
  Cluster.span_link c ~owner:attempt ~gid;
  match Exec.run_ops c ~gid ~attempt ~site spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      Cluster.trace_txn_abort c ~gid ~site reason;
      Txn.Aborted reason
  | Ok () ->
      let writes = List.sort_uniq compare (Txn.writes spec) in
      Exec.commit_cost ~owner:attempt c ~site;
      (* Atomic commit section: apply, release, forward. *)
      Exec.apply_writes c ~gid ~site writes;
      Cluster.note_destined c ~items:writes;
      Cluster.trace_txn_commit c ~gid ~site;
      Exec.release c ~attempt ~site;
      let msg = { gid; writes; origin_commit = Sim.now c.sim; epoch = c.config_epoch } in
      let sent = if writes = [] then 0 else forward t site msg in
      if sent > 0 then Cluster.use_cpu c site (float_of_int sent *. c.params.cpu_msg);
      Txn.Committed

module Store = Repdb_store.Store
module Value = Repdb_store.Value

type divergence = {
  item : int;
  site : int;
  primary_value : Value.t;
  replica_value : Value.t;
}

let check (c : Cluster.t) =
  let acc = ref [] in
  let placement = c.placement in
  for item = placement.n_items - 1 downto 0 do
    let primary_value = Store.read c.stores.(placement.primary.(item)) item in
    Array.iter
      (fun site ->
        let replica_value = Store.read c.stores.(site) item in
        if not (Value.equal primary_value replica_value) then
          acc := { item; site; primary_value; replica_value } :: !acc)
      placement.replicas.(item)
  done;
  !acc

let pp_divergence ppf d =
  Fmt.pf ppf "item %d at site %d: primary=%a replica=%a" d.item d.site Value.pp d.primary_value
    Value.pp d.replica_value

(** Replica-convergence check.

    After a run has quiesced, every secondary copy of every item must hold
    exactly the value of its primary copy — same last writer, same version.
    Protocols that never push physical updates (PSL) are exempt; their
    replicas are virtual. *)

type divergence = {
  item : int;
  site : int;  (** The replica site that disagrees. *)
  primary_value : Repdb_store.Value.t;
  replica_value : Repdb_store.Value.t;
}

(** All divergent copies; empty means converged. *)
val check : Cluster.t -> divergence list

val pp_divergence : Format.formatter -> divergence -> unit

(** The DAG(WT) protocol — "DAG Without Timestamps" (Section 2).

    Requires an acyclic copy graph. Updates are propagated along the edges of
    a tree [T] in which every copy-graph child of a site is a tree descendant
    of it. A transaction executes entirely locally; at commit its updates are
    forwarded to the {e relevant} tree children (those whose subtree holds a
    replica of an updated item). Each site commits the secondary
    subtransactions received from its single tree parent in FIFO order and
    forwards them, atomically with commit, so that when a secondary executes
    at a site every transaction serialized before it has already committed
    there. *)

include Protocol.S

(** [create_with_tree cluster tree] — like [create] but with an explicit
    propagation tree (must satisfy {!Repdb_graph.Tree.satisfies} for the
    placement's copy graph).
    @raise Invalid_argument if the copy graph is cyclic or the tree invalid. *)
val create_with_tree : Cluster.t -> Repdb_graph.Tree.t -> t

(** The tree in use (for tests and examples). *)
val tree : t -> Repdb_graph.Tree.t

(** Eager read-one/write-all replication — the classical approach the paper's
    introduction argues against.

    Every write updates all replicas inside the transaction: the origin
    acquires exclusive locks at each replica site as it executes, then runs a
    two-phase commit (prepare/ack, then decide) before releasing anything.
    Serializable by construction, but transaction size grows with the degree
    of replication, so deadlock probability and response time explode as
    sites are added — the scaling bench reproduces that claim. Not part of
    the paper's evaluation; included as an ablation baseline. *)

include Protocol.S

(** Remote write-lock requests performed so far. *)
val remote_writes : t -> int

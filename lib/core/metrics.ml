module Txn = Repdb_txn.Txn

type t = {
  n_sites : int;
  mutable commits : int;
  mutable aborts : int;
  mutable by_reason : (Txn.abort_reason * int) list;
  mutable response_sum : float;
  mutable responses : float array; (* all samples, grown geometrically *)
  commits_by_site : int array;
  aborts_by_site : int array;
  response_sum_by_site : float array;
  mutable prop_sum : float;
  mutable prop_n : int;
  mutable last_client_done : float;
  (* Availability timeline: commits / aborts per [bucket_ms] of simulated
     time, grown on demand. Only fed when callers pass [~at]. *)
  mutable tl_commits : int array;
  mutable tl_aborts : int array;
  mutable tl_len : int;
  mutable stale_reads : int;
  mutable stale_max : float;
  mutable stale_sum : float;
}

let bucket_ms = 100.0

let create ?(n_sites = 1) () =
  if n_sites < 1 then invalid_arg "Metrics.create: need at least one site";
  {
    n_sites;
    commits = 0;
    aborts = 0;
    by_reason = [];
    response_sum = 0.0;
    responses = [||];
    commits_by_site = Array.make n_sites 0;
    aborts_by_site = Array.make n_sites 0;
    response_sum_by_site = Array.make n_sites 0.0;
    prop_sum = 0.0;
    prop_n = 0;
    last_client_done = 0.0;
    tl_commits = [||];
    tl_aborts = [||];
    tl_len = 0;
    stale_reads = 0;
    stale_max = 0.0;
    stale_sum = 0.0;
  }

let bucket_of t at =
  let b = int_of_float (at /. bucket_ms) in
  let b = max 0 b in
  if b >= Array.length t.tl_commits then begin
    let ncap = max 64 (max (b + 1) (2 * Array.length t.tl_commits)) in
    let grow a =
      let g = Array.make ncap 0 in
      Array.blit a 0 g 0 (Array.length a);
      g
    in
    t.tl_commits <- grow t.tl_commits;
    t.tl_aborts <- grow t.tl_aborts
  end;
  if b + 1 > t.tl_len then t.tl_len <- b + 1;
  b

let timeline_commit t ~at =
  let b = bucket_of t at in
  t.tl_commits.(b) <- t.tl_commits.(b) + 1

let timeline_abort t ~at =
  let b = bucket_of t at in
  t.tl_aborts.(b) <- t.tl_aborts.(b) + 1

let commit t ~site ~response =
  if t.commits = Array.length t.responses then begin
    let ncap = max 256 (2 * Array.length t.responses) in
    let grown = Array.make ncap 0.0 in
    Array.blit t.responses 0 grown 0 t.commits;
    t.responses <- grown
  end;
  t.responses.(t.commits) <- response;
  t.commits <- t.commits + 1;
  t.response_sum <- t.response_sum +. response;
  let site = if site < t.n_sites then site else 0 in
  t.commits_by_site.(site) <- t.commits_by_site.(site) + 1;
  t.response_sum_by_site.(site) <- t.response_sum_by_site.(site) +. response

let abort t ~site reason =
  t.aborts <- t.aborts + 1;
  let site = if site < t.n_sites then site else 0 in
  t.aborts_by_site.(site) <- t.aborts_by_site.(site) + 1;
  let n = try List.assoc reason t.by_reason with Not_found -> 0 in
  t.by_reason <- (reason, n + 1) :: List.remove_assoc reason t.by_reason

let propagation t ~delay =
  t.prop_sum <- t.prop_sum +. delay;
  t.prop_n <- t.prop_n + 1

let client_done t ~time = if time > t.last_client_done then t.last_client_done <- time

let stale_read t ~staleness =
  t.stale_reads <- t.stale_reads + 1;
  t.stale_sum <- t.stale_sum +. staleness;
  if staleness > t.stale_max then t.stale_max <- staleness

type site_summary = { site : int; s_commits : int; s_aborts : int; s_avg_response : float }

type summary = {
  commits : int;
  aborts : int;
  abort_rate : float;
  aborts_by_reason : (Txn.abort_reason * int) list;
  duration : float;
  throughput : float;
  throughput_per_site : float;
  avg_response : float;
  p50_response : float;
  p95_response : float;
  p99_response : float;
  avg_propagation : float;
  n_propagations : int;
  messages : int;
  per_site : site_summary list;
  timeline : (float * int * int) list;
  unavail_ms : float;
  unavail_windows : int;
  stale_reads : int;
  max_staleness : float;
  avg_staleness : float;
}

(* Buckets that saw aborts but no commits are "unavailable"; consecutive ones
   merge into windows. Leading/trailing empty buckets don't count — silence
   is idleness, not unavailability. *)
let unavailability t =
  let ms = ref 0.0 and windows = ref 0 and in_window = ref false in
  for b = 0 to t.tl_len - 1 do
    if t.tl_aborts.(b) > 0 && t.tl_commits.(b) = 0 then begin
      ms := !ms +. bucket_ms;
      if not !in_window then incr windows;
      in_window := true
    end
    else if t.tl_commits.(b) > 0 then in_window := false
  done;
  (!ms, !windows)

(* Nearest-rank: the smallest element with at least [q] of the sample at or
   below it, i.e. rank ceil(q*n) (1-based). Truncating q*n instead would skew
   one element high on exact boundaries — p50 of [1;2;3;4] must be 2, not 3. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 1 (min n rank) - 1)

let summarize (t : t) ~n_sites ~messages =
  let attempts = t.commits + t.aborts in
  let duration = t.last_client_done in
  let seconds = duration /. 1000.0 in
  let throughput = if seconds > 0.0 then float_of_int t.commits /. seconds else 0.0 in
  let sorted = Array.sub t.responses 0 t.commits in
  Array.sort compare sorted;
  {
    commits = t.commits;
    aborts = t.aborts;
    abort_rate = (if attempts = 0 then 0.0 else 100.0 *. float_of_int t.aborts /. float_of_int attempts);
    aborts_by_reason = List.sort compare t.by_reason;
    duration;
    throughput;
    throughput_per_site = throughput /. float_of_int n_sites;
    avg_response = (if t.commits = 0 then 0.0 else t.response_sum /. float_of_int t.commits);
    p50_response = percentile sorted 0.5;
    p95_response = percentile sorted 0.95;
    p99_response = percentile sorted 0.99;
    avg_propagation = (if t.prop_n = 0 then 0.0 else t.prop_sum /. float_of_int t.prop_n);
    n_propagations = t.prop_n;
    messages;
    timeline =
      List.init t.tl_len (fun b ->
          (float_of_int b *. bucket_ms, t.tl_commits.(b), t.tl_aborts.(b)));
    unavail_ms = fst (unavailability t);
    unavail_windows = snd (unavailability t);
    stale_reads = t.stale_reads;
    max_staleness = t.stale_max;
    avg_staleness =
      (if t.stale_reads = 0 then 0.0 else t.stale_sum /. float_of_int t.stale_reads);
    per_site =
      List.init t.n_sites (fun site ->
          let c = t.commits_by_site.(site) in
          {
            site;
            s_commits = c;
            s_aborts = t.aborts_by_site.(site);
            s_avg_response =
              (if c = 0 then 0.0 else t.response_sum_by_site.(site) /. float_of_int c);
          });
  }

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>abort reasons: %a@ commits=%d aborts=%d (%.2f%%) duration=%.0fms@ \
     throughput=%.2f txn/s (%.2f per site)@ \
     response avg=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms@ avg propagation=%.1fms (%d) messages=%d"
    (Fmt.list ~sep:Fmt.sp (fun ppf (r, n) -> Fmt.pf ppf "%s=%d" (Txn.string_of_abort r) n))
    s.aborts_by_reason s.commits s.aborts s.abort_rate s.duration s.throughput
    s.throughput_per_site s.avg_response s.p50_response s.p95_response s.p99_response
    s.avg_propagation s.n_propagations s.messages;
  if s.unavail_windows > 0 then
    Fmt.pf ppf "@ unavailability: %.0fms over %d window%s" s.unavail_ms s.unavail_windows
      (if s.unavail_windows = 1 then "" else "s");
  if s.stale_reads > 0 then
    Fmt.pf ppf "@ stale reads=%d staleness avg=%.1fms max=%.1fms" s.stale_reads s.avg_staleness
      s.max_staleness;
  Fmt.pf ppf "@]"

let pp_per_site ppf s =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf r ->
         Fmt.pf ppf "site %-3d commits=%-6d aborts=%-6d avg response=%.1fms" r.site r.s_commits
           r.s_aborts r.s_avg_response))
    s.per_site

(** Tree-routing helpers shared by DAG(WT) and the BackEdge protocol. *)

module Tree = Repdb_graph.Tree
module Placement = Repdb_workload.Placement

(** [subtree_replicas placement tree] — per-site bitmap over items:
    [(m site).(item)] is true iff some site in [subtree tree site] holds a
    replica of [item]. Computed bottom-up over the forest. *)
val subtree_replicas : Placement.t -> Tree.t -> bool array array

(** [relevant_children maps tree site writes] — the children of [site] whose
    subtree holds a replica of some written item (the paper's relevance rule
    for forwarding secondary subtransactions). *)
val relevant_children : bool array array -> Tree.t -> int -> int list -> int list

(** [local_replicas placement site writes] — written items replicated at
    [site] (the ones a secondary subtransaction applies there). *)
val local_replicas : Placement.t -> int -> int list -> int list

(** Tree-routing helpers shared by DAG(WT) and the BackEdge protocol. *)

module Tree = Repdb_graph.Tree
module Placement = Repdb_workload.Placement

(** Per-site bitmap over items: [m * ceil(n/8)] bytes, unioned bottom-up
    with 64-bit word operations — the compact replacement for the old
    [bool array array] matrix. *)
type subtree_map

(** [subtree_replicas placement tree] — per-site bitmap over items:
    bit [(site, item)] is set iff some site in [subtree tree site] holds a
    replica of [item]. Computed bottom-up over the forest. *)
val subtree_replicas : Placement.t -> Tree.t -> subtree_map

(** [in_subtree maps ~site item] — does some site in [subtree site] hold a
    replica of [item]? O(1). *)
val in_subtree : subtree_map -> site:int -> int -> bool

(** [relevant_children maps tree site writes] — the children of [site] whose
    subtree holds a replica of some written item (the paper's relevance rule
    for forwarding secondary subtransactions). *)
val relevant_children : subtree_map -> Tree.t -> int -> int list -> int list

(** [local_replicas placement site writes] — written items replicated at
    [site] (the ones a secondary subtransaction applies there). O(log r) per
    write, no replica-list scans. *)
val local_replicas : Placement.t -> int -> int list -> int list

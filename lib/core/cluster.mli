(** Shared site runtime: one simulated distributed database instance.

    A cluster bundles the substrate a protocol runs on — simulation kernel,
    per-site stores and lock managers, per-machine CPUs, the data placement,
    the access history and metric counters — plus the bookkeeping the driver
    needs to detect quiescence (outstanding in-flight work, running clients,
    the stop flag that shuts periodic processes down). *)

module Sim = Repdb_sim.Sim
module Rng = Repdb_sim.Rng
module Resource = Repdb_sim.Resource
module Condvar = Repdb_sim.Condvar
module Store = Repdb_store.Store
module Wal = Repdb_store.Wal
module Lock_mgr = Repdb_lock.Lock_mgr
module Fault = Repdb_fault.Fault
module Reconfig = Repdb_reconfig.Reconfig
module History = Repdb_txn.History
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Trace = Repdb_obs.Trace
module Stats = Repdb_obs.Stats
module Span = Repdb_obs.Span
module Timeline = Repdb_obs.Timeline
module Profile = Repdb_obs.Profile

type t = {
  sim : Sim.t;
  params : Params.t;
  mutable placement : Placement.t;
      (** Current data placement; replaced wholesale at an epoch switch
          (while the cluster is drained), never mutated in place. *)
  lat_fn : int -> int -> float;  (** One-way latency per ordered site pair. *)
  stores : Store.t array;
  locks : Lock_mgr.t array;
  cpus : Resource.t array;  (** One per machine; sites map round-robin. *)
  history : History.t;
  metrics : Metrics.t;
  trace : Trace.t;  (** Structured event trace; disabled unless requested. *)
  stats : Stats.t;  (** Per-site counter/histogram registry; always on. *)
  prop_hist : Stats.histogram;  (** Propagation-delay histogram, per site. *)
  rng : Rng.t;  (** Workload stream; derived from [params.seed]. *)
  mutable next_gid : int;
  mutable next_attempt : int;
  mutable messages : int;  (** Network messages sent, all networks combined. *)
  mutable outstanding : int;  (** In-flight messages / pending remote work. *)
  mutable clients_running : int;
  mutable stopped : bool;  (** Set once quiescent; periodic processes exit. *)
  quiesced : Condvar.t;  (** Broadcast on transitions relevant to quiescence. *)
  injector : Fault.injector option;
      (** Built from [params.faults] when that schedule is non-empty; drives
          the networks' drop/delay behaviour and {!schedule_faults}. *)
  wals : Wal.t array;
      (** Per-site redo logs, attached at creation — only under fault
          injection ([[||]] otherwise), since hooking every write has a cost
          and fault-free runs never crash. *)
  site_up : bool array;
  up_cv : Condvar.t array;  (** Per-site; broadcast when the site restarts. *)
  mutable crashes : int;  (** Crash events executed so far. *)
  mutable partitions : int;  (** Partition windows activated so far. *)
  mutable deadline_at : float;
      (** Absolute deadline of the submit being started, armed by the client
          immediately before [submit]; protocols capture it at entry (there
          is no blocking point in between, so the handoff never mixes
          transactions). [infinity] when deadlines are off. *)
  apply_mtime : float array array;
      (** [site][item] — simulated time of the last write applied locally;
          the staleness clock for partition-time local reads. *)
  stale_ctr : Stats.counter option;
      (** ["read.stale"]; registered only when [params.stale_reads > 0], so
          stats tables without the feature are unchanged. *)
  mutable config_epoch : int;
      (** Configuration epoch; bumped once per executed reconfiguration
          step. Propagation messages carry the epoch they were routed under
          and assert it on arrival (drain makes violations impossible). *)
  mutable reconfiguring : bool;  (** An epoch switch is in progress. *)
  mutable active_txns : int;  (** Transaction attempts currently executing. *)
  drained : Condvar.t;
      (** Broadcast (while reconfiguring) when [active_txns] and
          [outstanding] both reach 0. *)
  resume : Condvar.t;  (** Broadcast when the epoch switch completes. *)
  mutable reconfigs : int;  (** Reconfiguration steps executed so far. *)
  mutable state_transfers : int;  (** Item values bulk-copied to new replicas. *)
  mutable stall_total : float;  (** Total client stall at the barrier, ms. *)
  switch_hist : Stats.histogram option;
      (** Drain + transfer + switch latency per step (["reconfig.switch"]);
          registered only when a reconfiguration plan exists, so
          static-topology stats tables are unchanged. *)
  stall_hist : Stats.histogram option;  (** Per-site client stall times. *)
  spans : Span.t;
      (** Transaction phase attribution (always on; registers the five
          [span.*] histograms in [stats]). *)
  profile : Profile.t;
      (** The kernel's self-profiler; enabled iff [params.profile]. *)
  timeline : Timeline.t option;
      (** Sampled time series, present iff [params.timeline_every > 0];
          filled by the driver's ticker via {!sample_timeline}. *)
  commit_ctr : Stats.counter;  (** ["txn.commit"] — shared with the driver. *)
  abort_ctr : Stats.counter;  (** ["txn.abort"]. *)
  tl_commits_prev : int array;  (** Counter snapshots at the last sample. *)
  tl_aborts_prev : int array;
  lag_pending : int array;
      (** Per site: propagated updates destined but not yet applied
          (maintained only while a timeline exists). *)
  lag_applied : float array;
      (** Per site: origin-commit time of the newest update applied. *)
  lag_seen : bool array;  (** Scratch for {!note_destined} deduplication. *)
  mutable inflight_fns : (unit -> int) list;
      (** One in-flight-message getter per network built by {!make_net}. *)
  mutable inflight_matching_fns : ((src:int -> dst:int -> bool) -> int) list;
      (** Per network/batcher: in-flight units on the pairs a predicate
          selects; summed by {!parked_outstanding} for the weak drain. *)
  corrupted : (int * int, unit) Hashtbl.t;
      (** [(site, item)] replica copies scrambled by a [corrupt@] clause and
          not yet repaired; cleared by recovery and anti-entropy. *)
  mutable corruption_events : int;  (** Corruption injections executed. *)
  mutable corrupt_items : int;  (** Copies scrambled, cumulative. *)
  mutable phi_fn : (unit -> float array) option;
      (** Healer-installed sampler: per-site suspicion level for the
          timeline's φ column. *)
  stale_drop_ctr : Stats.counter option;
      (** ["heal.stale_drop"]; registered only when [params.heal]. *)
  corrupt_ctr : Stats.counter option;
      (** ["corrupt.items"]; registered only when [params.heal]. *)
}

(** [create params] — build the cluster; the placement is drawn from a
    generator derived from [params.seed]. Pass [~trace:true] to collect a
    structured event trace (ring of [trace_capacity] events, default 2^20);
    the per-site stats registry is always on. *)
val create : ?trace:bool -> ?trace_capacity:int -> Params.t -> t

(** [create_with ?latency params placement] — same but with a fixed placement
    (used by examples and tests that need a hand-built copy graph), and
    optionally a per-pair latency function (e.g. to model one slow link, the
    condition that exposes Example 1.1 under indiscriminate propagation). *)
val create_with :
  ?latency:(int -> int -> float) -> ?trace:bool -> ?trace_capacity:int -> Params.t -> Placement.t -> t

(** Fresh global transaction id. *)
val fresh_gid : t -> int

(** Fresh execution-attempt id (lock owner). *)
val fresh_attempt : t -> int

(** [use_cpu t site d] — consume [d] ms of the site's machine CPU (FIFO). *)
val use_cpu : t -> int -> float -> unit

(** Constant-latency function for building networks from [params.latency]. *)
val latency_fn : t -> int -> int -> float

(** [make_net t] — a fresh network wired to the cluster's simulation, latency,
    message counter, trace and stats registry. Each protocol builds its own
    typed network(s); [describe] tags traced messages with a kind and an
    approximate size in bytes. *)
val make_net : ?describe:('a -> string * int) -> t -> 'a Repdb_net.Network.t

(** [make_batch_net t] — a network carrying per-pair coalesced update runs
    ([batch_size]/[batch_linger_ms] from the cluster's params). Message
    counters, per-site stats and the timeline's in-flight sample account
    logical updates, not envelopes, so metrics stay comparable across batch
    sizes; [describe_one] describes a single update (a singleton batch is
    described exactly like the bare message, larger batches as
    ["kind[n]"] with summed sizes). *)
val make_batch_net : ?describe_one:('a -> string * int) -> t -> 'a list Repdb_net.Network.t

(** [make_batcher t net] — the coalescer feeding [net], configured from the
    cluster's [batch_size]/[batch_linger_ms]; updates still parked in it are
    included in the timeline's in-flight sample. *)
val make_batcher : t -> 'a list Repdb_net.Network.t -> 'a Repdb_net.Batcher.t

(** {1 Trace emission helpers}

    No-ops when the trace is disabled; protocols call these instead of
    touching the trace directly. *)

val trace_txn_begin : t -> gid:int -> site:int -> unit
val trace_txn_commit : t -> gid:int -> site:int -> unit
val trace_txn_abort : t -> gid:int -> site:int -> Repdb_txn.Txn.abort_reason -> unit
val trace_secondary_recv : t -> gid:int -> site:int -> unit
val trace_secondary_commit : t -> gid:int -> site:int -> unit
val trace_queue_depth : t -> site:int -> queue:string -> depth:int -> unit
val trace_txn_deadline : t -> gid:int -> site:int -> unit

(** {1 Per-transaction deadlines} *)

(** Arm {!field:deadline_at} for the submit about to start: now +
    [params.txn_deadline], or [infinity] when deadlines are disabled. Called
    by the driver's client immediately before each attempt. *)
val arm_deadline : t -> unit

(** The currently armed absolute deadline (ms of simulated time). *)
val deadline_at : t -> float

(** {1 Bounded-staleness reads} *)

(** Stamp [item]'s local copy at [site] as written now. Called on every
    applied write (primary and replica). *)
val note_apply : t -> site:int -> item:int -> unit

(** ms since [item] was last written at [site] (time itself if never). *)
val staleness : t -> site:int -> item:int -> float

(** Account a partition-time local read: metrics, the ["read.stale"] counter
    and a [Stale_read] trace event. *)
val record_stale_read : t -> site:int -> item:int -> staleness:float -> unit

(** Record a replica update in the aggregate metrics, the per-site
    propagation-delay histogram and (when enabled) the trace; also advances
    the replication-lag bookkeeping when a timeline is being sampled. *)
val record_propagation : t -> gid:int -> site:int -> delay:float -> unit

(** {1 Replication-lag timeline}

    All no-ops unless [params.timeline_every > 0]. *)

(** [note_destined t ~items] — called by the lazy protocols at origin-commit
    time with the committed write set: every site holding a replica of a
    written item gains one pending update (once per transaction). *)
val note_destined : t -> items:int list -> unit

(** Replication lag of [site], ms: 0 when no update is pending, otherwise
    the age of the newest applied origin commit (so it grows in real time
    while propagation is stalled, e.g. across a partition). *)
val lag_of : t -> int -> float

val timeline : t -> Timeline.t option

(** Append one sample row (gauges now, commit/abort deltas since the last
    sample). The driver's ticker calls this every [params.timeline_every]
    ms. *)
val sample_timeline : t -> unit

(** {1 Phase spans} *)

(** [span_link t ~owner ~gid] — tie a lock-owner (attempt) id to its gid so
    lock waits are attributed; protocols call it right after allocating the
    client attempt id. *)
val span_link : t -> owner:int -> gid:int -> unit

(** Charge [dur] ms of a phase to the attempt linked as [owner]. *)
val span_add : t -> owner:int -> Span.phase -> float -> unit

(** Observe client think (retry backoff) time at [site]. *)
val span_think : t -> site:int -> float -> unit

val spans : t -> Span.t

(** The kernel's self-profiler ({!Profile.disabled} unless
    [params.profile]). *)
val profile : t -> Profile.t

(** Intern a profiler category name (cheap; "other" when disabled). *)
val profile_cat : t -> string -> int

(** {1 Quiescence accounting} *)

val inc_outstanding : t -> unit
val dec_outstanding : t -> unit
val client_started : t -> unit
val client_finished : t -> unit

(** [quiescent t] — no clients running and nothing outstanding. *)
val quiescent : t -> bool

(** Block until {!quiescent}, then set [stopped]. *)
val await_quiescence : t -> unit

(** {1 Fault injection}

    Crashes are modelled at the storage and transport boundaries: while a
    site is down it is unreachable in both directions (the networks' acked
    links retry around the downtime) and its clients pause before starting
    new transactions; at restart the volatile store is discarded and rebuilt
    from the site's redo log. Work the site had already accepted completes —
    the paper's durability story (DataBlitz redo recovery) covers committed
    state, not scheduler state. *)

(** Is fault injection active (i.e. [params.faults] non-empty)? *)
val faulty : t -> bool

val site_up : t -> int -> bool

(** Block until the site is up; returns immediately if it already is.
    Clients call this before starting each transaction. *)
val await_site_up : t -> int -> unit

(** Mark the site down and trace [Site_crash]. Driven by {!schedule_faults};
    exposed for tests. *)
val crash_site : t -> site:int -> unit

(** Restart the site: rebuild the store with [Wal.recover], verify the
    rebuild matches the pre-crash contents exactly, install it, re-hook the
    log ([Wal.reattach]), mark the site up and wake waiting clients.
    @raise Failure if the recovered contents diverge from the live store. *)
val recover_site : t -> site:int -> downtime:float -> unit

(** Schedule every crash/restart in the fault schedule as simulation events,
    plus counting/trace marks for each partition begin and heal; no-op
    without an injector. The driver calls this before starting clients. *)
val schedule_faults : t -> unit

(** Crash events executed so far. *)
val crash_count : t -> int

(** Partition windows activated so far. *)
val partition_count : t -> int

(** {1 Online reconfiguration}

    The coordinator ({!Reconfig_exec}) executes each step of
    [params.reconfig] live: it sets [reconfiguring], waits for the cluster to
    drain (no executing transaction attempts, nothing outstanding — clients
    stall at {!reconfig_barrier} meanwhile), bulk-transfers values to newly
    added replicas, swaps [placement], bumps [config_epoch] and broadcasts
    [resume]. These are the accounting hooks that protocol-independent drain
    and stall measurement need. *)

(** Can the placement change mid-run — an operator plan is scheduled
    ([params.reconfig] non-empty) or the healer may fail over
    ([params.heal])? Protocols use this to provision appliers for sites
    that could acquire a tree parent at a later epoch. *)
val reconfig_planned : t -> bool

(** Bracket every transaction execution attempt (including retries); the
    drain condition counts attempts, not clients, because clients survive
    epoch switches. *)
val txn_started : t -> unit

val txn_finished : t -> unit

(** Block until no attempt is executing and nothing is outstanding. Only the
    coordinator calls this, after setting [reconfiguring] (the broadcasts
    fire only in that state). *)
val await_drained : t -> unit

(** Stall while an epoch switch is in progress; no-op otherwise. Records the
    stall in [stall_hist] and [stall_total], charged to [site]. Clients call
    this before generating each transaction. *)
val reconfig_barrier : t -> site:int -> unit

val trace_reconfig_begin : t -> epoch:int -> unit
val trace_reconfig_switch : t -> epoch:int -> duration:float -> unit
val trace_reconfig_done : t -> epoch:int -> duration:float -> unit
val trace_state_transfer : t -> item:int -> src:int -> dst:int -> unit

(** {1 Self-healing}

    Hooks used by {!Heal_exec} (the φ-accrual detector, failover coordinator
    and anti-entropy repairer); all idle unless [params.heal]. *)

(** Is the self-healing subsystem enabled ([params.heal])? *)
val heal_planned : t -> bool

(** Acquire the exclusive right to run an epoch switch: waits while another
    switch (operator reconfiguration or healer failover) is in progress, then
    sets [reconfiguring]. Release with {!release_switch}. *)
val acquire_switch : t -> unit

(** Clear [reconfiguring] and broadcast [resume], waking stalled clients and
    any coordinator queued at {!acquire_switch}. *)
val release_switch : t -> unit

(** In-flight messages parked behind the outage itself: traffic on pairs with
    a down endpoint or an active partition between them. *)
val parked_outstanding : t -> int

(** The healer's weak drain condition: no transaction attempt executing and
    nothing in flight except {!parked_outstanding} traffic. The caller must
    poll (with settle delays) — parked counts change without broadcasts. *)
val weak_drained : t -> bool

(** [stale_epoch t ~site ~epoch] — true iff [epoch] predates the current
    configuration epoch: the message was parked behind an outage when a
    weak-drain failover moved routing on, and the receiving protocol must
    drop it (anti-entropy repairs the gap). Counted per site in
    ["heal.stale_drop"].
    @raise Failure when healing is off (the strong drain makes a stale epoch
    a protocol bug there). *)
val stale_epoch : t -> site:int -> epoch:int -> bool

(** Install the per-site suspicion sampler feeding the timeline φ columns. *)
val set_phi_fn : t -> (unit -> float array) -> unit

(** [corrupt_site t ~site ~prob ~clause] — scramble each replica copy at
    [site] with probability [prob] via the log-bypassing [Store.restore]
    (primary copies are never touched). Deterministic in [(seed, clause)].
    Driven by {!schedule_faults}; exposed for tests. *)
val corrupt_site : t -> site:int -> prob:float -> clause:int -> unit

(** Scrambled copies not yet repaired. *)
val corrupted_copies : t -> int

(** Corruption injections executed so far. *)
val corruption_count : t -> int

(** Copies scrambled so far, cumulative (repairs do not subtract). *)
val corrupt_items_total : t -> int

val is_corrupt : t -> site:int -> item:int -> bool

(** Clear a corruption mark (the healer repaired or re-verified the copy). *)
val clear_corrupt : t -> site:int -> item:int -> unit

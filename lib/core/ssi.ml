module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module History = Repdb_txn.History
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Mvstore = Repdb_store.Mvstore
module Network = Repdb_net.Network
module Txn = Repdb_txn.Txn
module Tracker = Repdb_occ.Conflict_tracker
module Placement = Repdb_workload.Placement
module Span = Repdb_obs.Span

let name = "ssi"
let updates_replicas = true

let certifier_site = 0

type msg =
  | Snap_request of {
      item : int;
      ts : float;
      gid : int;
      attempt : int;
      reply : int option -> unit;
    }
  | Snap_reply of { version : int option; deliver : int option -> unit }
  | Certify of { txn : Tracker.txn; reply : Tracker.verdict -> unit }
  | Cert_reply of { gid : int; verdict : Tracker.verdict; deliver : Tracker.verdict -> unit }

type update_msg = {
  u_gid : int;
  u_writes : (int * int) list; (* (item, version) *)
  u_commit_ts : float; (* certification timestamp, keys the version chains *)
  u_origin_commit : float;
  u_epoch : int;
}

type t = {
  c : Cluster.t;
  net : msg Network.t;
  update_net : update_msg Network.t;
  tracker : Tracker.t;
  mv : Mvstore.t array; (* per-site version chains beside the flat stores *)
  mutable remote : int;
}

(* Remote (available-copies) snapshot reads performed so far. *)
let remote_reads t = t.remote

let propagate t ~site ~gid ~commit_ts vwrites =
  let c = t.c in
  let dests = Hashtbl.create 4 in
  List.iter
    (fun (item, _) ->
      Array.iter
        (fun s -> if s <> site then Hashtbl.replace dests s ())
        c.placement.replicas.(item))
    vwrites;
  let now = Sim.now c.sim in
  Hashtbl.iter
    (fun dst () ->
      Cluster.inc_outstanding c;
      Network.send t.update_net ~src:site ~dst
        {
          u_gid = gid;
          u_writes = vwrites;
          u_commit_ts = commit_ts;
          u_origin_commit = now;
          u_epoch = c.config_epoch;
        })
    dests;
  if Hashtbl.length dests > 0 then
    Cluster.use_cpu c site (float_of_int (Hashtbl.length dests) *. c.params.cpu_msg)

(* Install a certified transaction at its origin primary. Runs server-side
   (the certifier's replies are FIFO and this site is the single primary of
   everything in [vwrites]), so versions apply in certification order even
   when the waiting client already gave up on its deadline. *)
let apply_commit t ~site ~gid ~commit_ts vwrites =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_commit;
  if vwrites <> [] then begin
    let attempt = Cluster.fresh_attempt c in
    List.iter
      (fun (item, version) ->
        Store.apply c.stores.(site) item ~writer:gid ();
        assert ((Store.read c.stores.(site) item).Value.version = version);
        Mvstore.append t.mv.(site) ~item ~version ~commit_ts;
        Cluster.note_apply c ~site ~item;
        History.record c.history ~site ~item ~gid ~attempt ~version History.W)
      vwrites;
    Cluster.note_destined c ~items:(List.map fst vwrites)
  end;
  Cluster.trace_txn_commit c ~gid ~site;
  if vwrites <> [] then propagate t ~site ~gid ~commit_ts vwrites

let server t site =
  let c = t.c in
  let inbox = Network.inbox t.net site in
  let rec loop () =
    let src, msg = Mailbox.recv inbox in
    (match msg with
    | Snap_request { item; ts; gid; attempt; reply } ->
        Cluster.use_cpu c site c.params.cpu_msg;
        let version =
          if Store.mem c.stores.(site) item then Mvstore.read_at t.mv.(site) ~item ~ts
          else None
        in
        (match version with
        | Some v ->
            Cluster.use_cpu c site c.params.cpu_op;
            History.record c.history ~site ~item ~gid ~attempt ~version:v History.R
        | None -> ());
        Network.send t.net ~src:site ~dst:src (Snap_reply { version; deliver = reply })
    | Snap_reply { version; deliver } ->
        Cluster.dec_outstanding c;
        deliver version
    | Certify { txn; reply } ->
        assert (site = certifier_site);
        Cluster.use_cpu c site (c.params.cpu_msg +. c.params.cpu_op);
        let verdict = Tracker.certify t.tracker ~now:(Sim.now c.sim) txn in
        Cluster.use_cpu c site c.params.cpu_msg;
        Network.send t.net ~src:site ~dst:src (Cert_reply { gid = txn.gid; verdict; deliver = reply })
    | Cert_reply { gid; verdict; deliver } ->
        Cluster.dec_outstanding c;
        (match verdict with
        | Tracker.Commit { commit_ts; writes } -> apply_commit t ~site ~gid ~commit_ts writes
        | Tracker.Abort _ -> ());
        deliver verdict);
    loop ()
  in
  loop ()

let update_applier t site =
  let c = t.c in
  let inbox = Network.inbox t.update_net site in
  let rec loop () =
    let _, u = Mailbox.recv inbox in
    Cluster.use_cpu c site c.params.cpu_msg;
    assert (u.u_epoch = c.config_epoch);
    let local = Routing.local_replicas c.placement site (List.map fst u.u_writes) in
    if local <> [] then begin
      let attempt = Cluster.fresh_attempt c in
      List.iter
        (fun (item, version) ->
          if List.mem item local then begin
            Store.apply c.stores.(site) item ~writer:u.u_gid ();
            assert ((Store.read c.stores.(site) item).Value.version = version);
            Mvstore.append t.mv.(site) ~item ~version ~commit_ts:u.u_commit_ts;
            Cluster.note_apply c ~site ~item;
            History.record c.history ~site ~item ~gid:u.u_gid ~attempt ~version History.W
          end)
        u.u_writes;
      Cluster.trace_secondary_commit c ~gid:u.u_gid ~site;
      Cluster.record_propagation c ~gid:u.u_gid ~site
        ~delay:(Sim.now c.sim -. u.u_origin_commit)
    end;
    Cluster.dec_outstanding c;
    loop ()
  in
  loop ()

let describe_msg = function
  | Snap_request _ -> ("snap-request", 24)
  | Snap_reply _ -> ("snap-reply", 16)
  | Certify { txn; _ } ->
      ("certify", 16 + (12 * (List.length txn.Tracker.reads + List.length txn.Tracker.writes)))
  | Cert_reply _ -> ("cert-reply", 16)

let describe_update (u : update_msg) = ("ssi-update", 24 + (8 * List.length u.u_writes))

let create (c : Cluster.t) =
  let t =
    {
      c;
      net = Cluster.make_net ~describe:describe_msg c;
      update_net = Cluster.make_net ~describe:describe_update c;
      tracker = Tracker.create ();
      mv =
        Array.init c.params.n_sites (fun site ->
            Mvstore.create (Store.items c.stores.(site)));
      remote = 0;
    }
  in
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    Sim.spawn ~cat c.sim (fun () -> server t site);
    Sim.spawn ~cat c.sim (fun () -> update_applier t site)
  done;
  t

(* Available-copies snapshot read: the local chain could not serve the
   begin-timestamp version (truncated, or the copy arrived after a
   reconfiguration), so ask the other copy sites in placement order,
   skipping crashed or partitioned ones. *)
let remote_snapshot_read t ~site ~item ~begin_ts ~gid ~attempt ~deadline_at =
  let c = t.c in
  let candidates =
    c.placement.primary.(item) :: Array.to_list c.placement.replicas.(item)
  in
  let rec go answered = function
    | [] -> if answered then `Exhausted else `Unreachable
    | s :: rest when s = site -> go answered rest
    | s :: rest ->
        if (not (Cluster.site_up c s)) || not (Network.reachable t.net ~src:site ~dst:s) then
          go answered rest
        else begin
          t.remote <- t.remote + 1;
          Cluster.use_cpu c site c.params.cpu_msg;
          if Sim.now c.sim >= deadline_at then `Deadline
          else begin
            let reply =
              Sim.suspend (fun resume ->
                  Cluster.inc_outstanding c;
                  if deadline_at < infinity then
                    Sim.at c.sim deadline_at (fun () -> resume `Deadline);
                  Network.send t.net ~src:site ~dst:s
                    (Snap_request
                       { item; ts = begin_ts; gid; attempt; reply = (fun v -> resume (`V v)) }))
            in
            match reply with
            | `V (Some v) -> `Got v
            | `V None -> go true rest
            | `Deadline -> `Deadline
          end
        end
  in
  go false candidates

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let deadline_at = Cluster.deadline_at c in
  let gid = Cluster.fresh_gid c in
  let attempt = Cluster.fresh_attempt c in
  Cluster.trace_txn_begin c ~gid ~site;
  Cluster.span_link c ~owner:attempt ~gid;
  let begin_ts = Sim.now c.sim in
  (* Register with the certifier's GC window. Modelled as piggybacked
     metadata (no message): it only bounds what the tracker may forget. *)
  Tracker.begin_txn t.tracker ~gid ~begin_ts;
  (* Abort on a path where certification will never run for this gid, so the
     registration must be withdrawn here. After the certify message is sent,
     [Tracker.certify] deregisters — even if the client stops waiting. *)
  let abort reason =
    Tracker.forget t.tracker ~gid;
    History.discard_attempt c.history ~attempt;
    Cluster.trace_txn_abort c ~gid ~site reason;
    Txn.Aborted reason
  in
  let rec run reads = function
    | [] -> Ok (List.rev reads)
    | Txn.Write _ :: rest ->
        Cluster.use_cpu c site c.params.cpu_op;
        run reads rest
    | Txn.Read item :: rest -> (
        Cluster.use_cpu c site c.params.cpu_op;
        match Mvstore.read_at t.mv.(site) ~item ~ts:begin_ts with
        | Some v ->
            History.record c.history ~site ~item ~gid ~attempt ~version:v History.R;
            run ((item, v) :: reads) rest
        | None -> (
            let t0 = Sim.now c.sim in
            let r = remote_snapshot_read t ~site ~item ~begin_ts ~gid ~attempt ~deadline_at in
            Cluster.span_add c ~owner:attempt Span.Prop_wait (Sim.now c.sim -. t0);
            match r with
            | `Got v -> run ((item, v) :: reads) rest
            | `Exhausted ->
                (* No available copy retains the snapshot version. *)
                Error Txn.Validation_failed
            | `Unreachable -> Error Txn.Partitioned
            | `Deadline ->
                Cluster.trace_txn_deadline c ~gid ~site;
                Error Txn.Deadline_exceeded))
  in
  match run [] spec.ops with
  | Error reason -> abort reason
  | Ok reads -> (
      let writes = List.sort_uniq compare (Txn.writes spec) in
      let txn = { Tracker.gid; begin_ts; reads; writes } in
      if Sim.now c.sim >= deadline_at then begin
        Cluster.trace_txn_deadline c ~gid ~site;
        abort Txn.Deadline_exceeded
      end
      else if
        site <> certifier_site && not (Network.reachable t.net ~src:site ~dst:certifier_site)
      then abort Txn.Partitioned
      else begin
        let t0 = Sim.now c.sim in
        let verdict =
          if site = certifier_site then begin
            Cluster.use_cpu c site c.params.cpu_op;
            let v = Tracker.certify t.tracker ~now:(Sim.now c.sim) txn in
            (match v with
            | Tracker.Commit { commit_ts; writes } -> apply_commit t ~site ~gid ~commit_ts writes
            | Tracker.Abort _ -> ());
            `Verdict v
          end
          else begin
            Cluster.use_cpu c site c.params.cpu_msg;
            Sim.suspend (fun resume ->
                Cluster.inc_outstanding c;
                if deadline_at < infinity then
                  Sim.at c.sim deadline_at (fun () -> resume `Deadline);
                Network.send t.net ~src:site ~dst:certifier_site
                  (Certify { txn; reply = (fun v -> resume (`Verdict v)) }))
          end
        in
        Cluster.span_add c ~owner:attempt Span.Prop_wait (Sim.now c.sim -. t0);
        match verdict with
        | `Verdict (Tracker.Commit _) -> Txn.Committed
        | `Verdict (Tracker.Abort cause) ->
            let reason =
              match cause with
              | Tracker.Stale_read -> Txn.Validation_failed
              | Tracker.Ww_conflict -> Txn.First_committer_lost
              | Tracker.Dangerous -> Txn.Dangerous_structure
            in
            History.discard_attempt c.history ~attempt;
            Cluster.trace_txn_abort c ~gid ~site reason;
            Txn.Aborted reason
        | `Deadline ->
            (* The certifier will still process the request; it deregisters
               the gid and a certified winner applies server-side. Only the
               client-side reads are withdrawn. *)
            Cluster.trace_txn_deadline c ~gid ~site;
            History.discard_attempt c.history ~attempt;
            Cluster.trace_txn_abort c ~gid ~site Txn.Deadline_exceeded;
            Txn.Aborted Txn.Deadline_exceeded
      end)

(* After an epoch switch the placement changed under the version chains:
   drop chains for copies no longer here and seed fresh chains (at the
   switch timestamp) for copies that just arrived by state transfer. Seeded
   chains cannot serve snapshots older than the switch — such reads fall
   back to another copy or abort, they never weaken the snapshot. The
   tracker itself keys by item and survives unchanged. *)
let reconfigure =
  Some
    (fun t ->
      let c = t.c in
      let now = Sim.now c.sim in
      for site = 0 to c.params.n_sites - 1 do
        let mv = t.mv.(site) in
        List.iter
          (fun item -> if not (Placement.has_copy c.placement ~site item) then Mvstore.drop mv ~item)
          (Mvstore.items mv);
        Array.iter
          (fun item ->
            if not (Mvstore.mem mv item) then
              Mvstore.seed mv ~item ~version:(Store.read c.stores.(site) item).Value.version
                ~commit_ts:now)
          (Placement.placed_at c.placement site)
      done)

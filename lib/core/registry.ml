let all : Protocol.t list =
  [
    (module Dag_wt : Protocol.S);
    (module Dag_t : Protocol.S);
    (module Backedge_proto : Protocol.S);
    (module Psl : Protocol.S);
    (module Lazy_master : Protocol.S);
    (module Central : Protocol.S);
    (module Eager : Protocol.S);
    (module Naive : Protocol.S);
  ]

let cyclic_safe : Protocol.t list =
  [
    (module Backedge_proto : Protocol.S);
    (module Psl : Protocol.S);
    (module Lazy_master : Protocol.S);
    (module Central : Protocol.S);
    (module Eager : Protocol.S);
    (module Naive : Protocol.S);
  ]

let dag_t_pipelined : Protocol.t =
  (module struct
    type t = Dag_t.t

    let name = "dag-t-mc"
    let updates_replicas = true
    let create = Dag_t.create_pipelined
    let submit = Dag_t.submit
    let reconfigure = Dag_t.reconfigure
  end : Protocol.S)

let backedge_general : Protocol.t =
  (module struct
    type t = Backedge_proto.t

    let name = "backedge-gen"
    let updates_replicas = true
    let create = Backedge_proto.create_general
    let submit = Backedge_proto.submit
    let reconfigure = Backedge_proto.reconfigure
  end : Protocol.S)

let variants = [ backedge_general; dag_t_pipelined ]

(* Dashless spellings ("dagwt", "dagt") are accepted as a convenience. *)
let canonical name =
  String.concat "" (String.split_on_char '-' (String.lowercase_ascii name))

let find name =
  List.find_opt (fun p -> canonical (Protocol.name p) = canonical name) (variants @ all)

let names = List.map Protocol.name (all @ variants)

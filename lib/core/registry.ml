(* The single source of truth for what protocols exist: [bench/large.exe
   --protocols], [repdb protocols] and the experiment help all render this
   list, and a registry test pins it. *)
let entries : (Protocol.t * string) list =
  [
    ((module Dag_wt : Protocol.S), "DAG(WT): whole-tree copy-graph ordering, eager in-tree");
    ((module Dag_t : Protocol.S), "DAG(T): per-item tree ordering, lazy between trees");
    ((module Backedge_proto : Protocol.S), "BackEdge: chain main-copy order, back-edge refresh");
    ((module Psl : Protocol.S), "PSL: primary-site locking with lazy replica refresh");
    ((module Lazy_master : Protocol.S), "Lazy-master: unordered lazy propagation from primaries");
    ((module Central : Protocol.S), "Central: single certifier orders every transaction");
    ((module Eager : Protocol.S), "Eager: synchronous write-all (ROWA) two-phase commit");
    ((module Naive : Protocol.S), "Naive: local commit, no global ordering (not 1SR)");
    ((module Occ_epoch : Protocol.S), "OCC: optimistic execution, batch validation per epoch");
    ((module Ssi : Protocol.S), "SSI: snapshot reads, certifier aborts dangerous structures");
  ]

let all : Protocol.t list = List.map fst entries

let cyclic_safe : Protocol.t list =
  [
    (module Backedge_proto : Protocol.S);
    (module Psl : Protocol.S);
    (module Lazy_master : Protocol.S);
    (module Central : Protocol.S);
    (module Eager : Protocol.S);
    (module Naive : Protocol.S);
    (module Occ_epoch : Protocol.S);
    (module Ssi : Protocol.S);
  ]

let dag_t_pipelined : Protocol.t =
  (module struct
    type t = Dag_t.t

    let name = "dag-t-mc"
    let updates_replicas = true
    let create = Dag_t.create_pipelined
    let submit = Dag_t.submit
    let reconfigure = Dag_t.reconfigure
  end : Protocol.S)

let backedge_general : Protocol.t =
  (module struct
    type t = Backedge_proto.t

    let name = "backedge-gen"
    let updates_replicas = true
    let create = Backedge_proto.create_general
    let submit = Backedge_proto.submit
    let reconfigure = Backedge_proto.reconfigure
  end : Protocol.S)

let variants = [ backedge_general; dag_t_pipelined ]

(* Dashless spellings ("dagwt", "dagt") are accepted as a convenience. *)
let canonical name =
  String.concat "" (String.split_on_char '-' (String.lowercase_ascii name))

let find name =
  List.find_opt (fun p -> canonical (Protocol.name p) = canonical name) (variants @ all)

let names = List.map Protocol.name (all @ variants)

let describe () =
  List.map (fun (p, doc) -> (Protocol.name p, doc)) entries

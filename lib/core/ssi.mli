(** Serializable snapshot isolation over lazy replication.

    Transactions read a consistent snapshot as of their begin timestamp from
    the local multi-version chains ({!Repdb_store.Mvstore}), falling back to
    any available copy site when the local chain cannot serve the version
    (available-copies reads). At commit every transaction certifies at
    site 0, whose {!Repdb_occ.Conflict_tracker} enforces snapshot validity,
    first-committer-wins on overlapping write sets
    ({!Repdb_txn.Txn.First_committer_lost}) and the rw-antidependency
    dangerous-structure rule ({!Repdb_txn.Txn.Dangerous_structure}): a
    transaction whose commit would complete an in-edge/out-edge pivot
    aborts, so no snapshot-isolation write-skew cycle ever commits.

    Certified writes are applied at the origin primary in certification
    order and propagated lazily to replicas together with their commit
    timestamp, which extends each replica's version chain — later snapshot
    reads are served with no locks and no round trip. *)

include Protocol.S

(** Remote (available-copies) snapshot reads performed so far. *)
val remote_reads : t -> int

module Tree = Repdb_graph.Tree
module Placement = Repdb_workload.Placement

(* Per-site replica bitmaps over items, packed as bytes: m * ceil(n/8) bytes
   total instead of the m * n bools the old representation materialized, and
   the bottom-up union runs 64 items per instruction. *)
type subtree_map = { bits : Bytes.t array }

let bit_get b item =
  Char.code (Bytes.unsafe_get b (item lsr 3)) land (1 lsl (item land 7)) <> 0

let bit_set b item =
  let i = item lsr 3 in
  Bytes.unsafe_set b i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b i) lor (1 lsl (item land 7))))

let union_into ~dst ~src =
  let len = Bytes.length dst in
  let i = ref 0 in
  while !i + 8 <= len do
    Bytes.set_int64_ne dst !i (Int64.logor (Bytes.get_int64_ne dst !i) (Bytes.get_int64_ne src !i));
    i := !i + 8
  done;
  while !i < len do
    Bytes.unsafe_set dst !i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst !i) lor Char.code (Bytes.unsafe_get src !i)));
    incr i
  done

let subtree_replicas (placement : Placement.t) tree =
  let m = placement.n_sites and n = placement.n_items in
  let nb = (n + 7) lsr 3 in
  let bits = Array.init m (fun _ -> Bytes.make nb '\000') in
  Array.iteri
    (fun item reps -> Array.iter (fun site -> bit_set bits.(site) item) reps)
    placement.replicas;
  let rec fold site =
    List.iter
      (fun child ->
        fold child;
        union_into ~dst:bits.(site) ~src:bits.(child))
      (Tree.children tree site)
  in
  List.iter fold (Tree.roots tree);
  { bits }

let in_subtree maps ~site item = bit_get maps.bits.(site) item

let relevant_children maps tree site writes =
  List.filter
    (fun child -> List.exists (fun item -> bit_get maps.bits.(child) item) writes)
    (Tree.children tree site)

let local_replicas (placement : Placement.t) site writes =
  List.filter (fun item -> Placement.has_replica placement ~site item) writes

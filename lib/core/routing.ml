module Tree = Repdb_graph.Tree
module Placement = Repdb_workload.Placement

let subtree_replicas (placement : Placement.t) tree =
  let m = placement.n_sites and n = placement.n_items in
  let maps = Array.init m (fun _ -> Array.make n false) in
  Array.iteri
    (fun item _ -> List.iter (fun site -> maps.(site).(item) <- true) placement.replicas.(item))
    placement.primary;
  let rec fold site =
    List.iter
      (fun child ->
        fold child;
        for item = 0 to n - 1 do
          if maps.(child).(item) then maps.(site).(item) <- true
        done)
      (Tree.children tree site)
  in
  List.iter fold (Tree.roots tree);
  maps

let relevant_children maps tree site writes =
  List.filter
    (fun child -> List.exists (fun item -> maps.(child).(item)) writes)
    (Tree.children tree site)

let local_replicas (placement : Placement.t) site writes =
  List.filter (fun item -> List.mem site placement.replicas.(item)) writes

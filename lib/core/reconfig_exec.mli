(** Epoch-based reconfiguration coordinator.

    Executes the cluster's reconfiguration plan ([params.reconfig]) live, one
    step at a time. At each step's trigger time the coordinator:

    + marks the cluster [reconfiguring], which stalls every client at
      {!Cluster.reconfig_barrier} before its next transaction;
    + waits for the cluster to drain — no transaction attempt executing,
      no propagation outstanding — so the old epoch is fully applied;
    + computes the new placement with {!Placement.apply_step} and
      bulk-transfers current primary values to newly added replicas over a
      typed state-transfer network (counted outstanding, so a second drain
      wait covers the last install; crashed destinations receive theirs
      after restart via the acked links);
    + atomically swaps the placement, invokes the protocol's [reconfigure]
      hook (rebuild tree/routing/backedges), refreshes the workload
      generator's item pools, and bumps [config_epoch];
    + clears the flag and broadcasts [resume].

    Everything runs inside the simulation, so repeats are byte-identical;
    the sequence is traced as [Reconfig_begin] / [State_transfer]* /
    [Reconfig_switch] / [Reconfig_done] and the switch latency and client
    stall times land in the cluster's reconfig histograms. *)

(** [schedule c ~reconfigure ~gen] spawns the per-site state-transfer
    servers and the coordinator process; no-op when the plan is empty.
    [reconfigure] is the protocol's rebuild hook, closed over its state; the
    driver calls this before starting clients (like
    {!Cluster.schedule_faults}). *)
val schedule :
  Cluster.t -> reconfigure:(unit -> unit) -> gen:Repdb_workload.Generator.t -> unit

(* Self-healing executor: failure detection, automatic failover, anti-entropy.

   Three cooperating background activities, all driven by simulated time so
   runs stay deterministic and byte-identical:

   - {e Heartbeats + detection.} Every site multicasts a heartbeat each
     [heartbeat_every] ms on a dedicated control-plane network (same latency
     model and fault injector as the data nets, but outside the data-plane
     message/outstanding accounting, so heartbeat spam never perturbs the
     comparable metrics). Each site feeds a per-pair φ-accrual
     {!Repdb_heal.Detector}; a single poller fiber turns the per-observer φ
     values into a cluster-level verdict: a site is {e suspected} once a
     strict majority of up, unsuspected observers see φ above
     [phi_threshold], and cleared once the majority evaporates (heartbeats
     resume after recovery and φ collapses).

   - {e Failover.} On suspicion the healer promotes every item primaried at
     the dead site to its lowest-id unsuspected replica holder, through the
     same epoch machinery operator reconfigurations use: serialize on the
     switch lock, weak-drain (no running transaction attempts and nothing in
     flight except messages parked on unreachable pairs), swap the placement,
     call the protocol's [reconfigure] hook, refresh the workload generator
     and bump the epoch. The dead site keeps every replica-list membership
     (demoted to a replica of the items it used to own), so updates parked on
     its links deliver after recovery as ordinary propagation. When the old
     placement was acyclic the promotion greedily retries holder choices to
     keep the copy graph a DAG (DAG-WT requires it; chain protocols tolerate
     any outcome). A false suspicion therefore costs availability (one epoch
     switch, clients redraw) but never consistency.

   - {e Anti-entropy.} A repair session compares one (primary, holder) pair:
     Merkle-style digest narrowing over the shared sorted item list
     ({!Repdb_heal.Digest_tree}), then per-item checksums on mismatching leaf
     chunks, then [Repair] messages shipping the primary's value for each
     divergent item — installed through the hooked {!Store.install} so
     repairs are WAL-durable and clear the corruption bookkeeping. Sessions
     run one at a time: a round-robin background scan every
     [anti_entropy_every] ms, a full scan of a recovered site's holdings at
     unsuspect time (the {e rejoin}), and a final sweep over all pairs after
     quiescence — the backstop that makes convergence unconditional even
     when the relaxed stale-epoch fence dropped propagation. *)

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Condvar = Repdb_sim.Condvar
module Network = Repdb_net.Network
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Placement = Repdb_workload.Placement
module Generator = Repdb_workload.Generator
module Digraph = Repdb_graph.Digraph
module Stats = Repdb_obs.Stats
module Trace = Repdb_obs.Trace
module Event = Repdb_obs.Event
module Detector = Repdb_heal.Detector
module Digest_tree = Repdb_heal.Digest_tree

(* Control-plane messages. Requests are sent "as" the acting primary (the
   healer impersonates it), so responses route back to the primary's handler,
   which funnels them into the session mailbox. *)
type msg =
  | Heartbeat
  | Digest_req of { sid : int; items : int list }
  | Digest_resp of { sid : int; digest : int; present : int }
  | Check_req of { sid : int; items : int list }
  | Check_resp of { sid : int; sums : (int * int option) list }
      (* (item, checksum) — [None] when the holder has no copy at all. *)
  | Repair of { item : int; value : Value.t }

let describe_msg = function
  | Heartbeat -> ("heartbeat", 8)
  | Digest_req { items; _ } -> ("digest-req", 16 + (8 * List.length items))
  | Digest_resp _ -> ("digest-resp", 24)
  | Check_req { items; _ } -> ("check-req", 16 + (8 * List.length items))
  | Check_resp { sums; _ } -> ("check-resp", 16 + (16 * List.length sums))
  | Repair _ -> ("repair", 48)

type summary = {
  suspicions : int;
  false_suspicions : int;  (* suspected while actually up (partition / jitter) *)
  failovers : int;  (* epoch switches executed by the healer *)
  promoted_items : int;
  rejoins : int;
  repair_sessions : int;
  repaired_items : int;  (* values actually installed by [Repair] messages *)
  incidents_open : int;  (* sites still suspected when the run ended *)
  mttr_mean : float;  (* ms, suspicion -> rejoin repair shipped *)
  mttr_max : float;
  failover_mean : float;  (* ms, drain + switch, per failover *)
  stale_drops : int;  (* old-epoch messages dropped by the relaxed fence *)
  corruption_events : int;
  corrupt_items : int;
}

type t = {
  c : Cluster.t;
  net : msg Network.t;
  reconfigure : unit -> unit;
  gen : Generator.t;
  dets : Detector.t array array;  (* [dets.(observer).(subject)] *)
  suspected : bool array;
  suspect_since : float array;
  resp_mb : (int * msg) Mailbox.t;  (* sid-tagged responses, one live session *)
  mutable next_sid : int;
  mutable session_busy : bool;
  session_free : Condvar.t;
  cat : int;  (* profiler category *)
  hb_sent : Stats.counter;
  hb_recv : Stats.counter;
  suspect_ctr : Stats.counter;
  session_ctr : Stats.counter;
  repair_ctr : Stats.counter;
  mttr_hist : Stats.histogram;
  failover_hist : Stats.histogram;
  mutable suspicions : int;
  mutable false_suspicions : int;
  mutable failovers : int;
  mutable promoted_items : int;
  mutable rejoins : int;
  mutable repair_sessions : int;
  mutable repaired_items : int;
  mutable mttr_sum : float;
  mutable mttr_max : float;
  mutable mttr_n : int;
  mutable failover_sum : float;
}

(* --- Per-site control-plane handler --------------------------------------- *)

(* Runs at delivery time and must never block: store reads, sends and mailbox
   pushes only. Heal traffic charges no CPU — control-plane overhead is
   deliberately outside the data-plane resource model. *)
let handler t site ~src msg =
  let c = t.c in
  match msg with
  | Heartbeat ->
      Stats.incr t.hb_recv ~site;
      Detector.record t.dets.(site).(src) ~now:(Sim.now c.sim)
  | Digest_req { sid; items } ->
      let store = c.stores.(site) in
      let present = List.fold_left (fun n i -> if Store.mem store i then n + 1 else n) 0 items in
      Network.send t.net ~src:site ~dst:src
        (Digest_resp { sid; digest = Store.digest_over store items; present })
  | Check_req { sid; items } ->
      let store = c.stores.(site) in
      let sums =
        List.map
          (fun i -> (i, if Store.mem store i then Some (Store.checksum store i) else None))
          items
      in
      Network.send t.net ~src:site ~dst:src (Check_resp { sid; sums })
  | Digest_resp { sid; _ } | Check_resp { sid; _ } -> Mailbox.send t.resp_mb (sid, msg)
  | Repair { item; value } ->
      (* Validate against the current placement: a repair that raced a
         failover may target a site that no longer holds the item. *)
      if Placement.has_copy c.placement ~site item then begin
        Store.install c.stores.(site) item value;
        Cluster.clear_corrupt c ~site ~item;
        Stats.incr t.repair_ctr ~site;
        t.repaired_items <- t.repaired_items + 1;
        if Trace.on c.trace then Trace.record c.trace (Event.Repair_item { item; src; dst = site })
      end

(* --- Repair sessions ------------------------------------------------------ *)

let fresh_sid t =
  let s = t.next_sid in
  t.next_sid <- s + 1;
  s

(* One session at a time: background scan, rejoin and final sweep all funnel
   responses through the same mailbox, so they serialize here. *)
let with_session t f =
  while t.session_busy do
    Condvar.await t.session_free
  done;
  t.session_busy <- true;
  Fun.protect f ~finally:(fun () ->
      t.session_busy <- false;
      Condvar.broadcast t.session_free)

(* Await the response tagged [sid], discarding stale tags from timed-out
   sessions whose replies were parked on a down link. *)
let await_resp t ~sid ~timeout =
  let deadline = Sim.now t.c.sim +. timeout in
  let rec go () =
    let left = deadline -. Sim.now t.c.sim in
    if left <= 0.0 then None
    else
      match Mailbox.recv_timeout t.c.sim t.resp_mb left with
      | None -> None
      | Some (got, m) when got = sid -> Some m
      | Some _ -> go ()
  in
  go ()

exception Session_timeout

(* Compare [holder]'s copies of [primary]'s items against the primary and
   ship repairs for every divergence. Returns [Some shipped] or [None] when
   the pair was skipped (down, suspected, unreachable, nothing shared) or the
   session timed out mid-narrowing. [force] drops the suspicion/liveness
   screen — the final sweep uses ground truth instead of detector state. *)
let run_session ?(force = false) t ~primary ~holder =
  let c = t.c in
  let screened =
    (not force)
    && (t.suspected.(primary) || t.suspected.(holder)
       || (not (Cluster.site_up c primary))
       || (not (Cluster.site_up c holder))
       || not (Network.reachable t.net ~src:primary ~dst:holder))
  in
  if primary = holder || screened || (force && not (Cluster.site_up c holder)) then None
  else begin
    let items =
      Array.to_list (Placement.primaries_at c.placement primary)
      |> List.filter (fun i -> Placement.has_replica c.placement ~site:holder i)
    in
    if items = [] then None
    else begin
      let timeout = Float.max 2000.0 (50.0 *. c.params.latency) in
      let store = c.stores.(primary) in
      let equal_digest chunk =
        let sid = fresh_sid t in
        Network.send t.net ~src:primary ~dst:holder (Digest_req { sid; items = chunk });
        match await_resp t ~sid ~timeout with
        | Some (Digest_resp { digest; present; _ }) ->
            digest = Store.digest_over store chunk && present = List.length chunk
        | _ -> raise Session_timeout
      in
      let check_items chunk =
        let sid = fresh_sid t in
        Network.send t.net ~src:primary ~dst:holder (Check_req { sid; items = chunk });
        match await_resp t ~sid ~timeout with
        | Some (Check_resp { sums; _ }) ->
            List.filter_map
              (fun (item, remote) ->
                match remote with
                | Some sum when sum = Store.checksum store item -> None
                | _ -> Some item)
              sums
        | _ -> raise Session_timeout
      in
      match Digest_tree.narrow ~fanout:4 ~leaf:8 ~equal_digest ~check_items items with
      | exception Session_timeout -> None
      | mismatched ->
          t.repair_sessions <- t.repair_sessions + 1;
          Stats.incr t.session_ctr ~site:holder;
          List.iter
            (fun item ->
              Network.send t.net ~src:primary ~dst:holder
                (Repair { item; value = Store.read store item }))
            mismatched;
          if mismatched <> [] && Trace.on c.trace then
            Trace.record c.trace
              (Event.Repair_session { primary; holder; mismatched = List.length mismatched });
          Some (List.length mismatched)
    end
  end

(* Ordered (primary, holder) pairs that share at least one item, ascending —
   the background scan's round-robin universe, recomputed from the current
   placement every tick so failovers retarget the scan. *)
let pairs_of (pl : Placement.t) m =
  let acc = ref [] in
  for p = m - 1 downto 0 do
    let holds = Array.make m false in
    Array.iter
      (fun item -> Array.iter (fun h -> holds.(h) <- true) pl.replicas.(item))
      (Placement.primaries_at pl p);
    for h = m - 1 downto 0 do
      if holds.(h) && h <> p then acc := (p, h) :: !acc
    done
  done;
  !acc

(* --- Failover ------------------------------------------------------------- *)

(* New placement with every item primaried at [dead] promoted to an
   unsuspected replica holder; [dead] is demoted into those items' replica
   lists so parked propagation still has a destination and rejoin repair has
   a pair to scrub. Unreplicated (or wholly-suspected) items stay put and
   simply stall until their site returns. *)
let promote t ~dead =
  let c = t.c in
  let pl = c.placement in
  let m = c.params.n_sites in
  (* Preserve acyclicity when the old graph had it (DAG-WT's hard
     invariant): a holder choice is accepted only if the placement built so
     far is still a DAG, re-tested per item with all earlier choices
     included. An item with no DAG-preserving (or no unsuspected) holder is
     simply not promoted — it stalls until its site returns, which costs
     availability on that item but never breaks the protocol. *)
  let must_dag = Digraph.is_dag (Placement.copy_graph pl) in
  let chosen = Hashtbl.create 16 in
  (* item -> promoted primary *)
  let build () =
    let primary = Array.copy pl.Placement.primary in
    let replicas =
      Array.init pl.Placement.n_items (fun i -> Array.to_list pl.Placement.replicas.(i))
    in
    Hashtbl.iter
      (fun item p' ->
        primary.(item) <- p';
        replicas.(item) <-
          dead :: List.filter (fun h -> h <> p') (Array.to_list pl.Placement.replicas.(item)))
      chosen;
    Placement.make ~n_sites:m ~n_items:pl.Placement.n_items ~primary ~replicas
  in
  let cands_of item =
    List.filter
      (fun h -> h <> dead && not t.suspected.(h))
      (Array.to_list pl.Placement.replicas.(item))
  in
  let items = Array.to_list (Placement.primaries_at pl dead) in
  (* Optimistic joint promotion first: promote every promotable item to its
     lowest-id unsuspected holder and test the complete assignment once.
     When everything promotes, [dead] keeps no outgoing edges (it becomes a
     copy-graph sink), so this nearly always stays acyclic — whereas items
     probed one at a time veto each other through the dead site's stale
     outgoing edges for the still-unpromoted rest. *)
  List.iter
    (fun item ->
      match cands_of item with [] -> () | h :: _ -> Hashtbl.replace chosen item h)
    items;
  if must_dag && not (Digraph.is_dag (Placement.copy_graph (build ()))) then begin
    (* Rare fallback (partial promotability, unusual graphs): rebuild the
       choice set item by item, accepting a holder only if the incremental
       assignment stays a DAG, iterated to a fixpoint so items vetoed early
       get retried once their neighbours promote away. *)
    Hashtbl.reset chosen;
    let try_item item =
      let rec try_cands = function
        | [] -> false
        | h :: rest ->
            Hashtbl.replace chosen item h;
            if not (Digraph.is_dag (Placement.copy_graph (build ()))) then begin
              Hashtbl.remove chosen item;
              try_cands rest
            end
            else true
      in
      try_cands (cands_of item)
    in
    let pending = ref items in
    let progress = ref true in
    while !progress && !pending <> [] do
      progress := false;
      pending :=
        List.filter
          (fun item ->
            if try_item item then begin
              progress := true;
              false
            end
            else true)
          !pending
    done
  end;
  let promoted = Hashtbl.length chosen in
  if promoted = 0 then (pl, 0) else (build (), promoted)

(* Weak drain: no transaction attempt executing and nothing in flight except
   messages parked on unreachable pairs. Clients are already stalled at the
   epoch barrier ([acquire_switch] ran); in-progress attempts finish bounded
   by their own timeouts — which is why healing a blocking protocol (PSL)
   requires a transaction deadline. Re-check after a settle delay so traffic
   that was deliverable at the poll instant actually lands. *)
let weak_drain (c : Cluster.t) =
  let settle = Float.max 1.0 (2.0 *. c.params.latency) in
  let rec go () =
    if Cluster.weak_drained c then begin
      Sim.delay settle;
      if not (Cluster.weak_drained c) then go ()
    end
    else begin
      Sim.delay settle;
      go ()
    end
  in
  go ()

let failover t ~dead =
  let c = t.c in
  if not c.stopped then begin
    Cluster.acquire_switch c;
    (* Re-validate: the suspicion may have cleared (or the run ended) while
       this fiber queued behind an operator reconfiguration. *)
    if c.stopped || not t.suspected.(dead) then Cluster.release_switch c
    else begin
      let t0 = Sim.now c.sim in
      if Trace.on c.trace then
        Trace.record c.trace (Event.Failover_begin { site = dead; epoch = c.config_epoch + 1 });
      weak_drain c;
      let np, promoted = promote t ~dead in
      if promoted > 0 then begin
        (* No state transfer needed: every new primary already holds a live
           copy — promotion only renames authority. *)
        c.placement <- np;
        t.reconfigure ();
        Generator.refresh t.gen np;
        c.config_epoch <- c.config_epoch + 1;
        t.failovers <- t.failovers + 1;
        t.promoted_items <- t.promoted_items + promoted
      end;
      let duration = Sim.now c.sim -. t0 in
      Stats.observe t.failover_hist ~site:dead duration;
      t.failover_sum <- t.failover_sum +. duration;
      if Trace.on c.trace then
        Trace.record c.trace
          (Event.Failover_done { site = dead; epoch = c.config_epoch; duration; promoted });
      Cluster.release_switch c
    end
  end

(* --- Rejoin --------------------------------------------------------------- *)

(* A cleared site rejoins by scrubbing everything it holds against the
   current primaries — one session per primary. Recovery already replayed the
   WAL (so only unlogged divergence — corruption, fence-dropped propagation —
   survives to be found here). Closes the MTTR incident. *)
let rejoin t ~site ~since =
  let c = t.c in
  let repaired = ref 0 in
  for p = 0 to c.params.n_sites - 1 do
    if p <> site then
      match with_session t (fun () -> run_session t ~primary:p ~holder:site) with
      | Some n -> repaired := !repaired + n
      | None -> ()
  done;
  t.rejoins <- t.rejoins + 1;
  let mttr = Sim.now c.sim -. since in
  t.mttr_sum <- t.mttr_sum +. mttr;
  t.mttr_max <- Float.max t.mttr_max mttr;
  t.mttr_n <- t.mttr_n + 1;
  Stats.observe t.mttr_hist ~site mttr;
  if Trace.on c.trace then Trace.record c.trace (Event.Rejoin { site; repaired = !repaired })

(* --- Background fibers ---------------------------------------------------- *)

let start_heartbeats t =
  let c = t.c in
  let m = c.params.n_sites in
  for site = 0 to m - 1 do
    Sim.spawn ~cat:t.cat c.sim (fun () ->
        let rec loop () =
          if not c.stopped then begin
            (* A crashed site is silent; its peers' φ grows. *)
            if Cluster.site_up c site then begin
              for dst = 0 to m - 1 do
                if dst <> site then begin
                  Network.send t.net ~src:site ~dst Heartbeat;
                  Stats.incr t.hb_sent ~site
                end
              done
            end;
            Sim.delay c.params.heartbeat_every;
            loop ()
          end
        in
        loop ())
  done

(* Median φ per subject over up observers — the timeline's phi.N columns. *)
let phi_snapshot t () =
  let c = t.c in
  let m = c.params.n_sites in
  let now = Sim.now c.sim in
  Array.init m (fun s ->
      let vals = ref [] in
      for o = 0 to m - 1 do
        if o <> s && Cluster.site_up c o then
          vals := Detector.phi t.dets.(o).(s) ~now :: !vals
      done;
      match List.sort compare !vals with
      | [] -> 0.0
      | l -> List.nth l (List.length l / 2))

let start_poller t =
  let c = t.c in
  let m = c.params.n_sites in
  Sim.spawn ~cat:t.cat c.sim (fun () ->
      let rec loop () =
        if not c.stopped then begin
          Sim.delay c.params.heartbeat_every;
          if not c.stopped then begin
            let now = Sim.now c.sim in
            for s = 0 to m - 1 do
              (* Observers: up, unsuspected peers — a silent or distrusted
                 site files no report. Strict majority of them must agree. *)
              let over = ref 0 and obs = ref 0 in
              for o = 0 to m - 1 do
                if o <> s && Cluster.site_up c o && not t.suspected.(o) then begin
                  incr obs;
                  if Detector.phi t.dets.(o).(s) ~now > c.params.phi_threshold then incr over
                end
              done;
              let majority = (!obs / 2) + 1 in
              if (not t.suspected.(s)) && !obs > 0 && !over >= majority then begin
                t.suspected.(s) <- true;
                t.suspect_since.(s) <- now;
                t.suspicions <- t.suspicions + 1;
                if Cluster.site_up c s then t.false_suspicions <- t.false_suspicions + 1;
                Stats.incr t.suspect_ctr ~site:s;
                if Trace.on c.trace then
                  Trace.record c.trace (Event.Suspect { site = s; phi = (phi_snapshot t ()).(s) });
                Sim.spawn ~cat:t.cat c.sim (fun () -> failover t ~dead:s)
              end
              else if t.suspected.(s) && !over < majority then begin
                t.suspected.(s) <- false;
                let since = t.suspect_since.(s) in
                if Trace.on c.trace then
                  Trace.record c.trace (Event.Unsuspect { site = s; downtime = now -. since });
                Sim.spawn ~cat:t.cat c.sim (fun () -> rejoin t ~site:s ~since)
              end
            done;
            loop ()
          end
        end
      in
      loop ())

let start_anti_entropy t =
  let c = t.c in
  let m = c.params.n_sites in
  let cursor = ref 0 in
  Sim.spawn ~cat:t.cat c.sim (fun () ->
      let rec loop () =
        if not c.stopped then begin
          Sim.delay c.params.anti_entropy_every;
          (* Pause the scan during epoch switches: sessions read the
             placement and must not race the swap. *)
          if (not c.stopped) && not c.reconfiguring then begin
            match pairs_of c.placement m with
            | [] -> ()
            | pairs ->
                let p, h = List.nth pairs (!cursor mod List.length pairs) in
                incr cursor;
                ignore (with_session t (fun () -> run_session t ~primary:p ~holder:h))
          end;
          if not c.stopped then loop ()
        end
      in
      loop ())

(* --- Lifecycle ------------------------------------------------------------ *)

let schedule (c : Cluster.t) ~reconfigure ~gen =
  let p = c.params in
  let m = p.n_sites in
  (* Dedicated control-plane net: same latency model and fault injector as
     the data nets, but no stats/trace/outstanding coupling — heartbeat spam
     stays out of the comparable data-plane metrics. *)
  let net =
    Network.create ~sim:c.sim ~n_sites:m ~latency:(Cluster.latency_fn c) ~describe:describe_msg
      ?injector:c.injector ()
  in
  let now = Sim.now c.sim in
  let dets =
    Array.init m (fun _ ->
        Array.init m (fun _ -> Detector.create ~hb_every:p.heartbeat_every ~now ()))
  in
  let stats = c.stats in
  let t =
    {
      c;
      net;
      reconfigure;
      gen;
      dets;
      suspected = Array.make m false;
      suspect_since = Array.make m 0.0;
      resp_mb = Mailbox.create ();
      next_sid = 0;
      session_busy = false;
      session_free = Condvar.create ();
      cat = Cluster.profile_cat c "heal";
      hb_sent = Stats.counter stats "detector.hb_sent";
      hb_recv = Stats.counter stats "detector.hb_recv";
      suspect_ctr = Stats.counter stats "detector.suspect";
      session_ctr = Stats.counter stats "repair.sessions";
      repair_ctr = Stats.counter stats "repair.items";
      mttr_hist = Stats.histogram stats "heal.mttr";
      failover_hist = Stats.histogram stats "heal.failover";
      suspicions = 0;
      false_suspicions = 0;
      failovers = 0;
      promoted_items = 0;
      rejoins = 0;
      repair_sessions = 0;
      repaired_items = 0;
      mttr_sum = 0.0;
      mttr_max = 0.0;
      mttr_n = 0;
      failover_sum = 0.0;
    }
  in
  for site = 0 to m - 1 do
    Network.set_handler net site (handler t site)
  done;
  Cluster.set_phi_fn c (phi_snapshot t);
  start_heartbeats t;
  start_poller t;
  start_anti_entropy t;
  t

let final_sweep t =
  let c = t.c in
  let m = c.params.n_sites in
  Sim.spawn ~cat:t.cat c.sim (fun () ->
      for p = 0 to m - 1 do
        for h = 0 to m - 1 do
          if p <> h then
            ignore (with_session t (fun () -> run_session ~force:true t ~primary:p ~holder:h))
        done
      done)

let summary t : summary =
  let c = t.c in
  {
    suspicions = t.suspicions;
    false_suspicions = t.false_suspicions;
    failovers = t.failovers;
    promoted_items = t.promoted_items;
    rejoins = t.rejoins;
    repair_sessions = t.repair_sessions;
    repaired_items = t.repaired_items;
    incidents_open = Array.fold_left (fun n s -> if s then n + 1 else n) 0 t.suspected;
    mttr_mean = (if t.mttr_n = 0 then 0.0 else t.mttr_sum /. float_of_int t.mttr_n);
    mttr_max = t.mttr_max;
    failover_mean =
      (if t.failovers = 0 then 0.0 else t.failover_sum /. float_of_int t.failovers);
    stale_drops = Stats.counter_total (Stats.counter c.stats "heal.stale_drop");
    corruption_events = Cluster.corruption_count c;
    corrupt_items = Cluster.corrupt_items_total c;
  }

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "healing: %d suspicions (%d false), %d failovers (%d items promoted, mean %.1f ms), %d \
     rejoins, MTTR mean %.1f / max %.1f ms@ repair: %d sessions, %d items repaired, %d copies \
     corrupted in %d events, %d stale-epoch drops, %d incidents open"
    s.suspicions s.false_suspicions s.failovers s.promoted_items s.failover_mean s.rejoins
    s.mttr_mean s.mttr_max s.repair_sessions s.repaired_items s.corrupt_items s.corruption_events
    s.stale_drops s.incidents_open

(** The BackEdge protocol (Section 4), extending DAG(WT) to arbitrary copy
    graphs.

    A propagation tree [T] is built so that for every copy-graph edge
    [si -> sj], [sj] is either a descendant of [si] in [T] (a DAG edge,
    handled lazily exactly as in DAG(WT)) or an ancestor (a {e backedge},
    handled eagerly). A transaction [Ti] at site [si] whose updates have
    replicas at ancestor sites (its {e backedge targets}):

    + executes locally, holding its locks without committing;
    + sends a backedge subtransaction directly to the farthest target [si1]
      (the one closest to the root), which executes, holds its locks, and
      does not commit;
    + the subtransaction then forwards a {e special} secondary subtransaction
      down the tree path from [si1] towards [si]; every target on the path
      executes it (locks held, uncommitted) and forwards it, in FIFO order
      with the normal secondaries;
    + when the special reaches [si] — hence every secondary received before
      it has committed there — [Ti] and all backedge subtransactions commit
      atomically and release their locks;
    + [Ti]'s remaining updates propagate lazily down the tree, exactly as in
      DAG(WT).

    Global deadlocks (Example 4.1) are broken by victimising, on a lock-wait
    timeout, any blocker that is a primary parked waiting for its special
    message, or — via a failure notice to its origin — a backedge
    subtransaction holding staged locks. Transactions without backedge
    targets execute exactly as in DAG(WT).

    {!create} uses the variant evaluated in the paper (Section 5.1): [T] is
    the chain connecting sites adjacent in the total site order, so an edge
    [si -> sj] with [j < i] is a backedge. {!create_general} instead deletes
    a minimal DFS backedge set and chains each weakly-connected component of
    the residual DAG separately — the "general implementation" the paper
    expects to outperform the evaluated one.

    {b Timeout derivation.} Two safety nets sit on top of victimisation, both
    derived from the parameters rather than hard-coded:

    - {e origin wait} — how long a parked primary waits per round for its
      special message: [2 * max 1 (n_sites - 1) * (lock_timeout + latency)].
      The special traverses at most [n_sites - 1] tree hops, and each hop can
      burn one lock-timeout round (the participant's wait before
      victimisation frees it) plus one link latency; the factor 2 covers the
      direct [Exec_request] hop and queueing behind normal secondaries. At
      the defaults (9 sites, 50 ms lock timeout, 0.15 ms latency) this is
      ~802 ms — the same order as the old hard-coded [40 * lock_timeout] but
      it now scales with cluster size. When a transaction deadline is armed
      ({!Repdb_workload.Params.t.txn_deadline}) the wait is clamped to the
      time remaining and the abort reason becomes
      {!Repdb_txn.Txn.abort_reason.Deadline_exceeded}.
    - {e participant retry cap} — how many lock-wait rounds a backedge
      subtransaction retries before sending [Exec_failed] to its origin:
      [ceil (origin_wait / lock_timeout) + 1], i.e. a participant never
      outlives its origin's patience — by then the origin has aborted and the
      retries are wasted work.

    If a backedge target is unreachable (a scheduled network partition
    separates it from the origin), [submit] fails fast with
    {!Repdb_txn.Txn.abort_reason.Partitioned} before sending anything,
    instead of burning the full origin wait. *)

include Protocol.S

(** Build with the general (per-component) tree; see above. *)
val create_general : Cluster.t -> t

(** [create_with_order cluster order] — chain the sites in the given
    permutation; copy-graph edges going backward in [order] become backedges.
    A good order (e.g. one derived from {!Repdb_graph.Backedge.greedy_fas})
    can drastically cut the number of backedge subtransactions — the
    Section 4.2 optimisation.
    @raise Invalid_argument if [order] is not a permutation of the sites. *)
val create_with_order : Cluster.t -> int array -> t

(** [create_with_tree cluster tree] — explicit tree; every copy-graph edge
    [(u, v)] must have [v] a descendant or an ancestor of [u] in [tree].
    @raise Invalid_argument otherwise. *)
val create_with_tree : Cluster.t -> Repdb_graph.Tree.t -> t

(** The propagation tree in use. *)
val tree : t -> Repdb_graph.Tree.t

(** Copy-graph edges treated as backedges under the tree in use. *)
val backedges : t -> (int * int) list

(** Workload driver: runs one protocol on one parameter setting and reports.

    Spawns [threads_per_site] client processes per site, each executing
    [txns_per_thread] generated transactions back to back (the paper's
    closed-loop clients), plus a quiescence watcher that lets the propagation
    machinery drain and then stops the periodic processes. Each client thread
    draws from its own RNG stream derived from the seed, so every protocol
    faces the identical workload; retry backoff jitter comes from a second,
    independent per-thread stream, so enabling
    {!Repdb_workload.Params.retry_policy} retries does not shift the
    workload draws. When [txn_deadline > 0] the client arms a fresh deadline
    ({!Cluster.arm_deadline}) immediately before every submit attempt. *)

type report = {
  protocol : string;
  params : Repdb_workload.Params.t;
  summary : Metrics.summary;
  serializability : Repdb_txn.Serializability.verdict option;
      (** [Some] iff [params.record_history]. *)
  divergent : Convergence.divergence list option;
      (** [Some] for protocols that physically update replicas. *)
  copy_graph_edges : int;
  n_backedges : int;  (** Under the chain site order. *)
  n_replicas : int;
  lock_stats : Repdb_lock.Lock_mgr.stats;  (** Summed over sites. *)
  sim_events : int;
  sim_time : float;  (** ms at full quiescence. *)
  trace : Repdb_obs.Trace.t;
      (** The run's event trace; {!Repdb_obs.Trace.disabled} unless [run] was
          called with [~trace:true]. Export with {!Repdb_obs.Export}. *)
  site_stats : Repdb_obs.Stats.t;  (** Per-site counters and histograms. *)
  crashes : int;  (** Crash events injected and survived; 0 without faults. *)
  msg_drops : int;
      (** Dropped transmission attempts across all networks; 0 without
          faults. *)
  partitions : int;
      (** Partition windows that activated during the run; 0 without
          faults. *)
  reconfigs : int;  (** Epoch switches executed; 0 without a reconfig plan. *)
  state_transfers : int;  (** Item values bulk-copied to newly added replicas. *)
  reconfig_stall : float;
      (** Total simulated ms clients spent stalled at the epoch barrier —
          the run's aggregate mid-run throughput dip. *)
  heal : Heal_exec.summary option;
      (** Self-healing totals (suspicions, failovers, MTTR, repairs);
          [Some] iff [params.heal]. *)
  timeline : Repdb_obs.Timeline.t option;
      (** Fixed-interval telemetry samples; [Some] iff
          [params.timeline_every > 0]. Export with
          {!Repdb_obs.Timeline.to_csv}. *)
  profile : Repdb_obs.Profile.t;
      (** The run's wall-clock self-profiler; {!Repdb_obs.Profile.disabled}
          unless [params.profile]. *)
}

(** [run ?placement params protocol] — build a cluster (with the given or a
    generated placement), run the workload to quiescence, and report.
    [~trace:true] collects a structured event trace into the report.

    {b Domain safety.} [run] is safe to call concurrently from several
    domains (the experiment harness does, via [Repdb_par.Pool]): every piece
    of mutable state it touches — the simulator and its event heap, RNG
    streams, stores, lock managers, network, metrics, trace and per-site
    stats — is created inside the call and owned by its cluster. An audit
    (this PR) found no module-level mutable state anywhere in
    core/sim/store/lock/net/txn/workload/obs; the only shared top-level
    values ([Params.default], [Registry.all], [Stats.default_buckets],
    [Trace.disabled]) are never written ([Trace.record] is a no-op on the
    disabled trace). A caller-supplied [?placement] may be shared across
    concurrent runs: it is read-only after construction.
    @raise Failure if the system fails to quiesce within a generous horizon
    (indicates a protocol bug). *)
val run :
  ?placement:Repdb_workload.Placement.t ->
  ?trace:bool ->
  ?trace_capacity:int ->
  Repdb_workload.Params.t ->
  Protocol.t ->
  report

(** [run_on cluster protocol] — like {!run} on a pre-built cluster; exposed
    for tests that need to inspect cluster state afterwards. *)
val run_on : Cluster.t -> Protocol.t -> report

val pp_report : Format.formatter -> report -> unit

(** The per-site stats registry as a table (one row per site plus an
    aggregate row). *)
val pp_site_stats : Format.formatter -> report -> unit

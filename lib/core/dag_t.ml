module Sim = Repdb_sim.Sim
module Condvar = Repdb_sim.Condvar
module Digraph = Repdb_graph.Digraph
module Network = Repdb_net.Network
module Batcher = Repdb_net.Batcher
module Placement = Repdb_workload.Placement
module Txn = Repdb_txn.Txn

let name = "dag-t"
let updates_replicas = true

type msg = {
  ts : Timestamp.t;
  gid : int;
  writes : int list; (* [] for dummies *)
  dummy : bool;
  origin_commit : float;
}

type site_state = {
  mutable lts : int;
  mutable ts : Timestamp.t;
  queues : (int, msg Queue.t) Hashtbl.t; (* one per copy-graph parent *)
  arrivals : Condvar.t;
  last_sent : float array; (* per child site id *)
  (* Pipelined-applier bookkeeping (the Section 3.2.3 relaxation): *)
  mutable tickets : int; (* secondaries dispatched, in timestamp order *)
  mutable commits_done : int; (* secondaries committed *)
  item_queues : (int, int Queue.t) Hashtbl.t; (* item -> pending tickets *)
  turn : Condvar.t;
}

type t = {
  c : Cluster.t;
  graph : Digraph.t;
  rank : int array;
  net : msg list Network.t; (* one physical message = one coalesced run *)
  bat : msg Batcher.t;
  states : site_state array;
  pipelined : bool;
}

let ranks t = t.rank
let site_timestamp t site = t.states.(site).ts

(* Pick the parent queue whose head has the minimum timestamp; None unless
   every queue is non-empty (Section 3.2.3). *)
let min_head (st : site_state) : (msg Queue.t * msg) option =
  let best = ref None in
  let all = ref true in
  Hashtbl.iter
    (fun _parent q ->
      match Queue.peek_opt q with
      | None -> all := false
      | Some (msg : msg) -> (
          match !best with
          | Some (_, (m : msg)) when Timestamp.compare m.ts msg.ts <= 0 -> ()
          | _ -> best := Some (q, msg)))
    st.queues;
  if !all then !best else None

(* Commit a secondary (or dummy) at [site]: the site timestamp becomes
   TS(Ti) . (site, LTS), with Ti's epoch (Sections 3.2.3 and 3.3). *)
let advance_site_ts t site (msg : msg) =
  let st = t.states.(site) in
  st.ts <- Timestamp.concat msg.ts ~site:t.rank.(site) ~lts:st.lts

let process t site (msg : msg) =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  if msg.dummy then advance_site_ts t site msg
  else begin
    Cluster.trace_secondary_recv c ~gid:msg.gid ~site;
    let items = Routing.local_replicas c.placement site msg.writes in
    Exec.apply_secondary c ~gid:msg.gid ~site items ~finally:(fun () ->
        if items <> [] then
          Cluster.record_propagation c ~gid:msg.gid ~site
            ~delay:(Sim.now c.sim -. msg.origin_commit);
        advance_site_ts t site msg;
        Cluster.dec_outstanding c)
  end

let applier t site =
  let st = t.states.(site) in
  let rec loop () =
    match min_head st with
    | Some (q, msg) ->
        ignore (Queue.pop q);
        process t site msg;
        loop ()
    | None ->
        Condvar.await st.arrivals;
        loop ()
  in
  loop ()

(* The Section 3.2.3 relaxation: several secondaries execute concurrently.
   Dispatch (and hence commit tickets) still follows timestamp order; a
   worker may only start locking once it is the oldest pending secondary on
   every item it writes (which rules out lock inversions between
   secondaries), and commits are serialised by ticket so the site timestamp
   evolves exactly as in the serial applier. *)
let pipelined_worker t site (msg : msg) ~ticket ~items =
  let c = t.c in
  let st = t.states.(site) in
  Cluster.use_cpu c site c.params.cpu_msg;
  let my_turn_on_items () =
    List.for_all
      (fun item ->
        match Hashtbl.find_opt st.item_queues item with
        | Some q -> Queue.peek_opt q = Some ticket
        | None -> false)
      items
  in
  while not (my_turn_on_items ()) do
    Condvar.await st.turn
  done;
  let attempt = ref (-1) in
  if items <> [] then begin
    let rec acquire () =
      attempt := Cluster.fresh_attempt c;
      match Exec.acquire_writes c ~gid:msg.gid ~attempt:!attempt ~site items with
      | Ok () -> ()
      | Error _ ->
          Exec.abort_local c ~attempt:!attempt ~site;
          acquire ()
    in
    acquire ();
    Exec.commit_cost c ~site
  end;
  (* Commit strictly in dispatch (= timestamp) order. *)
  while st.commits_done <> ticket do
    Condvar.await st.turn
  done;
  if items <> [] then begin
    Exec.apply_writes c ~gid:msg.gid ~site items;
    Cluster.trace_secondary_commit c ~gid:msg.gid ~site;
    Exec.release c ~attempt:!attempt ~site;
    Cluster.record_propagation c ~gid:msg.gid ~site ~delay:(Sim.now c.sim -. msg.origin_commit)
  end;
  advance_site_ts t site msg;
  List.iter
    (fun item ->
      let q = Hashtbl.find st.item_queues item in
      ignore (Queue.pop q);
      if Queue.is_empty q then Hashtbl.remove st.item_queues item)
    items;
  st.commits_done <- st.commits_done + 1;
  if not msg.dummy then Cluster.dec_outstanding c;
  Condvar.broadcast st.turn

let pipelined_applier t site =
  let c = t.c in
  let st = t.states.(site) in
  let rec loop () =
    match min_head st with
    | Some (q, msg) ->
        ignore (Queue.pop q);
        if not msg.dummy then Cluster.trace_secondary_recv c ~gid:msg.gid ~site;
        let ticket = st.tickets in
        st.tickets <- st.tickets + 1;
        let items =
          if msg.dummy then []
          else Routing.local_replicas c.placement site msg.writes
        in
        (* Register per-item FIFO position synchronously, before yielding. *)
        List.iter
          (fun item ->
            let iq =
              match Hashtbl.find_opt st.item_queues item with
              | Some iq -> iq
              | None ->
                  let iq = Queue.create () in
                  Hashtbl.replace st.item_queues item iq;
                  iq
            in
            Queue.add ticket iq)
          items;
        Sim.spawn c.sim (fun () -> pipelined_worker t site msg ~ticket ~items);
        loop ()
    | None ->
        Condvar.await st.arrivals;
        loop ()
  in
  loop ()

(* Secondaries coalesce; dummies are progress barriers, so they flush the
   pair and ship alone — a dummy's timestamp must not overtake (or park
   behind) the secondaries sent before it on the same channel. *)
let send t ~src ~dst msg =
  if not msg.dummy then Cluster.inc_outstanding t.c;
  t.states.(src).last_sent.(dst) <- Sim.now t.c.sim;
  if msg.dummy then Batcher.push_now t.bat ~src ~dst msg else Batcher.push t.bat ~src ~dst msg

(* A site that stayed silent towards a child pushes the child's clock with a
   dummy carrying the current site timestamp. *)
let dummy_timer t site children =
  let c = t.c in
  let st = t.states.(site) in
  let rec loop () =
    Sim.delay c.params.dummy_idle;
    if not c.stopped then begin
      List.iter
        (fun child ->
          if Sim.now c.sim -. st.last_sent.(child) >= c.params.dummy_idle then begin
            if Repdb_obs.Trace.on c.trace then
              Repdb_obs.Trace.record c.trace (Repdb_obs.Event.Dummy_emit { src = site; dst = child });
            send t ~src:site ~dst:child
              { ts = st.ts; gid = 0; writes = []; dummy = true; origin_commit = Sim.now c.sim }
          end)
        children;
      loop ()
    end
  in
  loop ()

(* Sources advance the global epoch (Section 3.3). *)
let epoch_timer t site =
  let c = t.c in
  let st = t.states.(site) in
  let rec loop () =
    Sim.delay c.params.epoch_period;
    if not c.stopped then begin
      st.ts <- Timestamp.with_epoch st.ts (Timestamp.epoch st.ts + 1);
      if Repdb_obs.Trace.on c.trace then
        Repdb_obs.Trace.record c.trace
          (Repdb_obs.Event.Epoch_advance { site; epoch = Timestamp.epoch st.ts });
      loop ()
    end
  in
  loop ()

let create_internal ~pipelined (c : Cluster.t) =
  let graph = Placement.copy_graph c.placement in
  let order =
    match Digraph.topo_sort graph with
    | Some o -> o
    | None -> invalid_arg "Dag_t: copy graph has a cycle (use the BackEdge protocol)"
  in
  let m = c.params.n_sites in
  let rank = Array.make m 0 in
  List.iteri (fun i site -> rank.(site) <- i) order;
  let net =
    Cluster.make_batch_net c ~describe_one:(fun (msg : msg) ->
        if msg.dummy then ("dummy", 24) else ("secondary", 32 + (8 * List.length msg.writes)))
  in
  let bat = Cluster.make_batcher c net in
  let states =
    Array.init m (fun site ->
        let queues = Hashtbl.create 4 in
        List.iter (fun parent -> Hashtbl.replace queues parent (Queue.create ())) (Digraph.pred graph site);
        {
          lts = 0;
          ts = Timestamp.initial rank.(site);
          queues;
          arrivals = Condvar.create ();
          last_sent = Array.make m 0.0;
          tickets = 0;
          commits_done = 0;
          item_queues = Hashtbl.create 16;
          turn = Condvar.create ();
        })
  in
  let t = { c; graph; rank; net; bat; states; pipelined } in
  for site = 0 to m - 1 do
    let st = states.(site) in
    Network.set_handler net site (fun ~src batch ->
        List.iter
          (fun msg ->
            match Hashtbl.find_opt st.queues src with
            | Some q ->
                Queue.add msg q;
                Cluster.trace_queue_depth c ~site
                  ~queue:(Printf.sprintf "parent:%d" src)
                  ~depth:(Queue.length q);
                Condvar.broadcast st.arrivals
            | None -> invalid_arg "Dag_t: message from a non-parent site")
          batch);
    let cat = Cluster.profile_cat c "server" in
    if Digraph.pred graph site <> [] then
      Sim.spawn ~cat c.sim (fun () -> if t.pipelined then pipelined_applier t site else applier t site);
    let children = Digraph.succ graph site in
    if children <> [] then begin
      Sim.spawn ~cat c.sim (fun () -> dummy_timer t site children);
      if Digraph.pred graph site = [] then Sim.spawn ~cat c.sim (fun () -> epoch_timer t site)
    end
  done;
  t

let create c = create_internal ~pipelined:false c
let create_pipelined c = create_internal ~pipelined:true c

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let gid = Cluster.fresh_gid c in
  let attempt = Cluster.fresh_attempt c in
  Cluster.trace_txn_begin c ~gid ~site;
  Cluster.span_link c ~owner:attempt ~gid;
  match Exec.run_ops c ~gid ~attempt ~site spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      Cluster.trace_txn_abort c ~gid ~site reason;
      Txn.Aborted reason
  | Ok () ->
      let writes = List.sort_uniq compare (Txn.writes spec) in
      Exec.commit_cost ~owner:attempt c ~site;
      (* Atomic commit section (the "critical section" of Section 3.2.2):
         bump the local counter, stamp the transaction, apply, release and
         schedule the secondaries at the relevant children. *)
      let st = t.states.(site) in
      st.lts <- st.lts + 1;
      st.ts <- Timestamp.bump_own st.ts t.rank.(site);
      let ts = st.ts in
      Exec.apply_writes c ~gid ~site writes;
      Cluster.note_destined c ~items:writes;
      Cluster.trace_txn_commit c ~gid ~site;
      Exec.release c ~attempt ~site;
      let relevant =
        List.filter
          (fun child ->
            List.exists (fun item -> Placement.has_replica c.placement ~site:child item) writes)
          (Digraph.succ t.graph site)
      in
      let now = Sim.now c.sim in
      List.iter
        (fun child ->
          send t ~src:site ~dst:child { ts; gid; writes; dummy = false; origin_commit = now })
        relevant;
      if relevant <> [] then
        Cluster.use_cpu c site (float_of_int (List.length relevant) *. c.params.cpu_msg);
      Txn.Committed

(* Online reconfiguration is unsupported: the per-copy-graph-parent queues,
   timestamp site ranks and epoch machinery are tied to one topology for the
   lifetime of the run (the paper introduces epochs for progress, not
   membership). The driver refuses non-empty plans for DAG(T). *)
let reconfigure = None

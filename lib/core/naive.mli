(** Indiscriminate lazy propagation — the negative control.

    What the paper says commercial systems of the time did: after a
    transaction commits, its updates are sent directly to every replica site
    and applied there in arrival order, with no cross-site coordination.
    Fast, and replica copies still converge (per-item update streams are
    FIFO from the single primary), but executions are {e not} serializable
    in general: Example 1.1 of the paper is reproduced against this protocol
    by the anomaly example and the test suite. *)

include Protocol.S

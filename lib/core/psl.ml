module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Lock_mgr = Repdb_lock.Lock_mgr
module History = Repdb_txn.History
module Store = Repdb_store.Store
module Network = Repdb_net.Network
module Txn = Repdb_txn.Txn

let name = "psl"
let updates_replicas = false

type msg =
  | Read_request of { item : int; owner : int; reply : bool -> unit }
  | Read_reply of { granted : bool; deliver : bool -> unit }
      (** The grant (with the shipped value) or denial travelling back. *)
  | Release of { owner : int }

type t = { c : Cluster.t; net : msg Network.t; mutable remote : int }

let remote_reads t = t.remote

(* Serve a shared-lock request at the item's primary site; runs as its own
   process since the lock wait can block. The reply is itself a network
   message carrying the current value back with the lock grant. *)
let serve_read t site ~src ~item ~owner ~reply =
  let c = t.c in
  Cluster.use_cpu c site c.params.cpu_msg;
  let respond granted =
    Network.send t.net ~src:site ~dst:src (Read_reply { granted; deliver = reply })
  in
  match Lock_mgr.acquire c.locks.(site) ~owner item Lock_mgr.Shared with
  | Lock_mgr.Granted ->
      Cluster.use_cpu c site c.params.cpu_op;
      ignore (Store.read c.stores.(site) item);
      History.record c.history ~site ~item ~gid:owner ~attempt:owner History.R;
      respond true
  | Lock_mgr.Timed_out | Lock_mgr.Deadlock_victim -> respond false

let server t site =
  let inbox = Network.inbox t.net site in
  let rec loop () =
    let src, msg = Mailbox.recv inbox in
    (match msg with
    | Read_request { item; owner; reply } ->
        Sim.spawn t.c.sim (fun () -> serve_read t site ~src ~item ~owner ~reply)
    | Read_reply { granted; deliver } ->
        Cluster.dec_outstanding t.c;
        deliver granted
    | Release { owner } ->
        Sim.spawn t.c.sim (fun () ->
            Cluster.use_cpu t.c site t.c.params.cpu_msg;
            Lock_mgr.release_all t.c.locks.(site) ~owner;
            Cluster.dec_outstanding t.c));
    loop ()
  in
  loop ()

let describe_msg = function
  | Read_request _ -> ("read-request", 24)
  | Read_reply _ -> ("read-reply", 16)
  | Release _ -> ("release", 16)

let create (c : Cluster.t) =
  let net = Cluster.make_net ~describe:describe_msg c in
  let t = { c; net; remote = 0 } in
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    Sim.spawn ~cat c.sim (fun () -> server t site)
  done;
  t

(* Blocking remote read: ask the primary for the shared lock and the current
   value. Honours the armed transaction deadline: a timer resumes the waiter
   with [`Deadline] (resumption is one-shot, so a late grant or denial is
   ignored — the Release sent at abort releases any lock the primary granted
   meanwhile, and [release_all] also cancels a still-pending wait there). *)
let remote_read t ~site ~primary ~item ~owner ~deadline_at =
  let c = t.c in
  t.remote <- t.remote + 1;
  Cluster.use_cpu c site c.params.cpu_msg;
  if Sim.now c.sim >= deadline_at then `Deadline
  else
    Sim.suspend (fun resume ->
        Cluster.inc_outstanding c;
        if deadline_at < infinity then Sim.at c.sim deadline_at (fun () -> resume `Deadline);
        Network.send t.net ~src:site ~dst:primary
          (Read_request
             { item; owner; reply = (fun granted -> resume (if granted then `Granted else `Denied)) }))

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let deadline_at = Cluster.deadline_at c in
  (* PSL locks span sites, so the gid doubles as the attempt/lock-owner id;
     remote primaries record history under it directly. *)
  let gid = Cluster.fresh_gid c in
  let attempt = gid in
  Cluster.trace_txn_begin c ~gid ~site;
  Cluster.span_link c ~owner:attempt ~gid;
  let remote_sites = Hashtbl.create 4 in
  let cleanup_remote () =
    Hashtbl.iter
      (fun primary () ->
        Cluster.inc_outstanding c;
        Network.send t.net ~src:site ~dst:primary (Release { owner = attempt }))
      remote_sites
  in
  let rec run = function
    | [] -> Ok ()
    | op :: rest -> (
        match op with
        | Txn.Write _ -> (
            match Exec.run_ops c ~gid ~attempt ~site [ op ] with
            | Ok () -> run rest
            | Error reason -> Error reason)
        | Txn.Read item ->
            let primary = c.placement.primary.(item) in
            if primary = site then (
              match Exec.run_ops c ~gid ~attempt ~site [ op ] with
              | Ok () -> run rest
              | Error reason -> Error reason)
            else begin
              let stale =
                if
                  c.params.stale_reads > 0.0
                  && not (Network.reachable t.net ~src:site ~dst:primary)
                then Some (Cluster.staleness c ~site ~item)
                else None
              in
              match stale with
              | Some staleness when staleness <= c.params.stale_reads ->
                  (* Graceful degradation: the primary is on the other side of
                     a partition and the local copy is within the staleness
                     bound — serve the read locally, outside the 1SR guarantee
                     (no lock, no history record). *)
                  Cluster.use_cpu c site c.params.cpu_op;
                  ignore (Store.read c.stores.(site) item);
                  Cluster.record_stale_read c ~site ~item ~staleness;
                  run rest
              | _ -> (
                  Hashtbl.replace remote_sites primary ();
                  (* The round-trip to the primary is the PSL propagation
                     wait: lock-grant latency shows up at the reader. *)
                  let t0 = Sim.now c.sim in
                  let reply = remote_read t ~site ~primary ~item ~owner:attempt ~deadline_at in
                  Cluster.span_add c ~owner:attempt Repdb_obs.Span.Prop_wait
                    (Sim.now c.sim -. t0);
                  match reply with
                  | `Granted ->
                      Cluster.use_cpu c site c.params.cpu_msg;
                      run rest
                  | `Denied -> Error Txn.Remote_denied
                  | `Deadline ->
                      Cluster.trace_txn_deadline c ~gid ~site;
                      Error Txn.Deadline_exceeded)
            end)
  in
  match run spec.ops with
  | Error reason ->
      Exec.abort_local c ~attempt ~site;
      cleanup_remote ();
      Cluster.trace_txn_abort c ~gid ~site reason;
      Txn.Aborted reason
  | Ok () ->
      let writes = List.sort_uniq compare (Txn.writes spec) in
      Exec.commit_cost ~owner:attempt c ~site;
      Exec.apply_writes c ~gid ~site writes;
      Cluster.trace_txn_commit c ~gid ~site;
      Exec.release c ~attempt ~site;
      cleanup_remote ();
      if Hashtbl.length remote_sites > 0 then
        Cluster.use_cpu c site (float_of_int (Hashtbl.length remote_sites) *. c.params.cpu_msg);
      Txn.Committed

(* Placement is read afresh on every access; nothing cached to rebuild. *)
let reconfigure = Some ignore

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module History = Repdb_txn.History
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Network = Repdb_net.Network
module Txn = Repdb_txn.Txn
module Validator = Repdb_occ.Validator
module Span = Repdb_obs.Span

let name = "occ-epoch"
let updates_replicas = true

let validator_site = 0

type pending = {
  gid : int;
  reads : (int * int) list;
  writes : int list;
  deliver : [ `Committed | `Validation_failed | `Deadline ] -> unit;
}

type msg =
  | Batch of { epoch : int; txns : pending list }
  | Verdicts of { epoch : int; results : (pending * (int * int) list option) list }

type update_msg = {
  u_gid : int;
  u_writes : (int * int) list; (* (item, version) in validation order *)
  u_origin_commit : float;
  u_epoch : int;
}

type t = {
  c : Cluster.t;
  net : msg Network.t;
  update_net : update_msg Network.t;
  validator : Validator.t;
  queues : pending list ref array; (* per site, reversed arrival order *)
}

let validated t = Validator.validated t.validator
let rejected t = Validator.rejected t.validator

(* Certified writes are applied at the origin primary by the server, not the
   waiting client: a client whose deadline fired mid-epoch has already been
   resumed (resumption is one-shot — its late verdict is ignored), but the
   batch was validated and the versions assigned, so the system must install
   the writes regardless. They are recorded under a fresh attempt id so a
   client-side discard never takes committed writes with it. *)
let apply_verdicts t ~site results =
  let c = t.c in
  List.iter
    (fun (p, verdict) ->
      match verdict with
      | None -> p.deliver `Validation_failed
      | Some vwrites ->
          Cluster.use_cpu c site c.params.cpu_commit;
          if vwrites <> [] then begin
            let attempt = Cluster.fresh_attempt c in
            List.iter
              (fun (item, version) ->
                Store.apply c.stores.(site) item ~writer:p.gid ();
                assert ((Store.read c.stores.(site) item).Value.version = version);
                Cluster.note_apply c ~site ~item;
                History.record c.history ~site ~item ~gid:p.gid ~attempt ~version History.W)
              vwrites;
            Cluster.note_destined c ~items:(List.map fst vwrites)
          end;
          Cluster.trace_txn_commit c ~gid:p.gid ~site;
          if vwrites <> [] then begin
            (* Lazy propagation of the winner's writes; per-item streams are
               FIFO from the primary, so replicas apply in validation order. *)
            let dests = Hashtbl.create 4 in
            List.iter
              (fun (item, _) ->
                Array.iter
                  (fun s -> if s <> site then Hashtbl.replace dests s ())
                  c.placement.replicas.(item))
              vwrites;
            let now = Sim.now c.sim in
            Hashtbl.iter
              (fun dst () ->
                Cluster.inc_outstanding c;
                Network.send t.update_net ~src:site ~dst
                  {
                    u_gid = p.gid;
                    u_writes = vwrites;
                    u_origin_commit = now;
                    u_epoch = c.config_epoch;
                  })
              dests;
            if Hashtbl.length dests > 0 then
              Cluster.use_cpu c site (float_of_int (Hashtbl.length dests) *. c.params.cpu_msg)
          end;
          p.deliver `Committed)
    results

(* Validate one site's epoch batch in arrival order. One message receipt plus
   one validation slot per transaction is charged to the validator site — the
   epoch batch amortizes the per-transaction round trip that makes [central]
   a bottleneck. *)
let serve_batch t ~src txns =
  let c = t.c in
  Cluster.use_cpu c validator_site
    (c.params.cpu_msg +. (float_of_int (List.length txns) *. c.params.cpu_op));
  let results =
    List.map
      (fun p ->
        (p, Validator.validate t.validator { gid = p.gid; reads = p.reads; writes = p.writes }))
      txns
  in
  if src = validator_site then apply_verdicts t ~site:src results
  else begin
    Cluster.use_cpu c validator_site c.params.cpu_msg;
    Network.send t.net ~src:validator_site ~dst:src
      (Verdicts { epoch = c.config_epoch; results })
  end

(* Per-site server: the validator site serves batches, every site applies its
   own verdicts. Processing blocks the loop on purpose — arrival order is
   validation order is apply order. *)
let server t site =
  let c = t.c in
  let inbox = Network.inbox t.net site in
  let rec loop () =
    let src, msg = Mailbox.recv inbox in
    (match msg with
    | Batch { epoch; txns } ->
        assert (site = validator_site);
        assert (epoch = c.config_epoch);
        serve_batch t ~src txns
    | Verdicts { epoch; results } ->
        Cluster.dec_outstanding c;
        assert (epoch = c.config_epoch);
        apply_verdicts t ~site results);
    loop ()
  in
  loop ()

let update_applier t site =
  let c = t.c in
  let inbox = Network.inbox t.update_net site in
  let rec loop () =
    let _, u = Mailbox.recv inbox in
    Cluster.use_cpu c site c.params.cpu_msg;
    assert (u.u_epoch = c.config_epoch);
    let local = Routing.local_replicas c.placement site (List.map fst u.u_writes) in
    if local <> [] then begin
      let attempt = Cluster.fresh_attempt c in
      List.iter
        (fun (item, version) ->
          if List.mem item local then begin
            Store.apply c.stores.(site) item ~writer:u.u_gid ();
            assert ((Store.read c.stores.(site) item).Value.version = version);
            Cluster.note_apply c ~site ~item;
            History.record c.history ~site ~item ~gid:u.u_gid ~attempt ~version History.W
          end)
        u.u_writes;
      Cluster.trace_secondary_commit c ~gid:u.u_gid ~site;
      Cluster.record_propagation c ~gid:u.u_gid ~site
        ~delay:(Sim.now c.sim -. u.u_origin_commit)
    end;
    Cluster.dec_outstanding c;
    loop ()
  in
  loop ()

(* Flush a site's buffered transactions as one batch to the validator. Runs
   in its own process (CPU waits block); the validator site validates its own
   batch by direct call — there is no self-loop in the network. *)
let flush t site =
  let c = t.c in
  let batch = List.rev !(t.queues.(site)) in
  t.queues.(site) := [];
  if batch <> [] then
    if site = validator_site then serve_batch t ~src:site batch
    else begin
      Cluster.use_cpu c site c.params.cpu_msg;
      Cluster.inc_outstanding c;
      Network.send t.net ~src:site ~dst:validator_site
        (Batch { epoch = c.config_epoch; txns = batch })
    end

let describe_msg = function
  | Batch { txns; _ } -> ("occ-batch", 16 + (24 * List.length txns))
  | Verdicts { results; _ } -> ("occ-verdicts", 16 + (8 * List.length results))

let describe_update (u : update_msg) = ("occ-update", 16 + (8 * List.length u.u_writes))

let create (c : Cluster.t) =
  let t =
    {
      c;
      net = Cluster.make_net ~describe:describe_msg c;
      update_net = Cluster.make_net ~describe:describe_update c;
      validator = Validator.create ();
      queues = Array.init c.params.n_sites (fun _ -> ref []);
    }
  in
  let cat = Cluster.profile_cat c "server" in
  for site = 0 to c.params.n_sites - 1 do
    Sim.spawn ~cat c.sim (fun () -> server t site);
    Sim.spawn ~cat c.sim (fun () -> update_applier t site)
  done;
  (* Epoch boundaries are global instants (k * occ_epoch_ms): every site
     flushes at the same boundary, in site order. The ticker keeps firing
     while a reconfiguration drains — queued transactions must still reach
     the validator for the drain to complete. *)
  let period = c.params.occ_epoch_ms in
  for site = 0 to c.params.n_sites - 1 do
    let rec tick at =
      Sim.at c.sim at (fun () ->
          if not c.stopped then begin
            if !(t.queues.(site)) <> [] then Sim.spawn c.sim (fun () -> flush t site);
            tick (at +. period)
          end)
    in
    tick period
  done;
  t

let submit t (spec : Txn.spec) =
  let c = t.c in
  let site = spec.origin in
  let deadline_at = Cluster.deadline_at c in
  let gid = Cluster.fresh_gid c in
  let attempt = Cluster.fresh_attempt c in
  Cluster.trace_txn_begin c ~gid ~site;
  Cluster.span_link c ~owner:attempt ~gid;
  (* Optimistic local execution: no locks. Reads capture the version
     observed (the validation evidence), writes are buffered. *)
  let reads = ref [] in
  List.iter
    (fun op ->
      Cluster.use_cpu c site c.params.cpu_op;
      match op with
      | Txn.Read item ->
          let v = Store.read c.stores.(site) item in
          reads := (item, v.Value.version) :: !reads;
          History.record c.history ~site ~item ~gid ~attempt ~version:v.Value.version History.R
      | Txn.Write _ -> ())
    spec.ops;
  let reads = List.rev !reads in
  let writes = List.sort_uniq compare (Txn.writes spec) in
  let abort reason =
    History.discard_attempt c.history ~attempt;
    Cluster.trace_txn_abort c ~gid ~site reason;
    Txn.Aborted reason
  in
  if Sim.now c.sim >= deadline_at then begin
    Cluster.trace_txn_deadline c ~gid ~site;
    abort Txn.Deadline_exceeded
  end
  else if
    site <> validator_site && not (Network.reachable t.net ~src:site ~dst:validator_site)
  then
    (* Fail fast instead of parking a batch against a partition. *)
    abort Txn.Partitioned
  else begin
    let t0 = Sim.now c.sim in
    let outcome =
      Sim.suspend (fun resume ->
          t.queues.(site) := { gid; reads; writes; deliver = resume } :: !(t.queues.(site));
          if deadline_at < infinity then
            Sim.at c.sim deadline_at (fun () ->
                (* Still buffered: withdraw, the validator never saw it. Once
                   flushed the system decides — a late verdict is ignored by
                   the one-shot resume and winners apply server-side. *)
                t.queues.(site) := List.filter (fun p -> p.gid <> gid) !(t.queues.(site));
                resume `Deadline))
    in
    Cluster.span_add c ~owner:attempt Span.Prop_wait (Sim.now c.sim -. t0);
    match outcome with
    | `Committed -> Txn.Committed
    | `Validation_failed -> abort Txn.Validation_failed
    | `Deadline ->
        Cluster.trace_txn_deadline c ~gid ~site;
        abort Txn.Deadline_exceeded
  end

(* The cluster drains (no active transactions, nothing in flight) before a
   switch, so no batch is buffered or travelling; the validator's table keys
   by item and state transfer preserves versions, so it still matches every
   store. Nothing to rebuild — assert the invariant instead. *)
let reconfigure = Some (fun t -> Array.iter (fun q -> assert (!q = [])) t.queues)

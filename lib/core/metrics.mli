(** Run-time metrics (Section 5.3 of the paper).

    The paper's primary metrics are {e average throughput} — the average of
    the per-site primary-subtransaction throughputs — and {e abort rate} —
    the percentage of primary subtransactions that abort. We also collect the
    two §5.3.4 metrics: average response time of committed transactions and
    the update-propagation delay to replicas, plus a per-site breakdown of
    commit/abort traffic (the aggregate curves of §5.3 are explained by
    behaviour at individual sites, so the summary exposes it). *)

type t

(** [create ~n_sites ()] — [n_sites] (default 1) sizes the per-site
    breakdown; out-of-range sites are folded into site 0. *)
val create : ?n_sites:int -> unit -> t

(** {1 Recording (called by protocols and the driver)} *)

val commit : t -> site:int -> response:float -> unit
val abort : t -> site:int -> Repdb_txn.Txn.abort_reason -> unit

(** Land an outcome at simulated ms [at] in the availability timeline
    ({!val:bucket_ms} buckets). Separate from {!commit}/{!abort} so callers
    without a clock (unit tests) keep their totals timeline-free. *)
val timeline_commit : t -> at:float -> unit

val timeline_abort : t -> at:float -> unit

(** A replica applied updates [delay] ms after the primary committed. *)
val propagation : t -> delay:float -> unit

(** A client thread finished all its transactions at [time]. *)
val client_done : t -> time:float -> unit

(** A PSL read served from the local replica during a partition; [staleness]
    is ms since that copy was last written. *)
val stale_read : t -> staleness:float -> unit

(** Availability-timeline bucket width, ms (100). *)
val bucket_ms : float

(** {1 Summary} *)

type site_summary = {
  site : int;
  s_commits : int;
  s_aborts : int;
  s_avg_response : float;  (** ms, committed transactions originated here. *)
}

type summary = {
  commits : int;
  aborts : int;
  abort_rate : float;  (** Percentage of attempts that aborted. *)
  aborts_by_reason : (Repdb_txn.Txn.abort_reason * int) list;
  duration : float;  (** ms from start until the last client finished. *)
  throughput : float;  (** Committed primaries per second, whole system. *)
  throughput_per_site : float;  (** [throughput / m] — the paper's metric. *)
  avg_response : float;  (** ms, committed transactions only. *)
  p50_response : float;  (** Median response, ms. *)
  p95_response : float;  (** 95th-percentile response, ms. *)
  p99_response : float;  (** 99th-percentile response, ms. *)
  avg_propagation : float;  (** ms from primary commit to replica apply. *)
  n_propagations : int;
  messages : int;  (** Total network messages (all kinds). *)
  per_site : site_summary list;  (** One row per origin site. *)
  timeline : (float * int * int) list;
      (** Goodput / abort-rate timeline: [(bucket_start_ms, commits, aborts)]
          per {!val:bucket_ms} bucket; empty unless outcomes were recorded
          with [~at]. *)
  unavail_ms : float;
      (** Total ms in buckets with aborts but no commits — time the system
          was reachable-but-refusing. Idle buckets do not count. *)
  unavail_windows : int;  (** Maximal runs of unavailable buckets. *)
  stale_reads : int;
  max_staleness : float;  (** ms; 0 when no stale reads. *)
  avg_staleness : float;  (** ms; 0 when no stale reads. *)
}

(** [percentile sorted q] — nearest-rank percentile of an ascending-sorted
    sample: the element at 1-based rank [ceil (q *. n)], clamped to the
    array; 0 when empty. Agrees with {!Repdb_obs.Stats.percentile} up to
    bucket resolution. *)
val percentile : float array -> float -> float

(** [summarize t ~n_sites ~messages] — compute the summary; [duration] is the
    latest {!client_done} time. *)
val summarize : t -> n_sites:int -> messages:int -> summary

val pp_summary : Format.formatter -> summary -> unit

(** The per-site breakdown as one line per site. *)
val pp_per_site : Format.formatter -> summary -> unit

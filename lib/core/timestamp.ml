type tuple = { site : int; lts : int }
type t = { epoch : int; tuples : tuple list }

let initial site = { epoch = 0; tuples = [ { site; lts = 0 } ] }

(* Lexicographic order on vectors: a proper prefix is smaller; at the first
   difference, the *larger* site makes the smaller timestamp (Definition 3.3
   reverses the site order there), equal sites compare by counter. *)
let rec compare_tuples v1 v2 =
  match (v1, v2) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | t1 :: r1, t2 :: r2 ->
      if t1.site <> t2.site then Stdlib.compare t2.site t1.site
      else if t1.lts <> t2.lts then Stdlib.compare t1.lts t2.lts
      else compare_tuples r1 r2

let compare a b =
  if a.epoch <> b.epoch then Stdlib.compare a.epoch b.epoch
  else compare_tuples a.tuples b.tuples

let equal a b = compare a b = 0

let bump_own t site =
  let rec bump = function
    | [] -> invalid_arg "Timestamp.bump_own: no tuple for site"
    | [ last ] ->
        if last.site = site then [ { last with lts = last.lts + 1 } ]
        else invalid_arg "Timestamp.bump_own: site tuple is not last"
    | tup :: rest -> tup :: bump rest
  in
  { t with tuples = bump t.tuples }

let concat t ~site ~lts =
  let rec last = function [] -> None | [ x ] -> Some x | _ :: rest -> last rest in
  (match last t.tuples with
  | Some tup when tup.site >= site ->
      invalid_arg "Timestamp.concat: site order violated"
  | _ -> ());
  { t with tuples = t.tuples @ [ { site; lts } ] }

let with_epoch t e = { t with epoch = e }

let well_formed t =
  let rec increasing = function
    | a :: (b :: _ as rest) -> a.site < b.site && increasing rest
    | [ _ ] | [] -> true
  in
  t.tuples <> [] && increasing t.tuples

let pp ppf t =
  Fmt.pf ppf "e%d:" t.epoch;
  List.iter (fun tup -> Fmt.pf ppf "(s%d,%d)" tup.site tup.lts) t.tuples

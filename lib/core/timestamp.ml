type tuple = { site : int; lts : int }

(* Tuples are stored newest-first: [concat] and [bump_own] then touch only
   the list head, making both O(1). The forward representation appended at
   the tail — O(n) per secondary commit, O(n^2) down a propagation chain.
   [len] is cached so comparing unequal-length vectors can drop the longer
   one's excess head without a length walk. *)
type t = { epoch : int; len : int; rev : tuple list }

let initial site = { epoch = 0; len = 1; rev = [ { site; lts = 0 } ] }
let epoch t = t.epoch
let tuples t = List.rev t.rev

(* No validation: callers (and tests) may build ill-formed vectors and probe
   them with [well_formed]. *)
let of_tuples ~epoch tuples = { epoch; len = List.length tuples; rev = List.rev tuples }

(* Forward-lexicographic compare of equal-length vectors stored reversed:
   the earliest tuple decides first, and the earliest tuples are the list
   tails, so recurse before comparing heads. At the first difference the
   *larger* site makes the smaller timestamp (Definition 3.3 reverses the
   site order there); equal sites compare by counter. *)
let rec cmp_rev r1 r2 =
  match (r1, r2) with
  | [], [] -> 0
  | t1 :: rest1, t2 :: rest2 ->
      let c = cmp_rev rest1 rest2 in
      if c <> 0 then c
      else if t1.site <> t2.site then Stdlib.compare t2.site t1.site
      else Stdlib.compare t1.lts t2.lts
  | [], _ :: _ | _ :: _, [] -> assert false (* equal lengths by construction *)

let rec drop n l =
  if n = 0 then l else match l with _ :: rest -> drop (n - 1) rest | [] -> assert false

(* A proper prefix is smaller; the longer vector's excess tuples sit at the
   head of its reversed list, so dropping them leaves the common prefix. *)
let compare a b =
  if a.epoch <> b.epoch then Stdlib.compare a.epoch b.epoch
  else if a.len = b.len then cmp_rev a.rev b.rev
  else if a.len < b.len then
    let c = cmp_rev a.rev (drop (b.len - a.len) b.rev) in
    if c <> 0 then c else -1
  else
    let c = cmp_rev (drop (a.len - b.len) a.rev) b.rev in
    if c <> 0 then c else 1

let equal a b = compare a b = 0

let bump_own t site =
  match t.rev with
  | [] -> invalid_arg "Timestamp.bump_own: no tuple for site"
  | last :: rest ->
      if last.site = site then { t with rev = { last with lts = last.lts + 1 } :: rest }
      else invalid_arg "Timestamp.bump_own: site tuple is not last"

let concat t ~site ~lts =
  (match t.rev with
  | tup :: _ when tup.site >= site -> invalid_arg "Timestamp.concat: site order violated"
  | _ -> ());
  { t with len = t.len + 1; rev = { site; lts } :: t.rev }

let with_epoch t e = { t with epoch = e }

let well_formed t =
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a.site > b.site && decreasing rest
    | [ _ ] | [] -> true
  in
  t.rev <> [] && decreasing t.rev

let pp ppf t =
  Fmt.pf ppf "e%d:" t.epoch;
  List.iter (fun tup -> Fmt.pf ppf "(s%d,%d)" tup.site tup.lts) (List.rev t.rev)

(** The lazy-master protocol of Gray et al. 1996, as characterised in
    Section 1.2 of the paper: every read or write of an item requires a lock
    {e at the item's primary site}, and a transaction's write locks are held
    until its updates have been propagated to (and acknowledged by) every
    replica.

    Unlike PSL, replicas are physically refreshed, and a replica read is
    served locally once the primary grants the shared lock — safe precisely
    because writers do not release until all replicas are up to date. Unlike
    the DAG/BackEdge protocols this is {e not} lazy in the paper's sense: the
    transaction still holds its locks during propagation, so lock hold times
    (and deadlock exposure) grow with the degree of replication. Included as
    the second baseline the paper positions itself against. *)

include Protocol.S

(** Remote (primary-site) read-lock requests performed so far. *)
val remote_reads : t -> int

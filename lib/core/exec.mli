(** Common building blocks for executing (sub)transactions at a site.

    Writes are deferred: during execution a transaction only acquires locks
    (exclusive for writes, shared for reads), charges CPU and records the
    access in the history; the store is modified at commit time, so aborts
    need no undo. Strict 2PL holds because locks are only released by
    {!commit_local} and {!abort_local}. *)

module Txn = Repdb_txn.Txn
module Lock_mgr = Repdb_lock.Lock_mgr

(** [run_ops c ~gid ~attempt ~site ops] executes [ops] locally: for each
    operation, acquire the lock, charge [cpu_op], record the access. On lock
    failure returns [Error reason] with all locks still held — the caller
    must {!abort_local}. *)
val run_ops :
  Cluster.t ->
  gid:int ->
  attempt:int ->
  site:int ->
  Txn.op list ->
  (unit, Txn.abort_reason) result

(** [acquire_writes c ~gid ~attempt ~site items] — the secondary-
    subtransaction variant of {!run_ops}: exclusive locks + [cpu_op] + W
    records for each item, which must all be placed at [site]. *)
val acquire_writes :
  Cluster.t ->
  gid:int ->
  attempt:int ->
  site:int ->
  int list ->
  (unit, Txn.abort_reason) result

(** [apply_writes c ~gid ~site items] — install the deferred writes into the
    site store (no locking; caller holds the exclusive locks). *)
val apply_writes : Cluster.t -> gid:int -> site:int -> int list -> unit

(** [commit_cost ?owner c ~site] — charge [cpu_commit] (blocking). Call
    {e before} the atomic commit section. When [owner] (a client attempt id
    previously linked with {!Cluster.span_link}) is given, the charged time
    is attributed to that transaction's commit phase span. *)
val commit_cost : ?owner:int -> Cluster.t -> site:int -> unit

(** [release c ~attempt ~site] — release every lock of [attempt]. *)
val release : Cluster.t -> attempt:int -> site:int -> unit

(** [abort_local c ~attempt ~site] — discard the attempt's recorded accesses
    and release its locks. *)
val abort_local : Cluster.t -> attempt:int -> site:int -> unit

(** [apply_secondary c ~gid ~site items ~finally] — run a secondary
    subtransaction: acquire exclusive locks on [items] (retrying with a fresh
    attempt after every timeout, as the paper's repeated resubmission), charge
    the commit cost, then {e atomically} apply the writes, release the locks
    and run [finally] — which must not block, and is where the caller updates
    site timestamps and forwards messages so that commit order equals forward
    order. With [items = []] only [finally] runs. *)
val apply_secondary :
  Cluster.t -> gid:int -> site:int -> int list -> finally:(unit -> unit) -> unit

(** Map a lock-wait outcome to an abort reason.
    @raise Invalid_argument on [Granted]. *)
val abort_reason_of_outcome : Lock_mgr.outcome -> Txn.abort_reason

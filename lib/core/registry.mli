(** Protocol registry: names to first-class protocol modules.

    [entries] is the single source of truth — the CLI protocol help,
    [bench/large.exe --protocols] and the docs table are all rendered from
    it, so adding a protocol here is the whole registration step. *)

(** Every protocol with a one-line description, in presentation order. *)
val entries : (Protocol.t * string) list

(** All protocols: DAG(WT), DAG(T), BackEdge, PSL, Lazy-master, Central,
    Eager, Naive, OCC-epoch, SSI (= [List.map fst entries]). *)
val all : Protocol.t list

(** Protocols safe on arbitrary copy graphs (what the benchmark sweeps with
    [b > 0] may run): BackEdge, PSL, Lazy-master, Central, Eager, Naive,
    OCC-epoch, SSI. *)
val cyclic_safe : Protocol.t list

(** The general-tree BackEdge variant ("backedge-gen"), kept out of {!all}
    because the paper evaluates the chain variant; used by the tree-routing
    ablation. *)
val backedge_general : Protocol.t

(** DAG(T) with the pipelined (multi-secondary) applier ("dag-t-mc"), the
    relaxation Section 3.2.3 alludes to. *)
val dag_t_pipelined : Protocol.t

(** [find name] — look up by {!Protocol.name}; includes "backedge-gen". *)
val find : string -> Protocol.t option

val names : string list

(** [(name, one-line description)] pairs, in [entries] order. *)
val describe : unit -> (string * string) list

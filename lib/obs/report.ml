type t = {
  meta : (string * string) list;
  header : string array;
  data : float array list; (* row-major, sample order *)
}

let meta t = t.meta
let header t = t.header
let data t = t.data
let n_rows t = List.length t.data

(* --- Parsing -------------------------------------------------------------- *)

let split_csv line = String.split_on_char ',' line

let parse_meta line =
  (* "# repdb-timeline v1 k=v k=v ..." — tolerate any comment that carries
     k=v tokens so hand-edited files still parse. *)
  let tokens = String.split_on_char ' ' line in
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when i > 0 ->
          Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | _ -> None)
    tokens

let parse s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" then None else Some l)
  in
  let meta, rest =
    match lines with
    | l :: rest when String.length l > 0 && l.[0] = '#' -> (parse_meta l, rest)
    | _ -> ([], lines)
  in
  match rest with
  | [] -> Error "Report.parse: no header line"
  | header :: rows ->
      let header = Array.of_list (split_csv header) in
      let ncols = Array.length header in
      let exception Bad of string in
      (try
         let data =
           List.mapi
             (fun i row ->
               let cells = split_csv row in
               if List.length cells <> ncols then
                 raise (Bad (Printf.sprintf "row %d has %d cells, expected %d" (i + 1)
                               (List.length cells) ncols));
               Array.of_list
                 (List.map
                    (fun c ->
                      match float_of_string_opt c with
                      | Some f -> f
                      | None -> raise (Bad (Printf.sprintf "row %d: not a number: %S" (i + 1) c)))
                    cells))
             rows
         in
         Ok { meta; header; data }
       with Bad msg -> Error ("Report.parse: " ^ msg))

let column t name =
  match Array.find_index (fun h -> h = name) t.header with
  | None -> None
  | Some i -> Some (List.map (fun row -> row.(i)) t.data)

(* All columns named [prefix.N], as [(site, series)] sorted by site. *)
let site_columns t prefix =
  let p = prefix ^ "." in
  let plen = String.length p in
  let cols = ref [] in
  Array.iteri
    (fun i h ->
      if String.length h > plen && String.sub h 0 plen = p then
        match int_of_string_opt (String.sub h plen (String.length h - plen)) with
        | Some site -> cols := (site, i) :: !cols
        | None -> ())
    t.header;
  List.sort (fun (a, _) (b, _) -> compare a b) !cols
  |> List.map (fun (site, i) -> (site, List.map (fun row -> row.(i)) t.data))

let sum_series = function
  | [] -> []
  | first :: rest ->
      List.fold_left (fun acc s -> List.map2 ( +. ) acc s) first rest

(* --- Series statistics ---------------------------------------------------- *)

let fmax = List.fold_left Float.max 0.0
let fsum = List.fold_left ( +. ) 0.0
let fmean xs = match xs with [] -> 0.0 | _ -> fsum xs /. float_of_int (List.length xs)
let last xs = match List.rev xs with [] -> 0.0 | x :: _ -> x

(* Meta entries whose key starts with [prefix], as [(key, value)] in file
   order — the driver folds end-of-run breakdowns (per-reason aborts, the
   detector/repair counters of a healing run) into the CSV meta line so the
   report can render them from the file alone. *)
let meta_prefixed t prefix =
  let plen = String.length prefix in
  List.filter
    (fun (k, _) -> String.length k > plen && String.sub k 0 plen = prefix)
    t.meta

(* --- Sparklines ----------------------------------------------------------- *)

let spark_chars = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}"; "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

(* Downsample to at most [width] buckets (max within each bucket), then map
   onto the 8 block glyphs against the series maximum. *)
let sparkline ?(width = 60) xs =
  let n = List.length xs in
  if n = 0 then ""
  else begin
    let arr = Array.of_list xs in
    let buckets = min width n in
    let vals =
      Array.init buckets (fun b ->
          let lo = b * n / buckets and hi = max (((b + 1) * n / buckets) - 1) (b * n / buckets) in
          let m = ref arr.(lo) in
          for i = lo to hi do
            if arr.(i) > !m then m := arr.(i)
          done;
          !m)
    in
    let top = Array.fold_left Float.max 0.0 vals in
    let buf = Buffer.create (buckets * 3) in
    Array.iter
      (fun v ->
        let level =
          if top <= 0.0 then 0
          else min 7 (int_of_float (v /. top *. 8.0))
        in
        Buffer.add_string buf spark_chars.(level))
      vals;
    Buffer.contents buf
  end

(* --- Markdown ------------------------------------------------------------- *)

let time_range t =
  match column t "t_ms" with
  | None | Some [] -> (0.0, 0.0)
  | Some ts -> (List.hd ts, last ts)

let md_escape s = s (* values are numeric / identifier-like *)

let to_markdown t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "# repdb timeline report\n\n";
  if t.meta <> [] then begin
    pf "%s\n\n"
      (String.concat " · "
         (List.map (fun (k, v) -> Printf.sprintf "**%s**=%s" (md_escape k) (md_escape v)) t.meta))
  end;
  let t0, t1 = time_range t in
  pf "%d samples covering %.3f – %.3f ms\n" (n_rows t) t0 t1;
  (match site_columns t "lag_ms" with
  | [] -> ()
  | lags ->
      pf "\n## Replication lag (ms)\n\n";
      pf "| site | lag over time | max | mean | last |\n";
      pf "|------|---------------|-----|------|------|\n";
      List.iter
        (fun (site, xs) ->
          pf "| %d | `%s` | %.3f | %.3f | %.3f |\n" site (sparkline xs) (fmax xs) (fmean xs)
            (last xs))
        lags;
      let peak = fmax (List.map (fun (_, xs) -> fmax xs) lags) in
      pf "\npeak lag across sites: %.3f ms\n" peak);
  (match (site_columns t "commits", site_columns t "aborts") with
  | [], _ | _, [] -> ()
  | commits, aborts ->
      let ctotal = sum_series (List.map snd commits) in
      let atotal = sum_series (List.map snd aborts) in
      pf "\n## Throughput (per window, all sites)\n\n";
      pf "| series | over time | total | peak/window |\n";
      pf "|--------|-----------|-------|-------------|\n";
      pf "| commits | `%s` | %.0f | %.0f |\n" (sparkline ctotal) (fsum ctotal) (fmax ctotal);
      pf "| aborts | `%s` | %.0f | %.0f |\n" (sparkline atotal) (fsum atotal) (fmax atotal));
  (match meta_prefixed t "aborts." with
  | [] -> ()
  | reasons ->
      pf "\n## Aborts by reason\n\n";
      pf "| reason | count |\n|--------|-------|\n";
      List.iter
        (fun (k, v) ->
          pf "| %s | %s |\n" (String.sub k 7 (String.length k - 7)) (md_escape v))
        reasons);
  (match site_columns t "phi" with
  | [] -> ()
  | phis ->
      pf "\n## Failure detector (φ suspicion level)\n\n";
      pf "| site | phi over time | max | last |\n";
      pf "|------|---------------|-----|------|\n";
      List.iter
        (fun (site, xs) ->
          pf "| %d | `%s` | %.2f | %.2f |\n" site (sparkline xs) (fmax xs) (last xs))
        phis);
  (let heal =
     meta_prefixed t "detector." @ meta_prefixed t "heal." @ meta_prefixed t "repair."
     @ meta_prefixed t "corrupt."
   in
   match heal with
   | [] -> ()
   | counters ->
       pf "\n## Self-healing\n\n";
       pf "| counter | value |\n|---------|-------|\n";
       List.iter (fun (k, v) -> pf "| %s | %s |\n" (md_escape k) (md_escape v)) counters);
  let gauge name col =
    match column t col with
    | None | Some [] -> ()
    | Some xs -> pf "| %s | `%s` | %.0f | %.1f |\n" name (sparkline xs) (fmax xs) (fmean xs)
  in
  let sum_gauge name prefix =
    match site_columns t prefix with
    | [] -> ()
    | cols ->
        let xs = sum_series (List.map snd cols) in
        pf "| %s | `%s` | %.0f | %.1f |\n" name (sparkline xs) (fmax xs) (fmean xs)
  in
  pf "\n## Activity\n\n";
  pf "| gauge | over time | max | mean |\n";
  pf "|-------|-----------|-----|------|\n";
  gauge "active txns" "active_txns";
  gauge "msgs in flight" "msgs_inflight";
  sum_gauge "locks held" "locks_held";
  sum_gauge "lock waiters" "lock_waiters";
  sum_gauge "pending updates" "pending";
  Buffer.contents buf

(* --- HTML ----------------------------------------------------------------- *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let palette =
  [| "#1f77b4"; "#ff7f0e"; "#2ca02c"; "#d62728"; "#9467bd"; "#8c564b"; "#e377c2"; "#7f7f7f";
     "#bcbd22"; "#17becf" |]

let svg_chart ~title series =
  let w = 640 and h = 120 and pad = 4 in
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let top = fmax (List.map (fun (_, xs) -> fmax xs) series) in
  let top = if top <= 0.0 then 1.0 else top in
  pf "<figure><figcaption>%s (max %.3f)</figcaption>" (html_escape title) top;
  pf "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" \
      style=\"background:#fafafa;border:1px solid #ddd\">" w h w h;
  List.iteri
    (fun si (label, xs) ->
      let n = List.length xs in
      if n > 1 then begin
        let color = palette.(si mod Array.length palette) in
        let pts =
          String.concat " "
            (List.mapi
               (fun i v ->
                 let x =
                   float_of_int pad
                   +. float_of_int i /. float_of_int (n - 1) *. float_of_int (w - (2 * pad))
                 in
                 let y =
                   float_of_int (h - pad) -. (v /. top *. float_of_int (h - (2 * pad)))
                 in
                 Printf.sprintf "%.1f,%.1f" x y)
               xs)
        in
        pf "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"%s\">\
            <title>%s</title></polyline>"
          color pts (html_escape label)
      end)
    series;
  pf "</svg></figure>";
  Buffer.contents buf

let to_html t =
  let buf = Buffer.create 8192 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "<!DOCTYPE html><html><head><meta charset=\"utf-8\">";
  pf "<title>repdb timeline report</title>";
  pf
    "<style>body{font-family:system-ui,sans-serif;margin:2em;max-width:720px}\
     h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.5em}\
     figure{margin:0.5em 0}figcaption{font-size:0.85em;color:#555}\
     .meta{color:#555;font-size:0.9em}</style></head><body>";
  pf "<h1>repdb timeline report</h1>";
  if t.meta <> [] then
    pf "<p class=\"meta\">%s</p>"
      (String.concat " · "
         (List.map
            (fun (k, v) -> Printf.sprintf "<b>%s</b>=%s" (Export.escape k) (Export.escape v))
            t.meta));
  let t0, t1 = time_range t in
  pf "<p class=\"meta\">%d samples covering %.3f &ndash; %.3f ms</p>" (n_rows t) t0 t1;
  (match site_columns t "lag_ms" with
  | [] -> ()
  | lags ->
      pf "<h2>Replication lag (ms)</h2>";
      pf "%s"
        (svg_chart ~title:"per-site replication lag"
           (List.map (fun (s, xs) -> (Printf.sprintf "site %d" s, xs)) lags)));
  (match (site_columns t "commits", site_columns t "aborts") with
  | [], _ | _, [] -> ()
  | commits, aborts ->
      pf "<h2>Throughput per window</h2>";
      pf "%s"
        (svg_chart ~title:"commits and aborts per window (all sites)"
           [
             ("commits", sum_series (List.map snd commits));
             ("aborts", sum_series (List.map snd aborts));
           ]));
  (match meta_prefixed t "aborts." with
  | [] -> ()
  | reasons ->
      pf "<h2>Aborts by reason</h2><table><tr><th>reason</th><th>count</th></tr>";
      List.iter
        (fun (k, v) ->
          pf "<tr><td>%s</td><td>%s</td></tr>"
            (html_escape (String.sub k 7 (String.length k - 7)))
            (html_escape v))
        reasons;
      pf "</table>");
  (match site_columns t "phi" with
  | [] -> ()
  | phis ->
      pf "<h2>Failure detector</h2>";
      pf "%s"
        (svg_chart ~title:"per-site suspicion level φ"
           (List.map (fun (s, xs) -> (Printf.sprintf "site %d" s, xs)) phis)));
  (let heal =
     meta_prefixed t "detector." @ meta_prefixed t "heal." @ meta_prefixed t "repair."
     @ meta_prefixed t "corrupt."
   in
   match heal with
   | [] -> ()
   | counters ->
       pf "<h2>Self-healing</h2><table><tr><th>counter</th><th>value</th></tr>";
       List.iter
         (fun (k, v) ->
           pf "<tr><td>%s</td><td>%s</td></tr>" (html_escape k) (html_escape v))
         counters;
       pf "</table>");
  let gauges =
    List.filter_map
      (fun (name, col) -> Option.map (fun xs -> (name, xs)) (column t col))
      [ ("active txns", "active_txns"); ("msgs in flight", "msgs_inflight") ]
    @ List.filter_map
        (fun (name, prefix) ->
          match site_columns t prefix with
          | [] -> None
          | cols -> Some (name, sum_series (List.map snd cols)))
        [ ("locks held", "locks_held"); ("lock waiters", "lock_waiters");
          ("pending updates", "pending") ]
  in
  if gauges <> [] then begin
    pf "<h2>Activity</h2>";
    List.iter (fun (name, xs) -> pf "%s" (svg_chart ~title:name [ (name, xs) ])) gauges
  end;
  pf "</body></html>\n";
  Buffer.contents buf

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type meta = (string * [ `Int of int | `Float of float | `String of string | `Bool of bool ]) list

let value_to_json = function
  | `Int n -> string_of_int n
  | `Float f -> Printf.sprintf "%g" f
  | `String s -> Printf.sprintf "\"%s\"" (escape s)
  | `Bool b -> if b then "true" else "false"

let fields_to_json fields =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k (value_to_json v)) fields)

(* --- JSONL ---------------------------------------------------------------- *)

(* The metadata fields every export leads with: ring capacity and how many
   oldest events the ring dropped (so a consumer can tell a complete trace
   from a wrapped one), plus whatever the caller adds (protocol, seed, …). *)
let meta_fields t extra =
  ("capacity", `Int (Trace.capacity t)) :: ("dropped", `Int (Trace.dropped t)) :: extra

let jsonl ?(meta = []) t write =
  write (Printf.sprintf "{\"meta\":{%s}}\n" (fields_to_json (meta_fields t meta)));
  Trace.iter t (fun (e : Event.t) ->
      write
        (Printf.sprintf "{\"t\":%.3f,\"e\":\"%s\",\"site\":%d%s}\n" e.time (Event.label e.kind)
           (Event.site e.kind)
           (match Event.args e.kind with
           | [] -> ""
           | fields -> "," ^ fields_to_json fields)))

let jsonl_to_channel ?meta t oc = jsonl ?meta t (output_string oc)

let jsonl_to_string ?meta t =
  let buf = Buffer.create 4096 in
  jsonl ?meta t (Buffer.add_string buf);
  Buffer.contents buf

(* --- Chrome trace_event --------------------------------------------------- *)

(* Category = the label's prefix, so the viewer can filter by subsystem. *)
let category kind =
  let l = Event.label kind in
  match String.index_opt l '_' with Some i -> String.sub l 0 i | None -> l

let chrome ?n_sites ?(meta = []) t write =
  let n_sites =
    match n_sites with
    | Some n -> n
    | None ->
        let m = ref 0 in
        Trace.iter t (fun e -> m := max !m (Event.site e.kind));
        !m + 1
  in
  write
    (Printf.sprintf "{\"displayTimeUnit\":\"ms\",\"otherData\":{%s},\"traceEvents\":["
       (fields_to_json (meta_fields t meta)));
  let first = ref true in
  let emit s =
    if !first then first := false else write ",";
    write "\n";
    write s
  in
  for site = 0 to n_sites - 1 do
    emit
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"site %d\"}}"
         site site)
  done;
  Trace.iter t (fun (e : Event.t) ->
      let site = Event.site e.kind in
      let ts = e.time *. 1000.0 (* trace_event timestamps are microseconds *) in
      match e.kind with
      | Event.Txn_begin { gid; _ } ->
          emit
            (Printf.sprintf
               "{\"ph\":\"b\",\"cat\":\"txn\",\"id\":%d,\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"name\":\"txn\"}"
               gid site ts)
      | Event.Txn_commit { gid; _ } ->
          emit
            (Printf.sprintf
               "{\"ph\":\"e\",\"cat\":\"txn\",\"id\":%d,\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"name\":\"txn\",\"args\":{\"outcome\":\"commit\"}}"
               gid site ts)
      | Event.Txn_abort { gid; reason; _ } ->
          emit
            (Printf.sprintf
               "{\"ph\":\"e\",\"cat\":\"txn\",\"id\":%d,\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"name\":\"txn\",\"args\":{\"outcome\":\"abort\",\"reason\":\"%s\"}}"
               gid site ts (escape reason))
      | Event.Span_phase { gid; phase; t0; dur; _ } ->
          (* Phase attribution renders as a complete duration slice on the
             origin site's track, one tid lane per phase name. *)
          emit
            (Printf.sprintf
               "{\"ph\":\"X\",\"cat\":\"span\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\",\"args\":{\"gid\":%d}}"
               site (t0 *. 1000.0) (dur *. 1000.0) (escape phase) gid)
      | Event.Queue_depth { queue; depth; _ } ->
          emit
            (Printf.sprintf
               "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"name\":\"queue:%s\",\"args\":{\"depth\":%d}}"
               site ts (escape queue) depth)
      | kind ->
          emit
            (Printf.sprintf
               "{\"ph\":\"i\",\"s\":\"p\",\"cat\":\"%s\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"name\":\"%s\",\"args\":{%s}}"
               (category kind) site ts (Event.label kind)
               (fields_to_json (Event.args kind))));
  write "\n]}\n"

let chrome_to_channel ?n_sites ?meta t oc = chrome ?n_sites ?meta t (output_string oc)

let chrome_to_string ?n_sites ?meta t =
  let buf = Buffer.create 4096 in
  chrome ?n_sites ?meta t (Buffer.add_string buf);
  Buffer.contents buf

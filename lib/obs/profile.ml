type t = {
  enabled : bool;
  index : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable counts : int array;
  mutable wall : float array; (* seconds *)
  mutable minor : float array; (* minor words allocated *)
  mutable n : int;
  mutable cur : int;
  t0 : float; (* wall clock at creation, seconds *)
  g0 : Gc.stat;
}

let make enabled =
  let names = Array.make 8 "" in
  names.(0) <- "other";
  let index = Hashtbl.create 16 in
  Hashtbl.replace index "other" 0;
  {
    enabled;
    index;
    names;
    counts = Array.make 8 0;
    wall = Array.make 8 0.0;
    minor = Array.make 8 0.0;
    n = 1;
    cur = 0;
    t0 = (if enabled then Unix.gettimeofday () else 0.0);
    g0 = Gc.quick_stat ();
  }

let disabled = make false
let create () = make true
let on t = t.enabled
let other = 0

let grow t =
  let cap = Array.length t.names in
  let names = Array.make (cap * 2) "" in
  Array.blit t.names 0 names 0 cap;
  t.names <- names;
  let counts = Array.make (cap * 2) 0 in
  Array.blit t.counts 0 counts 0 cap;
  t.counts <- counts;
  let wall = Array.make (cap * 2) 0.0 in
  Array.blit t.wall 0 wall 0 cap;
  t.wall <- wall;
  let minor = Array.make (cap * 2) 0.0 in
  Array.blit t.minor 0 minor 0 cap;
  t.minor <- minor

let cat t name =
  if not t.enabled then other
  else
    match Hashtbl.find_opt t.index name with
    | Some i -> i
    | None ->
        if t.n = Array.length t.names then grow t;
        let i = t.n in
        t.names.(i) <- name;
        Hashtbl.replace t.index name i;
        t.n <- i + 1;
        i

let current t = t.cur

(* One sample per executed event: events run to completion (no re-entry into
   the scheduler), so a simple before/after measurement cannot nest. *)
let wrap t ~cat fn () =
  let saved = t.cur in
  t.cur <- cat;
  let w0 = Unix.gettimeofday () in
  let m0 = Gc.minor_words () in
  Fun.protect
    ~finally:(fun () ->
      t.counts.(cat) <- t.counts.(cat) + 1;
      t.wall.(cat) <- t.wall.(cat) +. (Unix.gettimeofday () -. w0);
      t.minor.(cat) <- t.minor.(cat) +. (Gc.minor_words () -. m0);
      t.cur <- saved)
    fn

let total_wall t = Array.fold_left ( +. ) 0.0 t.wall
let total_events t = Array.fold_left ( + ) 0 t.counts

(* Categories with at least one sample, heaviest wall time first; ties broken
   by name so the table is stable across runs with equal timings. *)
let rows t =
  let rows = ref [] in
  for i = t.n - 1 downto 0 do
    if t.counts.(i) > 0 then rows := (t.names.(i), t.counts.(i), t.wall.(i), t.minor.(i)) :: !rows
  done;
  List.stable_sort
    (fun (n1, _, w1, _) (n2, _, w2, _) ->
      match compare w2 w1 with 0 -> compare n1 n2 | c -> c)
    !rows

let gc_deltas t =
  let g = Gc.quick_stat () in
  ( g.Gc.minor_words -. t.g0.Gc.minor_words,
    g.Gc.major_words -. t.g0.Gc.major_words,
    g.Gc.minor_collections - t.g0.Gc.minor_collections,
    g.Gc.major_collections - t.g0.Gc.major_collections )

let pp_table ppf t =
  if not t.enabled then Fmt.pf ppf "profiler disabled"
  else begin
    let total = total_wall t in
    let share w = if total <= 0.0 then 0.0 else 100.0 *. w /. total in
    Fmt.pf ppf "@[<v>%-10s %12s %12s %7s %12s@," "category" "events" "wall ms" "share" "minor Mw";
    List.iter
      (fun (name, n, w, m) ->
        Fmt.pf ppf "%-10s %12d %12.3f %6.1f%% %12.3f@," name n (w *. 1000.0) (share w)
          (m /. 1e6))
      (rows t);
    Fmt.pf ppf "%-10s %12d %12.3f %6.1f%% %12.3f@," "total" (total_events t) (total *. 1000.0)
      (if total > 0.0 then 100.0 else 0.0)
      (Array.fold_left ( +. ) 0.0 t.minor /. 1e6);
    let minor_w, major_w, minor_c, major_c = gc_deltas t in
    Fmt.pf ppf "elapsed %.3f ms; gc: minor %.3f Mw, major %.3f Mw, collections %d/%d@]"
      ((Unix.gettimeofday () -. t.t0) *. 1000.0)
      (minor_w /. 1e6) (major_w /. 1e6) minor_c major_c
  end

let to_json_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"enabled\":";
  Buffer.add_string buf (if t.enabled then "true" else "false");
  let total = total_wall t in
  Buffer.add_string buf (Printf.sprintf ",\"total_wall_ms\":%.3f" (total *. 1000.0));
  Buffer.add_string buf (Printf.sprintf ",\"total_events\":%d" (total_events t));
  Buffer.add_string buf ",\"categories\":[";
  List.iteri
    (fun i (name, n, w, m) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"events\":%d,\"wall_ms\":%.3f,\"share\":%.4f,\"minor_words\":%.0f}"
           (Export.escape name) n (w *. 1000.0)
           (if total <= 0.0 then 0.0 else w /. total)
           m))
    (rows t);
  Buffer.add_string buf "]";
  let minor_w, major_w, minor_c, major_c = gc_deltas t in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"gc\":{\"minor_words\":%.0f,\"major_words\":%.0f,\"minor_collections\":%d,\"major_collections\":%d}}"
       minor_w major_w minor_c major_c);
  Buffer.contents buf

(** Typed trace events.

    One constructor per observable state transition in the simulated system.
    Sites, items, transaction ids and lock-owner (attempt) ids are the plain
    integers the rest of the repository uses; message kinds are short strings
    chosen by each protocol so the tracer stays independent of every protocol
    message type. *)

type lock_mode = Shared | Exclusive

type kind =
  | Txn_begin of { gid : int; site : int }
      (** A primary transaction acquired its gid at its origin site. *)
  | Txn_commit of { gid : int; site : int }
  | Txn_abort of { gid : int; site : int; reason : string }
  | Lock_request of { site : int; owner : int; item : int; mode : lock_mode }
  | Lock_grant of { site : int; owner : int; item : int; mode : lock_mode }
  | Lock_wait of { site : int; owner : int; item : int; mode : lock_mode }
      (** The request blocked behind incompatible holders. *)
  | Lock_timeout of { site : int; owner : int; item : int }
  | Lock_deadlock of { site : int; owner : int; item : int }
      (** The waiter was chosen as a deadlock victim. *)
  | Lock_release of { site : int; owner : int }
      (** [release_all] for the owner (commit or abort). *)
  | Msg_send of { src : int; dst : int; kind : string; size : int }
  | Msg_recv of { src : int; dst : int; kind : string; size : int }
  | Msg_drop of { src : int; dst : int; kind : string; size : int }
      (** A transmission attempt was lost (drop window, or an endpoint down);
          the acked link retries it after the schedule's RTO. *)
  | Site_crash of { site : int }
      (** The site became unreachable and its volatile memory is lost. *)
  | Site_recover of { site : int; downtime : float }
      (** The site restarted: store rebuilt from the redo log after
          [downtime] ms down. *)
  | Secondary_recv of { gid : int; site : int }
      (** A propagated subtransaction was dequeued for processing. *)
  | Secondary_commit of { gid : int; site : int }
      (** A propagated subtransaction applied its writes at a replica. *)
  | Prop_apply of { gid : int; site : int; delay : float }
      (** Replica updated [delay] ms after the primary commit. *)
  | Epoch_advance of { site : int; epoch : int }
  | Dummy_emit of { src : int; dst : int }
      (** DAG(T) emitted a dummy subtransaction to push a child's clock. *)
  | Queue_depth of { site : int; queue : string; depth : int }
  | Backedge_stage of { gid : int; site : int }
      (** A backedge subtransaction staged its writes and holds its locks. *)
  | Backedge_decide of { gid : int; site : int; commit : bool }
      (** The origin's decision reached the participant. *)
  | Reconfig_begin of { epoch : int }
      (** The coordinator started draining epoch [epoch] for the next step. *)
  | Reconfig_switch of { epoch : int; duration : float }
      (** Routing switched to epoch [epoch] after [duration] ms of
          drain + state transfer. *)
  | Reconfig_done of { epoch : int; duration : float }
      (** Clients resumed under epoch [epoch]; the step took [duration] ms
          end to end. *)
  | State_transfer of { item : int; src : int; dst : int }
      (** A primary value was bulk-installed at a newly added replica. *)
  | Partition_begin of { groups : string }
      (** A network partition activated; [groups] in spec form
          (["0.1.2|3.4.5"]). Rides site 0's track like reconfig events. *)
  | Partition_heal of { groups : string }  (** The partition window closed. *)
  | Txn_deadline of { gid : int; site : int }
      (** A transaction's per-attempt deadline expired; it aborts with
          [Deadline_exceeded]. *)
  | Stale_read of { site : int; item : int; staleness : float }
      (** A PSL read was served from the local replica while the primary was
          unreachable; [staleness] is ms since the local copy was last
          written. *)
  | Span_phase of { gid : int; site : int; phase : string; t0 : float; dur : float }
      (** One lifecycle phase of a finished transaction attempt ([phase] in
          ["lock"], ["exec"], ["prop"], ["commit"]): it occupied [dur] ms
          starting at [t0]. Emitted at attempt completion by [Span]. *)
  | Suspect of { site : int; phi : float }
      (** The failure detector declared [site] suspect: a majority of its
          peers' φ values crossed the threshold ([phi] is the median). *)
  | Unsuspect of { site : int; downtime : float }
      (** Heartbeats resumed and [site] was cleared after [downtime] ms
          under suspicion. *)
  | Failover_begin of { site : int; epoch : int }
      (** The healer started draining epoch [epoch] to fail over the
          primaries held by suspected [site]. *)
  | Failover_done of { site : int; epoch : int; duration : float; promoted : int }
      (** Routing switched to epoch [epoch]; [promoted] items changed
          primary, after [duration] ms of weak drain + transfer. *)
  | Corrupt of { site : int; items : int }
      (** The injector silently scrambled [items] replica copies at [site]
          (bypassing the redo log — only anti-entropy can see it). *)
  | Repair_session of { primary : int; holder : int; mismatched : int }
      (** One anti-entropy digest exchange between [primary] and replica
          [holder] finished; [mismatched] items needed repair. *)
  | Repair_item of { item : int; src : int; dst : int }
      (** Anti-entropy shipped the primary copy of [item] from [src] and
          installed it at [dst] (redo-logged). *)
  | Rejoin of { site : int; repaired : int }
      (** A recovered (or demoted-then-cleared) site finished catch-up
          repair: [repaired] items were refreshed from their primaries. *)

type t = { time : float;  (** Simulated ms. *) kind : kind }

(** Short machine-readable label, e.g. ["lock_wait"]. *)
val label : kind -> string

(** The site whose track the event belongs to (the receiving site for
    messages and dummies). *)
val site : kind -> int

val string_of_mode : lock_mode -> string

(** Event payload as label/value pairs (without the label or the site);
    numeric values are rendered unquoted by the exporters. *)
val args : kind -> (string * [ `Int of int | `Float of float | `String of string | `Bool of bool ]) list

val pp : Format.formatter -> t -> unit

(** Wall-clock self-profiler for the simulation loop.

    Categories are small integers interned from strings ("client", "net",
    "lock", …). Instrumented schedulers wrap each event closure with
    {!wrap}, which charges the closure's execution time (wall-clock seconds
    via [Unix.gettimeofday]) and minor-heap allocation ([Gc.minor_words]
    delta) to its category. Events run to completion before the scheduler
    regains control, so samples never nest and the per-category sums
    partition the loop's total execution time.

    The profiler is zero-cost when disabled: {!cat} returns the shared
    {!other} id and schedulers skip the wrap entirely after one {!on}
    check. *)

type t

(** Shared disabled profiler: {!on} is [false], {!cat} returns {!other}. *)
val disabled : t

val create : unit -> t
val on : t -> bool

(** The pre-registered catch-all category (id 0, name ["other"]). *)
val other : int

(** [cat t name] — the category id for [name], interning it on first use.
    Returns {!other} when disabled. *)
val cat : t -> string -> int

(** Category of the event currently executing ({!other} at top level).
    Schedulers use this to attribute work a process schedules on behalf of
    itself (delays, suspends) to the process's own category. *)
val current : t -> int

(** [wrap t ~cat fn] — a closure that runs [fn] and charges its wall time,
    count, and minor allocation to [cat]. *)
val wrap : t -> cat:int -> (unit -> unit) -> unit -> unit

(** {1 Reading} *)

(** Total seconds across all categories. *)
val total_wall : t -> float

val total_events : t -> int

(** [(name, events, wall_s, minor_words)] per non-empty category, heaviest
    first (ties by name). *)
val rows : t -> (string * int * float * float) list

(** Table of per-category time shares plus GC deltas since creation. *)
val pp_table : Format.formatter -> t -> unit

(** Single-line JSON object (categories, shares, GC deltas). *)
val to_json_string : t -> string

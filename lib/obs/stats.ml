type counter = { c_name : string; c : int array }

type histogram = {
  h_name : string;
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array array; (* site -> bucket (last = overflow) *)
  sums : float array; (* per site *)
  ns : int array; (* per site *)
  maxs : float array; (* per site: largest observation, for overflow hits *)
}

type t = {
  n_sites : int;
  mutable counters : counter list; (* reverse registration order *)
  mutable histograms : histogram list;
}

let default_buckets =
  [| 0.25; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0;
     10000.0; 30000.0 |]

let create ~n_sites () =
  if n_sites < 1 then invalid_arg "Stats.create: need at least one site";
  { n_sites; counters = []; histograms = [] }

let n_sites t = t.n_sites

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; c = Array.make t.n_sites 0 } in
      t.counters <- c :: t.counters;
      c

let histogram ?buckets t name =
  match List.find_opt (fun h -> h.h_name = name) t.histograms with
  | Some h -> (
      (* A histogram silently returned with different buckets than requested
         would misattribute every subsequent observation. *)
      match buckets with
      | Some b when b <> h.bounds ->
          invalid_arg
            (Printf.sprintf "Stats.histogram: %S already registered with different buckets" name)
      | _ -> h)
  | None ->
      let buckets = Option.value buckets ~default:default_buckets in
      Array.iteri
        (fun i b ->
          if i > 0 && buckets.(i - 1) >= b then
            invalid_arg "Stats.histogram: buckets must be strictly increasing")
        buckets;
      let h =
        {
          h_name = name;
          bounds = Array.copy buckets;
          counts = Array.init t.n_sites (fun _ -> Array.make (Array.length buckets + 1) 0);
          sums = Array.make t.n_sites 0.0;
          ns = Array.make t.n_sites 0;
          maxs = Array.make t.n_sites 0.0;
        }
      in
      t.histograms <- h :: t.histograms;
      h

let[@inline] incr c ~site = c.c.(site) <- c.c.(site) + 1
let[@inline] add c ~site n = c.c.(site) <- c.c.(site) + n

(* First bucket whose upper bound admits [v]; the overflow bucket otherwise. *)
let bucket_of bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h ~site v =
  let b = bucket_of h.bounds v in
  h.counts.(site).(b) <- h.counts.(site).(b) + 1;
  h.sums.(site) <- h.sums.(site) +. v;
  h.ns.(site) <- h.ns.(site) + 1;
  if v > h.maxs.(site) then h.maxs.(site) <- v

let counter_value c ~site = c.c.(site)
let counter_total c = Array.fold_left ( + ) 0 c.c
let histogram_count h ~site = h.ns.(site)

let histogram_mean h ~site =
  if h.ns.(site) = 0 then 0.0 else h.sums.(site) /. float_of_int h.ns.(site)

(* Aggregate bucket counts for [site], or all sites when [site < 0]. *)
let bucket_counts h site =
  let nb = Array.length h.bounds + 1 in
  if site >= 0 then h.counts.(site)
  else begin
    let acc = Array.make nb 0 in
    Array.iter (fun row -> Array.iteri (fun i n -> acc.(i) <- acc.(i) + n) row) h.counts;
    acc
  end

let histogram_max h ~site =
  if site >= 0 then h.maxs.(site) else Array.fold_left Float.max 0.0 h.maxs

let percentile h ~site q =
  let counts = bucket_counts h site in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int total)) in
    let rank = max 1 (min total rank) in
    let nb = Array.length h.bounds in
    let rec find i acc =
      if i >= nb then
        (* The rank falls in the overflow bucket: clamping to the largest
           finite bound would silently under-report the tail, so report the
           observed maximum instead. *)
        histogram_max h ~site
      else
        let acc = acc + counts.(i) in
        if acc >= rank then h.bounds.(i) else find (i + 1) acc
    in
    find 0 0
  end

let percentile_total h q = percentile h ~site:(-1) q

let counter_names t = List.rev_map (fun c -> c.c_name) t.counters
let histogram_names t = List.rev_map (fun h -> h.h_name) t.histograms

let pp_table ppf t =
  let counters = List.rev t.counters and histograms = List.rev t.histograms in
  Fmt.pf ppf "@[<v>%-6s" "site";
  List.iter (fun c -> Fmt.pf ppf " %12s" c.c_name) counters;
  List.iter
    (fun h ->
      Fmt.pf ppf " %10s %9s %8s %8s %8s"
        (h.h_name ^ "#") (h.h_name ^ ".avg") "p50" "p95" "p99")
    histograms;
  Fmt.pf ppf "@,";
  let row label site =
    Fmt.pf ppf "%-6s" label;
    List.iter
      (fun c ->
        let v = if site >= 0 then c.c.(site) else counter_total c in
        Fmt.pf ppf " %12d" v)
      counters;
    List.iter
      (fun h ->
        let n, mean =
          if site >= 0 then (h.ns.(site), histogram_mean h ~site)
          else
            let n = Array.fold_left ( + ) 0 h.ns in
            let s = Array.fold_left ( +. ) 0.0 h.sums in
            (n, if n = 0 then 0.0 else s /. float_of_int n)
        in
        Fmt.pf ppf " %10d %9.1f %8.1f %8.1f %8.1f" n mean (percentile h ~site 0.5)
          (percentile h ~site 0.95) (percentile h ~site 0.99))
      histograms;
    Fmt.pf ppf "@,"
  in
  for site = 0 to t.n_sites - 1 do
    row (string_of_int site) site
  done;
  row "all" (-1);
  Fmt.pf ppf "@]"

type counter = { c_name : string; c : int array }

type histogram = {
  h_name : string;
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array array; (* site -> bucket (last = overflow) *)
  sums : float array; (* per site *)
  ns : int array; (* per site *)
  maxs : float array; (* per site: largest observation, for overflow hits *)
}

type t = {
  n_sites : int;
  mutable counters : counter list; (* reverse registration order *)
  mutable histograms : histogram list;
}

let default_buckets =
  [| 0.25; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0;
     10000.0; 30000.0 |]

let create ~n_sites () =
  if n_sites < 1 then invalid_arg "Stats.create: need at least one site";
  { n_sites; counters = []; histograms = [] }

let n_sites t = t.n_sites

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; c = Array.make t.n_sites 0 } in
      t.counters <- c :: t.counters;
      c

let histogram ?buckets t name =
  match List.find_opt (fun h -> h.h_name = name) t.histograms with
  | Some h -> (
      (* A histogram silently returned with different buckets than requested
         would misattribute every subsequent observation. *)
      match buckets with
      | Some b when b <> h.bounds ->
          invalid_arg
            (Printf.sprintf "Stats.histogram: %S already registered with different buckets" name)
      | _ -> h)
  | None ->
      let buckets = Option.value buckets ~default:default_buckets in
      Array.iteri
        (fun i b ->
          if i > 0 && buckets.(i - 1) >= b then
            invalid_arg "Stats.histogram: buckets must be strictly increasing")
        buckets;
      let h =
        {
          h_name = name;
          bounds = Array.copy buckets;
          counts = Array.init t.n_sites (fun _ -> Array.make (Array.length buckets + 1) 0);
          sums = Array.make t.n_sites 0.0;
          ns = Array.make t.n_sites 0;
          maxs = Array.make t.n_sites 0.0;
        }
      in
      t.histograms <- h :: t.histograms;
      h

let[@inline] incr c ~site = c.c.(site) <- c.c.(site) + 1
let[@inline] add c ~site n = c.c.(site) <- c.c.(site) + n

(* First bucket whose upper bound admits [v]; the overflow bucket otherwise. *)
let bucket_of bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h ~site v =
  let b = bucket_of h.bounds v in
  h.counts.(site).(b) <- h.counts.(site).(b) + 1;
  h.sums.(site) <- h.sums.(site) +. v;
  h.ns.(site) <- h.ns.(site) + 1;
  if v > h.maxs.(site) then h.maxs.(site) <- v

let counter_value c ~site = c.c.(site)
let counter_total c = Array.fold_left ( + ) 0 c.c
let histogram_count h ~site = h.ns.(site)

let histogram_mean h ~site =
  if h.ns.(site) = 0 then 0.0 else h.sums.(site) /. float_of_int h.ns.(site)

(* Aggregate bucket counts for [site], or all sites when [site < 0]. *)
let bucket_counts h site =
  let nb = Array.length h.bounds + 1 in
  if site >= 0 then h.counts.(site)
  else begin
    let acc = Array.make nb 0 in
    Array.iter (fun row -> Array.iteri (fun i n -> acc.(i) <- acc.(i) + n) row) h.counts;
    acc
  end

let histogram_max h ~site =
  if site >= 0 then h.maxs.(site) else Array.fold_left Float.max 0.0 h.maxs

let percentile h ~site q =
  let counts = bucket_counts h site in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int total)) in
    let rank = max 1 (min total rank) in
    let nb = Array.length h.bounds in
    let rec find i acc =
      if i >= nb then
        (* The rank falls in the overflow bucket: clamping to the largest
           finite bound would silently under-report the tail, so report the
           observed maximum instead. *)
        histogram_max h ~site
      else
        let acc = acc + counts.(i) in
        if acc >= rank then h.bounds.(i) else find (i + 1) acc
    in
    find 0 0
  end

let percentile_total h q = percentile h ~site:(-1) q

let counter_names t = List.rev_map (fun c -> c.c_name) t.counters
let histogram_names t = List.rev_map (fun h -> h.h_name) t.histograms

(* One rendering path for counters and histograms: every column is a header
   plus one pre-formatted cell per row (each site, then "all"), widths
   computed from the widest entry — so the layout adapts to metric names
   and value magnitudes instead of truncating either. *)
let pp_table ppf t =
  let counters = List.rev t.counters and histograms = List.rev t.histograms in
  let n_rows = t.n_sites + 1 in
  let site_of_row i = if i < t.n_sites then i else -1 in
  let col header cell = (header, Array.init n_rows (fun i -> cell (site_of_row i))) in
  let columns =
    (col "site" (fun site -> if site >= 0 then string_of_int site else "all")
    :: List.map
         (fun c ->
           col c.c_name (fun site ->
               string_of_int (if site >= 0 then c.c.(site) else counter_total c)))
         counters)
    @ List.concat_map
        (fun h ->
          let count site = if site >= 0 then h.ns.(site) else Array.fold_left ( + ) 0 h.ns in
          let mean site =
            if site >= 0 then histogram_mean h ~site
            else
              let n = count site and s = Array.fold_left ( +. ) 0.0 h.sums in
              if n = 0 then 0.0 else s /. float_of_int n
          in
          let ms v = Printf.sprintf "%.1f" v in
          [
            col (h.h_name ^ "#") (fun site -> string_of_int (count site));
            col (h.h_name ^ ".avg") (fun site -> ms (mean site));
            col (h.h_name ^ ".p50") (fun site -> ms (percentile h ~site 0.5));
            col (h.h_name ^ ".p95") (fun site -> ms (percentile h ~site 0.95));
            col (h.h_name ^ ".p99") (fun site -> ms (percentile h ~site 0.99));
          ])
        histograms
  in
  let width (header, cells) =
    Array.fold_left (fun w s -> max w (String.length s)) (String.length header) cells
  in
  let widths = List.map width columns in
  (* Site label column left-aligned, value columns right-aligned. *)
  let line get =
    String.concat "  "
      (List.mapi
         (fun i (c, w) ->
           let s = get c in
           if i = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s)
         (List.combine columns widths))
  in
  Fmt.pf ppf "@[<v>%s" (line fst);
  for i = 0 to n_rows - 1 do
    Fmt.pf ppf "@,%s" (line (fun (_, cells) -> cells.(i)))
  done;
  Fmt.pf ppf "@]"

type t = {
  enabled : bool;
  clock : unit -> float;
  capacity : int;
  buf : Event.t option array;
  mutable next : int; (* write position *)
  mutable len : int; (* events held: min (total recorded) capacity *)
  mutable dropped : int;
}

let disabled =
  {
    enabled = false;
    clock = (fun () -> 0.0);
    capacity = 0;
    buf = [||];
    next = 0;
    len = 0;
    dropped = 0;
  }

let create ?(capacity = 1 lsl 20) ~clock () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { enabled = true; clock; capacity; buf = Array.make capacity None; next = 0; len = 0; dropped = 0 }

let[@inline] on t = t.enabled

let record t kind =
  if t.enabled then begin
    t.buf.(t.next) <- Some { Event.time = t.clock (); kind };
    t.next <- (t.next + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

let iter t f =
  let start = (t.next - t.len + t.capacity * 2) mod max 1 t.capacity in
  for i = 0 to t.len - 1 do
    match t.buf.((start + i) mod t.capacity) with Some e -> f e | None -> ()
  done

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let length t = t.len
let dropped t = t.dropped
let capacity t = t.capacity

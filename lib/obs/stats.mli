(** Per-site metric registries: named counters and fixed-bucket latency
    histograms.

    Handles are resolved once at instrumentation-setup time, so the hot-path
    cost of a counter bump is one array store and of a histogram observation
    one binary search plus two stores — cheap enough to stay always-on.

    Histogram percentiles (p50/p95/p99) are estimated as the upper bound of
    the bucket containing the requested rank, which is exact enough for the
    millisecond-scale latencies the simulation produces. *)

type t

(** A per-site counter handle. *)
type counter

(** A per-site fixed-bucket histogram handle. *)
type histogram

(** [create ~n_sites ()] — an empty registry with [n_sites] tracks. *)
val create : n_sites:int -> unit -> t

val n_sites : t -> int

(** [counter t name] — the counter registered under [name], creating it on
    first use. Counter and histogram names share one namespace. *)
val counter : t -> string -> counter

(** [histogram t name] — likewise for histograms. [buckets] are the
    inclusive upper bounds (ms) of the finite buckets, strictly increasing;
    an overflow bucket is added implicitly. The default spans 0.25 ms to
    30 s in roughly 1-2-5 steps.
    @raise Invalid_argument if [name] is already registered and [buckets]
    differs from its bounds. *)
val histogram : ?buckets:float array -> t -> string -> histogram

val incr : counter -> site:int -> unit
val add : counter -> site:int -> int -> unit
val observe : histogram -> site:int -> float -> unit

(** {1 Reading} *)

val counter_value : counter -> site:int -> int
val counter_total : counter -> int

(** Number of observations. *)
val histogram_count : histogram -> site:int -> int

val histogram_mean : histogram -> site:int -> float

(** Largest value observed at [site] ([site:-1] for all sites); 0 when
    empty. *)
val histogram_max : histogram -> site:int -> float

(** [percentile h ~site q] with [q] in [0,1]; 0 when empty. Pass [site:-1]
    (or use {!percentile_total}) for the all-site aggregate. When the rank
    lands in the overflow bucket the observed maximum is reported rather
    than the largest finite bound. *)
val percentile : histogram -> site:int -> float -> float

val percentile_total : histogram -> float -> float

(** Registered counter names in registration order. *)
val counter_names : t -> string list

val histogram_names : t -> string list

(** Per-site table: one row per site and an aggregate row; counters as
    columns, then each histogram's count/mean/p50/p95/p99. *)
val pp_table : Format.formatter -> t -> unit

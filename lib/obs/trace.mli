(** Structured trace collector: a ring buffer of typed events stamped with
    simulated time.

    The collector is zero-cost when disabled: instrumented code guards every
    emission with {!on}, so a disabled trace costs one load and one branch
    per potential event and allocates nothing. When the buffer is full the
    oldest events are dropped (and counted), so long runs degrade to a
    sliding window rather than unbounded memory. *)

type t

(** The shared disabled collector: {!on} is [false], {!record} is a no-op. *)
val disabled : t

(** [create ~clock ()] — an enabled collector reading timestamps from
    [clock] (normally [Sim.clock sim], the kernel's clock hook).
    [capacity] is the ring size in events (default [2^20]). *)
val create : ?capacity:int -> clock:(unit -> float) -> unit -> t

(** Whether events are being collected. Guard event construction with this:
    [if Trace.on tr then Trace.record tr (Event.… {…})]. *)
val on : t -> bool

(** Append an event stamped with the current simulated time. No-op when
    disabled. *)
val record : t -> Event.kind -> unit

(** Events in emission order (oldest survivor first). *)
val events : t -> Event.t list

val iter : t -> (Event.t -> unit) -> unit

(** Events currently held (≤ capacity). *)
val length : t -> int

(** Events discarded because the ring was full. *)
val dropped : t -> int

(** Ring size in events (0 for {!disabled}). *)
val capacity : t -> int

type lock_mode = Shared | Exclusive

type kind =
  | Txn_begin of { gid : int; site : int }
  | Txn_commit of { gid : int; site : int }
  | Txn_abort of { gid : int; site : int; reason : string }
  | Lock_request of { site : int; owner : int; item : int; mode : lock_mode }
  | Lock_grant of { site : int; owner : int; item : int; mode : lock_mode }
  | Lock_wait of { site : int; owner : int; item : int; mode : lock_mode }
  | Lock_timeout of { site : int; owner : int; item : int }
  | Lock_deadlock of { site : int; owner : int; item : int }
  | Lock_release of { site : int; owner : int }
  | Msg_send of { src : int; dst : int; kind : string; size : int }
  | Msg_recv of { src : int; dst : int; kind : string; size : int }
  | Msg_drop of { src : int; dst : int; kind : string; size : int }
  | Site_crash of { site : int }
  | Site_recover of { site : int; downtime : float }
  | Secondary_recv of { gid : int; site : int }
  | Secondary_commit of { gid : int; site : int }
  | Prop_apply of { gid : int; site : int; delay : float }
  | Epoch_advance of { site : int; epoch : int }
  | Dummy_emit of { src : int; dst : int }
  | Queue_depth of { site : int; queue : string; depth : int }
  | Backedge_stage of { gid : int; site : int }
  | Backedge_decide of { gid : int; site : int; commit : bool }
  | Reconfig_begin of { epoch : int }
  | Reconfig_switch of { epoch : int; duration : float }
  | Reconfig_done of { epoch : int; duration : float }
  | State_transfer of { item : int; src : int; dst : int }
  | Partition_begin of { groups : string }
  | Partition_heal of { groups : string }
  | Txn_deadline of { gid : int; site : int }
  | Stale_read of { site : int; item : int; staleness : float }
  | Span_phase of { gid : int; site : int; phase : string; t0 : float; dur : float }
  | Suspect of { site : int; phi : float }
  | Unsuspect of { site : int; downtime : float }
  | Failover_begin of { site : int; epoch : int }
  | Failover_done of { site : int; epoch : int; duration : float; promoted : int }
  | Corrupt of { site : int; items : int }
  | Repair_session of { primary : int; holder : int; mismatched : int }
  | Repair_item of { item : int; src : int; dst : int }
  | Rejoin of { site : int; repaired : int }

type t = { time : float; kind : kind }

let label = function
  | Txn_begin _ -> "txn_begin"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Lock_request _ -> "lock_request"
  | Lock_grant _ -> "lock_grant"
  | Lock_wait _ -> "lock_wait"
  | Lock_timeout _ -> "lock_timeout"
  | Lock_deadlock _ -> "lock_deadlock"
  | Lock_release _ -> "lock_release"
  | Msg_send _ -> "msg_send"
  | Msg_recv _ -> "msg_recv"
  | Msg_drop _ -> "msg_drop"
  | Site_crash _ -> "site_crash"
  | Site_recover _ -> "site_recover"
  | Secondary_recv _ -> "secondary_recv"
  | Secondary_commit _ -> "secondary_commit"
  | Prop_apply _ -> "prop_apply"
  | Epoch_advance _ -> "epoch_advance"
  | Dummy_emit _ -> "dummy_emit"
  | Queue_depth _ -> "queue_depth"
  | Backedge_stage _ -> "backedge_stage"
  | Backedge_decide _ -> "backedge_decide"
  | Reconfig_begin _ -> "reconfig_begin"
  | Reconfig_switch _ -> "reconfig_switch"
  | Reconfig_done _ -> "reconfig_done"
  | State_transfer _ -> "state_transfer"
  | Partition_begin _ -> "partition_begin"
  | Partition_heal _ -> "partition_heal"
  | Txn_deadline _ -> "txn_deadline"
  | Stale_read _ -> "stale_read"
  | Span_phase _ -> "span_phase"
  | Suspect _ -> "suspect"
  | Unsuspect _ -> "unsuspect"
  | Failover_begin _ -> "failover_begin"
  | Failover_done _ -> "failover_done"
  | Corrupt _ -> "corrupt"
  | Repair_session _ -> "repair_session"
  | Repair_item _ -> "repair_item"
  | Rejoin _ -> "rejoin"

let site = function
  | Txn_begin { site; _ }
  | Txn_commit { site; _ }
  | Txn_abort { site; _ }
  | Lock_request { site; _ }
  | Lock_grant { site; _ }
  | Lock_wait { site; _ }
  | Lock_timeout { site; _ }
  | Lock_deadlock { site; _ }
  | Lock_release { site; _ }
  | Site_crash { site }
  | Site_recover { site; _ }
  | Secondary_recv { site; _ }
  | Secondary_commit { site; _ }
  | Prop_apply { site; _ }
  | Epoch_advance { site; _ }
  | Queue_depth { site; _ }
  | Backedge_stage { site; _ }
  | Backedge_decide { site; _ }
  | Txn_deadline { site; _ }
  | Stale_read { site; _ }
  | Span_phase { site; _ }
  (* Healer events ride the track of the site being suspected / failed over /
     corrupted / rejoined — the subject, not the coordinator. *)
  | Suspect { site; _ }
  | Unsuspect { site; _ }
  | Failover_begin { site; _ }
  | Failover_done { site; _ }
  | Corrupt { site; _ }
  | Rejoin { site; _ } -> site
  | Repair_session { holder; _ } -> holder
  | Repair_item { dst; _ } -> dst
  | Msg_send { src; _ } -> src
  | Msg_recv { dst; _ } | Msg_drop { dst; _ } | Dummy_emit { dst; _ } -> dst
  (* Coordinator / injector events are cluster-wide; they ride site 0's track. *)
  | Reconfig_begin _ | Reconfig_switch _ | Reconfig_done _
  | Partition_begin _ | Partition_heal _ -> 0
  | State_transfer { dst; _ } -> dst

let string_of_mode = function Shared -> "S" | Exclusive -> "X"

let args = function
  | Txn_begin { gid; _ } | Txn_commit { gid; _ } -> [ ("gid", `Int gid) ]
  | Txn_abort { gid; reason; _ } -> [ ("gid", `Int gid); ("reason", `String reason) ]
  | Lock_request { owner; item; mode; _ }
  | Lock_grant { owner; item; mode; _ }
  | Lock_wait { owner; item; mode; _ } ->
      [ ("owner", `Int owner); ("item", `Int item); ("mode", `String (string_of_mode mode)) ]
  | Lock_timeout { owner; item; _ } | Lock_deadlock { owner; item; _ } ->
      [ ("owner", `Int owner); ("item", `Int item) ]
  | Lock_release { owner; _ } -> [ ("owner", `Int owner) ]
  | Msg_send { src; dst; kind; size } | Msg_recv { src; dst; kind; size }
  | Msg_drop { src; dst; kind; size } ->
      [ ("src", `Int src); ("dst", `Int dst); ("kind", `String kind); ("size", `Int size) ]
  | Site_crash _ -> []
  | Site_recover { downtime; _ } -> [ ("downtime", `Float downtime) ]
  | Secondary_recv { gid; _ } | Secondary_commit { gid; _ } -> [ ("gid", `Int gid) ]
  | Prop_apply { gid; delay; _ } -> [ ("gid", `Int gid); ("delay", `Float delay) ]
  | Epoch_advance { epoch; _ } -> [ ("epoch", `Int epoch) ]
  | Dummy_emit { src; dst } -> [ ("src", `Int src); ("dst", `Int dst) ]
  | Queue_depth { queue; depth; _ } -> [ ("queue", `String queue); ("depth", `Int depth) ]
  | Backedge_stage { gid; _ } -> [ ("gid", `Int gid) ]
  | Backedge_decide { gid; commit; _ } -> [ ("gid", `Int gid); ("commit", `Bool commit) ]
  | Reconfig_begin { epoch } -> [ ("epoch", `Int epoch) ]
  | Reconfig_switch { epoch; duration } | Reconfig_done { epoch; duration } ->
      [ ("epoch", `Int epoch); ("duration", `Float duration) ]
  | State_transfer { item; src; dst } ->
      [ ("item", `Int item); ("src", `Int src); ("dst", `Int dst) ]
  | Partition_begin { groups } | Partition_heal { groups } -> [ ("groups", `String groups) ]
  | Txn_deadline { gid; _ } -> [ ("gid", `Int gid) ]
  | Stale_read { item; staleness; _ } ->
      [ ("item", `Int item); ("staleness", `Float staleness) ]
  | Span_phase { gid; phase; t0; dur; _ } ->
      [ ("gid", `Int gid); ("phase", `String phase); ("t0", `Float t0); ("dur", `Float dur) ]
  | Suspect { phi; _ } -> [ ("phi", `Float phi) ]
  | Unsuspect { downtime; _ } -> [ ("downtime", `Float downtime) ]
  | Failover_begin { epoch; _ } -> [ ("epoch", `Int epoch) ]
  | Failover_done { epoch; duration; promoted; _ } ->
      [ ("epoch", `Int epoch); ("duration", `Float duration); ("promoted", `Int promoted) ]
  | Corrupt { items; _ } -> [ ("items", `Int items) ]
  | Repair_session { primary; mismatched; _ } ->
      [ ("primary", `Int primary); ("mismatched", `Int mismatched) ]
  | Repair_item { item; src; dst } ->
      [ ("item", `Int item); ("src", `Int src); ("dst", `Int dst) ]
  | Rejoin { repaired; _ } -> [ ("repaired", `Int repaired) ]

let pp ppf e =
  Fmt.pf ppf "@[%.3f %s@%d%a@]" e.time (label e.kind) (site e.kind)
    (Fmt.list ~sep:Fmt.nop (fun ppf (k, v) ->
         match v with
         | `Int n -> Fmt.pf ppf " %s=%d" k n
         | `Float f -> Fmt.pf ppf " %s=%.3f" k f
         | `String s -> Fmt.pf ppf " %s=%s" k s
         | `Bool b -> Fmt.pf ppf " %s=%b" k b))
    (args e.kind)

type row = {
  r_time : float;
  r_active : int;
  r_inflight : int;
  r_commits : int array;
  r_aborts : int array;
  r_lag : float array;
  r_pending : int array;
  r_locks : int array;
  r_waiters : int array;
  r_phi : float array;
}

type t = {
  n_sites : int;
  interval : float;
  phi : bool;
  mutable meta : (string * string) list;
  mutable rev_rows : row list;
  mutable len : int;
}

let create ~n_sites ~interval ?(phi = false) () =
  if n_sites < 1 then invalid_arg "Timeline.create: need at least one site";
  if interval <= 0.0 || not (Float.is_finite interval) then
    invalid_arg "Timeline.create: interval must be positive and finite";
  { n_sites; interval; phi; meta = []; rev_rows = []; len = 0 }

let n_sites t = t.n_sites
let interval t = t.interval
let has_phi t = t.phi
let length t = t.len
let meta t = t.meta
let set_meta t meta = t.meta <- meta

let push t row =
  let check name len =
    if len <> t.n_sites then
      invalid_arg (Printf.sprintf "Timeline.push: %s has %d entries for %d sites" name len t.n_sites)
  in
  check "commits" (Array.length row.r_commits);
  check "aborts" (Array.length row.r_aborts);
  check "lag" (Array.length row.r_lag);
  check "pending" (Array.length row.r_pending);
  check "locks" (Array.length row.r_locks);
  check "waiters" (Array.length row.r_waiters);
  (if t.phi then check "phi" (Array.length row.r_phi)
   else if Array.length row.r_phi <> 0 then
     invalid_arg "Timeline.push: phi column disabled but r_phi is non-empty");
  t.rev_rows <- row :: t.rev_rows;
  t.len <- t.len + 1

let rows t = List.rev t.rev_rows

(* Per-site column groups; `name.N` matches the Stats convention and lets a
   parser recover the site count from the header alone. *)
let header t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "t_ms,active_txns,msgs_inflight";
  let group name =
    for s = 0 to t.n_sites - 1 do
      Buffer.add_string buf (Printf.sprintf ",%s.%d" name s)
    done
  in
  group "commits";
  group "aborts";
  group "lag_ms";
  group "pending";
  group "locks_held";
  group "lock_waiters";
  if t.phi then group "phi";
  Buffer.contents buf

let meta_line t =
  let fields =
    [ ("sites", string_of_int t.n_sites); ("interval_ms", Printf.sprintf "%g" t.interval) ]
    @ t.meta
  in
  "# repdb-timeline v1 "
  ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) fields)

let to_csv t write =
  write (meta_line t);
  write "\n";
  write (header t);
  write "\n";
  List.iter
    (fun r ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "%.3f,%d,%d" r.r_time r.r_active r.r_inflight);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%d" v)) r.r_commits;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%d" v)) r.r_aborts;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.3f" v)) r.r_lag;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%d" v)) r.r_pending;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%d" v)) r.r_locks;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%d" v)) r.r_waiters;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.3f" v)) r.r_phi;
      Buffer.add_char buf '\n';
      write (Buffer.contents buf))
    (rows t)

let to_csv_string t =
  let buf = Buffer.create 4096 in
  to_csv t (Buffer.add_string buf);
  Buffer.contents buf

let to_json_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"sites\":%d,\"interval_ms\":%g" t.n_sites t.interval);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":\"%s\"" (Export.escape k) (Export.escape v)))
    t.meta;
  Buffer.add_string buf ",\"rows\":[";
  let ints a = String.concat "," (List.map string_of_int (Array.to_list a)) in
  let floats a =
    String.concat "," (List.map (Printf.sprintf "%.3f") (Array.to_list a))
  in
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let phi_field =
        if t.phi then Printf.sprintf ",\"phi\":[%s]" (floats r.r_phi) else ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"t_ms\":%.3f,\"active\":%d,\"inflight\":%d,\"commits\":[%s],\"aborts\":[%s],\"lag_ms\":[%s],\"pending\":[%s],\"locks_held\":[%s],\"lock_waiters\":[%s]%s}"
           r.r_time r.r_active r.r_inflight (ints r.r_commits) (ints r.r_aborts)
           (floats r.r_lag) (ints r.r_pending) (ints r.r_locks) (ints r.r_waiters)
           phi_field))
    (rows t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

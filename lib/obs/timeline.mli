(** Fixed-interval time-series samples of cluster gauges and rates.

    A timeline is filled by a simulated-time ticker (see [Driver]): every
    [interval] ms it snapshots per-site replication lag, commit/abort counts
    for the elapsed window, lock-manager occupancy, and global in-flight
    message / active-transaction gauges. Storage is sim-agnostic — the
    sampler computes the values; this module only accumulates rows and
    renders them.

    Output is deterministic: rows are emitted in sample order with fixed
    [%.3f] formatting, so two runs with equal inputs produce byte-identical
    CSV/JSON. *)

type row = {
  r_time : float;  (** sample timestamp, ms *)
  r_active : int;  (** in-flight client transactions, cluster-wide *)
  r_inflight : int;  (** messages sent but not yet delivered *)
  r_commits : int array;  (** per-site commits in this window *)
  r_aborts : int array;  (** per-site aborts in this window *)
  r_lag : float array;  (** per-site replication lag, ms (0 when caught up) *)
  r_pending : int array;  (** per-site propagated updates not yet applied *)
  r_locks : int array;  (** per-site locks currently held *)
  r_waiters : int array;  (** per-site lock requests currently waiting *)
  r_phi : float array;
      (** per-site failure-detector suspicion level (median φ held by the
          other sites about this one); must be empty ([[||]]) when the
          timeline was created without [~phi:true], so heal-off CSVs keep
          their exact historical shape *)
}

type t

(** [~phi:true] (default false) appends a per-site [phi.N] column group:
    rows must then carry an [n_sites]-long [r_phi]. *)
val create : n_sites:int -> interval:float -> ?phi:bool -> unit -> t

val n_sites : t -> int

(** Whether the φ column group is enabled. *)
val has_phi : t -> bool

(** Sampling interval, ms. *)
val interval : t -> float

val length : t -> int

(** Free-form metadata (protocol, seed, …) included in the CSV [#] header
    line and the JSON object. *)
val meta : t -> (string * string) list

val set_meta : t -> (string * string) list -> unit

(** Append a sample. All per-site arrays must have [n_sites] entries. *)
val push : t -> row -> unit

(** Rows in sample order. *)
val rows : t -> row list

(** The CSV column header (no newline):
    [t_ms,active_txns,msgs_inflight,commits.0,…,lock_waiters.N]. *)
val header : t -> string

(** The [#]-prefixed metadata comment line (no newline). *)
val meta_line : t -> string

(** [to_csv t write] — metadata comment, header, then one line per row. *)
val to_csv : t -> (string -> unit) -> unit

val to_csv_string : t -> string
val to_json_string : t -> string

(** Render a run report from a timeline CSV.

    [parse] reads the CSV produced by {!Timeline.to_csv} (tolerating a
    missing [#] metadata line), and the renderers produce either markdown
    with Unicode block sparklines or a self-contained HTML page with inline
    SVG charts — no external assets, suitable for CI artifacts. *)

type t

val parse : string -> (t, string) result
val meta : t -> (string * string) list
val header : t -> string array

(** Rows in sample order. *)
val data : t -> float array list

val n_rows : t -> int

(** [column t name] — the series for an exact column name. *)
val column : t -> string -> float list option

(** [site_columns t prefix] — all [(site, series)] for columns named
    [prefix.N], sorted by site. *)
val site_columns : t -> string -> (int * float list) list

(** [sparkline xs] — [xs] rendered as Unicode block glyphs, downsampled to
    at most [width] (default 60) buckets by taking each bucket's maximum. *)
val sparkline : ?width:int -> float list -> string

val to_markdown : t -> string
val to_html : t -> string

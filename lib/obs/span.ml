type phase = Lock_wait | Prop_wait | Commit

type open_rec = {
  o_gid : int;
  o_site : int;
  o_start : float;
  mutable o_lock : float;
  mutable o_prop : float;
  mutable o_commit : float;
  mutable o_owners : int list;
}

type t = {
  h_lock : Stats.histogram;
  h_exec : Stats.histogram;
  h_prop : Stats.histogram;
  h_commit : Stats.histogram;
  h_think : Stats.histogram;
  trace : Trace.t;
  open_ : (int, open_rec) Hashtbl.t; (* gid -> open attempt *)
  owners : (int, int) Hashtbl.t; (* lock owner (attempt id) -> gid *)
}

let create ~stats ~trace () =
  {
    h_lock = Stats.histogram stats "span.lock";
    h_exec = Stats.histogram stats "span.exec";
    h_prop = Stats.histogram stats "span.prop";
    h_commit = Stats.histogram stats "span.commit";
    h_think = Stats.histogram stats "span.think";
    trace;
    open_ = Hashtbl.create 64;
    owners = Hashtbl.create 64;
  }

let begin_ t ~gid ~site ~now =
  Hashtbl.replace t.open_ gid
    { o_gid = gid; o_site = site; o_start = now; o_lock = 0.0; o_prop = 0.0; o_commit = 0.0;
      o_owners = [] }

let link t ~owner ~gid =
  match Hashtbl.find_opt t.open_ gid with
  | None -> ()
  | Some r ->
      Hashtbl.replace t.owners owner gid;
      r.o_owners <- owner :: r.o_owners

(* Unlinked owners (secondary appliers, participants) fall through silently:
   only client attempts registered via [begin_]/[link] accumulate phases. *)
let add t ~owner phase dur =
  if dur > 0.0 then
    match Hashtbl.find_opt t.owners owner with
    | None -> ()
    | Some gid -> (
        match Hashtbl.find_opt t.open_ gid with
        | None -> ()
        | Some r -> (
            match phase with
            | Lock_wait -> r.o_lock <- r.o_lock +. dur
            | Prop_wait -> r.o_prop <- r.o_prop +. dur
            | Commit -> r.o_commit <- r.o_commit +. dur))

let think t ~site dur = if dur > 0.0 then Stats.observe t.h_think ~site dur

let finish t ~gid ~now =
  match Hashtbl.find_opt t.open_ gid with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.open_ gid;
      List.iter (fun o -> Hashtbl.remove t.owners o) r.o_owners;
      let total = Float.max 0.0 (now -. r.o_start) in
      let accounted = r.o_lock +. r.o_prop +. r.o_commit in
      let exec = Float.max 0.0 (total -. accounted) in
      let site = r.o_site in
      Stats.observe t.h_lock ~site r.o_lock;
      Stats.observe t.h_exec ~site exec;
      Stats.observe t.h_prop ~site r.o_prop;
      Stats.observe t.h_commit ~site r.o_commit;
      if Trace.on t.trace then begin
        (* Lay the phases out back-to-back from the attempt's start so the
           Chrome exporter can render them as nested duration spans. The
           ordering is nominal (lock waits interleave with execution in
           reality); the durations are exact. *)
        let cursor = ref r.o_start in
        List.iter
          (fun (phase, dur) ->
            if dur > 0.0 then begin
              Trace.record t.trace
                (Event.Span_phase { gid; site; phase; t0 = !cursor; dur });
              cursor := !cursor +. dur
            end)
          [ ("lock", r.o_lock); ("exec", exec); ("prop", r.o_prop); ("commit", r.o_commit) ]
      end

let open_count t = Hashtbl.length t.open_

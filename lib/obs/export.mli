(** Trace exporters.

    Two formats:

    - {b JSONL}: one self-describing JSON object per line —
      [{"t":12.5,"e":"lock_wait","site":3,"owner":17,"item":42,"mode":"X"}] —
      convenient for [jq]-style ad-hoc analysis and streaming to stdout.

    - {b Chrome [trace_event]}: a JSON object loadable in
      [chrome://tracing] / Perfetto. Each site becomes one process track;
      transactions appear as async begin/end spans keyed by gid, queue-depth
      samples as counter series, everything else as instant events. *)

(** [jsonl t write] — stream every event through [write], one line each
    (lines include the trailing newline). *)
val jsonl : Trace.t -> (string -> unit) -> unit

val jsonl_to_channel : Trace.t -> out_channel -> unit
val jsonl_to_string : Trace.t -> string

(** [chrome ?n_sites t write] — emit the complete Chrome trace JSON.
    [n_sites] sizes the per-site metadata tracks; inferred from the events
    when omitted. *)
val chrome : ?n_sites:int -> Trace.t -> (string -> unit) -> unit

val chrome_to_channel : ?n_sites:int -> Trace.t -> out_channel -> unit
val chrome_to_string : ?n_sites:int -> Trace.t -> string

(** Trace exporters.

    Two formats:

    - {b JSONL}: one self-describing JSON object per line —
      [{"t":12.5,"e":"lock_wait","site":3,"owner":17,"item":42,"mode":"X"}] —
      convenient for [jq]-style ad-hoc analysis and streaming to stdout.

    - {b Chrome [trace_event]}: a JSON object loadable in
      [chrome://tracing] / Perfetto. Each site becomes one process track;
      transactions appear as async begin/end spans keyed by gid, queue-depth
      samples as counter series, everything else as instant events. *)

(** JSON string-escape [s]: quotes, backslashes, and every control
    character below 0x20 (named escapes for [\n]/[\r]/[\t], [\uXXXX]
    otherwise). Shared by the other [lib/obs] JSON emitters. *)
val escape : string -> string

(** Extra metadata fields ([protocol], [seed], …) for the export's leading
    metadata record, which always carries the trace ring [capacity] and the
    [dropped] event count — so a consumer can tell a complete trace from a
    wrapped one. *)
type meta = (string * [ `Int of int | `Float of float | `String of string | `Bool of bool ]) list

(** [jsonl ?meta t write] — one metadata record
    ([{"meta":{"capacity":…,"dropped":…,…}}]), then every event through
    [write], one line each (lines include the trailing newline). *)
val jsonl : ?meta:meta -> Trace.t -> (string -> unit) -> unit

val jsonl_to_channel : ?meta:meta -> Trace.t -> out_channel -> unit
val jsonl_to_string : ?meta:meta -> Trace.t -> string

(** [chrome ?n_sites ?meta t write] — emit the complete Chrome trace JSON,
    with the metadata record under the top-level [otherData] key. [n_sites]
    sizes the per-site metadata tracks; inferred from the events when
    omitted. Transaction phase spans ({!Event.Span_phase}) render as
    complete duration slices on the origin site's track. *)
val chrome : ?n_sites:int -> ?meta:meta -> Trace.t -> (string -> unit) -> unit

val chrome_to_channel : ?n_sites:int -> ?meta:meta -> Trace.t -> out_channel -> unit
val chrome_to_string : ?n_sites:int -> ?meta:meta -> Trace.t -> string

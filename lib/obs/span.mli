(** Per-transaction lifecycle phase attribution.

    Each client transaction attempt is decomposed into lock wait,
    execution, propagation/backedge wait, and commit phases; client think
    time (retry backoff) is tracked separately. Phases are accumulated on
    an open record keyed by the attempt's gid, opened at [trace_txn_begin]
    time and closed at commit/abort, where the phase durations are fed
    into per-site [Stats] histograms ([span.lock], [span.exec],
    [span.prop], [span.commit], [span.think]) and — when tracing — emitted
    as {!Event.Span_phase} duration events.

    Execution time is derived: [exec = total − lock − prop − commit],
    clamped at 0, so the four phases always sum to the attempt's response
    time.

    Lock managers report waits by lock-owner (attempt) id; {!link} ties
    those ids to the owning gid. Unlinked owners (secondary appliers,
    backedge participants) are ignored. *)

type phase = Lock_wait | Prop_wait | Commit

type t

(** Registers the five [span.*] histograms in [stats]. *)
val create : stats:Stats.t -> trace:Trace.t -> unit -> t

(** Open an attempt record. [now] is the simulated start time. *)
val begin_ : t -> gid:int -> site:int -> now:float -> unit

(** Associate a lock-owner (attempt) id with an open gid. No-op if [gid]
    has no open record. *)
val link : t -> owner:int -> gid:int -> unit

(** Charge [dur] ms of [phase] to the gid linked to [owner]; silently
    ignored for unlinked owners. *)
val add : t -> owner:int -> phase -> float -> unit

(** Observe client think (backoff) time directly at [site]. *)
val think : t -> site:int -> float -> unit

(** Close the attempt: observe all phase histograms and emit trace span
    events. No-op if [gid] has no open record. *)
val finish : t -> gid:int -> now:float -> unit

(** Open (unfinished) attempt records — should be 0 after a drained run. *)
val open_count : t -> int

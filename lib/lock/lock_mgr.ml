module Sim = Repdb_sim.Sim
module Trace = Repdb_obs.Trace
module Event = Repdb_obs.Event
module Stats = Repdb_obs.Stats
module Profile = Repdb_obs.Profile

type item = int
type owner = int
type mode = Shared | Exclusive
type outcome = Granted | Timed_out | Deadlock_victim
type policy = [ `Timeout of float | `Detect of float option ]

type stats = { acquires : int; waits : int; timeouts : int; deadlock_aborts : int }

type request = {
  req_owner : owner;
  req_mode : mode;
  req_item : item;
  upgrade : bool;
  arrival : int;
  mutable state : [ `Waiting | `Done ];
  mutable resume : outcome -> unit;
}

(* The waiter queue is a two-list FIFO: push-back conses onto [q_back],
   upgrades cons onto [q_front], and the head is normalized lazily ([q_back]
   reversed into [q_front] when the front runs dry). Every operation is O(1)
   amortized — the old single-list [queue @ [req]] append was O(n) per
   enqueue, O(n^2) under hot-key contention. [n_live] counts `Waiting
   requests so emptiness checks never walk the queue. *)
type entry = {
  mutable holding : (owner * mode) list;
  mutable q_front : request list; (* head = next to grant; may contain `Done *)
  mutable q_back : request list; (* reversed tail *)
  mutable n_live : int;
}

(* Items are dense small ints (0 .. n_items-1), so the lock table is a flat
   array grown on demand — no hashing, no bucket allocation on the acquire
   fast path, which profiling showed as the hottest non-kernel function.
   [remap] compresses sparse item ids into dense table slots (per-site
   placed-item ranks at scale); the default is the identity. *)
type t = {
  sim : Sim.t;
  policy : policy;
  remap : item -> int;
  mutable entries : entry array; (* indexed by remapped item *)
  held : (owner, (item * mode) list ref) Hashtbl.t; (* for release_all *)
  waiting : (owner, request) Hashtbl.t;
  mutable arrivals : int;
  mutable n_acquires : int;
  mutable n_waits : int;
  mutable n_timeouts : int;
  mutable n_deadlock_aborts : int;
  site : int; (* tag on emitted events; 0 for stand-alone managers *)
  cat : int; (* profiler category for timeout timers *)
  on_wait : owner:owner -> dur:float -> unit;
  trace : Trace.t;
  s_acquires : Stats.counter option;
  s_waits : Stats.counter option;
  s_timeouts : Stats.counter option;
  s_deadlocks : Stats.counter option;
}

let create ~sim ~policy ?(site = 0) ?(trace = Trace.disabled) ?stats ?(remap = Fun.id)
    ?(on_wait = fun ~owner:_ ~dur:_ -> ()) () =
  {
    sim;
    policy;
    remap;
    entries = [||];
    held = Hashtbl.create 64;
    waiting = Hashtbl.create 64;
    arrivals = 0;
    n_acquires = 0;
    n_waits = 0;
    n_timeouts = 0;
    n_deadlock_aborts = 0;
    site;
    cat = Profile.cat (Sim.profile sim) "lock";
    on_wait;
    trace;
    s_acquires = Option.map (fun s -> Stats.counter s "lock.acq") stats;
    s_waits = Option.map (fun s -> Stats.counter s "lock.wait") stats;
    s_timeouts = Option.map (fun s -> Stats.counter s "lock.tmo") stats;
    s_deadlocks = Option.map (fun s -> Stats.counter s "lock.ddl") stats;
  }

let obs_mode = function Shared -> Event.Shared | Exclusive -> Event.Exclusive
let bump c site = match c with Some c -> Stats.incr c ~site | None -> ()

let entry_of t item =
  let slot = t.remap item in
  if slot < 0 then invalid_arg "Lock_mgr: negative item";
  let n = Array.length t.entries in
  if slot >= n then begin
    let ncap = max 64 (max (slot + 1) (2 * n)) in
    let grown =
      Array.init ncap (fun i ->
          if i < n then t.entries.(i)
          else { holding = []; q_front = []; q_back = []; n_live = 0 })
    in
    t.entries <- grown
  end;
  t.entries.(slot)

let record_hold t ~owner item mode =
  match Hashtbl.find_opt t.held owner with
  | Some cell -> cell := (item, mode) :: !cell
  | None -> Hashtbl.replace t.held owner (ref [ (item, mode) ])

let compatible mode holding =
  match mode with
  | Shared -> List.for_all (fun (_, m) -> m = Shared) holding
  | Exclusive -> holding = []

let has_live_queue e = e.n_live > 0

(* First `Waiting request in FIFO order. `Done entries are pruned from the
   front lazily; when the front runs dry the reversed back is normalized in.
   On [Some req], [req] is the head of [e.q_front]. *)
let rec first_live e =
  match e.q_front with
  | r :: rest ->
      if r.state = `Waiting then Some r
      else begin
        e.q_front <- rest;
        first_live e
      end
  | [] ->
      if e.q_back = [] then None
      else begin
        e.q_front <- List.rev e.q_back;
        e.q_back <- [];
        first_live e
      end

let push_back e req =
  e.q_back <- req :: e.q_back;
  e.n_live <- e.n_live + 1

let push_front e req =
  e.q_front <- req :: e.q_front;
  e.n_live <- e.n_live + 1

(* Grant queued requests from the front while possible. An upgrade request is
   grantable when its owner is the sole remaining holder. *)
let rec service t item e =
  match first_live e with
  | None -> ()
  | Some req ->
      let grantable =
        if req.upgrade then
          match e.holding with [ (o, Shared) ] when o = req.req_owner -> true | _ -> false
        else compatible req.req_mode e.holding
      in
      if grantable then begin
        if req.upgrade then e.holding <- [ (req.req_owner, Exclusive) ]
        else e.holding <- (req.req_owner, req.req_mode) :: e.holding;
        record_hold t ~owner:req.req_owner item req.req_mode;
        e.q_front <- List.tl e.q_front;
        e.n_live <- e.n_live - 1;
        req.state <- `Done;
        Hashtbl.remove t.waiting req.req_owner;
        t.n_acquires <- t.n_acquires + 1;
        bump t.s_acquires t.site;
        if Trace.on t.trace then
          Trace.record t.trace
            (Event.Lock_grant
               { site = t.site; owner = req.req_owner; item; mode = obs_mode req.req_mode });
        req.resume Granted;
        service t item e
      end

(* Wake a waiting request with a failure outcome and let successors advance. *)
let fail_request t req outcome =
  if req.state = `Waiting then begin
    req.state <- `Done;
    Hashtbl.remove t.waiting req.req_owner;
    (match outcome with
    | Timed_out ->
        t.n_timeouts <- t.n_timeouts + 1;
        bump t.s_timeouts t.site;
        if Trace.on t.trace then
          Trace.record t.trace
            (Event.Lock_timeout { site = t.site; owner = req.req_owner; item = req.req_item })
    | Deadlock_victim ->
        t.n_deadlock_aborts <- t.n_deadlock_aborts + 1;
        bump t.s_deadlocks t.site;
        if Trace.on t.trace then
          Trace.record t.trace
            (Event.Lock_deadlock { site = t.site; owner = req.req_owner; item = req.req_item })
    | Granted -> assert false);
    let e = entry_of t req.req_item in
    (* The request stays in the queue as a `Done tombstone (pruned lazily by
       [first_live]), but it no longer counts as live. *)
    e.n_live <- e.n_live - 1;
    req.resume outcome;
    service t req.req_item e
  end

(* Owners a blocked request waits behind: current holders plus every live
   request queued ahead of it (granting is FIFO, so those block it too). *)
let blockers_of t req =
  let e = entry_of t req.req_item in
  let ahead =
    let rec take acc = function
      | [] -> acc
      | r :: _ when r == req -> acc
      | r :: rest -> take (if r.state = `Waiting then r.req_owner :: acc else acc) rest
    in
    take [] (e.q_front @ List.rev e.q_back)
  in
  let holders = List.map fst e.holding in
  List.sort_uniq compare (List.filter (fun o -> o <> req.req_owner) (holders @ ahead))

let waiting_for t ~owner =
  match Hashtbl.find_opt t.waiting owner with None -> [] | Some req -> blockers_of t req

(* Detect a waits-for cycle reachable from [start]; return its nodes. *)
let find_cycle t start =
  let on_stack = Hashtbl.create 16 in
  let visited = Hashtbl.create 16 in
  let exception Cycle of owner list in
  let rec dfs stack o =
    if Hashtbl.mem on_stack o then begin
      (* Cut the stack down to the cycle. *)
      let rec cut acc = function
        | [] -> acc
        | x :: rest -> if x = o then x :: acc else cut (x :: acc) rest
      in
      raise (Cycle (cut [] stack))
    end;
    if not (Hashtbl.mem visited o) then begin
      Hashtbl.replace visited o ();
      Hashtbl.replace on_stack o ();
      List.iter (dfs (o :: stack)) (waiting_for t ~owner:o);
      Hashtbl.remove on_stack o
    end
  in
  try
    dfs [] start;
    None
  with Cycle nodes -> Some nodes

(* Abort the latest-arriving waiter in each cycle through [start] until no
   cycle remains (the fair victim policy from Section 2 of the paper). *)
let rec resolve_deadlocks t start =
  match find_cycle t start with
  | None -> ()
  | Some nodes ->
      let waiting_nodes = List.filter_map (Hashtbl.find_opt t.waiting) nodes in
      (match waiting_nodes with
      | [] -> () (* cannot happen: every node in a cycle is waiting *)
      | first :: rest ->
          let victim = List.fold_left (fun a r -> if r.arrival > a.arrival then r else a) first rest in
          fail_request t victim Deadlock_victim;
          if victim.req_owner <> start then resolve_deadlocks t start)

let trace_grant t ~owner item mode =
  if Trace.on t.trace then
    Trace.record t.trace (Event.Lock_grant { site = t.site; owner; item; mode = obs_mode mode })

let rec acquire t ~owner item mode =
  let e = entry_of t item in
  if Trace.on t.trace then
    Trace.record t.trace (Event.Lock_request { site = t.site; owner; item; mode = obs_mode mode });
  (* Mode this owner already holds on [item], read off the (short) holder
     list — no per-owner hash lookups, no option/tuple allocation on the
     uncontended path. *)
  let rec current_mode = function
    | [] -> None
    | (o, m) :: rest -> if o = owner then Some m else current_mode rest
  in
  match (current_mode e.holding, mode) with
  | Some Exclusive, _ | Some Shared, Shared ->
      t.n_acquires <- t.n_acquires + 1;
      bump t.s_acquires t.site;
      trace_grant t ~owner item mode;
      Granted (* re-entrant *)
  | Some Shared, Exclusive -> begin
      (* Upgrade: immediate if sole holder, else wait at the queue front. *)
      match e.holding with
      | [ (o, Shared) ] when o = owner ->
          e.holding <- [ (owner, Exclusive) ];
          record_hold t ~owner item Exclusive;
          t.n_acquires <- t.n_acquires + 1;
          bump t.s_acquires t.site;
          trace_grant t ~owner item Exclusive;
          Granted
      | _ ->
          t.arrivals <- t.arrivals + 1;
          let req =
            {
              req_owner = owner;
              req_mode = Exclusive;
              req_item = item;
              upgrade = true;
              arrival = t.arrivals;
              state = `Waiting;
              resume = ignore;
            }
          in
          push_front e req;
          wait t req
    end
  | None, _ ->
      if (not (has_live_queue e)) && compatible mode e.holding then begin
        e.holding <- (owner, mode) :: e.holding;
        record_hold t ~owner item mode;
        t.n_acquires <- t.n_acquires + 1;
        bump t.s_acquires t.site;
        trace_grant t ~owner item mode;
        Granted
      end
      else begin
        t.arrivals <- t.arrivals + 1;
        let req =
          {
            req_owner = owner;
            req_mode = mode;
            req_item = item;
            upgrade = false;
            arrival = t.arrivals;
            state = `Waiting;
            resume = ignore;
          }
        in
        push_back e req;
        wait t req
      end

and wait t req =
  t.n_waits <- t.n_waits + 1;
  bump t.s_waits t.site;
  if Trace.on t.trace then
    Trace.record t.trace
      (Event.Lock_wait
         { site = t.site; owner = req.req_owner; item = req.req_item; mode = obs_mode req.req_mode });
  Hashtbl.replace t.waiting req.req_owner req;
  let t0 = Sim.now t.sim in
  let outcome =
    Sim.suspend (fun resume ->
        req.resume <- resume;
        (match t.policy with
        | `Timeout d -> Sim.after ~cat:t.cat t.sim d (fun () -> fail_request t req Timed_out)
        | `Detect fallback ->
            (match fallback with
            | Some d -> Sim.after ~cat:t.cat t.sim d (fun () -> fail_request t req Timed_out)
            | None -> ());
            resolve_deadlocks t req.req_owner))
  in
  t.on_wait ~owner:req.req_owner ~dur:(Sim.now t.sim -. t0);
  outcome

let release_all t ~owner =
  (* A pending wait by this owner is aborted first so its process wakes. *)
  (match Hashtbl.find_opt t.waiting owner with
  | Some req -> fail_request t req Deadlock_victim
  | None -> ());
  match Hashtbl.find_opt t.held owner with
  | None -> ()
  | Some cell ->
      if Trace.on t.trace then Trace.record t.trace (Event.Lock_release { site = t.site; owner });
      Hashtbl.remove t.held owner;
      (* The list may name an item twice (S then X after an upgrade); the
         second pass just re-services an already-clean entry. *)
      List.iter
        (fun (item, _) ->
          let e = entry_of t item in
          e.holding <- List.filter (fun (o, _) -> o <> owner) e.holding;
          service t item e)
        !cell

let holders t item =
  let slot = t.remap item in
  if slot >= 0 && slot < Array.length t.entries then t.entries.(slot).holding else []

let abort_waiter t ~owner =
  match Hashtbl.find_opt t.waiting owner with
  | None -> false
  | Some req ->
      fail_request t req Deadlock_victim;
      true

let holds t ~owner item =
  let slot = t.remap item in
  if slot < 0 || slot >= Array.length t.entries then None
  else
    let rec go = function
      | [] -> None
      | (o, m) :: rest -> if o = owner then Some m else go rest
    in
    go t.entries.(slot).holding

let stats t =
  {
    acquires = t.n_acquires;
    waits = t.n_waits;
    timeouts = t.n_timeouts;
    deadlock_aborts = t.n_deadlock_aborts;
  }

let locks_held t = Array.fold_left (fun acc e -> acc + List.length e.holding) 0 t.entries
let lock_waiters t = Hashtbl.length t.waiting

(** Per-site lock manager implementing strict two-phase locking.

    The variant of 2PL assumed by the paper: a transaction releases no lock
    (read or write) until after it has committed or aborted, which the
    protocols enforce by calling {!release_all} only at commit/abort.

    Granting is strictly FIFO — a new request queues behind existing waiters
    even when it is compatible with the current holders — except that
    re-entrant requests and shared-to-exclusive upgrades are served
    immediately when possible (upgrades wait at the front of the queue
    otherwise).

    Two deadlock-handling policies are provided:
    - [`Timeout d]: a wait that is not granted within [d] ms returns
      {!constructor-Timed_out}. This is the paper's mechanism (50 ms default)
      and the only one that also resolves {e distributed} deadlocks.
    - [`Detect d]: maintain the local waits-for graph; when a new wait closes
      a cycle, abort the {e latest-arriving} waiter in the cycle (the fair
      victim-selection policy suggested in Section 2 of the paper). Local
      detection cannot see distributed deadlocks, so an optional timeout
      [d] backstops waits that detection never resolves. *)

type item = int

type owner = int
(** Lock owners are (sub)transaction attempt identifiers, unique cluster-wide
    per execution attempt. *)

type mode = Shared | Exclusive

type outcome =
  | Granted
  | Timed_out  (** Wait exceeded the timeout ([`Timeout] policy). *)
  | Deadlock_victim  (** Chosen as victim by detection, or woken by {!abort_waiter}. *)

type policy = [ `Timeout of float | `Detect of float option ]

type stats = {
  acquires : int;  (** Requests granted immediately or after waiting. *)
  waits : int;  (** Requests that had to block. *)
  timeouts : int;
  deadlock_aborts : int;
}

type t

(** [create ~sim ~policy ()] — a fresh lock manager for one site.

    Observability: when [trace] is enabled, every request, grant, wait,
    timeout, deadlock victimisation and release is recorded as a typed event
    tagged with [site] (default [0]); when [stats] is given, per-site
    ["lock.acq"] / ["lock.wait"] / ["lock.tmo"] / ["lock.ddl"] counters are
    registered and bumped. [on_wait ~owner ~dur] fires after every blocked
    request resolves (granted or failed) with the simulated ms it waited —
    the span layer's lock-wait attribution hook.

    [remap] maps external item ids to dense lock-table slots (default:
    identity). Under partial replication a site only ever locks the items
    placed there, so remapping to the site's placed-item rank keeps the flat
    table at |placed| entries instead of max-item-id. The function must be
    injective on the items actually locked; it may raise to flag a lock
    request for an item the site should never touch. *)
val create :
  sim:Repdb_sim.Sim.t ->
  policy:policy ->
  ?site:int ->
  ?trace:Repdb_obs.Trace.t ->
  ?stats:Repdb_obs.Stats.t ->
  ?remap:(item -> int) ->
  ?on_wait:(owner:owner -> dur:float -> unit) ->
  unit ->
  t

(** [acquire t ~owner item mode] blocks the calling process until the lock is
    granted or the wait fails. Re-entrant acquisition and S→X upgrade are
    supported. Strict 2PL: a successful [acquire] is only undone by
    {!release_all}. *)
val acquire : t -> owner:owner -> item -> mode -> outcome

(** [release_all t ~owner] releases every lock held by [owner] and cancels
    any wait it has pending, then grants newly compatible queued requests. *)
val release_all : t -> owner:owner -> unit

(** Current holders of [item] with their modes (empty if unlocked). *)
val holders : t -> item -> (owner * mode) list

(** [waiting_for t ~owner] — if [owner] is blocked, the owners it transitively
    waits behind on that item (holders plus incompatible queued-ahead
    requests); [[]] if not waiting. *)
val waiting_for : t -> owner:owner -> owner list

(** [abort_waiter t ~owner] wakes a blocked [owner] with
    {!constructor-Deadlock_victim}; no-op if it is not waiting. Used by the
    BackEdge protocol to break global deadlocks by victimising a primary that
    is parked waiting for its special subtransaction message. *)
val abort_waiter : t -> owner:owner -> bool

(** [holds t ~owner item] — does [owner] currently hold a lock on [item]? *)
val holds : t -> owner:owner -> item -> mode option

val stats : t -> stats

(** Total locks currently held (for invariant checks in tests). *)
val locks_held : t -> int

(** Requests currently blocked. *)
val lock_waiters : t -> int

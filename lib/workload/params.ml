type retry_policy =
  | No_retry
  | Backoff of { base : float; multiplier : float; cap : float; max_retries : int }

let default_backoff =
  Backoff { base = 1.0; multiplier = 2.0; cap = 64.0; max_retries = 1_000 }

let string_of_retry = function
  | No_retry -> "off"
  | Backoff { base; multiplier; cap; max_retries } ->
      Printf.sprintf "backoff(base=%g,x%g,cap=%g,max=%d)" base multiplier cap max_retries

type t = {
  n_sites : int;
  n_items : int;
  replication_prob : float;
  site_prob : float;
  backedge_prob : float;
  ops_per_txn : int;
  threads_per_site : int;
  txns_per_thread : int;
  read_op_prob : float;
  read_txn_prob : float;
  hot_access_prob : float;
  hot_item_fraction : float;
  zipf_theta : float;
  latency : float;
  lock_timeout : float;
  deadlock_policy : [ `Timeout | `Detect ];
  n_machines : int;
  straggler_machine : int;
  straggler_factor : float;
  cpu_op : float;
  cpu_commit : float;
  cpu_msg : float;
  seed : int;
  retry : retry_policy;
  txn_deadline : float;
  stale_reads : float;
  record_history : bool;
  epoch_period : float;
  dummy_idle : float;
  faults : Repdb_fault.Fault.schedule;
  reconfig : Repdb_reconfig.Reconfig.plan;
  timeline_every : float;
  profile : bool;
  batch_size : int;
  batch_linger_ms : float;
  occ_epoch_ms : float;
  heal : bool;
  heartbeat_every : float;
  phi_threshold : float;
  anti_entropy_every : float;
}

let default =
  {
    n_sites = 9;
    n_items = 200;
    replication_prob = 0.2;
    site_prob = 0.5;
    backedge_prob = 0.2;
    ops_per_txn = 10;
    threads_per_site = 3;
    txns_per_thread = 300;
    read_op_prob = 0.7;
    read_txn_prob = 0.5;
    hot_access_prob = 0.0;
    hot_item_fraction = 0.2;
    zipf_theta = 0.0;
    latency = 0.15;
    lock_timeout = 50.0;
    deadlock_policy = `Timeout;
    n_machines = 3;
    straggler_machine = -1;
    straggler_factor = 1.0;
    cpu_op = 0.05;
    cpu_commit = 0.1;
    cpu_msg = 0.5;
    seed = 42;
    retry = No_retry;
    txn_deadline = 0.0;
    stale_reads = 0.0;
    record_history = false;
    epoch_period = 100.0;
    dummy_idle = 50.0;
    faults = Repdb_fault.Fault.empty;
    reconfig = Repdb_reconfig.Reconfig.empty;
    timeline_every = 0.0;
    profile = false;
    batch_size = 1;
    batch_linger_ms = 0.0;
    occ_epoch_ms = 10.0;
    heal = false;
    heartbeat_every = 25.0;
    phi_threshold = 8.0;
    anti_entropy_every = 200.0;
  }

let table1 t =
  [
    ("Number of Sites", "m", string_of_int t.n_sites, "3 - 15");
    ("Number of Items", "n", string_of_int t.n_items, "");
    ("Replication Probability", "r", Printf.sprintf "%g" t.replication_prob, "0 - 1");
    ("Site Probability", "s", Printf.sprintf "%g" t.site_prob, "");
    ("Backedge Probability", "b", Printf.sprintf "%g" t.backedge_prob, "0 - 1");
    ("Operations/Transaction", "", string_of_int t.ops_per_txn, "");
    ("Threads/Site", "", string_of_int t.threads_per_site, "1 - 5");
    ("Transactions/Thread", "", string_of_int t.txns_per_thread, "");
    ("Read Operation Probability", "", Printf.sprintf "%g" t.read_op_prob, "0 - 1");
    ("Read Transaction Probability", "", Printf.sprintf "%g" t.read_txn_prob, "0 - 1");
    ("Network Latency", "", Printf.sprintf "Approx %g millisec" t.latency, "0.15 - 100 millisec");
    ("Deadlock Timeout Interval", "", Printf.sprintf "%g millisec" t.lock_timeout, "");
  ]

let pp ppf t =
  Fmt.pf ppf
    "@[<v>m=%d n=%d r=%g s=%g b=%g ops=%d threads=%d txns=%d read_op=%g read_txn=%g@ \
     latency=%gms timeout=%gms machines=%d cpu(op=%g commit=%g msg=%g) seed=%d retry=%s@ \
     deadline=%gms stale_reads=%gms batch=%d/%gms zipf=%g occ_epoch=%gms heal=%s faults=%a@ \
     reconfig=%a@]"
    t.n_sites t.n_items t.replication_prob t.site_prob t.backedge_prob t.ops_per_txn
    t.threads_per_site t.txns_per_thread t.read_op_prob t.read_txn_prob t.latency
    t.lock_timeout t.n_machines t.cpu_op t.cpu_commit t.cpu_msg t.seed
    (string_of_retry t.retry) t.txn_deadline t.stale_reads t.batch_size t.batch_linger_ms
    t.zipf_theta t.occ_epoch_ms
    (if t.heal then
       Printf.sprintf "on(hb=%g,phi=%g,ae=%g)" t.heartbeat_every t.phi_threshold
         t.anti_entropy_every
     else "off")
    Repdb_fault.Fault.pp t.faults Repdb_reconfig.Reconfig.pp t.reconfig

let validate t =
  let prob name v =
    if v < 0.0 || v > 1.0 then invalid_arg (Printf.sprintf "Params: %s=%g not in [0,1]" name v)
  in
  let positive name v =
    if v <= 0 then invalid_arg (Printf.sprintf "Params: %s=%d must be positive" name v)
  in
  let positive_f name v =
    if v < 0.0 then invalid_arg (Printf.sprintf "Params: %s=%g must be >= 0" name v)
  in
  positive "n_sites" t.n_sites;
  positive "n_items" t.n_items;
  positive "ops_per_txn" t.ops_per_txn;
  positive "threads_per_site" t.threads_per_site;
  positive "txns_per_thread" t.txns_per_thread;
  positive "n_machines" t.n_machines;
  prob "replication_prob" t.replication_prob;
  prob "site_prob" t.site_prob;
  prob "backedge_prob" t.backedge_prob;
  prob "read_op_prob" t.read_op_prob;
  prob "read_txn_prob" t.read_txn_prob;
  prob "hot_access_prob" t.hot_access_prob;
  prob "hot_item_fraction" t.hot_item_fraction;
  if t.hot_access_prob > 0.0 && t.hot_item_fraction = 0.0 then
    invalid_arg "Params: hot_item_fraction must be positive when hot_access_prob > 0";
  if t.zipf_theta < 0.0 || t.zipf_theta >= 1.0 then
    invalid_arg (Printf.sprintf "Params: zipf_theta=%g not in [0,1)" t.zipf_theta);
  if t.straggler_factor < 1.0 then invalid_arg "Params: straggler_factor must be >= 1";
  if t.straggler_machine >= t.n_machines then
    invalid_arg "Params: straggler_machine out of range";
  positive_f "latency" t.latency;
  if t.lock_timeout <= 0.0 then invalid_arg "Params: lock_timeout must be > 0";
  positive_f "cpu_op" t.cpu_op;
  positive_f "cpu_commit" t.cpu_commit;
  positive_f "cpu_msg" t.cpu_msg;
  positive_f "txn_deadline" t.txn_deadline;
  if not (Float.is_finite t.txn_deadline) then invalid_arg "Params: txn_deadline must be finite";
  positive_f "stale_reads" t.stale_reads;
  (match t.retry with
  | No_retry -> ()
  | Backoff { base; multiplier; cap; max_retries } ->
      if base <= 0.0 || not (Float.is_finite base) then
        invalid_arg "Params: backoff base must be > 0";
      if multiplier < 1.0 then invalid_arg "Params: backoff multiplier must be >= 1";
      if cap < base then invalid_arg "Params: backoff cap must be >= base";
      if max_retries < 0 then invalid_arg "Params: backoff max_retries must be >= 0");
  if t.timeline_every < 0.0 || not (Float.is_finite t.timeline_every) then
    invalid_arg "Params: timeline_every must be >= 0 and finite";
  if t.epoch_period <= 0.0 then invalid_arg "Params: epoch_period must be > 0";
  if t.dummy_idle <= 0.0 then invalid_arg "Params: dummy_idle must be > 0";
  positive "batch_size" t.batch_size;
  if t.batch_linger_ms < 0.0 || not (Float.is_finite t.batch_linger_ms) then
    invalid_arg "Params: batch_linger_ms must be >= 0 and finite";
  if t.occ_epoch_ms <= 0.0 || not (Float.is_finite t.occ_epoch_ms) then
    invalid_arg "Params: occ_epoch_ms must be > 0 and finite";
  if t.heartbeat_every <= 0.0 || not (Float.is_finite t.heartbeat_every) then
    invalid_arg "Params: heartbeat_every must be > 0 and finite";
  if t.phi_threshold <= 0.0 || not (Float.is_finite t.phi_threshold) then
    invalid_arg "Params: phi_threshold must be > 0 and finite";
  if t.anti_entropy_every <= 0.0 || not (Float.is_finite t.anti_entropy_every) then
    invalid_arg "Params: anti_entropy_every must be > 0 and finite";
  if t.heal && t.n_sites < 2 then invalid_arg "Params: heal needs at least two sites";
  if t.faults.corruptions <> [] && not t.heal then
    invalid_arg "Params: corrupt@ fault clauses need --heal (only anti-entropy can see them)";
  Repdb_fault.Fault.validate ~n_sites:t.n_sites t.faults;
  Repdb_reconfig.Reconfig.validate ~n_sites:t.n_sites ~n_items:t.n_items t.reconfig

(** Data distribution (Section 5.2 of the paper).

    Primary copies are spread uniformly over the [m] sites. Of the primaries
    at each site, a fraction [r] is replicated. For a replicated item with
    primary at site [si]: with probability [b] every other site is a
    candidate for holding a replica, and with probability [1-b] only sites
    {e following} [si] in the total site order are; each candidate then
    receives a replica with probability [s]. With the chain propagation order
    used by the evaluated BackEdge variant, an edge [si -> sj] of the copy
    graph with [j < i] is a backedge. *)

type t = private {
  n_sites : int;
  n_items : int;
  primary : int array;  (** item -> primary site. *)
  replicas : int list array;  (** item -> secondary sites, ascending. *)
  graph : Repdb_graph.Digraph.t;  (** memoized copy graph; treat as read-only. *)
  backedge_list : (int * int) list;  (** memoized backedges. *)
}

(** [make ~n_sites ~n_items ~primary ~replicas] builds a placement and
    eagerly computes the copy-graph and backedge memos (so a value can be
    shared read-only across domains with no lazy initialization race). *)
val make : n_sites:int -> n_items:int -> primary:int array -> replicas:int list array -> t

(** [generate rng params] draws a placement. *)
val generate : Repdb_sim.Rng.t -> Params.t -> t

(** [apply_step t step] — a fresh placement with one reconfiguration step
    applied (memos recomputed). Primaries never move. Redundant operations
    (adding an existing copy, dropping an absent one, rebalancing onto the
    primary) are no-ops; a rebalance moves every replica held at [from_site]
    to [to_site]. *)
val apply_step : t -> Repdb_reconfig.Reconfig.step -> t

(** Items whose primary copy is at [site], ascending. *)
val primaries_at : t -> int -> int list

(** Items placed at [site] (primary or replica), ascending. *)
val placed_at : t -> int -> int list

(** [has_copy t ~site item]. *)
val has_copy : t -> site:int -> int -> bool

(** [is_primary t ~site item]. *)
val is_primary : t -> site:int -> int -> bool

(** The memoized copy graph: edge [si -> sj] iff some item has its primary at
    [si] and a replica at [sj]. O(1); do not mutate the result. *)
val copy_graph : t -> Repdb_graph.Digraph.t

(** Memoized backedges of the copy graph under the identity site order (the
    order used by the chain tree): edges [si -> sj] with [j < i]. O(1). *)
val backedges : t -> (int * int) list

(** Number of replicas in the system (secondary copies, excluding
    primaries). *)
val n_replicas : t -> int

(** Number of distinct replicated items. *)
val n_replicated_items : t -> int

val pp : Format.formatter -> t -> unit

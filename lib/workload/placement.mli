(** Data distribution (Section 5.2 of the paper).

    Primary copies are spread uniformly over the [m] sites. Of the primaries
    at each site, a fraction [r] is replicated. For a replicated item with
    primary at site [si]: with probability [b] every other site is a
    candidate for holding a replica, and with probability [1-b] only sites
    {e following} [si] in the total site order are; each candidate then
    receives a replica with probability [s]. With the chain propagation order
    used by the evaluated BackEdge variant, an edge [si -> sj] of the copy
    graph with [j < i] is a backedge.

    Representation: per-item replica sets are {e sorted int arrays} and the
    per-site item indices are precomputed once at construction, so membership
    is O(log r) with no allocation and [placed_at]/[primaries_at] are O(1)
    array slices — the layout that keeps partial-replication clusters of
    hundreds of sites and 100k+ items cheap on every protocol apply path. *)

type t = private {
  n_sites : int;
  n_items : int;
  primary : int array;  (** item -> primary site. *)
  replicas : int array array;
      (** item -> secondary sites, sorted ascending. Treat as read-only. *)
  placed : int array array;
      (** site -> items placed there (primary or replica), ascending. *)
  prims : int array array;  (** site -> items whose primary is there, ascending. *)
  graph : Repdb_graph.Digraph.t;  (** memoized copy graph; treat as read-only. *)
  backedge_list : (int * int) list;  (** memoized backedges. *)
  edge_mult : (int, int) Hashtbl.t;
      (** copy-graph edge [(u, v)] packed as [u * n_sites + v] -> number of
          items contributing it; the incremental [apply_step] memo. Treat as
          read-only. *)
}

(** [make ~n_sites ~n_items ~primary ~replicas] builds a placement and
    eagerly computes the copy-graph, backedge and per-site index memos (so a
    value can be shared read-only across domains with no lazy initialization
    race). Replica lists need not be sorted; duplicates and the item's own
    primary site are dropped. *)
val make : n_sites:int -> n_items:int -> primary:int array -> replicas:int list array -> t

(** [generate rng params] draws a placement. *)
val generate : Repdb_sim.Rng.t -> Params.t -> t

(** [apply_step t step] — a placement with one reconfiguration step applied.
    Incremental: only the touched item rows, site rows and crossed copy-graph
    edges are rebuilt (everything untouched is shared with [t]); a step that
    changes nothing returns [t] itself. Primaries never move. Redundant
    operations (adding an existing copy, dropping an absent one, rebalancing
    onto the primary) are no-ops; a rebalance moves every replica held at
    [from_site] to [to_site]. *)
val apply_step : t -> Repdb_reconfig.Reconfig.step -> t

(** Items whose primary copy is at [site], ascending. O(1): the precomputed
    slice itself — do not mutate. *)
val primaries_at : t -> int -> int array

(** Items placed at [site] (primary or replica), ascending. O(1): the
    precomputed slice itself — do not mutate. *)
val placed_at : t -> int -> int array

(** [has_copy t ~site item] — primary or replica at [site]. O(log r). *)
val has_copy : t -> site:int -> int -> bool

(** [has_replica t ~site item] — secondary copy at [site] (the primary does
    not count). O(log r). *)
val has_replica : t -> site:int -> int -> bool

(** [is_primary t ~site item]. *)
val is_primary : t -> site:int -> int -> bool

(** [placed_index t ~site item] — the rank of [item] in [placed_at t site],
    or [-1] if not placed there. O(log p); the dense-slot remap used by
    per-site lock tables at scale. *)
val placed_index : t -> site:int -> int -> int

(** The memoized copy graph: edge [si -> sj] iff some item has its primary at
    [si] and a replica at [sj]. O(1); do not mutate the result. *)
val copy_graph : t -> Repdb_graph.Digraph.t

(** Memoized backedges of the copy graph under the identity site order (the
    order used by the chain tree): edges [si -> sj] with [j < i]. O(1). *)
val backedges : t -> (int * int) list

(** Number of replicas in the system (secondary copies, excluding
    primaries). *)
val n_replicas : t -> int

(** Number of distinct replicated items. *)
val n_replicated_items : t -> int

val pp : Format.formatter -> t -> unit

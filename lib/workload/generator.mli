(** Transaction generation (Section 5.2 of the paper).

    Each transaction is a sequence of [ops_per_txn] operations. With
    probability [read_txn_prob] the transaction is read-only; otherwise each
    operation is a read with probability [read_op_prob]. Reads pick uniformly
    among the items placed at the originating site; writes pick uniformly
    among the items whose primary copy is there (the system model only allows
    updating local primaries). *)

type t

(** [create rng params placement] precomputes per-site item pools. *)
val create : Repdb_sim.Rng.t -> Params.t -> Placement.t -> t

(** [refresh t placement] rebuilds the per-site pools against a reconfigured
    placement. Pool contents change but no RNG draw is consumed, so the
    transaction stream stays aligned across protocols; called by the
    reconfiguration coordinator while clients are stalled at the epoch
    barrier. *)
val refresh : t -> Placement.t -> unit

(** [gen t ~site] draws the next transaction originating at [site].
    If the site has no items to read the transaction is empty; write ops fall
    back to reads when the site has no local primaries. *)
val gen : t -> site:int -> Repdb_txn.Txn.spec

(** [gen_with t rng ~site] — like {!gen} but drawing from an explicit stream,
    so each client thread can own an independent, protocol-independent
    sequence (the driver uses this to present identical workloads to every
    protocol). *)
val gen_with : t -> Repdb_sim.Rng.t -> site:int -> Repdb_txn.Txn.spec

(** Item pools, exposed for tests: [readable t site] are items placed at the
    site; [writable t site] the local primaries. *)
val readable : t -> int -> int array

val writable : t -> int -> int array

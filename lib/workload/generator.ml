module Rng = Repdb_sim.Rng
module Txn = Repdb_txn.Txn

type t = {
  rng : Rng.t;
  params : Params.t;
  mutable readable : int array array;
  mutable writable : int array array;
  (* Per-site cumulative Zipf weight tables over each pool, built lazily on
     first use (only when [zipf_theta > 0]) and invalidated by [refresh]:
     the pools change with the placement, so rank -> item does too. *)
  mutable zipf_read : float array option array;
  mutable zipf_write : float array option array;
}

(* The pools are the placement's own precomputed per-site slices (read-only
   by contract), so refreshing after a reconfiguration copies pointers, not
   item lists. *)
let pools (params : Params.t) placement =
  let readable = Array.init params.n_sites (fun site -> Placement.placed_at placement site) in
  let writable = Array.init params.n_sites (fun site -> Placement.primaries_at placement site) in
  (readable, writable)

let create rng (params : Params.t) placement =
  let readable, writable = pools params placement in
  {
    rng;
    params;
    readable;
    writable;
    zipf_read = Array.make params.n_sites None;
    zipf_write = Array.make params.n_sites None;
  }

let refresh t placement =
  let readable, writable = pools t.params placement in
  t.readable <- readable;
  t.writable <- writable;
  Array.fill t.zipf_read 0 (Array.length t.zipf_read) None;
  Array.fill t.zipf_write 0 (Array.length t.zipf_write) None

(* Cumulative weights 1/(rank+1)^theta over a pool; item ids are sorted, so
   rank 0 — the smallest id in the pool — is the hottest key, stable across
   protocols and runs. *)
let zipf_table theta pool =
  let n = Array.length pool in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for rank = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (rank + 1)) theta);
    cum.(rank) <- !acc
  done;
  cum

let zipf_pick rng cum pool =
  let n = Array.length cum in
  let u = Rng.float rng *. cum.(n - 1) in
  (* First rank whose cumulative weight covers the draw. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  pool.(!lo)

let gen_with t rng ~site =
  let p = t.params in
  let readable = t.readable.(site) and writable = t.writable.(site) in
  if Array.length readable = 0 then { Txn.origin = site; ops = [] }
  else begin
    let read_only = Rng.bool rng p.read_txn_prob in
    (* Transactions touch distinct items: rereading — and in particular
       writing an item already read, which would force a shared-to-exclusive
       upgrade and make every concurrent pair of such transactions deadlock —
       is resampled away (best effort when the pool is small). *)
    let chosen = Hashtbl.create p.ops_per_txn in
    (* Hotspot skew: with probability [hot_access_prob], draw from the first
       [hot_item_fraction] of the pool (item ids are sorted, so the hot set
       is stable across protocols and runs). *)
    let pick_skewed pool =
      if p.zipf_theta > 0.0 then begin
        let cache = if pool == readable then t.zipf_read else t.zipf_write in
        let cum =
          match cache.(site) with
          | Some cum -> cum
          | None ->
              let cum = zipf_table p.zipf_theta pool in
              cache.(site) <- Some cum;
              cum
        in
        zipf_pick rng cum pool
      end
      else begin
        let n = Array.length pool in
        let hot = max 1 (int_of_float (ceil (p.hot_item_fraction *. float_of_int n))) in
        if p.hot_access_prob > 0.0 && Rng.bool rng p.hot_access_prob then pool.(Rng.int rng hot)
        else Rng.pick rng pool
      end
    in
    let pick_distinct pool =
      let rec go tries =
        let item = pick_skewed pool in
        if (not (Hashtbl.mem chosen item)) || tries >= 20 then begin
          Hashtbl.replace chosen item ();
          item
        end
        else go (tries + 1)
      in
      go 0
    in
    let gen_op () =
      let is_read = read_only || Array.length writable = 0 || Rng.bool rng p.read_op_prob in
      if is_read then Txn.Read (pick_distinct readable) else Txn.Write (pick_distinct writable)
    in
    let ops = List.init p.ops_per_txn (fun _ -> gen_op ()) in
    (* Canonical item order: locks are then acquired ascending, which rules
       out local deadlocks between transactions at the same site (distributed
       deadlocks — PSL remote reads, BackEdge waits — remain possible, as in
       the paper). *)
    let item_of = function Txn.Read i | Txn.Write i -> i in
    let ops = List.sort (fun a b -> compare (item_of a) (item_of b)) ops in
    (* [pick_distinct] is best-effort: with a tiny or heavily skewed pool it
       gives up after 20 tries and returns a duplicate, and a Read + Write of
       the same item would force exactly the shared-to-exclusive upgrade the
       distinct-items rule exists to prevent (two such transactions at one
       site deadlock against each other). Collapse duplicates after the
       canonical sort, a Write absorbing a Read of the same item. *)
    let rec dedup = function
      | a :: b :: rest when item_of a = item_of b ->
          let keep =
            match (a, b) with
            | (Txn.Write _ as w), _ | _, (Txn.Write _ as w) -> w
            | (Txn.Read _ as r), Txn.Read _ -> r
          in
          dedup (keep :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    { Txn.origin = site; ops = dedup ops }
  end

let gen t ~site = gen_with t t.rng ~site

let readable t site = t.readable.(site)
let writable t site = t.writable.(site)

module Rng = Repdb_sim.Rng
module Digraph = Repdb_graph.Digraph
module Reconfig = Repdb_reconfig.Reconfig

type t = {
  n_sites : int;
  n_items : int;
  primary : int array;
  replicas : int array array;
  placed : int array array;
  prims : int array array;
  graph : Digraph.t;
  backedge_list : (int * int) list;
  edge_mult : (int, int) Hashtbl.t;
}

(* Membership in a sorted row. Replica sets are small on realistic
   placements, so a branchless lower-bound search beats both [List.mem] and
   hashing: O(log r) with no allocation. *)
let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && Array.unsafe_get a !lo = x

let index_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length a && Array.unsafe_get a !lo = x then !lo else -1

(* Build everything from per-item sorted replica rows: copy graph with its
   per-edge item multiplicity (the incremental [apply_step] needs to know
   when the last item contributing an edge goes away), backedge memo, and
   the per-site item indices. One pass to size, one pass to fill, so the
   per-site arrays are exact and ascending by construction. *)
let build ~n_sites ~n_items ~primary ~(replicas : int array array) =
  let m = n_sites in
  let graph = Digraph.create m in
  let edge_mult = Hashtbl.create (4 * m) in
  Array.iteri
    (fun item si ->
      Array.iter
        (fun sj ->
          let key = (si * m) + sj in
          match Hashtbl.find_opt edge_mult key with
          | Some c -> Hashtbl.replace edge_mult key (c + 1)
          | None ->
              Hashtbl.replace edge_mult key 1;
              Digraph.add_edge graph si sj)
        replicas.(item))
    primary;
  let backedge_list = List.filter (fun (u, v) -> v < u) (Digraph.edges graph) in
  let n_prim = Array.make m 0 and n_placed = Array.make m 0 in
  for item = 0 to n_items - 1 do
    let p = primary.(item) in
    n_prim.(p) <- n_prim.(p) + 1;
    n_placed.(p) <- n_placed.(p) + 1;
    Array.iter (fun s -> n_placed.(s) <- n_placed.(s) + 1) replicas.(item)
  done;
  let prims = Array.init m (fun s -> Array.make n_prim.(s) 0) in
  let placed = Array.init m (fun s -> Array.make n_placed.(s) 0) in
  let kp = Array.make m 0 and kq = Array.make m 0 in
  for item = 0 to n_items - 1 do
    let p = primary.(item) in
    prims.(p).(kp.(p)) <- item;
    kp.(p) <- kp.(p) + 1;
    placed.(p).(kq.(p)) <- item;
    kq.(p) <- kq.(p) + 1;
    Array.iter
      (fun s ->
        placed.(s).(kq.(s)) <- item;
        kq.(s) <- kq.(s) + 1)
      replicas.(item)
  done;
  { n_sites; n_items; primary; replicas; placed; prims; graph; backedge_list; edge_mult }

let make ~n_sites ~n_items ~primary ~replicas =
  let replicas =
    Array.mapi
      (fun item l ->
        Array.of_list (List.sort_uniq compare (List.filter (fun s -> s <> primary.(item)) l)))
      replicas
  in
  build ~n_sites ~n_items ~primary ~replicas

let generate rng (p : Params.t) =
  Params.validate p;
  let m = p.n_sites and n = p.n_items in
  (* Uniform primary assignment: round-robin gives each site ~n/m primaries. *)
  let primary = Array.init n (fun item -> item mod m) in
  let replicas = Array.make n [] in
  for item = 0 to n - 1 do
    if Rng.bool rng p.replication_prob then begin
      let si = primary.(item) in
      let all_candidates = Rng.bool rng p.backedge_prob in
      let chosen = ref [] in
      for sj = m - 1 downto 0 do
        if sj <> si then begin
          let candidate = all_candidates || sj > si in
          if candidate && Rng.bool rng p.site_prob then chosen := sj :: !chosen
        end
      done;
      replicas.(item) <- !chosen
    end
  done;
  make ~n_sites:m ~n_items:n ~primary ~replicas

let primaries_at t site = t.prims.(site)
let placed_at t site = t.placed.(site)
let has_replica t ~site item = mem_sorted t.replicas.(item) site
let has_copy t ~site item = t.primary.(item) = site || has_replica t ~site item
let is_primary t ~site item = t.primary.(item) = site
let placed_index t ~site item = index_sorted t.placed.(site) item
let copy_graph t = t.graph
let backedges t = t.backedge_list

(* Rebuild one sorted row: [row] minus [drops] plus [adds], all ascending,
   [adds] disjoint from [row], [drops] a subset of it. *)
let merge_row (row : int array) ~adds ~drops =
  let n = Array.length row + List.length adds - List.length drops in
  let out = Array.make (max n 1) 0 in
  let k = ref 0 in
  let adds = ref adds and drops = ref drops in
  let push x =
    out.(!k) <- x;
    incr k
  in
  Array.iter
    (fun x ->
      while (match !adds with a :: _ -> a < x | [] -> false) do
        push (List.hd !adds);
        adds := List.tl !adds
      done;
      match !drops with
      | d :: rest when d = x -> drops := rest
      | _ -> push x)
    row;
  List.iter push !adds;
  assert (!k = n);
  if n = Array.length out then out else Array.sub out 0 n

let apply_step t (step : Reconfig.step) =
  let m = t.n_sites in
  (* Effective changes only — redundant operations (adding an existing copy,
     dropping an absent one, rebalancing onto the primary) are no-ops, so
     synthetic plans need not inspect replica sets. Ascending by item. *)
  let changes =
    match step with
    | Reconfig.Add_replica { item; site } ->
        if t.primary.(item) <> site && not (mem_sorted t.replicas.(item) site) then
          [ (item, site, true) ]
        else []
    | Reconfig.Drop_replica { item; site } ->
        if mem_sorted t.replicas.(item) site then [ (item, site, false) ] else []
    | Reconfig.Rebalance_site { from_site; to_site } ->
        let acc = ref [] in
        for item = t.n_items - 1 downto 0 do
          if mem_sorted t.replicas.(item) from_site then begin
            if t.primary.(item) <> to_site && not (mem_sorted t.replicas.(item) to_site) then
              acc := (item, to_site, true) :: !acc;
            acc := (item, from_site, false) :: !acc
          end
        done;
        !acc
  in
  if changes = [] then t
  else begin
    (* Only the touched item rows, site rows and crossed copy-graph edges are
       rebuilt; everything untouched is shared with [t]. *)
    let replicas = Array.copy t.replicas in
    List.iter
      (fun (item, site, add) ->
        replicas.(item) <-
          (if add then merge_row replicas.(item) ~adds:[ site ] ~drops:[]
           else merge_row replicas.(item) ~adds:[] ~drops:[ site ]))
      changes;
    let site_adds = Hashtbl.create 4 and site_drops = Hashtbl.create 4 in
    List.iter
      (fun (item, site, add) ->
        let tbl = if add then site_adds else site_drops in
        let prev = match Hashtbl.find_opt tbl site with Some l -> l | None -> [] in
        Hashtbl.replace tbl site (item :: prev))
      changes;
    let placed = Array.copy t.placed in
    let touched = Hashtbl.create 4 in
    Hashtbl.iter (fun s _ -> Hashtbl.replace touched s ()) site_adds;
    Hashtbl.iter (fun s _ -> Hashtbl.replace touched s ()) site_drops;
    Hashtbl.iter
      (fun site () ->
        let get tbl = match Hashtbl.find_opt tbl site with Some l -> List.rev l | None -> [] in
        placed.(site) <- merge_row placed.(site) ~adds:(get site_adds) ~drops:(get site_drops))
      touched;
    let graph = Digraph.copy t.graph in
    let edge_mult = Hashtbl.copy t.edge_mult in
    let edges_added = ref [] and edges_removed = ref [] in
    List.iter
      (fun (item, site, add) ->
        let u = t.primary.(item) in
        let key = (u * m) + site in
        let cur = match Hashtbl.find_opt edge_mult key with Some c -> c | None -> 0 in
        if add then begin
          Hashtbl.replace edge_mult key (cur + 1);
          if cur = 0 then begin
            Digraph.add_edge graph u site;
            edges_added := (u, site) :: !edges_added
          end
        end
        else if cur <= 1 then begin
          Hashtbl.remove edge_mult key;
          Digraph.remove_edge graph u site;
          edges_removed := (u, site) :: !edges_removed
        end
        else Hashtbl.replace edge_mult key (cur - 1))
      changes;
    let backedge_list =
      if !edges_added = [] && !edges_removed = [] then t.backedge_list
      else
        let removed = !edges_removed in
        let kept = List.filter (fun e -> not (List.mem e removed)) t.backedge_list in
        let fresh = List.filter (fun (u, v) -> v < u) !edges_added in
        List.sort_uniq compare (fresh @ kept)
    in
    { t with replicas; placed; graph; backedge_list; edge_mult }
  end

let n_replicas t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.replicas

let n_replicated_items t =
  Array.fold_left (fun acc a -> if Array.length a = 0 then acc else acc + 1) 0 t.replicas

let pp ppf t =
  Fmt.pf ppf "@[<v>placement: %d sites, %d items, %d replicated, %d replicas@]" t.n_sites
    t.n_items (n_replicated_items t) (n_replicas t)

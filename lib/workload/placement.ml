module Rng = Repdb_sim.Rng
module Digraph = Repdb_graph.Digraph

type t = {
  n_sites : int;
  n_items : int;
  primary : int array;
  replicas : int list array;
}

let generate rng (p : Params.t) =
  Params.validate p;
  let m = p.n_sites and n = p.n_items in
  (* Uniform primary assignment: round-robin gives each site ~n/m primaries. *)
  let primary = Array.init n (fun item -> item mod m) in
  let replicas = Array.make n [] in
  for item = 0 to n - 1 do
    if Rng.bool rng p.replication_prob then begin
      let si = primary.(item) in
      let all_candidates = Rng.bool rng p.backedge_prob in
      let chosen = ref [] in
      for sj = m - 1 downto 0 do
        if sj <> si then begin
          let candidate = all_candidates || sj > si in
          if candidate && Rng.bool rng p.site_prob then chosen := sj :: !chosen
        end
      done;
      replicas.(item) <- !chosen
    end
  done;
  { n_sites = m; n_items = n; primary; replicas }

let primaries_at t site =
  let acc = ref [] in
  for item = t.n_items - 1 downto 0 do
    if t.primary.(item) = site then acc := item :: !acc
  done;
  !acc

let placed_at t site =
  let acc = ref [] in
  for item = t.n_items - 1 downto 0 do
    if t.primary.(item) = site || List.mem site t.replicas.(item) then acc := item :: !acc
  done;
  !acc

let has_copy t ~site item = t.primary.(item) = site || List.mem site t.replicas.(item)
let is_primary t ~site item = t.primary.(item) = site

let copy_graph t =
  let g = Digraph.create t.n_sites in
  Array.iteri
    (fun item si -> List.iter (fun sj -> Digraph.add_edge g si sj) t.replicas.(item))
    t.primary;
  g

let backedges t =
  List.filter (fun (u, v) -> v < u) (Digraph.edges (copy_graph t))

let n_replicas t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.replicas

let n_replicated_items t =
  Array.fold_left (fun acc l -> if l = [] then acc else acc + 1) 0 t.replicas

let pp ppf t =
  Fmt.pf ppf "@[<v>placement: %d sites, %d items, %d replicated, %d replicas@]" t.n_sites
    t.n_items (n_replicated_items t) (n_replicas t)

module Rng = Repdb_sim.Rng
module Digraph = Repdb_graph.Digraph
module Reconfig = Repdb_reconfig.Reconfig

type t = {
  n_sites : int;
  n_items : int;
  primary : int array;
  replicas : int list array;
  graph : Digraph.t;
  backedge_list : (int * int) list;
}

let make ~n_sites ~n_items ~primary ~replicas =
  let graph = Digraph.create n_sites in
  Array.iteri
    (fun item si -> List.iter (fun sj -> Digraph.add_edge graph si sj) replicas.(item))
    primary;
  let backedge_list = List.filter (fun (u, v) -> v < u) (Digraph.edges graph) in
  { n_sites; n_items; primary; replicas; graph; backedge_list }

let generate rng (p : Params.t) =
  Params.validate p;
  let m = p.n_sites and n = p.n_items in
  (* Uniform primary assignment: round-robin gives each site ~n/m primaries. *)
  let primary = Array.init n (fun item -> item mod m) in
  let replicas = Array.make n [] in
  for item = 0 to n - 1 do
    if Rng.bool rng p.replication_prob then begin
      let si = primary.(item) in
      let all_candidates = Rng.bool rng p.backedge_prob in
      let chosen = ref [] in
      for sj = m - 1 downto 0 do
        if sj <> si then begin
          let candidate = all_candidates || sj > si in
          if candidate && Rng.bool rng p.site_prob then chosen := sj :: !chosen
        end
      done;
      replicas.(item) <- !chosen
    end
  done;
  make ~n_sites:m ~n_items:n ~primary ~replicas

let primaries_at t site =
  let acc = ref [] in
  for item = t.n_items - 1 downto 0 do
    if t.primary.(item) = site then acc := item :: !acc
  done;
  !acc

let placed_at t site =
  let acc = ref [] in
  for item = t.n_items - 1 downto 0 do
    if t.primary.(item) = site || List.mem site t.replicas.(item) then acc := item :: !acc
  done;
  !acc

let has_copy t ~site item = t.primary.(item) = site || List.mem site t.replicas.(item)
let is_primary t ~site item = t.primary.(item) = site
let copy_graph t = t.graph
let backedges t = t.backedge_list

let insert_sorted site l =
  let rec go = function
    | [] -> [ site ]
    | x :: _ as l when site < x -> site :: l
    | x :: rest -> x :: go rest
  in
  go l

let apply_step t (step : Reconfig.step) =
  let replicas = Array.copy t.replicas in
  (* Redundant operations (adding an existing copy, dropping an absent one)
     are no-ops, so synthetic plans need not inspect replica sets. *)
  let add item site =
    if t.primary.(item) <> site && not (List.mem site replicas.(item)) then
      replicas.(item) <- insert_sorted site replicas.(item)
  in
  let drop item site = replicas.(item) <- List.filter (fun s -> s <> site) replicas.(item) in
  (match step with
  | Reconfig.Add_replica { item; site } -> add item site
  | Reconfig.Drop_replica { item; site } -> drop item site
  | Reconfig.Rebalance_site { from_site; to_site } ->
      for item = 0 to t.n_items - 1 do
        if List.mem from_site replicas.(item) then begin
          drop item from_site;
          add item to_site
        end
      done);
  make ~n_sites:t.n_sites ~n_items:t.n_items ~primary:t.primary ~replicas

let n_replicas t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.replicas

let n_replicated_items t =
  Array.fold_left (fun acc l -> if l = [] then acc else acc + 1) 0 t.replicas

let pp ppf t =
  Fmt.pf ppf "@[<v>placement: %d sites, %d items, %d replicated, %d replicas@]" t.n_sites
    t.n_items (n_replicated_items t) (n_replicas t)

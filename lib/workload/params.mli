(** Experiment parameters — Table 1 of the paper, plus the simulation cost
    model that replaces the paper's physical testbed.

    Paper defaults: 9 sites, 200 items, replication probability 0.2, site
    probability 0.5, backedge probability 0.2, 10 operations per transaction,
    3 threads per site, 1000 transactions per thread, read-operation
    probability 0.7, read-transaction probability 0.5, ~0.15 ms network
    latency, 50 ms deadlock timeout. *)

(** What a client does with an aborted transaction. [Backoff] re-submits
    after a capped exponential delay: retry [k] (0-based) waits
    [min cap (base * multiplier^k)] ms, scaled by a jitter factor in
    [0.5, 1.0) drawn from a dedicated per-client seeded RNG stream — so
    retries never perturb the workload streams and runs stay byte-identical
    across repeats and [-j] levels. After [max_retries] failures the
    transaction is abandoned (counted as its final abort). *)
type retry_policy =
  | No_retry
  | Backoff of { base : float; multiplier : float; cap : float; max_retries : int }

(** 1 ms base, doubling, 64 ms cap, 1000 retries — effectively
    "retry until it commits" for any realistic run. *)
val default_backoff : retry_policy

val string_of_retry : retry_policy -> string

type t = {
  (* Table 1 *)
  n_sites : int;  (** [m]; default 9, range 3–15. *)
  n_items : int;  (** [n]; default 200. *)
  replication_prob : float;  (** [r]; default 0.2, range 0–1. *)
  site_prob : float;  (** [s]; default 0.5. *)
  backedge_prob : float;  (** [b]; default 0.2, range 0–1. *)
  ops_per_txn : int;  (** Default 10. *)
  threads_per_site : int;  (** Default 3, range 1–5. *)
  txns_per_thread : int;  (** Paper 1000; default here 300 for bench speed. *)
  read_op_prob : float;  (** Default 0.7, range 0–1. *)
  read_txn_prob : float;  (** Default 0.5, range 0–1. *)
  hot_access_prob : float;
      (** Probability that an operation targets the hot set; 0 (default)
          keeps the paper's uniform access. *)
  hot_item_fraction : float;
      (** Fraction of each site's item pool that forms the hot set
          (default 0.2); only meaningful when [hot_access_prob > 0]. *)
  zipf_theta : float;
      (** Zipf skew for item selection, in [0,1). 0 (default) keeps the
          uniform / hotspot scheme; > 0 draws items rank-weighted by
          [1/(rank+1)^theta] over the site's (sorted) pool, so low item ids
          become contention hot keys. Composes with neither knob:
          [hot_access_prob] is ignored when [zipf_theta > 0]. *)
  latency : float;  (** One-way network latency, ms; default 0.15, range 0.15–100. *)
  lock_timeout : float;  (** Deadlock timeout, ms; default 50. *)
  deadlock_policy : [ `Timeout | `Detect ];
      (** [`Timeout] (the paper's mechanism, using [lock_timeout]) or local
          waits-for-graph [`Detect]ion with latest-arrival victims. Note that
          only timeouts resolve distributed deadlocks, so protocols with
          cross-site waits (PSL, Eager, BackEdge) keep a timeout fallback:
          [`Detect] applies it on top of detection. *)
  (* Simulation cost model (substitutes for the UltraSparc testbed) *)
  n_machines : int;  (** Sites share machine CPUs round-robin; default 3. *)
  straggler_machine : int;
      (** Machine whose CPU runs slow, or -1 (default) for none. *)
  straggler_factor : float;
      (** CPU slowdown of the straggler machine (default 1.0). *)
  cpu_op : float;  (** CPU per local read/write op, ms. *)
  cpu_commit : float;  (** CPU per (sub)transaction commit, ms. *)
  cpu_msg : float;  (** CPU to send or receive one message, ms. *)
  (* Harness *)
  seed : int;  (** RNG seed; every run is deterministic in it. *)
  retry : retry_policy;  (** Default {!No_retry}, as in the paper. *)
  txn_deadline : float;
      (** Per-transaction deadline, ms of simulated time per execution
          attempt, covering the eager distributed phase (BackEdge's special
          wait, PSL remote reads). 0 (default) disables; an expired deadline
          aborts with {!Repdb_txn.Txn.Deadline_exceeded}. *)
  stale_reads : float;
      (** PSL only: when > 0, a remote read whose primary is unreachable
          behind a partition falls back to the local replica provided its
          staleness (ms since the item was last applied locally) is within
          this bound. Such reads sit outside the 1SR guarantee and are
          excluded from the checked history; count and max staleness are
          reported in metrics. 0 (default) disables the fallback. *)
  record_history : bool;  (** Record accesses for the serializability checker. *)
  (* DAG(T) progress machinery *)
  epoch_period : float;  (** Sources bump their epoch every this many ms. *)
  dummy_idle : float;  (** Send a dummy subtransaction after this idle time, ms. *)
  (* Fault injection *)
  faults : Repdb_fault.Fault.schedule;
      (** Site crash/restart and link drop/delay schedule the run must
          survive; {!Repdb_fault.Fault.empty} (the default) disables
          injection entirely. *)
  (* Online reconfiguration *)
  reconfig : Repdb_reconfig.Reconfig.plan;
      (** Copy-graph reconfiguration steps executed live by the epoch-based
          coordinator; {!Repdb_reconfig.Reconfig.empty} (the default) keeps
          the topology static. *)
  (* Observability *)
  timeline_every : float;
      (** Timeline sampling interval, ms; 0 (the default) disables the
          ticker and the per-run timeline entirely. *)
  profile : bool;
      (** Enable the wall-clock self-profiler for this run (default
          false). Profiling never affects simulated results, only adds
          wall-time accounting per event category. *)
  (* Batched propagation *)
  batch_size : int;
      (** Maximum updates coalesced into one network message on the lazy
          propagation paths (dag-wt, dag-t, backedge normals, lazy-master
          pushes). 1 (the default) sends each update immediately in its own
          message — the exact pre-batching behavior. *)
  batch_linger_ms : float;
      (** How long (simulated ms) a partially filled batch may wait for more
          updates before it is flushed. 0 (the default) flushes at the end of
          the simulation instant that opened the batch, so update delivery
          times are unchanged; > 0 trades propagation latency (bounded by the
          linger) for fewer, fuller messages. Ignored when [batch_size = 1]. *)
  (* Optimistic concurrency (occ-epoch) *)
  occ_epoch_ms : float;
      (** Epoch boundary period for the occ-epoch protocol, simulated ms
          (default 10): optimistic transactions buffer at their site and are
          sent for validation in one batch per site per epoch. *)
  (* Self-healing (lib/heal) *)
  heal : bool;
      (** Enable the self-healing subsystem: the heartbeat-driven φ-accrual
          failure detector, automatic primary failover through the epoch
          machinery, and background anti-entropy repair. Default false — all
          healing machinery (and its stats/timeline columns) stays off. *)
  heartbeat_every : float;
      (** Heartbeat period, simulated ms (default 25): every up site sends a
          heartbeat to every other site each period; the detector estimates
          inter-arrival statistics per ordered pair. *)
  phi_threshold : float;
      (** φ-accrual suspicion threshold (default 8). A site is suspected once
          a majority of its peers' φ values for it cross this; lower values
          detect faster but false-positive under latency jitter. *)
  anti_entropy_every : float;
      (** Period, simulated ms (default 200), between background
          digest-exchange repair sessions; each session compares one
          (primary, replica-holder) pair with Merkle-style range narrowing
          and ships diffs for mismatching items. *)
}

val default : t

(** Paper parameter rows as [(name, symbol, default, range)] — the content of
    Table 1, for the [table1] bench target. *)
val table1 : t -> (string * string * string * string) list

val pp : Format.formatter -> t -> unit

(** Sanity-check ranges (probabilities in [0,1], positive counts...).
    @raise Invalid_argument when out of range. *)
val validate : t -> unit

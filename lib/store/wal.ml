type record =
  | Apply of { item : int; writer : int; payload : string option }
  | Ship of { item : int; value : Value.t }

type t = { mutable snap : (int * Value.t) list; mutable log : record list (* newest first *) }

let create () = { snap = []; log = [] }
let records t = List.rev t.log
let length t = List.length t.log
let snapshot t = t.snap
let append t r = t.log <- r :: t.log

let checkpoint t contents =
  t.snap <- contents;
  t.log <- []

let reattach t store =
  Store.set_write_hook store (function
    | Store.Applied { item; writer; payload } -> append t (Apply { item; writer; payload })
    | Store.Installed { item; value } -> append t (Ship { item; value }))

let attach t store =
  checkpoint t (Store.contents store);
  reattach t store

let recover t ~site =
  let store = Store.create ~site [] in
  List.iter (fun (item, value) -> Store.restore store item value) t.snap;
  List.iter
    (function
      | Apply { item; writer; payload } -> Store.apply store item ~writer ?payload ()
      (* Restore, not set: a Ship record may be the state-transfer install of
         an item this site first received after the checkpoint, so the copy
         may not exist yet. *)
      | Ship { item; value } -> Store.restore store item value)
    (records t);
  store

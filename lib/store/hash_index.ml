type 'a slot = Empty | Tombstone | Entry of int * 'a

type 'a t = {
  mutable slots : 'a slot array;
  mutable live : int; (* Entry slots *)
  mutable used : int; (* Entry + Tombstone slots *)
}

let rec power_of_two n acc = if acc >= n then acc else power_of_two n (acc * 2)

let create ?(capacity = 16) () =
  let capacity = power_of_two (max 2 capacity) 2 in
  { slots = Array.make capacity Empty; live = 0; used = 0 }

let length t = t.live
let capacity t = Array.length t.slots

(* Fibonacci hashing spreads consecutive item ids well. *)
let bucket t key = key * 0x2545F4914F6CDD1D land max_int land (Array.length t.slots - 1)

let check_key key = if key < 0 then invalid_arg "Hash_index: negative key"

let rec probe t key i =
  let n = Array.length t.slots in
  if i >= n then None (* the whole table was scanned: absent *)
  else
    let idx = (i + bucket t key) land (n - 1) in
    match t.slots.(idx) with
    | Empty -> None
    | Entry (k, _) when k = key -> Some idx
    | Entry _ | Tombstone -> probe t key (i + 1)

let find t key =
  check_key key;
  match probe t key 0 with
  | Some idx -> ( match t.slots.(idx) with Entry (_, v) -> Some v | _ -> assert false)
  | None -> None

let mem t key = find t key <> None

let rec insert_raw slots key v i =
  let n = Array.length slots in
  let idx = (i + (key * 0x2545F4914F6CDD1D land max_int land (n - 1))) land (n - 1) in
  match slots.(idx) with
  | Empty | Tombstone -> slots.(idx) <- Entry (key, v)
  | Entry _ -> insert_raw slots key v (i + 1)

let resize t capacity =
  let old = t.slots in
  t.slots <- Array.make capacity Empty;
  t.used <- t.live;
  Array.iter
    (function Entry (k, v) -> insert_raw t.slots k v 0 | Empty | Tombstone -> ())
    old

(* Keep load (including the insert about to happen) under 2/3, so an Empty
   slot always exists and probes terminate early. *)
let maybe_grow t =
  let n = Array.length t.slots in
  if 3 * (t.used + 1) >= 2 * n then
    (* Double when genuinely full; same size when tombstones dominate. *)
    resize t (if 3 * (t.live + 1) >= n then 2 * n else n)

let set t key v =
  check_key key;
  match probe t key 0 with
  | Some idx -> t.slots.(idx) <- Entry (key, v)
  | None ->
      maybe_grow t;
      (* Reuse the first tombstone on the probe path if any. *)
      let n = Array.length t.slots in
      let rec place i reuse =
        let idx = (i + bucket t key) land (n - 1) in
        match t.slots.(idx) with
        | Empty -> (
            match reuse with
            | Some r -> t.slots.(r) <- Entry (key, v)
            | None ->
                t.slots.(idx) <- Entry (key, v);
                t.used <- t.used + 1)
        | Tombstone -> place (i + 1) (if reuse = None then Some idx else reuse)
        | Entry _ -> place (i + 1) reuse
      in
      place 0 None;
      t.live <- t.live + 1

let remove t key =
  check_key key;
  match probe t key 0 with
  | Some idx ->
      t.slots.(idx) <- Tombstone;
      t.live <- t.live - 1;
      true
  | None -> false

let iter f t =
  Array.iter (function Entry (k, v) -> f k v | Empty | Tombstone -> ()) t.slots

let fold f t acc =
  Array.fold_left
    (fun acc -> function Entry (k, v) -> f k v acc | Empty | Tombstone -> acc)
    acc t.slots

type entry = { version : int; commit_ts : float }

type t = {
  chains : (int, entry list ref) Hashtbl.t; (* item -> newest-first versions *)
  cap : int;
}

let create ?(cap = 64) items =
  let t = { chains = Hashtbl.create (List.length items * 2); cap } in
  List.iter
    (fun item ->
      Hashtbl.replace t.chains item (ref [ { version = 0; commit_ts = neg_infinity } ]))
    items;
  t

let mem t item = Hashtbl.mem t.chains item

let read_at t ~item ~ts =
  match Hashtbl.find_opt t.chains item with
  | None -> None
  | Some chain ->
      let rec find = function
        | [] -> None
        | e :: rest -> if e.commit_ts <= ts then Some e.version else find rest
      in
      find !chain

let latest t ~item =
  match Hashtbl.find_opt t.chains item with
  | None -> None
  | Some chain -> ( match !chain with [] -> None | e :: _ -> Some e.version)

let truncate cap chain =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  take cap chain

let append t ~item ~version ~commit_ts =
  match Hashtbl.find_opt t.chains item with
  | None -> invalid_arg (Printf.sprintf "Mvstore.append: item %d has no chain here" item)
  | Some chain ->
      (match !chain with
      | { version = prev; commit_ts = prev_ts } :: _ ->
          if version <= prev then
            invalid_arg
              (Printf.sprintf "Mvstore.append: item %d version %d <= head %d" item version prev);
          if commit_ts < prev_ts then
            invalid_arg (Printf.sprintf "Mvstore.append: item %d commit_ts regressed" item)
      | [] -> ());
      chain := truncate t.cap ({ version; commit_ts } :: !chain)

let seed t ~item ~version ~commit_ts =
  Hashtbl.replace t.chains item (ref [ { version; commit_ts } ])

let drop t ~item = Hashtbl.remove t.chains item

let items t = Hashtbl.fold (fun item _ acc -> item :: acc) t.chains [] |> List.sort compare

let chain_length t ~item =
  match Hashtbl.find_opt t.chains item with None -> 0 | Some c -> List.length !c

(* Version-chain checksum: FNV-1a over the newest entry's (version, item),
   mirroring Value.checksum's construction. Commit timestamps are excluded —
   two replicas that converged on the same version may have installed it at
   different instants, and that is not divergence. *)
let checksum t ~item =
  match Hashtbl.find_opt t.chains item with
  | None | Some { contents = [] } -> None
  | Some { contents = { version; _ } :: _ } ->
      let mask = (1 lsl 62) - 1 in
      let fnv_prime = 0x100000001b3 in
      let h = ref 0x0bf29ce484222325 in
      let mix byte = h := (!h lxor byte) * fnv_prime land mask in
      mix (version land 0xff);
      mix ((version lsr 8) land 0xff);
      mix ((version lsr 16) land 0xff);
      mix (item land 0xff);
      mix ((item lsr 8) land 0xff);
      Some !h

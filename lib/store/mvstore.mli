(** Per-site multi-version index over the copies placed at a site.

    The flat {!Store} keeps only the current value of each copy; snapshot
    protocols (ssi) additionally need to answer "what version was current as
    of timestamp [ts]?". An [Mvstore] runs beside the flat store and records,
    per item, the recent [(version, commit_ts)] history, newest first. It
    stores no payloads — the version number is the identity a snapshot read
    reports and the certifier validates.

    Chains are bounded ([cap] entries): a read older than the retained window
    returns [None] and the caller falls back to another copy (available
    copies) or aborts. Every copy starts with version 0 at timestamp -inf, so
    reads before the first committed write always succeed. *)

type t

(** [create ?cap items] — one chain per copy placed at the site. *)
val create : ?cap:int -> int list -> t

val mem : t -> int -> bool

(** [read_at t ~item ~ts] — the version current as of [ts]: the newest
    version with [commit_ts <= ts]. [None] if the item has no chain here or
    the chain has been truncated/seeded past [ts]. *)
val read_at : t -> item:int -> ts:float -> int option

(** Newest version in the chain, [None] if the item has no chain here. *)
val latest : t -> item:int -> int option

(** [append t ~item ~version ~commit_ts] — install a newly committed
    version; versions and timestamps must be monotone.
    @raise Invalid_argument on a gap the caller should have prevented. *)
val append : t -> item:int -> version:int -> commit_ts:float -> unit

(** [seed t ~item ~version ~commit_ts] — (re)start the chain at a single
    known version: state transfer of a newly replicated copy, or rebuilding
    after reconfiguration. Earlier versions become unreadable ([read_at]
    returns [None] for [ts < commit_ts]). *)
val seed : t -> item:int -> version:int -> commit_ts:float -> unit

(** Remove the chain for a copy no longer placed here. *)
val drop : t -> item:int -> unit

(** Items with a chain, ascending. *)
val items : t -> int list

val chain_length : t -> item:int -> int

(** [checksum t ~item] — deterministic digest of the newest chain entry's
    version (commit timestamps excluded: converging on the same version at
    different instants is not divergence). [None] if the item has no chain
    here. Used by the anti-entropy layer to cross-check version chains
    alongside {!Repdb_store.Store.checksum}. *)
val checksum : t -> item:int -> int option

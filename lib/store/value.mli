(** Values stored for each data item copy.

    A value records the identity of the last writer and a per-item version
    counter. This is all the protocols need, and it lets the test suite check
    replica convergence (every copy of an item ends with the same
    writer/version) and read freshness without modelling payload bytes.
    An optional opaque payload is kept for the examples. *)

type t = {
  version : int;  (** Number of committed writes applied to this copy. *)
  writer : int;  (** Global id of the transaction that wrote it; -1 initially. *)
  payload : string;  (** Application data; empty by default. *)
}

(** The state of a copy before any write. *)
val initial : t

(** [write ~writer ?payload v] is the successor of [v] after a committed
    write by [writer]. *)
val write : writer:int -> ?payload:string -> t -> t

val equal : t -> t -> bool

(** Deterministic 62-bit content checksum (FNV-1a over version, writer and
    payload bytes). [equal a b] implies [checksum a = checksum b]; collisions
    are possible but astronomically unlikely at simulation scale. Stable
    across OCaml versions — never [Hashtbl.hash]. *)
val checksum : t -> int

val pp : Format.formatter -> t -> unit

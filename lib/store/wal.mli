(** Redo logging and recovery for a site store.

    The DataBlitz storage manager the paper builds on is a recoverable
    main-memory system; this module is the corresponding substrate here: a
    redo-only log of committed writes on top of a checkpoint snapshot. A
    simulated site can be "crashed" at any point and rebuilt by {!recover},
    which must reproduce the live store exactly (the test suite drives whole
    protocol runs through this). The log itself is an in-memory structure —
    the simulated equivalent of a log device. *)

type record =
  | Apply of { item : int; writer : int; payload : string option }
      (** A committed write, as applied through {!Store.apply}. *)
  | Ship of { item : int; value : Value.t }
      (** A whole-value install, as applied through {!Store.set}. *)

type t

val create : unit -> t

(** Records appended since the last checkpoint, oldest first. *)
val records : t -> record list

val length : t -> int

(** The checkpointed image this log is relative to. *)
val snapshot : t -> (int * Value.t) list

(** [append t r] — called by the store hooks. *)
val append : t -> record -> unit

(** [checkpoint t store] — snapshot [store]'s current contents and truncate
    the log. *)
val checkpoint : t -> (int * Value.t) list -> unit

(** [attach t store] — checkpoint [store]'s current contents into [t] and
    start logging its subsequent writes. *)
val attach : t -> Store.t -> unit

(** [reattach t store] — start logging [store]'s writes into [t] {e without}
    taking a checkpoint: the existing snapshot and log are kept. This is the
    restart path — hook the log back onto the store {!recover} just rebuilt.
    Calling {!attach} here instead would silently truncate the log, losing
    the ability to re-recover from the original checkpoint. *)
val reattach : t -> Store.t -> unit

(** [recover t ~site] — rebuild the site store: start from the checkpoint
    snapshot and replay the log in order. *)
val recover : t -> site:int -> Store.t

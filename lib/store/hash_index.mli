(** Open-addressing hash index over integer keys.

    The paper notes that "fast access to an item is facilitated by a hash
    index on the item identifier"; this is that index, built from scratch
    rather than borrowed from the standard library: linear probing,
    power-of-two capacity, tombstone deletion, automatic growth at 2/3 load
    and compaction when tombstones dominate. *)

type 'a t

(** [create ?capacity ()] — initial capacity is rounded up to a power of
    two (default 16). *)
val create : ?capacity:int -> unit -> 'a t

(** Number of live bindings. *)
val length : 'a t -> int

(** [find t key] — [None] if unbound. Keys must be non-negative. *)
val find : 'a t -> int -> 'a option

val mem : 'a t -> int -> bool

(** [set t key v] — insert or replace. *)
val set : 'a t -> int -> 'a -> unit

(** [remove t key] — delete if present; returns whether it was. *)
val remove : 'a t -> int -> bool

(** [iter f t] — apply [f key value] to every live binding (unspecified
    order). *)
val iter : (int -> 'a -> unit) -> 'a t -> unit

(** [fold f t acc]. *)
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** Current bucket-array capacity (for tests). *)
val capacity : 'a t -> int

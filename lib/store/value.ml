type t = { version : int; writer : int; payload : string }

let initial = { version = 0; writer = -1; payload = "" }

let write ~writer ?payload v =
  let payload = match payload with Some p -> p | None -> v.payload in
  { version = v.version + 1; writer; payload }

let equal a b = a.version = b.version && a.writer = b.writer && String.equal a.payload b.payload

let pp ppf v = Fmt.pf ppf "v%d/T%d%s" v.version v.writer (if v.payload = "" then "" else ":" ^ v.payload)

type t = { version : int; writer : int; payload : string }

let initial = { version = 0; writer = -1; payload = "" }

let write ~writer ?payload v =
  let payload = match payload with Some p -> p | None -> v.payload in
  { version = v.version + 1; writer; payload }

let equal a b = a.version = b.version && a.writer = b.writer && String.equal a.payload b.payload

(* FNV-1a over the three fields, masked to 62 bits so the result is a
   portable positive [int]. Spelled out rather than [Hashtbl.hash] so the
   digest bytes are stable across compiler versions — they end up in
   timeline CSVs and must be byte-identical across repeats. *)
let checksum v =
  let mask = (1 lsl 62) - 1 in
  let fnv_prime = 0x100000001b3 in
  let h = ref 0x0bf29ce484222325 in
  let mix byte = h := (!h lxor byte) * fnv_prime land mask in
  mix (v.version land 0xff);
  mix ((v.version lsr 8) land 0xff);
  mix ((v.version lsr 16) land 0xff);
  mix (v.writer land 0xff);
  mix ((v.writer lsr 8) land 0xff);
  mix ((v.writer lsr 16) land 0xff);
  String.iter (fun c -> mix (Char.code c)) v.payload;
  !h

let pp ppf v = Fmt.pf ppf "v%d/T%d%s" v.version v.writer (if v.payload = "" then "" else ":" ^ v.payload)

type item = int

type write_event =
  | Applied of { item : item; writer : int; payload : string option }
  | Installed of { item : item; value : Value.t }

type t = {
  site : int;
  table : Value.t Hash_index.t;
  mutable hook : write_event -> unit;
  mutable hooked : bool; (* skip building the event record when no hook *)
}

let create ~site items =
  let table = Hash_index.create ~capacity:64 () in
  List.iter (fun item -> Hash_index.set table item Value.initial) items;
  { site; table; hook = ignore; hooked = false }

let site t = t.site
let mem t item = Hash_index.mem t.table item

let not_placed t item =
  invalid_arg (Printf.sprintf "Store: item %d is not placed at site %d" item t.site)

let read t item =
  match Hash_index.find t.table item with
  | Some v -> v
  | None -> not_placed t item

let apply t item ~writer ?payload () =
  match Hash_index.find t.table item with
  | Some v ->
      Hash_index.set t.table item (Value.write ~writer ?payload v);
      if t.hooked then t.hook (Applied { item; writer; payload })
  | None -> not_placed t item

let set t item v =
  if not (Hash_index.mem t.table item) then not_placed t item;
  Hash_index.set t.table item v;
  if t.hooked then t.hook (Installed { item; value = v })

let install t item v =
  Hash_index.set t.table item v;
  if t.hooked then t.hook (Installed { item; value = v })

let set_write_hook t f =
  t.hook <- f;
  t.hooked <- true

let contents t =
  Hash_index.fold (fun item v acc -> (item, v) :: acc) t.table [] |> List.sort compare

let restore t item v = Hash_index.set t.table item v

let items t = Hash_index.fold (fun item _ acc -> item :: acc) t.table [] |> List.sort compare
let size t = Hash_index.length t.table
let iter f t = Hash_index.iter f t.table

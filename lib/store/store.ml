type item = int

type write_event =
  | Applied of { item : item; writer : int; payload : string option }
  | Installed of { item : item; value : Value.t }

type t = {
  site : int;
  table : Value.t Hash_index.t;
  mutable hook : write_event -> unit;
  mutable hooked : bool; (* skip building the event record when no hook *)
}

let create ~site items =
  let table = Hash_index.create ~capacity:64 () in
  List.iter (fun item -> Hash_index.set table item Value.initial) items;
  { site; table; hook = ignore; hooked = false }

let site t = t.site
let mem t item = Hash_index.mem t.table item

let not_placed t item =
  invalid_arg (Printf.sprintf "Store: item %d is not placed at site %d" item t.site)

let read t item =
  match Hash_index.find t.table item with
  | Some v -> v
  | None -> not_placed t item

let apply t item ~writer ?payload () =
  match Hash_index.find t.table item with
  | Some v ->
      Hash_index.set t.table item (Value.write ~writer ?payload v);
      if t.hooked then t.hook (Applied { item; writer; payload })
  | None -> not_placed t item

let set t item v =
  if not (Hash_index.mem t.table item) then not_placed t item;
  Hash_index.set t.table item v;
  if t.hooked then t.hook (Installed { item; value = v })

let install t item v =
  Hash_index.set t.table item v;
  if t.hooked then t.hook (Installed { item; value = v })

let set_write_hook t f =
  t.hook <- f;
  t.hooked <- true

let contents t =
  Hash_index.fold (fun item v acc -> (item, v) :: acc) t.table [] |> List.sort compare

let restore t item v = Hash_index.set t.table item v

let items t = Hash_index.fold (fun item _ acc -> item :: acc) t.table [] |> List.sort compare
let size t = Hash_index.length t.table
let iter f t = Hash_index.iter f t.table

(* --- anti-entropy digests ------------------------------------------------- *)

let checksum t item = Value.checksum (read t item)

(* Item id folded into the per-copy checksum so that swapping the values of
   two items cannot cancel out in a combined digest. *)
let keyed_sum item v =
  let mask = (1 lsl 62) - 1 in
  (Value.checksum v + (item * 0x1e3779b97f4a7c15)) land mask

(* Commutative combine (masked sum), so the digest is independent of hash
   index iteration order. *)
let range_digest t ~lo ~hi =
  let mask = (1 lsl 62) - 1 in
  let acc = ref 0 and n = ref 0 in
  Hash_index.iter
    (fun item v ->
      if item >= lo && item < hi then begin
        acc := (!acc + keyed_sum item v) land mask;
        incr n
      end)
    t.table;
  (!acc, !n)

let digest_over t items =
  let mask = (1 lsl 62) - 1 in
  List.fold_left
    (fun acc item ->
      match Hash_index.find t.table item with
      | Some v -> (acc + keyed_sum item v) land mask
      | None -> acc)
    0 items

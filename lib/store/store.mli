(** In-memory per-site storage engine.

    Stand-in for the DataBlitz main-memory storage manager used in the paper:
    the whole database lives in memory and items are reached through a hash
    index on the item identifier. A store holds only the copies (primary or
    replica) placed at its site; touching an item that is not placed there is
    a programming error and raises. *)

type item = int
(** Items are dense integer identifiers, [0 .. n-1] cluster-wide. *)

type t

(** [create ~site items] builds the store for [site] holding [items]. *)
val create : site:int -> item list -> t

val site : t -> int

(** [mem t item] — is a copy of [item] placed here? *)
val mem : t -> item -> bool

(** [read t item] returns the current value of the local copy.
    @raise Invalid_argument if [item] is not placed at this site. *)
val read : t -> item -> Value.t

(** [apply t item ~writer ?payload ()] installs a committed write.
    @raise Invalid_argument if [item] is not placed at this site. *)
val apply : t -> item -> writer:int -> ?payload:string -> unit -> unit

(** [set t item v] overwrites the copy with [v] (used when shipping a primary
    value to a replica wholesale). *)
val set : t -> item -> Value.t -> unit

(** [install t item v] installs [v] wholesale, creating the copy if absent —
    state transfer of an item newly replicated here. Hooked like {!set}, so
    an attached redo log records the install. *)
val install : t -> item -> Value.t -> unit

(** {1 Durability hooks (used by {!Wal})} *)

(** A committed mutation, as observed by the write hook. *)
type write_event =
  | Applied of { item : item; writer : int; payload : string option }
  | Installed of { item : item; value : Value.t }

(** [set_write_hook t f] — call [f] after every {!apply} / {!set}. *)
val set_write_hook : t -> (write_event -> unit) -> unit

(** Current contents, ascending by item. *)
val contents : t -> (item * Value.t) list

(** [restore t item v] — (re)install a binding wholesale, creating it if
    absent; used by recovery and never hooked. *)
val restore : t -> item -> Value.t -> unit

(** Items placed at this site, ascending. *)
val items : t -> item list

(** Number of copies held. *)
val size : t -> int

(** [iter f t] applies [f item value] to every copy. *)
val iter : (item -> Value.t -> unit) -> t -> unit

(** {1 Anti-entropy digests}

    Deterministic content summaries used by the self-healing subsystem's
    Merkle-style digest exchange ({!Repdb_heal}): two stores agree on a range
    digest iff (modulo 62-bit collisions) their copies in the range are
    value-equal. All digests are stable across repeats and [-j] levels. *)

(** [checksum t item] — {!Value.checksum} of the local copy.
    @raise Invalid_argument if [item] is not placed at this site. *)
val checksum : t -> item -> int

(** [range_digest t ~lo ~hi] — commutative combined digest and copy count
    over the copies placed here with [lo <= item < hi]. The item id is folded
    into each summand, so permuting values across items changes the digest. *)
val range_digest : t -> lo:int -> hi:int -> int * int

(** [digest_over t items] — the same combined digest restricted to the
    listed items (absent items are skipped). Both ends of a digest-exchange
    session compute this over the shared item set. *)
val digest_over : t -> item list -> int

(** Simple directed graphs over vertices [0 .. n-1].

    Used for copy graphs (vertices are sites) and for the serialization graph
    built by the correctness checker. Self-loops and duplicate edges are
    ignored on insertion. *)

type t

(** [create n] — the empty graph on [n] vertices. *)
val create : int -> t

val n_vertices : t -> int
val n_edges : t -> int

(** [add_edge g u v] inserts edge [u -> v]; no-op for duplicates and
    self-loops.
    @raise Invalid_argument if [u] or [v] is out of range. *)
val add_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

(** [remove_edge g u v] deletes edge [u -> v] in place; no-op if absent.
    The adjacency sets are persistent, so a {!copy} taken before the removal
    is unaffected.
    @raise Invalid_argument if [u] or [v] is out of range. *)
val remove_edge : t -> int -> int -> unit

(** Successors of [v], ascending. *)
val succ : t -> int -> int list

(** Predecessors of [v], ascending. *)
val pred : t -> int -> int list

(** All edges as [(u, v)] pairs, lexicographic. *)
val edges : t -> (int * int) list

(** [copy g] — an independent copy. *)
val copy : t -> t

(** [remove_edges g es] — [g] without the edges in [es]. *)
val remove_edges : t -> (int * int) list -> t

(** [is_dag g] — no directed cycle. *)
val is_dag : t -> bool

(** [topo_sort g] — a topological order, smallest vertex first among ready
    vertices (deterministic). [None] if [g] has a cycle. *)
val topo_sort : t -> int list option

(** [reachable g v] — vertices reachable from [v], including [v]. *)
val reachable : t -> int -> bool array

(** [has_cycle_through g u v] — would adding edge [u -> v] close a cycle
    (i.e. is [u] reachable from [v])? *)
val has_cycle_through : t -> int -> int -> bool

(** Weakly connected components, each sorted ascending, in order of their
    smallest vertex. *)
val weak_components : t -> int list list

(** [find_cycle g] — vertices of some directed cycle, in order, if any. *)
val find_cycle : t -> int list option

val pp : Format.formatter -> t -> unit

let of_order g order =
  let pos = Array.make (Digraph.n_vertices g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  List.filter (fun (u, v) -> pos.(v) < pos.(u)) (Digraph.edges g)

let minimal_set g =
  let n = Digraph.n_vertices g in
  let state = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let back = ref [] in
  let rec dfs u =
    state.(u) <- 1;
    List.iter
      (fun v ->
        match state.(v) with
        | 1 -> back := (u, v) :: !back
        | 0 -> dfs v
        | _ -> ())
      (Digraph.succ g u);
    state.(u) <- 2
  in
  for v = 0 to n - 1 do
    if state.(v) = 0 then dfs v
  done;
  List.rev !back

let greedy_fas g ~weight =
  let n = Digraph.n_vertices g in
  let removed = Array.make n false in
  let out_w = Array.make n 0.0 and in_w = Array.make n 0.0 in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        out_w.(u) <- out_w.(u) +. weight u v;
        in_w.(v) <- in_w.(v) +. weight u v)
      (Digraph.succ g u)
  done;
  let live_out v = List.exists (fun w -> not removed.(w)) (Digraph.succ g v) in
  let live_in v = List.exists (fun w -> not removed.(w)) (Digraph.pred g v) in
  let remove v =
    removed.(v) <- true;
    List.iter (fun w -> in_w.(w) <- in_w.(w) -. weight v w) (Digraph.succ g v);
    List.iter (fun w -> out_w.(w) <- out_w.(w) -. weight w v) (Digraph.pred g v)
  in
  let s1 = ref [] and s2 = ref [] in
  let remaining = ref n in
  while !remaining > 0 do
    (* Peel sinks. *)
    let progress = ref true in
    while !progress do
      progress := false;
      for v = 0 to n - 1 do
        if (not removed.(v)) && not (live_out v) then begin
          s2 := v :: !s2;
          remove v;
          decr remaining;
          progress := true
        end
      done
    done;
    (* Peel sources. *)
    let progress = ref true in
    while !progress do
      progress := false;
      for v = 0 to n - 1 do
        if (not removed.(v)) && not (live_in v) then begin
          s1 := v :: !s1;
          remove v;
          decr remaining;
          progress := true
        end
      done
    done;
    if !remaining > 0 then begin
      (* Remove the vertex maximising out-weight minus in-weight. *)
      let best = ref (-1) and best_score = ref neg_infinity in
      for v = 0 to n - 1 do
        if not removed.(v) then begin
          let score = out_w.(v) -. in_w.(v) in
          if score > !best_score then begin
            best := v;
            best_score := score
          end
        end
      done;
      s1 := !best :: !s1;
      remove !best;
      decr remaining
    end
  done;
  let order = Array.of_list (List.rev !s1 @ !s2) in
  of_order g order

let is_backedge_set g es = Digraph.is_dag (Digraph.remove_edges g es)

let is_minimal g es =
  is_backedge_set g es
  && List.for_all
       (fun (u, v) ->
         let dag = Digraph.remove_edges g es in
         Digraph.has_cycle_through dag u v)
       es

let total_weight es ~weight = List.fold_left (fun acc (u, v) -> acc +. weight u v) 0.0 es

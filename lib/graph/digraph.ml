module ISet = Set.Make (Int)

type t = { n : int; succs : ISet.t array; preds : ISet.t array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; succs = Array.make n ISet.empty; preds = Array.make n ISet.empty; m = 0 }

let n_vertices g = g.n
let n_edges g = g.m

let check g v = if v < 0 || v >= g.n then invalid_arg "Digraph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  if u <> v && not (ISet.mem v g.succs.(u)) then begin
    g.succs.(u) <- ISet.add v g.succs.(u);
    g.preds.(v) <- ISet.add u g.preds.(v);
    g.m <- g.m + 1
  end

let has_edge g u v =
  check g u;
  check g v;
  ISet.mem v g.succs.(u)

let succ g v =
  check g v;
  ISet.elements g.succs.(v)

let pred g v =
  check g v;
  ISet.elements g.preds.(v)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    ISet.fold (fun v l -> (u, v) :: l) g.succs.(u) !acc |> fun l -> acc := l
  done;
  List.sort compare !acc

let copy g = { n = g.n; succs = Array.copy g.succs; preds = Array.copy g.preds; m = g.m }

let remove_edge g u v =
  check g u;
  check g v;
  if ISet.mem v g.succs.(u) then begin
    g.succs.(u) <- ISet.remove v g.succs.(u);
    g.preds.(v) <- ISet.remove u g.preds.(v);
    g.m <- g.m - 1
  end

let remove_edges g es =
  let h = copy g in
  List.iter
    (fun (u, v) ->
      check h u;
      check h v;
      if ISet.mem v h.succs.(u) then begin
        h.succs.(u) <- ISet.remove v h.succs.(u);
        h.preds.(v) <- ISet.remove u h.preds.(v);
        h.m <- h.m - 1
      end)
    es;
  h

(* Kahn's algorithm with a min-priority choice so the order is deterministic
   and favours small vertex ids. *)
let topo_sort g =
  let indeg = Array.init g.n (fun v -> ISet.cardinal g.preds.(v)) in
  let ready = ref ISet.empty in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then ready := ISet.add v !ready
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (ISet.is_empty !ready) do
    let v = ISet.min_elt !ready in
    ready := ISet.remove v !ready;
    order := v :: !order;
    incr count;
    ISet.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := ISet.add w !ready)
      g.succs.(v)
  done;
  if !count = g.n then Some (List.rev !order) else None

let is_dag g = topo_sort g <> None

let reachable g start =
  check g start;
  let seen = Array.make g.n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      ISet.iter dfs g.succs.(v)
    end
  in
  dfs start;
  seen

let has_cycle_through g u v =
  check g u;
  check g v;
  u = v || (reachable g v).(u)

let weak_components g =
  let comp = Array.make g.n (-1) in
  let rec flood c v =
    if comp.(v) = -1 then begin
      comp.(v) <- c;
      ISet.iter (flood c) g.succs.(v);
      ISet.iter (flood c) g.preds.(v)
    end
  in
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if comp.(v) = -1 then begin
      flood !c v;
      incr c
    end
  done;
  let buckets = Array.make !c [] in
  for v = g.n - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets

let find_cycle g =
  let state = Array.make g.n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let exception Cycle of int list in
  let rec dfs stack v =
    match state.(v) with
    | 1 ->
        let rec cut acc = function
          | [] -> acc
          | x :: rest -> if x = v then x :: acc else cut (x :: acc) rest
        in
        raise (Cycle (cut [] stack))
    | 2 -> ()
    | _ ->
        state.(v) <- 1;
        ISet.iter (dfs (v :: stack)) g.succs.(v);
        state.(v) <- 2
  in
  try
    for v = 0 to g.n - 1 do
      dfs [] v
    done;
    None
  with Cycle c -> Some c

let pp ppf g =
  Fmt.pf ppf "digraph(%d) {" g.n;
  List.iter (fun (u, v) -> Fmt.pf ppf " %d->%d" u v) (edges g);
  Fmt.pf ppf " }"

(** Propagation trees for the DAG(WT) protocol.

    Given an acyclic copy graph, DAG(WT) propagates updates along a tree [T]
    with the property that whenever site [sj] is a child of site [si] in the
    copy graph, [sj] is a descendant of [si] in [T] (Section 2 of the paper).

    A value of type [t] is a rooted forest over vertices [0 .. n-1]; roots
    have parent [-1]. *)

type t

(** [parent t v] is the parent of [v], or [-1] for a root. *)
val parent : t -> int -> int

val n_vertices : t -> int

(** Children of [v], ascending. *)
val children : t -> int -> int list

(** Roots of the forest, ascending. *)
val roots : t -> int list

(** [is_ancestor t a v] — is [a] a (strict or equal) ancestor of [v]? *)
val is_ancestor : t -> int -> int -> bool

(** Depth of [v]; roots have depth 0. *)
val depth : t -> int -> int

(** [path_down t a v] — vertices from [a] (exclusive) to [v] (inclusive)
    along the tree, assuming [a] is an ancestor of [v].
    @raise Invalid_argument otherwise. *)
val path_down : t -> int -> int -> int list

(** Vertices of the subtree rooted at [v], including [v]. *)
val subtree : t -> int -> int list

(** [of_parents parents] wraps a parent array.
    @raise Invalid_argument if the array does not describe a forest. *)
val of_parents : int array -> t

(** [chain_of_order order] — the chain [order.(0) -> order.(1) -> ...]. This
    is the variant the paper's implementation uses: sites adjacent in a total
    order consistent with the DAG (Section 5.1). *)
val chain_of_order : int array -> t

(** [of_dag g] builds a forest satisfying the required property: vertices of
    each weakly-connected component of [g] are chained in topological order,
    and components are independent trees. Falls back on less routing than a
    single global chain while remaining provably correct.
    @raise Invalid_argument if [g] is not a DAG. *)
val of_dag : Digraph.t -> t

(** [satisfies g t] — does [t] have the required property for copy graph [g]
    (every copy-graph child is a tree descendant)? *)
val satisfies : Digraph.t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Backedge computation (Section 4 and 4.2 of the paper).

    A set of edges of a copy graph is a set of {e backedges} if deleting them
    breaks every cycle; the BackEdge protocol propagates eagerly along those
    edges and lazily along the remaining DAG. The set should be {e minimal}:
    re-inserting any one of its edges into the residual DAG closes a cycle.
    Minimising the {e weight} of the set is the NP-hard feedback arc set
    problem, for which a greedy heuristic is provided. *)

(** [of_order g order] — the backedges of [g] with respect to a total site
    order: every edge [(u, v)] where [v] precedes [u] in [order]. This is the
    rule used by the paper's implementation (Section 5.2). The result is a
    valid backedge set, and is minimal whenever [order] restricted to the
    residual DAG is topological (always true here, since the residual edges
    all go forward in [order]). *)
val of_order : Digraph.t -> int array -> (int * int) list

(** [minimal_set g] — a minimal backedge set computed by depth-first search
    (the "simple depth first search" of Section 4): the DFS back edges. *)
val minimal_set : Digraph.t -> (int * int) list

(** [greedy_fas g ~weight] — a heuristic small-weight feedback arc set, via a
    weighted Eades–Lin–Smyth vertex ordering: repeatedly peel sinks and
    sources, otherwise remove the vertex maximising out-weight minus
    in-weight; backward edges of the resulting sequence form the set. *)
val greedy_fas : Digraph.t -> weight:(int -> int -> float) -> (int * int) list

(** [is_backedge_set g es] — does removing [es] from [g] yield a DAG? *)
val is_backedge_set : Digraph.t -> (int * int) list -> bool

(** [is_minimal g es] — [es] is a backedge set and re-inserting any one edge
    of [es] into the residual DAG closes a cycle. *)
val is_minimal : Digraph.t -> (int * int) list -> bool

(** Total weight of an edge set. *)
val total_weight : (int * int) list -> weight:(int -> int -> float) -> float

type t = { parents : int array; kids : int list array }

let n_vertices t = Array.length t.parents

let parent t v =
  if v < 0 || v >= n_vertices t then invalid_arg "Tree.parent: vertex out of range";
  t.parents.(v)

let children t v =
  if v < 0 || v >= n_vertices t then invalid_arg "Tree.children: vertex out of range";
  t.kids.(v)

let roots t =
  let acc = ref [] in
  for v = Array.length t.parents - 1 downto 0 do
    if t.parents.(v) = -1 then acc := v :: !acc
  done;
  !acc

let is_ancestor t a v =
  let rec up v = if v = -1 then false else if v = a then true else up t.parents.(v) in
  up v

let depth t v =
  let rec up acc v = if t.parents.(v) = -1 then acc else up (acc + 1) t.parents.(v) in
  up 0 v

let path_down t a v =
  let rec up acc v =
    if v = a then acc
    else if v = -1 then invalid_arg "Tree.path_down: not an ancestor"
    else up (v :: acc) t.parents.(v)
  in
  up [] v

let subtree t v =
  let rec collect v = v :: List.concat_map collect t.kids.(v) in
  collect v

let of_parents parents =
  let n = Array.length parents in
  let kids = Array.make n [] in
  Array.iteri
    (fun v p ->
      if p <> -1 then begin
        if p < 0 || p >= n then invalid_arg "Tree.of_parents: parent out of range";
        kids.(p) <- v :: kids.(p)
      end)
    parents;
  Array.iteri (fun v l -> kids.(v) <- List.sort compare l) kids;
  let t = { parents; kids } in
  (* Reject cycles: every vertex must reach a root. *)
  Array.iteri
    (fun v _ ->
      let rec up steps v =
        if steps > n then invalid_arg "Tree.of_parents: cycle in parent array"
        else if v <> -1 then up (steps + 1) parents.(v)
      in
      up 0 v)
    parents;
  t

let chain_of_order order =
  let n = Array.length order in
  let parents = Array.make n (-1) in
  for i = 1 to n - 1 do
    parents.(order.(i)) <- order.(i - 1)
  done;
  of_parents parents

let of_dag g =
  match Digraph.topo_sort g with
  | None -> invalid_arg "Tree.of_dag: graph has a cycle"
  | Some order ->
      let pos = Array.make (Digraph.n_vertices g) 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      let parents = Array.make (Digraph.n_vertices g) (-1) in
      let chain comp =
        (* Chain the component's vertices in topological order. *)
        let sorted = List.sort (fun a b -> compare pos.(a) pos.(b)) comp in
        let rec link = function
          | a :: (b :: _ as rest) ->
              parents.(b) <- a;
              link rest
          | [ _ ] | [] -> ()
        in
        link sorted
      in
      List.iter chain (Digraph.weak_components g);
      of_parents parents

let satisfies g t =
  List.for_all (fun (u, v) -> is_ancestor t u v) (Digraph.edges g)

let pp ppf t =
  Fmt.pf ppf "tree {";
  Array.iteri (fun v p -> if p <> -1 then Fmt.pf ppf " %d->%d" p v) t.parents;
  Fmt.pf ppf " }"

type txn = { gid : int; begin_ts : float; reads : (int * int) list; writes : int list }

type abort_cause = Stale_read | Ww_conflict | Dangerous

type verdict = Commit of { commit_ts : float; writes : (int * int) list } | Abort of abort_cause

type committed = {
  c_gid : int;
  c_commit : float;
  c_reads : (int * int) list;
  c_writes : (int * int) list;
  mutable in_c : bool; (* has an incoming rw-antidependency from a committed txn *)
  mutable out_c : bool; (* has an outgoing rw-antidependency to a committed txn *)
}

type t = {
  latest : (int, int * float) Hashtbl.t; (* item -> newest version, commit_ts *)
  version_ts : (int * int, float) Hashtbl.t; (* (item, version) -> commit_ts *)
  active : (int, float) Hashtbl.t; (* gid -> begin_ts *)
  mutable recent : committed list; (* newest first *)
  mutable commits : int;
  mutable n_stale : int;
  mutable n_ww : int;
  mutable n_dangerous : int;
}

let create () =
  {
    latest = Hashtbl.create 1024;
    version_ts = Hashtbl.create 4096;
    active = Hashtbl.create 64;
    recent = [];
    commits = 0;
    n_stale = 0;
    n_ww = 0;
    n_dangerous = 0;
  }

let begin_txn t ~gid ~begin_ts = Hashtbl.replace t.active gid begin_ts
let forget t ~gid = Hashtbl.remove t.active gid
let active_count t = Hashtbl.length t.active
let recent_count t = List.length t.recent

let latest t item =
  Option.value ~default:(0, neg_infinity) (Hashtbl.find_opt t.latest item)

let latest_version t item = fst (latest t item)

(* Was [v_read] the latest version of [item] as of [begin_ts]? Either it
   still is the latest (and was committed by then), or its successor
   committed strictly after the snapshot was taken. A successor evicted from
   the window committed at or before the GC floor, which never exceeds any
   live begin timestamp, so eviction means "visible at begin" — stale. *)
let snapshot_ok t ~begin_ts (item, v_read) =
  let v_lat, lat_ts = latest t item in
  if v_read > v_lat then false
  else if v_read = v_lat then lat_ts <= begin_ts
  else
    match Hashtbl.find_opt t.version_ts (item, v_read + 1) with
    | Some ts -> ts > begin_ts
    | None -> false

(* Every certified write and committed-transaction record older than the
   oldest active begin timestamp can no longer participate in a snapshot
   check or a dangerous structure with anything that certifies later. *)
let gc t ~now =
  let floor = Hashtbl.fold (fun _ b acc -> min b acc) t.active now in
  t.recent <- List.filter (fun r -> r.c_commit > floor) t.recent;
  let dead =
    Hashtbl.fold (fun k ts acc -> if ts <= floor then k :: acc else acc) t.version_ts []
  in
  List.iter (Hashtbl.remove t.version_ts) dead

let intersects keys pairs = List.exists (fun (i, _) -> List.mem i keys) pairs

let certify t ~now (txn : txn) =
  Hashtbl.remove t.active txn.gid;
  if not (List.for_all (snapshot_ok t ~begin_ts:txn.begin_ts) txn.reads) then begin
    t.n_stale <- t.n_stale + 1;
    Abort Stale_read
  end
  else if
    (* First committer wins: a concurrent transaction already committed a
       write to something we also write. *)
    List.exists (fun item -> snd (latest t item) > txn.begin_ts) txn.writes
  then begin
    t.n_ww <- t.n_ww + 1;
    Abort Ww_conflict
  end
  else begin
    let read_items = List.map fst txn.reads in
    let concurrent u = u.c_commit > txn.begin_ts in
    (* Outgoing rw edges: committed concurrent U overwrote something we
       read. Our reads passed the snapshot check, so U's version is
       invisible to us — a genuine antidependency. *)
    let outs = List.filter (fun u -> concurrent u && intersects read_items u.c_writes) t.recent in
    (* Incoming rw edges: committed concurrent V read something we are about
       to overwrite. *)
    let ins = List.filter (fun v -> concurrent v && intersects txn.writes v.c_reads) t.recent in
    if
      (outs <> [] && ins <> [])
      || List.exists (fun u -> u.out_c) outs
      || List.exists (fun v -> v.in_c) ins
    then begin
      (* Either we are the pivot of a dangerous structure, or committing
         would complete one whose pivot already committed. *)
      t.n_dangerous <- t.n_dangerous + 1;
      Abort Dangerous
    end
    else begin
      let vwrites =
        List.map
          (fun item ->
            let v = latest_version t item + 1 in
            Hashtbl.replace t.latest item (v, now);
            Hashtbl.replace t.version_ts (item, v) now;
            (item, v))
          txn.writes
      in
      let r =
        {
          c_gid = txn.gid;
          c_commit = now;
          c_reads = txn.reads;
          c_writes = vwrites;
          in_c = ins <> [];
          out_c = outs <> [];
        }
      in
      List.iter (fun u -> u.in_c <- true) outs;
      List.iter (fun v -> v.out_c <- true) ins;
      t.recent <- r :: t.recent;
      t.commits <- t.commits + 1;
      if t.commits mod 64 = 0 then gc t ~now;
      Commit { commit_ts = now; writes = vwrites }
    end
  end

let stale_aborts t = t.n_stale
let ww_aborts t = t.n_ww
let dangerous_aborts t = t.n_dangerous

let seed t ~item ~version ~commit_ts =
  Hashtbl.replace t.latest item (version, commit_ts);
  Hashtbl.replace t.version_ts (item, version) commit_ts

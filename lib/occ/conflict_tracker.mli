(** Commit-time certifier for serializable snapshot isolation.

    Transactions read a snapshot as of their begin timestamp and certify at
    commit. The tracker enforces, in certification order:

    - {e snapshot validity}: every read must have been the latest committed
      version as of the begin timestamp (a lagging replica may serve an older
      version; such reads abort rather than weaken the snapshot);
    - {e first committer wins}: a write set overlapping a concurrent
      transaction that already committed aborts ([Ww_conflict]);
    - {e dangerous structures} (Cahill et al., as in PostgreSQL SSI): each
      committed transaction carries [in_c]/[out_c] flags recording incoming /
      outgoing rw-antidependencies from/to other committed transactions. A
      committing transaction aborts if it is itself a pivot (both an in- and
      an out-edge to concurrent committed transactions), or if one of its
      out-neighbours already has an out-edge, or one of its in-neighbours
      already has an in-edge — i.e. committing would complete a structure
      whose pivot already committed. Whichever member of a dangerous
      structure certifies last is aborted, so no cycle ever commits.

    Records older than the oldest active begin timestamp are garbage
    collected; {!begin_txn} must therefore be called when a transaction
    starts and {!forget} when it aborts before certification (a certified
    transaction is deregistered by {!certify} itself). *)

type txn = {
  gid : int;
  begin_ts : float;
  reads : (int * int) list;  (** (item, version observed at begin_ts). *)
  writes : int list;  (** Ascending, distinct. *)
}

type abort_cause = Stale_read | Ww_conflict | Dangerous

type verdict =
  | Commit of { commit_ts : float; writes : (int * int) list }
      (** Certified; [writes] carry the newly assigned versions. *)
  | Abort of abort_cause

type t

val create : unit -> t

(** Register an active transaction (bounds the GC window). *)
val begin_txn : t -> gid:int -> begin_ts:float -> unit

(** Deregister a transaction that will never certify. Idempotent. *)
val forget : t -> gid:int -> unit

(** [certify t ~now txn] — validate and, on success, commit [txn] at
    timestamp [now] (must not regress). Deregisters [txn.gid]. *)
val certify : t -> now:float -> txn -> verdict

val latest_version : t -> int -> int

(** Pin an item's (version, commit_ts) — reconfiguration resync. *)
val seed : t -> item:int -> version:int -> commit_ts:float -> unit

(** {1 Introspection, for tests and metrics} *)

val active_count : t -> int
val recent_count : t -> int
val stale_aborts : t -> int
val ww_aborts : t -> int
val dangerous_aborts : t -> int

(** Backward validation for epoch-based OCC.

    The validator owns the authoritative latest-version table. A transaction
    presents the versions it read during optimistic execution and the items
    it wants to write; it passes iff every read is still the latest certified
    version — i.e. no transaction that validated since it began overwrote
    anything it observed. Winners atomically bump the versions of their write
    set, so validation order {e is} the serialization order: every ww, wr and
    rw conflict between winners agrees with it.

    Pure and deterministic — also the unit under the [occ-validate] micro
    bench. *)

type txn = {
  gid : int;
  reads : (int * int) list;  (** (item, version observed). *)
  writes : int list;  (** Ascending, distinct. *)
}

type t

val create : unit -> t

(** Latest certified version of [item] (0 before any write certifies). *)
val latest : t -> int -> int

(** [validate t txn] — [Some writes] with the newly assigned version per
    written item if every read is current (the table is bumped), [None] if
    any read is stale (the table is untouched). *)
val validate : t -> txn -> (int * int) list option

val validated : t -> int
val rejected : t -> int

(** Pin [item]'s version (reconfiguration resync with the stores). *)
val seed : t -> item:int -> version:int -> unit

type txn = { gid : int; reads : (int * int) list; writes : int list }

type t = {
  latest : (int, int) Hashtbl.t; (* item -> last certified version *)
  mutable n_validated : int;
  mutable n_rejected : int;
}

let create () = { latest = Hashtbl.create 1024; n_validated = 0; n_rejected = 0 }

let latest t item = Option.value ~default:0 (Hashtbl.find_opt t.latest item)

let validate t txn =
  if List.for_all (fun (item, version) -> latest t item = version) txn.reads then begin
    let vwrites =
      List.map
        (fun item ->
          let v = latest t item + 1 in
          Hashtbl.replace t.latest item v;
          (item, v))
        txn.writes
    in
    t.n_validated <- t.n_validated + 1;
    Some vwrites
  end
  else begin
    t.n_rejected <- t.n_rejected + 1;
    None
  end

let validated t = t.n_validated
let rejected t = t.n_rejected

let seed t ~item ~version = Hashtbl.replace t.latest item version

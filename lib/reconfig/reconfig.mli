(** Deterministic online-reconfiguration plans.

    A plan is a list of copy-graph changes, each stamped with a simulated
    trigger time: add a replica of an item at a site, drop one, or move every
    movable replica off one site onto another. The coordinator in [lib/core]
    executes each step live under an epoch-based quiesce/transfer/switch
    protocol; this module only describes schedules (parse, print, validate,
    generate) so it can sit below the workload layer, mirroring [lib/fault]. *)

type step =
  | Add_replica of { item : int; site : int }
  | Drop_replica of { item : int; site : int }
  | Rebalance_site of { from_site : int; to_site : int }
      (** Move every replica held at [from_site] (never primaries) to
          [to_site]. *)

type timed = { at : float  (** trigger, simulated ms *); step : step }

type plan = { steps : timed list  (** sorted by trigger time *) }

val empty : plan
val is_empty : plan -> bool
val n_steps : plan -> int

val last_event : plan -> float
(** Latest trigger time in the plan, 0 when empty. Used to extend the
    driver's simulation horizon. *)

val validate : n_sites:int -> n_items:int -> plan -> unit
(** Raises [Invalid_argument] on out-of-range sites/items, negative or
    non-finite trigger times, or a rebalance from a site to itself. *)

val of_string : string -> (plan, string) result
(** Parse a [--reconfig] spec: [;]-separated clauses
    [add@T:item=I,site=S], [drop@T:item=I,site=S],
    [rebalance@T:from=A,to=B]. Steps are sorted by trigger time. *)

val to_string : plan -> string
(** Canonical spec string; [of_string (to_string p)] = [Ok p]. *)

val pp : plan Fmt.t
(** [to_string], or ["(none)"] for the empty plan. *)

val synthetic :
  n_sites:int -> n_items:int -> seed:int -> n_steps:int -> ?window:float * float -> unit -> plan
(** Seeded random plan of [n_steps] steps (~50% add / 30% drop / 20%
    rebalance) with trigger times uniform in [window] (default 200–4000 ms).
    Assumes the round-robin primary layout of [Placement.generate]: adds and
    drops target sites strictly after the item's primary in the site order
    and rebalances always move forward, so applying the plan keeps an
    acyclic copy graph acyclic. The RNG stream is derived from [seed] but
    isolated from the workload streams. Returns [empty] when [n_sites < 2]. *)

module Rng = Repdb_sim.Rng

type step =
  | Add_replica of { item : int; site : int }
  | Drop_replica of { item : int; site : int }
  | Rebalance_site of { from_site : int; to_site : int }

type timed = { at : float; step : step }

type plan = { steps : timed list }

let empty = { steps = [] }
let is_empty p = p.steps = []
let n_steps p = List.length p.steps

let last_event p = List.fold_left (fun acc t -> Float.max acc t.at) 0.0 p.steps

let validate ~n_sites ~n_items p =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let site_ok name v =
    if v < 0 || v >= n_sites then fail "Reconfig: %s=%d out of range for %d sites" name v n_sites
  in
  let item_ok v =
    if v < 0 || v >= n_items then fail "Reconfig: item=%d out of range for %d items" v n_items
  in
  List.iter
    (fun t ->
      if t.at < 0.0 || not (Float.is_finite t.at) then fail "Reconfig: step at %g ms" t.at;
      match t.step with
      | Add_replica { item; site } | Drop_replica { item; site } ->
          item_ok item;
          site_ok "site" site
      | Rebalance_site { from_site; to_site } ->
          site_ok "from" from_site;
          site_ok "to" to_site;
          if from_site = to_site then fail "Reconfig: rebalance from=%d to itself" from_site)
    p.steps

(* --- spec parsing --------------------------------------------------------- *)

let ( let* ) = Result.bind

let parse_float name v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "reconfig: %s is not a number: %S" name v)

let parse_int name v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "reconfig: %s is not an integer: %S" name v)

(* "k1=v1,k2=v2" -> assoc list *)
let parse_opts s =
  let parts = if s = "" then [] else String.split_on_char ',' s in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      match String.index_opt part '=' with
      | Some i ->
          let k = String.sub part 0 i
          and v = String.sub part (i + 1) (String.length part - i - 1) in
          Ok ((k, v) :: acc)
      | None -> Error (Printf.sprintf "reconfig: expected key=value, got %S" part))
    (Ok []) parts

let req_field opts key parse =
  match List.assoc_opt key opts with
  | Some v -> parse key v
  | None -> Error (Printf.sprintf "reconfig: missing %s=..." key)

let parse_clause acc clause =
  let head, opts_s =
    match String.index_opt clause ':' with
    | Some i -> (String.sub clause 0 i, String.sub clause (i + 1) (String.length clause - i - 1))
    | None -> (clause, "")
  in
  let* opts = parse_opts opts_s in
  match String.index_opt head '@' with
  | Some i -> (
      let kind = String.sub head 0 i
      and arg = String.sub head (i + 1) (String.length head - i - 1) in
      let* at = parse_float "trigger time" arg in
      match kind with
      | "add" ->
          let* item = req_field opts "item" parse_int in
          let* site = req_field opts "site" parse_int in
          Ok ({ at; step = Add_replica { item; site } } :: acc)
      | "drop" ->
          let* item = req_field opts "item" parse_int in
          let* site = req_field opts "site" parse_int in
          Ok ({ at; step = Drop_replica { item; site } } :: acc)
      | "rebalance" ->
          let* from_site = req_field opts "from" parse_int in
          let* to_site = req_field opts "to" parse_int in
          Ok ({ at; step = Rebalance_site { from_site; to_site } } :: acc)
      | other -> Error (Printf.sprintf "reconfig: unknown clause %S" other))
  | None -> Error (Printf.sprintf "reconfig: unknown clause %S" clause)

(* Canonical step order: trigger time, ties broken structurally, so parsing,
   [synthetic] and [to_string] all agree on one deterministic sequence. *)
let sort_steps steps = List.sort (fun a b -> compare (a.at, a.step) (b.at, b.step)) steps

let of_string spec =
  let clauses =
    String.split_on_char ';' spec |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  let* steps =
    List.fold_left (fun acc c -> Result.bind acc (fun acc -> parse_clause acc c)) (Ok []) clauses
  in
  Ok { steps = sort_steps steps }

let to_string p =
  let buf = Buffer.create 64 in
  let clause fmt =
    if Buffer.length buf > 0 then Buffer.add_char buf ';';
    Printf.ksprintf (Buffer.add_string buf) fmt
  in
  List.iter
    (fun t ->
      match t.step with
      | Add_replica { item; site } -> clause "add@%g:item=%d,site=%d" t.at item site
      | Drop_replica { item; site } -> clause "drop@%g:item=%d,site=%d" t.at item site
      | Rebalance_site { from_site; to_site } ->
          clause "rebalance@%g:from=%d,to=%d" t.at from_site to_site)
    p.steps;
  Buffer.contents buf

let pp ppf p = if is_empty p then Fmt.string ppf "(none)" else Fmt.string ppf (to_string p)

(* --- synthetic schedules -------------------------------------------------- *)

let synthetic ~n_sites ~n_items ~seed ~n_steps ?(window = (200.0, 4000.0)) () =
  if n_sites < 2 || n_items < 1 || n_steps <= 0 then empty
  else begin
    let rng = Rng.create ((seed * 97) + 29) in
    let lo, hi = window in
    (* Primaries are assumed round-robin ([item mod n_sites], the layout
       [Placement.generate] uses), so adds and drops can target sites
       strictly after the primary in the site order — DAG- and
       ancestor-property-preserving under the chain tree. Steps that turn
       out redundant against the drawn replica sets are no-ops at apply
       time. *)
    let draw_item_site () =
      let rec go tries =
        let item = Rng.int rng n_items in
        let primary = item mod n_sites in
        if primary < n_sites - 1 then (item, primary + 1 + Rng.int rng (n_sites - 1 - primary))
        else if tries > 50 then (item mod (n_items - 1), n_sites - 1)
        else go (tries + 1)
      in
      go 0
    in
    let steps =
      List.init n_steps (fun _ ->
          let at = Rng.float_range rng lo hi in
          let kind = Rng.float rng in
          let step =
            if kind < 0.5 then
              let item, site = draw_item_site () in
              Add_replica { item; site }
            else if kind < 0.8 then
              let item, site = draw_item_site () in
              Drop_replica { item; site }
            else begin
              (* [to > from] keeps every moved edge pointing forward in the
                 site order, so an acyclic copy graph stays acyclic. *)
              let from_site = Rng.int rng (n_sites - 1) in
              let to_site = from_site + 1 + Rng.int rng (n_sites - 1 - from_site) in
              Rebalance_site { from_site; to_site }
            end
          in
          { at; step })
    in
    { steps = sort_steps steps }
  end

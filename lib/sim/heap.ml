type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap entry in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end

let push h ~time ~seq value =
  let entry = { time; seq; value } in
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  (* Sift up. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h.data.(i) h.data.(parent) then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.len - 1)

let pop_min h =
  if h.len = 0 then raise Not_found;
  let min = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    (* Sift down. *)
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest <> i then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(!smallest);
        h.data.(!smallest) <- tmp;
        down !smallest
      end
    in
    down 0
  end;
  (min.time, min.seq, min.value)

let min_time h = if h.len = 0 then None else Some h.data.(0).time

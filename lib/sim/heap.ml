(* Structure-of-arrays binary min-heap.

   Priorities live in a flat [float array] (unboxed storage) with a parallel
   [int array] of tie-break sequences and an ['a array] of payloads, so a
   push/pop cycle performs zero allocation: no per-entry record, no result
   tuple on the value-only pop, and growth doubles the three arrays in
   place. The previous record-of-three-fields layout allocated 4 words per
   push plus a 4-word tuple per pop — ~8 words on the scheduler's single
   hottest path.

   Both sift directions move a "hole" instead of swapping pairwise: the
   entry in motion stays in registers, each level does one write per array
   (the displaced element into the hole), and the entry is written once at
   its final position. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { times = [||]; seqs = [||]; vals = [||]; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let grow h v =
  let cap = Array.length h.times in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nt = Array.make ncap 0.0 in
    let ns = Array.make ncap 0 in
    let nv = Array.make ncap v in
    Array.blit h.times 0 nt 0 h.len;
    Array.blit h.seqs 0 ns 0 h.len;
    Array.blit h.vals 0 nv 0 h.len;
    h.times <- nt;
    h.seqs <- ns;
    h.vals <- nv
  end

let push h ~time ~seq value =
  grow h value;
  let times = h.times and seqs = h.seqs and vals = h.vals in
  let i = ref h.len in
  h.len <- h.len + 1;
  (* Sift the hole up: parents larger than the new entry move down a level. *)
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = times.(p) in
    if time < pt || (time = pt && seq < seqs.(p)) then begin
      times.(!i) <- pt;
      seqs.(!i) <- seqs.(p);
      vals.(!i) <- vals.(p);
      i := p
    end
    else moving := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  vals.(!i) <- value

let top_time h =
  if h.len = 0 then invalid_arg "Heap.top_time: empty heap";
  h.times.(0)

let pop_top h =
  if h.len = 0 then invalid_arg "Heap.pop_top: empty heap";
  let min_v = h.vals.(0) in
  h.len <- h.len - 1;
  let n = h.len in
  if n > 0 then begin
    let times = h.times and seqs = h.seqs and vals = h.vals in
    (* Sift the root hole down: the smaller child moves up one level until
       the old last leaf fits. *)
    let time = times.(n) and seq = seqs.(n) and v = vals.(n) in
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= n then moving := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (times.(r) < times.(l) || (times.(r) = times.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        if times.(c) < time || (times.(c) = time && seqs.(c) < seq) then begin
          times.(!i) <- times.(c);
          seqs.(!i) <- seqs.(c);
          vals.(!i) <- vals.(c);
          i := c
        end
        else moving := false
      end
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    vals.(!i) <- v;
    (* Drop the freed slot's payload reference so popped closures are not
       retained by the heap (duplicate a live value instead). *)
    vals.(n) <- vals.(0)
  end;
  min_v

let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let time = h.times.(0) and seq = h.seqs.(0) in
  let v = pop_top h in
  (time, seq, v)

let pop_min_opt h = if h.len = 0 then None else Some (pop_min h)
let min_time h = if h.len = 0 then None else Some h.times.(0)

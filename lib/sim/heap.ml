type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap entry in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end

(* Both sift directions move a "hole" instead of swapping pairwise: the
   entry in motion stays in a register, each level does one array write
   (the displaced element into the hole), and the entry is written once at
   its final position — half the writes of the swap formulation on the
   scheduler's hottest loop. *)

let push h ~time ~seq value =
  let entry = { time; seq; value } in
  grow h entry;
  let i = ref h.len in
  h.len <- h.len + 1;
  (* Sift the hole up: parents larger than [entry] move down one level. *)
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less entry h.data.(parent) then begin
      h.data.(!i) <- h.data.(parent);
      i := parent
    end
    else moving := false
  done;
  h.data.(!i) <- entry

let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let min = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    let entry = h.data.(h.len) in
    (* Sift the hole down from the root: the smaller child moves up one
       level until [entry] (the old last leaf) fits. *)
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= h.len then moving := false
      else begin
        let r = l + 1 in
        let c = if r < h.len && less h.data.(r) h.data.(l) then r else l in
        if less h.data.(c) entry then begin
          h.data.(!i) <- h.data.(c);
          i := c
        end
        else moving := false
      end
    done;
    h.data.(!i) <- entry
  end;
  (min.time, min.seq, min.value)

let pop_min_opt h = if h.len = 0 then None else Some (pop_min h)

let min_time h = if h.len = 0 then None else Some h.data.(0).time

(** Deterministic discrete-event simulation kernel.

    The kernel owns a virtual clock and an event heap. Simulated {e processes}
    are ordinary OCaml functions run under an effect handler: they may block
    on {!delay} or {!suspend} (and on the synchronisation primitives built on
    top of them — {!Condvar}, {!Mailbox}, {!Resource}), at which point control
    returns to the scheduler. Between two blocking points a process runs
    atomically, which is how the paper's "critical sections" around commit
    are realised.

    Time is measured in {b milliseconds} throughout the repository. *)

type t

(** {1 Effects performed by processes} *)

type _ Effect.t +=
  | Delay : float -> unit Effect.t
        (** Block for a simulated duration. *)
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
        (** [Suspend register]: park the process and hand a one-shot [resume]
            function to [register]. Calling [resume v] re-schedules the
            process at the current simulated time with result [v]; subsequent
            calls are ignored. *)

(** {1 Kernel} *)

(** [create ()] returns a fresh simulation with the clock at [0.0].
    [profile] (default {!Repdb_obs.Profile.disabled}) receives
    per-event-category execution time when enabled; see {!spawn}'s [cat]. *)
val create : ?profile:Repdb_obs.Profile.t -> unit -> t

(** The kernel's profiler (the one passed to {!create}). *)
val profile : t -> Repdb_obs.Profile.t

val set_profile : t -> Repdb_obs.Profile.t -> unit

(** Current simulated time (ms). *)
val now : t -> float

(** [clock t] — the kernel's clock as a thunk, for observers (e.g. trace
    collectors) that timestamp events without holding the kernel itself. *)
val clock : t -> unit -> float

(** Number of events executed so far. *)
val events_executed : t -> int

(** [spawn t f] schedules process [f] to start at the current time.

    [cat] (a {!Repdb_obs.Profile.cat} id) attributes the work to a profiler
    category when profiling is enabled. Work a process schedules on its own
    behalf — delays, suspends, and nested [spawn]/[at]/[after] calls without
    an explicit [cat] — inherits the process's category, so tagging the
    top-level processes is enough to attribute the whole run. *)
val spawn : ?cat:int -> t -> (unit -> unit) -> unit

(** [at t time f] runs plain callback [f] at absolute [time].
    @raise Invalid_argument if [time] is in the past. *)
val at : ?cat:int -> t -> float -> (unit -> unit) -> unit

(** [after t d f] runs [f] after delay [d >= 0]. *)
val after : ?cat:int -> t -> float -> (unit -> unit) -> unit

(** [step t] executes the single next scheduled event, advancing the clock
    to its timestamp.
    @raise Invalid_argument if no events are scheduled.
    @raise Stuck if the event's process raised an unhandled exception. *)
val step : t -> unit

(** [run t] executes events until the heap is empty.
    @raise Stuck if a process raised an unhandled exception. *)
val run : t -> unit

(** [run_until t horizon] executes events with time [<= horizon], leaving the
    clock at [horizon] (or at the last event if the heap drains first). *)
val run_until : t -> float -> unit

(** {1 Process-side operations} *)

(** [delay d] blocks the calling process for [d] ms. Must be called from
    within a process. *)
val delay : float -> unit

(** [suspend register] parks the calling process; see {!Suspend}. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** Raised by {!run} when a process terminates with an unhandled exception. *)
exception Stuck of exn

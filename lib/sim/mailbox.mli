(** Unbounded FIFO mailboxes connecting simulated processes.

    Messages are delivered in send order; receivers are served in arrival
    order. The network layer builds its reliable FIFO channels on top of
    these. *)

type 'a t

val create : unit -> 'a t

(** [send mb v] enqueues [v], waking the longest-waiting receiver if any.
    Never blocks. *)
val send : 'a t -> 'a -> unit

(** [recv mb] dequeues the next message, blocking while the mailbox is
    empty. *)
val recv : 'a t -> 'a

(** [recv_timeout sim mb d] is [Some v] if a message arrives within [d] ms,
    [None] otherwise. *)
val recv_timeout : Sim.t -> 'a t -> float -> 'a option

(** [peek mb] is the next message without consuming it. *)
val peek : 'a t -> 'a option

(** Number of queued (undelivered) messages. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

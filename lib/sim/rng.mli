(** Deterministic pseudo-random number generator (splitmix64).

    Every experiment in this repository is driven by an explicit [Rng.t] so
    that runs are reproducible from a single integer seed, independent of the
    global [Random] state. *)

type t

(** [create seed] returns a fresh generator. Generators created from the same
    seed produce identical streams. *)
val create : int -> t

(** [split t] derives an independent generator from [t], advancing [t]. *)
val split : t -> t

(** [copy t] duplicates the full state of [t]. *)
val copy : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [float_range t lo hi] is uniform in [lo, hi). *)
val float_range : t -> float -> float -> float

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** [exponential t mean] samples an exponential distribution. *)
val exponential : t -> float -> float

(** [pick t arr] is a uniformly chosen element of [arr].
    Requires [arr] non-empty. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

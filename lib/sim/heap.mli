(** Binary min-heap of timestamped events, ties broken by insertion sequence
    so that events scheduled at the same instant run in FIFO order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h ~time ~seq v] inserts [v] with priority [(time, seq)]. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the minimum entry.
    @raise Invalid_argument if the heap is empty. *)
val pop_min : 'a t -> float * int * 'a

(** [pop_min_opt h] is [pop_min h], or [None] if the heap is empty. *)
val pop_min_opt : 'a t -> (float * int * 'a) option

(** [min_time h] is the priority of the minimum entry, if any. *)
val min_time : 'a t -> float option

(** Binary min-heap of timestamped events, ties broken by insertion sequence
    so that events scheduled at the same instant run in FIFO order.

    Storage is structure-of-arrays ([float array] priorities, [int array]
    sequences, payload array), so {!push}/{!pop_top} allocate nothing beyond
    amortised growth. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h ~time ~seq v] inserts [v] with priority [(time, seq)]. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** [top_time h] is the priority of the minimum entry, without allocating.
    @raise Invalid_argument if the heap is empty. *)
val top_time : 'a t -> float

(** [pop_top h] removes and returns the minimum entry's payload only —
    the allocation-free pop used by the scheduler (read {!top_time} first
    if the priority is needed).
    @raise Invalid_argument if the heap is empty. *)
val pop_top : 'a t -> 'a

(** [pop_min h] removes and returns the minimum entry as a tuple.
    @raise Invalid_argument if the heap is empty. *)
val pop_min : 'a t -> float * int * 'a

(** [pop_min_opt h] is [pop_min h], or [None] if the heap is empty. *)
val pop_min_opt : 'a t -> (float * int * 'a) option

(** [min_time h] is the priority of the minimum entry, if any. *)
val min_time : 'a t -> float option

(** Condition variables for simulated processes.

    Unlike OS condition variables there is no associated mutex: simulated
    processes already run atomically between blocking points, so checking the
    predicate and calling {!await} cannot race. *)

type t

val create : unit -> t

(** Park the calling process until {!signal} or {!broadcast}. *)
val await : t -> unit

(** [await_timeout sim cv d] parks for at most [d] ms; returns [false] on
    timeout, [true] if woken. *)
val await_timeout : Sim.t -> t -> float -> bool

(** Wake the longest-waiting process, if any. *)
val signal : t -> unit

(** Wake every waiting process. *)
val broadcast : t -> unit

(** Number of processes currently parked. *)
val waiters : t -> int

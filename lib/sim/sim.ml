module Profile = Repdb_obs.Profile

type t = {
  clock : float array;
      (* One-element flat float array: a [mutable clock : float] field in a
         mixed record is boxed, so every clock advance would allocate. *)
  mutable seq : int;
  mutable executed : int;
  events : (unit -> unit) Heap.t;
  mutable profile : Profile.t;
}

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

exception Stuck of exn

let create ?(profile = Profile.disabled) () =
  { clock = [| 0.0 |]; seq = 0; executed = 0; events = Heap.create (); profile }

let now t = t.clock.(0)
let clock t () = t.clock.(0)
let events_executed t = t.executed
let profile t = t.profile
let set_profile t p = t.profile <- p

(* When profiling, every scheduled closure is wrapped so its execution time
   and allocation are charged to a category: the caller's explicit [?cat],
   or — for the implicit re-schedules a process performs on its own behalf
   (delays, suspends) — the category current at schedule time, which is the
   scheduling process's own. Disabled profiling costs one branch here. *)
let schedule ?cat t time fn =
  t.seq <- t.seq + 1;
  let fn =
    if Profile.on t.profile then
      let cat = match cat with Some c -> c | None -> Profile.current t.profile in
      Profile.wrap t.profile ~cat fn
    else fn
  in
  Heap.push t.events ~time ~seq:t.seq fn

let at ?cat t time fn =
  if time < t.clock.(0) then invalid_arg "Sim.at: time is in the past";
  schedule ?cat t time fn

let after ?cat t d fn =
  if d < 0.0 then invalid_arg "Sim.after: negative delay";
  schedule ?cat t (t.clock.(0) +. d) fn

(* Run [f] as a process: effects [Delay] and [Suspend] park the computation
   and re-enter through the event heap. The handler is installed deeply, so
   resumed continuations keep it. *)
let run_process t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          let bt = Printexc.get_raw_backtrace () in
          Printexc.raise_with_backtrace (Stuck e) bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0.0 then
                    discontinue k (Invalid_argument "Sim.delay: negative delay")
                  else schedule t (t.clock.(0) +. d) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  (* The resumer may run under a different category (e.g. a
                     network delivery waking a client), so pin the
                     continuation to the suspending process's own. *)
                  let cat =
                    if Profile.on t.profile then Some (Profile.current t.profile) else None
                  in
                  let resume v =
                    if not !resumed then begin
                      resumed := true;
                      schedule ?cat t t.clock.(0) (fun () -> continue k v)
                    end
                  in
                  register resume)
          | _ -> None);
    }

let spawn ?cat t f = schedule ?cat t t.clock.(0) (fun () -> run_process t f)

let step t =
  if Heap.is_empty t.events then invalid_arg "Sim.step: no scheduled events";
  t.clock.(0) <- Heap.top_time t.events;
  t.executed <- t.executed + 1;
  (Heap.pop_top t.events) ()

let run t =
  while not (Heap.is_empty t.events) do
    t.clock.(0) <- Heap.top_time t.events;
    t.executed <- t.executed + 1;
    (Heap.pop_top t.events) ()
  done

let run_until t horizon =
  let events = t.events in
  while (not (Heap.is_empty events)) && Heap.top_time events <= horizon do
    t.clock.(0) <- Heap.top_time events;
    t.executed <- t.executed + 1;
    (Heap.pop_top events) ()
  done;
  if t.clock.(0) < horizon then t.clock.(0) <- horizon

let delay d = Effect.perform (Delay d)
let suspend register = Effect.perform (Suspend register)

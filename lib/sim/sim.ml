type t = {
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  events : (unit -> unit) Heap.t;
}

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

exception Stuck of exn

let create () = { clock = 0.0; seq = 0; executed = 0; events = Heap.create () }

let now t = t.clock
let clock t () = t.clock
let events_executed t = t.executed

let schedule t time fn =
  t.seq <- t.seq + 1;
  Heap.push t.events ~time ~seq:t.seq fn

let at t time fn =
  if time < t.clock then invalid_arg "Sim.at: time is in the past";
  schedule t time fn

let after t d fn =
  if d < 0.0 then invalid_arg "Sim.after: negative delay";
  schedule t (t.clock +. d) fn

(* Run [f] as a process: effects [Delay] and [Suspend] park the computation
   and re-enter through the event heap. The handler is installed deeply, so
   resumed continuations keep it. *)
let run_process t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          let bt = Printexc.get_raw_backtrace () in
          Printexc.raise_with_backtrace (Stuck e) bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0.0 then
                    discontinue k (Invalid_argument "Sim.delay: negative delay")
                  else schedule t (t.clock +. d) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let resume v =
                    if not !resumed then begin
                      resumed := true;
                      schedule t t.clock (fun () -> continue k v)
                    end
                  in
                  register resume)
          | _ -> None);
    }

let spawn t f = schedule t t.clock (fun () -> run_process t f)

let step t =
  if Heap.is_empty t.events then invalid_arg "Sim.step: no scheduled events";
  let time, _, fn = Heap.pop_min t.events in
  t.clock <- time;
  t.executed <- t.executed + 1;
  fn ()

let run t =
  while not (Heap.is_empty t.events) do
    step t
  done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.min_time t.events with
    | Some time when time <= horizon -> step t
    | Some _ | None -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let delay d = Effect.perform (Delay d)
let suspend register = Effect.perform (Suspend register)

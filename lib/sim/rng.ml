(* Splitmix-style generator on OCaml's native 63-bit int.

   The original implementation ran splitmix64 on [int64], but every [Int64]
   intermediate is a boxed custom block without flambda — ~10 allocations
   per draw on what is (after the event heap) the hottest path in the
   workload generator. Native [int] arithmetic wraps modulo 2^63 on 64-bit
   platforms, so the same xor-shift/multiply mixing runs allocation-free;
   the constants are the splitmix64 ones truncated to fit 62 bits (kept
   odd). Streams differ from the int64 version but remain deterministic
   per seed, which is all the repository relies on. *)

type t = { mutable state : int }

(* golden gamma truncated below 2^62, odd *)
let golden_gamma = 0x1E3779B97F4A7C15

let create seed = { state = (seed + 1) * 0x2545F4914F6CDD1D }

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

(* Next raw value: 63 bits, may be negative (top bit set). *)
let next t =
  t.state <- t.state + golden_gamma;
  mix t.state

let next_int64 t = Int64.of_int (next t)
let split t = { state = next t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Logical shift clears the sign bit: 62 uniform non-negative bits. *)
  (next t lsr 1) mod bound

(* 53 random bits mapped to [0, 1). *)
let float t =
  let bits = float_of_int (next t lsr 10) in
  bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. (float t *. (hi -. lo))
let bool t p = float t < p

let exponential t mean =
  let u = float t in
  -. mean *. log (1.0 -. u)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

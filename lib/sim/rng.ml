type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int (seed + 1)) 0x2545F4914F6CDD1DL }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value still fits OCaml's 63-bit int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(* 53 random bits mapped to [0, 1). *)
let float t =
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. (float t *. (hi -. lo))
let bool t p = float t < p

let exponential t mean =
  let u = float t in
  -. mean *. log (1.0 -. u)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Counted FIFO resources.

    A resource with capacity [c] admits at most [c] concurrent holders;
    further acquirers queue in FIFO order. A capacity-1 resource models a
    site's CPU: {!use} serialises service bursts, which is how the simulator
    reproduces the per-machine saturation of the paper's testbed. *)

type t

(** [create ~capacity ()] — [capacity >= 1]. *)
val create : capacity:int -> unit -> t

val capacity : t -> int

(** Units currently free. *)
val available : t -> int

(** Processes waiting to acquire. *)
val queue_length : t -> int

(** Acquire one unit, blocking FIFO if none free. *)
val acquire : t -> unit

(** Release one unit, waking the next waiter. *)
val release : t -> unit

(** [use t d] = acquire, hold for [d] simulated ms, release. *)
val use : t -> float -> unit

type waiter = { mutable cancelled : bool; wake : bool -> unit }

type t = { q : waiter Queue.t }

let create () = { q = Queue.create () }

let enqueue t wake =
  let w = { cancelled = false; wake } in
  Queue.add w t.q;
  w

let await t = Sim.suspend (fun resume -> ignore (enqueue t (fun _ -> resume ())))

let await_timeout sim t d =
  Sim.suspend (fun resume ->
      let w = enqueue t (fun woken -> resume woken) in
      Sim.after sim d (fun () ->
          if not w.cancelled then begin
            w.cancelled <- true;
            w.wake false
          end))

(* Pop waiters until a live one is found; cancelled entries are left over by
   timed-out waits. *)
let rec pop_live t =
  match Queue.take_opt t.q with
  | None -> None
  | Some w -> if w.cancelled then pop_live t else Some w

let signal t =
  match pop_live t with
  | None -> ()
  | Some w ->
      w.cancelled <- true;
      w.wake true

let broadcast t =
  let rec go () =
    match pop_live t with
    | None -> ()
    | Some w ->
        w.cancelled <- true;
        w.wake true;
        go ()
  in
  go ()

let waiters t = Queue.fold (fun acc w -> if w.cancelled then acc else acc + 1) 0 t.q

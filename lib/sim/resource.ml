type t = {
  cap : int;
  mutable free : int;
  waiters : (unit -> unit) Queue.t;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  { cap = capacity; free = capacity; waiters = Queue.create () }

let capacity t = t.cap
let available t = t.free
let queue_length t = Queue.length t.waiters

let acquire t =
  if t.free > 0 then t.free <- t.free - 1
  else Sim.suspend (fun resume -> Queue.add (fun () -> resume ()) t.waiters)

let release t =
  match Queue.take_opt t.waiters with
  | Some wake -> wake ()
  | None ->
      if t.free >= t.cap then invalid_arg "Resource.release: not held";
      t.free <- t.free + 1

let use t d =
  acquire t;
  Sim.delay d;
  release t

type 'a waiter = { mutable cancelled : bool; deliver : 'a option -> unit }

type 'a t = { items : 'a Queue.t; waiters : 'a waiter Queue.t }

let create () = { items = Queue.create (); waiters = Queue.create () }

let rec pop_live_waiter t =
  match Queue.take_opt t.waiters with
  | None -> None
  | Some w -> if w.cancelled then pop_live_waiter t else Some w

let send t v =
  match pop_live_waiter t with
  | Some w ->
      w.cancelled <- true;
      w.deliver (Some v)
  | None -> Queue.add v t.items

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None ->
      Sim.suspend (fun resume ->
          let w =
            {
              cancelled = false;
              deliver =
                (function
                | Some v -> resume v
                | None -> assert false (* no timeout on plain recv *));
            }
          in
          Queue.add w t.waiters)

let recv_timeout sim t d =
  match Queue.take_opt t.items with
  | Some v -> Some v
  | None ->
      Sim.suspend (fun resume ->
          let w = { cancelled = false; deliver = resume } in
          Queue.add w t.waiters;
          Sim.after sim d (fun () ->
              if not w.cancelled then begin
                w.cancelled <- true;
                w.deliver None
              end))

let peek t = Queue.peek_opt t.items
let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items

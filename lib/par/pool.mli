(** Domain pool for embarrassingly parallel fan-out.

    The experiment harness and the benchmark suite run many independent
    deterministic simulations (one [Driver.run] per protocol per swept
    parameter value). A pool owns [domains - 1] worker domains that, together
    with the calling domain, drain a shared task array by chunked
    work-stealing over an atomic index. Results land at the index of the
    input that produced them, so a parallel [map] returns exactly the array
    the sequential [Array.map] would — parallel runs are bit-identical to
    sequential ones as long as each task is self-contained (owns its own
    simulator, RNG and mutable state), which every [Driver.run] is.

    A pool may be reused for any number of successive [map] calls; it must
    not be used from two domains at once, and tasks must not call [map] on
    the pool that is running them (both raise [Invalid_argument]). *)

type t

(** [create ~domains ()] spawns [domains - 1] worker domains (so [map] uses
    [domains] domains in total, counting the caller). [chunk] fixes the
    claim size for every [map] on this pool (overridable per call);
    omitted, each [map] picks the adaptive default.
    @raise Invalid_argument if [domains < 1] or [chunk < 1]. *)
val create : ?chunk:int -> domains:int -> unit -> t

(** Total parallelism of the pool, counting the calling domain. *)
val domains : t -> int

(** [default_domains ()] is the default [-j]:
    [max 1 (Domain.recommended_domain_count () - 1)] — leave one core for
    the OS / the caller's other work, never less than 1 (sequential). *)
val default_domains : unit -> int

(** [map pool xs ~f] applies [f] to every element of [xs] in parallel and
    returns the results in input order. Tasks are claimed in chunks via an
    atomic index; output ordering is deterministic regardless of the
    interleaving (results land at the index of the input that produced
    them). If any [f x] raises, the first exception (by claim order) is
    re-raised in the caller with its original backtrace, after all domains
    have stopped claiming work. A pool with [domains = 1] (or a
    singleton/empty input) runs sequentially in the caller.

    [chunk] is the number of consecutive tasks claimed per atomic increment;
    values larger than the input are clamped to one claim. The adaptive
    default, [max 1 (n / (domains * 4))], leaves each domain a few claims so
    work-stealing can even out slow tasks while amortising claim overhead on
    large fan-outs.
    @raise Invalid_argument on concurrent or nested use of the same pool, or
    when [chunk < 1]. *)
val map : ?chunk:int -> t -> 'a array -> f:('a -> 'b) -> 'b array

(** The chunk size [map] uses when none is given. *)
val adaptive_chunk : domains:int -> n:int -> int

(** Shut the worker domains down and join them. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f pool] and shuts the pool down afterwards,
    whether [f] returns or raises. [chunk] as in {!create}. *)
val with_pool : ?chunk:int -> domains:int -> (t -> 'a) -> 'a

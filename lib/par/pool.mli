(** Domain pool for embarrassingly parallel fan-out.

    The experiment harness and the benchmark suite run many independent
    deterministic simulations (one [Driver.run] per protocol per swept
    parameter value). A pool owns [domains - 1] worker domains that, together
    with the calling domain, drain a shared task array by chunked
    work-stealing over an atomic index. Results land at the index of the
    input that produced them, so a parallel [map] returns exactly the array
    the sequential [Array.map] would — parallel runs are bit-identical to
    sequential ones as long as each task is self-contained (owns its own
    simulator, RNG and mutable state), which every [Driver.run] is.

    A pool may be reused for any number of successive [map] calls; it must
    not be used from two domains at once, and tasks must not call [map] on
    the pool that is running them (both raise [Invalid_argument]). *)

type t

(** [create ~domains] spawns [domains - 1] worker domains (so [map] uses
    [domains] domains in total, counting the caller).
    @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> t

(** Total parallelism of the pool, counting the calling domain. *)
val domains : t -> int

(** [default_domains ()] is the default [-j]:
    [max 1 (Domain.recommended_domain_count () - 1)] — leave one core for
    the OS / the caller's other work, never less than 1 (sequential). *)
val default_domains : unit -> int

(** [map pool xs ~f] applies [f] to every element of [xs] in parallel and
    returns the results in input order. Tasks are claimed in chunks via an
    atomic index; output ordering is deterministic regardless of the
    interleaving. If any [f x] raises, the first exception (by claim order)
    is re-raised in the caller with its original backtrace, after all
    domains have stopped claiming work. A pool with [domains = 1] (or a
    singleton/empty input) runs sequentially in the caller.
    @raise Invalid_argument on concurrent or nested use of the same pool. *)
val map : t -> 'a array -> f:('a -> 'b) -> 'b array

(** Shut the worker domains down and join them. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f pool] and shuts the pool down afterwards,
    whether [f] returns or raises. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(* Worker domains live for the pool's lifetime and synchronise with [map]
   through one mutex + two condition variables. Each [map] publishes a job
   (a closure that drains the shared chunk index) under the mutex, bumps an
   epoch so workers can tell a new round from a spurious wakeup, and then
   participates itself; it returns only once every worker has finished the
   round, so successive [map]s never overlap on the same pool. *)

type t = {
  domains : int;  (* total parallelism, counting the caller *)
  chunk : int option;  (* pool-level claim size; None = adaptive per map *)
  mutable workers : unit Domain.t array;  (* domains - 1 of them *)
  m : Mutex.t;
  work_ready : Condition.t;
  round_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable epoch : int;  (* bumped once per map round *)
  mutable active : int;  (* workers still inside the current round *)
  mutable stopped : bool;
  busy : bool Atomic.t;  (* guards against nested / concurrent map *)
}

let domains t = t.domains
let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let worker pool () =
  let last_epoch = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stopped) && pool.epoch = !last_epoch do
      Condition.wait pool.work_ready pool.m
    done;
    if pool.stopped then Mutex.unlock pool.m
    else begin
      last_epoch := pool.epoch;
      let job = Option.get pool.job in
      Mutex.unlock pool.m;
      job ();
      Mutex.lock pool.m;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.round_done;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ()

let create ?chunk ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.create: chunk must be >= 1"
  | _ -> ());
  let pool =
    {
      domains;
      chunk;
      workers = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      round_done = Condition.create ();
      job = None;
      epoch = 0;
      active = 0;
      stopped = false;
      busy = Atomic.make false;
    }
  in
  pool.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown t =
  Mutex.lock t.m;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  if not was_stopped then Array.iter Domain.join t.workers

let with_pool ?chunk ~domains f =
  let pool = create ?chunk ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Tasks are whole simulation runs (seconds each), so per-claim overhead is
   negligible; what matters is skew. Coarse chunks amortise claims on big
   fan-outs while leaving at least a few claims per domain for stealing to
   even out slow tasks. *)
let adaptive_chunk ~domains ~n = max 1 (n / (domains * 4))

let map ?chunk t xs ~f =
  let n = Array.length xs in
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.map: chunk must be >= 1"
  | _ -> ());
  if t.stopped then invalid_arg "Pool.map: pool is shut down";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.map f xs
  else if not (Atomic.compare_and_set t.busy false true) then
    invalid_arg "Pool.map: nested or concurrent map on the same pool"
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let chunk =
      match (chunk, t.chunk) with
      | Some c, _ | None, Some c -> c
      | None, None -> adaptive_chunk ~domains:t.domains ~n
    in
    let error = Atomic.make None in
    let body () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get error <> None then continue := false
        else begin
          let stop = min n (start + chunk) in
          try
            for i = start to stop - 1 do
              results.(i) <- Some (f xs.(i))
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (e, bt)))
        end
      done
    in
    let finish () =
      (* Wait until every worker has left the round, so the next [map] (or
         [shutdown]) finds them all back in their wait loop. *)
      Mutex.lock t.m;
      while t.active > 0 do
        Condition.wait t.round_done t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      Atomic.set t.busy false
    in
    Mutex.lock t.m;
    t.job <- Some body;
    t.active <- Array.length t.workers;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    (match body () with
    | () -> finish ()
    | exception e ->
        (* [body] never raises, but keep the pool usable if that changes. *)
        finish ();
        raise e);
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

(** Global execution history for correctness checking.

    Every protocol records each operation it performs at the moment the
    corresponding lock is granted and the access executed. Under strict 2PL
    the per-item access order at a site {e is} the local conflict order: a
    conflicting later access can only run after the earlier transaction
    committed (or aborted) and released its lock. The serializability checker
    therefore needs no separate notion of commit order.

    Operations are tagged with the {e attempt} id that executed them; aborted
    attempts are discarded wholesale so only committed work is checked.

    Recording is disabled by default (benchmarks run with it off); tests and
    examples enable it. *)

type t

type kind = R | W

type access = {
  gid : int;  (** Global transaction id (shared by all its subtransactions). *)
  attempt : int;  (** Execution attempt id; unique per (re)execution. *)
  kind : kind;
  version : int option;
      (** For multi-version protocols: the item version read, or installed by
          a write. [None] (lock-based protocols) means the log position is the
          conflict order; any versioned access in a log switches the checker
          to version-derived edges for that log. *)
}

val create : ?enabled:bool -> n_sites:int -> unit -> t

val enabled : t -> bool

(** [record t ~site ~item ~gid ~attempt ?version kind] appends an access to
    the per-(site, item) log. Multi-version protocols pass [?version]; see
    {!access}. No-op when disabled. *)
val record :
  t -> site:int -> item:int -> gid:int -> attempt:int -> ?version:int -> kind -> unit

(** [discard_attempt t ~attempt] marks every access by [attempt] as aborted;
    the checker ignores them. *)
val discard_attempt : t -> attempt:int -> unit

(** [committed_log t ~site ~item] — the access log with aborted attempts
    filtered out, in execution order. *)
val committed_log : t -> site:int -> item:int -> access list

(** All (site, item) pairs with a non-empty log. *)
val touched : t -> (int * int) list

(** Distinct gids with at least one committed access. *)
val committed_gids : t -> int list

(** Number of recorded accesses (including aborted ones). *)
val size : t -> int

(** Transaction vocabulary shared by all protocols.

    Following the system model of the paper: a transaction originates at a
    single site as a sequence of read and write operations; it may read any
    item placed at its originating site but update only items whose primary
    copy is there. *)

type item = int

type op = Read of item | Write of item

type spec = {
  origin : int;  (** Originating site. *)
  ops : op list;  (** Executed in order. *)
}

(** Why an execution attempt failed. *)
type abort_reason =
  | Lock_timeout  (** A lock wait exceeded the deadlock timeout. *)
  | Deadlock  (** Chosen as deadlock victim (detection policy or BackEdge). *)
  | Remote_denied  (** A remote operation (PSL read / eager write) was refused. *)
  | Propagation_timeout  (** BackEdge primary gave up waiting for its special message. *)
  | Deadline_exceeded  (** The client's per-transaction deadline expired mid-flight. *)
  | Partitioned
      (** A required remote site is unreachable behind an active network
          partition; the protocol failed fast instead of stalling. *)
  | Validation_failed
      (** Optimistic backward validation found a read that is no longer
          current (occ-epoch), or a snapshot read that was not the latest
          version as of the begin timestamp (ssi). *)
  | First_committer_lost
      (** SSI first-committer-wins: a concurrent transaction writing an
          overlapping item committed first. *)
  | Dangerous_structure
      (** SSI: committing would complete an rw-antidependency pivot
          (in-edge and out-edge both to concurrent transactions). *)

type outcome = Committed | Aborted of abort_reason

(** Every constructor of {!abort_reason}, in declaration order — the
    experiment CSV derives its per-reason abort columns from this list. *)
val all_abort_reasons : abort_reason list

val reads : spec -> item list
(** Items read, in op order, duplicates preserved. *)

val writes : spec -> item list
(** Items written, in op order, duplicates preserved. *)

val is_read_only : spec -> bool

val pp_op : Format.formatter -> op -> unit
val pp_spec : Format.formatter -> spec -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val string_of_abort : abort_reason -> string

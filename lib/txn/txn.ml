type item = int
type op = Read of item | Write of item
type spec = { origin : int; ops : op list }

type abort_reason =
  | Lock_timeout
  | Deadlock
  | Remote_denied
  | Propagation_timeout
  | Deadline_exceeded
  | Partitioned
  | Validation_failed
  | First_committer_lost
  | Dangerous_structure
type outcome = Committed | Aborted of abort_reason

let all_abort_reasons =
  [
    Lock_timeout;
    Deadlock;
    Remote_denied;
    Propagation_timeout;
    Deadline_exceeded;
    Partitioned;
    Validation_failed;
    First_committer_lost;
    Dangerous_structure;
  ]

let reads spec = List.filter_map (function Read i -> Some i | Write _ -> None) spec.ops
let writes spec = List.filter_map (function Write i -> Some i | Read _ -> None) spec.ops
let is_read_only spec = List.for_all (function Read _ -> true | Write _ -> false) spec.ops

let pp_op ppf = function
  | Read i -> Fmt.pf ppf "r(%d)" i
  | Write i -> Fmt.pf ppf "w(%d)" i

let pp_spec ppf spec =
  Fmt.pf ppf "@[txn@%d:%a@]" spec.origin (Fmt.list ~sep:Fmt.sp pp_op) spec.ops

let string_of_abort = function
  | Lock_timeout -> "lock-timeout"
  | Deadlock -> "deadlock"
  | Remote_denied -> "remote-denied"
  | Propagation_timeout -> "propagation-timeout"
  | Deadline_exceeded -> "deadline-exceeded"
  | Partitioned -> "partitioned"
  | Validation_failed -> "validation-failed"
  | First_committer_lost -> "first-committer-lost"
  | Dangerous_structure -> "dangerous-structure"

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted(%s)" (string_of_abort r)

(** Global (one-copy) serializability checker.

    Builds the serialization graph over {e global} transaction ids: for every
    site and item, consecutive conflicting committed accesses (read-write,
    write-read, write-write by different transactions) induce an edge from
    the earlier transaction to the later one; the execution is serializable
    iff the union of these edges over all sites is acyclic. Because every
    subtransaction of a transaction carries the same gid, a cycle across
    sites — like the one in Example 1.1 of the paper — is detected even
    though each site's local schedule is serializable. *)

type verdict =
  | Serializable
  | Not_serializable of int list
      (** A cycle of gids witnessing the violation, in order. *)

val check : History.t -> verdict

(** The serialization graph itself (vertices indexed by position in
    [History.committed_gids]), with the gid of each vertex — exposed for
    tests and the anomaly example. *)
val conflict_graph : History.t -> Repdb_graph.Digraph.t * int array

val pp_verdict : Format.formatter -> verdict -> unit

type kind = R | W

type access = { gid : int; attempt : int; kind : kind; version : int option }

type t = {
  on : bool;
  logs : (int * int, access list ref) Hashtbl.t; (* (site, item) -> reversed log *)
  aborted : (int, unit) Hashtbl.t;
  mutable count : int;
}

let create ?(enabled = true) ~n_sites:_ () =
  { on = enabled; logs = Hashtbl.create 1024; aborted = Hashtbl.create 64; count = 0 }

let enabled t = t.on

let record t ~site ~item ~gid ~attempt ?version kind =
  if t.on then begin
    let key = (site, item) in
    let cell =
      match Hashtbl.find_opt t.logs key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace t.logs key c;
          c
    in
    cell := { gid; attempt; kind; version } :: !cell;
    t.count <- t.count + 1
  end

let discard_attempt t ~attempt = if t.on then Hashtbl.replace t.aborted attempt ()

let committed_log t ~site ~item =
  match Hashtbl.find_opt t.logs (site, item) with
  | None -> []
  | Some cell ->
      List.rev (List.filter (fun a -> not (Hashtbl.mem t.aborted a.attempt)) !cell)

let touched t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.logs [] |> List.sort compare

let committed_gids t =
  let gids = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ cell ->
      List.iter
        (fun a -> if not (Hashtbl.mem t.aborted a.attempt) then Hashtbl.replace gids a.gid ())
        !cell)
    t.logs;
  Hashtbl.fold (fun gid () acc -> gid :: acc) gids [] |> List.sort compare

let size t = t.count

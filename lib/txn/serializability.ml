module Digraph = Repdb_graph.Digraph

type verdict = Serializable | Not_serializable of int list

(* One pass per (site, item) log. We add an edge from every conflicting
   predecessor, but transitively redundant edges don't affect acyclicity, so
   it suffices to track the last committed writer and the readers seen since:
   a new write conflicts with that writer and those readers; a new read
   conflicts with that writer. *)
(* Version-tagged logs come from the multi-version protocols (occ-epoch,
   ssi): a snapshot read executes at some log position but observes an older
   version, so positional order is not the conflict order there. Edges are
   derived from the versions instead: ww between writers of consecutive
   installed versions, wr from the writer of [v] to each reader of [v], and
   rw from each reader of [v] to the writer of the next installed version. *)
let scan_versioned g vertex (log : History.access list) =
  let writers = Hashtbl.create 16 (* version -> gid *) in
  let readers = Hashtbl.create 16 (* version -> reader gids *) in
  List.iter
    (fun (a : History.access) ->
      match a.version with
      | None -> ()
      | Some v -> (
          match a.kind with
          | History.W -> Hashtbl.replace writers v a.gid
          | History.R ->
              let seen = Option.value ~default:[] (Hashtbl.find_opt readers v) in
              Hashtbl.replace readers v (a.gid :: seen)))
    log;
  let versions = Hashtbl.fold (fun v _ acc -> v :: acc) writers [] |> List.sort compare in
  let rec ww = function
    | v1 :: (v2 :: _ as rest) ->
        let w1 = Hashtbl.find writers v1 and w2 = Hashtbl.find writers v2 in
        if w1 <> w2 then Digraph.add_edge g (vertex w1) (vertex w2);
        ww rest
    | _ -> ()
  in
  ww versions;
  Hashtbl.iter
    (fun v rs ->
      let writer = Hashtbl.find_opt writers v in
      let next = List.find_opt (fun v' -> v' > v) versions in
      List.iter
        (fun r ->
          (match writer with
          | Some w when w <> r -> Digraph.add_edge g (vertex w) (vertex r)
          | _ -> ());
          match next with
          | Some v' ->
              let w' = Hashtbl.find writers v' in
              if w' <> r then Digraph.add_edge g (vertex r) (vertex w')
          | None -> ())
        rs)
    readers

let conflict_graph history =
  let gids = History.committed_gids history in
  let index = Hashtbl.create (List.length gids * 2) in
  List.iteri (fun i gid -> Hashtbl.replace index gid i) gids;
  let g = Digraph.create (List.length gids) in
  let vertex gid = Hashtbl.find index gid in
  let scan_positional log =
    let last_writer = ref None in
    let readers = ref [] in
    List.iter
      (fun (a : History.access) ->
        match a.kind with
        | History.R ->
            (match !last_writer with
            | Some w when w <> a.gid -> Digraph.add_edge g (vertex w) (vertex a.gid)
            | _ -> ());
            readers := a.gid :: !readers
        | History.W ->
            (match !last_writer with
            | Some w when w <> a.gid -> Digraph.add_edge g (vertex w) (vertex a.gid)
            | _ -> ());
            List.iter
              (fun r -> if r <> a.gid then Digraph.add_edge g (vertex r) (vertex a.gid))
              !readers;
            last_writer := Some a.gid;
            readers := [])
      log
  in
  let scan (site, item) =
    let log = History.committed_log history ~site ~item in
    if List.exists (fun (a : History.access) -> a.version <> None) log then
      scan_versioned g vertex log
    else scan_positional log
  in
  List.iter scan (History.touched history);
  (g, Array.of_list gids)

let check history =
  let g, gids = conflict_graph history in
  match Digraph.find_cycle g with
  | None -> Serializable
  | Some vertices -> Not_serializable (List.map (fun v -> gids.(v)) vertices)

let pp_verdict ppf = function
  | Serializable -> Fmt.string ppf "serializable"
  | Not_serializable cycle ->
      Fmt.pf ppf "NOT serializable: cycle %a" Fmt.(list ~sep:(any " -> ") int) cycle

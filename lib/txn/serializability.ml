module Digraph = Repdb_graph.Digraph

type verdict = Serializable | Not_serializable of int list

(* One pass per (site, item) log. We add an edge from every conflicting
   predecessor, but transitively redundant edges don't affect acyclicity, so
   it suffices to track the last committed writer and the readers seen since:
   a new write conflicts with that writer and those readers; a new read
   conflicts with that writer. *)
let conflict_graph history =
  let gids = History.committed_gids history in
  let index = Hashtbl.create (List.length gids * 2) in
  List.iteri (fun i gid -> Hashtbl.replace index gid i) gids;
  let g = Digraph.create (List.length gids) in
  let vertex gid = Hashtbl.find index gid in
  let scan (site, item) =
    let log = History.committed_log history ~site ~item in
    let last_writer = ref None in
    let readers = ref [] in
    List.iter
      (fun (a : History.access) ->
        match a.kind with
        | History.R ->
            (match !last_writer with
            | Some w when w <> a.gid -> Digraph.add_edge g (vertex w) (vertex a.gid)
            | _ -> ());
            readers := a.gid :: !readers
        | History.W ->
            (match !last_writer with
            | Some w when w <> a.gid -> Digraph.add_edge g (vertex w) (vertex a.gid)
            | _ -> ());
            List.iter
              (fun r -> if r <> a.gid then Digraph.add_edge g (vertex r) (vertex a.gid))
              !readers;
            last_writer := Some a.gid;
            readers := [])
      log
  in
  List.iter scan (History.touched history);
  (g, Array.of_list gids)

let check history =
  let g, gids = conflict_graph history in
  match Digraph.find_cycle g with
  | None -> Serializable
  | Some vertices -> Not_serializable (List.map (fun v -> gids.(v)) vertices)

let pp_verdict ppf = function
  | Serializable -> Fmt.string ppf "serializable"
  | Not_serializable cycle ->
      Fmt.pf ppf "NOT serializable: cycle %a" Fmt.(list ~sep:(any " -> ") int) cycle

module Sim = Repdb_sim.Sim
let time f = let t0 = Unix.gettimeofday () in let v = f () in (Unix.gettimeofday () -. t0, v)

let () =
  (* 1: pure schedule/run of preloaded thunks (heap + dispatch only) *)
  let n = 2_000_000 in
  let sim = Sim.create () in
  let cnt = ref 0 in
  for i = 1 to n do Sim.at sim (float_of_int i) (fun () -> incr cnt) done;
  let d, () = time (fun () -> Sim.run sim) in
  Printf.printf "plain events:   %d in %.3fs = %.2fM ev/s\n%!" !cnt d (float_of_int n /. d /. 1e6);
  (* 2: process delay loop (effects machinery) *)
  let sim = Sim.create () in
  let m = 500_000 in
  let cnt = ref 0 in
  Sim.spawn sim (fun () -> for _ = 1 to m do Sim.delay 1.0; incr cnt done);
  let d, () = time (fun () -> Sim.run sim) in
  Printf.printf "delay loop:     %d in %.3fs = %.2fM ev/s\n%!" !cnt d (float_of_int m /. d /. 1e6);
  (* 3: suspend/resume pairs *)
  let sim = Sim.create () in
  let cnt = ref 0 in
  Sim.spawn sim (fun () ->
    for _ = 1 to m do
      Sim.suspend (fun resume -> Sim.after sim 1.0 (fun () -> resume ())) ; incr cnt
    done);
  let d, () = time (fun () -> Sim.run sim) in
  Printf.printf "suspend loop:   %d in %.3fs = %.2fM ev/s (2 events each)\n%!" !cnt d (float_of_int (2*m) /. d /. 1e6);
  (* 4: 64 interleaved delay processes (realistic heap depth) *)
  let sim = Sim.create () in
  let cnt = ref 0 in
  let per = m / 64 in
  for p = 1 to 64 do
    Sim.spawn sim (fun () -> for _ = 1 to per do Sim.delay (1.0 +. float_of_int (p mod 7)) ; incr cnt done)
  done;
  let d, () = time (fun () -> Sim.run sim) in
  Printf.printf "64 proc delays: %d in %.3fs = %.2fM ev/s\n%!" !cnt d (float_of_int (64*per) /. d /. 1e6)

(* Full-stack measurement: one bench-like dag-wt run, words/event. *)
let () =
  let module Params = Repdb_workload.Params in
  let module Driver = Repdb.Driver in
  let params = { Params.default with txns_per_thread = 500; backedge_prob = 0.0 } in
  let proto = Option.get (Repdb.Registry.find "dag-wt") in
  ignore (Driver.run { params with txns_per_thread = 50 } proto); (* warm *)
  let w0 = Gc.minor_words () in
  let d, r = time (fun () -> Driver.run params proto) in
  let dw = Gc.minor_words () -. w0 in
  Printf.printf "driver run:     %d events in %.3fs = %.2fM ev/s, %.1f minor words/event\n%!"
    r.Driver.sim_events d (float_of_int r.Driver.sim_events /. d /. 1e6)
    (dw /. float_of_int r.Driver.sim_events)

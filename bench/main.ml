(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5), the extra sweeps implied by Table 1's ranges, our
   ablations, and a set of Bechamel micro-benchmarks of the core operations.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig2a fig3b  # selected targets
     REPDB_BENCH_TXNS=100 dune exec bench/main.exe   # faster, coarser

   Experiments run at the paper's scale (1000 transactions per thread) by
   default; figures print both a human-readable table and CSV. *)

module Params = Repdb_workload.Params
module Experiment = Repdb.Experiment

let txns_per_thread =
  match Sys.getenv_opt "REPDB_BENCH_TXNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1000)
  | None -> 1000

let base = { Params.default with txns_per_thread }

let print_figure fig =
  Fmt.pr "%a@." Experiment.pp_figure fig;
  print_string (Experiment.render_ascii fig);
  Fmt.pr "@[<v>-- CSV --@,%s@]@." (Experiment.to_csv fig)

(* --- Table 1 ----------------------------------------------------------------- *)

let table1 () =
  Fmt.pr "== Table 1: Parameter Settings ==@.";
  Fmt.pr "%-32s %-8s %-24s %s@." "Parameter" "Symbol" "Default Value" "Range";
  List.iter
    (fun (name, symbol, value, range) -> Fmt.pr "%-32s %-8s %-24s %s@." name symbol value range)
    (Params.table1 base);
  Fmt.pr "@."

(* --- Section 5.3.4 ------------------------------------------------------------ *)

let resp () =
  Fmt.pr "== Section 5.3.4: response time and update propagation at the defaults ==@.";
  List.iter
    (fun (name, (r : Repdb.Driver.report)) ->
      Fmt.pr "  %-9s avg response = %6.1f ms   avg propagation = %6.1f ms   abort = %5.2f%%@."
        name r.summary.avg_response r.summary.avg_propagation r.summary.abort_rate)
    (Experiment.response_times ~base ());
  Fmt.pr "  (paper: ~180 ms BackEdge vs ~260 ms PSL; propagation \"a few hundred millisec\")@.@."

(* --- ablations ----------------------------------------------------------------- *)

let ablation () =
  Fmt.pr "== Ablation: every protocol on a DAG copy graph (b=0, defaults) ==@.";
  List.iter
    (fun (name, (r : Repdb.Driver.report)) ->
      Fmt.pr "  %-9s thr/site=%7.2f  abort=%6.2f%%  resp=%7.1fms  prop=%7.1fms  msgs=%d@." name
        r.summary.throughput_per_site r.summary.abort_rate r.summary.avg_response
        r.summary.avg_propagation r.summary.messages)
    (Experiment.ablation_protocols ~base ());
  Fmt.pr "@."

(* --- Section 4.2: minimising the effects of backedges ---------------------------- *)

(* The choice of backedge set matters: compare, over random placements, the
   paper's implemented rule (identity site order), the DFS minimal set, and
   the greedy weighted feedback-arc-set heuristic (weights = number of items
   whose updates cross the edge, i.e. propagation frequency). *)
let fas () =
  let module Digraph = Repdb_graph.Digraph in
  let module Backedge = Repdb_graph.Backedge in
  let module Placement = Repdb_workload.Placement in
  Fmt.pr "== Section 4.2: backedge-set weight by construction (weight = items per edge) ==@.";
  Fmt.pr "  %-6s %-14s %-14s %-14s@." "seed" "identity-order" "dfs-minimal" "greedy-fas";
  let totals = Array.make 3 0.0 in
  for seed = 1 to 10 do
    let params = { base with Params.backedge_prob = 0.5; replication_prob = 0.5 } in
    let pl = Placement.generate (Repdb_sim.Rng.create seed) params in
    let g = Placement.copy_graph pl in
    (* Edge weight: how many items have their primary at u and a replica at
       v — each committed update to one of them crosses the edge. *)
    let weight u v =
      let n = ref 0 in
      Array.iteri
        (fun item p -> if p = u && List.mem v pl.Placement.replicas.(item) then incr n)
        pl.Placement.primary;
      float_of_int !n
    in
    let sets =
      [
        Backedge.of_order g (Array.init params.Params.n_sites Fun.id);
        Backedge.minimal_set g;
        Backedge.greedy_fas g ~weight;
      ]
    in
    let weights = List.map (fun s -> Backedge.total_weight s ~weight) sets in
    List.iteri (fun i w -> totals.(i) <- totals.(i) +. w) weights;
    (match weights with
    | [ a; b; c ] -> Fmt.pr "  %-6d %-14.0f %-14.0f %-14.0f@." seed a b c
    | _ -> assert false)
  done;
  Fmt.pr "  %-6s %-14.1f %-14.1f %-14.1f@." "mean" (totals.(0) /. 10.0) (totals.(1) /. 10.0)
    (totals.(2) /. 10.0);
  Fmt.pr "  (uniform placements give near-symmetric weights, so the sets tie)@.@.";
  (* Skewed weights — where the weighted heuristic is supposed to help. *)
  Fmt.pr "  Skewed random digraphs (12 vertices, ~30 edges, weights 1..100):@.";
  Fmt.pr "  %-6s %-14s %-14s@." "seed" "dfs-minimal" "greedy-fas";
  let totals = Array.make 2 0.0 in
  for seed = 1 to 10 do
    let rng = Repdb_sim.Rng.create (seed * 131) in
    let g = Digraph.create 12 in
    let w = Hashtbl.create 64 in
    for _ = 1 to 30 do
      let u = Repdb_sim.Rng.int rng 12 and v = Repdb_sim.Rng.int rng 12 in
      if u <> v then begin
        Digraph.add_edge g u v;
        if not (Hashtbl.mem w (u, v)) then
          Hashtbl.replace w (u, v) (1.0 +. float_of_int (Repdb_sim.Rng.int rng 100))
      end
    done;
    let weight u v = try Hashtbl.find w (u, v) with Not_found -> 1.0 in
    let dfs = Backedge.total_weight (Backedge.minimal_set g) ~weight in
    let greedy = Backedge.total_weight (Backedge.greedy_fas g ~weight) ~weight in
    totals.(0) <- totals.(0) +. dfs;
    totals.(1) <- totals.(1) +. greedy;
    Fmt.pr "  %-6d %-14.0f %-14.0f@." seed dfs greedy
  done;
  Fmt.pr "  %-6s %-14.1f %-14.1f@." "mean" (totals.(0) /. 10.0) (totals.(1) /. 10.0);
  Fmt.pr "@."

(* --- seed variance ---------------------------------------------------------------- *)

(* How much do the headline numbers move across seeds? (The paper reports
   single runs; this quantifies the noise band around our shapes.) *)
let variance () =
  Fmt.pr "== Seed variance at the defaults (5 seeds) ==@.";
  List.iter
    (fun (proto : Repdb.Protocol.t) ->
      let samples =
        List.map
          (fun seed ->
            let r = Repdb.Driver.run { base with Params.seed } proto in
            r.summary.throughput_per_site)
          [ 42; 43; 44; 45; 46 ]
      in
      let n = float_of_int (List.length samples) in
      let mean = List.fold_left ( +. ) 0.0 samples /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. n
      in
      Fmt.pr "  %-9s thr/site = %7.2f +- %5.2f  (min %7.2f, max %7.2f)@."
        (Repdb.Protocol.name proto) mean (sqrt var)
        (List.fold_left min infinity samples)
        (List.fold_left max neg_infinity samples))
    [ (module Repdb.Backedge_proto : Repdb.Protocol.S); (module Repdb.Psl : Repdb.Protocol.S) ];
  Fmt.pr "@."

(* --- micro-benchmarks ----------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let module Timestamp = Repdb.Timestamp in
  let ts_a =
    { Timestamp.epoch = 1; tuples = [ { Timestamp.site = 0; lts = 3 }; { site = 2; lts = 5 }; { site = 4; lts = 1 } ] }
  in
  let ts_b =
    { Timestamp.epoch = 1; tuples = [ { Timestamp.site = 0; lts = 3 }; { site = 3; lts = 2 } ] }
  in
  let rng = Repdb_sim.Rng.create 1 in
  let dag =
    let g = Repdb_graph.Digraph.create 16 in
    for _ = 1 to 40 do
      let u = Repdb_sim.Rng.int rng 16 and v = Repdb_sim.Rng.int rng 16 in
      if u < v then Repdb_graph.Digraph.add_edge g u v
    done;
    g
  in
  let heap_rng = Repdb_sim.Rng.create 2 in
  let tests =
    [
      Test.make ~name:"Timestamp.compare" (Staged.stage (fun () -> Repdb.Timestamp.compare ts_a ts_b));
      Test.make ~name:"Rng.next_int64" (Staged.stage (fun () -> Repdb_sim.Rng.next_int64 rng));
      Test.make ~name:"Tree.of_dag (16 sites)" (Staged.stage (fun () -> Repdb_graph.Tree.of_dag dag));
      Test.make ~name:"Backedge.minimal_set" (Staged.stage (fun () -> Repdb_graph.Backedge.minimal_set dag));
      Test.make ~name:"Heap push/pop"
        (Staged.stage (fun () ->
             let h = Repdb_sim.Heap.create () in
             for seq = 0 to 63 do
               Repdb_sim.Heap.push h ~time:(Repdb_sim.Rng.float heap_rng) ~seq ()
             done;
             while not (Repdb_sim.Heap.is_empty h) do
               ignore (Repdb_sim.Heap.pop_min h)
             done));
    ]
  in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  Fmt.pr "== Micro-benchmarks (Bechamel, monotonic clock) ==@.";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Fmt.pr "  %-28s %10.1f ns/run@." name t
          | _ -> Fmt.pr "  %-28s (no estimate)@." name)
        results)
    tests;
  Fmt.pr "@."

(* --- dispatch ------------------------------------------------------------------- *)

let targets : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("fig2a", fun () -> print_figure (Experiment.fig2a ~base ()));
    ("fig2b", fun () -> print_figure (Experiment.fig2b ~base ()));
    ("fig3a", fun () -> print_figure (Experiment.fig3a ~base ()));
    ("fig3b", fun () -> print_figure (Experiment.fig3b ~base ()));
    ("resp", resp);
    ("sites", fun () -> print_figure (Experiment.sweep_sites ~base ()));
    ("threads", fun () -> print_figure (Experiment.sweep_threads ~base ()));
    ("latency", fun () -> print_figure (Experiment.sweep_latency ~base ()));
    ("readtxn", fun () -> print_figure (Experiment.sweep_read_txn ~base ()));
    ("ablation", ablation);
    ("eager-scaling", fun () -> print_figure (Experiment.ablation_eager_scaling ~base ()));
    ("tree-routing", fun () -> print_figure (Experiment.ablation_tree_routing ~base ()));
    ( "deadlock-policy",
      fun () ->
        Fmt.pr "== Ablation: timeout vs waits-for-graph detection (defaults) ==@.";
        List.iter
          (fun (name, (r : Repdb.Driver.report)) ->
            Fmt.pr "  %-18s thr/site=%7.2f  abort=%6.2f%%  resp=%7.1fms@." name
              r.summary.throughput_per_site r.summary.abort_rate r.summary.avg_response)
          (Experiment.ablation_deadlock_policy ~base ());
        Fmt.pr "@." );
    ("dummy-period", fun () -> print_figure (Experiment.ablation_dummy_period ~base ()));
    ("hotspot", fun () -> print_figure (Experiment.ablation_hotspot ~base ()));
    ("straggler", fun () -> print_figure (Experiment.ablation_straggler ~base ()));
    ( "site-order",
      fun () ->
        Fmt.pr "== Ablation: BackEdge site ordering on a hub topology (Section 4.2) ==@.";
        List.iter
          (fun (label, (r : Repdb.Driver.report)) ->
            Fmt.pr "  %-15s thr/site=%7.2f  abort=%6.2f%%  backedges=%d@." label
              r.summary.throughput_per_site r.summary.abort_rate r.n_backedges)
          (Experiment.ablation_site_order ~base ());
        Fmt.pr "  (n_backedges is counted under the identity order; the fas order removes them@.\
         \   from the protocol's tree even though the copy graph is unchanged)@.@." );
    ("fas", fas);
    ("variance", variance);
    ("micro", micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let requested = if requested = [] then List.map fst targets else requested in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some run ->
          Fmt.pr "#### %s (txns/thread = %d) ####@." name txns_per_thread;
          run ()
      | None ->
          Fmt.epr "unknown bench target %S; available: %s@." name
            (String.concat ", " (List.map fst targets));
          exit 1)
    requested

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5), the extra sweeps implied by Table 1's ranges, our
   ablations, and a set of Bechamel micro-benchmarks of the core operations.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig2a fig3b  # selected targets
     REPDB_BENCH_TXNS=100 dune exec bench/main.exe   # faster, coarser

   Experiments run at the paper's scale (1000 transactions per thread) by
   default; figures print both a human-readable table and CSV.

   [-j N] runs the independent simulations of each target on N domains
   (default: Domain.recommended_domain_count () - 1, at least 1). Output is
   bit-identical to [-j 1] — tasks land by input index and each owns its
   whole simulator state. [--chunk N] fixes the pool's claim size (default:
   the adaptive heuristic, tasks / (domains * 4)). *)

module Params = Repdb_workload.Params
module Experiment = Repdb.Experiment
module Pool = Repdb_par.Pool

let txns_per_thread =
  match Sys.getenv_opt "REPDB_BENCH_TXNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1000)
  | None -> 1000

let base = { Params.default with txns_per_thread }

let jobs, chunk, requested =
  let bad arg =
    Fmt.epr "bad argument %s: expected -j N or --chunk N with N >= 1@." arg;
    exit 1
  in
  let rec parse jobs chunk acc = function
    | [] -> (jobs, chunk, List.rev acc)
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse j chunk acc rest
        | _ -> bad ("-j " ^ n))
    | [ "-j" ] -> bad "-j"
    | "--chunk" :: n :: rest -> (
        match int_of_string_opt n with
        | Some c when c >= 1 -> parse jobs (Some c) acc rest
        | _ -> bad ("--chunk " ^ n))
    | [ "--chunk" ] -> bad "--chunk"
    | arg :: rest when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
        let n = String.sub arg 2 (String.length arg - 2) in
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse j chunk acc rest
        | _ -> bad arg)
    | arg :: rest -> parse jobs chunk (arg :: acc) rest
  in
  parse (Pool.default_domains ()) None [] (List.tl (Array.to_list Sys.argv))

let pool = if jobs > 1 then Some (Pool.create ?chunk ~domains:jobs ()) else None

(* Parallel map for this file's own seed loops; sequential without a pool. *)
let par_map arr ~f = match pool with Some p -> Pool.map p arr ~f | None -> Array.map f arr

let print_figure fig =
  Fmt.pr "%a@." Experiment.pp_figure fig;
  print_string (Experiment.render_ascii fig);
  Fmt.pr "@[<v>-- CSV --@,%s@]@." (Experiment.to_csv fig)

(* --- Table 1 ----------------------------------------------------------------- *)

let table1 () =
  Fmt.pr "== Table 1: Parameter Settings ==@.";
  Fmt.pr "%-32s %-8s %-24s %s@." "Parameter" "Symbol" "Default Value" "Range";
  List.iter
    (fun (name, symbol, value, range) -> Fmt.pr "%-32s %-8s %-24s %s@." name symbol value range)
    (Params.table1 base);
  Fmt.pr "@."

(* --- Section 5.3.4 ------------------------------------------------------------ *)

let resp () =
  Fmt.pr "== Section 5.3.4: response time and update propagation at the defaults ==@.";
  List.iter
    (fun (name, (r : Repdb.Driver.report)) ->
      Fmt.pr "  %-9s avg response = %6.1f ms   avg propagation = %6.1f ms   abort = %5.2f%%@."
        name r.summary.avg_response r.summary.avg_propagation r.summary.abort_rate)
    (Experiment.response_times ?pool ~base ());
  Fmt.pr "  (paper: ~180 ms BackEdge vs ~260 ms PSL; propagation \"a few hundred millisec\")@.@."

(* --- ablations ----------------------------------------------------------------- *)

let ablation () =
  Fmt.pr "== Ablation: every protocol on a DAG copy graph (b=0, defaults) ==@.";
  List.iter
    (fun (name, (r : Repdb.Driver.report)) ->
      Fmt.pr "  %-9s thr/site=%7.2f  abort=%6.2f%%  resp=%7.1fms  prop=%7.1fms  msgs=%d@." name
        r.summary.throughput_per_site r.summary.abort_rate r.summary.avg_response
        r.summary.avg_propagation r.summary.messages)
    (Experiment.ablation_protocols ?pool ~base ());
  Fmt.pr "@."

(* --- Section 4.2: minimising the effects of backedges ---------------------------- *)

(* The choice of backedge set matters: compare, over random placements, the
   paper's implemented rule (identity site order), the DFS minimal set, and
   the greedy weighted feedback-arc-set heuristic (weights = number of items
   whose updates cross the edge, i.e. propagation frequency). *)
let fas () =
  let module Digraph = Repdb_graph.Digraph in
  let module Backedge = Repdb_graph.Backedge in
  let module Placement = Repdb_workload.Placement in
  Fmt.pr "== Section 4.2: backedge-set weight by construction (weight = items per edge) ==@.";
  Fmt.pr "  %-6s %-14s %-14s %-14s@." "seed" "identity-order" "dfs-minimal" "greedy-fas";
  let seeds = Array.init 10 (fun i -> i + 1) in
  let rows =
    par_map seeds ~f:(fun seed ->
        let params = { base with Params.backedge_prob = 0.5; replication_prob = 0.5 } in
        let pl = Placement.generate (Repdb_sim.Rng.create seed) params in
        let g = Placement.copy_graph pl in
        let m = params.Params.n_sites in
        (* Edge weight: how many items have their primary at u and a replica
           at v — each committed update to one of them crosses the edge.
           Counted once per placement (one pass over the items) instead of
           rescanning all items on every weight query. *)
        let counts = Array.make_matrix m m 0 in
        Array.iteri
          (fun item u ->
            Array.iter (fun v -> counts.(u).(v) <- counts.(u).(v) + 1) pl.Placement.replicas.(item))
          pl.Placement.primary;
        let weight u v = float_of_int counts.(u).(v) in
        let sets =
          [
            Backedge.of_order g (Array.init m Fun.id);
            Backedge.minimal_set g;
            Backedge.greedy_fas g ~weight;
          ]
        in
        List.map (fun set -> Backedge.total_weight set ~weight) sets)
  in
  let totals = Array.make 3 0.0 in
  Array.iteri
    (fun i weights ->
      List.iteri (fun j w -> totals.(j) <- totals.(j) +. w) weights;
      match weights with
      | [ a; b; c ] -> Fmt.pr "  %-6d %-14.0f %-14.0f %-14.0f@." seeds.(i) a b c
      | _ -> assert false)
    rows;
  Fmt.pr "  %-6s %-14.1f %-14.1f %-14.1f@." "mean" (totals.(0) /. 10.0) (totals.(1) /. 10.0)
    (totals.(2) /. 10.0);
  Fmt.pr "  (uniform placements give near-symmetric weights, so the sets tie)@.@.";
  (* Skewed weights — where the weighted heuristic is supposed to help. *)
  Fmt.pr "  Skewed random digraphs (12 vertices, ~30 edges, weights 1..100):@.";
  Fmt.pr "  %-6s %-14s %-14s@." "seed" "dfs-minimal" "greedy-fas";
  let rows =
    par_map seeds ~f:(fun seed ->
        let rng = Repdb_sim.Rng.create (seed * 131) in
        let g = Digraph.create 12 in
        let w = Hashtbl.create 64 in
        for _ = 1 to 30 do
          let u = Repdb_sim.Rng.int rng 12 and v = Repdb_sim.Rng.int rng 12 in
          if u <> v then begin
            Digraph.add_edge g u v;
            if not (Hashtbl.mem w (u, v)) then
              Hashtbl.replace w (u, v) (1.0 +. float_of_int (Repdb_sim.Rng.int rng 100))
          end
        done;
        let weight u v = try Hashtbl.find w (u, v) with Not_found -> 1.0 in
        let dfs = Backedge.total_weight (Backedge.minimal_set g) ~weight in
        let greedy = Backedge.total_weight (Backedge.greedy_fas g ~weight) ~weight in
        (dfs, greedy))
  in
  let totals = Array.make 2 0.0 in
  Array.iteri
    (fun i (dfs, greedy) ->
      totals.(0) <- totals.(0) +. dfs;
      totals.(1) <- totals.(1) +. greedy;
      Fmt.pr "  %-6d %-14.0f %-14.0f@." seeds.(i) dfs greedy)
    rows;
  Fmt.pr "  %-6s %-14.1f %-14.1f@." "mean" (totals.(0) /. 10.0) (totals.(1) /. 10.0);
  Fmt.pr "@."

(* --- seed variance ---------------------------------------------------------------- *)

(* How much do the headline numbers move across seeds? (The paper reports
   single runs; this quantifies the noise band around our shapes.) *)
let variance () =
  Fmt.pr "== Seed variance at the defaults (5 seeds) ==@.";
  let protos : Repdb.Protocol.t array =
    [| (module Repdb.Backedge_proto : Repdb.Protocol.S); (module Repdb.Psl : Repdb.Protocol.S) |]
  in
  let seeds = [| 42; 43; 44; 45; 46 |] in
  let ns = Array.length seeds in
  (* One task per protocol x seed pair; results land by index, so the
     printed table is independent of -j. *)
  let tasks =
    Array.init
      (Array.length protos * ns)
      (fun i -> (protos.(i / ns), seeds.(i mod ns)))
  in
  let thr =
    par_map tasks ~f:(fun (proto, seed) ->
        (Repdb.Driver.run { base with Params.seed } proto).summary.throughput_per_site)
  in
  Array.iteri
    (fun pi proto ->
      let samples = Array.to_list (Array.sub thr (pi * ns) ns) in
      let n = float_of_int ns in
      let mean = List.fold_left ( +. ) 0.0 samples /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. n
      in
      Fmt.pr "  %-9s thr/site = %7.2f +- %5.2f  (min %7.2f, max %7.2f)@."
        (Repdb.Protocol.name proto) mean (sqrt var)
        (List.fold_left min infinity samples)
        (List.fold_left max neg_infinity samples))
    protos;
  Fmt.pr "@."

(* --- micro-benchmarks ----------------------------------------------------------- *)

(* The pre-PR heap, kept verbatim as a baseline so the micro target shows
   what the structure-of-arrays rewrite of [Repdb_sim.Heap] buys: this
   version boxes every entry in a record (one allocation per push) and does
   a three-word swap per level in both sift directions. *)
module Swap_heap = struct
  type 'a entry = { time : float; seq : int; value : 'a }
  type 'a t = { mutable data : 'a entry array; mutable len : int }

  let create () = { data = [||]; len = 0 }
  let is_empty h = h.len = 0
  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h ~time ~seq value =
    let entry = { time; seq; value } in
    let cap = Array.length h.data in
    if h.len = cap then begin
      let ndata = Array.make (if cap = 0 then 16 else cap * 2) entry in
      Array.blit h.data 0 ndata 0 h.len;
      h.data <- ndata
    end;
    h.data.(h.len) <- entry;
    h.len <- h.len + 1;
    let rec up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if less h.data.(i) h.data.(parent) then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(parent);
          h.data.(parent) <- tmp;
          up parent
        end
      end
    in
    up (h.len - 1)

  let pop_min h =
    let min = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    (min.time, min.seq, min.value)
end

let micro () =
  let open Bechamel in
  let module Timestamp = Repdb.Timestamp in
  let ts_a =
    Timestamp.of_tuples ~epoch:1
      [ { Timestamp.site = 0; lts = 3 }; { site = 2; lts = 5 }; { site = 4; lts = 1 } ]
  in
  let ts_b =
    Timestamp.of_tuples ~epoch:1 [ { Timestamp.site = 0; lts = 3 }; { site = 3; lts = 2 } ]
  in
  let rng = Repdb_sim.Rng.create 1 in
  let dag =
    let g = Repdb_graph.Digraph.create 16 in
    for _ = 1 to 40 do
      let u = Repdb_sim.Rng.int rng 16 and v = Repdb_sim.Rng.int rng 16 in
      if u < v then Repdb_graph.Digraph.add_edge g u v
    done;
    g
  in
  let heap_rng = Repdb_sim.Rng.create 2 in
  let swap_heap_rng = Repdb_sim.Rng.create 2 in
  (* Memoized placement accessors vs the full recompute a reconfiguration
     step pays: copy_graph/backedges are O(1) field reads since the memos
     moved into [Placement.make]. *)
  let placement =
    Repdb_workload.Placement.generate (Repdb_sim.Rng.create 3)
      { base with Params.backedge_prob = 0.5; replication_prob = 0.5 }
  in
  (* Per-task pool overhead: 256 no-op tasks on a 2-domain pool, so the
     measured cost is claim/synchronisation, not work. *)
  let micro_pool = Pool.create ~domains:2 () in
  let pool_tasks = Array.init 256 Fun.id in
  (* Propagation path: 256 updates from one source to one destination, as
     singletons (size 1 short-circuits the batcher — the pre-batching path)
     or coalesced into runs of 8 / 64. The closure builds its own simulator
     so each run pays send + delivery for every physical message. *)
  let bench_batch size =
    let module Sim = Repdb_sim.Sim in
    let module Network = Repdb_net.Network in
    let module Batcher = Repdb_net.Batcher in
    Staged.stage (fun () ->
        let sim = Sim.create () in
        let delivered = ref 0 in
        let net =
          Network.create ~sim ~n_sites:2 ~latency:(fun _ _ -> 1.0) ~arity:List.length ()
        in
        Network.set_handler net 1 (fun ~src:_ batch -> delivered := !delivered + List.length batch);
        let bat =
          Batcher.create ~sim ~n_sites:2 ~size ~linger_ms:0.0
            ~ship:(fun ~src ~dst batch -> Network.send net ~src ~dst batch)
            ()
        in
        for i = 1 to 256 do
          Batcher.push bat ~src:0 ~dst:1 i
        done;
        Sim.run sim;
        assert (!delivered = 256))
  in
  (* The [Profile.on] guard: the same event churn with the self-profiler
     disabled (the default — schedulers skip the wrap after one check) and
     enabled (every closure wrapped, gettimeofday + minor-words sampled). *)
  let bench_sched profile =
    let module Sim = Repdb_sim.Sim in
    Staged.stage (fun () ->
        let sim = Sim.create ?profile () in
        let n = ref 0 in
        let rec tick () =
          incr n;
          if !n < 256 then Sim.after sim 1.0 tick
        in
        Sim.after sim 1.0 tick;
        Sim.run sim;
        assert (!n = 256))
  in
  let tests =
    [
      Test.make ~name:"Timestamp.compare" (Staged.stage (fun () -> Repdb.Timestamp.compare ts_a ts_b));
      Test.make ~name:"Rng.next_int64" (Staged.stage (fun () -> Repdb_sim.Rng.next_int64 rng));
      Test.make ~name:"Tree.of_dag (16 sites)" (Staged.stage (fun () -> Repdb_graph.Tree.of_dag dag));
      Test.make ~name:"Backedge.minimal_set" (Staged.stage (fun () -> Repdb_graph.Backedge.minimal_set dag));
      Test.make ~name:"Heap push/pop (SoA hole-sift)"
        (Staged.stage (fun () ->
             let h = Repdb_sim.Heap.create () in
             for seq = 0 to 63 do
               Repdb_sim.Heap.push h ~time:(Repdb_sim.Rng.float heap_rng) ~seq ()
             done;
             while not (Repdb_sim.Heap.is_empty h) do
               ignore (Repdb_sim.Heap.pop_min h)
             done));
      Test.make ~name:"Heap push/pop (record swap)"
        (Staged.stage (fun () ->
             let h = Swap_heap.create () in
             for seq = 0 to 63 do
               Swap_heap.push h ~time:(Repdb_sim.Rng.float swap_heap_rng) ~seq ()
             done;
             while not (Swap_heap.is_empty h) do
               ignore (Swap_heap.pop_min h)
             done));
      Test.make ~name:"Placement.copy_graph (memoized)"
        (Staged.stage (fun () ->
             ignore (Repdb_workload.Placement.copy_graph placement);
             ignore (Repdb_workload.Placement.backedges placement)));
      Test.make ~name:"Placement.apply_step (memo rebuild)"
        (Staged.stage (fun () ->
             ignore
               (Repdb_workload.Placement.apply_step placement
                  (Repdb_reconfig.Reconfig.Add_replica { item = 0; site = 1 }))));
      Test.make ~name:"Pool.map (256 tasks, 2 domains)"
        (Staged.stage (fun () -> ignore (Pool.map micro_pool pool_tasks ~f:succ)));
      Test.make ~name:"propagate 256 (batch=1)" (bench_batch 1);
      Test.make ~name:"propagate 256 (batch=8)" (bench_batch 8);
      Test.make ~name:"propagate 256 (batch=64)" (bench_batch 64);
      Test.make ~name:"256 events (profile off)" (bench_sched None);
      Test.make ~name:"256 events (profile on)"
        (bench_sched (Some (Repdb_obs.Profile.create ())));
    ]
  in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  Fmt.pr "== Micro-benchmarks (Bechamel, monotonic clock) ==@.";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Fmt.pr "  %-28s %10.1f ns/run@." name t
          | _ -> Fmt.pr "  %-28s (no estimate)@." name)
        results)
    tests;
  Pool.shutdown micro_pool;
  Fmt.pr "@."

(* Validation cost against read/write-set size: one [Validator.validate]
   call per run. Read and write sets are disjoint, so every run validates
   clean (the steady-state cost a winner pays) — the writes keep bumping
   their own items, the reads stay at their seeded versions. *)
let occ_validate () =
  let open Bechamel in
  let module Validator = Repdb_occ.Validator in
  let bench n =
    let v = Validator.create () in
    let reads = List.init n (fun i -> (i, 0)) in
    let writes = List.init n (fun i -> 4096 + i) in
    let gid = ref 0 in
    Staged.stage (fun () ->
        incr gid;
        match Validator.validate v { gid = !gid; reads; writes } with
        | Some _ -> ()
        | None -> assert false)
  in
  let tests =
    List.map
      (fun n -> Test.make ~name:(Printf.sprintf "Validator.validate (%d r + %d w)" n n) (bench n))
      [ 4; 16; 64 ]
  in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  Fmt.pr "== OCC validation micro (Bechamel, monotonic clock) ==@.";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Fmt.pr "  %-32s %10.1f ns/run@." name t
          | _ -> Fmt.pr "  %-32s (no estimate)@." name)
        results)
    tests;
  Fmt.pr "@."

(* --- dispatch ------------------------------------------------------------------- *)

let targets : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("fig2a", fun () -> print_figure (Experiment.fig2a ?pool ~base ()));
    ("fig2b", fun () -> print_figure (Experiment.fig2b ?pool ~base ()));
    ("fig3a", fun () -> print_figure (Experiment.fig3a ?pool ~base ()));
    ("fig3b", fun () -> print_figure (Experiment.fig3b ?pool ~base ()));
    ("resp", resp);
    ("sites", fun () -> print_figure (Experiment.sweep_sites ?pool ~base ()));
    ("threads", fun () -> print_figure (Experiment.sweep_threads ?pool ~base ()));
    ("latency", fun () -> print_figure (Experiment.sweep_latency ?pool ~base ()));
    ("readtxn", fun () -> print_figure (Experiment.sweep_read_txn ?pool ~base ()));
    ("ablation", ablation);
    ("eager-scaling", fun () -> print_figure (Experiment.ablation_eager_scaling ?pool ~base ()));
    ("tree-routing", fun () -> print_figure (Experiment.ablation_tree_routing ?pool ~base ()));
    ( "deadlock-policy",
      fun () ->
        Fmt.pr "== Ablation: timeout vs waits-for-graph detection (defaults) ==@.";
        List.iter
          (fun (name, (r : Repdb.Driver.report)) ->
            Fmt.pr "  %-18s thr/site=%7.2f  abort=%6.2f%%  resp=%7.1fms@." name
              r.summary.throughput_per_site r.summary.abort_rate r.summary.avg_response)
          (Experiment.ablation_deadlock_policy ?pool ~base ());
        Fmt.pr "@." );
    ("dummy-period", fun () -> print_figure (Experiment.ablation_dummy_period ?pool ~base ()));
    ("hotspot", fun () -> print_figure (Experiment.ablation_hotspot ?pool ~base ()));
    ("straggler", fun () -> print_figure (Experiment.ablation_straggler ?pool ~base ()));
    ( "site-order",
      fun () ->
        Fmt.pr "== Ablation: BackEdge site ordering on a hub topology (Section 4.2) ==@.";
        List.iter
          (fun (label, (r : Repdb.Driver.report)) ->
            Fmt.pr "  %-15s thr/site=%7.2f  abort=%6.2f%%  backedges=%d@." label
              r.summary.throughput_per_site r.summary.abort_rate r.n_backedges)
          (Experiment.ablation_site_order ?pool ~base ());
        Fmt.pr "  (n_backedges is counted under the identity order; the fas order removes them@.\
         \   from the protocol's tree even though the copy graph is unchanged)@.@." );
    ("faults", fun () -> print_figure (Experiment.sweep_faults ?pool ~base ()));
    ("reconfig", fun () -> print_figure (Experiment.sweep_reconfig ?pool ~base ()));
    ("fas", fas);
    ("variance", variance);
    ("micro", micro);
    ("occ", fun () -> print_figure (Experiment.sweep_occ ?pool ~base ()));
    ("occ-validate", occ_validate);
  ]

let () =
  let requested = if requested = [] then List.map fst targets else requested in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some run ->
              Fmt.pr "#### %s (txns/thread = %d, -j %d) ####@." name txns_per_thread jobs;
              run ()
          | None ->
              Fmt.epr "unknown bench target %S; available: %s@." name
                (String.concat ", " (List.map fst targets));
              exit 1)
        requested)

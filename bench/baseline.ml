(* Tracked performance baselines for the evaluation engine.

     dune exec bench/baseline.exe                    # fig2a fig2b fig3a fig3b
     dune exec bench/baseline.exe -- -j 4 fig2a
     REPDB_BENCH_TXNS=50 dune exec bench/baseline.exe -- -o /tmp/b.json

   Each selected figure is regenerated twice — sequentially and on a [-j]
   domain pool — and BENCH_sweeps.json records wall-clock per figure for
   both paths, the speedup, simulator events/second, and whether the two
   CSVs were byte-identical (they must be). Future PRs diff this file to
   regression-check the experiment engine's performance.

   [--check FILE] compares this run against a committed baseline JSON: the
   run fails (exit 1) if FILE is missing any required field or if the run's
   total events/second — sequential or parallel — has regressed more than
   15% below FILE's. CI uses this to gate merges on the committed
   BENCH_sweeps.json. *)

module Params = Repdb_workload.Params
module Experiment = Repdb.Experiment
module Pool = Repdb_par.Pool

let txns_per_thread =
  match Sys.getenv_opt "REPDB_BENCH_TXNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1000)
  | None -> 1000

(* REPDB_BENCH_BATCH="8/2" runs every sweep with that batch size / linger-ms
   so the batched data plane can be timed on the full sweeps (the default,
   "1/0", is the unbatched path). *)
let batch_size, batch_linger_ms =
  match Sys.getenv_opt "REPDB_BENCH_BATCH" with
  | None -> (1, 0.0)
  | Some s -> (
      match String.split_on_char '/' s with
      | [ sz ] -> ( match int_of_string_opt sz with Some n when n >= 1 -> (n, 0.0) | _ -> (1, 0.0))
      | [ sz; lg ] -> (
          match (int_of_string_opt sz, float_of_string_opt lg) with
          | Some n, Some l when n >= 1 && l >= 0.0 -> (n, l)
          | _ -> (1, 0.0))
      | _ -> (1, 0.0))

let base = { Params.default with txns_per_thread; batch_size; batch_linger_ms }

let figures : (string * (?pool:Pool.t -> unit -> Experiment.figure)) list =
  [
    ("fig2a", fun ?pool () -> Experiment.fig2a ?pool ~base ());
    ("fig2b", fun ?pool () -> Experiment.fig2b ?pool ~base ());
    ("fig3a", fun ?pool () -> Experiment.fig3a ?pool ~base ());
    ("fig3b", fun ?pool () -> Experiment.fig3b ?pool ~base ());
    ("sites", fun ?pool () -> Experiment.sweep_sites ?pool ~base ());
    ("threads", fun ?pool () -> Experiment.sweep_threads ?pool ~base ());
    ("latency", fun ?pool () -> Experiment.sweep_latency ?pool ~base ());
    ("readtxn", fun ?pool () -> Experiment.sweep_read_txn ?pool ~base ());
    ("eager-scaling", fun ?pool () -> Experiment.ablation_eager_scaling ?pool ~base ());
    ("tree-routing", fun ?pool () -> Experiment.ablation_tree_routing ?pool ~base ());
    ("dummy-period", fun ?pool () -> Experiment.ablation_dummy_period ?pool ~base ());
    ("hotspot", fun ?pool () -> Experiment.ablation_hotspot ?pool ~base ());
    ("straggler", fun ?pool () -> Experiment.ablation_straggler ?pool ~base ());
    ("faults", fun ?pool () -> Experiment.sweep_faults ?pool ~base ());
    ("reconfig", fun ?pool () -> Experiment.sweep_reconfig ?pool ~base ());
    ("partition", fun ?pool () -> Experiment.sweep_partition ?pool ~base ());
    ("occ", fun ?pool () -> Experiment.sweep_occ ?pool ~base ());
    ("heal", fun ?pool () -> Experiment.sweep_heal ?pool ~base ());
  ]

let default_figures = [ "fig2a"; "fig2b"; "fig3a"; "fig3b" ]

let usage () =
  Fmt.epr "usage: baseline [-j N] [-o FILE] [--check FILE] [figure...]@.figures: %s@."
    (String.concat ", " (List.map fst figures));
  exit 1

let jobs, out_file, check_file, selected =
  let rec parse jobs out check acc = function
    | [] -> (jobs, out, check, List.rev acc)
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse j out check acc rest
        | _ -> usage ())
    | "-o" :: f :: rest -> parse jobs f check acc rest
    | "--check" :: f :: rest -> parse jobs out (Some f) acc rest
    | ("-j" | "-o" | "--check") :: _ -> usage ()
    | arg :: rest ->
        if List.mem_assoc arg figures then parse jobs out check (arg :: acc) rest
        else begin
          Fmt.epr "unknown figure %S@." arg;
          usage ()
        end
  in
  parse (Pool.default_domains ()) "BENCH_sweeps.json" None [] (List.tl (Array.to_list Sys.argv))

let selected = if selected = [] then default_figures else selected

type row = {
  id : string;
  seq_s : float;
  par_s : float;
  events : int;  (* simulator events per full figure (same both paths) *)
  identical : bool;
}

let events_of (fig : Experiment.figure) =
  List.fold_left
    (fun acc (pt : Experiment.point) ->
      List.fold_left (fun acc (_, (r : Repdb.Driver.report)) -> acc + r.sim_events) acc pt.reports)
    0 fig.points

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

(* --- [--check]: regression gate against a committed baseline JSON ----------

   The baseline file is machine-written by this very program, so a field
   scanner is enough — we locate ["name": value] textually instead of
   parsing arbitrary JSON (no JSON library in the toolchain). *)

let check_fail fmt = Fmt.kstr (fun m -> Fmt.epr "baseline check FAILED: %s@." m; exit 1) fmt

let index_from_opt s from needle =
  let n = String.length needle and len = String.length s in
  let rec go i =
    if i + n > len then None else if String.sub s i n = needle then Some i else go (i + 1)
  in
  go (max 0 from)

(* The numeric value following ["name":], searching from [from]. *)
let number_after json ~from name =
  let needle = Printf.sprintf "\"%s\":" name in
  match index_from_opt json from needle with
  | None -> None
  | Some i ->
      let len = String.length json in
      let j = ref (i + String.length needle) in
      while !j < len && (json.[!j] = ' ' || json.[!j] = '\n') do
        incr j
      done;
      let start = !j in
      while
        !j < len
        && (match json.[!j] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub json start (!j - start))

let check_against file ~seq_rate ~par_rate =
  let json =
    match In_channel.with_open_bin file In_channel.input_all with
    | j -> j
    | exception Sys_error e -> check_fail "cannot read %s: %s" file e
  in
  (* Every field this program writes must be present — a truncated or
     hand-edited baseline is worse than none. *)
  List.iter
    (fun f ->
      if index_from_opt json 0 (Printf.sprintf "\"%s\"" f) = None then
        check_fail "%s: required field %S missing" file f)
    [
      "generated_by"; "txns_per_thread"; "jobs"; "recommended_domains"; "figures"; "total";
      "seq_s"; "par_s"; "speedup"; "events"; "seq_events_per_s"; "par_events_per_s"; "identical";
      "large"; "occ"; "heal";
    ];
  (* The hand-merged entries ("large" from bench/large.exe at production
     scale, "occ" from the optimistic-vs-locking contention sweep, "heal"
     from the self-healing MTTR sweep) must carry a positive events/s — a
     zero or missing rate means the sweep never actually ran. *)
  List.iter
    (fun entry ->
      match index_from_opt json 0 (Printf.sprintf "\"%s\"" entry) with
      | None -> assert false (* presence checked above *)
      | Some at -> (
          match number_after json ~from:at "events_per_s" with
          | Some v when v > 0.0 -> ()
          | Some v -> check_fail "%s: %s.events_per_s = %g is not positive" file entry v
          | None -> check_fail "%s: %s.events_per_s missing or not a number" file entry))
    [ "large"; "occ"; "heal" ];
  let total_at =
    match index_from_opt json 0 "\"total\"" with
    | Some i -> i
    | None -> assert false (* presence checked above *)
  in
  let total name =
    match number_after json ~from:total_at name with
    | Some v when v > 0.0 -> v
    | Some v -> check_fail "%s: total.%s = %g is not positive" file name v
    | None -> check_fail "%s: total.%s missing or not a number" file name
  in
  (match number_after json ~from:0 "txns_per_thread" with
  | Some t when int_of_float t <> txns_per_thread ->
      Fmt.epr
        "baseline check: warning: txns_per_thread differs (run %d vs baseline %.0f); events/s is \
         roughly scale-free but prefer matching REPDB_BENCH_TXNS@."
        txns_per_thread t
  | _ -> ());
  let tolerance = 0.15 in
  let gate label current baseline =
    let ratio = current /. baseline in
    Fmt.pr "check %-4s %10.0f ev/s vs baseline %10.0f  (%+.1f%%)@." label current baseline
      ((ratio -. 1.0) *. 100.0);
    if ratio < 1.0 -. tolerance then
      check_fail "%s events/s regressed %.1f%% (> %.0f%% tolerance)" label
        ((1.0 -. ratio) *. 100.0)
        (tolerance *. 100.0)
  in
  gate "seq" seq_rate (total "seq_events_per_s");
  gate "par" par_rate (total "par_events_per_s");
  Fmt.pr "baseline check OK (tolerance %.0f%%) against %s@." (tolerance *. 100.0) file

let () =
  let pool = if jobs > 1 then Some (Pool.create ~domains:jobs ()) else None in
  let rows =
    Fun.protect
      ~finally:(fun () -> Option.iter Pool.shutdown pool)
      (fun () ->
        List.map
          (fun id ->
            let make = List.assoc id figures in
            Fmt.pr "%-14s seq ... %!" id;
            let seq_s, seq_fig = time (fun () -> make ()) in
            Fmt.pr "%6.2fs   -j %d ... %!" seq_s jobs;
            let par_s, par_fig = time (fun () -> make ?pool ()) in
            let identical = Experiment.to_csv seq_fig = Experiment.to_csv par_fig in
            let events = events_of seq_fig in
            Fmt.pr "%6.2fs   %4.2fx   %s@." par_s (seq_s /. par_s)
              (if identical then "csv identical" else "CSV MISMATCH");
            { id; seq_s; par_s; events; identical })
          selected)
  in
  let tot f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let seq_total = tot (fun r -> r.seq_s) and par_total = tot (fun r -> r.par_s) in
  let events_total = List.fold_left (fun acc r -> acc + r.events) 0 rows in
  let all_identical = List.for_all (fun r -> r.identical) rows in
  let buf = Buffer.create 4096 in
  let row_json r =
    Printf.sprintf
      "    { \"id\": %S, \"seq_s\": %.4f, \"par_s\": %.4f, \"speedup\": %.3f,\n\
      \      \"events\": %d, \"seq_events_per_s\": %.0f, \"par_events_per_s\": %.0f,\n\
      \      \"identical\": %b }"
      r.id r.seq_s r.par_s (r.seq_s /. r.par_s) r.events
      (float_of_int r.events /. r.seq_s)
      (float_of_int r.events /. r.par_s)
      r.identical
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"generated_by\": \"bench/baseline.exe\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"txns_per_thread\": %d,\n" txns_per_thread);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"figures\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"total\": { \"seq_s\": %.4f, \"par_s\": %.4f, \"speedup\": %.3f, \"events\": %d,\n\
       \             \"seq_events_per_s\": %.0f, \"par_events_per_s\": %.0f, \"identical\": %b }\n"
       seq_total par_total
       (seq_total /. par_total)
       events_total
       (float_of_int events_total /. seq_total)
       (float_of_int events_total /. par_total)
       all_identical);
  Buffer.add_string buf "}\n";
  let oc = open_out out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "total: seq %.2fs, -j %d %.2fs (%.2fx), %d events, %s -> %s@." seq_total jobs par_total
    (seq_total /. par_total) events_total
    (if all_identical then "all CSVs identical" else "CSV MISMATCH")
    out_file;
  if not all_identical then exit 1;
  Option.iter
    (fun file ->
      check_against file
        ~seq_rate:(float_of_int events_total /. seq_total)
        ~par_rate:(float_of_int events_total /. par_total))
    check_file

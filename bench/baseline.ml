(* Tracked performance baselines for the evaluation engine.

     dune exec bench/baseline.exe                    # fig2a fig2b fig3a fig3b
     dune exec bench/baseline.exe -- -j 4 fig2a
     REPDB_BENCH_TXNS=50 dune exec bench/baseline.exe -- -o /tmp/b.json

   Each selected figure is regenerated twice — sequentially and on a [-j]
   domain pool — and BENCH_sweeps.json records wall-clock per figure for
   both paths, the speedup, simulator events/second, and whether the two
   CSVs were byte-identical (they must be). Future PRs diff this file to
   regression-check the experiment engine's performance. *)

module Params = Repdb_workload.Params
module Experiment = Repdb.Experiment
module Pool = Repdb_par.Pool

let txns_per_thread =
  match Sys.getenv_opt "REPDB_BENCH_TXNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1000)
  | None -> 1000

let base = { Params.default with txns_per_thread }

let figures : (string * (?pool:Pool.t -> unit -> Experiment.figure)) list =
  [
    ("fig2a", fun ?pool () -> Experiment.fig2a ?pool ~base ());
    ("fig2b", fun ?pool () -> Experiment.fig2b ?pool ~base ());
    ("fig3a", fun ?pool () -> Experiment.fig3a ?pool ~base ());
    ("fig3b", fun ?pool () -> Experiment.fig3b ?pool ~base ());
    ("sites", fun ?pool () -> Experiment.sweep_sites ?pool ~base ());
    ("threads", fun ?pool () -> Experiment.sweep_threads ?pool ~base ());
    ("latency", fun ?pool () -> Experiment.sweep_latency ?pool ~base ());
    ("readtxn", fun ?pool () -> Experiment.sweep_read_txn ?pool ~base ());
    ("eager-scaling", fun ?pool () -> Experiment.ablation_eager_scaling ?pool ~base ());
    ("tree-routing", fun ?pool () -> Experiment.ablation_tree_routing ?pool ~base ());
    ("dummy-period", fun ?pool () -> Experiment.ablation_dummy_period ?pool ~base ());
    ("hotspot", fun ?pool () -> Experiment.ablation_hotspot ?pool ~base ());
    ("straggler", fun ?pool () -> Experiment.ablation_straggler ?pool ~base ());
  ]

let default_figures = [ "fig2a"; "fig2b"; "fig3a"; "fig3b" ]

let usage () =
  Fmt.epr "usage: baseline [-j N] [-o FILE] [figure...]@.figures: %s@."
    (String.concat ", " (List.map fst figures));
  exit 1

let jobs, out_file, selected =
  let rec parse jobs out acc = function
    | [] -> (jobs, out, List.rev acc)
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with Some j when j >= 1 -> parse j out acc rest | _ -> usage ())
    | "-o" :: f :: rest -> parse jobs f acc rest
    | ("-j" | "-o") :: _ -> usage ()
    | arg :: rest ->
        if List.mem_assoc arg figures then parse jobs out (arg :: acc) rest
        else begin
          Fmt.epr "unknown figure %S@." arg;
          usage ()
        end
  in
  parse (Pool.default_domains ()) "BENCH_sweeps.json" [] (List.tl (Array.to_list Sys.argv))

let selected = if selected = [] then default_figures else selected

type row = {
  id : string;
  seq_s : float;
  par_s : float;
  events : int;  (* simulator events per full figure (same both paths) *)
  identical : bool;
}

let events_of (fig : Experiment.figure) =
  List.fold_left
    (fun acc (pt : Experiment.point) ->
      List.fold_left (fun acc (_, (r : Repdb.Driver.report)) -> acc + r.sim_events) acc pt.reports)
    0 fig.points

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

let () =
  let pool = if jobs > 1 then Some (Pool.create ~domains:jobs) else None in
  let rows =
    Fun.protect
      ~finally:(fun () -> Option.iter Pool.shutdown pool)
      (fun () ->
        List.map
          (fun id ->
            let make = List.assoc id figures in
            Fmt.pr "%-14s seq ... %!" id;
            let seq_s, seq_fig = time (fun () -> make ()) in
            Fmt.pr "%6.2fs   -j %d ... %!" seq_s jobs;
            let par_s, par_fig = time (fun () -> make ?pool ()) in
            let identical = Experiment.to_csv seq_fig = Experiment.to_csv par_fig in
            let events = events_of seq_fig in
            Fmt.pr "%6.2fs   %4.2fx   %s@." par_s (seq_s /. par_s)
              (if identical then "csv identical" else "CSV MISMATCH");
            { id; seq_s; par_s; events; identical })
          selected)
  in
  let tot f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let seq_total = tot (fun r -> r.seq_s) and par_total = tot (fun r -> r.par_s) in
  let events_total = List.fold_left (fun acc r -> acc + r.events) 0 rows in
  let all_identical = List.for_all (fun r -> r.identical) rows in
  let buf = Buffer.create 4096 in
  let row_json r =
    Printf.sprintf
      "    { \"id\": %S, \"seq_s\": %.4f, \"par_s\": %.4f, \"speedup\": %.3f,\n\
      \      \"events\": %d, \"seq_events_per_s\": %.0f, \"par_events_per_s\": %.0f,\n\
      \      \"identical\": %b }"
      r.id r.seq_s r.par_s (r.seq_s /. r.par_s) r.events
      (float_of_int r.events /. r.seq_s)
      (float_of_int r.events /. r.par_s)
      r.identical
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"generated_by\": \"bench/baseline.exe\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"txns_per_thread\": %d,\n" txns_per_thread);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"figures\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"total\": { \"seq_s\": %.4f, \"par_s\": %.4f, \"speedup\": %.3f, \"events\": %d,\n\
       \             \"seq_events_per_s\": %.0f, \"par_events_per_s\": %.0f, \"identical\": %b }\n"
       seq_total par_total
       (seq_total /. par_total)
       events_total
       (float_of_int events_total /. seq_total)
       (float_of_int events_total /. par_total)
       all_identical);
  Buffer.add_string buf "}\n";
  let oc = open_out out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "total: seq %.2fs, -j %d %.2fs (%.2fx), %d events, %s -> %s@." seq_total jobs par_total
    (seq_total /. par_total) events_total
    (if all_identical then "all CSVs identical" else "CSV MISMATCH")
    out_file;
  if not all_identical then exit 1

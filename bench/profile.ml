(* Tracked profiler baselines: overhead and transparency.

     dune exec bench/profile.exe                     # all four protocols
     REPDB_BENCH_TXNS=50 dune exec bench/profile.exe -- -o /tmp/p.json

   Each protocol's reference workload is run [reps] times with the
   self-profiler off (the production default: one flag check per scheduled
   event) and [reps] times with it on (two wall-clock reads plus a
   [Gc.minor_words] delta per event). BENCH_profile.json records the median
   wall time of both paths, the enabled-profiler overhead, and the on-run's
   per-category breakdown — the before/after evidence ROADMAP item 2's
   kernel rewrites need.

   The disabled path's budget (<5% of runtime) is verified directly: a
   microbenchmark times the [Profile.on] guard itself, and that per-check
   cost — charged three times per simulator event, a deliberate
   overestimate (schedule, suspend, resume) — is compared against each
   run's measured events/second. The run exits non-zero if the projected
   disabled overhead exceeds 5%.

   The profiler reads wall clocks but must never touch simulated state: the
   run also exits non-zero if any profiled run's summary diverges from the
   unprofiled one. *)

module Params = Repdb_workload.Params
module Profile = Repdb_obs.Profile

let txns_per_thread =
  match Sys.getenv_opt "REPDB_BENCH_TXNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

let reps = 5

(* backedge_prob 0 so the generated copy graph is a DAG and all four
   protocols accept the identical placement. *)
let base = { Params.default with txns_per_thread; backedge_prob = 0.0 }
let protocols = [ "psl"; "backedge"; "dag-wt"; "dag-t" ]

let out_file =
  match Array.to_list Sys.argv with
  | [ _ ] -> "BENCH_profile.json"
  | [ _; "-o"; f ] -> f
  | _ ->
      Fmt.epr "usage: profile [-o FILE]@.";
      exit 1

let find name =
  match Repdb.Registry.find name with
  | Some p -> p
  | None -> Fmt.failwith "protocol %s not registered" name

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* Seconds per [Profile.on] check on a disabled profiler, measured over a
   tight loop (empty-loop time subtracted out). *)
let guard_cost_s =
  let n = 50_000_000 in
  let p = Profile.disabled in
  let hits = ref 0 in
  let timed body =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      body ()
    done;
    Unix.gettimeofday () -. t0
  in
  let empty = timed (fun () -> if Sys.opaque_identity false then incr hits) in
  let guarded = timed (fun () -> if Profile.on (Sys.opaque_identity p) then incr hits) in
  ignore !hits;
  Float.max 0.0 (guarded -. empty) /. float_of_int n

(* The guard runs at most three times per executed event (schedule wrap,
   suspend capture, resume); project that against a run's event rate. *)
let disabled_overhead_pct ~events ~off_s =
  100.0 *. (3.0 *. guard_cost_s *. float_of_int events) /. off_s

type row = {
  protocol : string;
  off_s : float;
  on_s : float;
  events : int;
  transparent : bool;
  profile_json : string;
}

let fingerprint (r : Repdb.Driver.report) =
  (r.summary.commits, r.summary.aborts, r.sim_events, r.sim_time)

let bench name =
  let proto = find name in
  let run params = Repdb.Driver.run params proto in
  ignore (run base) (* warm-up *);
  let samples params = List.init reps (fun _ -> time (fun () -> run params)) in
  let off = samples base in
  let on = samples { base with profile = true } in
  let reference = fingerprint (snd (List.hd off)) in
  let transparent =
    List.for_all (fun (_, r) -> fingerprint r = reference) (off @ on)
  in
  let off_s = median (List.map fst off) and on_s = median (List.map fst on) in
  let last_on = snd (List.nth on (reps - 1)) in
  Fmt.pr "%-10s off %6.3fs   on %6.3fs   %+5.1f%% enabled   %.3f%% disabled   %s@." name off_s
    on_s
    (100.0 *. ((on_s /. off_s) -. 1.0))
    (disabled_overhead_pct ~events:last_on.sim_events ~off_s)
    (if transparent then "results identical" else "RESULT DIVERGED");
  {
    protocol = name;
    off_s;
    on_s;
    events = last_on.sim_events;
    transparent;
    profile_json = Profile.to_json_string last_on.profile;
  }

let () =
  let rows = List.map bench protocols in
  let row_json r =
    Printf.sprintf
      "    { \"protocol\": %S, \"off_s\": %.4f, \"on_s\": %.4f, \"enabled_overhead_pct\": %.2f,\n\
      \      \"disabled_overhead_pct\": %.4f, \"events\": %d, \"off_events_per_s\": %.0f,\n\
      \      \"transparent\": %b,\n\
      \      \"profile\": %s }"
      r.protocol r.off_s r.on_s
      (100.0 *. ((r.on_s /. r.off_s) -. 1.0))
      (disabled_overhead_pct ~events:r.events ~off_s:r.off_s)
      r.events
      (float_of_int r.events /. r.off_s)
      r.transparent r.profile_json
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"generated_by\": \"bench/profile.exe\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"txns_per_thread\": %d,\n" txns_per_thread);
  Buffer.add_string buf (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string buf
    (Printf.sprintf "  \"guard_cost_ns\": %.3f,\n" (guard_cost_s *. 1e9));
  Buffer.add_string buf
    "  \"note\": \"disabled_overhead_pct projects the measured Profile.on guard cost (3 \
     checks/event, a deliberate overestimate) onto the run's event rate; the budget is 5%\",\n";
  Buffer.add_string buf "  \"protocols\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let all_transparent = List.for_all (fun r -> r.transparent) rows in
  let within_budget =
    List.for_all
      (fun r -> disabled_overhead_pct ~events:r.events ~off_s:r.off_s < 5.0)
      rows
  in
  Fmt.pr "-> %s (%s, disabled overhead %s)@." out_file
    (if all_transparent then "profiler transparent" else "PROFILER PERTURBED RESULTS")
    (if within_budget then "within the 5% budget" else "OVER THE 5% BUDGET");
  if not (all_transparent && within_budget) then exit 1

(* Production-size partial-replication sweep.

     dune exec bench/large.exe                                # 200 x 100k
     dune exec bench/large.exe -- --sites 64 --items 20000    # CI smoke
     dune exec bench/large.exe -- -o large.csv --txns 20

   Runs the lazy protocols whose apply paths the compact placement layer
   serves (BackEdge, DAG(WT), PSL) on a cluster of hundreds of sites with
   100k+ partially replicated items, and reports per protocol: wall-clock
   seconds, simulator events per second, and resident memory per site (peak
   RSS divided by the site count — the figure that the sorted-array replica
   rows, routing bitsets and dense lock tables keep flat).

   The summary line printed at the end is the JSON fragment recorded as the
   "large" entry of BENCH_sweeps.json; [baseline.exe --check] requires that
   entry and fails on a non-positive events/s. *)

module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Registry = Repdb.Registry
module Driver = Repdb.Driver

(* The protocol listing is rendered from [Registry.entries] — the same single
   source `repdb protocols` prints, so the two cannot drift. *)
let usage () =
  Fmt.epr
    "usage: large [--sites N] [--items N] [--txns N] [--threads N] [--protocols a,b] [-o FILE]@.@.protocols:@.";
  List.iter (fun (name, doc) -> Fmt.epr "  %-10s %s@." name doc) (Registry.describe ());
  exit 1

let sites, items, txns, threads, protocols, out_file =
  let rec parse sites items txns threads protos out = function
    | [] -> (sites, items, txns, threads, protos, out)
    | "--sites" :: n :: rest -> parse (int_of_string n) items txns threads protos out rest
    | "--items" :: n :: rest -> parse sites (int_of_string n) txns threads protos out rest
    | "--txns" :: n :: rest -> parse sites items (int_of_string n) threads protos out rest
    | "--threads" :: n :: rest -> parse sites items txns (int_of_string n) protos out rest
    | "--protocols" :: p :: rest ->
        parse sites items txns threads (String.split_on_char ',' p) out rest
    | "-o" :: f :: rest -> parse sites items txns threads protos (Some f) rest
    | _ -> usage ()
  in
  match
    parse 200 100_000 10 1 [ "backedge"; "dag-wt"; "psl" ] None
      (List.tl (Array.to_list Sys.argv))
  with
  | v -> v
  | exception _ -> usage ()

(* Peak resident set, kB, from the kernel's accounting (0 if unavailable). *)
let peak_rss_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | status -> (
      let rec find = function
        | [] -> 0
        | line :: rest ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
            else find rest
      in
      match find (String.split_on_char '\n' status) with n -> n | exception _ -> 0)
  | exception _ -> 0

(* Target ~3 replicas per replicated item regardless of scale: the candidate
   pool averages m/2 following sites, so s = 6/m keeps the expected replica
   count constant while the placement stays genuinely partial. *)
let params ~backedge_prob =
  {
    Params.default with
    n_sites = sites;
    n_items = items;
    threads_per_site = threads;
    txns_per_thread = txns;
    replication_prob = 0.5;
    site_prob = min 1.0 (6.0 /. float_of_int sites);
    backedge_prob;
    n_machines = max 3 (sites / 8);
  }

type row = {
  proto : string;
  wall_s : float;
  events : int;
  events_per_s : float;
  commits : int;
  aborts : int;
  n_replicas : int;
  rss_kb_per_site : int;
}

let run_one name =
  let proto =
    match Registry.find name with
    | Some p -> p
    | None -> (
        Fmt.epr "unknown protocol %S (known: %s)@." name (String.concat ", " Registry.names);
        exit 1)
  in
  (* DAG protocols need an acyclic copy graph; the chain-order BackEdge and
     PSL runs keep the default backedge fraction so their eager paths fire. *)
  let b = if name = "dag-wt" || name = "dag-t" then 0.0 else 0.2 in
  Fmt.pr "%-10s %d sites x %d items ... %!" name sites items;
  let t0 = Unix.gettimeofday () in
  let r = Driver.run (params ~backedge_prob:b) proto in
  let wall_s = Unix.gettimeofday () -. t0 in
  let events_per_s = float_of_int r.sim_events /. wall_s in
  let rss_kb_per_site = peak_rss_kb () / sites in
  Fmt.pr "%6.1fs  %9.0f ev/s  %d commits  %d kB/site@." wall_s events_per_s r.summary.commits
    rss_kb_per_site;
  {
    proto = name;
    wall_s;
    events = r.sim_events;
    events_per_s;
    commits = r.summary.commits;
    aborts = r.summary.aborts;
    n_replicas = r.n_replicas;
    rss_kb_per_site;
  }

let () =
  let rows = List.map run_one protocols in
  let csv =
    let b = Buffer.create 512 in
    Buffer.add_string b
      "protocol,sites,items,txns_per_thread,wall_s,sim_events,events_per_s,commits,aborts,replicas,rss_kb_per_site\n";
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%s,%d,%d,%d,%.3f,%d,%.0f,%d,%d,%d,%d\n" r.proto sites items txns
             r.wall_s r.events r.events_per_s r.commits r.aborts r.n_replicas r.rss_kb_per_site))
      rows;
    Buffer.contents b
  in
  (match out_file with
  | Some f ->
      Out_channel.with_open_text f (fun oc -> output_string oc csv);
      Fmt.pr "wrote %s@." f
  | None -> print_string csv);
  (* The committed BENCH_sweeps.json "large" entry: total events over total
     wall time, worst per-site memory across protocols. *)
  let wall = List.fold_left (fun a r -> a +. r.wall_s) 0.0 rows in
  let events = List.fold_left (fun a r -> a + r.events) 0 rows in
  let rss = List.fold_left (fun a r -> max a r.rss_kb_per_site) 0 rows in
  Fmt.pr
    "@.\"large\": { \"sites\": %d, \"items\": %d, \"txns_per_thread\": %d, \"protocols\": %S,@.\
    \           \"wall_s\": %.2f, \"events\": %d, \"events_per_s\": %.0f, \"rss_kb_per_site\": %d }@."
    sites items txns (String.concat "," protocols) wall events
    (float_of_int events /. wall)
    rss;
  if List.exists (fun r -> r.commits = 0) rows then begin
    Fmt.epr "FAILED: a protocol committed nothing@.";
    exit 1
  end

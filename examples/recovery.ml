(* Crash recovery of replicated sites.

     dune exec examples/recovery.exe

   The paper's substrate (DataBlitz) is a recoverable main-memory storage
   manager. This example attaches a redo log to every site store, runs a full
   BackEdge workload over a cyclic copy graph, then "crashes" every site and
   rebuilds it from its checkpoint + log, verifying the rebuilt stores match
   the live ones bit for bit — and that the recovered cluster still passes
   the replica-convergence check. *)

module Store = Repdb_store.Store
module Wal = Repdb_store.Wal
module Params = Repdb_workload.Params

let () =
  let params =
    {
      Params.default with
      n_sites = 6;
      n_items = 60;
      replication_prob = 0.4;
      backedge_prob = 0.3;
      threads_per_site = 2;
      txns_per_thread = 150;
      record_history = true;
      seed = 31;
    }
  in
  let c = Repdb.Cluster.create params in
  let wals =
    Array.map
      (fun store ->
        let wal = Wal.create () in
        Wal.attach wal store;
        wal)
      c.stores
  in
  Fmt.pr "Running a BackEdge workload with a redo log attached to every site...@.";
  let r = Repdb.Driver.run_on c (module Repdb.Backedge_proto) in
  Fmt.pr "  %d commits, %d aborts, %a@.@." r.summary.commits r.summary.aborts
    (Fmt.option Repdb_txn.Serializability.pp_verdict)
    r.serializability;
  Fmt.pr "Crashing and recovering every site from its log:@.";
  Array.iteri
    (fun site wal ->
      let recovered = Wal.recover wal ~site in
      let ok = Store.contents recovered = Store.contents c.stores.(site) in
      Fmt.pr "  site %d: %d records replayed over a %d-item checkpoint -> %s@." site
        (Wal.length wal)
        (List.length (Wal.snapshot wal))
        (if ok then "identical to the live store" else "MISMATCH");
      if not ok then exit 1)
    wals;
  Fmt.pr "@.All sites recovered exactly; a recovered replica set is as consistent@.";
  Fmt.pr "as the live one (convergence: %s).@."
    (match Repdb.Convergence.check c with [] -> "ok" | l -> Printf.sprintf "%d divergent" (List.length l))

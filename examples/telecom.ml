(* Telecom network management — the paper's introduction motivates lazy
   replication with "network management applications require real-time
   dissemination of updates to replicas with strong consistency guarantees".

     dune exec examples/telecom.exe

   A management station (site 0) owns the configuration state of a region;
   element managers (sites 1..5) each own their device counters and replicate
   the station's configuration. The station replicates a status summary of
   every element manager — a copy graph WITH backedges, so only the BackEdge
   protocol (among the serializable ones) can run it. We compare recency
   (update-propagation delay) and consistency across BackEdge, the eager
   baseline and indiscriminate propagation. *)

module Placement = Repdb_workload.Placement
module Params = Repdb_workload.Params
module Serializability = Repdb_txn.Serializability

let n_managers = 5
let n_config = 12 (* station-owned, replicated everywhere *)
let n_status_per_mgr = 4 (* manager-owned, replicated back at the station *)

let placement =
  let n_items = n_config + (n_managers * n_status_per_mgr) in
  let primary = Array.make n_items 0 in
  let replicas = Array.make n_items [] in
  for i = 0 to n_config - 1 do
    primary.(i) <- 0;
    replicas.(i) <- List.init n_managers (fun k -> k + 1)
  done;
  for mgr = 1 to n_managers do
    for k = 0 to n_status_per_mgr - 1 do
      let i = n_config + ((mgr - 1) * n_status_per_mgr) + k in
      primary.(i) <- mgr;
      replicas.(i) <- [ 0 ] (* status flows back: a backedge *)
    done
  done;
  Placement.make ~n_sites:(n_managers + 1) ~n_items ~primary ~replicas

let params =
  {
    Params.default with
    n_sites = n_managers + 1;
    n_items = Placement.(placement.n_items);
    threads_per_site = 2;
    txns_per_thread = 150;
    read_op_prob = 0.6;
    read_txn_prob = 0.3;
    record_history = true;
    seed = 23;
  }

let () =
  Fmt.pr "Copy graph has %d backedges (status flowing back to the station).@.@."
    (List.length (Placement.backedges placement));
  Fmt.pr "%-9s %11s %11s %9s %14s %s@." "protocol" "thr/site" "recency(ms)" "abort%" "serializable?"
    "";
  List.iter
    (fun (proto : Repdb.Protocol.t) ->
      let r = Repdb.Driver.run ~placement params proto in
      Fmt.pr "%-9s %11.1f %11.1f %9.2f %14s@." (Repdb.Protocol.name proto)
        r.summary.throughput_per_site r.summary.avg_propagation r.summary.abort_rate
        (match r.serializability with
        | Some Serializability.Serializable -> "yes"
        | Some (Serializability.Not_serializable _) -> "NO"
        | None -> "-"))
    [
      (module Repdb.Backedge_proto : Repdb.Protocol.S);
      (module Repdb.Lazy_master : Repdb.Protocol.S);
      (module Repdb.Central : Repdb.Protocol.S);
      (module Repdb.Eager : Repdb.Protocol.S);
      (module Repdb.Naive : Repdb.Protocol.S);
    ];
  Fmt.pr
    "@.Every status update crosses a backedge, so this topology is the@.\
     BackEdge protocol's documented worst case (Section 5.3.3 of the paper):@.\
     it stays serializable but pays for the global deadlocks with aborts.@.\
     Eager replication gets the best recency at the cost of running 2PC@.\
     inside every update; indiscriminate propagation is fastest but gives@.\
     up serializability — exactly the trade-off the paper maps out.@."

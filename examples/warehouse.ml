(* Distributed data warehouse — the scenario the paper's conclusion calls out
   as naturally producing a DAG copy graph.

     dune exec examples/warehouse.exe

   Topology (7 sites):

     site 0   headquarters — owns the reference data (dimensions)
     site 1,2 regional warehouses — own regional facts, replicate reference
     site 3-6 data marts — replicate from their region (3,4 <- 1; 5,6 <- 2)

   Reference items are replicated HQ -> regions -> marts; regional facts are
   replicated region -> its marts. The copy graph is a DAG, so both lazy DAG
   protocols apply; we compare their routing cost and propagation delay and
   check that both serialize the exact same workload. *)

module Placement = Repdb_workload.Placement
module Params = Repdb_workload.Params
module Digraph = Repdb_graph.Digraph

let n_reference = 20
let n_facts_per_region = 15

(* Items 0..19 are reference data at HQ; 20..34 facts of region 1;
   35..49 facts of region 2. Marts replicate their region's facts and the
   reference data (which reaches them through their region). *)
let placement =
  let n_items = n_reference + (2 * n_facts_per_region) in
  let primary = Array.make n_items 0 in
  let replicas = Array.make n_items [] in
  for i = 0 to n_reference - 1 do
    primary.(i) <- 0;
    replicas.(i) <- [ 1; 2; 3; 4; 5; 6 ]
  done;
  for k = 0 to n_facts_per_region - 1 do
    let i = n_reference + k in
    primary.(i) <- 1;
    replicas.(i) <- [ 3; 4 ];
    let j = n_reference + n_facts_per_region + k in
    primary.(j) <- 2;
    replicas.(j) <- [ 5; 6 ]
  done;
  Placement.make ~n_sites:7 ~n_items ~primary ~replicas

let params =
  {
    Params.default with
    n_sites = 7;
    n_items = Placement.(placement.n_items);
    threads_per_site = 2;
    txns_per_thread = 150;
    read_op_prob = 0.8;
    record_history = true;
    seed = 11;
  }

let () =
  let g = Placement.copy_graph placement in
  Fmt.pr "Copy graph: %a@." Digraph.pp g;
  Fmt.pr "Is a DAG: %b — lazy DAG protocols apply.@.@." (Digraph.is_dag g);
  let run name proto =
    let r = Repdb.Driver.run ~placement params proto in
    Fmt.pr "%-8s throughput/site=%6.1f txn/s  messages=%5d  propagation=%6.1f ms  %s, %s@." name
      r.summary.throughput_per_site r.summary.messages r.summary.avg_propagation
      (match r.serializability with
      | Some Repdb_txn.Serializability.Serializable -> "serializable"
      | Some (Repdb_txn.Serializability.Not_serializable _) -> "NOT SERIALIZABLE"
      | None -> "unchecked")
      (match r.divergent with
      | Some [] -> "replicas converged"
      | Some l -> Printf.sprintf "%d divergent" (List.length l)
      | None -> "replicas virtual");
    r
  in
  let wt = run "DAG(WT)" (module Repdb.Dag_wt) in
  let dt = run "DAG(T)" (module Repdb.Dag_t) in
  Fmt.pr "@.DAG(WT) routes each update through the tree (here: chains inside@.";
  Fmt.pr "the weakly-connected warehouse hierarchy), while DAG(T) sends straight@.";
  Fmt.pr "to the replica holders and orders them with timestamps: %d vs %d messages.@."
    wt.summary.messages dt.summary.messages;
  let tree = Repdb_graph.Tree.of_dag g in
  Fmt.pr "Propagation tree used by DAG(WT): %a@." Repdb_graph.Tree.pp tree

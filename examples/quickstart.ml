(* Quickstart: run one lazy replication protocol on a small cluster and read
   the report.

     dune exec examples/quickstart.exe

   A cluster is described by `Params` (Table 1 of the paper plus the
   simulation cost model); `Driver.run` builds the sites, wires a protocol's
   background processes into the simulation, runs the closed-loop clients to
   completion and reports throughput, abort rate, response and propagation
   times, plus the two correctness verdicts: global serializability and
   replica convergence. *)

let () =
  let params =
    {
      Repdb_workload.Params.default with
      n_sites = 5;
      n_items = 50;
      replication_prob = 0.4;
      backedge_prob = 0.0;
      threads_per_site = 2;
      txns_per_thread = 200;
      record_history = true;
      seed = 7;
    }
  in
  Fmt.pr "Running the DAG(T) protocol on a 5-site cluster...@.@.";
  let report = Repdb.Driver.run params (module Repdb.Dag_t) in
  Fmt.pr "%a@.@." Repdb.Driver.pp_report report;
  Fmt.pr "And the primary-site-locking baseline on the same workload...@.@.";
  let psl = Repdb.Driver.run params (module Repdb.Psl) in
  Fmt.pr "%a@.@." Repdb.Driver.pp_report psl;
  Fmt.pr "DAG(T) / PSL throughput ratio: %.2fx@."
    (report.summary.throughput /. psl.summary.throughput)

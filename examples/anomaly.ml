(* The paper's two running examples, executed for real.

     dune exec examples/anomaly.exe

   Example 1.1 — a DAG copy graph where indiscriminate lazy propagation
   produces a non-serializable execution: T1 updates a at s1; the update
   reaches s2 before T2 (which reads a and writes b) but reaches s3 only
   after T3 has read both items there. DAG(WT) and DAG(T) both prevent it.

   Example 4.1 — a cyclic copy graph where no lazy order can serialize two
   concurrent transactions; the BackEdge protocol turns the conflict into a
   global deadlock and aborts one of them. *)

module Sim = Repdb_sim.Sim
module Txn = Repdb_txn.Txn
module Serializability = Repdb_txn.Serializability
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Cluster = Repdb.Cluster

let params =
  { Params.default with n_sites = 3; n_items = 2; record_history = true; txns_per_thread = 1 }

(* a = item 0: primary s1(=0), replicas s2(=1), s3(=2);
   b = item 1: primary s2(=1), replica s3(=2). *)
let placement_1_1 =
  Placement.make ~n_sites:3 ~n_items:2 ~primary:[| 0; 1 |] ~replicas:[| [ 1; 2 ]; [ 2 ] |]

(* The slow link s1 -> s3 that makes the indiscriminate schedule possible. *)
let slow src dst = if src = 0 && dst = 2 then 200.0 else 1.0

let run_example_1_1 (proto : Repdb.Protocol.t) =
  let module P = (val proto) in
  let c = Cluster.create_with ~latency:slow params placement_1_1 in
  let p = P.create c in
  let submit_at time spec =
    Cluster.client_started c;
    Sim.at c.sim time (fun () ->
        Sim.spawn c.sim (fun () ->
            ignore (P.submit p spec);
            Cluster.client_finished c))
  in
  submit_at 0.0 { Txn.origin = 0; ops = [ Txn.Write 0 ] } (* T1: w(a) at s1 *);
  submit_at 50.0 { Txn.origin = 1; ops = [ Txn.Read 0; Txn.Write 1 ] } (* T2 at s2 *);
  submit_at 70.0 { Txn.origin = 2; ops = [ Txn.Read 0; Txn.Read 1 ] } (* T3 at s3 *);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 100_000.0;
  Sim.run c.sim;
  (P.name, Serializability.check c.history)

let placement_4_1 =
  Placement.make ~n_sites:2 ~n_items:2 ~primary:[| 0; 1 |] ~replicas:[| [ 1 ]; [ 0 ] |]

let run_example_4_1 () =
  let c = Cluster.create_with { params with Params.n_sites = 2 } placement_4_1 in
  let p = Repdb.Backedge_proto.create c in
  let outcomes = Array.make 2 Txn.Committed in
  let submit idx spec =
    Cluster.client_started c;
    Sim.spawn c.sim (fun () ->
        outcomes.(idx) <- Repdb.Backedge_proto.submit p spec;
        Cluster.client_finished c)
  in
  submit 0 { Txn.origin = 0; ops = [ Txn.Read 1; Txn.Write 0 ] } (* T1: r(b) w(a) *);
  submit 1 { Txn.origin = 1; ops = [ Txn.Read 0; Txn.Write 1 ] } (* T2: r(a) w(b) *);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 100_000.0;
  Sim.run c.sim;
  (outcomes, Serializability.check c.history)

let () =
  Fmt.pr "== Example 1.1: DAG copy graph, slow direct link s1->s3 ==@.";
  List.iter
    (fun proto ->
      let name, verdict = run_example_1_1 proto in
      Fmt.pr "  %-8s -> %a@." name Serializability.pp_verdict verdict)
    [
      (module Repdb.Naive : Repdb.Protocol.S);
      (module Repdb.Dag_wt : Repdb.Protocol.S);
      (module Repdb.Dag_t : Repdb.Protocol.S);
    ];
  Fmt.pr
    "@.Naive propagation lets T1's update overtake on the multi-hop path;@.\
     DAG(WT) forwards it through s2's tree edge and DAG(T) orders it by@.\
     timestamp, so both serialize the same schedule.@.@.";
  Fmt.pr "== Example 4.1: cyclic copy graph under BackEdge ==@.";
  let outcomes, verdict = run_example_4_1 () in
  Fmt.pr "  T1 (no backedge subtransaction): %a@." Txn.pp_outcome outcomes.(0);
  Fmt.pr "  T2 (backedge subtransaction at s1): %a@." Txn.pp_outcome outcomes.(1);
  Fmt.pr "  history: %a@." Serializability.pp_verdict verdict;
  Fmt.pr
    "@.T2 must hold its locks until its special subtransaction message returns,@.\
     which closes the global deadlock of Example 4.1; the protocol victimises@.\
     T2 and the execution stays serializable.@."

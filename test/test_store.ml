(* Tests for the per-site storage engine, the hash index, values, and the
   redo log / recovery layer. *)

module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Hash_index = Repdb_store.Hash_index
module Wal = Repdb_store.Wal

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_initial_state () =
  let s = Store.create ~site:2 [ 1; 5; 9 ] in
  checki "site" 2 (Store.site s);
  checki "size" 3 (Store.size s);
  checkb "mem placed" true (Store.mem s 5);
  checkb "mem absent" false (Store.mem s 4);
  Alcotest.(check (list int)) "items sorted" [ 1; 5; 9 ] (Store.items s);
  let v = Store.read s 1 in
  checki "version 0" 0 v.Value.version;
  checki "no writer" (-1) v.Value.writer

let test_apply_versions () =
  let s = Store.create ~site:0 [ 7 ] in
  Store.apply s 7 ~writer:100 ();
  Store.apply s 7 ~writer:200 ();
  let v = Store.read s 7 in
  checki "version counts writes" 2 v.Value.version;
  checki "last writer" 200 v.Value.writer

let test_payload () =
  let s = Store.create ~site:0 [ 1 ] in
  Store.apply s 1 ~writer:5 ~payload:"hello" ();
  Alcotest.(check string) "payload stored" "hello" (Store.read s 1).Value.payload;
  Store.apply s 1 ~writer:6 ();
  Alcotest.(check string) "payload kept when unspecified" "hello" (Store.read s 1).Value.payload

let test_set_ships_value () =
  let a = Store.create ~site:0 [ 3 ] and b = Store.create ~site:1 [ 3 ] in
  Store.apply a 3 ~writer:9 ();
  Store.set b 3 (Store.read a 3);
  checkb "copies equal" true (Value.equal (Store.read a 3) (Store.read b 3))

let test_not_placed_errors () =
  let s = Store.create ~site:1 [ 0 ] in
  let msg = "Store: item 5 is not placed at site 1" in
  Alcotest.check_raises "read" (Invalid_argument msg) (fun () -> ignore (Store.read s 5));
  Alcotest.check_raises "apply" (Invalid_argument msg) (fun () -> Store.apply s 5 ~writer:1 ());
  Alcotest.check_raises "set" (Invalid_argument msg) (fun () -> Store.set s 5 Value.initial)

let test_iter () =
  let s = Store.create ~site:0 [ 1; 2; 3 ] in
  Store.apply s 2 ~writer:1 ();
  let total = ref 0 and written = ref 0 in
  Store.iter
    (fun _ v ->
      incr total;
      if v.Value.version > 0 then incr written)
    s;
  checki "all copies" 3 !total;
  checki "one written" 1 !written

let test_value_semantics () =
  let v1 = Value.write ~writer:3 Value.initial in
  let v2 = Value.write ~writer:3 Value.initial in
  checkb "equal" true (Value.equal v1 v2);
  let v3 = Value.write ~writer:4 v1 in
  checkb "not equal" false (Value.equal v1 v3);
  Alcotest.(check string) "pp" "v1/T3" (Fmt.str "%a" Value.pp v1)

(* --- hash index ------------------------------------------------------------ *)

let test_index_basics () =
  let h = Hash_index.create ~capacity:2 () in
  checki "empty" 0 (Hash_index.length h);
  Hash_index.set h 5 "a";
  Hash_index.set h 21 "b";
  (* 21 and 5 may collide; both must survive. *)
  checkb "find 5" true (Hash_index.find h 5 = Some "a");
  checkb "find 21" true (Hash_index.find h 21 = Some "b");
  Hash_index.set h 5 "c";
  checkb "replace" true (Hash_index.find h 5 = Some "c");
  checki "length after replace" 2 (Hash_index.length h);
  checkb "remove" true (Hash_index.remove h 5);
  checkb "remove again" false (Hash_index.remove h 5);
  checkb "gone" false (Hash_index.mem h 5);
  checkb "other survives tombstone" true (Hash_index.find h 21 = Some "b");
  Alcotest.check_raises "negative key" (Invalid_argument "Hash_index: negative key") (fun () ->
      ignore (Hash_index.find h (-1)))

let test_index_growth () =
  let h = Hash_index.create ~capacity:2 () in
  for k = 0 to 999 do
    Hash_index.set h k (k * 7)
  done;
  checki "all live" 1000 (Hash_index.length h);
  for k = 0 to 999 do
    checkb "retrievable" true (Hash_index.find h k = Some (k * 7))
  done;
  let sum = Hash_index.fold (fun _ v acc -> acc + v) h 0 in
  checki "fold sums values" (7 * 999 * 1000 / 2) sum

let test_index_tombstone_churn () =
  (* Insert/delete churn must not wedge the table or leak capacity without
     bound. *)
  let h = Hash_index.create ~capacity:8 () in
  for round = 0 to 99 do
    for k = 0 to 7 do
      Hash_index.set h ((round * 8) + k) k
    done;
    for k = 0 to 7 do
      ignore (Hash_index.remove h ((round * 8) + k))
    done
  done;
  checki "empty after churn" 0 (Hash_index.length h);
  checkb "bounded capacity" true (Hash_index.capacity h <= 64)

(* Model check against Hashtbl on random op sequences. *)
let prop_index_matches_hashtbl =
  QCheck2.Test.make ~name:"hash index matches Hashtbl model" ~count:300
    QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 30) (int_range 0 2)))
    (fun ops ->
      let h = Hash_index.create ~capacity:2 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (key, op) ->
          match op with
          | 0 ->
              Hash_index.set h key key;
              Hashtbl.replace model key key;
              true
          | 1 ->
              let a = Hash_index.remove h key and b = Hashtbl.mem model key in
              Hashtbl.remove model key;
              a = b
          | _ -> Hash_index.find h key = Hashtbl.find_opt model key)
        ops
      && Hash_index.length h = Hashtbl.length model)

(* --- wal / recovery ---------------------------------------------------------- *)

let test_wal_replay () =
  let s = Store.create ~site:3 [ 0; 1; 2 ] in
  let wal = Wal.create () in
  Store.apply s 0 ~writer:1 () (* before attach: lives in the checkpoint *);
  Wal.attach wal s;
  Store.apply s 1 ~writer:2 ~payload:"x" ();
  Store.set s 2 (Store.read s 1);
  checki "two records" 2 (Wal.length wal);
  let recovered = Wal.recover wal ~site:3 in
  checkb "identical contents" true (Store.contents recovered = Store.contents s);
  checki "site preserved" 3 (Store.site recovered)

let test_wal_checkpoint_truncates () =
  let s = Store.create ~site:0 [ 0 ] in
  let wal = Wal.create () in
  Wal.attach wal s;
  Store.apply s 0 ~writer:1 ();
  Wal.checkpoint wal (Store.contents s);
  checki "log truncated" 0 (Wal.length wal);
  Store.apply s 0 ~writer:2 ();
  checki "new tail" 1 (Wal.length wal);
  let recovered = Wal.recover wal ~site:0 in
  checkb "checkpoint + tail = live" true (Store.contents recovered = Store.contents s)

let test_wal_reattach () =
  (* The restart drill: recover a store from the log, hook the log back on
     with [reattach] (no checkpoint), and keep writing. The log must keep the
     original checkpoint — so a second recovery still replays everything —
     and must capture writes made through the recovered store. *)
  let s = Store.create ~site:0 [ 0; 1 ] in
  let wal = Wal.create () in
  Wal.attach wal s;
  Store.apply s 0 ~writer:1 ();
  Store.apply s 1 ~writer:2 ~payload:"a" ();
  let recovered = Wal.recover wal ~site:0 in
  checkb "recover reproduces contents" true (Store.contents recovered = Store.contents s);
  let snap_before = Wal.snapshot wal in
  Wal.reattach wal recovered;
  checki "reattach keeps the log" 2 (Wal.length wal);
  checkb "reattach keeps the snapshot" true (Wal.snapshot wal = snap_before);
  Store.apply recovered 0 ~writer:3 ();
  checki "logging continues" 3 (Wal.length wal);
  let again = Wal.recover wal ~site:0 in
  checkb "second recovery sees post-restart writes" true
    (Store.contents again = Store.contents recovered);
  checkb "post-restart write present" true ((Store.read again 0).Value.writer = 3)

let prop_wal_recovery_roundtrip =
  QCheck2.Test.make ~name:"recovery reproduces the store after random writes" ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) (pair (int_range 0 9) (int_range 1 50)))
    (fun writes ->
      let s = Store.create ~site:1 (List.init 10 Fun.id) in
      let wal = Wal.create () in
      Wal.attach wal s;
      List.iter (fun (item, writer) -> Store.apply s item ~writer ()) writes;
      Store.contents (Wal.recover wal ~site:1) = Store.contents s)

(* A whole protocol run is recoverable: attach a log to every site before the
   workload, crash afterwards, and rebuild every store from its log. *)
let test_wal_recovers_protocol_run () =
  let params =
    {
      Repdb_workload.Params.default with
      n_sites = 4;
      n_items = 20;
      replication_prob = 0.5;
      backedge_prob = 0.4;
      threads_per_site = 2;
      txns_per_thread = 20;
    }
  in
  let c = Repdb.Cluster.create params in
  let wals = Array.map (fun store ->
      let wal = Wal.create () in
      Wal.attach wal store;
      wal)
      c.stores
  in
  ignore (Repdb.Driver.run_on c (module Repdb.Backedge_proto));
  Array.iteri
    (fun site wal ->
      let recovered = Wal.recover wal ~site in
      checkb
        (Printf.sprintf "site %d recovered exactly" site)
        true
        (Store.contents recovered = Store.contents c.stores.(site)))
    wals

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "apply versions" `Quick test_apply_versions;
          Alcotest.test_case "payload" `Quick test_payload;
          Alcotest.test_case "set ships value" `Quick test_set_ships_value;
          Alcotest.test_case "not placed" `Quick test_not_placed_errors;
          Alcotest.test_case "iter" `Quick test_iter;
          Alcotest.test_case "value semantics" `Quick test_value_semantics;
        ] );
      ( "hash index",
        [
          Alcotest.test_case "basics" `Quick test_index_basics;
          Alcotest.test_case "growth" `Quick test_index_growth;
          Alcotest.test_case "tombstone churn" `Quick test_index_tombstone_churn;
          QCheck_alcotest.to_alcotest prop_index_matches_hashtbl;
        ] );
      ( "wal",
        [
          Alcotest.test_case "replay" `Quick test_wal_replay;
          Alcotest.test_case "checkpoint truncates" `Quick test_wal_checkpoint_truncates;
          Alcotest.test_case "reattach continues the log" `Quick test_wal_reattach;
          QCheck_alcotest.to_alcotest prop_wal_recovery_roundtrip;
          Alcotest.test_case "recovers a protocol run" `Quick test_wal_recovers_protocol_run;
        ] );
    ]

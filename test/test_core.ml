(* Unit tests for the core support modules: metrics, convergence, exec,
   routing, cluster accounting and the experiment plumbing. *)

module Sim = Repdb_sim.Sim
module Store = Repdb_store.Store
module Txn = Repdb_txn.Txn
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Tree = Repdb_graph.Tree
module Cluster = Repdb.Cluster
module Metrics = Repdb.Metrics
module Exec = Repdb.Exec

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* --- metrics ------------------------------------------------------------- *)

let test_metrics_counts () =
  let m = Metrics.create () in
  Metrics.commit m ~site:0 ~response:10.0;
  Metrics.commit m ~site:0 ~response:20.0;
  Metrics.abort m ~site:0 Txn.Lock_timeout;
  Metrics.abort m ~site:0 Txn.Lock_timeout;
  Metrics.abort m ~site:0 Txn.Deadlock;
  Metrics.propagation m ~delay:5.0;
  Metrics.client_done m ~time:1000.0;
  let s = Metrics.summarize m ~n_sites:2 ~messages:7 in
  checki "commits" 2 s.commits;
  checki "aborts" 3 s.aborts;
  checkf "abort rate" 60.0 s.abort_rate;
  checkf "avg response" 15.0 s.avg_response;
  checkf "avg propagation" 5.0 s.avg_propagation;
  checkf "throughput" 2.0 s.throughput;
  checkf "per site" 1.0 s.throughput_per_site;
  checki "messages" 7 s.messages;
  Alcotest.(check (list (pair Alcotest.reject int)))
    "reason counts" []
    (List.map (fun (_, n) -> ((), n)) s.aborts_by_reason |> List.filter (fun _ -> false));
  checki "two reasons" 2 (List.length s.aborts_by_reason);
  checkb "lock-timeout counted twice" true (List.mem (Txn.Lock_timeout, 2) s.aborts_by_reason)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.commit m ~site:0 ~response:(float_of_int i)
  done;
  Metrics.client_done m ~time:100.0;
  let s = Metrics.summarize m ~n_sites:1 ~messages:0 in
  (* Nearest-rank: of 1..100, pXX is exactly XX. *)
  checkf "p50" 50.0 s.p50_response;
  checkf "p95" 95.0 s.p95_response;
  checkf "p99" 99.0 s.p99_response

let test_metrics_percentile_nearest_rank () =
  (* The regression the truncating index had: p50 of an even-sized sample
     must be the lower middle element, not the upper. *)
  checkf "p50 of [1;2;3;4]" 2.0 (Metrics.percentile [| 1.0; 2.0; 3.0; 4.0 |] 0.5);
  checkf "p25 of [1;2;3;4]" 1.0 (Metrics.percentile [| 1.0; 2.0; 3.0; 4.0 |] 0.25);
  checkf "p100" 4.0 (Metrics.percentile [| 1.0; 2.0; 3.0; 4.0 |] 1.0);
  checkf "p0 clamps to first" 1.0 (Metrics.percentile [| 1.0; 2.0; 3.0; 4.0 |] 0.0);
  checkf "empty" 0.0 (Metrics.percentile [||] 0.5)

let test_metrics_stats_percentiles_agree () =
  (* The two percentile implementations must give the same answer when the
     histogram buckets resolve every sample exactly. *)
  let samples = Array.init 40 (fun i -> float_of_int (1 + (i mod 10))) in
  let stats = Repdb_obs.Stats.create ~n_sites:1 () in
  let buckets = Array.init 10 (fun i -> float_of_int (i + 1)) in
  let h = Repdb_obs.Stats.histogram ~buckets stats "x" in
  Array.iter (fun v -> Repdb_obs.Stats.observe h ~site:0 v) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      checkf
        (Printf.sprintf "q=%g agrees" q)
        (Metrics.percentile sorted q)
        (Repdb_obs.Stats.percentile h ~site:0 q))
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ]

let test_metrics_empty () =
  let m = Metrics.create () in
  let s = Metrics.summarize m ~n_sites:3 ~messages:0 in
  checkf "no throughput" 0.0 s.throughput;
  checkf "no response" 0.0 s.avg_response;
  checkf "no abort rate" 0.0 s.abort_rate;
  (* Zero commits must not produce NaN anywhere in the summary. *)
  checkb "p50 finite" false (Float.is_nan s.p50_response);
  checkb "p95 finite" false (Float.is_nan s.p95_response);
  checkb "p99 finite" false (Float.is_nan s.p99_response);
  checkb "avg prop finite" false (Float.is_nan s.avg_propagation)

let test_metrics_single_sample () =
  let m = Metrics.create () in
  Metrics.commit m ~site:0 ~response:42.0;
  Metrics.client_done m ~time:100.0;
  let s = Metrics.summarize m ~n_sites:1 ~messages:0 in
  checkf "p50 of one" 42.0 s.p50_response;
  checkf "p95 of one" 42.0 s.p95_response;
  checkf "p99 of one" 42.0 s.p99_response;
  checkf "avg of one" 42.0 s.avg_response

let test_metrics_aborts_only () =
  let m = Metrics.create () in
  Metrics.abort m ~site:0 Txn.Deadlock;
  Metrics.abort m ~site:0 Txn.Lock_timeout;
  Metrics.client_done m ~time:50.0;
  let s = Metrics.summarize m ~n_sites:1 ~messages:0 in
  checki "no commits" 0 s.commits;
  checki "two aborts" 2 s.aborts;
  checkf "abort rate is total" 100.0 s.abort_rate;
  checkb "avg response finite" false (Float.is_nan s.avg_response);
  checkb "p99 finite" false (Float.is_nan s.p99_response)

let test_metrics_per_site () =
  let m = Metrics.create ~n_sites:3 () in
  Metrics.commit m ~site:0 ~response:10.0;
  Metrics.commit m ~site:2 ~response:30.0;
  Metrics.abort m ~site:2 Txn.Deadlock;
  Metrics.client_done m ~time:100.0;
  let s = Metrics.summarize m ~n_sites:3 ~messages:0 in
  checki "three rows" 3 (List.length s.per_site);
  let row site = List.nth s.per_site site in
  checki "site 0 commits" 1 (row 0).Metrics.s_commits;
  checki "site 1 commits" 0 (row 1).Metrics.s_commits;
  checki "site 2 commits" 1 (row 2).Metrics.s_commits;
  checki "site 2 aborts" 1 (row 2).Metrics.s_aborts;
  checkf "site 0 avg" 10.0 (row 0).Metrics.s_avg_response;
  checkf "site 1 avg" 0.0 (row 1).Metrics.s_avg_response

(* --- convergence --------------------------------------------------------- *)

let placement =
  Placement.make ~n_sites:2 ~n_items:2 ~primary:[| 0; 1 |] ~replicas:[| [ 1 ]; [] |]

let small_params = { Params.default with n_sites = 2; n_items = 2 }

let test_convergence_detects_divergence () =
  let c = Cluster.create_with small_params placement in
  checki "initially converged" 0 (List.length (Repdb.Convergence.check c));
  (* Write the primary copy only. *)
  Store.apply c.stores.(0) 0 ~writer:9 ();
  (match Repdb.Convergence.check c with
  | [ d ] ->
      checki "item" 0 d.Repdb.Convergence.item;
      checki "site" 1 d.Repdb.Convergence.site
  | l -> Alcotest.failf "expected one divergence, got %d" (List.length l));
  (* Apply the same write at the replica: converged again. *)
  Store.apply c.stores.(1) 0 ~writer:9 ();
  checki "converged after apply" 0 (List.length (Repdb.Convergence.check c))

(* --- exec ----------------------------------------------------------------- *)

let test_exec_deferred_writes () =
  let c = Cluster.create_with small_params placement in
  Sim.spawn c.sim (fun () ->
      let gid = Cluster.fresh_gid c and attempt = Cluster.fresh_attempt c in
      (match Exec.run_ops c ~gid ~attempt ~site:0 [ Txn.Write 0 ] with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "uncontended acquire failed");
      (* Deferred: nothing in the store until commit. *)
      checki "not yet applied" 0 (Store.read c.stores.(0) 0).Repdb_store.Value.version;
      Exec.apply_writes c ~gid ~site:0 [ 0 ];
      Exec.release c ~attempt ~site:0;
      checki "applied at commit" 1 (Store.read c.stores.(0) 0).Repdb_store.Value.version);
  Sim.run c.sim;
  checki "locks drained" 0 (Repdb_lock.Lock_mgr.locks_held c.locks.(0))

let test_exec_abort_discards () =
  let c = Cluster.create_with { small_params with Params.record_history = true } placement in
  Sim.spawn c.sim (fun () ->
      let gid = Cluster.fresh_gid c and attempt = Cluster.fresh_attempt c in
      (match Exec.run_ops c ~gid ~attempt ~site:0 [ Txn.Read 0; Txn.Write 0 ] with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "acquire failed");
      Exec.abort_local c ~attempt ~site:0);
  Sim.run c.sim;
  checki "no committed accesses" 0 (List.length (Repdb_txn.History.committed_gids c.history));
  checki "locks drained" 0 (Repdb_lock.Lock_mgr.locks_held c.locks.(0))

let test_exec_apply_secondary_retries () =
  (* A conflicting holder times out; the secondary must retry and win. *)
  let c = Cluster.create_with small_params placement in
  let done_at = ref 0.0 in
  Sim.spawn c.sim (fun () ->
      (* Foreign lock held for 120 ms, then released. *)
      let attempt = Cluster.fresh_attempt c in
      ignore (Repdb_lock.Lock_mgr.acquire c.locks.(1) ~owner:attempt 0 Repdb_lock.Lock_mgr.Exclusive);
      Sim.delay 120.0;
      Repdb_lock.Lock_mgr.release_all c.locks.(1) ~owner:attempt);
  Sim.spawn c.sim (fun () ->
      Exec.apply_secondary c ~gid:77 ~site:1 [ 0 ] ~finally:(fun () -> done_at := Sim.now c.sim));
  Sim.run c.sim;
  checkb "eventually applied" true (!done_at >= 120.0);
  checki "write applied" 1 (Store.read c.stores.(1) 0).Repdb_store.Value.version

(* --- routing -------------------------------------------------------------- *)

let test_routing_subtree_maps () =
  (* Chain 0 -> 1 -> 2; item 0 replicated at 2 only. *)
  let placement =
    Placement.make ~n_sites:3 ~n_items:1 ~primary:[| 0 |] ~replicas:[| [ 2 ] |]
  in
  let tr = Tree.chain_of_order [| 0; 1; 2 |] in
  let maps = Repdb.Routing.subtree_replicas placement tr in
  checkb "root subtree sees it" true (Repdb.Routing.in_subtree maps ~site:0 0);
  checkb "middle subtree sees it" true (Repdb.Routing.in_subtree maps ~site:1 0);
  checkb "leaf holds it" true (Repdb.Routing.in_subtree maps ~site:2 0);
  Alcotest.(check (list int)) "middle is relevant from root" [ 1 ]
    (Repdb.Routing.relevant_children maps tr 0 [ 0 ]);
  Alcotest.(check (list int)) "local replicas at 1" []
    (Repdb.Routing.local_replicas placement 1 [ 0 ]);
  Alcotest.(check (list int)) "local replicas at 2" [ 0 ]
    (Repdb.Routing.local_replicas placement 2 [ 0 ])

(* --- cluster accounting ---------------------------------------------------- *)

let test_cluster_quiescence_accounting () =
  let c = Cluster.create_with small_params placement in
  checkb "quiescent at start" true (Cluster.quiescent c);
  Cluster.client_started c;
  checkb "busy with client" false (Cluster.quiescent c);
  Cluster.inc_outstanding c;
  Cluster.client_finished c;
  checkb "still outstanding" false (Cluster.quiescent c);
  Cluster.dec_outstanding c;
  checkb "quiescent again" true (Cluster.quiescent c);
  checki "gids monotone" 1 (Cluster.fresh_gid c);
  checki "gids monotone 2" 2 (Cluster.fresh_gid c);
  checki "attempts separate" 1 (Cluster.fresh_attempt c)

let test_cluster_deadlock_policy_param () =
  let params = { small_params with Params.deadlock_policy = `Detect } in
  let c = Cluster.create_with params placement in
  (* Two locally deadlocked owners resolve by detection (no 50 ms wait).
     Site 1 holds both items (replica of 0, primary of 1), so both are valid
     lock targets under the dense placed-item lock tables. *)
  let resolved_at = ref infinity in
  Sim.spawn c.sim (fun () ->
      ignore (Repdb_lock.Lock_mgr.acquire c.locks.(1) ~owner:1 0 Repdb_lock.Lock_mgr.Exclusive);
      Sim.delay 2.0;
      ignore (Repdb_lock.Lock_mgr.acquire c.locks.(1) ~owner:1 1 Repdb_lock.Lock_mgr.Exclusive);
      resolved_at := Sim.now c.sim);
  Sim.spawn c.sim (fun () ->
      Sim.delay 1.0;
      ignore (Repdb_lock.Lock_mgr.acquire c.locks.(1) ~owner:2 1 Repdb_lock.Lock_mgr.Exclusive);
      ignore (Repdb_lock.Lock_mgr.acquire c.locks.(1) ~owner:2 0 Repdb_lock.Lock_mgr.Exclusive));
  Sim.run c.sim;
  checkb "detection beats the 50ms timeout" true (!resolved_at < 50.0)

let test_cluster_straggler () =
  (* The same burst takes straggler_factor times longer on the slow machine. *)
  let params =
    { small_params with Params.n_machines = 2; straggler_machine = 0; straggler_factor = 4.0 }
  in
  let c = Cluster.create_with params placement in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  Sim.spawn c.sim (fun () ->
      Cluster.use_cpu c 0 10.0;
      t0 := Sim.now c.sim);
  Sim.spawn c.sim (fun () ->
      Cluster.use_cpu c 1 10.0;
      t1 := Sim.now c.sim);
  Sim.run c.sim;
  checkf "slow machine" 40.0 !t0;
  checkf "normal machine" 10.0 !t1

(* --- experiment plumbing ---------------------------------------------------- *)

let tiny = { Params.default with n_sites = 3; n_items = 12; threads_per_site = 1; txns_per_thread = 5 }

let test_experiment_figure_structure () =
  let fig = Repdb.Experiment.fig2a ~base:tiny ~steps:2 () in
  checki "three points" 3 (List.length fig.points);
  List.iter
    (fun (pt : Repdb.Experiment.point) ->
      checki "two protocols per point" 2 (List.length pt.reports))
    fig.points;
  let csv = Repdb.Experiment.to_csv fig in
  checki "csv lines" (1 + (3 * 2)) (List.length (String.split_on_char '\n' (String.trim csv)))

let test_experiment_tree_routing_runs () =
  let fig = Repdb.Experiment.ablation_tree_routing ~base:tiny ~steps:1 () in
  checki "two points" 2 (List.length fig.points)

let () =
  Alcotest.run "core"
    [
      ( "metrics",
        [
          Alcotest.test_case "counts" `Quick test_metrics_counts;
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
          Alcotest.test_case "percentile nearest rank" `Quick test_metrics_percentile_nearest_rank;
          Alcotest.test_case "percentile agrees with stats" `Quick
            test_metrics_stats_percentiles_agree;
          Alcotest.test_case "empty" `Quick test_metrics_empty;
          Alcotest.test_case "single sample" `Quick test_metrics_single_sample;
          Alcotest.test_case "aborts only" `Quick test_metrics_aborts_only;
          Alcotest.test_case "per site" `Quick test_metrics_per_site;
        ] );
      ( "convergence",
        [ Alcotest.test_case "detects divergence" `Quick test_convergence_detects_divergence ] );
      ( "exec",
        [
          Alcotest.test_case "deferred writes" `Quick test_exec_deferred_writes;
          Alcotest.test_case "abort discards" `Quick test_exec_abort_discards;
          Alcotest.test_case "secondary retries" `Quick test_exec_apply_secondary_retries;
        ] );
      ( "routing", [ Alcotest.test_case "subtree maps" `Quick test_routing_subtree_maps ] );
      ( "cluster",
        [
          Alcotest.test_case "quiescence accounting" `Quick test_cluster_quiescence_accounting;
          Alcotest.test_case "deadlock policy param" `Quick test_cluster_deadlock_policy_param;
          Alcotest.test_case "straggler machine" `Quick test_cluster_straggler;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "figure structure" `Quick test_experiment_figure_structure;
          Alcotest.test_case "tree-routing ablation" `Quick test_experiment_tree_routing_runs;
        ] );
    ]

(* Tests for the observability subsystem (lib/obs): ring-buffer trace
   collector, per-site stats registries, exporters, and — the load-bearing
   part — protocol invariants asserted over real traces:

   - DAG(WT) commits secondaries in FIFO receive order at every site;
   - PSL sends no propagation traffic at all (replicas stay virtual);
   - BackEdge participants hold their staged locks across the primary
     commit (stage <= primary commit <= decide, per gid and site);
   - DAG(T) epochs advance monotonically at every site. *)

module Trace = Repdb_obs.Trace
module Event = Repdb_obs.Event
module Stats = Repdb_obs.Stats
module Export = Repdb_obs.Export
module Params = Repdb_workload.Params
module Driver = Repdb.Driver

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* --- trace ring buffer ---------------------------------------------------- *)

(* A deterministic fake clock: 0.0, 1.0, 2.0, ... *)
let ticking_clock () =
  let n = ref (-1) in
  fun () ->
    incr n;
    float_of_int !n

let test_ring_overflow () =
  let tr = Trace.create ~capacity:4 ~clock:(ticking_clock ()) () in
  for gid = 0 to 9 do
    Trace.record tr (Event.Txn_begin { gid; site = 0 })
  done;
  checki "length capped" 4 (Trace.length tr);
  checki "dropped counted" 6 (Trace.dropped tr);
  let gids =
    List.map
      (fun (e : Event.t) ->
        match e.kind with Event.Txn_begin { gid; _ } -> gid | _ -> -1)
      (Trace.events tr)
  in
  Alcotest.(check (list int)) "last four survive in order" [ 6; 7; 8; 9 ] gids;
  let times = List.map (fun (e : Event.t) -> e.time) (Trace.events tr) in
  Alcotest.(check (list (float 1e-9))) "clock stamps" [ 6.0; 7.0; 8.0; 9.0 ] times

let test_disabled_noop () =
  let tr = Trace.disabled in
  checkb "off" false (Trace.on tr);
  Trace.record tr (Event.Txn_begin { gid = 1; site = 0 });
  checki "no events" 0 (Trace.length tr);
  checki "nothing dropped" 0 (Trace.dropped tr)

(* --- stats registries ------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create ~n_sites:3 () in
  let c = Stats.counter s "txn.commit" in
  Stats.incr c ~site:0;
  Stats.incr c ~site:0;
  Stats.incr c ~site:2;
  Stats.add c ~site:1 5;
  checki "site 0" 2 (Stats.counter_value c ~site:0);
  checki "site 1" 5 (Stats.counter_value c ~site:1);
  checki "site 2" 1 (Stats.counter_value c ~site:2);
  checki "total" 8 (Stats.counter_total c);
  (* find-or-register returns the same handle *)
  let c' = Stats.counter s "txn.commit" in
  Stats.incr c' ~site:0;
  checki "shared handle" 3 (Stats.counter_value c ~site:0)

let test_stats_histogram () =
  let s = Stats.create ~n_sites:2 () in
  let h = Stats.histogram s "response" in
  Stats.observe h ~site:0 3.0;
  Stats.observe h ~site:0 7.0;
  Stats.observe h ~site:1 900.0;
  checki "count site 0" 2 (Stats.histogram_count h ~site:0);
  checkf "mean site 0" 5.0 (Stats.histogram_mean h ~site:0);
  (* Percentiles are bucket upper bounds: 3.0 lands in (2,5], 7.0 in (5,10]. *)
  checkf "p50 site 0" 5.0 (Stats.percentile h ~site:0 0.5);
  checkf "p99 site 0" 10.0 (Stats.percentile h ~site:0 0.99);
  checkf "aggregate p99" 1000.0 (Stats.percentile_total h 0.99);
  checkf "empty percentile" 0.0 (Stats.percentile (Stats.histogram s "other") ~site:0 0.5)

let test_stats_histogram_overflow_max () =
  let s = Stats.create ~n_sites:2 () in
  let h = Stats.histogram s "slow" in
  (* Observations beyond the largest finite bound (30 s) land in the overflow
     bucket; percentiles there must report the observed maximum, not clamp. *)
  Stats.observe h ~site:0 45_000.0;
  Stats.observe h ~site:0 90_000.0;
  Stats.observe h ~site:1 120_000.0;
  checkf "max site 0" 90_000.0 (Stats.histogram_max h ~site:0);
  checkf "max aggregate" 120_000.0 (Stats.histogram_max h ~site:(-1));
  checkf "p99 reports observed max" 90_000.0 (Stats.percentile h ~site:0 0.99);
  checkf "aggregate p99 reports observed max" 120_000.0 (Stats.percentile_total h 0.99);
  (* Mixed: the median still resolves to a finite bucket bound. *)
  Stats.observe h ~site:0 1.0;
  Stats.observe h ~site:0 1.0;
  Stats.observe h ~site:0 1.0;
  checkf "p50 stays in finite buckets" 1.0 (Stats.percentile h ~site:0 0.5);
  checkf "p99 still the max" 90_000.0 (Stats.percentile h ~site:0 0.99)

let test_stats_histogram_bucket_mismatch () =
  let s = Stats.create ~n_sites:1 () in
  let h = Stats.histogram ~buckets:[| 1.0; 2.0 |] s "lat" in
  (* Same name, no buckets or identical buckets: same handle. *)
  Stats.observe h ~site:0 1.5;
  Stats.observe (Stats.histogram s "lat") ~site:0 1.5;
  Stats.observe (Stats.histogram ~buckets:[| 1.0; 2.0 |] s "lat") ~site:0 1.5;
  checki "one histogram" 3 (Stats.histogram_count h ~site:0);
  (* Different buckets for an existing name must raise, not silently ignore. *)
  Alcotest.check_raises "bucket mismatch raises"
    (Invalid_argument "Stats.histogram: \"lat\" already registered with different buckets")
    (fun () -> ignore (Stats.histogram ~buckets:[| 5.0; 10.0 |] s "lat"))

(* --- exporters ------------------------------------------------------------- *)

(* Minimal JSON well-formedness check: brackets/braces balance outside
   strings, and the text is non-empty. Catches truncation and bad escaping
   without needing a JSON parser. *)
let json_balanced s =
  let depth = ref 0 and in_str = ref false and escaped = ref false and ok = ref true in
  String.iter
    (fun ch ->
      if !escaped then escaped := false
      else if !in_str then begin
        if ch = '\\' then escaped := true else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str && String.length s > 0

let sample_trace () =
  let tr = Trace.create ~capacity:64 ~clock:(ticking_clock ()) () in
  Trace.record tr (Event.Txn_begin { gid = 7; site = 1 });
  Trace.record tr
    (Event.Lock_wait { site = 1; owner = 7; item = 3; mode = Event.Exclusive });
  Trace.record tr (Event.Msg_send { src = 1; dst = 2; kind = "secondary"; size = 40 });
  Trace.record tr (Event.Queue_depth { site = 2; queue = "fifo"; depth = 3 });
  Trace.record tr (Event.Txn_abort { gid = 7; site = 1; reason = "deadlock \"x\"" });
  tr

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_export_jsonl () =
  let tr = sample_trace () in
  let out = Export.jsonl_to_string tr in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  checki "meta line plus one line per event" (Trace.length tr + 1) (List.length lines);
  let meta = List.hd lines in
  checkb "leads with the metadata record" true (contains ~affix:"\"meta\"" meta);
  checkb "meta carries the ring capacity" true (contains ~affix:"\"capacity\":64" meta);
  checkb "meta reports a complete trace" true (contains ~affix:"\"dropped\":0" meta);
  List.iter
    (fun line ->
      checkb "object per line" true
        (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}');
      checkb "line is balanced json" true (json_balanced line))
    lines;
  checkb "label present" true (List.exists (contains ~affix:"\"lock_wait\"") lines);
  checkb "escaped quote survives" true (List.exists (contains ~affix:"\\\"x\\\"") lines)

let test_export_chrome () =
  let tr = sample_trace () in
  let out = Export.chrome_to_string ~n_sites:3 tr in
  checkb "balanced json" true (json_balanced out);
  checkb "trace events array" true (contains ~affix:"\"traceEvents\"" out);
  checkb "site process metadata" true (contains ~affix:"\"process_name\"" out);
  checkb "otherData meta" true (contains ~affix:"\"otherData\":{\"capacity\":64,\"dropped\":0}" out);
  checkb "txn async begin" true (contains ~affix:"\"ph\":\"b\"" out);
  checkb "txn async end" true (contains ~affix:"\"ph\":\"e\"" out);
  checkb "queue counter" true (contains ~affix:"\"ph\":\"C\"" out);
  (* ts is microseconds: event at t=2.0ms must appear as 2000. *)
  checkb "microsecond timestamps" true (contains ~affix:"\"ts\":2000" out)

(* A trace that wrapped must say so in its metadata record: a consumer that
   misses the dropped count would read a sliding window as a full history. *)
let test_export_meta_wrapped () =
  let tr = Trace.create ~capacity:4 ~clock:(ticking_clock ()) () in
  for gid = 0 to 9 do
    Trace.record tr (Event.Txn_begin { gid; site = 0 })
  done;
  let meta = [ ("protocol", `String "psl"); ("seed", `Int 42) ] in
  let out = Export.jsonl_to_string ~meta tr in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  checki "meta plus surviving events" (Trace.length tr + 1) (List.length lines);
  let first = List.hd lines in
  checkb "capacity" true (contains ~affix:"\"capacity\":4" first);
  checkb "dropped count of the wrapped ring" true (contains ~affix:"\"dropped\":6" first);
  checkb "caller metadata: protocol" true (contains ~affix:"\"protocol\":\"psl\"" first);
  checkb "caller metadata: seed" true (contains ~affix:"\"seed\":42" first);
  let chrome = Export.chrome_to_string ~n_sites:1 ~meta tr in
  checkb "chrome balanced" true (json_balanced chrome);
  checkb "chrome mirrors the record under otherData" true
    (contains ~affix:"\"otherData\":{\"capacity\":4,\"dropped\":6,\"protocol\":\"psl\",\"seed\":42}"
       chrome)

(* Span phases render as complete ("X") duration slices with microsecond
   ts/dur on the origin site's track. *)
let test_export_chrome_span_slice () =
  let tr = Trace.create ~capacity:8 ~clock:(ticking_clock ()) () in
  Trace.record tr (Event.Span_phase { gid = 3; site = 1; phase = "lock"; t0 = 2.0; dur = 1.5 });
  let out = Export.chrome_to_string ~n_sites:2 tr in
  checkb "balanced json" true (json_balanced out);
  checkb "complete slice" true
    (contains
       ~affix:
         "{\"ph\":\"X\",\"cat\":\"span\",\"pid\":1,\"tid\":0,\"ts\":2000.000,\"dur\":1500.000,\"name\":\"lock\",\"args\":{\"gid\":3}}"
       out)

(* The escaper is shared by every JSON emitter in lib/obs; pin its output on
   each class of character so a regression shows up as an exact-string diff. *)
let test_escape_pinned () =
  let checks = Alcotest.(check string) in
  checks "plain text untouched" "abc xyz" (Export.escape "abc xyz");
  checks "quote" "\\\"" (Export.escape "\"");
  checks "backslash" "\\\\" (Export.escape "\\");
  checks "newline" "\\n" (Export.escape "\n");
  checks "carriage return" "\\r" (Export.escape "\r");
  checks "tab" "\\t" (Export.escape "\t");
  checks "control chars get \\u escapes" "\\u0000\\u0001\\u001f" (Export.escape "\x00\x01\x1f");
  checks "0x20 and above pass through" " ~" (Export.escape " ~");
  checks "mixed" "say \\\"hi\\\"\\nbell\\u0007" (Export.escape "say \"hi\"\nbell\x07")

(* --- stats table rendering -------------------------------------------------- *)

(* Expect-style pin of the unified counter+histogram table layout: adaptive
   column widths, site rows then an "all" aggregate, histograms expanded to
   count/avg/p50/p95/p99 columns. *)
let test_stats_table_layout () =
  let s = Stats.create ~n_sites:2 () in
  let c = Stats.counter s "txn.commit" in
  Stats.incr c ~site:0;
  Stats.incr c ~site:0;
  let h = Stats.histogram s "response" in
  Stats.observe h ~site:0 3.0;
  Stats.observe h ~site:0 7.0;
  Stats.observe h ~site:1 900.0;
  let expected =
    String.concat "\n"
      [
        "site  txn.commit  response#  response.avg  response.p50  response.p95  response.p99";
        "0              2          2           5.0           5.0          10.0          10.0";
        "1              0          1         900.0        1000.0        1000.0        1000.0";
        "all            2          3         303.3          10.0        1000.0        1000.0";
      ]
  in
  Alcotest.(check string) "pinned layout" expected (Fmt.str "%a" Stats.pp_table s)

(* --- trace-backed protocol invariants -------------------------------------- *)

let quick_params =
  { Params.default with txns_per_thread = 10; backedge_prob = 0.0 }

let find_protocol name =
  match Repdb.Registry.find name with
  | Some p -> p
  | None -> Alcotest.failf "protocol %s not registered" name

let run_traced ?(params = quick_params) name =
  let r = Driver.run ~trace:true params (find_protocol name) in
  Alcotest.(check bool) "trace collected" true (Trace.on r.trace);
  checki "no events dropped" 0 (Trace.dropped r.trace);
  r

(* DAG(WT): at every site the secondary commit order must equal the receive
   (FIFO dequeue) order restricted to subtransactions that write locally —
   the ordering guarantee Section 3.1's correctness argument rests on. *)
let test_dagwt_fifo_commit_order () =
  let r = run_traced "dag-wt" in
  let m = r.params.n_sites in
  let recvs = Array.make m [] and commits = Array.make m [] in
  Trace.iter r.trace (fun e ->
      match e.kind with
      | Event.Secondary_recv { gid; site } -> recvs.(site) <- gid :: recvs.(site)
      | Event.Secondary_commit { gid; site } -> commits.(site) <- gid :: commits.(site)
      | _ -> ());
  let checked = ref 0 in
  for site = 0 to m - 1 do
    let recv_seq = List.rev recvs.(site) and commit_seq = List.rev commits.(site) in
    let committed = List.fold_left (fun s g -> g :: s) [] commit_seq in
    let expected = List.filter (fun g -> List.mem g committed) recv_seq in
    Alcotest.(check (list int))
      (Printf.sprintf "site %d commits in receive order" site)
      expected commit_seq;
    checked := !checked + List.length commit_seq
  done;
  checkb "assertion is not vacuous" true (!checked > 10)

(* PSL keeps replicas virtual: the trace must contain no propagation events
   of any kind, and every message on the wire is read-lock traffic. *)
let test_psl_no_propagation () =
  let r = run_traced "psl" in
  let sends = ref 0 in
  Trace.iter r.trace (fun e ->
      match e.kind with
      | Event.Secondary_recv _ | Event.Secondary_commit _ | Event.Prop_apply _
      | Event.Dummy_emit _ ->
          Alcotest.failf "PSL emitted a propagation event: %s" (Fmt.str "%a" Event.pp e)
      | Event.Msg_send { kind; _ } ->
          incr sends;
          checkb ("message kind " ^ kind) true
            (List.mem kind [ "read-request"; "read-reply"; "release" ])
      | _ -> ());
  checkb "remote reads happened" true (!sends > 0)

(* BackEdge: a participant that staged a backedge subtransaction holds its
   write locks from the stage until the origin's decision arrives — in
   particular across the primary commit (Section 4's eager leg). The trace
   must show stage <= primary commit <= decide for every committed gid. *)
let test_backedge_eager_lock_span () =
  let params = { Params.default with txns_per_thread = 20 } in
  let r = run_traced ~params "backedge" in
  let stage = Hashtbl.create 64 and commit = Hashtbl.create 64 in
  let checked = ref 0 in
  Trace.iter r.trace (fun e ->
      match e.kind with
      | Event.Backedge_stage { gid; site } ->
          if not (Hashtbl.mem stage (gid, site)) then Hashtbl.add stage (gid, site) e.time
      | Event.Txn_commit { gid; _ } -> Hashtbl.replace commit gid e.time
      | Event.Backedge_decide { gid; site; commit = true } -> begin
          match (Hashtbl.find_opt stage (gid, site), Hashtbl.find_opt commit gid) with
          | Some t_stage, Some t_commit ->
              incr checked;
              checkb
                (Printf.sprintf "gid %d site %d: staged before primary commit" gid site)
                true (t_stage <= t_commit);
              checkb
                (Printf.sprintf "gid %d site %d: decide after primary commit" gid site)
                true (t_commit <= e.time)
          | Some _, None ->
              Alcotest.failf "gid %d: commit-decide without a primary commit event" gid
          | None, _ -> Alcotest.failf "gid %d site %d: decide without a stage" gid site
        end
      | _ -> ());
  checkb "backedge commits observed" true (!checked > 0)

(* DAG(T): each site's epoch only moves forward. *)
let test_dagt_epoch_monotone () =
  let r = run_traced "dag-t" in
  let m = r.params.n_sites in
  let last = Array.make m min_int in
  let advances = ref 0 in
  Trace.iter r.trace (fun e ->
      match e.kind with
      | Event.Epoch_advance { site; epoch } ->
          incr advances;
          checkb (Printf.sprintf "site %d epoch grows" site) true (epoch > last.(site));
          last.(site) <- epoch
      | _ -> ());
  checkb "epochs advanced" true (!advances > 0)

(* Tracing off (the default) must leave the shared disabled collector in the
   report and collect nothing. *)
let test_trace_off_by_default () =
  let r = Driver.run quick_params (find_protocol "dag-wt") in
  checkb "disabled" false (Trace.on r.trace);
  checki "empty" 0 (Trace.length r.trace);
  (* The per-site registries stay on regardless. *)
  let c = Stats.counter r.site_stats "txn.commit" in
  checki "stats still collected" r.summary.commits (Stats.counter_total c)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "histogram overflow max" `Quick test_stats_histogram_overflow_max;
          Alcotest.test_case "histogram bucket mismatch" `Quick
            test_stats_histogram_bucket_mismatch;
          Alcotest.test_case "table layout" `Quick test_stats_table_layout;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick test_export_jsonl;
          Alcotest.test_case "chrome" `Quick test_export_chrome;
          Alcotest.test_case "wrapped-trace metadata" `Quick test_export_meta_wrapped;
          Alcotest.test_case "chrome span slice" `Quick test_export_chrome_span_slice;
          Alcotest.test_case "escape pinned" `Quick test_escape_pinned;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "dag-wt fifo commits" `Quick test_dagwt_fifo_commit_order;
          Alcotest.test_case "psl no propagation" `Quick test_psl_no_propagation;
          Alcotest.test_case "backedge eager lock span" `Quick test_backedge_eager_lock_span;
          Alcotest.test_case "dag-t epoch monotone" `Quick test_dagt_epoch_monotone;
          Alcotest.test_case "trace off by default" `Quick test_trace_off_by_default;
        ] );
    ]

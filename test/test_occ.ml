(* Tests for the optimistic subsystem: the registry as single source of
   truth, Validator and Conflict_tracker units (write skew, first committer
   wins, stale reads), a QCheck property pinning the SSI dangerous-structure
   detector against brute-force multi-version serialization-graph acyclicity,
   both protocols surviving combined faults + partition + reconfiguration
   with 1SR and convergence intact (byte-identically across repeats), and
   the occ sweep's determinism and expected optimistic-vs-locking crossover. *)

module Params = Repdb_workload.Params
module Txn = Repdb_txn.Txn
module Validator = Repdb_occ.Validator
module Tracker = Repdb_occ.Conflict_tracker
module Digraph = Repdb_graph.Digraph

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- registry: single source of truth ------------------------------------- *)

let test_registry () =
  (* [entries] drives `repdb protocols`, large.exe's usage and the docs
     table; [all] must be exactly its protocol column, and the optimistic
     protocols must be registered, findable and cyclic-safe. *)
  checkb "all = map fst entries" true
    (List.map fst Repdb.Registry.entries == Repdb.Registry.all
    || List.length Repdb.Registry.entries = List.length Repdb.Registry.all
       && List.for_all2
            (fun (p, _) q -> Repdb.Protocol.name p = Repdb.Protocol.name q)
            Repdb.Registry.entries Repdb.Registry.all);
  List.iter
    (fun name ->
      checkb (name ^ " registered") true (List.mem name Repdb.Registry.names);
      (match Repdb.Registry.find name with
      | Some p -> checks (name ^ " find") name (Repdb.Protocol.name p)
      | None -> Alcotest.failf "%s not found" name);
      checkb
        (name ^ " cyclic-safe")
        true
        (List.exists (fun p -> Repdb.Protocol.name p = name) Repdb.Registry.cyclic_safe))
    [ "occ-epoch"; "ssi" ];
  List.iter
    (fun ((_ : Repdb.Protocol.t), doc) -> checkb "entry documented" true (String.length doc > 0))
    Repdb.Registry.entries;
  checki "describe covers entries"
    (List.length Repdb.Registry.entries)
    (List.length (Repdb.Registry.describe ()))

(* --- validator units ------------------------------------------------------- *)

let test_validator () =
  let v = Validator.create () in
  (* Clean pass bumps the write set's versions. *)
  (match Validator.validate v { gid = 1; reads = [ (0, 0); (1, 0) ]; writes = [ 1 ] } with
  | Some [ (1, 1) ] -> ()
  | Some w -> Alcotest.failf "unexpected writes %d" (List.length w)
  | None -> Alcotest.fail "clean txn rejected");
  checki "latest bumped" 1 (Validator.latest v 1);
  (* A read of the overwritten version is now stale. *)
  (match Validator.validate v { gid = 2; reads = [ (1, 0) ]; writes = [ 0 ] } with
  | None -> ()
  | Some _ -> Alcotest.fail "stale read validated");
  checki "rejection untouched the table" 0 (Validator.latest v 0);
  (* Re-reading the current version passes again. *)
  (match Validator.validate v { gid = 3; reads = [ (1, 1) ]; writes = [] } with
  | Some [] -> ()
  | _ -> Alcotest.fail "current read rejected");
  checki "validated" 2 (Validator.validated v);
  checki "rejected" 1 (Validator.rejected v)

(* --- conflict tracker units ------------------------------------------------ *)

let test_tracker_first_committer_wins () =
  let t = Tracker.create () in
  Tracker.begin_txn t ~gid:1 ~begin_ts:0.0;
  Tracker.begin_txn t ~gid:2 ~begin_ts:0.0;
  (match Tracker.certify t ~now:1.0 { gid = 1; begin_ts = 0.0; reads = []; writes = [ 7 ] } with
  | Tracker.Commit { writes = [ (7, 1) ]; _ } -> ()
  | _ -> Alcotest.fail "first writer should commit");
  (* Concurrent (began before gid 1 committed) overlapping write set. *)
  match Tracker.certify t ~now:2.0 { gid = 2; begin_ts = 0.0; reads = []; writes = [ 7 ] } with
  | Tracker.Abort Tracker.Ww_conflict -> ()
  | _ -> Alcotest.fail "second committer should lose"

let test_tracker_stale_read () =
  let t = Tracker.create () in
  Tracker.begin_txn t ~gid:1 ~begin_ts:0.0;
  (match Tracker.certify t ~now:1.0 { gid = 1; begin_ts = 0.0; reads = []; writes = [ 3 ] } with
  | Tracker.Commit _ -> ()
  | _ -> Alcotest.fail "writer should commit");
  (* Begins after the commit but read the old version: a lagging replica. *)
  Tracker.begin_txn t ~gid:2 ~begin_ts:2.0;
  match Tracker.certify t ~now:3.0 { gid = 2; begin_ts = 2.0; reads = [ (3, 0) ]; writes = [] } with
  | Tracker.Abort Tracker.Stale_read -> ()
  | _ -> Alcotest.fail "stale snapshot read should abort"

let test_tracker_write_skew () =
  (* The classic SI write skew: T1 reads {x,y} writes x, T2 reads {x,y}
     writes y, fully concurrent. Each is an rw-antidependency of the other —
     whichever certifies second is the pivot and must abort. *)
  let t = Tracker.create () in
  Tracker.begin_txn t ~gid:1 ~begin_ts:0.0;
  Tracker.begin_txn t ~gid:2 ~begin_ts:0.0;
  (match
     Tracker.certify t ~now:1.0
       { gid = 1; begin_ts = 0.0; reads = [ (0, 0); (1, 0) ]; writes = [ 0 ] }
   with
  | Tracker.Commit _ -> ()
  | _ -> Alcotest.fail "T1 should commit");
  (match
     Tracker.certify t ~now:2.0
       { gid = 2; begin_ts = 0.0; reads = [ (0, 0); (1, 0) ]; writes = [ 1 ] }
   with
  | Tracker.Abort Tracker.Dangerous -> ()
  | v ->
      Alcotest.failf "T2 should abort dangerous, got %s"
        (match v with
        | Tracker.Commit _ -> "commit"
        | Tracker.Abort Tracker.Stale_read -> "stale"
        | Tracker.Abort Tracker.Ww_conflict -> "ww"
        | Tracker.Abort Tracker.Dangerous -> "dangerous"));
  checki "dangerous abort counted" 1 (Tracker.dangerous_aborts t)

(* --- QCheck: certifier soundness vs brute-force MVSG acyclicity ------------

   Random small histories: transactions begin at staggered timestamps, read
   the true snapshot of an oracle (what a correct multi-version store would
   serve), and certify in commit order. Whatever subset the tracker commits
   must have an acyclic multi-version serialization graph (ww on consecutive
   installed versions, wr from writer to reader, rw from reader to the next
   version's writer) — i.e. the dangerous-structure rule may be
   conservative, but it never lets a cycle commit. *)

let mvsg_acyclic ~n_items committed =
  (* committed: (gid, reads=(item,version) list, writes=(item,version) list),
     gids 1-based; version 0 is the initial state (no writer vertex). *)
  let n = List.fold_left (fun a (g, _, _) -> max a g) 0 committed in
  let g = Digraph.create (n + 1) in
  for item = 0 to n_items - 1 do
    let writer_of = Hashtbl.create 8 and readers_of = Hashtbl.create 8 in
    List.iter
      (fun (gid, reads, writes) ->
        List.iter (fun (i, v) -> if i = item then Hashtbl.replace writer_of v gid) writes;
        List.iter
          (fun (i, v) ->
            if i = item then
              Hashtbl.replace readers_of v (gid :: Option.value ~default:[] (Hashtbl.find_opt readers_of v)))
          reads)
      committed;
    let versions = List.sort_uniq compare (Hashtbl.fold (fun v _ acc -> v :: acc) writer_of []) in
    (* ww edges between consecutive installed versions. *)
    let rec ww = function
      | a :: (b :: _ as rest) ->
          Digraph.add_edge g (Hashtbl.find writer_of a) (Hashtbl.find writer_of b);
          ww rest
      | _ -> ()
    in
    ww versions;
    (* wr and rw edges per read. *)
    Hashtbl.iter
      (fun v readers ->
        (match Hashtbl.find_opt writer_of v with
        | Some w -> List.iter (fun r -> if r <> w then Digraph.add_edge g w r) readers
        | None -> ());
        match List.find_opt (fun v' -> v' > v) versions with
        | Some v' ->
            let w' = Hashtbl.find writer_of v' in
            List.iter (fun r -> if r <> w' then Digraph.add_edge g r w') readers
        | None -> ())
      readers_of
  done;
  Digraph.find_cycle g = None

let history_gen =
  (* Per txn: (begin lag, read mask, write mask) over 3 items, 2..6 txns. *)
  QCheck.Gen.(
    list_size (int_range 2 6) (triple (int_range 0 3) (int_range 0 7) (int_range 0 7)))

let test_certifier_sound =
  QCheck.Test.make ~count:500 ~name:"certified subset has acyclic MVSG"
    (QCheck.make history_gen) (fun txns ->
      let n_items = 3 in
      let t = Tracker.create () in
      (* Oracle: per item, committed (version, commit_ts) newest last. *)
      let oracle = Array.make n_items [ (0, neg_infinity) ] in
      let snapshot_read item ts =
        let rec last acc = function
          | (v, cts) :: rest when cts <= ts -> last (Some v) rest
          | _ -> acc
        in
        match last None oracle.(item) with Some v -> v | None -> 0
      in
      let committed = ref [] in
      List.iteri
        (fun i (lag, rmask, wmask) ->
          let gid = i + 1 in
          let now = float_of_int (i + 1) in
          let begin_ts = Float.max 0.0 (now -. 0.5 -. float_of_int lag) in
          Tracker.begin_txn t ~gid ~begin_ts;
          let items mask = List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2 ] in
          let reads = List.map (fun i -> (i, snapshot_read i begin_ts)) (items rmask) in
          let writes = items wmask in
          match Tracker.certify t ~now { gid; begin_ts; reads; writes } with
          | Tracker.Commit { commit_ts; writes } ->
              List.iter (fun (i, v) -> oracle.(i) <- oracle.(i) @ [ (v, commit_ts) ]) writes;
              committed := (gid, reads, writes) :: !committed
          | Tracker.Abort _ -> ())
        txns;
      mvsg_acyclic ~n_items !committed)

(* --- full harness: combined faults + partition + reconfig ------------------ *)

let combined_params =
  {
    Params.default with
    n_sites = 4;
    n_items = 24;
    threads_per_site = 2;
    txns_per_thread = 8;
    backedge_prob = 0.0;
    record_history = true;
    txn_deadline = 200.0;
    retry = Params.default_backoff;
    faults =
      (match
         Repdb_fault.Fault.of_string
           "crash@300:site=1,down=300;partition@600-900:groups=0.1|2.3;rto=5"
       with
      | Ok s -> s
      | Error m -> failwith m);
    reconfig =
      (match Repdb_reconfig.Reconfig.of_string "add@100:item=3,site=2;rebalance@1200:from=3,to=0" with
      | Ok s -> s
      | Error m -> failwith m);
  }

let test_combined_survival () =
  List.iter
    (fun name ->
      let protocol = Option.get (Repdb.Registry.find name) in
      let r = Repdb.Driver.run combined_params protocol in
      checkb (name ^ ": committed work") true (r.summary.commits > 0);
      checki (name ^ ": crash injected") 1 r.crashes;
      checkb (name ^ ": partition activated") true (r.partitions > 0);
      checki (name ^ ": reconfigs executed") 2 r.reconfigs;
      (match r.serializability with
      | Some Repdb_txn.Serializability.Serializable -> ()
      | Some _ -> Alcotest.failf "%s: not serializable under combined faults" name
      | None -> Alcotest.failf "%s: no serializability verdict" name);
      match r.divergent with
      | Some [] -> ()
      | Some d -> Alcotest.failf "%s: %d divergent copies" name (List.length d)
      | None -> Alcotest.failf "%s: no convergence check ran" name)
    [ "occ-epoch"; "ssi" ]

let test_combined_deterministic () =
  (* Byte-identical pretty-printed reports across repeats under the combined
     fault + partition + reconfig schedule. *)
  List.iter
    (fun name ->
      let protocol = Option.get (Repdb.Registry.find name) in
      let show () = Fmt.str "%a" Repdb.Driver.pp_report (Repdb.Driver.run combined_params protocol) in
      checks (name ^ ": identical across repeats") (show ()) (show ()))
    [ "occ-epoch"; "ssi" ]

(* --- occ sweep: determinism and the optimistic-vs-locking crossover -------- *)

let sweep_base =
  { Params.default with n_sites = 4; n_items = 200; threads_per_site = 3; txns_per_thread = 8 }

let test_sweep_csv_identical () =
  let seq = Repdb.Experiment.to_csv (Repdb.Experiment.sweep_occ ~base:sweep_base ()) in
  checks "identical across repeats" seq
    (Repdb.Experiment.to_csv (Repdb.Experiment.sweep_occ ~base:sweep_base ()));
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        Repdb.Experiment.to_csv (Repdb.Experiment.sweep_occ ~pool ~base:sweep_base ()))
  in
  checks "identical across -j levels" seq par

let test_sweep_crossover () =
  let fig = Repdb.Experiment.sweep_occ ~base:sweep_base () in
  let report ~x ~proto =
    let pt = List.find (fun (p : Repdb.Experiment.point) -> p.x = x) fig.points in
    List.assoc proto pt.reports
  in
  let reason (r : Repdb.Driver.report) reason =
    match List.assoc_opt reason r.summary.aborts_by_reason with Some n -> n | None -> 0
  in
  let lo = report ~x:0.0 ~proto:"occ-epoch" and hi = report ~x:0.99 ~proto:"occ-epoch" in
  (* Zipf skew concentrates the read/write sets: validation aborts rise. *)
  checkb "occ-epoch validation aborts rise with skew" true
    (reason hi Txn.Validation_failed > reason lo Txn.Validation_failed);
  (* The ssi certifier pays in its own currencies under skew. *)
  let shi = report ~x:0.99 ~proto:"ssi" in
  checkb "ssi optimistic aborts present under skew" true
    (reason shi Txn.First_committer_lost + reason shi Txn.Dangerous_structure > 0);
  (* Crossover against lock-based PSL: optimistic wins per-site throughput
     at uniform access, locking wins under heavy skew. *)
  let psl_lo = report ~x:0.0 ~proto:"psl" and psl_hi = report ~x:0.99 ~proto:"psl" in
  checkb "optimistic wins at low contention" true
    (lo.summary.throughput_per_site > psl_lo.summary.throughput_per_site);
  checkb "locking wins under heavy skew" true
    (psl_hi.summary.throughput_per_site > hi.summary.throughput_per_site);
  (* Lock-based protocols never abort on validation. *)
  checki "psl has no validation aborts" 0 (reason psl_hi Txn.Validation_failed)

let () =
  Alcotest.run "occ"
    [
      ("registry", [ Alcotest.test_case "single source of truth" `Quick test_registry ]);
      ( "validator",
        [ Alcotest.test_case "backward validation" `Quick test_validator ] );
      ( "tracker",
        [
          Alcotest.test_case "first committer wins" `Quick test_tracker_first_committer_wins;
          Alcotest.test_case "stale read" `Quick test_tracker_stale_read;
          Alcotest.test_case "write skew aborts" `Quick test_tracker_write_skew;
          QCheck_alcotest.to_alcotest test_certifier_sound;
        ] );
      ( "harness",
        [
          Alcotest.test_case "combined faults survival" `Quick test_combined_survival;
          Alcotest.test_case "combined faults deterministic" `Quick test_combined_deterministic;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "csv identical" `Slow test_sweep_csv_identical;
          Alcotest.test_case "crossover" `Slow test_sweep_crossover;
        ] );
    ]

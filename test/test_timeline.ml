(* Tests for the time-series telemetry layer: timeline sampling validation,
   byte-identical CSV determinism under combined faults + partition +
   reconfiguration (across repeats and across domain pools), replication-lag
   sanity during a partition, span phase attribution, profiler transparency
   (profiling on must not perturb the simulated result), and the report
   renderer round trip. *)

module Params = Repdb_workload.Params
module Timeline = Repdb_obs.Timeline
module Report = Repdb_obs.Report
module Profile = Repdb_obs.Profile
module Stats = Repdb_obs.Stats
module Driver = Repdb.Driver
module Experiment = Repdb.Experiment

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

let find_protocol name =
  match Repdb.Registry.find name with
  | Some p -> p
  | None -> Alcotest.failf "protocol %s not registered" name

let parse_faults spec =
  match Repdb_fault.Fault.of_string spec with Ok s -> s | Error m -> failwith m

let parse_plan spec =
  match Repdb_reconfig.Reconfig.of_string spec with Ok p -> p | Error m -> failwith m

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- timeline storage ------------------------------------------------------- *)

let test_timeline_validation () =
  Alcotest.check_raises "non-positive interval"
    (Invalid_argument "Timeline.create: interval must be positive and finite") (fun () ->
      ignore (Timeline.create ~n_sites:2 ~interval:0.0 ()));
  Alcotest.check_raises "no sites"
    (Invalid_argument "Timeline.create: need at least one site") (fun () ->
      ignore (Timeline.create ~n_sites:0 ~interval:100.0 ()));
  let tl = Timeline.create ~n_sites:2 ~interval:100.0 () in
  let row n =
    {
      Timeline.r_time = 0.0;
      r_active = 0;
      r_inflight = 0;
      r_commits = Array.make n 0;
      r_aborts = Array.make 2 0;
      r_lag = Array.make 2 0.0;
      r_pending = Array.make 2 0;
      r_locks = Array.make 2 0;
      r_waiters = Array.make 2 0;
      r_phi = [||];
    }
  in
  Alcotest.check_raises "wrong arity rejected"
    (Invalid_argument "Timeline.push: commits has 3 entries for 2 sites") (fun () ->
      Timeline.push tl (row 3));
  checki "rejected row not stored" 0 (Timeline.length tl);
  Timeline.push tl (row 2);
  checki "valid row stored" 1 (Timeline.length tl)

(* --- determinism ------------------------------------------------------------ *)

(* A run with everything on at once: a partition splitting the cluster, a
   crash inside the partition window, a mid-run reconfiguration step, plus
   deadlines and backoff retry to ride it all out. A 4x2x12 run finishes in
   well under 100 simulated ms when unobstructed, so the windows start
   almost immediately to be sure they land mid-workload. *)
let chaos_params =
  {
    Params.default with
    n_sites = 4;
    n_items = 40;
    (* dag-wt runs too, so the copy graph must be a DAG by construction
       rather than by luck of the placement stream. *)
    backedge_prob = 0.0;
    threads_per_site = 2;
    txns_per_thread = 12;
    txn_deadline = 200.0;
    retry = Params.default_backoff;
    faults = parse_faults "partition@10-300:groups=0.1|2.3;crash@150:site=3,down=100";
    reconfig = parse_plan "add@30:item=2,site=3";
    timeline_every = 50.0;
  }

let run_csv ?(params = chaos_params) name =
  match (Driver.run params (find_protocol name)).timeline with
  | Some tl -> Timeline.to_csv_string tl
  | None -> Alcotest.failf "%s: no timeline despite timeline_every > 0" name

let test_run_csv_identical () =
  List.iter
    (fun name -> checks (name ^ " identical across repeats") (run_csv name) (run_csv name))
    [ "psl"; "backedge"; "dag-wt" ]

let render_files files =
  String.concat "\n"
    (List.map (fun (name, tl) -> name ^ "\n" ^ Timeline.to_csv_string tl) files)

let test_sweep_timelines_identical () =
  (* Acceptance: experiment-collected timelines are byte-identical across
     repeats and across -j levels, like the sweep CSVs themselves. *)
  let base =
    {
      Params.default with
      n_sites = 4;
      n_items = 24;
      threads_per_site = 1;
      txns_per_thread = 6;
      timeline_every = 50.0;
    }
  in
  let collect ?pool () =
    render_files
      (Experiment.timeline_files (Experiment.Figure (Experiment.sweep_partition ?pool ~base ())))
  in
  let seq = collect () in
  checkb "sweep collected timelines" true (String.length seq > 0);
  checks "identical across repeats" seq (collect ());
  let par = Repdb_par.Pool.with_pool ~domains:2 (fun pool -> collect ~pool ()) in
  checks "identical across -j levels" seq par

(* --- replication lag -------------------------------------------------------- *)

let lag_rows csv =
  match Report.parse csv with
  | Error m -> Alcotest.failf "report parse failed: %s" m
  | Ok r ->
      let sites = Report.site_columns r "lag_ms" in
      checkb "lag series per site" true (List.length sites > 0);
      sites

let test_lag_rises_and_drains () =
  (* BackEdge under a partition: updates destined for the cut-off half pile
     up, so some site's lag must grow during the window — and once the heal
     lets propagation drain, the final sample must be caught up again. *)
  let sites = lag_rows (run_csv "backedge") in
  let peak =
    List.fold_left
      (fun acc (_, series) -> List.fold_left Float.max acc series)
      0.0 sites
  in
  checkb "lag observed during the partition" true (peak > 0.0);
  List.iter
    (fun (site, series) ->
      checkf (Printf.sprintf "site %d drains by quiescence" site) 0.0
        (List.nth series (List.length series - 1)))
    sites

let test_psl_lag_zero () =
  (* PSL never propagates (replicas stay virtual), so its lag is identically
     zero everywhere — the timeline must agree. *)
  let sites = lag_rows (run_csv "psl") in
  List.iter
    (fun (site, series) ->
      List.iter (checkf (Printf.sprintf "site %d lag stays 0" site) 0.0) series)
    sites

(* --- span phase attribution ------------------------------------------------- *)

let span_count (r : Driver.report) name =
  let h = Stats.histogram r.site_stats name in
  let n = ref 0 in
  for s = 0 to Stats.n_sites r.site_stats - 1 do
    n := !n + Stats.histogram_count h ~site:s
  done;
  !n

let span_total (r : Driver.report) name =
  let h = Stats.histogram r.site_stats name in
  let sum = ref 0.0 in
  for s = 0 to Stats.n_sites r.site_stats - 1 do
    sum :=
      !sum +. (Stats.histogram_mean h ~site:s *. float_of_int (Stats.histogram_count h ~site:s))
  done;
  !sum

let test_span_histograms_populated () =
  (* Every finished attempt lands one observation in each phase histogram,
     so the per-phase counts must all equal commits + aborts, and the
     exec/commit work must show up as nonzero time. *)
  let r = Driver.run chaos_params (find_protocol "backedge") in
  let finished = r.summary.commits + r.summary.aborts in
  checkb "transactions finished" true (finished > 0);
  List.iter
    (fun name -> checki (name ^ " count = finished attempts") finished (span_count r name))
    [ "span.lock"; "span.exec"; "span.prop"; "span.commit" ];
  checkb "commit time attributed" true (span_total r "span.commit" > 0.0);
  checkb "execution time attributed" true (span_total r "span.exec" > 0.0)

let test_span_prop_wait_attributed () =
  (* PSL's synchronous waiting phase is the remote read round trip; it must
     land in span.prop. (BackEdge's eager wait needs a placement with
     backedges, which this small generated one has none of.) *)
  let r = Driver.run chaos_params (find_protocol "psl") in
  checkb "transactions finished" true (r.summary.commits > 0);
  checkb "propagation wait time attributed" true (span_total r "span.prop" > 0.0)

(* --- profiler --------------------------------------------------------------- *)

let test_profile_transparency () =
  (* The profiler reads wall clocks but must not touch simulated state:
     enabling it cannot change commits, event counts, or the timeline. *)
  let off = Driver.run chaos_params (find_protocol "dag-wt") in
  let on = Driver.run { chaos_params with profile = true } (find_protocol "dag-wt") in
  checkb "profiler off by default" false (Profile.on off.profile);
  checkb "profiler on when asked" true (Profile.on on.profile);
  checki "commits unchanged" off.summary.commits on.summary.commits;
  checki "aborts unchanged" off.summary.aborts on.summary.aborts;
  checki "event count unchanged" off.sim_events on.sim_events;
  checks "timeline unchanged"
    (Timeline.to_csv_string (Option.get off.timeline))
    (Timeline.to_csv_string (Option.get on.timeline));
  checkb "profiler attributed events" true (Profile.total_events on.profile > 0);
  let names = List.map (fun (n, _, _, _) -> n) (Profile.rows on.profile) in
  List.iter
    (fun cat -> checkb ("category " ^ cat) true (List.mem cat names))
    [ "client"; "server"; "net" ]

(* --- report rendering ------------------------------------------------------- *)

let test_report_round_trip () =
  let csv = run_csv "backedge" in
  match Report.parse csv with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok r ->
      checkb "rows parsed" true (Report.n_rows r > 0);
      checkb "meta recovered" true (List.mem_assoc "protocol" (Report.meta r));
      checks "protocol from meta" "backedge" (List.assoc "protocol" (Report.meta r));
      checki "lag series per site" chaos_params.n_sites
        (List.length (Report.site_columns r "lag_ms"));
      (match Report.column r "active_txns" with
      | Some series -> checki "active series length" (Report.n_rows r) (List.length series)
      | None -> Alcotest.fail "active_txns column missing");
      let md = Report.to_markdown r in
      checkb "markdown mentions lag" true (contains ~affix:"lag" md);
      checkb "markdown has sparklines" true
        (List.exists (fun g -> contains ~affix:g md) [ "\xe2\x96\x81"; "\xe2\x96\x88" ]);
      let html = Report.to_html r in
      checkb "html is self-contained" true
        (contains ~affix:"<svg" html && contains ~affix:"</html>" html)

let test_report_rejects_garbage () =
  (match Report.parse "" with
  | Ok _ -> Alcotest.fail "empty input accepted"
  | Error _ -> ());
  match Report.parse "not,a\n1,timeline,3\n" with
  | Ok _ -> Alcotest.fail "ragged input accepted"
  | Error _ -> ()

let () =
  Alcotest.run "timeline"
    [
      ( "storage",
        [ Alcotest.test_case "validation" `Quick test_timeline_validation ] );
      ( "determinism",
        [
          Alcotest.test_case "run csv identical" `Quick test_run_csv_identical;
          Alcotest.test_case "sweep timelines identical" `Quick test_sweep_timelines_identical;
        ] );
      ( "lag",
        [
          Alcotest.test_case "rises and drains" `Quick test_lag_rises_and_drains;
          Alcotest.test_case "psl stays zero" `Quick test_psl_lag_zero;
        ] );
      ( "spans",
        [
          Alcotest.test_case "histograms populated" `Quick test_span_histograms_populated;
          Alcotest.test_case "prop wait attributed" `Quick test_span_prop_wait_attributed;
        ] );
      ( "profile",
        [ Alcotest.test_case "transparency" `Quick test_profile_transparency ] );
      ( "report",
        [
          Alcotest.test_case "round trip" `Quick test_report_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_report_rejects_garbage;
        ] );
    ]

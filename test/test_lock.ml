(* Tests for the strict-2PL lock manager: compatibility, FIFO granting,
   upgrades, both deadlock policies and invariants. *)

module Sim = Repdb_sim.Sim
module Rng = Repdb_sim.Rng
module Lock_mgr = Repdb_lock.Lock_mgr

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let outcome =
  Alcotest.testable
    (fun ppf -> function
      | Lock_mgr.Granted -> Fmt.string ppf "granted"
      | Lock_mgr.Timed_out -> Fmt.string ppf "timed-out"
      | Lock_mgr.Deadlock_victim -> Fmt.string ppf "victim")
    ( = )

let with_lm ?(policy = `Timeout 50.0) f =
  let sim = Sim.create () in
  let lm = Lock_mgr.create ~sim ~policy () in
  f sim lm;
  Sim.run sim;
  (sim, lm)

let test_shared_compatible () =
  let _, lm =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            Alcotest.check outcome "o1 S" Lock_mgr.Granted (Lock_mgr.acquire lm ~owner:1 0 Shared);
            Alcotest.check outcome "o2 S" Lock_mgr.Granted (Lock_mgr.acquire lm ~owner:2 0 Shared)))
  in
  checki "two holders" 2 (List.length (Lock_mgr.holders lm 0))

let test_exclusive_blocks () =
  let log = ref [] in
  let _ =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            Sim.delay 10.0;
            Lock_mgr.release_all lm ~owner:1);
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            let o = Lock_mgr.acquire lm ~owner:2 0 Exclusive in
            log := (Sim.now sim, o) :: !log))
  in
  Alcotest.(check (list (pair (float 1e-9) outcome)))
    "granted at release" [ (10.0, Lock_mgr.Granted) ] !log

let test_fifo_no_barging () =
  (* X waits behind S; a later S must not overtake the waiting X. *)
  let order = ref [] in
  let _ =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Shared);
            Sim.delay 10.0;
            Lock_mgr.release_all lm ~owner:1);
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            ignore (Lock_mgr.acquire lm ~owner:2 0 Exclusive);
            order := 2 :: !order;
            Sim.delay 5.0;
            Lock_mgr.release_all lm ~owner:2);
        Sim.spawn sim (fun () ->
            Sim.delay 2.0;
            ignore (Lock_mgr.acquire lm ~owner:3 0 Shared);
            order := 3 :: !order))
  in
  Alcotest.(check (list int)) "X before the later S" [ 2; 3 ] (List.rev !order)

let test_reentrant () =
  let _ =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            Alcotest.check outcome "S" Lock_mgr.Granted (Lock_mgr.acquire lm ~owner:1 0 Shared);
            Alcotest.check outcome "S again" Lock_mgr.Granted (Lock_mgr.acquire lm ~owner:1 0 Shared);
            Alcotest.check outcome "upgrade" Lock_mgr.Granted
              (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            Alcotest.check outcome "X re-entrant" Lock_mgr.Granted
              (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            Alcotest.check outcome "S under X" Lock_mgr.Granted
              (Lock_mgr.acquire lm ~owner:1 0 Shared);
            checkb "holds X" true (Lock_mgr.holds lm ~owner:1 0 = Some Exclusive)))
  in
  ()

let test_upgrade_waits_for_other_readers () =
  let log = ref [] in
  let _ =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Shared);
            Sim.delay 10.0;
            Lock_mgr.release_all lm ~owner:1);
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:2 0 Shared);
            Sim.delay 1.0;
            let o = Lock_mgr.acquire lm ~owner:2 0 Exclusive in
            log := (Sim.now sim, o) :: !log))
  in
  Alcotest.(check (list (pair (float 1e-9) outcome)))
    "upgrade granted when sole holder" [ (10.0, Lock_mgr.Granted) ] !log

let test_upgrade_priority () =
  (* An upgrader jumps ahead of a queued X request. *)
  let order = ref [] in
  let _ =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Shared);
            Sim.delay 5.0;
            ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            order := 1 :: !order;
            Lock_mgr.release_all lm ~owner:1);
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            ignore (Lock_mgr.acquire lm ~owner:2 0 Exclusive);
            order := 2 :: !order;
            Lock_mgr.release_all lm ~owner:2))
  in
  Alcotest.(check (list int)) "upgrader first" [ 1; 2 ] (List.rev !order)

let test_timeout_policy () =
  let log = ref [] in
  let _ =
    with_lm ~policy:(`Timeout 50.0) (fun sim lm ->
        Sim.spawn sim (fun () -> ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive));
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            let o = Lock_mgr.acquire lm ~owner:2 0 Exclusive in
            log := (Sim.now sim, o) :: !log))
  in
  Alcotest.(check (list (pair (float 1e-9) outcome)))
    "timed out after 50ms" [ (51.0, Lock_mgr.Timed_out) ] !log

let test_deadlock_detection () =
  (* 1 holds a, wants b; 2 holds b, wants a. Victim = latest arrival (2). *)
  let results = ref [] in
  let _ =
    with_lm ~policy:(`Detect None) (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            Sim.delay 2.0;
            let o = Lock_mgr.acquire lm ~owner:1 1 Exclusive in
            results := (1, o) :: !results;
            Lock_mgr.release_all lm ~owner:1);
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            ignore (Lock_mgr.acquire lm ~owner:2 1 Exclusive);
            Sim.delay 2.0;
            let o = Lock_mgr.acquire lm ~owner:2 0 Exclusive in
            results := (2, o) :: !results;
            Lock_mgr.release_all lm ~owner:2))
  in
  let sorted = List.sort compare !results in
  Alcotest.(check (list (pair int outcome)))
    "latest arrival is the victim"
    [ (1, Lock_mgr.Granted); (2, Lock_mgr.Deadlock_victim) ]
    sorted

let test_detect_overlapping_cycles () =
  (* Two waits-for cycles sharing the same start owner: 1 holds X on item 0;
     2 and 3 hold item 1 shared and both wait for X on 0; 1 then requests X
     on 1, closing 1->2->1 and 1->3->1 simultaneously. Victimising the
     latest-arriving waiter (1, once) must break both cycles at once. *)
  let results = ref [] in
  let _, lm =
    with_lm ~policy:(`Detect None) (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            Sim.delay 3.0;
            let o = Lock_mgr.acquire lm ~owner:1 1 Exclusive in
            results := (1, o) :: !results;
            Lock_mgr.release_all lm ~owner:1);
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            ignore (Lock_mgr.acquire lm ~owner:2 1 Shared);
            Sim.delay 0.5;
            let o = Lock_mgr.acquire lm ~owner:2 0 Exclusive in
            results := (2, o) :: !results;
            Lock_mgr.release_all lm ~owner:2);
        Sim.spawn sim (fun () ->
            Sim.delay 2.0;
            ignore (Lock_mgr.acquire lm ~owner:3 1 Shared);
            Sim.delay 0.5;
            let o = Lock_mgr.acquire lm ~owner:3 0 Exclusive in
            results := (3, o) :: !results;
            Lock_mgr.release_all lm ~owner:3))
  in
  Alcotest.(check (list (pair int outcome)))
    "single victim breaks both cycles"
    [ (1, Lock_mgr.Deadlock_victim); (2, Lock_mgr.Granted); (3, Lock_mgr.Granted) ]
    (List.sort compare !results);
  checki "exactly one deadlock abort" 1 (Lock_mgr.stats lm).Lock_mgr.deadlock_aborts;
  checki "table drained" 0 (Lock_mgr.locks_held lm)

let test_abort_waiter () =
  let log = ref [] in
  let _ =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () -> ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive));
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            let o = Lock_mgr.acquire lm ~owner:2 0 Exclusive in
            log := (Sim.now sim, o) :: !log);
        Sim.after sim 5.0 (fun () -> checkb "woken" true (Lock_mgr.abort_waiter lm ~owner:2));
        Sim.after sim 6.0 (fun () -> checkb "no-op when not waiting" false (Lock_mgr.abort_waiter lm ~owner:2)))
  in
  Alcotest.(check (list (pair (float 1e-9) outcome)))
    "aborted early" [ (5.0, Lock_mgr.Deadlock_victim) ] !log

let test_abort_waiter_holder_not_waiting () =
  (* abort_waiter on an owner that holds locks but has no pending wait must
     be a refusing no-op: false, with every lock intact. *)
  let _, lm =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            ignore (Lock_mgr.acquire lm ~owner:1 1 Shared));
        Sim.after sim 1.0 (fun () ->
            checkb "holder with no pending wait" false (Lock_mgr.abort_waiter lm ~owner:1)))
  in
  checki "locks intact" 2 (Lock_mgr.locks_held lm);
  checkb "still holds X" true (Lock_mgr.holds lm ~owner:1 0 = Some Exclusive);
  checkb "still holds S" true (Lock_mgr.holds lm ~owner:1 1 = Some Shared)

let test_waiting_for () =
  let _ =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () -> ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive));
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            ignore (Lock_mgr.acquire lm ~owner:2 0 Exclusive));
        Sim.spawn sim (fun () ->
            Sim.delay 2.0;
            ignore (Lock_mgr.acquire lm ~owner:3 0 Shared));
        Sim.after sim 3.0 (fun () ->
            Alcotest.(check (list int)) "waits for holder" [ 1 ] (Lock_mgr.waiting_for lm ~owner:2);
            Alcotest.(check (list int))
              "waits for holder and queued-ahead" [ 1; 2 ]
              (Lock_mgr.waiting_for lm ~owner:3);
            Alcotest.(check (list int)) "not waiting" [] (Lock_mgr.waiting_for lm ~owner:1)))
  in
  ()

let test_release_all_clears () =
  let _, lm =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            ignore (Lock_mgr.acquire lm ~owner:1 1 Shared);
            ignore (Lock_mgr.acquire lm ~owner:1 2 Shared);
            Lock_mgr.release_all lm ~owner:1))
  in
  checki "nothing held" 0 (Lock_mgr.locks_held lm);
  checkb "holds nothing" true (Lock_mgr.holds lm ~owner:1 0 = None)

let test_stats () =
  let _, lm =
    with_lm (fun sim lm ->
        Sim.spawn sim (fun () ->
            ignore (Lock_mgr.acquire lm ~owner:1 0 Exclusive);
            Sim.delay 100.0;
            Lock_mgr.release_all lm ~owner:1);
        Sim.spawn sim (fun () ->
            Sim.delay 1.0;
            ignore (Lock_mgr.acquire lm ~owner:2 0 Exclusive)))
  in
  let s = Lock_mgr.stats lm in
  checki "acquires" 1 s.Lock_mgr.acquires;
  checki "waits" 1 s.Lock_mgr.waits;
  checki "timeouts" 1 s.Lock_mgr.timeouts

(* Property: random transactions acquiring random locks under the timeout
   policy always terminate with an empty lock table after release_all. *)
let prop_random_workload_drains =
  QCheck2.Test.make ~name:"random lock workload drains cleanly" ~count:40
    QCheck2.Gen.(pair int (int_range 2 8))
    (fun (seed, n_txns) ->
      let sim = Sim.create () in
      let lm = Lock_mgr.create ~sim ~policy:(`Timeout 20.0) () in
      let rng = Rng.create seed in
      let finished = ref 0 in
      for owner = 1 to n_txns do
        let items = List.init (1 + Rng.int rng 5) (fun _ -> Rng.int rng 6) in
        let modes = List.map (fun _ -> if Rng.bool rng 0.5 then Lock_mgr.Shared else Lock_mgr.Exclusive) items in
        Sim.spawn sim (fun () ->
            Sim.delay (Rng.float rng *. 10.0);
            let ok =
              List.for_all2
                (fun item mode ->
                  Sim.delay (Rng.float rng *. 5.0);
                  Lock_mgr.acquire lm ~owner item mode = Lock_mgr.Granted)
                items modes
            in
            ignore ok;
            Lock_mgr.release_all lm ~owner;
            incr finished)
      done;
      Sim.run sim;
      !finished = n_txns && Lock_mgr.locks_held lm = 0)

let () =
  Alcotest.run "lock"
    [
      ( "lock_mgr",
        [
          Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
          Alcotest.test_case "exclusive blocks" `Quick test_exclusive_blocks;
          Alcotest.test_case "fifo no barging" `Quick test_fifo_no_barging;
          Alcotest.test_case "re-entrant" `Quick test_reentrant;
          Alcotest.test_case "upgrade waits" `Quick test_upgrade_waits_for_other_readers;
          Alcotest.test_case "upgrade priority" `Quick test_upgrade_priority;
          Alcotest.test_case "timeout policy" `Quick test_timeout_policy;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "overlapping cycles one victim" `Quick test_detect_overlapping_cycles;
          Alcotest.test_case "abort waiter" `Quick test_abort_waiter;
          Alcotest.test_case "abort waiter on holder" `Quick test_abort_waiter_holder_not_waiting;
          Alcotest.test_case "waiting_for" `Quick test_waiting_for;
          Alcotest.test_case "release_all" `Quick test_release_all_clears;
          Alcotest.test_case "stats" `Quick test_stats;
          QCheck_alcotest.to_alcotest prop_random_workload_drains;
        ] );
    ]

(* Tests for the discrete-event kernel: heap, RNG, scheduler, condition
   variables, mailboxes and resources. *)

module Sim = Repdb_sim.Sim
module Heap = Repdb_sim.Heap
module Rng = Repdb_sim.Rng
module Condvar = Repdb_sim.Condvar
module Mailbox = Repdb_sim.Mailbox
module Resource = Repdb_sim.Resource

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- heap ---------------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iteri (fun seq t -> Heap.push h ~time:t ~seq (int_of_float t)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = List.init 5 (fun _ -> let _, _, v = Heap.pop_min h in v) in
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 4; 5 ] out;
  checkb "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for seq = 0 to 9 do
    Heap.push h ~time:1.0 ~seq seq
  done;
  let out = List.init 10 (fun _ -> let _, _, v = Heap.pop_min h in v) in
  check Alcotest.(list int) "ties resolved FIFO" (List.init 10 Fun.id) out

let test_heap_large () =
  let h = Heap.create () in
  let rng = Rng.create 1 in
  let times = List.init 1000 (fun i -> (Rng.float rng, i)) in
  List.iter (fun (t, seq) -> Heap.push h ~time:t ~seq seq) times;
  checki "size" 1000 (Heap.size h);
  let rec drain last n =
    if Heap.is_empty h then n
    else begin
      let t, _, _ = Heap.pop_min h in
      checkb "non-decreasing" true (t >= last);
      drain t (n + 1)
    end
  in
  checki "drained all" 1000 (drain neg_infinity 0);
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop_min: empty heap") (fun () ->
      ignore (Heap.pop_min h));
  checkb "pop_min_opt empty" true (Heap.pop_min_opt h = None)

let test_heap_min_time () =
  let h = Heap.create () in
  checkb "none" true (Heap.min_time h = None);
  Heap.push h ~time:7.0 ~seq:0 ();
  checkb "some" true (Heap.min_time h = Some 7.0)

(* --- rng ----------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    checkb "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    checkb "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    checkb "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_bool_extremes () =
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    checkb "p=1" true (Rng.bool rng 1.0);
    checkb "p=0" false (Rng.bool rng 0.0)
  done

let test_rng_pick_shuffle () =
  let rng = Rng.create 5 in
  let arr = Array.init 10 Fun.id in
  for _ = 1 to 100 do
    let v = Rng.pick rng arr in
    checkb "member" true (v >= 0 && v < 10)
  done;
  let copy = Array.copy arr in
  Rng.shuffle rng copy;
  Array.sort compare copy;
  check Alcotest.(array int) "permutation" arr copy;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_rng_split () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let va = Rng.next_int64 a and vb = Rng.next_int64 b in
  checkb "independent streams differ" true (va <> vb)

(* --- scheduler ----------------------------------------------------------- *)

let test_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 3.0 (fun () -> log := 3 :: !log);
  Sim.at sim 1.0 (fun () -> log := 1 :: !log);
  Sim.at sim 2.0 (fun () -> log := 2 :: !log);
  Sim.run sim;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.(float 1e-9) "clock at last event" 3.0 (Sim.now sim)

let test_delay_sequencing () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      log := (Sim.now sim, "start") :: !log;
      Sim.delay 10.0;
      log := (Sim.now sim, "mid") :: !log;
      Sim.delay 5.0;
      log := (Sim.now sim, "end") :: !log);
  Sim.run sim;
  check
    Alcotest.(list (pair (float 1e-9) string))
    "delays advance the clock"
    [ (0.0, "start"); (10.0, "mid"); (15.0, "end") ]
    (List.rev !log)

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> Sim.delay (-1.0));
  (match Sim.run sim with
  | exception Sim.Stuck (Invalid_argument _) -> ()
  | () -> Alcotest.fail "expected Stuck");
  Alcotest.check_raises "at in the past" (Invalid_argument "Sim.at: time is in the past")
    (fun () ->
      let sim = Sim.create () in
      Sim.at sim 5.0 ignore;
      Sim.run sim;
      Sim.at sim 1.0 ignore)

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Sim.delay 10.0;
    tick ()
  in
  Sim.spawn sim tick;
  Sim.run_until sim 55.0;
  checki "ticks up to horizon" 6 !count;
  (* t=0,10,20,30,40,50 *)
  check Alcotest.(float 1e-9) "clock at horizon" 55.0 (Sim.now sim)

let test_nested_spawn () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      Sim.delay 1.0;
      Sim.spawn sim (fun () ->
          Sim.delay 2.0;
          log := "inner" :: !log);
      log := "outer" :: !log);
  Sim.run sim;
  check Alcotest.(list string) "inner after outer" [ "outer"; "inner" ] (List.rev !log)

let test_suspend_resume_once () =
  let sim = Sim.create () in
  let resume_fn = ref ignore in
  let hits = ref 0 in
  Sim.spawn sim (fun () ->
      Sim.suspend (fun resume -> resume_fn := resume);
      incr hits);
  Sim.run sim;
  checki "parked" 0 !hits;
  !resume_fn ();
  !resume_fn ();
  (* second resume must be ignored *)
  Sim.run sim;
  checki "resumed exactly once" 1 !hits

let test_suspend_value () =
  let sim = Sim.create () in
  let got = ref 0 in
  Sim.spawn sim (fun () ->
      let v = Sim.suspend (fun resume -> Sim.after sim 3.0 (fun () -> resume 42)) in
      got := v);
  Sim.run sim;
  checki "value delivered" 42 !got

let test_events_executed () =
  let sim = Sim.create () in
  for i = 1 to 5 do
    Sim.at sim (float_of_int i) ignore
  done;
  Sim.run sim;
  checki "counted" 5 (Sim.events_executed sim)

(* --- condvar ------------------------------------------------------------- *)

let test_condvar_signal_fifo () =
  let sim = Sim.create () in
  let cv = Condvar.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Condvar.await cv;
        log := i :: !log)
  done;
  Sim.after sim 1.0 (fun () -> Condvar.signal cv);
  Sim.after sim 2.0 (fun () -> Condvar.signal cv);
  Sim.after sim 3.0 (fun () -> Condvar.signal cv);
  Sim.run sim;
  check Alcotest.(list int) "FIFO wakeups" [ 1; 2; 3 ] (List.rev !log)

let test_condvar_broadcast () =
  let sim = Sim.create () in
  let cv = Condvar.create () in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Sim.spawn sim (fun () ->
        Condvar.await cv;
        incr woken)
  done;
  Sim.after sim 1.0 (fun () ->
      Alcotest.(check int) "waiters" 5 (Condvar.waiters cv);
      Condvar.broadcast cv);
  Sim.run sim;
  checki "all woken" 5 !woken

let test_condvar_timeout () =
  let sim = Sim.create () in
  let cv = Condvar.create () in
  let results = ref [] in
  Sim.spawn sim (fun () ->
      let r = Condvar.await_timeout sim cv 10.0 in
      results := (Sim.now sim, r) :: !results);
  Sim.spawn sim (fun () ->
      let r = Condvar.await_timeout sim cv 50.0 in
      results := (Sim.now sim, r) :: !results);
  Sim.after sim 20.0 (fun () -> Condvar.signal cv);
  Sim.run sim;
  check
    Alcotest.(list (pair (float 1e-9) bool))
    "first timed out, second signalled"
    [ (10.0, false); (20.0, true) ]
    (List.rev !results)

(* --- mailbox ------------------------------------------------------------- *)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Sim.after sim 1.0 (fun () ->
      Mailbox.send mb "a";
      Mailbox.send mb "b";
      Mailbox.send mb "c");
  Sim.run sim;
  check Alcotest.(list string) "in order" [ "a"; "b"; "c" ] (List.rev !got)

let test_mailbox_buffering () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  Mailbox.send mb 1;
  Mailbox.send mb 2;
  checki "length" 2 (Mailbox.length mb);
  checkb "peek" true (Mailbox.peek mb = Some 1);
  let got = ref [] in
  Sim.spawn sim (fun () ->
      got := Mailbox.recv mb :: !got;
      got := Mailbox.recv mb :: !got);
  Sim.run sim;
  check Alcotest.(list int) "buffered order" [ 1; 2 ] (List.rev !got);
  checkb "empty" true (Mailbox.is_empty mb)

let test_mailbox_recv_timeout () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let r1 = ref (Some 0) and r2 = ref None in
  Sim.spawn sim (fun () -> r1 := Mailbox.recv_timeout sim mb 5.0);
  Sim.run sim;
  checkb "timed out" true (!r1 = None);
  Sim.spawn sim (fun () -> r2 := Mailbox.recv_timeout sim mb 5.0);
  Sim.after sim 2.0 (fun () -> Mailbox.send mb 9);
  Sim.run sim;
  checkb "delivered" true (!r2 = Some 9)

let test_mailbox_timeout_does_not_lose_messages () =
  (* A message sent after a receiver timed out must stay in the queue. *)
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  Sim.spawn sim (fun () -> ignore (Mailbox.recv_timeout sim mb 5.0));
  Sim.after sim 10.0 (fun () -> Mailbox.send mb 1);
  Sim.run sim;
  checki "message kept" 1 (Mailbox.length mb)

(* --- resource ------------------------------------------------------------ *)

let test_resource_serialises () =
  let sim = Sim.create () in
  let r = Resource.create ~capacity:1 () in
  let log = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Resource.use r 10.0;
        log := (i, Sim.now sim) :: !log)
  done;
  Sim.run sim;
  check
    Alcotest.(list (pair int (float 1e-9)))
    "FIFO service" [ (1, 10.0); (2, 20.0); (3, 30.0) ] (List.rev !log)

let test_resource_capacity () =
  let sim = Sim.create () in
  let r = Resource.create ~capacity:2 () in
  let log = ref [] in
  for i = 1 to 4 do
    Sim.spawn sim (fun () ->
        Resource.use r 10.0;
        log := (i, Sim.now sim) :: !log)
  done;
  Sim.run sim;
  check
    Alcotest.(list (pair int (float 1e-9)))
    "two at a time"
    [ (1, 10.0); (2, 10.0); (3, 20.0); (4, 20.0) ]
    (List.rev !log)

let test_resource_errors () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Resource.create: capacity must be >= 1")
    (fun () -> ignore (Resource.create ~capacity:0 ()));
  let r = Resource.create ~capacity:1 () in
  Alcotest.check_raises "release unheld" (Invalid_argument "Resource.release: not held")
    (fun () -> Resource.release r)

(* --- qcheck properties ---------------------------------------------------- *)

let prop_rng_int_in_range =
  QCheck2.Test.make ~name:"rng int stays in range" ~count:500
    QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (float_bound_inclusive 1000.0))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun seq t -> Heap.push h ~time:t ~seq t) times;
      let rec drain last =
        if Heap.is_empty h then true
        else
          let t, _, _ = Heap.pop_min h in
          t >= last && drain t
      in
      drain neg_infinity)

(* Model check for the hole-sifting rewrite: interleave pushes and pops and
   require the exact drain sequence (times, seqs and values) of a sorted
   list. Duplicate times exercise the seq tiebreak. *)
let prop_heap_matches_sorted_model =
  QCheck2.Test.make ~name:"heap matches sorted-list model" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 120) (int_range 0 15))
        (int_range 0 40))
    (fun (raw_times, pops_mid) ->
      let h = Heap.create () in
      let entries = List.mapi (fun seq t -> (float_of_int t, seq)) raw_times in
      let model = List.sort compare entries in
      (* Push everything, pop a prefix mid-stream, push nothing more, drain:
         intermediate pops must already follow the model order. *)
      List.iter (fun (time, seq) -> Heap.push h ~time ~seq seq) entries;
      let n = List.length entries in
      let popped =
        List.init (min pops_mid n) (fun _ ->
            let t, s, v = Heap.pop_min h in
            (t, s, v))
      in
      let rest =
        List.init (Heap.size h) (fun _ ->
            let t, s, v = Heap.pop_min h in
            (t, s, v))
      in
      let got = popped @ rest in
      Heap.is_empty h
      && List.for_all2 (fun (mt, ms) (t, s, v) -> mt = t && ms = s && ms = v) model got)

let test_step_empty () =
  let sim = Sim.create () in
  Alcotest.check_raises "step on empty" (Invalid_argument "Sim.step: no scheduled events")
    (fun () -> Sim.step sim)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "large" `Quick test_heap_large;
          Alcotest.test_case "min_time" `Quick test_heap_min_time;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_matches_sorted_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool extremes" `Quick test_rng_bool_extremes;
          Alcotest.test_case "pick/shuffle" `Quick test_rng_pick_shuffle;
          Alcotest.test_case "split" `Quick test_rng_split;
          QCheck_alcotest.to_alcotest prop_rng_int_in_range;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "delay sequencing" `Quick test_delay_sequencing;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "suspend resumes once" `Quick test_suspend_resume_once;
          Alcotest.test_case "suspend value" `Quick test_suspend_value;
          Alcotest.test_case "events executed" `Quick test_events_executed;
          Alcotest.test_case "step on empty" `Quick test_step_empty;
        ] );
      ( "condvar",
        [
          Alcotest.test_case "signal FIFO" `Quick test_condvar_signal_fifo;
          Alcotest.test_case "broadcast" `Quick test_condvar_broadcast;
          Alcotest.test_case "timeout" `Quick test_condvar_timeout;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "buffering" `Quick test_mailbox_buffering;
          Alcotest.test_case "recv timeout" `Quick test_mailbox_recv_timeout;
          Alcotest.test_case "timeout keeps messages" `Quick test_mailbox_timeout_does_not_lose_messages;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serialises" `Quick test_resource_serialises;
          Alcotest.test_case "capacity" `Quick test_resource_capacity;
          Alcotest.test_case "errors" `Quick test_resource_errors;
        ] );
    ]

(* Tests for directed graphs, propagation trees and backedge computation. *)

module Digraph = Repdb_graph.Digraph
module Tree = Repdb_graph.Tree
module Backedge = Repdb_graph.Backedge

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let of_edges n edges =
  let g = Digraph.create n in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

(* Random DAG: edges only from lower to higher vertex under a fixed size. *)
let gen_dag =
  QCheck2.Gen.(
    bind (int_range 2 10) (fun n ->
        map
          (fun pairs ->
            let edges =
              List.filter_map
                (fun (a, b) ->
                  let u = a mod n and v = b mod n in
                  if u < v then Some (u, v) else if v < u then Some (v, u) else None)
                pairs
            in
            of_edges n edges)
          (list_size (int_range 0 25) (pair (int_range 0 100) (int_range 0 100)))))

(* Random digraph, cycles allowed. *)
let gen_digraph =
  QCheck2.Gen.(
    bind (int_range 2 9) (fun n ->
        map
          (fun pairs ->
            let edges = List.map (fun (a, b) -> (a mod n, b mod n)) pairs in
            of_edges n edges)
          (list_size (int_range 0 30) (pair (int_range 0 100) (int_range 0 100)))))

(* --- digraph ------------------------------------------------------------- *)

let test_digraph_basics () =
  let g = of_edges 4 [ (0, 1); (0, 1); (1, 2); (2, 2) ] in
  checki "dedup + no self-loop" 2 (Digraph.n_edges g);
  checkb "has" true (Digraph.has_edge g 0 1);
  checkb "no self" false (Digraph.has_edge g 2 2);
  Alcotest.(check (list int)) "succ" [ 1 ] (Digraph.succ g 0);
  Alcotest.(check (list int)) "pred" [ 1 ] (Digraph.pred g 2);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (Digraph.edges g);
  Alcotest.check_raises "range" (Invalid_argument "Digraph: vertex out of range") (fun () ->
      Digraph.add_edge g 0 9)

let test_topo_sort () =
  let g = of_edges 4 [ (0, 1); (1, 2); (0, 3); (3, 2) ] in
  (match Digraph.topo_sort g with
  | None -> Alcotest.fail "expected a DAG"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.iter (fun (u, v) -> checkb "edge forward" true (pos.(u) < pos.(v))) (Digraph.edges g));
  let cyc = of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  checkb "cycle has no topo order" true (Digraph.topo_sort cyc = None);
  checkb "is_dag" false (Digraph.is_dag cyc)

let test_reachable () =
  let g = of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  let r = Digraph.reachable g 0 in
  Alcotest.(check (array bool)) "reach set" [| true; true; true; false; false |] r;
  checkb "cycle through" true (Digraph.has_cycle_through g 2 0);
  checkb "no cycle through" false (Digraph.has_cycle_through g 0 3)

let test_weak_components () =
  let g = of_edges 6 [ (0, 1); (2, 1); (3, 4) ] in
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ] (Digraph.weak_components g)

let test_find_cycle () =
  let g = of_edges 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  match Digraph.find_cycle g with
  | None -> Alcotest.fail "cycle expected"
  | Some cycle ->
      checkb "cycle non-trivial" true (List.length cycle >= 2);
      (* Every consecutive pair (wrapping) must be an edge. *)
      let arr = Array.of_list cycle in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        checkb "cycle edge" true (Digraph.has_edge g arr.(i) arr.((i + 1) mod n))
      done

let test_remove_edges () =
  let g = of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  let h = Digraph.remove_edges g [ (2, 0) ] in
  checkb "now a DAG" true (Digraph.is_dag h);
  checkb "original untouched" true (Digraph.has_edge g 2 0)

(* --- tree ---------------------------------------------------------------- *)

let test_chain () =
  let t = Tree.chain_of_order [| 2; 0; 1 |] in
  checki "root" 2 (List.hd (Tree.roots t));
  checki "parent of 0" 2 (Tree.parent t 0);
  checki "parent of 1" 0 (Tree.parent t 1);
  checkb "ancestor" true (Tree.is_ancestor t 2 1);
  checki "depth" 2 (Tree.depth t 1);
  Alcotest.(check (list int)) "path down" [ 0; 1 ] (Tree.path_down t 2 1);
  Alcotest.(check (list int)) "subtree" [ 2; 0; 1 ] (Tree.subtree t 2)

let test_of_parents_validation () =
  Alcotest.check_raises "cycle" (Invalid_argument "Tree.of_parents: cycle in parent array")
    (fun () -> ignore (Tree.of_parents [| 1; 0 |]));
  Alcotest.check_raises "bad parent" (Invalid_argument "Tree.of_parents: parent out of range")
    (fun () -> ignore (Tree.of_parents [| 5 |]))

let test_of_dag_example_1_1 () =
  (* Copy graph of the paper's Example 1.1: s1 -> s2, s1 -> s3, s2 -> s3. *)
  let g = of_edges 3 [ (0, 1); (0, 2); (1, 2) ] in
  let t = Tree.of_dag g in
  checkb "ancestor property" true (Tree.satisfies g t);
  (* The only valid shape is the chain 0 -> 1 -> 2. *)
  checki "s3 under s2" 1 (Tree.parent t 2);
  checki "s2 under s1" 0 (Tree.parent t 1)

let test_of_dag_components () =
  (* Two independent components become independent trees, not one chain. *)
  let g = of_edges 4 [ (0, 1); (2, 3) ] in
  let t = Tree.of_dag g in
  checkb "property" true (Tree.satisfies g t);
  Alcotest.(check (list int)) "two roots" [ 0; 2 ] (Tree.roots t)

let test_of_dag_rejects_cycles () =
  let g = of_edges 2 [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "cyclic" (Invalid_argument "Tree.of_dag: graph has a cycle") (fun () ->
      ignore (Tree.of_dag g))

let prop_of_dag_satisfies =
  QCheck2.Test.make ~name:"Tree.of_dag has the ancestor property" ~count:200 gen_dag
    (fun g -> Tree.satisfies g (Tree.of_dag g))

let prop_chain_satisfies =
  QCheck2.Test.make ~name:"topological chain has the ancestor property" ~count:200 gen_dag
    (fun g ->
      match Digraph.topo_sort g with
      | None -> false
      | Some order -> Tree.satisfies g (Tree.chain_of_order (Array.of_list order)))

(* --- backedges ----------------------------------------------------------- *)

let test_of_order () =
  let g = of_edges 3 [ (0, 1); (2, 0); (1, 2) ] in
  Alcotest.(check (list (pair int int)))
    "backward edges" [ (2, 0) ]
    (Backedge.of_order g [| 0; 1; 2 |])

let test_minimal_set_example () =
  let g = of_edges 2 [ (0, 1); (1, 0) ] in
  let b = Backedge.minimal_set g in
  checki "one backedge" 1 (List.length b);
  checkb "valid" true (Backedge.is_backedge_set g b);
  checkb "minimal" true (Backedge.is_minimal g b)

let prop_minimal_set =
  QCheck2.Test.make ~name:"DFS backedge set is valid and minimal" ~count:300 gen_digraph
    (fun g -> Backedge.is_minimal g (Backedge.minimal_set g))

let prop_greedy_fas_valid =
  QCheck2.Test.make ~name:"greedy FAS is a valid backedge set" ~count:300 gen_digraph
    (fun g -> Backedge.is_backedge_set g (Backedge.greedy_fas g ~weight:(fun _ _ -> 1.0)))

let test_greedy_fas_quality () =
  (* A single directed cycle needs exactly one removed edge. *)
  let n = 7 in
  let g = of_edges n (List.init n (fun i -> (i, (i + 1) mod n))) in
  let fas = Backedge.greedy_fas g ~weight:(fun _ _ -> 1.0) in
  checki "cycle broken with one edge" 1 (List.length fas);
  checkb "valid" true (Backedge.is_backedge_set g fas)

let test_weighted_fas () =
  (* Two 2-cycles with asymmetric weights: the heuristic should prefer
     removing the cheap direction. *)
  let g = of_edges 4 [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  let weight u v = if u < v then 10.0 else 1.0 in
  let fas = Backedge.greedy_fas g ~weight in
  checkb "valid" true (Backedge.is_backedge_set g fas);
  checkb "cheap side removed" true (Backedge.total_weight fas ~weight <= 2.0)

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "topo sort" `Quick test_topo_sort;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "weak components" `Quick test_weak_components;
          Alcotest.test_case "find cycle" `Quick test_find_cycle;
          Alcotest.test_case "remove edges" `Quick test_remove_edges;
        ] );
      ( "tree",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "of_parents validation" `Quick test_of_parents_validation;
          Alcotest.test_case "example 1.1" `Quick test_of_dag_example_1_1;
          Alcotest.test_case "components" `Quick test_of_dag_components;
          Alcotest.test_case "rejects cycles" `Quick test_of_dag_rejects_cycles;
          QCheck_alcotest.to_alcotest prop_of_dag_satisfies;
          QCheck_alcotest.to_alcotest prop_chain_satisfies;
        ] );
      ( "backedge",
        [
          Alcotest.test_case "of_order" `Quick test_of_order;
          Alcotest.test_case "minimal example" `Quick test_minimal_set_example;
          Alcotest.test_case "greedy quality" `Quick test_greedy_fas_quality;
          Alcotest.test_case "weighted" `Quick test_weighted_fas;
          QCheck_alcotest.to_alcotest prop_minimal_set;
          QCheck_alcotest.to_alcotest prop_greedy_fas_valid;
        ] );
    ]

(* Tests for partition tolerance and graceful degradation: BackEdge failing
   fast on unreachable backedge targets, transaction deadlines bounding the
   eager phase, backoff retry riding a partition out (with convergence and
   serializability after the heal), PSL's bounded-staleness read fallback,
   and the partition sweep's byte-identical determinism across repeats and
   domain pools. *)

module Sim = Repdb_sim.Sim
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Fault = Repdb_fault.Fault
module Txn = Repdb_txn.Txn

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let parse spec =
  match Fault.of_string spec with Ok s -> s | Error m -> failwith m

let show_outcome = function
  | None -> "no outcome"
  | Some o -> Fmt.str "%a" Txn.pp_outcome o

(* --- BackEdge under a partition (hand-built two-site cluster) -------------

   Chain tree 0 -> 1; item 0 has its primary at site 1 and a replica at the
   ancestor site 0, so a write at site 1 runs the eager backedge phase
   against site 0. *)

let two_site_cluster ?(deadline = 0.0) spec =
  let params =
    {
      Params.default with
      n_sites = 2;
      n_items = 1;
      latency = 1.0;
      txn_deadline = deadline;
      faults = parse spec;
    }
  in
  let placement = Placement.make ~n_sites:2 ~n_items:1 ~primary:[| 1 |] ~replicas:[| [ 0 ] |] in
  let c = Repdb.Cluster.create_with params placement in
  (c, Repdb.Backedge_proto.create c)

let test_backedge_fail_fast () =
  (* The partition is active at submit time: the write's backedge target is
     unreachable, so the primary aborts with Partitioned immediately instead
     of parking in its lock table; after the heal the same write commits. *)
  let c, t = two_site_cluster "partition@0-1000:groups=0|1" in
  let first = ref None and first_at = ref nan in
  let second = ref None in
  Sim.spawn c.sim (fun () ->
      Repdb.Cluster.arm_deadline c;
      first := Some (Repdb.Backedge_proto.submit t { Txn.origin = 1; ops = [ Txn.Write 0 ] });
      first_at := Sim.now c.sim);
  Sim.spawn c.sim (fun () ->
      Sim.delay 1500.0;
      Repdb.Cluster.arm_deadline c;
      second := Some (Repdb.Backedge_proto.submit t { Txn.origin = 1; ops = [ Txn.Write 0 ] }));
  Sim.run c.sim;
  (match !first with
  | Some (Txn.Aborted Txn.Partitioned) -> ()
  | o -> Alcotest.failf "expected Aborted partitioned, got %s" (show_outcome o));
  checkb "aborted before the heal" true (!first_at < 1000.0);
  match !second with
  | Some Txn.Committed -> ()
  | o -> Alcotest.failf "after heal: expected Committed, got %s" (show_outcome o)

let test_backedge_deadline_exceeded () =
  (* The partition begins after the Exec_request departs, trapping the
     returning special subtransaction until t = 2000; the 50 ms transaction
     deadline converts the parked origin wait into a clean abort long before
     the heal. *)
  let c, t = two_site_cluster ~deadline:50.0 "partition@1-2000:groups=0|1" in
  let outcome = ref None and at = ref nan in
  Sim.spawn c.sim (fun () ->
      Repdb.Cluster.arm_deadline c;
      outcome := Some (Repdb.Backedge_proto.submit t { Txn.origin = 1; ops = [ Txn.Write 0 ] });
      at := Sim.now c.sim);
  Sim.run c.sim;
  (match !outcome with
  | Some (Txn.Aborted Txn.Deadline_exceeded) -> ()
  | o -> Alcotest.failf "expected Aborted deadline-exceeded, got %s" (show_outcome o));
  checkb "aborted at the deadline" true (!at >= 50.0 && !at < 60.0);
  checkb "well before the heal" true (!at < 2000.0)

(* --- full runs: retry rides the partition out ----------------------------- *)

let partition_params =
  {
    Params.default with
    n_sites = 4;
    n_items = 40;
    threads_per_site = 2;
    txns_per_thread = 20;
    record_history = true;
    txn_deadline = 200.0;
    retry = Params.default_backoff;
    faults = parse "partition@100-600:groups=0.1|2.3";
  }

let test_heal_converges_serializable () =
  (* Every protocol must ride the split out under deadlines + backoff retry:
     replicas converge after the heal and the recorded history stays
     serializable. *)
  List.iter
    (fun (name, protocol, backedge_prob) ->
      let params = { partition_params with Params.backedge_prob } in
      let r = Repdb.Driver.run params protocol in
      checki (name ^ ": partition window ran") 1 r.partitions;
      let module P = (val protocol : Repdb.Protocol.S) in
      (match r.divergent with
      | Some [] -> ()
      | Some d -> Alcotest.failf "%s: %d divergent copies after heal" name (List.length d)
      | None -> if P.updates_replicas then Alcotest.failf "%s: no convergence check ran" name);
      match r.serializability with
      | Some Repdb_txn.Serializability.Serializable -> ()
      | Some _ -> Alcotest.failf "%s: history not serializable under partition" name
      | None -> Alcotest.failf "%s: no serializability verdict" name)
    [
      ("backedge", (module Repdb.Backedge_proto : Repdb.Protocol.S), 0.2);
      ("dag-wt", (module Repdb.Dag_wt : Repdb.Protocol.S), 0.0);
      ("psl", (module Repdb.Psl : Repdb.Protocol.S), 0.2);
    ]

let test_psl_stale_reads () =
  (* With the bounded-staleness fallback on, PSL serves reads of partitioned
     primaries from the local replica during the split, and records per-read
     staleness within the bound. *)
  let bound = 60_000.0 in
  let params = { partition_params with Params.backedge_prob = 0.2; stale_reads = bound } in
  let r = Repdb.Driver.run params (module Repdb.Psl : Repdb.Protocol.S) in
  checkb "stale reads served during the split" true (r.summary.stale_reads > 0);
  checkb "staleness recorded" true (r.summary.max_staleness > 0.0);
  checkb "staleness within the bound" true (r.summary.max_staleness <= bound);
  checkb "avg <= max" true (r.summary.avg_staleness <= r.summary.max_staleness);
  match r.serializability with
  | Some Repdb_txn.Serializability.Serializable -> ()
  | Some _ -> Alcotest.fail "psl: locked-read history not serializable"
  | None -> Alcotest.fail "psl: no serializability verdict"

let test_availability_metrics () =
  (* The goodput/abort timeline must cover the run and the unavailability
     accounting must be internally consistent. *)
  let params = { partition_params with Params.backedge_prob = 0.2 } in
  let r = Repdb.Driver.run params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  checkb "timeline recorded" true (r.summary.timeline <> []);
  let commits = List.fold_left (fun acc (_, c, _) -> acc + c) 0 r.summary.timeline in
  let aborts = List.fold_left (fun acc (_, _, a) -> acc + a) 0 r.summary.timeline in
  checki "timeline commits match" r.summary.commits commits;
  checki "timeline aborts match" r.summary.aborts aborts;
  checkb "windows imply unavailable time"
    (r.summary.unavail_windows > 0)
    (r.summary.unavail_ms > 0.0)

(* --- determinism of the partition sweep ----------------------------------- *)

let test_sweep_csv_identical () =
  (* Acceptance: the partition sweep's CSV is byte-identical across repeats
     and across -j levels (backoff jitter comes from per-client seeded
     streams, so parallel interleaving cannot leak in). *)
  let base =
    { Params.default with n_sites = 4; n_items = 24; threads_per_site = 1; txns_per_thread = 6 }
  in
  let seq = Repdb.Experiment.to_csv (Repdb.Experiment.sweep_partition ~base ()) in
  checks "identical across repeats" seq
    (Repdb.Experiment.to_csv (Repdb.Experiment.sweep_partition ~base ()));
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        Repdb.Experiment.to_csv (Repdb.Experiment.sweep_partition ~pool ~base ()))
  in
  checks "identical across -j levels" seq par;
  checkb "new columns present" true
    (String.length seq > 0
    &&
    let header = List.hd (String.split_on_char '\n' seq) in
    List.for_all
      (fun col ->
        List.mem col (String.split_on_char ',' header))
      [
        "aborts_deadline_exceeded";
        "aborts_partitioned";
        "aborts_validation_failed";
        "aborts_dangerous_structure";
        "stale_reads";
        "max_staleness_ms";
        "unavail_ms";
      ])

let () =
  Alcotest.run "partition"
    [
      ( "backedge",
        [
          Alcotest.test_case "fail fast on unreachable target" `Quick test_backedge_fail_fast;
          Alcotest.test_case "deadline bounds the parked wait" `Quick
            test_backedge_deadline_exceeded;
        ] );
      ( "heal",
        [
          Alcotest.test_case "converges and serializable" `Quick test_heal_converges_serializable;
          Alcotest.test_case "psl stale reads" `Quick test_psl_stale_reads;
          Alcotest.test_case "availability metrics" `Quick test_availability_metrics;
        ] );
      ( "determinism",
        [ Alcotest.test_case "sweep csv identical" `Quick test_sweep_csv_identical ] );
    ]

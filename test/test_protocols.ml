(* Protocol-level tests: the paper's Example 1.1 and Example 4.1 as concrete
   scenarios, plus per-protocol behaviours (routing, timestamps, remote
   reads, eager 2PC). *)

module Sim = Repdb_sim.Sim
module Txn = Repdb_txn.Txn
module Serializability = Repdb_txn.Serializability
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Tree = Repdb_graph.Tree
module Cluster = Repdb.Cluster
module Driver = Repdb.Driver
module Protocol = Repdb.Protocol

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let outcome =
  Alcotest.testable Txn.pp_outcome ( = )

let base_params =
  {
    Params.default with
    n_sites = 3;
    n_items = 2;
    record_history = true;
    txns_per_thread = 1;
  }

(* Example 1.1 data placement: item 0 = a (primary s1=0, replicas s2=1, s3=2),
   item 1 = b (primary s2=1, replica s3=2). *)
let example_1_1_placement =
  Placement.make ~n_sites:3 ~n_items:2 ~primary:[| 0; 1 |] ~replicas:[| [ 1; 2 ]; [ 2 ] |]

(* The slow link s1 -> s3 that lets T1's direct update arrive late. *)
let slow_direct_link src dst = if src = 0 && dst = 2 then 200.0 else 1.0

(* Run the Example 1.1 schedule against a protocol; returns the cluster and
   the three outcomes. T1 updates a at s1; T2 reads a and writes b at s2 after
   T1's update reached it; T3 reads a and b at s3 before the slow message can
   arrive. *)
let run_example_1_1 (proto : Protocol.t) =
  let module P = (val proto) in
  let c = Cluster.create_with ~latency:slow_direct_link base_params example_1_1_placement in
  let p = P.create c in
  let outcomes = Array.make 3 Txn.Committed in
  let submit_at time idx spec =
    Cluster.client_started c;
    Sim.at c.sim time (fun () ->
        Sim.spawn c.sim (fun () ->
            outcomes.(idx) <- P.submit p spec;
            Cluster.client_finished c))
  in
  submit_at 0.0 0 { Txn.origin = 0; ops = [ Txn.Write 0 ] };
  submit_at 50.0 1 { Txn.origin = 1; ops = [ Txn.Read 0; Txn.Write 1 ] };
  submit_at 70.0 2 { Txn.origin = 2; ops = [ Txn.Read 0; Txn.Read 1 ] };
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  checkb "quiesced" true (Cluster.quiescent c);
  Array.iter (fun o -> Alcotest.check outcome "all commit" Txn.Committed o) outcomes;
  c

let test_example_1_1_naive_violates () =
  let c = run_example_1_1 (module Repdb.Naive) in
  (match Serializability.check c.history with
  | Serializability.Not_serializable _ -> ()
  | Serializability.Serializable -> Alcotest.fail "naive propagation should not serialize");
  (* Replicas still converge: per-item streams are FIFO from the primary. *)
  checki "converged" 0 (List.length (Repdb.Convergence.check c))

let test_example_1_1_dag_wt_serializes () =
  let c = run_example_1_1 (module Repdb.Dag_wt) in
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable);
  checki "converged" 0 (List.length (Repdb.Convergence.check c))

let test_example_1_1_dag_t_serializes () =
  let c = run_example_1_1 (module Repdb.Dag_t) in
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable);
  checki "converged" 0 (List.length (Repdb.Convergence.check c))

let test_example_1_1_backedge_serializes () =
  (* The copy graph is a DAG under the chain order, so BackEdge degenerates
     to DAG(WT) and must also serialize this schedule. *)
  let c = run_example_1_1 (module Repdb.Backedge_proto) in
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable)

(* Example 4.1: two sites, mutual replication. *)
let example_4_1_placement =
  Placement.make ~n_sites:2 ~n_items:2 ~primary:[| 0; 1 |] ~replicas:[| [ 1 ]; [ 0 ] |]

let test_example_4_1_backedge () =
  let params = { base_params with Params.n_sites = 2 } in
  let c = Cluster.create_with params example_4_1_placement in
  let p = Repdb.Backedge_proto.create c in
  let o1 = ref Txn.Committed and o2 = ref Txn.Committed in
  Cluster.client_started c;
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      o1 := Repdb.Backedge_proto.submit p { Txn.origin = 0; ops = [ Txn.Read 1; Txn.Write 0 ] };
      Cluster.client_finished c);
  Sim.spawn c.sim (fun () ->
      o2 := Repdb.Backedge_proto.submit p { Txn.origin = 1; ops = [ Txn.Read 0; Txn.Write 1 ] };
      Cluster.client_finished c);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  checkb "quiesced" true (Cluster.quiescent c);
  (* The global deadlock of Example 4.1: T1 (no backedge subtransaction)
     commits; T2, waiting for its special message, is the victim. *)
  Alcotest.check outcome "T1 commits" Txn.Committed !o1;
  (match !o2 with
  | Txn.Aborted _ -> ()
  | Txn.Committed -> Alcotest.fail "T2 should be the deadlock victim");
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable);
  checki "converged" 0 (List.length (Repdb.Convergence.check c))

let test_example_4_1_sequential_commits () =
  (* Run the same two transactions one after the other: no deadlock, both
     commit, including the one with a backedge subtransaction. *)
  let params = { base_params with Params.n_sites = 2 } in
  let c = Cluster.create_with params example_4_1_placement in
  let p = Repdb.Backedge_proto.create c in
  let o1 = ref Txn.Committed and o2 = ref Txn.Committed in
  Cluster.client_started c;
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      o1 := Repdb.Backedge_proto.submit p { Txn.origin = 0; ops = [ Txn.Read 1; Txn.Write 0 ] };
      Cluster.client_finished c);
  Sim.at c.sim 500.0 (fun () ->
      Sim.spawn c.sim (fun () ->
          o2 := Repdb.Backedge_proto.submit p { Txn.origin = 1; ops = [ Txn.Read 0; Txn.Write 1 ] };
          Cluster.client_finished c));
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  Alcotest.check outcome "T1 commits" Txn.Committed !o1;
  Alcotest.check outcome "T2 commits eagerly via its backedge" Txn.Committed !o2;
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable);
  checki "converged" 0 (List.length (Repdb.Convergence.check c));
  checki "one backedge in the copy graph" 1 (List.length (Repdb.Backedge_proto.backedges p))

let test_backedge_general_tree () =
  (* The general variant must also serialize cyclic copy graphs, and must
     report the same (or fewer) backedges than the chain. *)
  for seed = 1 to 5 do
    let params =
      {
        base_params with
        Params.n_sites = 5;
        n_items = 30;
        replication_prob = 0.5;
        backedge_prob = 0.6;
        threads_per_site = 2;
        txns_per_thread = 10;
        seed;
      }
    in
    let c = Cluster.create params in
    let p = Repdb.Backedge_proto.create_general c in
    let gen = Repdb_workload.Generator.create c.rng params c.placement in
    for site = 0 to params.n_sites - 1 do
      for thread = 0 to params.threads_per_site - 1 do
        Cluster.client_started c;
        let rng = Repdb_sim.Rng.create ((seed * 977) + (site * 13) + thread) in
        Sim.spawn c.sim (fun () ->
            for _ = 1 to params.txns_per_thread do
              ignore
                (Repdb.Backedge_proto.submit p (Repdb_workload.Generator.gen_with gen rng ~site))
            done;
            Cluster.client_finished c)
      done
    done;
    Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
    Sim.run_until c.sim 1_000_000.0;
    Sim.run c.sim;
    checkb "quiesced" true (Cluster.quiescent c);
    checkb "serializable" true (Serializability.check c.history = Serializability.Serializable);
    checki "converged" 0 (List.length (Repdb.Convergence.check c));
    checkb "tree satisfies comparability" true
      (List.for_all
         (fun (u, v) ->
           let tr = Repdb.Backedge_proto.tree p in
           Tree.is_ancestor tr u v || Tree.is_ancestor tr v u)
         (Repdb_graph.Digraph.edges (Placement.copy_graph c.placement)))
  done

let test_backedge_with_order () =
  (* Hub site 2 replicates item 0 to sites 0 and 1. Under the identity order
     both copy-graph edges are backedges; ordering the hub first removes
     them, so the same write commits without any eager work. *)
  let placement =
    Placement.make ~n_sites:3 ~n_items:1 ~primary:[| 2 |] ~replicas:[| [ 0; 1 ] |]
  in
  let params = { base_params with Params.n_items = 1 } in
  let run order =
    let c = Cluster.create_with params placement in
    let p = Repdb.Backedge_proto.create_with_order c order in
    let o = ref (Txn.Aborted Txn.Deadlock) in
    Cluster.client_started c;
    Sim.spawn c.sim (fun () ->
        o := Repdb.Backedge_proto.submit p { Txn.origin = 2; ops = [ Txn.Write 0 ] };
        Cluster.client_finished c);
    Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
    Sim.run_until c.sim 100_000.0;
    Sim.run c.sim;
    checkb "converged" true (Repdb.Convergence.check c = []);
    (!o, List.length (Repdb.Backedge_proto.backedges p))
  in
  let o_id, backedges_id = run [| 0; 1; 2 |] in
  let o_fas, backedges_fas = run [| 2; 0; 1 |] in
  Alcotest.check outcome "identity order commits (eagerly)" Txn.Committed o_id;
  Alcotest.check outcome "fas order commits (lazily)" Txn.Committed o_fas;
  checki "identity order: two backedges" 2 backedges_id;
  checki "hub-first order: none" 0 backedges_fas;
  Alcotest.check_raises "bad permutation"
    (Invalid_argument "Backedge_proto: order is not a permutation") (fun () ->
      let c = Cluster.create_with params placement in
      ignore (Repdb.Backedge_proto.create_with_order c [| 0; 0; 2 |]))

let test_backedge_rejects_incomparable_tree () =
  let c = Cluster.create_with base_params example_1_1_placement in
  (* Sites 1 and 2 as siblings under 0: the copy-graph edge 1 -> 2 connects
     incomparable sites. *)
  let bad = Tree.of_parents [| -1; 0; 0 |] in
  Alcotest.check_raises "incomparable"
    (Invalid_argument "Backedge_proto: tree leaves a copy-graph edge between incomparable sites")
    (fun () -> ignore (Repdb.Backedge_proto.create_with_tree c bad))

(* --- DAG(WT) specifics ---------------------------------------------------- *)

let test_dag_wt_rejects_cycles () =
  let params = { base_params with Params.n_sites = 2 } in
  let c = Cluster.create_with params example_4_1_placement in
  Alcotest.check_raises "cyclic copy graph"
    (Invalid_argument "Dag_wt: copy graph has a cycle (use the BackEdge protocol)") (fun () ->
      ignore (Repdb.Dag_wt.create c))

let test_dag_wt_rejects_bad_tree () =
  let c = Cluster.create_with base_params example_1_1_placement in
  (* Tree rooted at s3 with s1, s2 as children violates the property. *)
  let bad = Tree.of_parents [| 2; 2; -1 |] in
  Alcotest.check_raises "tree property"
    (Invalid_argument "Dag_wt: tree lacks the ancestor property") (fun () ->
      ignore (Repdb.Dag_wt.create_with_tree c bad))

let test_dag_wt_routes_through_tree () =
  (* One committed update with replicas at both descendants: the message
     travels 0 -> 1 -> 2, i.e. exactly two chain messages. *)
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Dag_wt.create c in
  checkb "tree is the chain" true (Tree.parent (Repdb.Dag_wt.tree p) 2 = 1);
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      ignore (Repdb.Dag_wt.submit p { Txn.origin = 0; ops = [ Txn.Write 0 ] });
      Cluster.client_finished c);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  checki "two hops" 2 c.messages

let test_dag_t_sends_directly () =
  (* Same update under DAG(T): one direct message per relevant child, but
     dummy traffic may add more — count only until quiescence of the real
     work by checking the propagation counter instead. *)
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Dag_t.create c in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      ignore (Repdb.Dag_t.submit p { Txn.origin = 0; ops = [ Txn.Write 0 ] });
      Cluster.client_finished c);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 100_000.0;
  Sim.run c.sim;
  checkb "quiesced" true (Cluster.quiescent c);
  (* Both replicas of item 0 were updated. *)
  checki "converged" 0 (List.length (Repdb.Convergence.check c));
  let ts = Repdb.Dag_t.site_timestamp p 2 in
  checkb "site timestamp well formed" true (Repdb.Timestamp.well_formed ts)

let test_dag_t_rejects_cycles () =
  let params = { base_params with Params.n_sites = 2 } in
  let c = Cluster.create_with params example_4_1_placement in
  Alcotest.check_raises "cyclic copy graph"
    (Invalid_argument "Dag_t: copy graph has a cycle (use the BackEdge protocol)") (fun () ->
      ignore (Repdb.Dag_t.create c))

let test_dag_t_progress_with_incomparable_parents () =
  (* Section 3.3's progress scenario: s3 has two incomparable parents s1 and
     s2. A transaction committed at s1 can only execute at s3 once a
     bigger-epoch message (here: a dummy subtransaction) shows up on the
     other queue — without epochs it would wait forever. *)
  let placement =
    Placement.make ~n_sites:3 ~n_items:2 ~primary:[| 0; 1 |] ~replicas:[| [ 2 ]; [ 2 ] |]
  in
  let c = Cluster.create_with base_params placement in
  let p = Repdb.Dag_t.create c in
  let applied_at = ref infinity in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      ignore (Repdb.Dag_t.submit p { Txn.origin = 0; ops = [ Txn.Write 0 ] });
      Cluster.client_finished c);
  (* Poll the replica at s3 (site 2). *)
  let rec poll () =
    if (Repdb_store.Store.read c.stores.(2) 0).Repdb_store.Value.version > 0 then
      applied_at := Sim.now c.sim
    else begin
      Sim.delay 5.0;
      poll ()
    end
  in
  Sim.spawn c.sim poll;
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 100_000.0;
  Sim.run c.sim;
  checkb "the update was applied at s3" true (!applied_at < infinity);
  (* It required a dummy from the silent parent, so it lands after the idle
     threshold but far before the horizon. *)
  checkb "after the dummy threshold" true (!applied_at >= base_params.Params.dummy_idle);
  checkb "but promptly" true (!applied_at < 10.0 *. base_params.Params.dummy_idle)

(* Random DAG placements with random per-pair latencies: the DAG protocols
   must serialize and converge regardless of message timing. *)
let prop_dag_protocols_random_latency =
  QCheck2.Test.make ~name:"dag protocols serialize under random latencies" ~count:12
    QCheck2.Gen.(pair int (int_range 0 1))
    (fun (seed, which) ->
      let params =
        {
          Params.default with
          n_sites = 4;
          n_items = 16;
          replication_prob = 0.5;
          backedge_prob = 0.0;
          threads_per_site = 2;
          txns_per_thread = 8;
          record_history = true;
          seed;
        }
      in
      let rng = Repdb_sim.Rng.create (seed * 7 + 1) in
      let pl = Placement.generate (Repdb_sim.Rng.create seed) params in
      let lat = Array.init 4 (fun _ -> Array.init 4 (fun _ -> Repdb_sim.Rng.float_range rng 0.1 20.0)) in
      let c = Cluster.create_with ~latency:(fun s d -> lat.(s).(d)) params pl in
      let proto : Protocol.t =
        if which = 0 then (module Repdb.Dag_wt) else (module Repdb.Dag_t)
      in
      let r = Driver.run_on c proto in
      r.serializability = Some Serializability.Serializable && r.divergent = Some [])

(* --- PSL specifics --------------------------------------------------------- *)

let test_psl_remote_read () =
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Psl.create c in
  let o = ref Txn.Committed in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      (* Site 2 reads item 0, whose primary is site 0: a remote read. *)
      o := Repdb.Psl.submit p { Txn.origin = 2; ops = [ Txn.Read 0 ] };
      Cluster.client_finished c);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  Alcotest.check outcome "committed" Txn.Committed !o;
  checki "one remote read" 1 (Repdb.Psl.remote_reads p);
  (* Request + reply + release. *)
  checki "three messages" 3 c.messages

let test_psl_remote_denied () =
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Psl.create c in
  (* A foreign owner X-locks the primary copy of item 0 and never lets go. *)
  Sim.spawn c.sim (fun () ->
      ignore (Repdb_lock.Lock_mgr.acquire c.locks.(0) ~owner:999_999 0 Repdb_lock.Lock_mgr.Exclusive));
  let o = ref Txn.Committed in
  Cluster.client_started c;
  Sim.at c.sim 1.0 (fun () ->
      Sim.spawn c.sim (fun () ->
          o := Repdb.Psl.submit p { Txn.origin = 2; ops = [ Txn.Read 0 ] };
          Cluster.client_finished c));
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  Alcotest.check outcome "denied" (Txn.Aborted Txn.Remote_denied) !o

let test_psl_local_reads_stay_local () =
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Psl.create c in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      ignore (Repdb.Psl.submit p { Txn.origin = 0; ops = [ Txn.Read 0; Txn.Write 0 ] });
      Cluster.client_finished c);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  checki "no remote reads" 0 (Repdb.Psl.remote_reads p);
  checki "no messages" 0 c.messages

(* --- Eager specifics -------------------------------------------------------- *)

let test_eager_updates_replicas_in_txn () =
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Eager.create c in
  let o = ref Txn.Committed in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      o := Repdb.Eager.submit p { Txn.origin = 0; ops = [ Txn.Write 0 ] };
      Cluster.client_finished c);
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 10_000.0;
  Sim.run c.sim;
  Alcotest.check outcome "committed" Txn.Committed !o;
  checki "two remote write locks" 2 (Repdb.Eager.remote_writes p);
  checki "converged" 0 (List.length (Repdb.Convergence.check c));
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable)

(* --- Lazy-master and centralized certification baselines ------------------- *)

let test_lazy_master_basics () =
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Lazy_master.create c in
  let o = ref Txn.Committed in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      (* A write with two replicas, then a replica read from site 2. *)
      ignore (Repdb.Lazy_master.submit p { Txn.origin = 0; ops = [ Txn.Write 0 ] });
      o := Repdb.Lazy_master.submit p { Txn.origin = 0; ops = [ Txn.Read 0 ] };
      Cluster.client_finished c);
  Cluster.client_started c;
  Sim.at c.sim 200.0 (fun () ->
      Sim.spawn c.sim (fun () ->
          ignore (Repdb.Lazy_master.submit p { Txn.origin = 2; ops = [ Txn.Read 0 ] });
          Cluster.client_finished c));
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 100_000.0;
  Sim.run c.sim;
  Alcotest.check outcome "committed" Txn.Committed !o;
  checki "remote read counted" 1 (Repdb.Lazy_master.remote_reads p);
  checki "replicas physically updated" 0 (List.length (Repdb.Convergence.check c));
  (* The replica at site 2 was fresh when read under the primary's lock. *)
  checki "replica version" 1 (Repdb_store.Store.read c.stores.(2) 0).Repdb_store.Value.version;
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable)

let test_central_certification_rejects_stale_read () =
  (* T at site 2 reads a stale replica of item 0 while the update is stuck on
     a slow link; certification must reject it. *)
  let slow src dst = if src = 0 && dst = 2 then 500.0 else 1.0 in
  let c = Cluster.create_with ~latency:slow base_params example_1_1_placement in
  let p = Repdb.Central.create c in
  let o = ref Txn.Committed in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      ignore (Repdb.Central.submit p { Txn.origin = 0; ops = [ Txn.Write 0 ] });
      Cluster.client_finished c);
  Cluster.client_started c;
  Sim.at c.sim 50.0 (fun () ->
      Sim.spawn c.sim (fun () ->
          o := Repdb.Central.submit p { Txn.origin = 2; ops = [ Txn.Read 0 ] };
          Cluster.client_finished c));
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 100_000.0;
  Sim.run c.sim;
  Alcotest.check outcome "stale read rejected" (Txn.Aborted Txn.Remote_denied) !o;
  checki "one rejection" 1 (Repdb.Central.rejected p);
  checki "one certification" 1 (Repdb.Central.certified p);
  checkb "serializable" true (Serializability.check c.history = Serializability.Serializable);
  checki "converged" 0 (List.length (Repdb.Convergence.check c))

let test_central_accepts_fresh_read () =
  let c = Cluster.create_with base_params example_1_1_placement in
  let p = Repdb.Central.create c in
  let o = ref (Txn.Aborted Txn.Deadlock) in
  Cluster.client_started c;
  Sim.spawn c.sim (fun () ->
      ignore (Repdb.Central.submit p { Txn.origin = 0; ops = [ Txn.Write 0 ] });
      Cluster.client_finished c);
  Cluster.client_started c;
  Sim.at c.sim 500.0 (fun () ->
      Sim.spawn c.sim (fun () ->
          o := Repdb.Central.submit p { Txn.origin = 2; ops = [ Txn.Read 0 ] };
          Cluster.client_finished c));
  Sim.spawn c.sim (fun () -> Cluster.await_quiescence c);
  Sim.run_until c.sim 100_000.0;
  Sim.run c.sim;
  Alcotest.check outcome "fresh read accepted" Txn.Committed !o;
  checki "two certifications" 2 (Repdb.Central.certified p)

let () =
  Alcotest.run "protocols"
    [
      ( "example 1.1",
        [
          Alcotest.test_case "naive violates" `Quick test_example_1_1_naive_violates;
          Alcotest.test_case "dag-wt serializes" `Quick test_example_1_1_dag_wt_serializes;
          Alcotest.test_case "dag-t serializes" `Quick test_example_1_1_dag_t_serializes;
          Alcotest.test_case "backedge serializes" `Quick test_example_1_1_backedge_serializes;
        ] );
      ( "example 4.1",
        [
          Alcotest.test_case "deadlock victim" `Quick test_example_4_1_backedge;
          Alcotest.test_case "sequential commits" `Quick test_example_4_1_sequential_commits;
        ] );
      ( "backedge general",
        [
          Alcotest.test_case "general tree serializes" `Quick test_backedge_general_tree;
          Alcotest.test_case "custom site order" `Quick test_backedge_with_order;
          Alcotest.test_case "rejects incomparable tree" `Quick test_backedge_rejects_incomparable_tree;
        ] );
      ( "dag-wt",
        [
          Alcotest.test_case "rejects cycles" `Quick test_dag_wt_rejects_cycles;
          Alcotest.test_case "rejects bad tree" `Quick test_dag_wt_rejects_bad_tree;
          Alcotest.test_case "routes through tree" `Quick test_dag_wt_routes_through_tree;
        ] );
      ( "dag-t",
        [
          Alcotest.test_case "direct + timestamps" `Quick test_dag_t_sends_directly;
          Alcotest.test_case "rejects cycles" `Quick test_dag_t_rejects_cycles;
          Alcotest.test_case "progress via epochs/dummies" `Quick
            test_dag_t_progress_with_incomparable_parents;
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_dag_protocols_random_latency ] );
      ( "psl",
        [
          Alcotest.test_case "remote read" `Quick test_psl_remote_read;
          Alcotest.test_case "remote denied" `Quick test_psl_remote_denied;
          Alcotest.test_case "local stays local" `Quick test_psl_local_reads_stay_local;
        ] );
      ( "eager",
        [ Alcotest.test_case "updates replicas in txn" `Quick test_eager_updates_replicas_in_txn ] );
      ( "lazy-master",
        [ Alcotest.test_case "basics" `Quick test_lazy_master_basics ] );
      ( "central",
        [
          Alcotest.test_case "rejects stale read" `Quick test_central_certification_rejects_stale_read;
          Alcotest.test_case "accepts fresh read" `Quick test_central_accepts_fresh_read;
        ] );
    ]

(* Tests for the reliable FIFO network. *)

module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Network = Repdb_net.Network

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let make ?(n = 3) ?(latency = fun _ _ -> 1.0) ?on_send () =
  let sim = Sim.create () in
  (sim, Network.create ~sim ~n_sites:n ~latency ?on_send ())

let test_delivery_latency () =
  let sim, net = make () in
  let arrived = ref (-1.0) in
  Sim.spawn sim (fun () ->
      let src, msg = Mailbox.recv (Network.inbox net 1) in
      arrived := Sim.now sim;
      checki "src" 0 src;
      checki "payload" 42 msg);
  Sim.after sim 5.0 (fun () -> Network.send net ~src:0 ~dst:1 42);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "arrives after latency" 6.0 !arrived

let test_fifo_per_pair () =
  let sim, net = make () in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 20 do
        let _, v = Mailbox.recv (Network.inbox net 2) in
        got := v :: !got
      done);
  Sim.spawn sim (fun () ->
      for i = 1 to 20 do
        Network.send net ~src:0 ~dst:2 i;
        Sim.delay 0.1
      done);
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO" (List.init 20 (fun i -> i + 1)) (List.rev !got)

let test_same_instant_send_order () =
  (* Two sends at the same simulated instant to the same destination arrive
     in send order: their delivery events carry equal times, so ordering
     rests entirely on the heap's sequence tiebreaker. *)
  let sim, net = make () in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 4 do
        let src, v = Mailbox.recv (Network.inbox net 2) in
        got := (src, v) :: !got
      done);
  Sim.after sim 3.0 (fun () ->
      Network.send net ~src:0 ~dst:2 1;
      Network.send net ~src:0 ~dst:2 2;
      Network.send net ~src:1 ~dst:2 3;
      Network.send net ~src:0 ~dst:2 4);
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "same-instant sends keep order"
    [ (0, 1); (0, 2); (1, 3); (0, 4) ]
    (List.rev !got)

let test_asymmetric_latency () =
  (* A slow link delays only its own pair — the setup of Example 1.1. *)
  let latency src dst = if src = 0 && dst = 2 then 100.0 else 1.0 in
  let sim, net = make ~latency () in
  let order = ref [] in
  Sim.spawn sim (fun () ->
      let src, () = Mailbox.recv (Network.inbox net 2) in
      order := src :: !order;
      let src, () = Mailbox.recv (Network.inbox net 2) in
      order := src :: !order);
  (* 0 sends first, 1 second, but 1's message overtakes on the fast link. *)
  Network.send net ~src:0 ~dst:2 ();
  Sim.after sim 5.0 (fun () -> Network.send net ~src:1 ~dst:2 ());
  Sim.run sim;
  Alcotest.(check (list int)) "fast link overtakes" [ 1; 0 ] (List.rev !order)

let test_handler_routing () =
  let sim, net = make () in
  let seen = ref [] in
  Network.set_handler net 1 (fun ~src msg -> seen := (src, msg) :: !seen);
  Network.send net ~src:0 ~dst:1 7;
  Network.send net ~src:2 ~dst:1 8;
  Sim.run sim;
  Alcotest.(check (list (pair int int))) "handled" [ (0, 7); (2, 8) ] (List.rev !seen);
  Alcotest.check_raises "inbox after handler"
    (Invalid_argument "Network.inbox: site has a custom handler") (fun () ->
      ignore (Network.inbox net 1))

let test_counting_and_on_send () =
  let count = ref 0 in
  let sim, net = make ~on_send:(fun _ -> incr count) () in
  for _ = 1 to 4 do
    Network.send net ~src:0 ~dst:1 0
  done;
  Sim.run sim;
  checki "messages_sent" 4 (Network.messages_sent net);
  checki "on_send hook" 4 !count

let test_errors () =
  let _, net = make () in
  Alcotest.check_raises "self send" (Invalid_argument "Network.send: src = dst") (fun () ->
      Network.send net ~src:1 ~dst:1 0);
  Alcotest.check_raises "out of range" (Invalid_argument "Network: site out of range") (fun () ->
      Network.send net ~src:0 ~dst:7 0);
  checkb "latency exposed" true (Network.latency net ~src:0 ~dst:1 = 1.0);
  checki "n_sites" 3 (Network.n_sites net)

let () =
  Alcotest.run "net"
    [
      ( "network",
        [
          Alcotest.test_case "delivery latency" `Quick test_delivery_latency;
          Alcotest.test_case "fifo per pair" `Quick test_fifo_per_pair;
          Alcotest.test_case "same-instant send order" `Quick test_same_instant_send_order;
          Alcotest.test_case "asymmetric latency" `Quick test_asymmetric_latency;
          Alcotest.test_case "handler routing" `Quick test_handler_routing;
          Alcotest.test_case "counting" `Quick test_counting_and_on_send;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]

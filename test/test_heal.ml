(* Tests for the self-healing stack: the φ-accrual detector's clamping and
   growth, Merkle-style digest narrowing, the corrupt@ fault clause, whole
   runs that crash the primary and recover with zero operator-scheduled
   restarts, corruption repair via anti-entropy, a crash landing mid
   reconfiguration state transfer, determinism across repeats and domain
   pools, and a QCheck chaos fuzz composing random crash + partition +
   reconfig + corrupt schedules that must stay serializable and converge. *)

module Detector = Repdb_heal.Detector
module Digest_tree = Repdb_heal.Digest_tree
module Fault = Repdb_fault.Fault
module Reconfig = Repdb_reconfig.Reconfig
module Params = Repdb_workload.Params
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Driver = Repdb.Driver
module Heal_exec = Repdb.Heal_exec

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

(* --- φ-accrual detector ----------------------------------------------------- *)

let test_detector_growth () =
  (* Perfectly regular heartbeats: μ settles at the period and φ crosses 8
     after ≈ 460 ms of silence (0.4343 · 460 / 25 ≈ 8). *)
  let d = Detector.create ~hb_every:25.0 ~now:0.0 () in
  for i = 1 to 30 do
    Detector.record d ~now:(float_of_int i *. 25.0)
  done;
  checkf "mean settles at the period" 25.0 (Detector.mean d);
  checki "arrivals counted" 30 (Detector.arrivals d);
  checkf "last arrival" 750.0 (Detector.last_arrival d);
  checkb "quiet right after a heartbeat" true (Detector.phi d ~now:751.0 < 0.1);
  checkb "still calm at one period" true (Detector.phi d ~now:775.0 < 1.0);
  checkb "suspicious after 460ms" true (Detector.phi d ~now:(750.0 +. 465.0) > 8.0);
  (* φ grows monotonically with silence. *)
  checkb "monotone" true
    (Detector.phi d ~now:900.0 < Detector.phi d ~now:1000.0
    && Detector.phi d ~now:1000.0 < Detector.phi d ~now:1200.0)

let test_detector_clamp () =
  (* An outage gap and the post-outage delivery burst are both clamped to
     [0.1, 10] periods, so neither poisons μ: after the site returns, φ
     recovers its pre-outage sensitivity within one window. *)
  let d = Detector.create ~hb_every:25.0 ~now:0.0 () in
  for i = 1 to 20 do
    Detector.record d ~now:(float_of_int i *. 25.0)
  done;
  (* 2 s outage, then the parked heartbeats all arrive nearly at once. *)
  Detector.record d ~now:2500.0;
  checkb "outage gap clamped to 10 periods" true (Detector.mean d <= 25.0 +. (250.0 /. 20.0));
  for i = 1 to 5 do
    Detector.record d ~now:(2500.0 +. (0.01 *. float_of_int i))
  done;
  checkb "burst gaps clamped from below" true (Detector.mean d >= 2.5);
  (* Once a full window of regular arrivals has flushed the clamped gaps,
     the estimate is back to normal. *)
  for i = 1 to 30 do
    Detector.record d ~now:(2600.0 +. (float_of_int i *. 25.0))
  done;
  checkf "recovered" 25.0 (Detector.mean d)

let test_detector_jitter_postpones () =
  (* A jittery link (alternating 10/90 ms gaps) raises μ and postpones
     suspicion proportionally — no false positives on noisy links. *)
  let d = Detector.create ~hb_every:25.0 ~now:0.0 () in
  let now = ref 0.0 in
  for i = 1 to 30 do
    now := !now +. (if i mod 2 = 0 then 10.0 else 90.0);
    Detector.record d ~now:!now
  done;
  checkb "mean reflects jitter" true (Detector.mean d > 40.0);
  (* The silence that fires on a quiet link stays calm here. *)
  checkb "465ms of silence is not enough" true (Detector.phi d ~now:(!now +. 465.0) < 8.0)

(* --- digest-tree narrowing -------------------------------------------------- *)

let test_chunk () =
  let c = Digest_tree.chunk ~fanout:4 [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  checki "four chunks" 4 (List.length c);
  Alcotest.(check (list (list int)))
    "contiguous, near-equal, order-preserving"
    [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 10 ] ]
    c;
  checkb "empty" true (Digest_tree.chunk ~fanout:4 [] = []);
  checkb "short list is one chunk each" true (Digest_tree.chunk ~fanout:4 [ 1 ] = [ [ 1 ] ]);
  (match Digest_tree.chunk ~fanout:1 [ 1 ] with
  | _ -> Alcotest.fail "fanout=1 must be rejected"
  | exception Invalid_argument _ -> ())

let test_narrow () =
  (* Plant mismatches and count the callback traffic: narrowing must find
     exactly the planted set while checking far fewer items than a full
     scan. *)
  let items = List.init 256 (fun i -> i) in
  let bad = [ 17; 200 ] in
  let digest_calls = ref 0 and checked = ref 0 in
  let equal_digest chunk =
    incr digest_calls;
    not (List.exists (fun i -> List.mem i bad) chunk)
  in
  let check_items chunk =
    checked := !checked + List.length chunk;
    List.filter (fun i -> List.mem i bad) chunk
  in
  let found = Digest_tree.narrow ~fanout:4 ~leaf:8 ~equal_digest ~check_items items in
  Alcotest.(check (list int)) "exactly the planted mismatches" bad (List.sort compare found);
  checkb "leaf checks stayed local" true (!checked <= 2 * 8);
  checkb "digest rounds bounded by the tree" true
    (!digest_calls <= 2 * 4 * Digest_tree.depth ~fanout:4 ~leaf:8 256);
  (* Equal replicas: one root digest, zero item checks. *)
  digest_calls := 0;
  checked := 0;
  checkb "clean pair narrows to nothing" true
    (Digest_tree.narrow ~fanout:4 ~leaf:8
       ~equal_digest:(fun _ -> incr digest_calls; true)
       ~check_items:(fun c -> checked := !checked + List.length c; c)
       items
    = []);
  checkb "one digest round for a clean pair" true (!digest_calls <= 4);
  checki "no item checks for a clean pair" 0 !checked

let test_depth () =
  checki "256 items, fanout 4, leaf 8" 3 (Digest_tree.depth ~fanout:4 ~leaf:8 256);
  checki "under the leaf" 0 (Digest_tree.depth ~fanout:4 ~leaf:8 8);
  checkb "monotone in n" true
    (Digest_tree.depth ~fanout:4 ~leaf:8 64 <= Digest_tree.depth ~fanout:4 ~leaf:8 4096)

(* --- corrupt@ fault clause -------------------------------------------------- *)

let parse spec =
  match Fault.of_string spec with
  | Ok s -> s
  | Error m -> Alcotest.failf "spec %S did not parse: %s" spec m

let test_corrupt_spec () =
  let s = parse "corrupt@600:site=2,p=0.3;crash@100:site=1" in
  (match s.corruptions with
  | [ c ] ->
      checki "site" 2 c.c_site;
      checkf "at" 600.0 c.c_at;
      checkf "p" 0.3 c.c_prob
  | _ -> Alcotest.fail "expected one corruption");
  checkb "round-trips" true (s = parse (Fault.to_string s));
  checkf "last event covers the corruption" 600.0 (Fault.last_event s);
  let bad spec =
    match Fault.of_string spec with
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
    | Error _ -> ()
  in
  bad "corrupt@600:site=2" (* missing p *);
  bad "corrupt@x:site=2,p=0.3";
  let invalid spec =
    match Fault.validate ~n_sites:3 (parse spec) with
    | () -> Alcotest.failf "%S should not validate" spec
    | exception Invalid_argument _ -> ()
  in
  invalid "corrupt@600:site=5,p=0.3" (* site out of range *);
  invalid "corrupt@600:site=1,p=0" (* p in (0,1] *);
  invalid "corrupt@600:site=1,p=1.5";
  invalid "corrupt@-5:site=1,p=0.5";
  (* A corrupt clause without healing is an operator error: nothing else can
     even see the damage. *)
  match
    Params.validate
      { Params.default with faults = parse "corrupt@600:site=2,p=0.3"; heal = false }
  with
  | () -> Alcotest.fail "corrupt without --heal should not validate"
  | exception Invalid_argument _ -> ()

let test_synthetic_corruptions () =
  let s = Fault.synthetic ~n_sites:5 ~seed:42 ~n_crashes:1 ~n_corruptions:3 () in
  checki "three corruptions" 3 (List.length s.corruptions);
  Fault.validate ~n_sites:5 s;
  checkb "deterministic in the seed" true
    (s = Fault.synthetic ~n_sites:5 ~seed:42 ~n_crashes:1 ~n_corruptions:3 ())

(* --- live self-healing runs ------------------------------------------------- *)

(* Crash one site for 800 ms mid-workload: long enough for the φ = 8 /
   25 ms-heartbeat detector (≈ 460 ms of silence) to fire while the site is
   still down, so a real failover and a later rejoin both happen. *)
let heal_params =
  {
    Params.default with
    n_sites = 4;
    n_items = 40;
    threads_per_site = 2;
    txns_per_thread = 60;
    backedge_prob = 0.2;
    record_history = true;
    heal = true;
    txn_deadline = 400.0;
    retry = Params.default_backoff;
    faults =
      (match Fault.of_string "crash@400:site=1,down=800" with
      | Ok s -> s
      | Error m -> failwith m);
  }

let run_report ?(params = heal_params) protocol =
  let c = Repdb.Cluster.create params in
  (Driver.run_on c protocol, c)

let heal_of (r : Driver.report) =
  match r.heal with Some h -> h | None -> Alcotest.fail "no healing summary in the report"

let is_serializable (r : Driver.report) =
  match r.serializability with
  | Some Repdb_txn.Serializability.Serializable -> true
  | Some _ -> false
  | None -> Alcotest.fail "history was not recorded"

let test_failover_convergence () =
  (* The acceptance scenario: crash the primary with healing on; the run must
     detect, fail over, rejoin and converge with zero operator-scheduled
     restarts — the fault schedule contains the crash and nothing else. *)
  let r, _ = run_report (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  let h = heal_of r in
  checkb "site was suspected" true (h.suspicions >= 1);
  checki "no false suspicions" 0 h.false_suspicions;
  checkb "failover executed" true (h.failovers >= 1);
  checkb "items were promoted" true (h.promoted_items >= 1);
  checkb "site rejoined" true (h.rejoins >= 1);
  checki "no incident left open" 0 h.incidents_open;
  checkb "mttr measured" true (h.mttr_mean > 0.0 && h.mttr_max >= h.mttr_mean);
  checkb "failover cost measured" true (h.failover_mean > 0.0);
  checkb "serializable across the failover epoch" true (is_serializable r);
  (match r.divergent with
  | Some [] -> ()
  | Some d -> Alcotest.failf "%d divergent copies after self-healing" (List.length d)
  | None -> Alcotest.fail "no convergence check ran");
  let p = heal_params in
  (* Retries make attempts exceed the nominal count; no txn may vanish. *)
  checkb "every attempt accounted" true
    (r.summary.commits + r.summary.aborts
    >= p.Params.n_sites * p.threads_per_site * p.txns_per_thread)

let test_corruption_repair () =
  (* Scramble every replica copy at one site; anti-entropy must find and
     repair all of them (the final sweep is the backstop), leaving no
     corruption marks and fully converged stores. *)
  let params =
    {
      heal_params with
      Params.replication_prob = 0.5;
      faults =
        (match Fault.of_string "corrupt@200:site=2,p=1" with
        | Ok s -> s
        | Error m -> failwith m);
    }
  in
  let r, c = run_report ~params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  let h = heal_of r in
  checki "one corruption event" 1 h.corruption_events;
  checkb "copies were scrambled" true (h.corrupt_items >= 1);
  checkb "repairs shipped" true (h.repaired_items >= 1);
  checki "all corruption marks cleared" 0 (Hashtbl.length c.corrupted);
  checki "no suspicion from corruption alone" 0 h.suspicions;
  match r.divergent with
  | Some [] -> ()
  | Some d -> Alcotest.failf "%d divergent copies after repair" (List.length d)
  | None -> Alcotest.fail "no convergence check ran"

let test_heal_deterministic () =
  (* Byte-identical reports (healing summary included) across repeats and on
     a domain pool: the detector matrix, heartbeat fibers and repair sessions
     all run on simulated time. *)
  let show () =
    let r, _ = run_report (module Repdb.Backedge_proto : Repdb.Protocol.S) in
    Fmt.str "%a" Driver.pp_report r
  in
  let seq = show () in
  checks "identical across repeats" seq (show ());
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        (Repdb_par.Pool.map pool [| (fun () -> show ()) |] ~f:(fun f -> f ())).(0))
  in
  checks "identical on a pool" seq par

let test_sweep_heal_deterministic_across_pools () =
  let base = { heal_params with Params.txns_per_thread = 8; faults = Fault.empty } in
  let seq = Repdb.Experiment.to_csv (Repdb.Experiment.sweep_heal ~base ()) in
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        Repdb.Experiment.to_csv (Repdb.Experiment.sweep_heal ~pool ~base ()))
  in
  checks "sequential = pooled" seq par

(* --- crash mid reconfiguration state transfer -------------------------------- *)

let test_crash_mid_state_transfer () =
  (* Start from zero replication so the add@ step's state transfer is the
     only way the new replica gets its bytes, and crash the destination the
     moment the transfer is due. The WAL must replay whatever slice of the
     transfer landed before the crash, the retransmitting links deliver the
     rest after restart, and the run converges — byte-identically across
     repeats and on a domain pool. *)
  let params =
    {
      heal_params with
      Params.replication_prob = 0.0;
      faults =
        (match Fault.of_string "crash@55:site=3,down=120" with
        | Ok s -> s
        | Error m -> failwith m);
      reconfig =
        (match Reconfig.of_string "add@50:item=2,site=3" with
        | Ok p -> p
        | Error m -> failwith m);
    }
  in
  let show () =
    let r, c = run_report ~params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
    (Fmt.str "%a" Driver.pp_report r, r, c)
  in
  let s1, r, c = show () in
  checki "switch executed" 1 r.reconfigs;
  checki "state transfer ran" 1 r.state_transfers;
  checki "crash executed" 1 r.crashes;
  checkb "replica created" true (Array.mem 3 c.placement.replicas.(2));
  checkb "transferred item converged" true
    (Value.equal (Store.read c.stores.(2) 2) (Store.read c.stores.(3) 2));
  (match r.divergent with
  | Some [] -> ()
  | Some d -> Alcotest.failf "%d divergent copies" (List.length d)
  | None -> Alcotest.fail "no convergence check ran");
  (* The WAL replays the partial transfer: a fresh recovery of the crashed
     destination reproduces its final store, transferred item included. *)
  checkb "wal replay reproduces the store" true
    (Store.contents (Repdb_store.Wal.recover c.wals.(3) ~site:3)
    = Store.contents c.stores.(3));
  let s1', _, _ = show () in
  checks "byte-identical across repeats" s1 s1';
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        (Repdb_par.Pool.map pool [| (fun () -> let s, _, _ = show () in s) |] ~f:(fun f -> f ())).(0))
  in
  checks "byte-identical on a pool" s1 par

(* --- chaos fuzz --------------------------------------------------------------- *)

(* Compose a random crash + corrupt + partition + reconfig schedule from the
   synthetic generators, run it with healing on, and require the full
   robustness contract: one-copy serializable, converged, every attempt
   accounted. QCheck shrinks the four knobs toward the minimal failing
   schedule; the printer shows the offending spec strings verbatim so a
   failure is reproducible from the CLI. *)
let chaos_sites = 4
let chaos_items = 40

let chaos_faults (seed, n_crashes, n_corruptions, with_partition) =
  let s =
    Fault.synthetic ~n_sites:chaos_sites ~seed:(1 + seed) ~n_crashes ~n_corruptions
      ~mean_downtime:200.0 ~window:(100.0, 800.0) ()
  in
  if with_partition then
    { s with Fault.partitions = (parse "partition@150-400:groups=0.1|2.3").partitions }
  else s

let chaos_reconfig (seed, n_steps) =
  Reconfig.synthetic ~n_sites:chaos_sites ~n_items:chaos_items ~seed:(1 + seed) ~n_steps ()

let chaos_print ((seed, n_crashes, n_corruptions), (with_partition, n_steps)) =
  let faults = chaos_faults (seed, n_crashes, n_corruptions, with_partition) in
  Printf.sprintf "seed=%d faults=%S reconfig=%S" seed (Fault.to_string faults)
    (Reconfig.to_string (chaos_reconfig (seed, n_steps)))

let test_chaos_fuzz =
  let gen =
    QCheck.(
      make
        ~print:chaos_print
        ~shrink:
          Shrink.(
            pair (triple int int int) (pair (fun _ -> Iter.empty) int))
        Gen.(
          pair
            (triple (int_bound 1000) (int_bound 2) (int_bound 2))
            (pair bool (int_bound 3))))
  in
  QCheck.Test.make ~name:"random crash+partition+reconfig+corrupt schedules self-heal" ~count:6
    gen
    (fun ((seed, n_crashes, n_corruptions), (with_partition, n_steps)) ->
      let faults = chaos_faults (seed, n_crashes, n_corruptions, with_partition) in
      Fault.validate ~n_sites:chaos_sites faults;
      let reconfig = chaos_reconfig (seed, n_steps) in
      Reconfig.validate ~n_sites:chaos_sites ~n_items:chaos_items reconfig;
      let params =
        { heal_params with Params.n_items = chaos_items; txns_per_thread = 40; faults; reconfig }
      in
      let r, _ = run_report ~params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
      let (_ : Heal_exec.summary) = heal_of r in
      let total = params.Params.n_sites * params.threads_per_site * params.txns_per_thread in
      is_serializable r
      && r.divergent = Some []
      && r.summary.commits + r.summary.aborts >= total)

let () =
  Alcotest.run "heal"
    [
      ( "detector",
        [
          Alcotest.test_case "phi growth" `Quick test_detector_growth;
          Alcotest.test_case "clamping and burst immunity" `Quick test_detector_clamp;
          Alcotest.test_case "jitter postpones suspicion" `Quick test_detector_jitter_postpones;
        ] );
      ( "digest-tree",
        [
          Alcotest.test_case "chunk" `Quick test_chunk;
          Alcotest.test_case "narrow" `Quick test_narrow;
          Alcotest.test_case "depth" `Quick test_depth;
        ] );
      ( "spec",
        [
          Alcotest.test_case "corrupt clause" `Quick test_corrupt_spec;
          Alcotest.test_case "synthetic corruptions" `Quick test_synthetic_corruptions;
        ] );
      ( "live",
        [
          Alcotest.test_case "failover converges, zero restarts" `Quick test_failover_convergence;
          Alcotest.test_case "corruption repaired" `Quick test_corruption_repair;
          Alcotest.test_case "deterministic" `Quick test_heal_deterministic;
          Alcotest.test_case "sweep deterministic across pools" `Quick
            test_sweep_heal_deterministic_across_pools;
          Alcotest.test_case "crash mid state transfer" `Quick test_crash_mid_state_transfer;
        ] );
      (* Pinned RNG: every chaos schedule is a full simulation, so keep the
         drawn inputs identical from run to run (each input is itself
         deterministic). *)
      ( "chaos",
        [ QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) test_chaos_fuzz ] );
    ]

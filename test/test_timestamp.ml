(* Tests for DAG(T) timestamps: the paper's Definition 3.3 examples, the
   total-order laws, and the construction operations. *)

module Timestamp = Repdb.Timestamp

let checkb = Alcotest.(check bool)
let lt a b = Timestamp.compare a b < 0

let ts ?(epoch = 0) tuples =
  Timestamp.of_tuples ~epoch (List.map (fun (site, lts) -> { Timestamp.site; lts }) tuples)

(* The published examples, with sites s1 < s2 < s3 as ranks 1 < 2 < 3. *)
let test_definition_examples () =
  checkb "(s1,1) < (s1,1)(s2,1)" true (lt (ts [ (1, 1) ]) (ts [ (1, 1); (2, 1) ]));
  checkb "(s1,1)(s3,1) < (s1,1)(s2,1)" true (lt (ts [ (1, 1); (3, 1) ]) (ts [ (1, 1); (2, 1) ]));
  checkb "(s1,1)(s2,1) < (s1,1)(s2,2)" true (lt (ts [ (1, 1); (2, 1) ]) (ts [ (1, 1); (2, 2) ]))

let test_first_difference_rules () =
  (* Reverse order on sites at the first difference... *)
  checkb "larger site is smaller" true (lt (ts [ (5, 9) ]) (ts [ (2, 0) ]));
  (* ...but forward order on counters. *)
  checkb "smaller counter is smaller" true (lt (ts [ (2, 1) ]) (ts [ (2, 3) ]));
  checkb "equal" true (Timestamp.equal (ts [ (2, 1); (4, 0) ]) (ts [ (2, 1); (4, 0) ]))

let test_epoch_dominates () =
  checkb "bigger epoch wins" true (lt (ts ~epoch:0 [ (1, 99) ]) (ts ~epoch:1 [ (9, 0) ]));
  checkb "same epoch falls through" true (lt (ts ~epoch:2 [ (1, 1) ]) (ts ~epoch:2 [ (1, 2) ]))

let test_initial_and_bump () =
  let t0 = Timestamp.initial 3 in
  checkb "well formed" true (Timestamp.well_formed t0);
  checkb "initial" true (Timestamp.equal t0 (ts [ (3, 0) ]));
  let t1 = Timestamp.bump_own t0 3 in
  checkb "bumped" true (Timestamp.equal t1 (ts [ (3, 1) ]));
  checkb "monotone" true (lt t0 t1);
  Alcotest.check_raises "bump wrong site"
    (Invalid_argument "Timestamp.bump_own: site tuple is not last") (fun () ->
      ignore (Timestamp.bump_own (ts [ (1, 0); (2, 0) ]) 1))

let test_concat () =
  let t = Timestamp.concat (ts ~epoch:4 [ (1, 2) ]) ~site:3 ~lts:7 in
  checkb "appended" true (Timestamp.equal t (ts ~epoch:4 [ (1, 2); (3, 7) ]));
  checkb "well formed" true (Timestamp.well_formed t);
  Alcotest.check_raises "order violation" (Invalid_argument "Timestamp.concat: site order violated")
    (fun () -> ignore (Timestamp.concat (ts [ (3, 0) ]) ~site:2 ~lts:0))

let test_with_epoch () =
  let t = Timestamp.with_epoch (ts [ (1, 1) ]) 9 in
  Alcotest.(check int) "epoch set" 9 (Timestamp.epoch t)

(* Site-timestamp evolution: committing a secondary with a larger timestamp
   always advances the site timestamp (the monotonicity DAG(T) relies on). *)
let test_site_evolution_monotone () =
  let site = 5 in
  let site_ts = ref (Timestamp.initial site) in
  let apply_secondary txn_ts =
    let next = Timestamp.concat txn_ts ~site ~lts:1 in
    checkb "site ts grows" true (lt !site_ts next);
    site_ts := next
  in
  site_ts := Timestamp.bump_own !site_ts site;
  apply_secondary (ts [ (1, 1) ]);
  apply_secondary (ts [ (1, 1); (2, 1) ]);
  apply_secondary (ts [ (1, 2) ])

let gen_timestamp =
  QCheck2.Gen.(
    let gen_tuples =
      bind (int_range 1 4) (fun len ->
          (* Strictly increasing sites. *)
          map
            (fun lts_list ->
              List.mapi (fun i lts -> (2 * i, lts)) (List.filteri (fun i _ -> i < len) lts_list))
            (list_size (return 4) (int_range 0 3)))
    in
    map2 (fun epoch tuples -> ts ~epoch tuples) (int_range 0 2) gen_tuples)

let prop_total_order =
  QCheck2.Test.make ~name:"compare is a total order (antisym + total)" ~count:1000
    QCheck2.Gen.(pair gen_timestamp gen_timestamp)
    (fun (a, b) ->
      let c1 = Timestamp.compare a b and c2 = Timestamp.compare b a in
      (c1 = 0 && c2 = 0 && Timestamp.equal a b) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_transitive =
  QCheck2.Test.make ~name:"compare is transitive" ~count:1000
    QCheck2.Gen.(triple gen_timestamp gen_timestamp gen_timestamp)
    (fun (a, b, c) ->
      let sorted = List.sort Timestamp.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Timestamp.compare x y <= 0 && Timestamp.compare y z <= 0 && Timestamp.compare x z <= 0
      | _ -> false)

let prop_concat_grows =
  QCheck2.Test.make ~name:"concat yields a larger timestamp" ~count:500 gen_timestamp
    (fun t ->
      if not (Timestamp.well_formed t) then QCheck2.assume_fail ()
      else
        let last_site = List.fold_left (fun _ tup -> tup.Timestamp.site) 0 (Timestamp.tuples t) in
        let t' = Timestamp.concat t ~site:(last_site + 1) ~lts:0 in
        lt t t' && Timestamp.well_formed t')

let () =
  Alcotest.run "timestamp"
    [
      ( "timestamp",
        [
          Alcotest.test_case "definition 3.3 examples" `Quick test_definition_examples;
          Alcotest.test_case "first difference rules" `Quick test_first_difference_rules;
          Alcotest.test_case "epoch dominates" `Quick test_epoch_dominates;
          Alcotest.test_case "initial and bump" `Quick test_initial_and_bump;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "with_epoch" `Quick test_with_epoch;
          Alcotest.test_case "site evolution monotone" `Quick test_site_evolution_monotone;
          QCheck_alcotest.to_alcotest prop_total_order;
          QCheck_alcotest.to_alcotest prop_transitive;
          QCheck_alcotest.to_alcotest prop_concat_grows;
        ] );
    ]

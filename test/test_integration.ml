(* End-to-end integration tests: full driver runs for every protocol on
   randomized small workloads, checking serializability, convergence,
   quiescence, metric accounting and determinism. *)

module Txn = Repdb_txn.Txn
module Serializability = Repdb_txn.Serializability
module Params = Repdb_workload.Params
module Driver = Repdb.Driver
module Protocol = Repdb.Protocol

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let small_params ?(seed = 1) ?(b = 0.0) ?(r = 0.3) ?(m = 4) () =
  {
    Params.default with
    n_sites = m;
    n_items = 24;
    replication_prob = r;
    backedge_prob = b;
    threads_per_site = 2;
    txns_per_thread = 12;
    record_history = true;
    seed;
  }

let is_serializable (r : Driver.report) =
  match r.serializability with
  | Some Serializability.Serializable -> true
  | Some (Serializability.Not_serializable _) -> false
  | None -> Alcotest.fail "history was not recorded"

let converged (r : Driver.report) =
  match r.divergent with Some [] -> true | Some _ -> false | None -> true

let check_accounting params (r : Driver.report) =
  let total = params.Params.n_sites * params.threads_per_site * params.txns_per_thread in
  checki "every attempt accounted" total (r.summary.commits + r.summary.aborts);
  checkb "responses non-negative" true (r.summary.avg_response >= 0.0);
  checkb "duration positive" true (r.summary.duration > 0.0)

(* DAG-only protocols run with b = 0 over many seeds. *)
let test_dag_protocols_randomized () =
  List.iter
    (fun proto ->
      for seed = 1 to 8 do
        let params = small_params ~seed () in
        let r = Driver.run params proto in
        checkb (Protocol.name proto ^ " serializable") true (is_serializable r);
        checkb (Protocol.name proto ^ " converged") true (converged r);
        check_accounting params r
      done)
    [ (module Repdb.Dag_wt : Protocol.S); (module Repdb.Dag_t : Protocol.S);
      Repdb.Registry.dag_t_pipelined ]

(* Cyclic-graph-safe protocols run with random backedge probabilities. *)
let test_cyclic_protocols_randomized () =
  List.iter
    (fun proto ->
      for seed = 1 to 8 do
        let b = float_of_int (seed mod 5) /. 4.0 in
        let params = small_params ~seed ~b ~r:0.4 () in
        let r = Driver.run params proto in
        checkb (Protocol.name proto ^ " serializable") true (is_serializable r);
        checkb (Protocol.name proto ^ " converged") true (converged r);
        check_accounting params r
      done)
    [ (module Repdb.Backedge_proto : Protocol.S); Repdb.Registry.backedge_general;
      (module Repdb.Psl : Protocol.S); (module Repdb.Lazy_master : Protocol.S);
      (module Repdb.Central : Protocol.S); (module Repdb.Eager : Protocol.S) ]

(* Indiscriminate propagation must eventually produce a violation. *)
let test_naive_violates_somewhere () =
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 10 do
    incr seed;
    let params =
      { (small_params ~seed:!seed ~r:0.5 ()) with Params.txns_per_thread = 40; threads_per_site = 3 }
    in
    let r = Driver.run params (module Repdb.Naive) in
    if not (is_serializable r) then found := true
  done;
  checkb "violation found within 10 seeds" true !found;
  (* But replicas still converge even for naive. *)
  let r = Driver.run (small_params ~seed:3 ~r:0.5 ()) (module Repdb.Naive) in
  checkb "naive converges" true (converged r)

let test_backedge_equals_dag_wt_on_dags () =
  (* Section 4: "if the copy graph is a DAG ... the BackEdge protocol reduces
     to the DAG(WT) protocol". With the same chain tree the two must produce
     bit-identical runs. *)
  let params = { (small_params ~seed:9 ()) with Params.n_sites = 4 } in
  (* DAG(WT) picks Tree.of_dag; force both onto the identity chain by running
     BackEdge (always the chain) against Dag_wt on a chain tree. *)
  let run_backedge () = Driver.run params (module Repdb.Backedge_proto) in
  let run_dag_wt () =
    let c = Repdb.Cluster.create params in
    let chain = Repdb_graph.Tree.chain_of_order (Array.init params.Params.n_sites Fun.id) in
    let module Chain_wt = struct
      type t = Repdb.Dag_wt.t

      let name = "dag-wt"
      let updates_replicas = true
      let create c = Repdb.Dag_wt.create_with_tree c chain
      let submit = Repdb.Dag_wt.submit
      let reconfigure = Repdb.Dag_wt.reconfigure
    end in
    Driver.run_on c (module Chain_wt)
  in
  let be = run_backedge () and wt = run_dag_wt () in
  checki "same commits" wt.summary.commits be.summary.commits;
  checki "same aborts" wt.summary.aborts be.summary.aborts;
  checkb "same duration" true (wt.summary.duration = be.summary.duration);
  checkb "same propagation" true (wt.summary.avg_propagation = be.summary.avg_propagation)

let test_determinism () =
  let params = small_params ~seed:5 ~b:0.3 ~r:0.4 () in
  let r1 = Driver.run params (module Repdb.Backedge_proto) in
  let r2 = Driver.run params (module Repdb.Backedge_proto) in
  checki "same commits" r1.summary.commits r2.summary.commits;
  checki "same aborts" r1.summary.aborts r2.summary.aborts;
  checki "same messages" r1.summary.messages r2.summary.messages;
  checkb "same sim time" true (r1.sim_time = r2.sim_time);
  checki "same events" r1.sim_events r2.sim_events

let test_seed_changes_run () =
  let r1 = Driver.run (small_params ~seed:1 ()) (module Repdb.Dag_wt) in
  let r2 = Driver.run (small_params ~seed:2 ()) (module Repdb.Dag_wt) in
  checkb "different seeds differ" true (r1.sim_events <> r2.sim_events)

let test_retry_mode () =
  (* With retries on, every logical transaction eventually commits. *)
  let params = { (small_params ~seed:4 ~b:0.5 ~r:0.5 ()) with Params.retry = Params.default_backoff } in
  let r = Driver.run params (module Repdb.Backedge_proto) in
  let total = params.Params.n_sites * params.threads_per_site * params.txns_per_thread in
  checki "all logical txns commit" total r.summary.commits;
  checkb "still serializable" true (is_serializable r)

let test_report_fields () =
  let params = small_params ~seed:6 ~b:0.5 ~r:0.5 () in
  let r = Driver.run params (module Repdb.Backedge_proto) in
  checkb "copy graph has edges" true (r.copy_graph_edges > 0);
  checkb "backedges present at b=0.5" true (r.n_backedges > 0);
  checkb "replicas counted" true (r.n_replicas > 0);
  checkb "lock stats recorded" true (r.lock_stats.acquires > 0);
  checkb "events executed" true (r.sim_events > 0);
  Alcotest.(check string) "protocol name" "backedge" r.protocol

let test_read_only_workload_no_messages () =
  (* All-read workloads never propagate anything under the lazy protocols. *)
  let params = { (small_params ~seed:7 ()) with Params.read_txn_prob = 1.0 } in
  List.iter
    (fun proto ->
      let r = Driver.run params proto in
      checki (Protocol.name proto ^ " aborts") 0 r.summary.aborts;
      checkb
        (Protocol.name proto ^ " no real propagation")
        true
        (r.summary.n_propagations = 0))
    [ (module Repdb.Dag_wt : Protocol.S); (module Repdb.Naive : Protocol.S) ]

let test_single_site_degenerates () =
  (* m = 1: no replication, no messages, everything commits locally. *)
  let params = { (small_params ~m:1 ~r:0.0 ()) with Params.n_machines = 1 } in
  List.iter
    (fun proto ->
      let r = Driver.run params proto in
      checki (Protocol.name proto ^ " no messages") 0 r.summary.messages;
      checkb (Protocol.name proto ^ " serializable") true (is_serializable r))
    Repdb.Registry.all

let test_metrics_throughput_consistency () =
  let params = small_params ~seed:8 () in
  let r = Driver.run params (module Repdb.Dag_wt) in
  let expected = float_of_int r.summary.commits /. (r.summary.duration /. 1000.0) in
  Alcotest.(check (float 1e-6)) "throughput formula" expected r.summary.throughput;
  Alcotest.(check (float 1e-6))
    "per-site split" (expected /. float_of_int params.Params.n_sites)
    r.summary.throughput_per_site

let test_registry () =
  checki "ten protocols" 10 (List.length Repdb.Registry.all);
  checki "eight cyclic safe" 8 (List.length Repdb.Registry.cyclic_safe);
  checkb "find psl" true (Repdb.Registry.find "psl" <> None);
  checkb "find general variant" true (Repdb.Registry.find "backedge-gen" <> None);
  checkb "find pipelined dag-t" true (Repdb.Registry.find "dag-t-mc" <> None);
  checkb "find unknown" true (Repdb.Registry.find "nonesuch" = None);
  Alcotest.(check (list string))
    "names"
    [ "dag-wt"; "dag-t"; "backedge"; "psl"; "lazy-master"; "central"; "eager"; "naive";
      "occ-epoch"; "ssi"; "backedge-gen"; "dag-t-mc" ]
    Repdb.Registry.names

let () =
  Alcotest.run "integration"
    [
      ( "randomized",
        [
          Alcotest.test_case "dag protocols" `Slow test_dag_protocols_randomized;
          Alcotest.test_case "cyclic protocols" `Slow test_cyclic_protocols_randomized;
          Alcotest.test_case "naive violates" `Slow test_naive_violates_somewhere;
        ] );
      ( "driver",
        [
          Alcotest.test_case "backedge = dag-wt on DAGs" `Quick test_backedge_equals_dag_wt_on_dags;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_run;
          Alcotest.test_case "retry mode" `Quick test_retry_mode;
          Alcotest.test_case "report fields" `Quick test_report_fields;
          Alcotest.test_case "read-only workload" `Quick test_read_only_workload_no_messages;
          Alcotest.test_case "single site" `Quick test_single_site_degenerates;
          Alcotest.test_case "metrics consistency" `Quick test_metrics_throughput_consistency;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
    ]

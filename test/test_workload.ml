(* Tests for parameters, data distribution and transaction generation. *)

module Rng = Repdb_sim.Rng
module Digraph = Repdb_graph.Digraph
module Txn = Repdb_txn.Txn
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Generator = Repdb_workload.Generator

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let d = Params.default

let test_validate () =
  Params.validate d;
  let bad name p = Alcotest.check_raises name (Invalid_argument "") (fun () -> Params.validate p) in
  let check_invalid name p =
    match Params.validate p with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  ignore bad;
  check_invalid "negative sites" { d with n_sites = 0 };
  check_invalid "bad prob" { d with replication_prob = 1.5 };
  check_invalid "bad read prob" { d with read_op_prob = -0.1 };
  check_invalid "bad timeout" { d with lock_timeout = 0.0 };
  check_invalid "bad cpu" { d with cpu_op = -1.0 }

let test_table1 () =
  let rows = Params.table1 d in
  checki "12 parameter rows" 12 (List.length rows);
  let name, symbol, value, range = List.hd rows in
  Alcotest.(check string) "first row name" "Number of Sites" name;
  Alcotest.(check string) "symbol" "m" symbol;
  Alcotest.(check string) "default" "9" value;
  Alcotest.(check string) "range" "3 - 15" range

let test_primary_round_robin () =
  let p = { d with Params.n_sites = 4; n_items = 10 } in
  let pl = Placement.generate (Rng.create 1) p in
  for item = 0 to 9 do
    checki "round robin" (item mod 4) pl.Placement.primary.(item)
  done;
  checki "primaries at site 0" 3 (List.length (Placement.primaries_at pl 0));
  checki "primaries at site 3" 2 (List.length (Placement.primaries_at pl 3))

let test_no_replication () =
  let p = { d with Params.replication_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 2) p in
  checki "no replicas" 0 (Placement.n_replicas pl);
  checki "no copy-graph edges" 0 (Digraph.n_edges (Placement.copy_graph pl));
  Alcotest.(check (list (pair int int))) "no backedges" [] (Placement.backedges pl)

let test_full_forward_replication () =
  (* r=1, s=1, b=0: every item is replicated at every following site. *)
  let p = { d with Params.n_sites = 4; n_items = 8; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 3) p in
  for item = 0 to 7 do
    let si = pl.Placement.primary.(item) in
    let expected = List.init (4 - si - 1) (fun k -> si + 1 + k) in
    Alcotest.(check (list int)) "following sites" expected pl.Placement.replicas.(item)
  done;
  Alcotest.(check (list (pair int int))) "still no backedges" [] (Placement.backedges pl)

let test_backedges_appear () =
  let p = { d with Params.n_sites = 4; n_items = 8; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 1.0 } in
  let pl = Placement.generate (Rng.create 4) p in
  (* With all sites candidates and s=1, every non-primary site replicates
     every item, so every backward pair is a backedge. *)
  checki "replicas everywhere" (8 * 3) (Placement.n_replicas pl);
  checki "backedges" 6 (List.length (Placement.backedges pl));
  checkb "copy graph cyclic" false (Digraph.is_dag (Placement.copy_graph pl))

let test_placement_queries () =
  let p = { d with Params.n_sites = 3; n_items = 6; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 5) p in
  checkb "primary is a copy" true (Placement.has_copy pl ~site:0 0);
  checkb "replica is a copy" true (Placement.has_copy pl ~site:2 0);
  checkb "is_primary" true (Placement.is_primary pl ~site:0 0);
  checkb "replica not primary" false (Placement.is_primary pl ~site:2 0);
  Alcotest.(check (list int)) "placed at last site" [ 0; 1; 2; 3; 4; 5 ] (Placement.placed_at pl 2);
  (* Items whose primary is the last site have no following candidates at
     b = 0, so they stay unreplicated. *)
  checki "replicated items" 4 (Placement.n_replicated_items pl)

let test_copy_graph_edges () =
  let p = { d with Params.n_sites = 3; n_items = 3; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 6) p in
  let g = Placement.copy_graph pl in
  (* Item 0 at site 0 -> replicas at 1, 2; item 1 at 1 -> 2; item 2 at 2 -> none. *)
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (1, 2) ] (Digraph.edges g)

let make_gen ?(p = d) seed =
  let rng = Rng.create seed in
  let pl = Placement.generate rng p in
  (Generator.create rng p pl, pl)

let test_gen_structure () =
  let gen, _ = make_gen 7 in
  let rng = Rng.create 100 in
  for site = 0 to d.Params.n_sites - 1 do
    let spec = Generator.gen_with gen rng ~site in
    checki "origin" site spec.Txn.origin;
    checki "ops per txn" d.Params.ops_per_txn (List.length spec.Txn.ops)
  done

let test_gen_pools () =
  let gen, pl = make_gen 8 in
  let rng = Rng.create 101 in
  for _ = 1 to 50 do
    let site = Rng.int rng d.Params.n_sites in
    let spec = Generator.gen_with gen rng ~site in
    List.iter
      (function
        | Txn.Read item -> checkb "read placed here" true (Placement.has_copy pl ~site item)
        | Txn.Write item -> checkb "write is local primary" true (Placement.is_primary pl ~site item))
      spec.Txn.ops
  done

let test_gen_read_only () =
  let p = { d with Params.read_txn_prob = 1.0 } in
  let gen, _ = make_gen ~p 9 in
  let rng = Rng.create 102 in
  for _ = 1 to 20 do
    checkb "all reads" true (Txn.is_read_only (Generator.gen_with gen rng ~site:0))
  done

let test_gen_write_heavy () =
  let p = { d with Params.read_txn_prob = 0.0; read_op_prob = 0.0 } in
  let gen, _ = make_gen ~p 10 in
  let rng = Rng.create 103 in
  let spec = Generator.gen_with gen rng ~site:0 in
  checkb "all writes" true (List.for_all (function Txn.Write _ -> true | Txn.Read _ -> false) spec.Txn.ops)

let test_gen_distinct_sorted () =
  let gen, _ = make_gen 11 in
  let rng = Rng.create 104 in
  for _ = 1 to 50 do
    let spec = Generator.gen_with gen rng ~site:1 in
    let items = List.map (function Txn.Read i | Txn.Write i -> i) spec.Txn.ops in
    Alcotest.(check (list int)) "sorted distinct items" (List.sort_uniq compare items) items
  done

let test_gen_deterministic () =
  let gen, _ = make_gen 12 in
  let a = Generator.gen_with gen (Rng.create 7) ~site:2 in
  let gen2, _ = make_gen 12 in
  let b = Generator.gen_with gen2 (Rng.create 7) ~site:2 in
  checkb "same seed same txn" true (a = b)

let test_gen_hotspot () =
  (* With hot_access_prob = 1 every op lands in the first 20% of the pool. *)
  let p = { d with Params.hot_access_prob = 1.0; hot_item_fraction = 0.2; read_txn_prob = 1.0 } in
  let gen, pl = make_gen ~p 14 in
  let rng = Rng.create 106 in
  let pool = Array.of_list (Placement.placed_at pl 0) in
  let hot = max 1 (int_of_float (ceil (0.2 *. float_of_int (Array.length pool)))) in
  for _ = 1 to 30 do
    let spec = Generator.gen_with gen rng ~site:0 in
    List.iter
      (function
        | Txn.Read item | Txn.Write item ->
            let pos = ref (-1) in
            Array.iteri (fun i x -> if x = item then pos := i) pool;
            checkb "item in hot prefix" true (!pos >= 0 && !pos < hot))
      spec.Txn.ops
  done

let test_hotspot_validation () =
  (match Params.validate { d with Params.hot_access_prob = 0.5; hot_item_fraction = 0.0 } with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  match Params.validate { d with Params.straggler_factor = 0.5 } with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_gen_empty_site () =
  (* One item, three sites: sites 1 and 2 hold nothing when r = 0. *)
  let p = { d with Params.n_sites = 3; n_items = 1; replication_prob = 0.0 } in
  let gen, _ = make_gen ~p 13 in
  let rng = Rng.create 105 in
  let spec = Generator.gen_with gen rng ~site:1 in
  Alcotest.(check (list Alcotest.reject)) "empty txn" [] (List.map (fun _ -> ()) spec.Txn.ops)

let () =
  Alcotest.run "workload"
    [
      ( "params",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "table1" `Quick test_table1;
        ] );
      ( "placement",
        [
          Alcotest.test_case "round robin primaries" `Quick test_primary_round_robin;
          Alcotest.test_case "no replication" `Quick test_no_replication;
          Alcotest.test_case "forward replication" `Quick test_full_forward_replication;
          Alcotest.test_case "backedges appear" `Quick test_backedges_appear;
          Alcotest.test_case "queries" `Quick test_placement_queries;
          Alcotest.test_case "copy graph" `Quick test_copy_graph_edges;
        ] );
      ( "generator",
        [
          Alcotest.test_case "structure" `Quick test_gen_structure;
          Alcotest.test_case "pools" `Quick test_gen_pools;
          Alcotest.test_case "read only" `Quick test_gen_read_only;
          Alcotest.test_case "write heavy" `Quick test_gen_write_heavy;
          Alcotest.test_case "distinct sorted" `Quick test_gen_distinct_sorted;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "hotspot" `Quick test_gen_hotspot;
          Alcotest.test_case "hotspot/straggler validation" `Quick test_hotspot_validation;
          Alcotest.test_case "empty site" `Quick test_gen_empty_site;
        ] );
    ]

(* Tests for parameters, data distribution and transaction generation. *)

module Rng = Repdb_sim.Rng
module Digraph = Repdb_graph.Digraph
module Txn = Repdb_txn.Txn
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Generator = Repdb_workload.Generator

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let d = Params.default

let test_validate () =
  Params.validate d;
  let bad name p = Alcotest.check_raises name (Invalid_argument "") (fun () -> Params.validate p) in
  let check_invalid name p =
    match Params.validate p with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  ignore bad;
  check_invalid "negative sites" { d with n_sites = 0 };
  check_invalid "bad prob" { d with replication_prob = 1.5 };
  check_invalid "bad read prob" { d with read_op_prob = -0.1 };
  check_invalid "bad timeout" { d with lock_timeout = 0.0 };
  check_invalid "bad cpu" { d with cpu_op = -1.0 }

let test_table1 () =
  let rows = Params.table1 d in
  checki "12 parameter rows" 12 (List.length rows);
  let name, symbol, value, range = List.hd rows in
  Alcotest.(check string) "first row name" "Number of Sites" name;
  Alcotest.(check string) "symbol" "m" symbol;
  Alcotest.(check string) "default" "9" value;
  Alcotest.(check string) "range" "3 - 15" range

let test_primary_round_robin () =
  let p = { d with Params.n_sites = 4; n_items = 10 } in
  let pl = Placement.generate (Rng.create 1) p in
  for item = 0 to 9 do
    checki "round robin" (item mod 4) pl.Placement.primary.(item)
  done;
  checki "primaries at site 0" 3 (Array.length (Placement.primaries_at pl 0));
  checki "primaries at site 3" 2 (Array.length (Placement.primaries_at pl 3))

let test_no_replication () =
  let p = { d with Params.replication_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 2) p in
  checki "no replicas" 0 (Placement.n_replicas pl);
  checki "no copy-graph edges" 0 (Digraph.n_edges (Placement.copy_graph pl));
  Alcotest.(check (list (pair int int))) "no backedges" [] (Placement.backedges pl)

let test_full_forward_replication () =
  (* r=1, s=1, b=0: every item is replicated at every following site. *)
  let p = { d with Params.n_sites = 4; n_items = 8; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 3) p in
  for item = 0 to 7 do
    let si = pl.Placement.primary.(item) in
    let expected = List.init (4 - si - 1) (fun k -> si + 1 + k) in
    Alcotest.(check (list int)) "following sites" expected (Array.to_list pl.Placement.replicas.(item))
  done;
  Alcotest.(check (list (pair int int))) "still no backedges" [] (Placement.backedges pl)

let test_backedges_appear () =
  let p = { d with Params.n_sites = 4; n_items = 8; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 1.0 } in
  let pl = Placement.generate (Rng.create 4) p in
  (* With all sites candidates and s=1, every non-primary site replicates
     every item, so every backward pair is a backedge. *)
  checki "replicas everywhere" (8 * 3) (Placement.n_replicas pl);
  checki "backedges" 6 (List.length (Placement.backedges pl));
  checkb "copy graph cyclic" false (Digraph.is_dag (Placement.copy_graph pl))

let test_placement_queries () =
  let p = { d with Params.n_sites = 3; n_items = 6; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 5) p in
  checkb "primary is a copy" true (Placement.has_copy pl ~site:0 0);
  checkb "replica is a copy" true (Placement.has_copy pl ~site:2 0);
  checkb "is_primary" true (Placement.is_primary pl ~site:0 0);
  checkb "replica not primary" false (Placement.is_primary pl ~site:2 0);
  Alcotest.(check (list int)) "placed at last site" [ 0; 1; 2; 3; 4; 5 ]
    (Array.to_list (Placement.placed_at pl 2));
  (* Items whose primary is the last site have no following candidates at
     b = 0, so they stay unreplicated. *)
  checki "replicated items" 4 (Placement.n_replicated_items pl)

let test_copy_graph_edges () =
  let p = { d with Params.n_sites = 3; n_items = 3; replication_prob = 1.0; site_prob = 1.0; backedge_prob = 0.0 } in
  let pl = Placement.generate (Rng.create 6) p in
  let g = Placement.copy_graph pl in
  (* Item 0 at site 0 -> replicas at 1, 2; item 1 at 1 -> 2; item 2 at 2 -> none. *)
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (1, 2) ] (Digraph.edges g)

let make_gen ?(p = d) seed =
  let rng = Rng.create seed in
  let pl = Placement.generate rng p in
  (Generator.create rng p pl, pl)

let test_gen_structure () =
  let gen, _ = make_gen 7 in
  let rng = Rng.create 100 in
  for site = 0 to d.Params.n_sites - 1 do
    let spec = Generator.gen_with gen rng ~site in
    checki "origin" site spec.Txn.origin;
    checki "ops per txn" d.Params.ops_per_txn (List.length spec.Txn.ops)
  done

let test_gen_pools () =
  let gen, pl = make_gen 8 in
  let rng = Rng.create 101 in
  for _ = 1 to 50 do
    let site = Rng.int rng d.Params.n_sites in
    let spec = Generator.gen_with gen rng ~site in
    List.iter
      (function
        | Txn.Read item -> checkb "read placed here" true (Placement.has_copy pl ~site item)
        | Txn.Write item -> checkb "write is local primary" true (Placement.is_primary pl ~site item))
      spec.Txn.ops
  done

let test_gen_read_only () =
  let p = { d with Params.read_txn_prob = 1.0 } in
  let gen, _ = make_gen ~p 9 in
  let rng = Rng.create 102 in
  for _ = 1 to 20 do
    checkb "all reads" true (Txn.is_read_only (Generator.gen_with gen rng ~site:0))
  done

let test_gen_write_heavy () =
  let p = { d with Params.read_txn_prob = 0.0; read_op_prob = 0.0 } in
  let gen, _ = make_gen ~p 10 in
  let rng = Rng.create 103 in
  let spec = Generator.gen_with gen rng ~site:0 in
  checkb "all writes" true (List.for_all (function Txn.Write _ -> true | Txn.Read _ -> false) spec.Txn.ops)

let test_gen_distinct_sorted () =
  let gen, _ = make_gen 11 in
  let rng = Rng.create 104 in
  for _ = 1 to 50 do
    let spec = Generator.gen_with gen rng ~site:1 in
    let items = List.map (function Txn.Read i | Txn.Write i -> i) spec.Txn.ops in
    Alcotest.(check (list int)) "sorted distinct items" (List.sort_uniq compare items) items
  done

let test_gen_deterministic () =
  let gen, _ = make_gen 12 in
  let a = Generator.gen_with gen (Rng.create 7) ~site:2 in
  let gen2, _ = make_gen 12 in
  let b = Generator.gen_with gen2 (Rng.create 7) ~site:2 in
  checkb "same seed same txn" true (a = b)

let test_gen_hotspot () =
  (* With hot_access_prob = 1 every op lands in the first 20% of the pool. *)
  let p = { d with Params.hot_access_prob = 1.0; hot_item_fraction = 0.2; read_txn_prob = 1.0 } in
  let gen, pl = make_gen ~p 14 in
  let rng = Rng.create 106 in
  let pool = Placement.placed_at pl 0 in
  let hot = max 1 (int_of_float (ceil (0.2 *. float_of_int (Array.length pool)))) in
  for _ = 1 to 30 do
    let spec = Generator.gen_with gen rng ~site:0 in
    List.iter
      (function
        | Txn.Read item | Txn.Write item ->
            let pos = ref (-1) in
            Array.iteri (fun i x -> if x = item then pos := i) pool;
            checkb "item in hot prefix" true (!pos >= 0 && !pos < hot))
      spec.Txn.ops
  done

let test_hotspot_validation () =
  (match Params.validate { d with Params.hot_access_prob = 0.5; hot_item_fraction = 0.0 } with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  match Params.validate { d with Params.straggler_factor = 0.5 } with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_gen_empty_site () =
  (* One item, three sites: sites 1 and 2 hold nothing when r = 0. *)
  let p = { d with Params.n_sites = 3; n_items = 1; replication_prob = 0.0 } in
  let gen, _ = make_gen ~p 13 in
  let rng = Rng.create 105 in
  let spec = Generator.gen_with gen rng ~site:1 in
  Alcotest.(check (list Alcotest.reject)) "empty txn" [] (List.map (fun _ -> ()) spec.Txn.ops)

(* --- compact representation vs. list-based reference ---------------------- *)

module Reconfig = Repdb_reconfig.Reconfig

(* A transparent list-based model of every placement query: the
   representation the compact sorted-array/bitset layout replaced. Small and
   obviously correct, so the QCheck tests below can pin the compact
   structures against it on random placements and reconfiguration
   sequences. *)
module Ref_model = struct
  type t = { m : int; n : int; primary : int array; replicas : int list array }

  let make ~n_sites ~n_items ~primary ~replicas =
    let replicas =
      Array.mapi
        (fun item l -> List.sort_uniq compare (List.filter (fun s -> s <> primary.(item)) l))
        replicas
    in
    { m = n_sites; n = n_items; primary; replicas }

  let has_copy t ~site item = t.primary.(item) = site || List.mem site t.replicas.(item)
  let has_replica t ~site item = List.mem site t.replicas.(item)
  let placed_at t site = List.filter (fun item -> has_copy t ~site item) (List.init t.n Fun.id)

  let primaries_at t site =
    List.filter (fun item -> t.primary.(item) = site) (List.init t.n Fun.id)

  let edges t =
    let tbl = Hashtbl.create 16 in
    Array.iteri
      (fun item u -> List.iter (fun v -> Hashtbl.replace tbl (u, v) ()) t.replicas.(item))
      t.primary;
    List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) tbl [])

  let backedges t = List.filter (fun (u, v) -> v < u) (edges t)

  let apply_step t (step : Reconfig.step) =
    let upd f = { t with replicas = Array.mapi f t.replicas } in
    match step with
    | Reconfig.Add_replica { item; site } ->
        if site = t.primary.(item) then t
        else upd (fun i l -> if i = item then List.sort_uniq compare (site :: l) else l)
    | Reconfig.Drop_replica { item; site } ->
        upd (fun i l -> if i = item then List.filter (fun s -> s <> site) l else l)
    | Reconfig.Rebalance_site { from_site; to_site } ->
        upd (fun item l ->
            if List.mem from_site l then
              let l = List.filter (fun s -> s <> from_site) l in
              if to_site = t.primary.(item) then l else List.sort_uniq compare (to_site :: l)
            else l)
end

(* Compact placement and reference agree on every query. *)
let agrees (rm : Ref_model.t) (pl : Placement.t) =
  let ok = ref true in
  let chk b = if not b then ok := false in
  for site = 0 to rm.m - 1 do
    chk (Ref_model.placed_at rm site = Array.to_list (Placement.placed_at pl site));
    chk (Ref_model.primaries_at rm site = Array.to_list (Placement.primaries_at pl site));
    for item = 0 to rm.n - 1 do
      chk (Ref_model.has_copy rm ~site item = Placement.has_copy pl ~site item);
      chk (Ref_model.has_replica rm ~site item = Placement.has_replica pl ~site item);
      let idx = Placement.placed_index pl ~site item in
      chk
        (if Ref_model.has_copy rm ~site item then (Placement.placed_at pl site).(idx) = item
         else idx = -1)
    done
  done;
  chk (Ref_model.edges rm = List.sort compare (Digraph.edges (Placement.copy_graph pl)));
  chk (Ref_model.backedges rm = List.sort compare (Placement.backedges pl));
  !ok

(* Raw placement input: primaries and replica site lists, both arbitrary
   (duplicates, the primary itself — [make] must normalize). *)
let gen_raw =
  QCheck.Gen.(
    2 -- 6 >>= fun m ->
    1 -- 25 >>= fun n ->
    array_repeat n (0 -- (m - 1)) >>= fun primary ->
    array_repeat n (list_size (0 -- (2 * m)) (0 -- (m - 1))) >>= fun replicas ->
    return (m, n, primary, replicas))

let arb_raw = QCheck.make ~print:(fun (m, n, _, _) -> Printf.sprintf "%d sites, %d items" m n) gen_raw

let test_compact_equivalence =
  QCheck.Test.make ~name:"compact placement matches list-based reference" ~count:300 arb_raw
    (fun (m, n, primary, replicas) ->
      let rm = Ref_model.make ~n_sites:m ~n_items:n ~primary ~replicas in
      let pl = Placement.make ~n_sites:m ~n_items:n ~primary ~replicas in
      agrees rm pl)

(* Random step sequences: the incremental [apply_step] must stay equivalent
   to the reference at every intermediate placement, not just the last. *)
let gen_steps =
  QCheck.Gen.(
    pair gen_raw
      (list_size (0 -- 12)
         (triple (0 -- 2) (pair small_nat small_nat) small_nat)))

let arb_steps =
  QCheck.make
    ~print:(fun ((m, n, _, _), steps) ->
      Printf.sprintf "%d sites, %d items, %d steps" m n (List.length steps))
    gen_steps

let test_compact_apply_step =
  QCheck.Test.make ~name:"incremental apply_step matches reference" ~count:300 arb_steps
    (fun ((m, n, primary, replicas), raw_steps) ->
      let to_step (kind, (a, b), c) =
        match kind with
        | 0 -> Reconfig.Add_replica { item = a mod n; site = b mod m }
        | 1 -> Reconfig.Drop_replica { item = a mod n; site = b mod m }
        | _ ->
            let from_site = a mod m in
            let to_site = (from_site + 1 + (c mod (max 1 (m - 1)))) mod m in
            Reconfig.Rebalance_site { from_site; to_site }
      in
      let rm = ref (Ref_model.make ~n_sites:m ~n_items:n ~primary ~replicas) in
      let pl = ref (Placement.make ~n_sites:m ~n_items:n ~primary ~replicas) in
      List.for_all
        (fun raw ->
          let step = to_step raw in
          rm := Ref_model.apply_step !rm step;
          pl := Placement.apply_step !pl step;
          agrees !rm !pl)
        raw_steps)

(* Even a pool tiny enough to defeat resampling must never yield a
   transaction touching the same item twice (a Read + Write pair upgrades
   and deadlocks; see the dedup pass in [Generator.gen_with]). *)
let test_gen_distinct_tiny_pool =
  QCheck.Test.make ~name:"generated txns have distinct items even with tiny pools" ~count:200
    QCheck.(pair (1 -- 3) small_nat)
    (fun (n_items, seed) ->
      let p =
        {
          d with
          Params.n_sites = 2;
          n_items;
          ops_per_txn = 8;
          replication_prob = 1.0;
          site_prob = 1.0;
          read_txn_prob = 0.3;
          read_op_prob = 0.5;
        }
      in
      let gen, _ = make_gen ~p (seed + 1) in
      let rng = Rng.create (seed + 1000) in
      List.for_all
        (fun site ->
          List.for_all
            (fun _ ->
              let spec = Generator.gen_with gen rng ~site in
              let items = List.map (function Txn.Read i | Txn.Write i -> i) spec.Txn.ops in
              List.sort_uniq compare items = items)
            (List.init 20 Fun.id))
        [ 0; 1 ])

let () =
  Alcotest.run "workload"
    [
      ( "params",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "table1" `Quick test_table1;
        ] );
      ( "placement",
        [
          Alcotest.test_case "round robin primaries" `Quick test_primary_round_robin;
          Alcotest.test_case "no replication" `Quick test_no_replication;
          Alcotest.test_case "forward replication" `Quick test_full_forward_replication;
          Alcotest.test_case "backedges appear" `Quick test_backedges_appear;
          Alcotest.test_case "queries" `Quick test_placement_queries;
          Alcotest.test_case "copy graph" `Quick test_copy_graph_edges;
        ] );
      ( "generator",
        [
          Alcotest.test_case "structure" `Quick test_gen_structure;
          Alcotest.test_case "pools" `Quick test_gen_pools;
          Alcotest.test_case "read only" `Quick test_gen_read_only;
          Alcotest.test_case "write heavy" `Quick test_gen_write_heavy;
          Alcotest.test_case "distinct sorted" `Quick test_gen_distinct_sorted;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "hotspot" `Quick test_gen_hotspot;
          Alcotest.test_case "hotspot/straggler validation" `Quick test_hotspot_validation;
          Alcotest.test_case "empty site" `Quick test_gen_empty_site;
        ] );
      ( "compact",
        [
          QCheck_alcotest.to_alcotest test_compact_equivalence;
          QCheck_alcotest.to_alcotest test_compact_apply_step;
          QCheck_alcotest.to_alcotest test_gen_distinct_tiny_pool;
        ] );
    ]

(* Tests for online reconfiguration: the plan spec and its parser, synthetic
   plan generation, live epoch switches under every reconfigurable protocol
   (multi-epoch histories staying serializable, added replicas converging),
   determinism across repeats and domain pools, combined fault + reconfig
   runs, and the rebuilt tree/routing after random add/drop sequences. *)

module Reconfig = Repdb_reconfig.Reconfig
module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Tree = Repdb_graph.Tree
module Digraph = Repdb_graph.Digraph
module Fault = Repdb_fault.Fault
module Store = Repdb_store.Store
module Value = Repdb_store.Value
module Driver = Repdb.Driver

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

(* --- plan / spec ----------------------------------------------------------- *)

let parse spec =
  match Reconfig.of_string spec with
  | Ok p -> p
  | Error m -> Alcotest.failf "spec %S did not parse: %s" spec m

let test_spec_parse () =
  let p = parse "rebalance@600:from=1,to=2;add@300:item=5,site=3;drop@450:item=5,site=3" in
  checki "three steps" 3 (Reconfig.n_steps p);
  (* Steps come out sorted by trigger time regardless of clause order. *)
  (match p.steps with
  | [ a; d; r ] ->
      checkf "add at" 300.0 a.at;
      checkb "add step" true (a.step = Reconfig.Add_replica { item = 5; site = 3 });
      checkf "drop at" 450.0 d.at;
      checkb "drop step" true (d.step = Reconfig.Drop_replica { item = 5; site = 3 });
      checkf "rebalance at" 600.0 r.at;
      checkb "rebalance step" true (r.step = Reconfig.Rebalance_site { from_site = 1; to_site = 2 })
  | _ -> Alcotest.fail "expected three steps");
  checkf "last event" 600.0 (Reconfig.last_event p);
  checkb "empty spec is empty" true (Reconfig.is_empty (parse ""));
  checkf "empty last event" 0.0 (Reconfig.last_event Reconfig.empty)

let test_spec_roundtrip () =
  let specs =
    [
      "add@300:item=5,site=3;drop@450:item=5,site=3;rebalance@600:from=1,to=2";
      "add@0:item=0,site=1";
      "rebalance@1500:from=3,to=4;rebalance@100:from=0,to=1";
      "";
    ]
  in
  List.iter
    (fun spec ->
      let p = parse spec in
      let p' = parse (Reconfig.to_string p) in
      checkb (Printf.sprintf "%S round-trips" spec) true (p = p'))
    specs

let test_spec_errors () =
  let bad spec =
    match Reconfig.of_string spec with
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
    | Error _ -> ()
  in
  bad "add@300:item=5" (* missing site *);
  bad "add@abc:item=1,site=2" (* bad time *);
  bad "drop@10:item=x,site=2" (* bad int *);
  bad "rebalance@5:from=1" (* missing to *);
  bad "grow@10:item=1,site=2" (* unknown kind *);
  bad "nonsense";
  (* validation (not parse) errors *)
  let invalid spec =
    match Reconfig.validate ~n_sites:4 ~n_items:10 (parse spec) with
    | () -> Alcotest.failf "%S should not validate" spec
    | exception Invalid_argument _ -> ()
  in
  invalid "add@10:item=5,site=5" (* site out of range *);
  invalid "add@10:item=10,site=2" (* item out of range *);
  invalid "drop@10:item=-1,site=2";
  invalid "rebalance@10:from=1,to=1" (* self rebalance *);
  invalid "add@-5:item=1,site=2" (* negative trigger *);
  Reconfig.validate ~n_sites:4 ~n_items:10 (parse "add@10:item=5,site=3")

let test_synthetic () =
  let p = Reconfig.synthetic ~n_sites:5 ~n_items:40 ~seed:42 ~n_steps:6 () in
  checki "six steps" 6 (Reconfig.n_steps p);
  Reconfig.validate ~n_sites:5 ~n_items:40 p;
  let p' = Reconfig.synthetic ~n_sites:5 ~n_items:40 ~seed:42 ~n_steps:6 () in
  checkb "deterministic in the seed" true (p = p');
  let p'' = Reconfig.synthetic ~n_sites:5 ~n_items:40 ~seed:43 ~n_steps:6 () in
  checkb "seed matters" false (p = p'');
  checkb "degenerate sites" true (Reconfig.is_empty (Reconfig.synthetic ~n_sites:1 ~n_items:40 ~seed:1 ~n_steps:4 ()));
  (* Synthetic steps respect the round-robin layout: applying them to a
     forward-only placement keeps the copy graph an acyclic DAG. *)
  let params = { Params.default with n_sites = 5; n_items = 40; backedge_prob = 0.0 } in
  let pl0 = Placement.generate (Repdb_sim.Rng.create 7) params in
  let final =
    List.fold_left (fun pl (ts : Reconfig.timed) -> Placement.apply_step pl ts.step) pl0 p.steps
  in
  checkb "still a DAG" true (Digraph.topo_sort (Placement.copy_graph final) <> None);
  checkb "no backedges introduced" true (Placement.backedges final = [])

(* --- live protocol runs ----------------------------------------------------- *)

(* Times chosen so every switch lands mid-workload (a 4x2x25 run lasts a few
   hundred simulated ms). *)
let plan_spec = "add@30:item=2,site=3;drop@60:item=2,site=3;rebalance@90:from=1,to=2"

let reconfig_params =
  {
    Params.default with
    n_sites = 4;
    n_items = 40;
    threads_per_site = 2;
    txns_per_thread = 25;
    record_history = true;
    reconfig = (match Reconfig.of_string plan_spec with Ok p -> p | Error m -> failwith m);
  }

let run_report ?(params = reconfig_params) protocol =
  let c = Repdb.Cluster.create params in
  (Driver.run_on c protocol, c)

let is_serializable (r : Driver.report) =
  match r.serializability with
  | Some Repdb_txn.Serializability.Serializable -> true
  | Some _ -> false
  | None -> Alcotest.fail "history was not recorded"

let test_multi_epoch_serializable () =
  (* Histories spanning all three epoch switches must stay one-copy
     serializable and converge for every reconfigurable protocol. *)
  List.iter
    (fun (name, protocol, backedge_prob) ->
      let params = { reconfig_params with Params.backedge_prob } in
      let r, _ = run_report ~params protocol in
      checki (name ^ ": all switches executed") 3 r.reconfigs;
      checkb (name ^ ": multi-epoch history serializable") true (is_serializable r);
      (match r.divergent with
      | Some [] | None -> ()
      | Some d -> Alcotest.failf "%s: %d divergent copies after reconfiguration" name (List.length d));
      let total = params.Params.n_sites * params.threads_per_site * params.txns_per_thread in
      checki (name ^ ": every attempt accounted") total (r.summary.commits + r.summary.aborts))
    [
      ("backedge", (module Repdb.Backedge_proto : Repdb.Protocol.S), 0.2);
      ("dag-wt", (module Repdb.Dag_wt : Repdb.Protocol.S), 0.0);
      ("psl", (module Repdb.Psl : Repdb.Protocol.S), 0.2);
    ]

let test_added_replica_converges () =
  (* Start from zero replication so the added replica is provably created by
     the state transfer, then check it holds the primary's final value. *)
  let params =
    {
      reconfig_params with
      Params.replication_prob = 0.0;
      reconfig =
        (match Reconfig.of_string "add@30:item=2,site=3;add@50:item=7,site=1" with
        | Ok p -> p
        | Error m -> failwith m);
    }
  in
  let r, c = run_report ~params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  checki "two switches" 2 r.reconfigs;
  checki "two state transfers" 2 r.state_transfers;
  let pl = c.placement in
  checkb "replica of 2 at site 3" true (Array.mem 3 pl.replicas.(2));
  checkb "replica of 7 at site 1" true (Array.mem 1 pl.replicas.(7));
  (* item mod m primaries: item 2 -> site 2, item 7 -> site 3. *)
  checkb "item 2 converged" true
    (Value.equal (Store.read c.stores.(2) 2) (Store.read c.stores.(3) 2));
  checkb "item 7 converged" true
    (Value.equal (Store.read c.stores.(3) 7) (Store.read c.stores.(1) 7));
  match r.divergent with
  | Some [] -> ()
  | Some d -> Alcotest.failf "%d divergent copies" (List.length d)
  | None -> Alcotest.fail "no convergence check ran"

let test_deterministic_repeats () =
  (* Byte-identical reports across repeats, stall times and all. *)
  let show () =
    let r, _ = run_report (module Repdb.Backedge_proto : Repdb.Protocol.S) in
    Fmt.str "%a" Driver.pp_report r
  in
  checks "identical across repeats" (show ()) (show ())

let test_sweep_deterministic_across_pools () =
  (* The reconfig sweep's CSV must be identical sequentially and on a domain
     pool: each run owns its coordinator, transfer network and RNG streams. *)
  let base = { reconfig_params with Params.reconfig = Reconfig.empty; txns_per_thread = 8 } in
  let seq = Repdb.Experiment.to_csv (Repdb.Experiment.sweep_reconfig ~base ()) in
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        Repdb.Experiment.to_csv (Repdb.Experiment.sweep_reconfig ~pool ~base ()))
  in
  checks "sequential = pooled" seq par

let test_combined_faults_and_reconfig () =
  (* A crash overlapping an epoch switch: the drain must wait out the acked
     retransmissions to the downed site, and the run must still converge. *)
  let params =
    {
      reconfig_params with
      Params.backedge_prob = 0.2;
      faults =
        (match Fault.of_string "crash@40:site=2,down=100;drop@0-80:p=0.1" with
        | Ok s -> s
        | Error m -> failwith m);
    }
  in
  let r, _ = run_report ~params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  checki "crash executed" 1 r.crashes;
  checki "all switches executed" 3 r.reconfigs;
  checkb "serializable" true (is_serializable r);
  match r.divergent with
  | Some [] -> ()
  | Some d -> Alcotest.failf "%d divergent copies" (List.length d)
  | None -> Alcotest.fail "no convergence check ran"

let test_empty_plan_is_noop () =
  let params = { reconfig_params with Params.reconfig = Reconfig.empty } in
  let r, c = run_report ~params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  checki "no switches" 0 r.reconfigs;
  checki "no transfers" 0 r.state_transfers;
  checkf "no stall" 0.0 r.reconfig_stall;
  checkb "no reconfig histograms registered" true (c.switch_hist = None && c.stall_hist = None)

(* --- rebuilt tree / routing (QCheck) ---------------------------------------- *)

let test_random_add_drop_rebuild =
  (* After any sequence of adds/drops that respect the sites-after-primary
     rule, the copy graph must stay acyclic, the rebuilt DAG(WT) tree must
     satisfy the ancestor property for every copy-graph edge, and the chain
     order must see no backedges. *)
  let params = { Params.default with n_sites = 5; n_items = 20; backedge_prob = 0.0 } in
  let base = Placement.generate (Repdb_sim.Rng.create 11) params in
  let to_step (item, off, is_add) =
    let item = item mod params.n_items in
    let primary = base.Placement.primary.(item) in
    if primary >= params.n_sites - 1 then None
    else
      let site = primary + 1 + (off mod (params.n_sites - 1 - primary)) in
      Some (if is_add then Reconfig.Add_replica { item; site } else Reconfig.Drop_replica { item; site })
  in
  QCheck.Test.make ~name:"random add/drop keeps tree and routing valid" ~count:200
    QCheck.(list (triple (int_bound 1000) (int_bound 1000) bool))
    (fun raw ->
      let steps = List.filter_map to_step raw in
      let final = List.fold_left Placement.apply_step base steps in
      let g = Placement.copy_graph final in
      Digraph.topo_sort g <> None
      && Tree.satisfies g (Tree.of_dag g)
      && Placement.backedges final = []
      && (* the memo agrees with a from-scratch placement *)
      Digraph.edges g
         = Digraph.edges
             (Placement.copy_graph
                (Placement.make ~n_sites:final.Placement.n_sites ~n_items:final.Placement.n_items
                   ~primary:(Array.copy final.Placement.primary)
                   ~replicas:(Array.map Array.to_list final.Placement.replicas))))

(* --- experiment registry ----------------------------------------------------- *)

let test_experiment_registry () =
  (* The CLI derives both its help text and its dispatch from
     [Experiment.registry]; this pins the registry so a new sweep that is not
     registered (and hence invisible to the CLI) fails the build here. *)
  Alcotest.(check (list string))
    "registered experiment ids"
    [
      "fig2a"; "fig2b"; "fig3a"; "fig3b"; "resp"; "sites"; "threads"; "latency"; "readtxn";
      "ablation"; "eager-scaling"; "tree-routing"; "deadlock-policy"; "dummy-period"; "hotspot";
      "straggler"; "site-order"; "faults"; "reconfig"; "partition"; "occ"; "heal";
    ]
    Repdb.Experiment.ids;
  checki "ids are unique"
    (List.length Repdb.Experiment.ids)
    (List.length (List.sort_uniq compare Repdb.Experiment.ids));
  List.iter
    (fun id ->
      match Repdb.Experiment.find id with
      | Some e ->
          checks (id ^ " resolves to itself") id e.exp_id;
          checkb (id ^ " has a doc line") true (String.length e.doc > 0)
      | None -> Alcotest.failf "id %S does not resolve" id)
    Repdb.Experiment.ids;
  checkb "unknown id" true (Repdb.Experiment.find "nonesuch" = None)

let () =
  Alcotest.run "reconfig"
    [
      ( "plan",
        [
          Alcotest.test_case "spec parse" `Quick test_spec_parse;
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "synthetic" `Quick test_synthetic;
        ] );
      ( "live",
        [
          Alcotest.test_case "multi-epoch serializable" `Quick test_multi_epoch_serializable;
          Alcotest.test_case "added replica converges" `Quick test_added_replica_converges;
          Alcotest.test_case "deterministic repeats" `Quick test_deterministic_repeats;
          Alcotest.test_case "sweep deterministic across pools" `Quick
            test_sweep_deterministic_across_pools;
          Alcotest.test_case "combined faults and reconfig" `Quick test_combined_faults_and_reconfig;
          Alcotest.test_case "empty plan is a no-op" `Quick test_empty_plan_is_noop;
        ] );
      ( "rebuild",
        [ QCheck_alcotest.to_alcotest test_random_add_drop_rebuild ] );
      ( "registry",
        [ Alcotest.test_case "cli registry" `Quick test_experiment_registry ] );
    ]

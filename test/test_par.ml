(* Tests for the domain pool and for the parallel experiment engine's
   headline guarantee: -j N output is bit-identical to sequential. *)

module Pool = Repdb_par.Pool
module Params = Repdb_workload.Params
module Experiment = Repdb.Experiment

let check = Alcotest.check
let checki = Alcotest.(check int)

(* --- Pool.map ------------------------------------------------------------- *)

let test_map_ordering () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 1000 Fun.id in
      let ys = Pool.map pool xs ~f:(fun x -> x * x) in
      check
        Alcotest.(array int)
        "results land by input index"
        (Array.map (fun x -> x * x) xs)
        ys)

let test_map_empty () =
  Pool.with_pool ~domains:4 (fun pool ->
      checki "empty in, empty out" 0 (Array.length (Pool.map pool [||] ~f:Fun.id)))

let test_map_singleton () =
  Pool.with_pool ~domains:4 (fun pool ->
      check Alcotest.(array int) "singleton" [| 42 |] (Pool.map pool [| 21 |] ~f:(fun x -> 2 * x)))

let test_map_sequential_pool () =
  (* domains = 1 must not spawn anything and still work. *)
  Pool.with_pool ~domains:1 (fun pool ->
      checki "domains" 1 (Pool.domains pool);
      check
        Alcotest.(array int)
        "sequential path" [| 1; 2; 3 |]
        (Pool.map pool [| 0; 1; 2 |] ~f:succ))

exception Task_failed of int

let test_map_exception () =
  Pool.with_pool ~domains:4 (fun pool ->
      (match Pool.map pool (Array.init 64 Fun.id) ~f:(fun i -> if i = 17 then raise (Task_failed i) else i) with
      | _ -> Alcotest.fail "expected Task_failed to propagate"
      | exception Task_failed 17 -> ());
      (* The pool survives a raising round and can be reused. *)
      check Alcotest.(array int) "usable after exception" [| 0; 1; 2; 3 |]
        (Pool.map pool (Array.init 4 Fun.id) ~f:Fun.id))

let test_map_reuse () =
  Pool.with_pool ~domains:3 (fun pool ->
      for round = 1 to 5 do
        let n = round * 37 in
        let ys = Pool.map pool (Array.init n Fun.id) ~f:(fun x -> x + round) in
        check Alcotest.(array int) "round" (Array.init n (fun x -> x + round)) ys
      done)

let test_nested_map_rejected () =
  (* A nested map that would actually re-enter the pool machinery is
     rejected (singleton/empty inputs take the sequential shortcut and are
     harmless, so they are allowed). *)
  Pool.with_pool ~domains:2 (fun pool ->
      match Pool.map pool [| 0; 1; 2; 3 |] ~f:(fun _ -> Pool.map pool [| 0; 1; 2; 3 |] ~f:Fun.id) with
      | _ -> Alcotest.fail "expected nested map to be rejected"
      | exception Invalid_argument _ -> ())

let test_chunk_one () =
  (* Finest granularity: one task per claim still covers everything exactly
     once and lands results by index. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 257 Fun.id in
      check
        Alcotest.(array int)
        "chunk=1 per-call" (Array.map succ xs)
        (Pool.map ~chunk:1 pool xs ~f:succ));
  Pool.with_pool ~chunk:1 ~domains:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      check Alcotest.(array int) "chunk=1 pool-level" (Array.map succ xs) (Pool.map pool xs ~f:succ))

let test_chunk_larger_than_input () =
  (* A chunk past the input length collapses to one claim: the first domain
     to increment the index takes everything, the rest find it drained. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 7 Fun.id in
      check
        Alcotest.(array int)
        "chunk > n" (Array.map succ xs)
        (Pool.map ~chunk:1000 pool xs ~f:succ))

let test_chunk_invalid () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "chunk 0" (Invalid_argument "Pool.map: chunk must be >= 1") (fun () ->
          ignore (Pool.map ~chunk:0 pool [| 1; 2; 3 |] ~f:succ)));
  Alcotest.check_raises "create chunk 0" (Invalid_argument "Pool.create: chunk must be >= 1")
    (fun () -> ignore (Pool.create ~chunk:0 ~domains:2 ()))

let test_adaptive_chunk () =
  checki "small n" 1 (Pool.adaptive_chunk ~domains:4 ~n:10);
  checki "big n" 62 (Pool.adaptive_chunk ~domains:4 ~n:1000);
  checki "never 0" 1 (Pool.adaptive_chunk ~domains:8 ~n:0)

let test_create_invalid () =
  Alcotest.check_raises "domains 0" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0 ()))

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  ignore (Pool.map pool [| 1; 2 |] ~f:succ);
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.map pool [| 1 |] ~f:succ with
  | _ -> Alcotest.fail "expected map after shutdown to be rejected"
  | exception Invalid_argument _ -> ()

(* --- parallel == sequential on the real experiment engine ------------------ *)

let test_experiment_determinism () =
  (* Small but real: fig2a at 3 sweep points x 2 protocols = 6 Driver.runs.
     The figure CSV captures every reported metric to full precision, so a
     single diverging event anywhere in any simulation would show up. *)
  let base = { Params.default with txns_per_thread = 5 } in
  let seq = Experiment.fig2a ~base ~steps:2 () in
  let par = Pool.with_pool ~domains:4 (fun pool -> Experiment.fig2a ~pool ~base ~steps:2 ()) in
  check Alcotest.string "fig2a csv identical under -j 4" (Experiment.to_csv seq)
    (Experiment.to_csv par)

let test_reports_determinism () =
  let base = { Params.default with txns_per_thread = 5 } in
  let summary rs =
    Fmt.str "%a" Experiment.pp_reports rs
  in
  let seq = Experiment.response_times ~base () in
  let par = Pool.with_pool ~domains:3 (fun pool -> Experiment.response_times ~pool ~base ()) in
  check Alcotest.string "response_times identical under -j 3" (summary seq) (summary par)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "map empty" `Quick test_map_empty;
          Alcotest.test_case "map singleton" `Quick test_map_singleton;
          Alcotest.test_case "sequential pool" `Quick test_map_sequential_pool;
          Alcotest.test_case "exception propagation" `Quick test_map_exception;
          Alcotest.test_case "reuse across rounds" `Quick test_map_reuse;
          Alcotest.test_case "nested map rejected" `Quick test_nested_map_rejected;
          Alcotest.test_case "chunk = 1" `Quick test_chunk_one;
          Alcotest.test_case "chunk > n" `Quick test_chunk_larger_than_input;
          Alcotest.test_case "chunk invalid" `Quick test_chunk_invalid;
          Alcotest.test_case "adaptive chunk" `Quick test_adaptive_chunk;
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "fig2a -j1 == -j4" `Quick test_experiment_determinism;
          Alcotest.test_case "reports -j1 == -j3" `Quick test_reports_determinism;
        ] );
    ]

(* Tests for transaction vocabulary, the history recorder and the global
   serializability checker. *)

module Txn = Repdb_txn.Txn
module History = Repdb_txn.History
module Serializability = Repdb_txn.Serializability
module Digraph = Repdb_graph.Digraph

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_spec_helpers () =
  let spec = { Txn.origin = 1; ops = [ Txn.Read 3; Txn.Write 5; Txn.Read 3; Txn.Write 7 ] } in
  Alcotest.(check (list int)) "reads" [ 3; 3 ] (Txn.reads spec);
  Alcotest.(check (list int)) "writes" [ 5; 7 ] (Txn.writes spec);
  checkb "not read-only" false (Txn.is_read_only spec);
  checkb "read-only" true (Txn.is_read_only { spec with ops = [ Txn.Read 1 ] });
  Alcotest.(check string) "pp" "txn@1:r(3) w(5) r(3) w(7)" (Fmt.str "%a" Txn.pp_spec spec)

let record h ~site ~item ~gid kind = History.record h ~site ~item ~gid ~attempt:gid kind

let test_history_recording () =
  let h = History.create ~n_sites:2 () in
  checkb "enabled" true (History.enabled h);
  record h ~site:0 ~item:1 ~gid:10 History.W;
  record h ~site:0 ~item:1 ~gid:11 History.R;
  record h ~site:1 ~item:1 ~gid:10 History.W;
  checki "size" 3 (History.size h);
  Alcotest.(check (list (pair int int))) "touched" [ (0, 1); (1, 1) ] (History.touched h);
  let log = History.committed_log h ~site:0 ~item:1 in
  Alcotest.(check (list int)) "order kept" [ 10; 11 ] (List.map (fun a -> a.History.gid) log);
  Alcotest.(check (list int)) "gids" [ 10; 11 ] (History.committed_gids h)

let test_history_discard () =
  let h = History.create ~n_sites:1 () in
  History.record h ~site:0 ~item:0 ~gid:1 ~attempt:100 History.W;
  History.record h ~site:0 ~item:0 ~gid:2 ~attempt:200 History.W;
  History.discard_attempt h ~attempt:100;
  let log = History.committed_log h ~site:0 ~item:0 in
  Alcotest.(check (list int)) "aborted filtered" [ 2 ] (List.map (fun a -> a.History.gid) log);
  Alcotest.(check (list int)) "gids exclude aborted" [ 2 ] (History.committed_gids h)

let test_history_disabled () =
  let h = History.create ~enabled:false ~n_sites:1 () in
  record h ~site:0 ~item:0 ~gid:1 History.W;
  checki "no-op" 0 (History.size h);
  checkb "disabled" false (History.enabled h)

let serializable_check h =
  match Serializability.check h with
  | Serializability.Serializable -> true
  | Serializability.Not_serializable _ -> false

let test_serializable_history () =
  let h = History.create ~n_sites:2 () in
  (* T1 then T2 at both sites: consistent order. *)
  record h ~site:0 ~item:0 ~gid:1 History.W;
  record h ~site:0 ~item:0 ~gid:2 History.R;
  record h ~site:1 ~item:1 ~gid:1 History.W;
  record h ~site:1 ~item:1 ~gid:2 History.W;
  checkb "consistent orders serialize" true (serializable_check h)

let test_example_1_1_cycle () =
  (* The paper's Example 1.1: T1 before T2 at s2, but T2's update reaches s3
     before T1's. Items: a=0, b=1; sites s2=1, s3=2. *)
  let h = History.create ~n_sites:3 () in
  record h ~site:1 ~item:0 ~gid:1 History.W (* T1's update applied at s2 *);
  record h ~site:1 ~item:0 ~gid:2 History.R (* T2 reads a at s2 *);
  record h ~site:2 ~item:1 ~gid:2 History.W (* T2's update to b reaches s3 *);
  record h ~site:2 ~item:1 ~gid:3 History.R (* T3 reads b *);
  record h ~site:2 ~item:0 ~gid:3 History.R (* T3 reads a (old) *);
  record h ~site:2 ~item:0 ~gid:1 History.W (* T1's update finally arrives *);
  (match Serializability.check h with
  | Serializability.Not_serializable cycle ->
      checkb "cycle mentions multiple txns" true (List.length cycle >= 2);
      List.iter (fun gid -> checkb "gid in range" true (gid >= 1 && gid <= 3)) cycle
  | Serializability.Serializable -> Alcotest.fail "expected a serialization cycle");
  (* Discarding T2 (as if aborted) removes the cycle. *)
  History.discard_attempt h ~attempt:2;
  checkb "serializable after discard" true (serializable_check h)

let test_ww_cycle_across_sites () =
  let h = History.create ~n_sites:2 () in
  record h ~site:0 ~item:0 ~gid:1 History.W;
  record h ~site:0 ~item:0 ~gid:2 History.W;
  record h ~site:1 ~item:1 ~gid:2 History.W;
  record h ~site:1 ~item:1 ~gid:1 History.W;
  checkb "w-w inversion detected" false (serializable_check h)

let test_rw_cycle_single_site () =
  (* Not possible under strict 2PL at one site, but the checker must still
     flag an inverted log if given one. *)
  let h = History.create ~n_sites:1 () in
  record h ~site:0 ~item:0 ~gid:1 History.R;
  record h ~site:0 ~item:0 ~gid:2 History.W;
  record h ~site:0 ~item:1 ~gid:2 History.R;
  record h ~site:0 ~item:1 ~gid:1 History.W;
  checkb "r-w cycle" false (serializable_check h)

let test_reads_commute () =
  let h = History.create ~n_sites:2 () in
  record h ~site:0 ~item:0 ~gid:1 History.R;
  record h ~site:0 ~item:0 ~gid:2 History.R;
  record h ~site:1 ~item:0 ~gid:2 History.R;
  record h ~site:1 ~item:0 ~gid:1 History.R;
  checkb "read-read never conflicts" true (serializable_check h)

let test_conflict_graph_edges () =
  let h = History.create ~n_sites:1 () in
  record h ~site:0 ~item:0 ~gid:1 History.W;
  record h ~site:0 ~item:0 ~gid:2 History.R;
  record h ~site:0 ~item:0 ~gid:3 History.W;
  let g, gids = Serializability.conflict_graph h in
  Alcotest.(check (array int)) "vertices" [| 1; 2; 3 |] gids;
  checkb "w->r" true (Digraph.has_edge g 0 1);
  checkb "r->w" true (Digraph.has_edge g 1 2);
  checkb "w->w" true (Digraph.has_edge g 0 2);
  checkb "no reverse" false (Digraph.has_edge g 1 0)

let test_same_txn_no_self_edge () =
  let h = History.create ~n_sites:1 () in
  record h ~site:0 ~item:0 ~gid:1 History.W;
  record h ~site:0 ~item:0 ~gid:1 History.R;
  record h ~site:0 ~item:0 ~gid:1 History.W;
  let g, _ = Serializability.conflict_graph h in
  checki "no self edges" 0 (Digraph.n_edges g);
  checkb "serializable" true (serializable_check h)

(* Brute-force cross-check: the checker's verdict must match an exhaustive
   search for a serial order consistent with *every* conflicting pair (the
   checker itself only materialises a reduced edge set; this property test
   guards that reduction). *)
let all_permutations l =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as full -> (x :: full) :: List.map (fun p -> y :: p) (insert x rest)
  in
  List.fold_left (fun perms x -> List.concat_map (insert x) perms) [ [] ] l

let brute_force_serializable h =
  let gids = History.committed_gids h in
  let pairs =
    List.concat_map
      (fun (site, item) ->
        let log = History.committed_log h ~site ~item in
        let rec conflicts acc = function
          | [] -> acc
          | (a : History.access) :: rest ->
              let acc =
                List.fold_left
                  (fun acc (b : History.access) ->
                    if a.gid <> b.gid && (a.kind = History.W || b.kind = History.W) then
                      (a.gid, b.gid) :: acc
                    else acc)
                  acc rest
              in
              conflicts acc rest
        in
        conflicts [] log)
      (History.touched h)
  in
  List.exists
    (fun perm ->
      let index = List.mapi (fun i g -> (g, i)) perm in
      List.for_all (fun (a, b) -> List.assoc a index < List.assoc b index) pairs)
    (all_permutations gids)

let prop_checker_matches_brute_force =
  QCheck2.Test.make ~name:"checker matches brute force on tiny histories" ~count:400
    QCheck2.Gen.(list_size (int_range 0 12) (tup4 (int_range 0 2) (int_range 0 3) (int_range 1 4) bool))
    (fun ops ->
      let h = History.create ~n_sites:3 () in
      List.iter
        (fun (site, item, gid, is_write) ->
          record h ~site ~item ~gid (if is_write then History.W else History.R))
        ops;
      let checker = serializable_check h in
      checker = brute_force_serializable h)

let () =
  Alcotest.run "txn"
    [
      ( "txn",
        [ Alcotest.test_case "spec helpers" `Quick test_spec_helpers ] );
      ( "history",
        [
          Alcotest.test_case "recording" `Quick test_history_recording;
          Alcotest.test_case "discard" `Quick test_history_discard;
          Alcotest.test_case "disabled" `Quick test_history_disabled;
        ] );
      ( "serializability",
        [
          Alcotest.test_case "serializable history" `Quick test_serializable_history;
          Alcotest.test_case "example 1.1 cycle" `Quick test_example_1_1_cycle;
          Alcotest.test_case "w-w cycle" `Quick test_ww_cycle_across_sites;
          Alcotest.test_case "r-w cycle" `Quick test_rw_cycle_single_site;
          Alcotest.test_case "reads commute" `Quick test_reads_commute;
          Alcotest.test_case "conflict graph edges" `Quick test_conflict_graph_edges;
          Alcotest.test_case "no self edges" `Quick test_same_txn_no_self_edge;
          QCheck_alcotest.to_alcotest prop_checker_matches_brute_force;
        ] );
    ]

(* Batched propagation: cross-setting invariants on the real protocols,
   determinism of batched runs (repeats and -j), and a QCheck model of the
   Batcher's ordering guarantees.

   Batching with size > 1 is a semantic knob, not a transparent optimisation:
   flush events consume heap sequence numbers and physical sends draw from
   the fault injector's RNG, so batched runs legitimately diverge byte-wise
   from unbatched ones. What must hold instead — and what these tests pin
   down — is that every lazy protocol still commits the same transactions,
   converges to the same replica state, reports the same logical message
   count (arity-weighted accounting), and that any fixed batch setting is
   fully deterministic. *)

module Params = Repdb_workload.Params
module Placement = Repdb_workload.Placement
module Driver = Repdb.Driver
module Cluster = Repdb.Cluster
module Experiment = Repdb.Experiment
module Protocol = Repdb.Protocol
module Pool = Repdb_par.Pool
module Sim = Repdb_sim.Sim
module Batcher = Repdb_net.Batcher
module Store = Repdb_store.Store
module Value = Repdb_store.Value

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* b = 0: the WT/T protocols require an acyclic copy graph. *)
let base = { Params.default with txns_per_thread = 10; backedge_prob = 0.0 }

let with_batch size linger = { base with Params.batch_size = size; batch_linger_ms = linger }

(* All four lazy propagation paths that route through the batcher. *)
let lazy_protocols : (string * Protocol.t) list =
  [
    ("dag-wt", (module Repdb.Dag_wt : Protocol.S));
    ("backedge", (module Repdb.Backedge_proto : Protocol.S));
    ("dag-t", (module Repdb.Dag_t : Protocol.S));
    ("lazy-master", (module Repdb.Lazy_master : Protocol.S));
  ]

let settings = [ (1, 0.0); (8, 0.0); (8, 2.0); (64, 5.0) ]

(* --- invariants across batch settings -------------------------------------- *)

let test_invariants () =
  List.iter
    (fun (name, proto) ->
      let reports =
        List.map (fun (size, linger) -> Driver.run (with_batch size linger) proto) settings
      in
      let baseline = List.hd reports in
      List.iteri
        (fun i (r : Driver.report) ->
          let size, linger = List.nth settings i in
          let label fmt = Printf.sprintf "%s @ batch=%d/%gms %s" name size linger fmt in
          (* Replicas converge to their primaries under every setting. *)
          (match r.divergent with
          | Some [] -> ()
          | Some ds ->
              Alcotest.failf "%s: %d divergent replicas" (label "convergence") (List.length ds)
          | None -> ());
          (* lazy-master holds locks while pushes park, so lingering batches
             legitimately change the abort (and hence commit/message) mix;
             the WT/T protocols never abort here and must be unaffected. *)
          if name <> "lazy-master" then begin
            checki (label "commits") baseline.summary.commits r.summary.commits;
            checki (label "aborts") baseline.summary.aborts r.summary.aborts;
            (* Arity-weighted accounting makes the count batch-size-invariant;
               dag-t's periodic dummies additionally scale with simulated
               duration, which a linger legitimately extends. *)
            if name <> "dag-t" || linger = 0.0 then
              checki (label "logical messages") baseline.summary.messages r.summary.messages
          end)
        reports)
    lazy_protocols

(* Committed replica state is byte-for-byte the same whatever the batch
   setting: same versions at every (site, item) the placement replicates. *)
let test_final_values_identical () =
  let placement = Placement.generate (Repdb_sim.Rng.create base.Params.seed) base in
  let dump (c : Cluster.t) =
    let b = Buffer.create 256 in
    Array.iteri
      (fun item primary ->
        let version site = (Store.read c.stores.(site) item).Value.version in
        Buffer.add_string b (Printf.sprintf "%d@%d=%d;" item primary (version primary));
        Array.iter
          (fun site -> Buffer.add_string b (Printf.sprintf "%d@%d=%d;" item site (version site)))
          c.placement.Placement.replicas.(item))
      c.placement.Placement.primary;
    Buffer.contents b
  in
  List.iter
    (fun (name, proto) ->
      let run (size, linger) =
        let c = Cluster.create_with (with_batch size linger) placement in
        ignore (Driver.run_on c proto);
        dump c
      in
      let baseline = run (List.hd settings) in
      List.iter
        (fun (size, linger) ->
          checks (Printf.sprintf "%s values @ batch=%d/%gms" name size linger) baseline
            (run (size, linger)))
        settings)
    [ List.hd lazy_protocols; List.nth lazy_protocols 1 ]

(* --- determinism of batched runs -------------------------------------------- *)

(* A fixed nontrivial batch setting is as deterministic as the default: the
   full-precision experiment CSV is identical across repeats and across
   -j 1 / -j 2. *)
let test_batched_determinism () =
  let batched = { (with_batch 8 2.0) with Params.txns_per_thread = 5 } in
  let csv () = Experiment.to_csv (Experiment.fig2a ~base:batched ~steps:2 ()) in
  let seq = csv () in
  checks "repeat run identical" seq (csv ());
  let par =
    Pool.with_pool ~domains:2 (fun pool ->
        Experiment.to_csv (Experiment.fig2a ~pool ~base:batched ~steps:2 ()))
  in
  checks "-j 2 identical" seq par

(* Same determinism for the telemetry timeline: a batched run samples the
   identical timeline CSV on every repeat (in-flight sampling includes the
   batcher's parked updates, so this also pins that accounting). *)
let test_batched_timeline_deterministic () =
  let params = { (with_batch 8 2.0) with Params.timeline_every = 50.0 } in
  let csv () =
    match (Driver.run params (module Repdb.Backedge_proto : Protocol.S)).timeline with
    | Some tl -> Repdb_obs.Timeline.to_csv_string tl
    | None -> Alcotest.fail "expected a timeline"
  in
  let first = csv () in
  Alcotest.(check bool) "timeline non-trivial" true (String.length first > 100);
  checks "timeline CSV identical across repeats" first (csv ())

(* batch_size = 1 (the default) short-circuits the batcher entirely, so
   spelling it out changes nothing observable. *)
let test_batch1_is_default () =
  let csv params = Experiment.to_csv (Experiment.fig2a ~base:params ~steps:2 ()) in
  let small = { base with Params.txns_per_thread = 5 } in
  checks "explicit batch=1/0 == default" (csv small)
    (csv { small with Params.batch_size = 1; batch_linger_ms = 0.0 })

(* --- QCheck model of the Batcher --------------------------------------------- *)

type op =
  | Push of int * int * int
  | Push_now of int * int * int
  | Flush of int * int
  | Flush_all
  | Advance  (* drain the event heap: linger timers fire *)

let pairs = [ (0, 1); (0, 2); (1, 0); (1, 2); (2, 0); (2, 1) ]

let gen_scenario =
  QCheck2.Gen.(
    let gen_pair = oneofl pairs in
    let gen_op =
      frequency
        [
          (6, map2 (fun (s, d) v -> Push (s, d, v)) gen_pair (int_bound 99));
          (2, map2 (fun (s, d) v -> Push_now (s, d, v)) gen_pair (int_bound 99));
          (1, map (fun (s, d) -> Flush (s, d)) gen_pair);
          (1, return Flush_all);
          (1, return Advance);
        ]
    in
    triple (int_range 1 5) (oneofl [ 0.0; 2.0 ]) (list_size (int_range 0 80) gen_op))

let pp_scenario fmt (size, linger, ops) =
  Format.fprintf fmt "size=%d linger=%g ops=%d" size linger (List.length ops)

(* Replay a scenario against the real Batcher and a trivial model (per-pair
   FIFO list of pushed values). After a final flush_all:
   - per-pair concatenation of shipped batches equals the model's push order
     (FIFO; push_now never overtakes parked updates);
   - no shipped batch is empty or larger than [size];
   - every queue is empty — the epoch-fence precondition: once all parked
     work has flushed, a batch can never straddle the fence. *)
let prop_batcher_model =
  QCheck2.Test.make ~name:"Batcher preserves per-pair FIFO" ~count:500
    ~print:(Format.asprintf "%a" pp_scenario) gen_scenario (fun (size, linger, ops) ->
      let sim = Sim.create () in
      let shipped = Array.make_matrix 3 3 [] in
      let oversized = ref false in
      let bat =
        Batcher.create ~sim ~n_sites:3 ~size ~linger_ms:linger
          ~ship:(fun ~src ~dst batch ->
            if batch = [] || List.length batch > size then oversized := true;
            shipped.(src).(dst) <- shipped.(src).(dst) @ [ batch ])
          ()
      in
      let model = Array.make_matrix 3 3 [] in
      List.iter
        (fun op ->
          match op with
          | Push (s, d, v) ->
              model.(s).(d) <- model.(s).(d) @ [ v ];
              Batcher.push bat ~src:s ~dst:d v
          | Push_now (s, d, v) ->
              model.(s).(d) <- model.(s).(d) @ [ v ];
              Batcher.push_now bat ~src:s ~dst:d v
          | Flush (s, d) -> Batcher.flush bat ~src:s ~dst:d
          | Flush_all -> Batcher.flush_all bat
          | Advance -> Sim.run sim)
        ops;
      Batcher.flush_all bat;
      Sim.run sim;
      let ok = ref (not !oversized) in
      List.iter
        (fun (s, d) ->
          if Batcher.pending bat ~src:s ~dst:d <> 0 then ok := false;
          if List.concat shipped.(s).(d) <> model.(s).(d) then ok := false)
        pairs;
      !ok)

let () =
  Alcotest.run "batch"
    [
      ( "protocols",
        [
          Alcotest.test_case "invariants across batch settings" `Quick test_invariants;
          Alcotest.test_case "final values identical" `Quick test_final_values_identical;
          Alcotest.test_case "batched runs deterministic" `Quick test_batched_determinism;
          Alcotest.test_case "batched timeline deterministic" `Quick
            test_batched_timeline_deterministic;
          Alcotest.test_case "batch=1 is the default path" `Quick test_batch1_is_default;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_batcher_model ]);
    ]

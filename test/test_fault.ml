(* Tests for the deterministic fault-injection layer: the schedule spec and
   its parser, the injector's transmission plans, faulty networks staying
   FIFO, and whole protocol runs surviving crash/recovery — deterministically
   and with converged, serializable results. *)

module Fault = Repdb_fault.Fault
module Sim = Repdb_sim.Sim
module Mailbox = Repdb_sim.Mailbox
module Network = Repdb_net.Network
module Params = Repdb_workload.Params

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

(* --- schedule / spec ------------------------------------------------------- *)

let parse spec =
  match Fault.of_string spec with
  | Ok s -> s
  | Error m -> Alcotest.failf "spec %S did not parse: %s" spec m

let test_spec_parse () =
  let s = parse "crash@2000:site=1,down=300;drop@0-1000:p=0.05,src=0;delay@50-60:add=10;rto=2" in
  checki "one crash" 1 (List.length s.crashes);
  (match s.crashes with
  | [ c ] ->
      checki "site" 1 c.site;
      checkf "at" 2000.0 c.at;
      checkf "down" 300.0 c.down_for
  | _ -> assert false);
  checki "two windows" 2 (List.length s.windows);
  checkf "rto" 2.0 s.rto;
  let d = parse "crash@100:site=0" in
  checkf "default downtime" 500.0 (List.hd d.crashes).down_for;
  checkf "default rto" 5.0 d.rto;
  checkb "empty spec is empty" true (Fault.is_empty (parse ""));
  checkf "last event" 2300.0 (Fault.last_event s)

let test_spec_roundtrip () =
  let specs =
    [
      "crash@2000:site=1,down=300;drop@0-1000:p=0.05,src=0;delay@50-60:add=10;rto=2";
      "crash@100:site=0,down=500";
      "drop@0-50:p=1,dst=2";
      "";
    ]
  in
  List.iter
    (fun spec ->
      let s = parse spec in
      let s' = parse (Fault.to_string s) in
      checkb (Printf.sprintf "%S round-trips" spec) true (s = s'))
    specs

let test_spec_errors () =
  let bad spec =
    match Fault.of_string spec with
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
    | Error _ -> ()
  in
  bad "crash@100";
  (* missing site *)
  bad "crash@abc:site=0";
  bad "drop@0-100:src=1";
  (* missing p *)
  bad "delay@5:add=1";
  (* not a span *)
  bad "flood@0-1:p=1";
  bad "nonsense";
  (* validation (not parse) errors *)
  let invalid spec n_sites =
    match Fault.validate ~n_sites (parse spec) with
    | () -> Alcotest.failf "%S should not validate for %d sites" spec n_sites
    | exception Invalid_argument _ -> ()
  in
  invalid "crash@100:site=5" 3;
  invalid "crash@100:site=0,down=0" 3;
  invalid "crash@100:site=0;crash@200:site=0" 3 (* overlapping downtimes *);
  invalid "drop@0-100:p=1.5" 3;
  invalid "drop@100-50:p=0.1" 3;
  invalid "rto=0" 3;
  Fault.validate ~n_sites:3 (parse "crash@100:site=0,down=50;crash@200:site=0")

let test_partition_spec () =
  let s = parse "crash@100:site=0,down=50;partition@500-1500:groups=0.1.2|3.4" in
  checki "one partition" 1 (List.length s.partitions);
  (match s.partitions with
  | [ p ] ->
      checkf "from" 500.0 p.from_t;
      checkf "until" 1500.0 p.until_t;
      checks "groups" "0.1.2|3.4" (Fault.string_of_groups p.groups)
  | _ -> assert false);
  (* Regression: last_event must account for partition windows, or run
     horizons stop short of the heal. *)
  checkf "last event is the heal" 1500.0 (Fault.last_event s);
  checkb "round-trips" true (s = parse (Fault.to_string s));
  Fault.validate ~n_sites:5 s;
  let bad spec =
    match Fault.of_string spec with
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
    | Error _ -> ()
  in
  bad "partition@500:groups=0|1";
  (* not a span *)
  bad "partition@0-100";
  (* missing groups *)
  bad "partition@0-100:groups=a|b";
  let invalid spec n_sites =
    match Fault.validate ~n_sites (parse spec) with
    | () -> Alcotest.failf "%S should not validate for %d sites" spec n_sites
    | exception Invalid_argument _ -> ()
  in
  invalid "partition@0-100:groups=0.1|2" 2 (* site out of range *);
  invalid "partition@0-100:groups=0.1|1.2" 4 (* overlapping groups *);
  invalid "partition@0-100:groups=0.1" 4 (* a split needs two groups *);
  invalid "partition@100-50:groups=0|1" 4 (* empty window *)

let test_partition_reachability () =
  let inj = Fault.injector ~n_sites:5 ~seed:1 (parse "partition@100-200:groups=0.1|2.3") in
  checkb "reachable before" true (Fault.reachable inj ~src:0 ~dst:2 ~at:99.0);
  checkb "separated inside" false (Fault.reachable inj ~src:0 ~dst:2 ~at:100.0);
  checkb "symmetric" false (Fault.reachable inj ~src:2 ~dst:0 ~at:150.0);
  checkb "same group reachable" true (Fault.reachable inj ~src:0 ~dst:1 ~at:150.0);
  checkb "ungrouped site unaffected" true (Fault.reachable inj ~src:0 ~dst:4 ~at:150.0);
  checkb "reachable after heal" true (Fault.reachable inj ~src:0 ~dst:2 ~at:200.0);
  (* The link parks cross-partition messages until the heal. *)
  let tm = Fault.transmit inj ~src:0 ~dst:3 ~now:150.0 in
  checkb "attempts dropped during the split" true (tm.dropped <> []);
  checkf "departs at the heal" 200.0 tm.depart;
  (* Same-group traffic is untouched. *)
  let tm = Fault.transmit inj ~src:0 ~dst:1 ~now:150.0 in
  checkb "no drops in-group" true (tm.dropped = []);
  checkf "departs now" 150.0 tm.depart

let test_synthetic () =
  let s = Fault.synthetic ~n_sites:5 ~seed:42 ~n_crashes:4 () in
  checki "four crashes" 4 (List.length s.crashes);
  Fault.validate ~n_sites:5 s;
  let s' = Fault.synthetic ~n_sites:5 ~seed:42 ~n_crashes:4 () in
  checkb "deterministic in the seed" true (s = s');
  let s'' = Fault.synthetic ~n_sites:5 ~seed:43 ~n_crashes:4 () in
  checkb "seed matters" false (s = s'')

(* --- injector -------------------------------------------------------------- *)

let test_injector_down () =
  let inj = Fault.injector ~n_sites:3 ~seed:1 (parse "crash@100:site=1,down=50") in
  checkb "up before" false (Fault.down inj ~site:1 ~at:99.0);
  checkb "down at crash" true (Fault.down inj ~site:1 ~at:100.0);
  checkb "down inside" true (Fault.down inj ~site:1 ~at:149.0);
  checkb "up at restart" false (Fault.down inj ~site:1 ~at:150.0);
  checkb "other site unaffected" false (Fault.down inj ~site:0 ~at:120.0)

let test_transmit_around_downtime () =
  let inj = Fault.injector ~n_sites:3 ~seed:1 (parse "crash@100:site=1,down=50;rto=5") in
  (* Fault-free instant: departs immediately. *)
  let tm = Fault.transmit inj ~src:0 ~dst:2 ~now:10.0 in
  checkb "no drops" true (tm.dropped = []);
  checkf "departs now" 10.0 tm.depart;
  checkf "no surcharge" 0.0 tm.extra;
  (* Destination down: one timed-out attempt, retry once it is back up. *)
  let tm = Fault.transmit inj ~src:0 ~dst:1 ~now:120.0 in
  checki "one drop" 1 (List.length tm.dropped);
  checkf "dropped at send" 120.0 (List.hd tm.dropped);
  checkf "departs at restart" 150.0 tm.depart;
  (* Source down counts too. *)
  let tm = Fault.transmit inj ~src:1 ~dst:2 ~now:130.0 in
  checkf "src down delays" 150.0 tm.depart

let test_transmit_drop_window () =
  (* p = 1 inside the window: every attempt fails until the window closes;
     retries advance by the RTO. *)
  let inj = Fault.injector ~n_sites:2 ~seed:1 (parse "drop@0-20:p=1;rto=5") in
  let tm = Fault.transmit inj ~src:0 ~dst:1 ~now:0.0 in
  checkb "attempts at 0,5,10,15" true (tm.dropped = [ 0.0; 5.0; 10.0; 15.0 ]);
  checkf "departs when the window closes" 20.0 tm.depart;
  (* A delay window adds a surcharge without dropping. *)
  let inj = Fault.injector ~n_sites:2 ~seed:1 (parse "delay@0-100:add=7") in
  let tm = Fault.transmit inj ~src:0 ~dst:1 ~now:50.0 in
  checkb "no drops" true (tm.dropped = []);
  checkf "surcharge" 7.0 tm.extra;
  (* An unbounded certain-loss window can never transmit. *)
  let inj = Fault.injector ~n_sites:2 ~seed:1 (parse "drop@0-1000000:p=1;rto=100") in
  (match Fault.transmit inj ~src:0 ~dst:1 ~now:0.0 with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ())

let test_network_fifo_across_drops () =
  (* Messages racing through a lossy window must still arrive in send order
     per pair: a retransmitted head must not be overtaken by a clean tail. *)
  let sched = parse "drop@0-30:p=0.6;rto=5" in
  let sim = Sim.create () in
  let inj = Fault.injector ~n_sites:2 ~seed:7 sched in
  let net = Network.create ~sim ~n_sites:2 ~latency:(fun _ _ -> 1.0) ~injector:inj () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ v -> got := v :: !got);
  Sim.spawn sim (fun () ->
      for i = 1 to 30 do
        Network.send net ~src:0 ~dst:1 i;
        Sim.delay 1.0
      done);
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO despite drops" (List.init 30 (fun i -> i + 1)) (List.rev !got);
  checkb "the window actually dropped something" true (Network.messages_dropped net > 0)

(* --- protocol runs under faults -------------------------------------------- *)

let fault_params =
  {
    Params.default with
    n_sites = 4;
    n_items = 40;
    threads_per_site = 2;
    txns_per_thread = 25;
    record_history = true;
    faults =
      (match Fault.of_string "crash@50:site=1,down=150;crash@260:site=3,down=100;drop@0-200:p=0.15" with
      | Ok s -> s
      | Error m -> failwith m);
  }

let run_report ?(params = fault_params) protocol =
  let c = Repdb.Cluster.create params in
  (Repdb.Driver.run_on c protocol, c)

let test_crash_recovery_converges () =
  (* Every replica-updating protocol must converge to identical replica
     contents after crashes and recovery, stay serializable, and actually
     have exercised the fault machinery. *)
  List.iter
    (fun (name, protocol, backedge_prob) ->
      let params = { fault_params with Params.backedge_prob } in
      let r, _ = run_report ~params protocol in
      checki (name ^ ": crashes injected") 2 r.crashes;
      checkb (name ^ ": messages were dropped") true (r.msg_drops > 0);
      let module P = (val protocol : Repdb.Protocol.S) in
      (match r.divergent with
      | Some [] -> ()
      | Some d -> Alcotest.failf "%s: %d divergent copies after recovery" name (List.length d)
      | None ->
          (* Protocols with virtual replicas (PSL) have nothing to converge. *)
          if P.updates_replicas then Alcotest.failf "%s: no convergence check ran" name);
      match r.serializability with
      | Some Repdb_txn.Serializability.Serializable -> ()
      | Some _ -> Alcotest.failf "%s: history not serializable under faults" name
      | None -> Alcotest.failf "%s: no serializability verdict" name)
    [
      ("backedge", (module Repdb.Backedge_proto : Repdb.Protocol.S), 0.2);
      ("dag-wt", (module Repdb.Dag_wt : Repdb.Protocol.S), 0.0);
      ("psl", (module Repdb.Psl : Repdb.Protocol.S), 0.2);
    ]

let test_crash_recovery_deterministic () =
  (* Byte-identical reports across repeats: same seed, same schedule, same
     everything — the injector draws from its own stream. *)
  let show () =
    let r, _ = run_report (module Repdb.Backedge_proto : Repdb.Protocol.S) in
    Fmt.str "%a" Repdb.Driver.pp_report r
  in
  checks "identical across repeats" (show ()) (show ())

let test_recovery_drill_ran () =
  (* The cluster's restart path must have rebuilt the crashed sites' stores
     from their redo logs (crash_count counts executed crash events, and the
     recovery drill raises on any divergence — reaching quiescence means it
     passed). *)
  let r, c = run_report (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  checki "both scheduled crashes executed" 2 (Repdb.Cluster.crash_count c);
  checki "report agrees" 2 r.crashes;
  checkb "sites back up" true (Repdb.Cluster.site_up c 1 && Repdb.Cluster.site_up c 3);
  (* The wals are still attached: a fresh recovery reproduces the final
     stores, including post-restart writes. *)
  Array.iteri
    (fun site wal ->
      checkb
        (Printf.sprintf "site %d re-recoverable" site)
        true
        (Repdb_store.Store.contents (Repdb_store.Wal.recover wal ~site)
        = Repdb_store.Store.contents c.stores.(site)))
    c.wals

let test_fault_sweep_deterministic_across_pools () =
  (* The fault sweep's CSV must be identical sequentially and on a domain
     pool — fault draws are per-run state, so parallel interleaving cannot
     leak into results. *)
  let base = { fault_params with Params.faults = Fault.empty; txns_per_thread = 8 } in
  let seq = Repdb.Experiment.to_csv (Repdb.Experiment.sweep_faults ~base ()) in
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        Repdb.Experiment.to_csv (Repdb.Experiment.sweep_faults ~pool ~base ()))
  in
  checks "sequential = pooled" seq par

let combined_params =
  (* Partition + crash + drops, with deadlines and backoff retry: the full
     robustness stack in one schedule. *)
  {
    fault_params with
    Params.retry = Params.default_backoff;
    txn_deadline = 150.0;
    faults =
      (match
         Fault.of_string
           "crash@50:site=1,down=150;partition@100-400:groups=0.1|2.3;drop@0-200:p=0.1"
       with
      | Ok s -> s
      | Error m -> failwith m);
  }

let test_partition_crash_retry_deterministic () =
  (* Byte-identical reports across repeats and on a domain pool: the backoff
     jitter comes from per-client seeded streams and the injector from its
     own, so neither wall-clock nor domain interleaving can leak in. *)
  checkf "last event includes the heal" 400.0 (Fault.last_event combined_params.Params.faults);
  let show () =
    let r, _ = run_report ~params:combined_params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
    Fmt.str "%a" Repdb.Driver.pp_report r
  in
  let seq = show () in
  checks "identical across repeats" seq (show ());
  let par =
    Repdb_par.Pool.with_pool ~domains:2 (fun pool ->
        (Repdb_par.Pool.map pool [| (fun () -> show ()) |] ~f:(fun f -> f ())).(0))
  in
  checks "identical on a pool" seq par

let test_no_faults_is_noop () =
  (* An empty schedule must leave the fault machinery entirely out of the
     path: no injector, no wals, and a report identical to the seed's
     fault-free behaviour. *)
  let params = { fault_params with Params.faults = Fault.empty } in
  let r, c = run_report ~params (module Repdb.Backedge_proto : Repdb.Protocol.S) in
  checkb "no injector" false (Repdb.Cluster.faulty c);
  checki "no wals attached" 0 (Array.length c.wals);
  checki "no crashes" 0 r.crashes;
  checki "no drops" 0 r.msg_drops

let () =
  Alcotest.run "fault"
    [
      ( "schedule",
        [
          Alcotest.test_case "spec parse" `Quick test_spec_parse;
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "partition spec and last_event" `Quick test_partition_spec;
          Alcotest.test_case "partition reachability" `Quick test_partition_reachability;
          Alcotest.test_case "synthetic" `Quick test_synthetic;
        ] );
      ( "injector",
        [
          Alcotest.test_case "down intervals" `Quick test_injector_down;
          Alcotest.test_case "transmit around downtime" `Quick test_transmit_around_downtime;
          Alcotest.test_case "transmit drop window" `Quick test_transmit_drop_window;
          Alcotest.test_case "network fifo across drops" `Quick test_network_fifo_across_drops;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "converges and serializable" `Quick test_crash_recovery_converges;
          Alcotest.test_case "deterministic" `Quick test_crash_recovery_deterministic;
          Alcotest.test_case "recovery drill ran" `Quick test_recovery_drill_ran;
          Alcotest.test_case "sweep deterministic across pools" `Quick
            test_fault_sweep_deterministic_across_pools;
          Alcotest.test_case "partition+crash+retry deterministic" `Quick
            test_partition_crash_retry_deterministic;
          Alcotest.test_case "no faults is a no-op" `Quick test_no_faults_is_noop;
        ] );
    ]
